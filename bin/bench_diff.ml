(* Perf-trajectory regression gate over the committed BENCH_*.json
   files.  Two snapshots are compared entry by entry (sections keyed by
   family/name), on the metrics that matter per section: throughput
   (pairs_per_s, relative drop), solver work (solver_nodes, relative
   increase), cache hit rate (absolute drop) and warm-path speedup
   (relative drop).  Anything past the threshold is a regression and the
   command exits non-zero — CI runs it warn-only so a noisy machine
   cannot block a merge, but the trajectory is visible in the log. *)

open Cmdliner
module Jsonx = Ch_serve.Jsonx

let as_float = function
  | Jsonx.Int i -> Some (float_of_int i)
  | Jsonx.Float f -> Some f
  | _ -> None

let fnum o name = Option.bind (Jsonx.mem name o) as_float
let inum o name = Option.bind (Jsonx.mem name o) Jsonx.as_int

type entry = {
  e_key : string;  (* "verify/mds-k2-exhaustive" *)
  e_pairs_per_s : float option;
  e_solver_nodes : int option;
  e_cache_rate : float option;  (* hits / (hits + misses), when queried *)
  e_warm_speedup : float option;
}

(* sections carrying per-entry perf rows, with their id field *)
let sections =
  [ ("verify", "family"); ("reduction", "family"); ("sweep", "family");
    ("serve", "name") ]

let entry_of section o =
  match Option.bind (Jsonx.mem (List.assoc section sections) o) Jsonx.as_str with
  | None -> None
  | Some id ->
      let cache_rate =
        match (inum o "cache_hits", inum o "cache_misses") with
        | Some h, Some m when h + m > 0 ->
            Some (float_of_int h /. float_of_int (h + m))
        | _ -> None
      in
      Some
        {
          e_key = section ^ "/" ^ id;
          e_pairs_per_s = fnum o "pairs_per_s";
          e_solver_nodes = inum o "solver_nodes";
          e_cache_rate = cache_rate;
          e_warm_speedup = fnum o "warm_speedup";
        }

let load file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Jsonx.parse s with
  | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
  | Ok j ->
      let ts = match inum j "timestamp" with Some t -> t | None -> 0 in
      let entries =
        List.concat_map
          (fun (section, _) ->
            match Option.bind (Jsonx.mem section j) Jsonx.as_arr with
            | None -> []
            | Some rows -> List.filter_map (entry_of section) rows)
          sections
      in
      Ok (ts, entries)

(* one regression check: [delta] positive means worse *)
let check ~threshold key metric old_v new_v delta =
  if delta > threshold then
    Some
      (Printf.sprintf "  REGRESSION %s: %s %.4g -> %.4g (%+.1f%%)" key metric
         old_v new_v
         ((new_v -. old_v) /. Float.max 1e-9 (Float.abs old_v) *. 100.))
  else None

let compare_entry ~threshold old_e new_e =
  let key = new_e.e_key in
  let rel_drop o n = (o -. n) /. o in
  List.filter_map Fun.id
    [
      (match (old_e.e_pairs_per_s, new_e.e_pairs_per_s) with
      | Some o, Some n when o > 0. ->
          check ~threshold key "pairs_per_s" o n (rel_drop o n)
      | _ -> None);
      (match (old_e.e_solver_nodes, new_e.e_solver_nodes) with
      | Some o, Some n when o > 0 ->
          let o = float_of_int o and n = float_of_int n in
          check ~threshold key "solver_nodes" o n ((n -. o) /. o)
      | _ -> None);
      (match (old_e.e_cache_rate, new_e.e_cache_rate) with
      | Some o, Some n -> check ~threshold key "cache_hit_rate" o n (o -. n)
      | _ -> None);
      (match (old_e.e_warm_speedup, new_e.e_warm_speedup) with
      | Some o, Some n when o > 0. ->
          check ~threshold key "warm_speedup" o n (rel_drop o n)
      | _ -> None);
    ]

let diff_files ~threshold file_a file_b =
  match (load file_a, load file_b) with
  | Error msg, _ | _, Error msg ->
      Printf.eprintf "bench-diff: %s\n" msg;
      2
  | Ok (_, old_entries), Ok (_, new_entries) ->
      Printf.printf "bench-diff %s -> %s (threshold %.0f%%)\n" file_a file_b
        (threshold *. 100.);
      let compared = ref 0 in
      let regressions =
        List.concat_map
          (fun new_e ->
            match
              List.find_opt (fun o -> o.e_key = new_e.e_key) old_entries
            with
            | None -> []
            | Some old_e ->
                incr compared;
                compare_entry ~threshold old_e new_e)
          new_entries
      in
      List.iter print_endline regressions;
      Printf.printf "%d entries compared, %d regression%s\n" !compared
        (List.length regressions)
        (if List.length regressions = 1 then "" else "s");
      if regressions = [] then 0 else 1

(* --all: every committed snapshot in [dir], ordered by its embedded
   timestamp, diffed pairwise — the full trajectory, not just the tip *)
let diff_all ~threshold dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.map (Filename.concat dir)
  in
  let loaded =
    List.filter_map
      (fun f ->
        match load f with
        | Ok (ts, _) -> Some (ts, f)
        | Error msg ->
            Printf.eprintf "bench-diff: skipping %s\n" msg;
            None)
      files
  in
  let ordered = List.sort compare loaded in
  match ordered with
  | [] | [ _ ] ->
      Printf.eprintf "bench-diff: need at least two BENCH_*.json under %s\n"
        dir;
      2
  | (_, first) :: rest ->
      let code = ref 0 in
      ignore
        (List.fold_left
           (fun prev (_, next) ->
             (match diff_files ~threshold prev next with
             | 0 -> ()
             | c -> code := max !code c);
             next)
           first rest);
      !code

let cmd =
  let run all dir threshold files =
    if threshold <= 0. || threshold >= 1. then begin
      Printf.eprintf "bench-diff: --threshold must be in (0, 1)\n";
      2
    end
    else if all then diff_all ~threshold dir
    else
      match files with
      | [ a; b ] -> diff_files ~threshold a b
      | _ ->
          Printf.eprintf
            "bench-diff: pass exactly two BENCH files, or --all\n";
          2
  in
  let all_arg =
    let doc =
      "Diff every $(b,BENCH_*.json) under $(b,--dir) pairwise in timestamp \
       order instead of two explicit files."
    in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let dir_arg =
    Arg.(
      value & opt string "."
      & info [ "dir" ] ~docv:"DIR" ~doc:"Where $(b,--all) looks for snapshots.")
  in
  let threshold_arg =
    let doc =
      "Regression threshold as a fraction: throughput/speedup may drop and \
       solver nodes grow by at most this ratio, cache hit rate by at most \
       this absolute amount."
    in
    Arg.(value & opt float 0.25 & info [ "threshold" ] ~docv:"T" ~doc)
  in
  let files_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH.json")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare bench snapshots entry by entry (throughput, solver nodes, \
          cache hit rate, warm speedup) and exit non-zero past the \
          regression threshold — the perf-trajectory gate.")
    Term.(const run $ all_arg $ dir_arg $ threshold_arg $ files_arg)
