(* Command-line front end: list, inspect, and verify the lower-bound
   families, and run the Theorem 1.1 Alice-Bob simulation.

   Every subcommand resolves families through the one registry
   ([Ch_lbgraphs.Families.catalog]) — there is no private family list
   here, so a family registered in its construction module is
   immediately listable, verifiable and sweepable. *)

open Cmdliner
open Ch_cc
open Ch_core
open Ch_lbgraphs

let catalog = Families.catalog

module Obs = Ch_obs.Obs

let k_arg =
  let doc = "Construction parameter k (a power of two, at least 2)." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let profile_arg =
  let doc =
    "Run under the telemetry layer and print a span-tree profile \
     (durations, percentages of wall time, solver/cache counters, \
     histograms) after the normal output."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let obs_out_arg =
  let doc =
    "With $(b,--profile), also stream telemetry events (span open/close \
     and, for reductions, the per-message trace) as JSONL to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry on: install the optional JSONL event sink,
   wrap the work in a root span so the profile can attribute (nearly)
   all wall time, and render the merged report. *)
let profiled ~root ~obs_out f =
  Obs.set_enabled true;
  Obs.reset ();
  let finish =
    match obs_out with
    | None -> fun () -> ()
    | Some file ->
        let oc = open_out file in
        Obs.set_sink (Some (Obs.jsonl oc));
        fun () ->
          Obs.set_sink None;
          close_out oc;
          Printf.printf "telemetry events written to %s\n" file
  in
  let sp_root = Obs.span root in
  let t0 = Obs.Clock.now_ns () in
  let r = Fun.protect ~finally:finish (fun () -> Obs.with_span sp_root f) in
  let wall_ns = Int64.sub (Obs.Clock.now_ns ()) t0 in
  Format.printf "%a" (Obs.pp_profile ~wall_ns) (Obs.report ());
  r

let list_cmd =
  let run k json =
    if json then print_string (Registry.to_json (catalog ()))
    else begin
      Printf.printf "%-24s %8s %8s %6s  %-22s %s\n" "family" "n" "K" "cut"
        "paper" "engines";
      List.iter
        (fun s ->
          let fam = s.Registry.scratch k in
          let engines =
            String.concat "+"
              (("scratch" :: (if s.Registry.incremental <> None then [ "inc" ] else []))
              @ (if s.Registry.reduction <> None then [ "red" ] else []))
          in
          Printf.printf "%-24s %8d %8d %6d  %-22s %s\n" s.Registry.id
            fam.Framework.nvertices fam.Framework.input_bits
            (Framework.cut_size fam) s.Registry.paper_ref engines)
        (Registry.all (catalog ()))
    end;
    0
  in
  let json_arg =
    let doc = "Dump the catalog as JSON (ids, paper refs, engine flags)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the lower-bound families and their parameters.")
    Term.(const run $ k_arg $ json_arg)

let family_arg =
  let doc = "Family id (see the list command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)

let samples_arg =
  let doc = "Number of random input pairs to verify." in
  Arg.(value & opt int 20 & info [ "samples" ] ~doc)

let exhaustive_arg =
  let doc = "Verify all 4^K input pairs (K must be small)." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let verify_cmd =
  let run k name samples exhaustive incremental profile obs_out =
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some s ->
        let fam = s.Registry.scratch k in
        let work () =
          let failures, total =
            match (incremental, s.Registry.incremental) with
            | true, None ->
                Printf.eprintf
                  "family %S has no incremental engine; rerun without \
                   --incremental\n"
                  name;
                exit 1
            | true, Some inc ->
                let inc = inc k in
                if exhaustive then fst (Framework.verify_exhaustive_inc inc)
                else fst (Framework.verify_random_inc ~seed:11 ~samples inc)
            | false, _ ->
                if exhaustive then Framework.verify_exhaustive fam
                else Framework.verify_random ~seed:11 ~samples fam
          in
          let sided = Framework.check_sidedness ~seed:3 ~samples:8 fam in
          (failures, total, sided)
        in
        let failures, total, sided =
          if profile then profiled ~root:"verify" ~obs_out work else work ()
        in
        Printf.printf
          "%s: property verified on %d/%d input pairs; Definition 1.1 side \
           conditions: %b\n"
          fam.Framework.name (total - failures) total sided;
        let lb =
          Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
            ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
        in
        Printf.printf "Theorem 1.1 bound at this scale: Ω(%.1f) rounds\n" lb;
        if failures = 0 then 0 else 1
  in
  let incremental_arg =
    let doc = "Verify through the memoized incremental engine instead." in
    Arg.(value & flag & info [ "incremental" ] ~doc)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a family's defining iff-property with the exact solvers.")
    Term.(
      const run $ k_arg $ family_arg $ samples_arg $ exhaustive_arg
      $ incremental_arg $ profile_arg $ obs_out_arg)

let reduction_ids () =
  String.concat ", "
    (List.map
       (fun s -> s.Registry.id)
       (Registry.filter ~reduction:true (catalog ())))

let simulate_cmd =
  let run k name pairs =
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some { Registry.reduction = None; _ } ->
        Printf.eprintf
          "family %S has no reduction algorithm; families with one: %s\n" name
          (reduction_ids ());
        1
    | Some ({ Registry.reduction = Some rd; _ } as s) ->
        let fam = s.Registry.scratch k in
        let rd = rd k in
        let cut =
          match rd.Registry.rd_partition with
          | None -> Framework.cut_size fam
          | Some partition ->
              Array.length
                (Framework.multicut_info fam ~partition).Framework.mc_edges
        in
        Printf.printf
          "Simulating %s CONGEST on G_{x,y} (k=%d, n=%d, t=%d, cut=%d)\n"
          s.Registry.id k fam.Framework.nvertices rd.Registry.rd_parties cut;
        let connected x y =
          match fam.Framework.build x y with
          | Framework.Undirected g -> Ch_graph.Props.connected g
          | Framework.Directed dg ->
              Ch_graph.Props.connected (Ch_congest.Network.comm_graph dg)
          | _ -> true
        in
        let all_ok = ref true in
        for i = 0 to pairs - 1 do
          let bits = fam.Framework.input_bits in
          let x = Bits.random ~seed:(3 * i) ~density:0.7 bits in
          let y = Bits.random ~seed:((3 * i) + 1) ~density:0.7 bits in
          if not (connected x y) then
            Printf.printf "  pair %2d: skipped (G_{x,y} disconnected)\n" i
          else begin
            let sim =
              Framework.simulate_reduction ?partition:rd.Registry.rd_partition
                fam ~solver:rd.Registry.rd_solver
                ~accept:rd.Registry.rd_accept x y
            in
            if not sim.Framework.decision_correct then all_ok := false;
            Printf.printf "  pair %2d: rounds=%4d  cut bits=%6d  %s\n" i
              sim.Framework.rounds sim.Framework.cut_bits
              (if sim.Framework.decision_correct then "correct" else "WRONG")
          end
        done;
        if !all_ok then 0 else 1
  in
  let sim_family_arg =
    let doc = "Family id (must carry a reduction algorithm)." in
    Arg.(value & pos 0 string "mds" & info [] ~docv:"FAMILY" ~doc)
  in
  let pairs_arg =
    Arg.(value & opt int 5 & info [ "pairs" ] ~doc:"Number of input pairs.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the Theorem 1.1 Alice-Bob simulation on a family.")
    Term.(const run $ k_arg $ sim_family_arg $ pairs_arg)

let reduction_cmd =
  let open Ch_reduction in
  let run k name pairs exhaustive trace_file seed profile obs_out =
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some s -> (
        (* --trace keeps its raw JSONL file; --profile additionally tees
           the events into the telemetry layer (reduction.* counters and,
           with --obs-out, the shared event stream) *)
        let with_file_sink f =
          match trace_file with
          | None -> f None
          | Some file ->
              let oc = open_out file in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> f (Some (Trace.jsonl oc)))
        in
        let sweep_traced () =
          with_file_sink (fun file_sink ->
              let trace =
                if profile then
                  Some
                    (match file_sink with
                    | None -> Trace.obs_sink
                    | Some fs -> Trace.tee Trace.obs_sink fs)
                else file_sink
              in
              let go () =
                Bound.sweep_registry ?trace ~seed ~exhaustive ~samples:pairs s
                  ~k
              in
              if profile then profiled ~root:"reduction" ~obs_out go
              else go ())
        in
        try
          match sweep_traced () with
          | None ->
              Printf.eprintf
                "family %S has no reduction algorithm; families with one: %s\n"
                name (reduction_ids ());
              1
          | Some (_, report, skipped) ->
              Format.printf "%a@." Bound.pp_report report;
              if skipped > 0 then
                Format.printf
                  "skipped %d disconnected pair%s (outside the CONGEST model)@."
                  skipped
                  (if skipped = 1 then "" else "s");
              (match trace_file with
              | Some file -> Format.printf "trace written to %s@." file
              | None -> ());
              if
                report.Bound.rep_all_match && report.Bound.rep_all_correct
                && report.Bound.rep_all_within_budget
              then 0
              else 1
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          1)
  in
  let red_family_arg =
    let doc = "Family id (must carry a reduction algorithm — see list)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let pairs_arg =
    let doc = "Number of sampled input pairs (on top of the four corners)." in
    Arg.(value & opt int 8 & info [ "pairs" ] ~doc)
  in
  let exhaustive_arg =
    let doc = "Sweep all 4^K input pairs (K must be at most 5)." in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let trace_arg =
    let doc = "Write the per-message/per-round trace as JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 41 & info [ "seed" ] ~doc:"Sampling seed.")
  in
  Cmd.v
    (Cmd.info "reduction"
       ~doc:
         "Mechanize Theorem 1.1: compile the CONGEST run on G_{x,y} into a \
          two-party transcript, difference it against the network oracle, \
          and report the empirical lower-bound figure.")
    Term.(
      const run $ k_arg $ red_family_arg $ pairs_arg $ exhaustive_arg
      $ trace_arg $ seed_arg $ profile_arg $ obs_out_arg)

(* Round-level trace replay: regenerate the sweep that produced a
   --trace JSONL file and difference the two event streams round by
   round.  The simulation is deterministic (seeded per-vertex RNG, fixed
   sampling derivation), so any divergence — a changed codec, charging
   rule or stepper schedule — surfaces at the first differing round. *)
let replay_cmd =
  let open Ch_reduction in
  let open Ch_serve in
  let round_of line =
    match Jsonx.parse line with
    | Ok j -> Option.bind (Jsonx.mem "round" j) Jsonx.as_int
    | Error _ -> None
  in
  let run k name pairs exhaustive seed trace_file =
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some s -> (
        let recorded =
          let ic = open_in trace_file in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          close_in ic;
          List.rev !lines
        in
        let sink, events = Trace.collector () in
        match
          Bound.sweep_registry ~trace:sink ~seed ~exhaustive ~samples:pairs s
            ~k
        with
        | None ->
            Printf.eprintf
              "family %S has no reduction algorithm; families with one: %s\n"
              name (reduction_ids ());
            1
        | Some _ -> (
            let replayed = List.map Trace.to_json (events ()) in
            let rec diff i rec_lines rep_lines =
              match (rec_lines, rep_lines) with
              | [], [] ->
                  Printf.printf
                    "trace replay ok: %d events match (%s, k=%d, %s)\n" i
                    s.Registry.id k
                    (if exhaustive then "exhaustive"
                     else Printf.sprintf "pairs=%d seed=%d" pairs seed);
                  0
              | a :: _, [] | [], a :: _ ->
                  Printf.eprintf
                    "FAIL: traces diverge at event %d%s: one stream ends, the \
                     other continues with:\n\
                    \  %s\n"
                    i
                    (match round_of a with
                    | Some r -> Printf.sprintf " (round %d)" r
                    | None -> "")
                    a;
                  1
              | a :: rest_a, b :: rest_b ->
                  if String.equal a b then diff (i + 1) rest_a rest_b
                  else begin
                    Printf.eprintf
                      "FAIL: traces diverge at event %d%s:\n\
                      \  recorded: %s\n\
                      \  replayed: %s\n"
                      i
                      (match round_of b with
                      | Some r -> Printf.sprintf " (round %d)" r
                      | None -> "")
                      a b;
                    1
                  end
            in
            match recorded with
            | [] ->
                Printf.eprintf "FAIL: %s holds no trace events\n" trace_file;
                1
            | _ -> diff 0 recorded replayed))
  in
  let replay_family_arg =
    let doc = "Family id the trace was recorded from." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let trace_file_arg =
    let doc = "The JSONL trace written by $(b,hardness reduction --trace)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let pairs_arg =
    let doc = "Sampled pairs the recorded sweep used (on top of corners)." in
    Arg.(value & opt int 8 & info [ "pairs" ] ~doc)
  in
  let exhaustive_arg =
    let doc = "The recorded sweep was exhaustive." in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 41 & info [ "seed" ] ~doc:"Sampling seed used.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a reduction sweep and difference its trace against a \
          recorded JSONL trace round by round, failing on the first \
          divergence — the CI determinism guard for the simulation stack.")
    Term.(
      const run $ k_arg $ replay_family_arg $ pairs_arg $ exhaustive_arg
      $ seed_arg $ trace_file_arg)

let sweep_cmd =
  let open Ch_sweep in
  let run k name shards resume sample seed procs fault_after check_oracle
      profile obs_out =
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some s -> (
        let fam = s.Registry.scratch k in
        let mode =
          match sample with
          | None -> Shard.Exhaustive
          | Some samples -> Shard.Sampled { seed; samples }
        in
        try
          let total = Shard.total fam mode in
          Printf.printf "%s sweep: k=%d, %d pairs, %d shards, store %s\n"
            s.Registry.id k total shards
            (match resume with
            | Some dir -> Filename.concat dir (Sweep.store_key fam ~mode ~shards)
            | None -> "(scratch)");
          (* SIGINT/SIGTERM behave like --fault-after at the moment the
             signal lands: in-flight shards finish and persist, the run
             raises [Interrupted], the process exits 3 — never a torn
             store write, and the same --resume continues the sweep. *)
          let stop = Atomic.make false in
          let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
          ignore (Sys.signal Sys.sigint on_signal);
          ignore (Sys.signal Sys.sigterm on_signal);
          let work () =
            Sweep.run ?store_dir:resume ?fault_after ~procs
              ~should_stop:(fun () -> Atomic.get stop)
              fam ~mode ~shards
          in
          let o = if profile then profiled ~root:"sweep" ~obs_out work else work () in
          Printf.printf
            "shards: completed=%d resumed=%d recomputed=%d corrupt=%d (of %d)\n"
            o.Sweep.shards_completed o.Sweep.shards_resumed
            o.Sweep.shards_recomputed o.Sweep.artifacts_corrupt
            o.Sweep.shards_total;
          if o.Sweep.tables_restored > 0 then
            Printf.printf "memo tables restored from store: %d\n"
              o.Sweep.tables_restored;
          Printf.printf "verdicts: %d pairs, %d failures, digest %s\n"
            (Array.length o.Sweep.verdicts)
            o.Sweep.failures
            (Sweep.digest o.Sweep.verdicts);
          let oracle_ok =
            if not check_oracle then true
            else begin
              let ok = Sweep.oracle fam ~mode = o.Sweep.verdicts in
              Printf.printf "oracle differential: %s\n"
                (if ok then "ok" else "MISMATCH");
              ok
            end
          in
          if o.Sweep.failures = 0 && oracle_ok then 0 else 1
        with
        | Sweep.Interrupted done_shards ->
            Printf.printf
              "sweep interrupted after %d shard%s; rerun with the same --resume \
               to continue\n"
              done_shards
              (if done_shards = 1 then "" else "s");
            3
        | Invalid_argument msg ->
            Printf.eprintf "%s\n" msg;
            1)
  in
  let shards_arg =
    let doc = "Number of shards to cut the pair space into." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let resume_arg =
    let doc =
      "Store root: persist per-shard verdict blocks and memo snapshots \
       under $(docv), and resume from any valid artifacts already there."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  let sample_arg =
    let doc =
      "Sweep the 4 corner pairs plus $(docv) seeded samples instead of all \
       4^K pairs."
    in
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"M" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Sampling seed.")
  in
  let procs_arg =
    let doc = "Fan shards out across $(docv) worker processes (needs --resume)." in
    Arg.(value & opt int 1 & info [ "procs" ] ~docv:"P" ~doc)
  in
  let fault_after_arg =
    let doc =
      "Crash injection: stop after $(docv) shards are computed and exit 3 \
       (completed shards persist; resume with the same --resume)."
    in
    Arg.(value & opt (some int) None & info [ "fault-after" ] ~docv:"S" ~doc)
  in
  let check_oracle_arg =
    let doc =
      "Also run the single-process from-scratch sweep in this process and \
       diff the merged verdict stream against it."
    in
    Arg.(value & flag & info [ "check-oracle" ] ~doc)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a sharded, resumable verdict sweep over a family's input-pair \
          space, persisting per-shard blocks to a content-addressed store.")
    Term.(
      const run $ k_arg $ family_arg $ shards_arg $ resume_arg $ sample_arg
      $ seed_arg $ procs_arg $ fault_after_arg $ check_oracle_arg $ profile_arg
      $ obs_out_arg)

(* Offline span-tree reconstruction: parse the span_open/span_close
   events out of a JSONL telemetry capture (one file, or several
   concatenated — client and server) and render the joined profile.
   This is how a traced client request becomes one tree: the client's
   capture and the daemon's capture share the machine monotonic clock
   and the trace id, so Spanview grafts the server's roots under the
   client span that contains them. *)
let profile_from file =
  let module Jsonx = Ch_serve.Jsonx in
  let ic = open_in file in
  let events = ref [] in
  (try
     while true do
       let line = input_line ic in
       match Jsonx.parse line with
       | Error _ -> ()
       | Ok j -> (
           let str n = Option.bind (Jsonx.mem n j) Jsonx.as_str in
           let int n = Option.bind (Jsonx.mem n j) Jsonx.as_int in
           match (str "ev", str "span", int "t_ns") with
           | Some ("span_open" | "span_close"), Some sp, Some t ->
               events :=
                 {
                   Ch_obs.Spanview.e_open = str "ev" = Some "span_open";
                   e_span = sp;
                   e_pid = Option.value (int "pid") ~default:0;
                   e_domain = Option.value (int "domain") ~default:0;
                   e_trace = str "trace";
                   e_t_ns = Int64.of_int t;
                 }
                 :: !events
           | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  match List.rev !events with
  | [] ->
      Printf.eprintf "profile: %s holds no span events\n" file;
      1
  | events ->
      let ts = List.map (fun e -> e.Ch_obs.Spanview.e_t_ns) events in
      let wall_ns =
        Int64.sub
          (List.fold_left Int64.max Int64.min_int ts)
          (List.fold_left Int64.min Int64.max_int ts)
      in
      Format.printf "%a"
        (Obs.pp_profile ~wall_ns)
        (Ch_obs.Spanview.to_report events);
      0

let profile_cmd =
  let run k name from obs_out =
    match from with
    | Some file -> profile_from file
    | None -> (
    let name =
      match name with
      | Some n -> n
      | None ->
          Printf.eprintf "profile: pass a FAMILY id or --from FILE.jsonl\n";
          exit 2
    in
    match Registry.find (catalog ()) name with
    | None ->
        Printf.eprintf "%s\n" (Registry.unknown_id_message (catalog ()) name);
        1
    | Some s ->
        (* the exhaustive sweep through the incremental engine when the
           family has one (the representative workload: memoized solver
           caches under the pool), a random sweep otherwise *)
        let work () =
          match s.Registry.incremental with
          | Some inc -> fst (Framework.verify_exhaustive_inc (inc k))
          | None ->
              Framework.verify_random ~seed:11 ~samples:32
                (s.Registry.scratch k)
        in
        let failures, total =
          profiled ~root:("profile:" ^ s.Registry.id) ~obs_out work
        in
        Printf.printf "%s: %d/%d pairs verified\n" s.Registry.id
          (total - failures) total;
        if failures = 0 then 0 else 1)
  in
  let opt_family_arg =
    let doc = "Family id (omit with $(b,--from))." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let from_arg =
    let doc =
      "Replay mode: reconstruct and render the span tree from a JSONL \
       telemetry capture (client and server captures may be concatenated; \
       traced spans join across processes) instead of running a workload."
    in
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a family's verification workload under the telemetry layer \
          and render the span-tree profile (per-solver wall time, cache \
          counters, histograms), or rebuild the tree from a JSONL capture \
          with $(b,--from).")
    Term.(const run $ k_arg $ opt_family_arg $ from_arg $ obs_out_arg)

(* ------------------------------------------------------------------ serve *)

let socket_arg =
  let doc = "Listen on (or connect to) the Unix socket at $(docv)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "Listen on (or connect to) loopback TCP port $(docv)." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N" ~doc)

let resolve_addr socket port =
  let open Ch_serve in
  match (socket, port) with
  | Some path, None -> Ok (Server.Unix_socket path)
  | None, Some p -> Ok (Server.Tcp p)
  | None, None -> Error "pass --socket PATH or --port N"
  | Some _, Some _ -> Error "--socket and --port are mutually exclusive"

let serve_cmd =
  let open Ch_serve in
  let run socket port workers queue_depth store obs_out sample_period =
    match resolve_addr socket port with
    | Error msg ->
        Printf.eprintf "serve: %s\n" msg;
        1
    | Ok addr ->
        (* counters and histograms feed the metrics/health ops even
           without a JSONL sink, so the daemon always runs observed *)
        Obs.set_enabled true;
        let cfg =
          {
            Server.cfg_addr = addr;
            cfg_workers = workers;
            cfg_queue_depth = queue_depth;
            cfg_store_dir = store;
            cfg_obs_out = obs_out;
            cfg_sample_period_s = sample_period;
          }
        in
        let server = Server.start cfg in
        (* SIGTERM/SIGINT request a graceful drain: stop accepting,
           finish queued requests, persist the warm caches, unlink the
           socket, exit 0. *)
        let stop = Atomic.make false in
        let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
        ignore (Sys.signal Sys.sigterm on_signal);
        ignore (Sys.signal Sys.sigint on_signal);
        Printf.printf
          "hardness serve: listening on %s (workers=%d, queue=%d, store=%s, \
           warm tables=%d)\n\
           %!"
          (match addr with
          | Server.Unix_socket p -> p
          | Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p)
          workers queue_depth
          (Option.value store ~default:"(none)")
          (Warm.tables_seeded (Server.warm server));
        while not (Atomic.get stop) do
          Thread.delay 0.05
        done;
        Printf.printf "hardness serve: draining\n%!";
        Server.stop server;
        Printf.printf "hardness serve: stopped (warm entries=%d)\n%!"
          (Warm.entries (Server.warm server));
        0
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Scheduler worker threads.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission queue bound: requests past it are answered \
             $(b,overloaded) immediately.")
  in
  let store_arg =
    Arg.(
      value & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Sweep store root: seed the warm caches from its memo \
             snapshots at startup and persist them back on shutdown.")
  in
  let serve_obs_arg =
    Arg.(
      value & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:"Stream per-request telemetry events as JSONL to $(docv).")
  in
  let sample_period_arg =
    Arg.(
      value & opt float 1.0
      & info [ "sample-period" ] ~docv:"S"
          ~doc:
            "Metrics sampler period in seconds: the exposition's rates and \
             latency quantiles are windowed over snapshots taken this \
             often.  Non-positive disables the sampler (quantiles fall \
             back to cumulative).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: batched verify/simulate/reduction \
          requests over a length-prefixed JSON protocol, with warm solver \
          caches, bounded admission, live metrics/health exposition, and \
          graceful SIGTERM drain.")
    Term.(
      const run $ socket_arg $ port_arg $ workers_arg $ queue_arg $ store_arg
      $ serve_obs_arg $ sample_period_arg)

let client_cmd =
  let open Ch_serve in
  let jint body name =
    Option.bind (Jsonx.mem name body) Jsonx.as_int
  in
  let jstr body name = Option.bind (Jsonx.mem name body) Jsonx.as_str in
  (* [raw]: a payload field to print verbatim instead of the JSON line —
     the metrics op answers the whole exposition page as one string *)
  let print_response ?raw r =
    match r.Protocol.rs_outcome with
    | Protocol.Payload body -> (
        match Option.bind raw (jstr body) with
        | Some text -> print_string text
        | None ->
            Printf.printf "id=%d ok warm=%b micros=%d %s\n" r.Protocol.rs_id
              r.Protocol.rs_warm r.Protocol.rs_micros (Jsonx.to_string body))
    | Protocol.Error (code, msg) ->
        Printf.printf "id=%d error=%s message=%s\n" r.Protocol.rs_id
          (Protocol.error_code_to_string code)
          msg
  in
  let run op family k samples seed scratch deadline shards pairs repeat bench
      socket port check_oracle trace_id obs_out =
    match resolve_addr socket port with
    | Error msg ->
        Printf.eprintf "client: %s\n" msg;
        1
    | Ok addr -> (
        let vmode =
          match samples with
          | None -> Protocol.Exhaustive
          | Some m -> Protocol.Sampled { seed; samples = m }
        in
        let need_family () =
          match family with
          | Some f -> f
          | None ->
              Printf.eprintf "client: op %S needs a FAMILY argument\n" op;
              exit 2
        in
        let opv =
          match op with
          | "ping" -> Protocol.Ping
          | "catalog" -> Protocol.Catalog
          | "stats" -> Protocol.Stats
          | "metrics" -> Protocol.Metrics
          | "health" -> Protocol.Health
          | "verify" ->
              Protocol.Verify
                {
                  family = need_family ();
                  k;
                  vmode;
                  engine = (if scratch then Protocol.Scratch else Protocol.Auto);
                }
          | "simulate" ->
              Protocol.Simulate { family = need_family (); k; pairs; seed }
          | "reduction" ->
              Protocol.Reduction
                {
                  family = need_family ();
                  k;
                  exhaustive = samples = None;
                  pairs;
                  seed;
                }
          | "sweep-status" ->
              Protocol.Sweep_status { family = need_family (); k; shards; vmode }
          | other ->
              Printf.eprintf
                "client: unknown op %S (ping, catalog, stats, metrics, \
                 health, verify, simulate, reduction, sweep-status)\n"
                other;
              exit 2
        in
        let raw = if op = "metrics" then Some "text" else None in
        let request id =
          {
            Protocol.rq_id = id;
            rq_op = opv;
            rq_deadline_ms = deadline;
            rq_trace = trace_id;
          }
        in
        (* with --obs-out, capture this process's own span events (under
           --trace-id, stamped with it): concatenated with the daemon's
           capture, [hardness profile --from] joins them into one tree *)
        let with_client_obs f =
          match obs_out with
          | None -> f ()
          | Some file ->
              Obs.set_enabled true;
              Obs.reset ();
              let oc = open_out file in
              Obs.set_sink (Some (Obs.jsonl oc));
              Fun.protect
                ~finally:(fun () ->
                  Obs.set_sink None;
                  close_out oc)
                (fun () ->
                  Obs.with_trace trace_id (fun () ->
                      Obs.with_span (Obs.span "client_request") f))
        in
        (* the in-process oracle digest for verify ops: the served stream
           must be bit-identical to the library run in this process *)
        let oracle_digest () =
          let open Ch_sweep in
          let spec = Registry.find_exn (catalog ()) (need_family ()) in
          let fam = spec.Registry.scratch k in
          let mode =
            match vmode with
            | Protocol.Exhaustive -> Shard.Exhaustive
            | Protocol.Sampled { seed; samples } ->
                Shard.Sampled { seed; samples }
          in
          Sweep.digest (Sweep.oracle fam ~mode)
        in
        let check r =
          match (check_oracle, r.Protocol.rs_outcome) with
          | false, Protocol.Payload _ -> true
          | _, Protocol.Error _ -> false
          | true, Protocol.Payload body -> (
              match jstr body "digest" with
              | None -> true (* no digest in this op's body *)
              | Some d ->
                  let ok = d = oracle_digest () in
                  Printf.printf "oracle differential: %s\n"
                    (if ok then "ok" else "MISMATCH");
                  ok)
        in
        try
          with_client_obs @@ fun () ->
          if bench > 1 then begin
            (* concurrent connections, one request each; every verdict
               digest must agree across clients *)
            let results = Array.make bench None in
            let threads =
              List.init bench (fun i ->
                  Thread.create
                    (fun () ->
                      let c = Client.connect ~retries:20 addr in
                      let rs = Client.roundtrip c [ request i ] in
                      Client.close c;
                      results.(i) <- Some rs)
                    ())
            in
            List.iter Thread.join threads;
            let all = Array.to_list results in
            if List.exists Option.is_none all then begin
              Printf.eprintf "client: a bench connection failed\n";
              1
            end
            else begin
              let responses = List.concat_map Option.get all in
              List.iter (print_response ?raw) responses;
              let digests =
                List.filter_map
                  (fun r ->
                    match r.Protocol.rs_outcome with
                    | Protocol.Payload body -> jstr body "digest"
                    | Protocol.Error _ -> None)
                  responses
              in
              let agree =
                match digests with
                | [] -> true
                | d :: rest -> List.for_all (( = ) d) rest
              in
              Printf.printf "bench: %d clients, digests %s\n" bench
                (if agree then "agree" else "DISAGREE");
              let ok = agree && List.for_all check responses in
              if ok then 0 else 1
            end
          end
          else begin
            let c = Client.connect ~retries:20 addr in
            let micros = ref [] in
            let ok = ref true in
            for rep = 0 to repeat - 1 do
              let rs = Client.roundtrip c [ request rep ] in
              List.iter
                (fun r ->
                  print_response ?raw r;
                  (match r.Protocol.rs_outcome with
                  | Protocol.Payload _ -> micros := r.Protocol.rs_micros :: !micros
                  | Protocol.Error _ -> ok := false);
                  if not (check r) then ok := false)
                rs
            done;
            Client.close c;
            (match List.rev !micros with
            | cold :: (_ :: _ as warm) ->
                let best = List.fold_left min max_int warm in
                Printf.printf "warm_speedup=%.1f\n"
                  (float_of_int cold /. float_of_int (max 1 best))
            | _ -> ());
            if !ok then 0 else 1
          end
        with
        | Unix.Unix_error (e, _, _) ->
            Printf.eprintf "client: cannot reach daemon: %s\n"
              (Unix.error_message e);
            1
        | Protocol.Protocol_error msg ->
            Printf.eprintf "client: protocol error: %s\n" msg;
            1
        | Failure msg ->
            Printf.eprintf "client: %s\n" msg;
            1)
  in
  ignore jint;
  let op_arg =
    let doc =
      "Operation: ping, catalog, stats, metrics, health, verify, simulate, \
       reduction or sweep-status."
    in
    Arg.(value & pos 0 string "ping" & info [] ~docv:"OP" ~doc)
  in
  let client_family_arg =
    let doc = "Family id (required by verify/simulate/reduction/sweep-status)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let client_samples_arg =
    let doc =
      "Verify the 4 corner pairs plus $(docv) seeded samples instead of all \
       4^K pairs."
    in
    Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"M" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Sampling seed.")
  in
  let scratch_arg =
    let doc = "Ask the server for the from-scratch engine (default auto)." in
    Arg.(value & flag & info [ "scratch" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-request deadline: the server answers $(b,deadline_exceeded) when \
       the request has not started within $(docv) milliseconds."
    in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let shards_arg =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N" ~doc:"Shard count (sweep-status).")
  in
  let pairs_arg =
    Arg.(
      value & opt int 5
      & info [ "pairs" ] ~docv:"N" ~doc:"Input pairs (simulate/reduction).")
  in
  let repeat_arg =
    let doc =
      "Send the request $(docv) times on one connection and report the \
       cold-vs-warm speedup."
    in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"R" ~doc)
  in
  let bench_arg =
    let doc =
      "Drive $(docv) concurrent connections, one request each, and assert \
       the served digests agree."
    in
    Arg.(value & opt int 1 & info [ "bench" ] ~docv:"C" ~doc)
  in
  let check_oracle_arg =
    let doc =
      "Also compute the verdict stream in-process and diff its digest \
       against the served one."
    in
    Arg.(value & flag & info [ "check-oracle" ] ~doc)
  in
  let trace_id_arg =
    let doc =
      "Send $(docv) as the request's trace id: the daemon runs the request \
       under it, so both sides' telemetry events carry the same id and \
       join into one span tree."
    in
    Arg.(value & opt (some string) None & info [ "trace-id" ] ~docv:"ID" ~doc)
  in
  let client_obs_arg =
    let doc =
      "Capture this client's own span events as JSONL to $(docv) \
       (stamped with $(b,--trace-id) when given); concatenate with the \
       daemon's capture and render via $(b,hardness profile --from)."
    in
    Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running $(b,hardness serve) daemon: one-shot requests, \
          warm-cache repeats, metrics scrapes, and concurrent-connection \
          bench mode with oracle differentials.")
    Term.(
      const run $ op_arg $ client_family_arg $ k_arg $ client_samples_arg
      $ seed_arg $ scratch_arg $ deadline_arg $ shards_arg $ pairs_arg
      $ repeat_arg $ bench_arg $ socket_arg $ port_arg $ check_oracle_arg
      $ trace_id_arg $ client_obs_arg)

(* ------------------------------------------------------------------- top *)

(* One exposition sample: [name{k="v",...} value].  The parser mirrors
   Expose's renderer (dogfooding: top sees exactly what a scraper sees),
   including label-value unescaping. *)
type msample = {
  m_name : string;
  m_labels : (string * string) list;
  m_value : float;
}

let parse_sample line =
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else begin
    let i = ref 0 in
    while !i < n && line.[!i] <> '{' && line.[!i] <> ' ' do
      incr i
    done;
    if !i = 0 || !i >= n then None
    else begin
      let name = String.sub line 0 !i in
      let labels = ref [] in
      let ok = ref true in
      if line.[!i] = '{' then begin
        incr i;
        while !ok && !i < n && line.[!i] <> '}' do
          let ks = !i in
          while !i < n && line.[!i] <> '=' do
            incr i
          done;
          if !i + 1 >= n || line.[!i + 1] <> '"' then ok := false
          else begin
            let key = String.sub line ks (!i - ks) in
            i := !i + 2;
            let b = Buffer.create 8 in
            let fin = ref false in
            while (not !fin) && !i < n do
              (match line.[!i] with
              | '\\' when !i + 1 < n ->
                  incr i;
                  Buffer.add_char b
                    (match line.[!i] with 'n' -> '\n' | c -> c)
              | '"' -> fin := true
              | c -> Buffer.add_char b c);
              incr i
            done;
            if not !fin then ok := false
            else begin
              labels := (key, Buffer.contents b) :: !labels;
              if !i < n && line.[!i] = ',' then incr i
            end
          end
        done;
        if !i < n && line.[!i] = '}' then incr i else ok := false
      end;
      if not !ok then None
      else begin
        while !i < n && line.[!i] = ' ' do
          incr i
        done;
        match float_of_string_opt (String.sub line !i (n - !i)) with
        | Some v ->
            Some { m_name = name; m_labels = List.rev !labels; m_value = v }
        | None -> None
      end
    end
  end

let top_cmd =
  let open Ch_serve in
  let value ?(default = 0.) samples name =
    match
      List.find_opt (fun s -> s.m_name = name && s.m_labels = []) samples
    with
    | Some s -> s.m_value
    | None -> default
  in
  let quantile samples name q =
    List.find_opt
      (fun s ->
        s.m_name = name && List.assoc_opt "quantile" s.m_labels = Some q)
      samples
    |> Option.fold ~none:"-" ~some:(fun s -> Printf.sprintf "%.0f" s.m_value)
  in
  let render addr_str samples =
    let v = value samples in
    Printf.printf "hardness top — %s   uptime %.0fs   window %.1fs (%d samples)\n"
      addr_str
      (v "ch_serve_uptime_seconds")
      (v "ch_serve_sampler_window_seconds")
      (int_of_float (v "ch_serve_sampler_samples"));
    Printf.printf
      "req/s %.1f   queue %d   running %d/%d workers   warm entries %d   \
       warm rate %.2f\n"
      (v "ch_serve_requests_per_second")
      (int_of_float (v "ch_serve_queue_depth"))
      (int_of_float (v "ch_serve_running"))
      (int_of_float (v "ch_serve_workers"))
      (int_of_float (v "ch_serve_warm_entries"))
      (v "ch_serve_warm_rate");
    Printf.printf "queue wait us: p50 %s  p90 %s  p99 %s\n"
      (quantile samples "ch_serve_queue_wait_us" "0.5")
      (quantile samples "ch_serve_queue_wait_us" "0.9")
      (quantile samples "ch_serve_queue_wait_us" "0.99");
    let clients =
      List.filter (fun s -> s.m_name = "ch_serve_queue_depth_client") samples
    in
    if clients <> [] then begin
      Printf.printf "per-client queue:";
      List.iter
        (fun s ->
          Printf.printf " %s=%d"
            (Option.value (List.assoc_opt "client" s.m_labels) ~default:"?")
            (int_of_float s.m_value))
        clients;
      print_newline ()
    end;
    (* op table: every summary named ch_serve_op_<tag>_us with traffic *)
    let op_of s =
      let p = "ch_serve_op_" and sfx = "_us_count" in
      if
        String.starts_with ~prefix:p s.m_name
        && String.ends_with ~suffix:sfx s.m_name
        && s.m_value > 0.
      then
        Some
          ( String.sub s.m_name (String.length p)
              (String.length s.m_name - String.length p - String.length sfx),
            int_of_float s.m_value )
      else None
    in
    let ops = List.filter_map op_of samples in
    if ops <> [] then begin
      Printf.printf "%-14s %8s %8s %8s %8s  (us)\n" "op" "count" "p50" "p90"
        "p99";
      List.iter
        (fun (tag, count) ->
          let h = "ch_serve_op_" ^ tag ^ "_us" in
          Printf.printf "%-14s %8d %8s %8s %8s\n" tag count
            (quantile samples h "0.5") (quantile samples h "0.9")
            (quantile samples h "0.99"))
        ops
    end;
    let rates =
      List.filter (fun s -> s.m_name = "ch_cache_hit_rate") samples
    in
    if rates <> [] then begin
      Printf.printf "cache hit rate:";
      List.iter
        (fun s ->
          Printf.printf " %s=%.3f"
            (Option.value (List.assoc_opt "kind" s.m_labels) ~default:"?")
            s.m_value)
        rates;
      print_newline ()
    end;
    let fams =
      List.filter_map
        (fun s ->
          let p = "ch_serve_family_" and sfx = "_pairs" in
          if
            String.starts_with ~prefix:p s.m_name
            && String.ends_with ~suffix:sfx s.m_name
          then
            Some
              ( String.sub s.m_name (String.length p)
                  (String.length s.m_name - String.length p
                 - String.length sfx),
                int_of_float s.m_value )
          else None)
        samples
    in
    if fams <> [] then begin
      Printf.printf "family pairs served:";
      List.iter (fun (f, n) -> Printf.printf " %s=%d" f n) fams;
      print_newline ()
    end
  in
  let run socket port interval iters plain =
    match resolve_addr socket port with
    | Error msg ->
        Printf.eprintf "top: %s\n" msg;
        1
    | Ok addr -> (
        let addr_str =
          match addr with
          | Server.Unix_socket p -> p
          | Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
        in
        try
          let c = Client.connect ~retries:20 addr in
          let fetch () =
            match
              Client.roundtrip c
                [
                  {
                    Protocol.rq_id = 0;
                    rq_op = Protocol.Metrics;
                    rq_deadline_ms = None;
                    rq_trace = None;
                  };
                ]
            with
            | [ { Protocol.rs_outcome = Protocol.Payload body; _ } ] ->
                Option.bind (Jsonx.mem "text" body) Jsonx.as_str
            | _ -> None
          in
          let code = ref 0 in
          let i = ref 0 in
          let continue () = !code = 0 && (iters = 0 || !i < iters) in
          while continue () do
            incr i;
            (match fetch () with
            | None ->
                Printf.eprintf "top: daemon answered no metrics\n";
                code := 1
            | Some text ->
                let samples =
                  List.filter_map parse_sample
                    (String.split_on_char '\n' text)
                in
                if not plain then print_string "\027[H\027[2J";
                render addr_str samples;
                flush stdout);
            if continue () then Thread.delay interval
          done;
          Client.close c;
          !code
        with
        | Unix.Unix_error (e, _, _) ->
            Printf.eprintf "top: cannot reach daemon: %s\n"
              (Unix.error_message e);
            1
        | Protocol.Protocol_error msg ->
            Printf.eprintf "top: protocol error: %s\n" msg;
            1
        | Failure msg ->
            Printf.eprintf "top: %s\n" msg;
            1)
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"S" ~doc:"Seconds between refreshes.")
  in
  let iters_arg =
    Arg.(
      value & opt int 0
      & info [ "iters" ] ~docv:"N"
          ~doc:"Stop after $(docv) refreshes (0 = run until interrupted).")
  in
  let plain_arg =
    let doc = "No screen clearing between refreshes (for logs and CI)." in
    Arg.(value & flag & info [ "plain" ] ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running daemon, built on the metrics op: request \
          rate, queue depths, per-op latency quantiles, cache hit rates \
          and per-family throughput, refreshed until interrupted.")
    Term.(
      const run $ socket_arg $ port_arg $ interval_arg $ iters_arg $ plain_arg)

let () =
  let info =
    Cmd.info "hardness" ~version:"1.0"
      ~doc:"Machine-checked constructions from Hardness of Distributed Optimization (PODC 2019)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            verify_cmd;
            simulate_cmd;
            reduction_cmd;
            replay_cmd;
            sweep_cmd;
            profile_cmd;
            serve_cmd;
            client_cmd;
            top_cmd;
            Bench_diff.cmd;
          ]))
