(* Command-line front end: list, inspect, and verify the lower-bound
   families, and run the Theorem 1.1 Alice-Bob simulation. *)

open Cmdliner
open Ch_cc
open Ch_core
open Ch_lbgraphs

let catalog ~k =
  let approx = Maxis_approx_lb.make_params ~ell:2 ~k:2 () in
  let kmds r_k = Kmds_lb.make_params ~seed:1 ~k:r_k ~ell:6 ~t_count:6 ~r:2 () in
  let steiner_p = Steiner_approx_lb.make_params ~seed:1 ~ell:6 ~t_count:5 ~r:2 () in
  let restricted = Mds_restricted_lb.make_params ~seed:1 ~ell:6 ~t_count:6 ~r:2 () in
  [
    ("mds", Mds_lb.family ~k);
    ("maxis", Maxis_lb.family ~k);
    ("mvc", Maxis_lb.mvc_family ~k);
    ("hampath", Hampath_lb.path_family ~k);
    ("hamcycle", Hampath_lb.cycle_family ~k);
    ("hamcycle-undirected", Hampath_lb.undirected_cycle_family ~k);
    ("hampath-undirected", Hampath_lb.undirected_path_family ~k);
    ("2ecss", Hampath_lb.ecss_family ~k);
    ("steiner", Steiner_lb.family ~k);
    ("maxcut", Maxcut_lb.family ~k);
    ("2spanner", Spanner_lb.family ~k);
    ("maxis-78-weighted", Maxis_approx_lb.weighted_family approx);
    ("maxis-78-unweighted", Maxis_approx_lb.unweighted_family approx);
    ("maxis-56", Maxis_approx_lb.linear_family approx);
    ("2mds", Kmds_lb.family (kmds 2));
    ("3mds", Kmds_lb.family (kmds 3));
    ("steiner-node-weighted", Steiner_approx_lb.node_weighted_family steiner_p);
    ("steiner-directed", Steiner_approx_lb.directed_family steiner_p);
    ("mds-restricted", Mds_restricted_lb.family restricted);
  ]

let k_arg =
  let doc = "Construction parameter k (a power of two, at least 2)." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let list_cmd =
  let run k =
    Printf.printf "%-24s %8s %8s %6s\n" "family" "n" "K" "cut";
    List.iter
      (fun (name, fam) ->
        Printf.printf "%-24s %8d %8d %6d\n" name fam.Framework.nvertices
          fam.Framework.input_bits (Framework.cut_size fam))
      (catalog ~k);
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the lower-bound families and their parameters.")
    Term.(const run $ k_arg)

let family_arg =
  let doc = "Family name (see the list command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)

let samples_arg =
  let doc = "Number of random input pairs to verify." in
  Arg.(value & opt int 20 & info [ "samples" ] ~doc)

let exhaustive_arg =
  let doc = "Verify all 4^K input pairs (K must be small)." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let verify_cmd =
  let run k name samples exhaustive =
    match List.assoc_opt name (catalog ~k) with
    | None ->
        Printf.eprintf "unknown family %S; try the list command\n" name;
        1
    | Some fam ->
        let failures, total =
          if exhaustive then Framework.verify_exhaustive fam
          else Framework.verify_random ~seed:11 ~samples fam
        in
        let sided = Framework.check_sidedness ~seed:3 ~samples:8 fam in
        Printf.printf
          "%s: property verified on %d/%d input pairs; Definition 1.1 side \
           conditions: %b\n"
          fam.Framework.name (total - failures) total sided;
        let lb =
          Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
            ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
        in
        Printf.printf "Theorem 1.1 bound at this scale: Ω(%.1f) rounds\n" lb;
        if failures = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a family's defining iff-property with the exact solvers.")
    Term.(const run $ k_arg $ family_arg $ samples_arg $ exhaustive_arg)

let simulate_cmd =
  let run k pairs =
    let fam = Mds_lb.family ~k in
    let target = Mds_lb.target_size ~k in
    Printf.printf "Simulating exact-MDS CONGEST on G_{x,y} (k=%d, n=%d, cut=%d)\n" k
      fam.Framework.nvertices (Framework.cut_size fam);
    let all_ok = ref true in
    for i = 0 to pairs - 1 do
      let x = Bits.random ~seed:(3 * i) ~density:0.7 (k * k) in
      let y = Bits.random ~seed:((3 * i) + 1) ~density:0.7 (k * k) in
      let sim =
        Framework.simulate_alice_bob fam ~solver:Ch_solvers.Domset.min_size
          ~accept:(fun gamma -> gamma <= target)
          x y
      in
      if not sim.Framework.decision_correct then all_ok := false;
      Printf.printf "  pair %2d: rounds=%4d  cut bits=%6d  %s\n" i
        sim.Framework.rounds sim.Framework.cut_bits
        (if sim.Framework.decision_correct then "correct" else "WRONG")
    done;
    if !all_ok then 0 else 1
  in
  let pairs_arg =
    Arg.(value & opt int 5 & info [ "pairs" ] ~doc:"Number of input pairs.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the Theorem 1.1 Alice-Bob simulation on the MDS family.")
    Term.(const run $ k_arg $ pairs_arg)

let reduction_cmd =
  let open Ch_reduction in
  let run k name pairs exhaustive trace_file seed =
    let spec =
      match name with
      | "mds" ->
          Some
            (Simulate.gather_spec
               ~name:(Printf.sprintf "mds-k%d" k)
               (Mds_lb.family ~k) ~solver:Ch_solvers.Domset.min_size
               ~accept:(fun a -> a <= Mds_lb.target_size ~k))
      | "maxis" ->
          Some
            (Simulate.gather_spec
               ~name:(Printf.sprintf "maxis-k%d" k)
               (Maxis_lb.family ~k) ~solver:Ch_solvers.Mis.alpha
               ~accept:(fun a -> a >= Maxis_lb.alpha_target ~k))
      | "maxcut" ->
          Some
            (Simulate.gather_spec
               ~name:(Printf.sprintf "maxcut-k%d" k)
               (Maxcut_lb.family ~k)
               ~solver:(fun g -> fst (Ch_solvers.Maxcut.max_cut g))
               ~accept:(fun a -> a >= Maxcut_lb.target_weight ~k))
      | _ -> None
    in
    match spec with
    | None ->
        Printf.eprintf "unknown reduction family %S; try mds, maxis or maxcut\n"
          name;
        1
    | Some spec -> (
        let fam = spec.Simulate.sfam in
        try
          let raw =
            if exhaustive then Bound.exhaustive_pairs fam
            else Bound.sampled_pairs fam ~seed ~samples:pairs
          in
          let swept, skipped = Bound.connected_pairs fam raw in
          let sweep_traced () =
            match trace_file with
            | None -> Bound.sweep spec swept
            | Some file ->
                let oc = open_out file in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () -> Bound.sweep ~trace:(Trace.jsonl oc) spec swept)
          in
          let _, report = sweep_traced () in
          Format.printf "%a@." Bound.pp_report report;
          if skipped > 0 then
            Format.printf
              "skipped %d disconnected pair%s (outside the CONGEST model)@."
              skipped
              (if skipped = 1 then "" else "s");
          (match trace_file with
          | Some file -> Format.printf "trace written to %s@." file
          | None -> ());
          if
            report.Bound.rep_all_match && report.Bound.rep_all_correct
            && report.Bound.rep_all_within_budget
          then 0
          else 1
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          1)
  in
  let family_arg =
    let doc = "Reduction family: $(b,mds), $(b,maxis) or $(b,maxcut)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let pairs_arg =
    let doc = "Number of sampled input pairs (on top of the four corners)." in
    Arg.(value & opt int 8 & info [ "pairs" ] ~doc)
  in
  let exhaustive_arg =
    let doc = "Sweep all 4^K input pairs (K must be at most 5)." in
    Arg.(value & flag & info [ "exhaustive" ] ~doc)
  in
  let trace_arg =
    let doc = "Write the per-message/per-round trace as JSONL to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 41 & info [ "seed" ] ~doc:"Sampling seed.")
  in
  Cmd.v
    (Cmd.info "reduction"
       ~doc:
         "Mechanize Theorem 1.1: compile the CONGEST run on G_{x,y} into a \
          two-party transcript, difference it against the network oracle, \
          and report the empirical lower-bound figure.")
    Term.(
      const run $ k_arg $ family_arg $ pairs_arg $ exhaustive_arg $ trace_arg
      $ seed_arg)

let () =
  let info =
    Cmd.info "hardness" ~version:"1.0"
      ~doc:"Machine-checked constructions from Hardness of Distributed Optimization (PODC 2019)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ list_cmd; verify_cmd; simulate_cmd; reduction_cmd ]))
