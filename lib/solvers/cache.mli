open Ch_graph

(** Memoized core preprocessing for the exact solvers.

    The lower-bound families (Definition 1.1) share one fixed gadget core
    across the whole 2^K × 2^K input-pair space: only O(k) input edges
    vary per pair.  This module precomputes the solver work that depends
    on the core alone — Steiner connectivity tables, the conditioned
    max-cut table, dominating-set balls — and answers per-pair queries
    from those tables plus the input-edge delta, exactly matching the
    from-scratch solver results.

    Prepared tables are memoized globally, keyed by
    {!Props.structural_hash} of the core graph plus the query parameters
    (with a full structural-equality re-check, so hash collisions cannot
    serve wrong tables).  Tables are immutable once published and safe to
    share across domains; the per-instance query scratch is not, so use
    one prepared instance per worker (the framework prepares one per
    verification chunk).

    {b Counters:} a [miss] is a core-table computation; a [hit] is an
    operation served from cached tables (a memoized prepare, or a
    per-pair query). *)

type stats = { hits : int; misses : int }

(** {1 Steiner trees: {!Steiner.min_extra_nodes} on core + input edges} *)

type steiner

val steiner_prepare : Graph.t -> terminals:int list -> cap:int -> steiner
(** Enumerate, in size order, every candidate connector set of at most
    [cap] non-terminals (the same candidate space as
    {!Steiner.min_extra_nodes} with [~cap]) and store each vertex's core
    component id.  @raise Invalid_argument when the graph has no or
    out-of-range terminals, [n > 250], or the subset space is too large
    to tabulate. *)

val steiner_min_extra : steiner -> extra:(int * int) list -> int option
(** The minimum number of non-terminal connector vertices making the
    terminals connected in [core + extra], i.e. exactly
    [Steiner.min_extra_nodes ~cap core_with_extra terminals]: candidate
    sets are replayed in the same size order, unioning only the [extra]
    edges over the precomputed component ids.  [extra] edges must stay
    within the core vertex range (endpoints outside the candidate set are
    ignored, as in the from-scratch solver). *)

val steiner_stats : steiner -> stats

(** {1 Max cut: conditioned enumeration over the volatile vertices} *)

type maxcut

val maxcut_prepare : Graph.t -> volatile:int list -> maxcut
(** Tabulate {!Maxcut.conditioned_max} of the core over the [volatile]
    vertices — the only vertices input edges may touch.
    @raise Invalid_argument when [n > 30] (the exact solver's limit). *)

val maxcut_max : ?stop_at:int -> maxcut -> extra:(int * int * int) list -> int
(** The exact maximum cut weight of [core + extra], i.e.
    [fst (Maxcut.max_cut core_with_extra)], computed as
    [max_a (m.(a) + extra_cut a)] over the [2^|volatile|] volatile
    assignments only.  Every [extra] edge [(u, v, w)] must have both
    endpoints volatile.  With [~stop_at:b] the scan ends at the first
    assignment reaching [b]: the result is the true maximum when below
    [b], and any result ≥ [b] certifies the true maximum is ≥ [b] — so
    comparisons against [b] are exact either way. *)

val maxcut_stats : maxcut -> stats

(** {1 Hamiltonian paths: shared adjacency bitsets} *)

type hampath

val hampath_prepare : Digraph.t -> hampath
(** Snapshot the core digraph's successor/predecessor bitsets, memoized
    on (n, sorted arc list). *)

val hampath_directed_path : hampath -> extra:(int * int) list -> int list option
(** [Hamilton.directed_path] of [core + extra]: the shared bitsets are
    patched copy-on-write on the rows the extra arcs touch, then searched
    through {!Hamilton.directed_path_over}.  Extra arcs must stay in
    range; duplicates of core arcs are harmless (bitset inserts). *)

val hampath_stats : hampath -> stats

(** {1 Max independent set: conditioned table over the volatile vertices} *)

type mis

val mis_prepare : Graph.t -> volatile:int list -> mis
(** For every subset A of [volatile] that is independent in the core, the
    table conceptually holds [|A| + Mis.alpha (core minus volatile minus
    N(A))] — the best completion of A outside the volatile set, which no
    volatile-volatile input edge can change.  The build is lazy: it
    enumerates the subsets and stores only the admissible upper bound
    [|A| + alpha(core minus volatile)] per entry (α is monotone under
    induced subgraphs); exact values are solved on demand at query time
    and memoized, so subsets no query needs are never solved.
    @raise Invalid_argument when there are more than 62 volatile vertices
    or more than 2^16 core-independent subsets (the families' row cliques
    keep it at (k+1)^4). *)

val mis_alpha : mis -> extra:(int * int) list -> int
(** α(core + extra), i.e. exactly [Mis.alpha core_with_extra]: scans the
    compatible subsets (those containing no [extra] edge) in decreasing
    upper-bound order, lazily evaluating until the next bound cannot beat
    the best exact value.  Every [extra] edge must have both endpoints
    volatile. *)

val mis_stats : mis -> stats

(** {1 Max weight independent set: conditioned table, weighted values} *)

type mwis

val mwis_prepare : Graph.t -> volatile:int list -> mwis
(** The weighted twin of {!mis_prepare}: for every core-independent
    subset A of [volatile], tabulate [w(A) + mwis(core minus volatile
    minus N(A))] under the core's vertex weights.  Sound for families
    whose inputs only add volatile-volatile edges and leave the weights
    fixed (the Theorem 4.3 gadget).  Same limits as {!mis_prepare}. *)

val mwis_weight : mwis -> extra:(int * int) list -> int
(** The maximum independent-set weight of [core + extra], i.e. exactly
    [fst (Mis.max_weight_set core_with_extra)].  Every [extra] edge must
    have both endpoints volatile. *)

val mwis_stats : mwis -> stats

(** {1 Node-weighted Steiner: connector-set feasibility table} *)

type nwsteiner

val nwsteiner_prepare : Graph.t -> terminals:int list -> nwsteiner
(** Tabulate, for every subset S of non-terminals, whether the subgraph
    induced on [terminals ∪ S] is connected.  {!Steiner.node_weighted}
    equals the minimum of [w(terminals ∪ S)] over feasible S, so for
    fixed-topology families whose inputs only move vertex weights
    (Theorem 4.4, node-weighted) a per-pair query is a weight fold, not a
    Dreyfus–Wagner run.  @raise Invalid_argument when there are more than
    18 non-terminals. *)

val nwsteiner_cost : nwsteiner -> weights:int array -> int
(** [Steiner.node_weighted] of the core under [weights] (one weight per
    core vertex): minimum over the feasible connector masks via an
    incremental subset-sum.  Raises the same [Invalid_argument]s as the
    from-scratch solver on negative weights or disconnected terminals. *)

val nwsteiner_stats : nwsteiner -> stats

(** {1 Directed Steiner: shared reversed-adjacency snapshot} *)

type dsteiner

val dsteiner_prepare : Digraph.t -> root:int -> terminals:int list -> dsteiner
(** Snapshot the core's reversed adjacency rows, memoized on
    (n, sorted arc list, root, terminals) like {!hampath_prepare}. *)

val dsteiner_cost :
  ?cutoff:int -> dsteiner -> extra:(int * int * int) list -> int option
(** [Steiner.directed ~root terminals] of [core + extra]: the shared
    rows are patched copy-on-write (extra arcs consed onto the rows they
    enter), then solved through {!Steiner.directed_over}.  Extra arcs
    must stay in range; duplicates of core arcs are harmless (the DW
    relaxation takes minima).  [cutoff] as in {!Steiner.directed}: exact
    decision against the bound, with dp rows pruned against it. *)

val dsteiner_stats : dsteiner -> stats

(** {1 Dominating sets: shared closed balls} *)

type domset

val domset_prepare : Graph.t -> radius:int -> domset
(** Precompute the closed radius-[radius] balls of the core, any
    [radius >= 1]. *)

val domset_balls : domset -> extra:(int * int) list -> Bitset.t array
(** Balls of [core + extra]: untouched balls are shared with the core
    tables (copy-on-write on the patched endpoints), so pass the result
    to [Domset.min_size ~balls] / [min_weight_set ~balls] — which only
    read them — on the patched graph.  With [radius > 1] an extra edge
    can perturb balls far from its endpoints, so only [extra = []] is
    accepted there (the weights-only families query exactly that way).
    @raise Invalid_argument otherwise. *)

val domset_stats : domset -> stats

val clear : unit -> unit
(** Drop every memoized core table (counters of live prepared instances
    are unaffected).  Mainly for tests measuring memo behavior. *)

(** {1 Snapshot / restore}

    The sweep store ([Ch_sweep]) and the serve daemon ([Ch_serve])
    persist the memo tables, so a resumed sweep — or a freshly started
    server — begins from a previous run's core tables instead of
    rebuilding them.  Snapshots carry all seven memo families: the
    MIS/MWIS tables, whose live form holds a mutex and an evaluation
    closure, are projected to their marshal-safe arrays (masks, bounds,
    lazily-solved values) and {!restore} re-derives a fresh lock and
    evaluator from the entry's frozen graph — solved entries survive the
    round trip, unsolved ones stay lazy. *)

val snapshot : unit -> string
(** A self-contained byte string of the current marshal-safe memo
    contents, deterministic in those contents (buckets and keyed entries
    are sorted). *)

val restore : string -> int
(** Merge a {!snapshot} back in, keeping any table the process already
    holds (full structural re-check, never a blind overwrite); returns
    the number of tables added.  @raise Failure on a byte string that is
    not a cache snapshot or fails to parse — callers checksum snapshots
    before restoring, so this is a defense-in-depth check, not the
    integrity mechanism. *)
