open Ch_graph

(** Memoized core preprocessing for the exact solvers.

    The lower-bound families (Definition 1.1) share one fixed gadget core
    across the whole 2^K × 2^K input-pair space: only O(k) input edges
    vary per pair.  This module precomputes the solver work that depends
    on the core alone — Steiner connectivity tables, the conditioned
    max-cut table, dominating-set balls — and answers per-pair queries
    from those tables plus the input-edge delta, exactly matching the
    from-scratch solver results.

    Prepared tables are memoized globally, keyed by
    {!Props.structural_hash} of the core graph plus the query parameters
    (with a full structural-equality re-check, so hash collisions cannot
    serve wrong tables).  Tables are immutable once published and safe to
    share across domains; the per-instance query scratch is not, so use
    one prepared instance per worker (the framework prepares one per
    verification chunk).

    {b Counters:} a [miss] is a core-table computation; a [hit] is an
    operation served from cached tables (a memoized prepare, or a
    per-pair query). *)

type stats = { hits : int; misses : int }

(** {1 Steiner trees: {!Steiner.min_extra_nodes} on core + input edges} *)

type steiner

val steiner_prepare : Graph.t -> terminals:int list -> cap:int -> steiner
(** Enumerate, in size order, every candidate connector set of at most
    [cap] non-terminals (the same candidate space as
    {!Steiner.min_extra_nodes} with [~cap]) and store each vertex's core
    component id.  @raise Invalid_argument when the graph has no or
    out-of-range terminals, [n > 250], or the subset space is too large
    to tabulate. *)

val steiner_min_extra : steiner -> extra:(int * int) list -> int option
(** The minimum number of non-terminal connector vertices making the
    terminals connected in [core + extra], i.e. exactly
    [Steiner.min_extra_nodes ~cap core_with_extra terminals]: candidate
    sets are replayed in the same size order, unioning only the [extra]
    edges over the precomputed component ids.  [extra] edges must stay
    within the core vertex range (endpoints outside the candidate set are
    ignored, as in the from-scratch solver). *)

val steiner_stats : steiner -> stats

(** {1 Max cut: conditioned enumeration over the volatile vertices} *)

type maxcut

val maxcut_prepare : Graph.t -> volatile:int list -> maxcut
(** Tabulate {!Maxcut.conditioned_max} of the core over the [volatile]
    vertices — the only vertices input edges may touch.
    @raise Invalid_argument when [n > 30] (the exact solver's limit). *)

val maxcut_max : maxcut -> extra:(int * int * int) list -> int
(** The exact maximum cut weight of [core + extra], i.e.
    [fst (Maxcut.max_cut core_with_extra)], computed as
    [max_a (m.(a) + extra_cut a)] over the [2^|volatile|] volatile
    assignments only.  Every [extra] edge [(u, v, w)] must have both
    endpoints volatile. *)

val maxcut_stats : maxcut -> stats

(** {1 Dominating sets: shared closed balls} *)

type domset

val domset_prepare : Graph.t -> radius:int -> domset
(** Precompute the closed radius-[radius] balls of the core.  Only
    [radius = 1] is supported: adding an edge then perturbs exactly the
    two endpoint balls. *)

val domset_balls : domset -> extra:(int * int) list -> Bitset.t array
(** Balls of [core + extra]: untouched balls are shared with the core
    tables (copy-on-write on the patched endpoints), so pass the result
    to [Domset.min_size ~balls] / [min_weight_set ~balls] — which only
    read them — on the patched graph. *)

val domset_stats : domset -> stats

val clear : unit -> unit
(** Drop every memoized core table (counters of live prepared instances
    are unaffected).  Mainly for tests measuring memo behavior. *)
