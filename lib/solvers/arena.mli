open Ch_graph

(** Reusable scratch buffers for the recursive search kernels.

    Branch-and-bound nodes need short-lived bitsets and int arrays
    (candidate lists, reachability marks, working copies).  Allocating
    them per node makes the hot loops GC-bound; an arena hands out
    buffers from a free pool and takes them back at node exit, so a
    search allocates O(search depth) buffers total instead of O(nodes).

    Buffers are fixed-capacity ([create n] sizes every buffer for a
    graph on [n] vertices).  [bits] returns a {e cleared} bitset;
    [ints] returns an array with {b unspecified} contents — callers
    track how much of it they filled.  Releasing is optional (an
    exception may unwind past [put_*]; the stranded buffers die with
    the arena) but releasing on the normal path is what makes the pool
    warm.  An arena is single-domain scratch: create one per solver
    call, never share across domains. *)

type t

val create : int -> t
(** [create capacity] is an empty arena whose bitsets hold
    [0 .. capacity-1] and whose int arrays have length [capacity]. *)

val capacity : t -> int

val bits : t -> Bitset.t
(** A cleared bitset from the pool (or freshly allocated). *)

val put_bits : t -> Bitset.t -> unit
(** Return a bitset to the pool.  @raise Invalid_argument on capacity
    mismatch. *)

val ints : t -> int array
(** An int array of length [capacity] from the pool.  Contents are
    unspecified. *)

val put_ints : t -> int array -> unit
(** Return an int array to the pool.  @raise Invalid_argument on length
    mismatch. *)
