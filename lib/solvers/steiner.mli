open Ch_graph

(** Exact Steiner tree solvers: the classic Dreyfus–Wagner dynamic program
    over terminal subsets (edge-weighted), its node-weighted and directed
    (arborescence) variants, and a cardinality solver used by the
    Theorem 2.7 family.

    All run in O(3^|T| · poly(n)); the families in this repository use at
    most ~10 terminals for the weighted variants. *)

val dreyfus_wagner : Graph.t -> int list -> int
(** Minimum total edge weight of a tree spanning the terminals.
    @raise Invalid_argument if no terminals or they are disconnected. *)

val node_weighted : Graph.t -> int list -> int
(** Minimum total {e vertex} weight of a connected subgraph containing all
    terminals (terminal weights are counted too). *)

val directed : ?cutoff:int -> Digraph.t -> root:int -> int list -> int option
(** Minimum total arc weight of an out-arborescence rooted at [root]
    reaching all terminals; [None] if some terminal is unreachable.
    With [~cutoff:b] the solve is an exact decision: the result is
    [Some c] with the true minimum [c] when [c ≤ b], and [None]
    otherwise — dp entries above the bound are cancelled before they
    spawn further relaxation work. *)

val directed_over :
  ?cutoff:int ->
  reversed:(int * int) list array -> root:int -> int list -> int option
(** {!directed} over a prebuilt reversed-adjacency view:
    [reversed.(v)] lists [(u, w)] per arc [u → v].  Lets callers share one
    core snapshot across many solves, patching only the rows their extra
    arcs enter — see {!Ch_solvers.Cache}. *)

val min_extra_nodes : ?cap:int -> Graph.t -> int list -> int option
(** Smallest number of non-terminal vertices [S] such that the subgraph
    induced on [terminals ∪ S] is connected (so the minimum Steiner tree
    has exactly [|terminals| + |S| - 1] edges in the unweighted case).
    Searches sizes [0..cap] (default: all).  Terminal-only components are
    contracted once per call; candidate subsets whose remaining picks
    cannot supply enough spanning merges are pruned before enumeration. *)

val min_edges : ?cap:int -> Graph.t -> int list -> int option
(** Minimum number of edges of a Steiner tree for the terminals, via
    {!min_extra_nodes}. *)
