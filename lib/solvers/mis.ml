open Ch_graph
module Obs = Ch_obs.Obs

let c_nodes = Obs.counter "solver.mis.nodes"
let c_pruned = Obs.counter "solver.mis.pruned"
let sp_mis = Obs.span "solver.mis"

(* Branch and bound for maximum weight independent sets.

   The search state is a mutable "dynamic graph" (present set + adjacency
   bitsets + weights) that is copied at branch points.  Kernelization
   applies the classical weighted rules:
     - isolated vertices are taken;
     - pendant v-u: take v when w(v) >= w(u), otherwise fold the choice
       into u (u's weight drops by w(v));
     - degree-2 v with neighbors u,w: take v when it dominates them
       (adjacent case: w(v) >= max; non-adjacent: w(v) >= w(u)+w(w)),
       otherwise fold {v,u,w} into a single vertex when w(v) >= max;
     - domination: adjacent u,v with N[u] ⊆ N[v] and w(u) >= w(v) kill v.
   Folds are undone on the way back up to reconstruct a witness set.
   The upper bound is the minimum of a greedy clique cover bound and a
   greedy matching bound; connected components are solved independently. *)

type dyn = {
  n : int;
  present : Bitset.t;
  adj : Bitset.t array;
  weights : int array;
}

type fold =
  | Pendant of int * int  (* (v, u): u in set ⇒ keep; else add v *)
  | Fold2 of int * int * int  (* (v, u, w): v in set ⇒ u and w; else v *)

let neg_inf = min_int / 2

let copy_dyn d =
  {
    n = d.n;
    present = Bitset.copy d.present;
    adj = Array.map Bitset.copy d.adj;
    weights = Array.copy d.weights;
  }

let deg d v = Bitset.inter_cardinal d.adj.(v) d.present

let clique_bound d =
  let cliques = ref [] in
  Bitset.iter
    (fun v ->
      let rec place = function
        | [] -> cliques := (Bitset.of_list d.n [ v ], ref d.weights.(v)) :: !cliques
        | (members, maxw) :: rest ->
            if Bitset.subset members d.adj.(v) then begin
              Bitset.add members v;
              maxw := max !maxw d.weights.(v)
            end
            else place rest
      in
      place !cliques)
    d.present;
  List.fold_left (fun acc (_, maxw) -> acc + !maxw) 0 !cliques

let matching_bound ~total d =
  (* total weight minus, per greedy matching edge, the lighter endpoint *)
  let unmatched = Bitset.copy d.present in
  let saving = ref 0 in
  Bitset.iter
    (fun v ->
      if Bitset.mem unmatched v then begin
        let candidates = Bitset.inter d.adj.(v) unmatched in
        Bitset.remove candidates v;
        if not (Bitset.is_empty candidates) then begin
          let u = Bitset.choose candidates in
          Bitset.remove unmatched v;
          Bitset.remove unmatched u;
          saving := !saving + min d.weights.(v) d.weights.(u)
        end
      end)
    d.present;
  total - !saving

(* Staged admissible bounds, cheapest first: the raw present weight
   prunes most deep nodes on its own; the matching and clique-cover
   bounds only run when the cheaper stages fail to cut. *)
let bound_below d lb =
  let total = ref 0 in
  Bitset.iter (fun v -> total := !total + d.weights.(v)) d.present;
  !total <= lb
  || matching_bound ~total:!total d <= lb
  || clique_bound d <= lb

(* Greedy max-weight independent set: repeatedly take the vertex
   maximizing w(v)/(deg(v)+1) — the weighted Turán heuristic — and
   delete its closed neighborhood.  Seeds branch and bound with a
   non-trivial incumbent so subtrees fail the bound check at entry
   instead of being expanded first. *)
let greedy_incumbent d0 =
  let d = copy_dyn d0 in
  let w = ref 0 and set = ref [] in
  while not (Bitset.is_empty d.present) do
    let best = ref (-1) and bw = ref 0 and bd = ref 0 in
    Bitset.iter
      (fun v ->
        let dv = deg d v in
        if !best < 0 || d.weights.(v) * (!bd + 1) > !bw * (dv + 1) then begin
          best := v;
          bw := d.weights.(v);
          bd := dv
        end)
      d.present;
    let v = !best in
    w := !w + d.weights.(v);
    set := v :: !set;
    Bitset.diff_into d.present d.adj.(v);
    Bitset.remove d.present v
  done;
  (!w, !set)

(* Kernelization; mutates [d], returns (forced weight, forced vertices,
   folds in application order). *)
let reduce d =
  let acc = ref 0 and taken = ref [] and folds = ref [] in
  let take v =
    acc := !acc + d.weights.(v);
    taken := v :: !taken;
    Bitset.diff_into d.present d.adj.(v);
    Bitset.remove d.present v
  in
  let fold_pendant v u =
    acc := !acc + d.weights.(v);
    d.weights.(u) <- d.weights.(u) - d.weights.(v);
    Bitset.remove d.present v;
    folds := Pendant (v, u) :: !folds
  in
  let fold2 v u w =
    let wv = d.weights.(v) in
    acc := !acc + wv;
    d.weights.(v) <- d.weights.(u) + d.weights.(w) - wv;
    let newn = Bitset.union d.adj.(u) d.adj.(w) in
    Bitset.inter_into newn d.present;
    Bitset.remove newn v;
    Bitset.remove newn u;
    Bitset.remove newn w;
    Bitset.remove d.present u;
    Bitset.remove d.present w;
    d.adj.(v) <- newn;
    Bitset.iter (fun x -> Bitset.add d.adj.(x) v) newn;
    folds := Fold2 (v, u, w) :: !folds
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Bitset.iter
      (fun v ->
        if Bitset.mem d.present v then begin
          let nbrs = Bitset.inter d.adj.(v) d.present in
          match Bitset.cardinal nbrs with
          | 0 ->
              take v;
              changed := true
          | 1 ->
              let u = Bitset.choose nbrs in
              if d.weights.(v) >= d.weights.(u) then take v else fold_pendant v u;
              changed := true
          | 2 ->
              let u = Bitset.choose nbrs in
              Bitset.remove nbrs u;
              let w = Bitset.choose nbrs in
              let wv = d.weights.(v) in
              if Bitset.mem d.adj.(u) w then begin
                if wv >= max d.weights.(u) d.weights.(w) then begin
                  take v;
                  changed := true
                end
              end
              else if wv >= d.weights.(u) + d.weights.(w) then begin
                take v;
                changed := true
              end
              else if wv >= max d.weights.(u) d.weights.(w) then begin
                fold2 v u w;
                changed := true
              end
          | _ -> ()
        end)
      (Bitset.copy d.present);
    if not !changed then
      (* domination *)
      Bitset.iter
        (fun u ->
          if Bitset.mem d.present u then
            Bitset.iter
              (fun v ->
                if Bitset.mem d.present v && d.weights.(u) >= d.weights.(v)
                then begin
                  let nu = Bitset.inter d.adj.(u) d.present in
                  Bitset.remove nu v;
                  if Bitset.subset nu d.adj.(v) then begin
                    Bitset.remove d.present v;
                    changed := true
                  end
                end)
              (Bitset.inter d.adj.(u) d.present))
        (Bitset.copy d.present)
  done;
  (!acc, !taken, List.rev !folds)

(* Folds are undone newest-first.  Membership is answered by a bitset
   mirror of the accumulated list: the former [List.mem] probe made
   witness reconstruction O(folds · |set|). *)
let unfold ~n folds set =
  let mem = Bitset.create n in
  List.iter (Bitset.add mem) set;
  let set = ref set in
  List.iter
    (fun fold ->
      match fold with
      | Pendant (v, u) ->
          if not (Bitset.mem mem u) then begin
            Bitset.add mem v;
            set := v :: !set
          end
      | Fold2 (v, u, w) ->
          if Bitset.mem mem v then begin
            Bitset.remove mem v;
            Bitset.add mem u;
            Bitset.add mem w;
            set := u :: w :: List.filter (( <> ) v) !set
          end
          else begin
            Bitset.add mem v;
            set := v :: !set
          end)
    (List.rev folds);
  !set

let components d =
  let remaining = Bitset.copy d.present in
  let comps = ref [] in
  while not (Bitset.is_empty remaining) do
    let seed = Bitset.choose remaining in
    let comp = Bitset.create d.n in
    let stack = ref [ seed ] in
    Bitset.add comp seed;
    Bitset.remove remaining seed;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          Bitset.iter
            (fun u ->
              Bitset.add comp u;
              Bitset.remove remaining u;
              stack := u :: !stack)
            (Bitset.inter d.adj.(v) remaining)
    done;
    comps := comp :: !comps
  done;
  !comps

(* Best set of weight strictly above [lb] in [d] (owned, mutated), or
   [None].  Forced weight from kernelization is included in the result. *)
let rec solve d lb =
  Obs.bump c_nodes;
  let base, taken, folds = reduce d in
  let lb' = lb - base in
  let finish inner =
    match inner with
    | None -> None
    | Some (w, set) -> Some (w + base, unfold ~n:d.n folds (taken @ set))
  in
  if Bitset.is_empty d.present then
    finish (if 0 > lb' then Some (0, []) else None)
  else
    match components d with
    | comps when List.length comps > 1 ->
        let parts =
          List.map
            (fun comp ->
              let sub = copy_dyn d in
              Bitset.inter_into sub.present comp;
              match solve sub neg_inf with
              | Some r -> r
              | None -> assert false)
            comps
        in
        let w = List.fold_left (fun acc (w, _) -> acc + w) 0 parts in
        if w > lb' then
          finish (Some (w, List.concat_map snd parts))
        else None
    | _ ->
        if bound_below d lb' then begin
          Obs.bump c_pruned;
          None
        end
        else begin
          let v =
            Bitset.fold
              (fun u best ->
                match best with
                | None -> Some u
                | Some b -> if deg d u > deg d b then Some u else best)
              d.present None
            |> Option.get
          in
          let with_v =
            let sub = copy_dyn d in
            Bitset.diff_into sub.present sub.adj.(v);
            Bitset.remove sub.present v;
            match solve sub (lb' - d.weights.(v)) with
            | Some (w, set) -> Some (w + d.weights.(v), v :: set)
            | None -> None
          in
          let lb'' = match with_v with Some (w, _) -> max lb' w | None -> lb' in
          let without_v =
            (* [d] is owned and dead after this branch: consume it in
               place instead of paying a copy_dyn per branch node *)
            Bitset.remove d.present v;
            solve d lb''
          in
          match without_v with Some _ -> finish without_v | None -> finish with_v
        end

let make_dyn ?weights g =
  let weights =
    match weights with Some w -> Array.copy w | None -> Graph.vweights g
  in
  if Array.length weights <> Graph.n g then
    invalid_arg "Mis: weights length mismatch";
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Mis: negative weights unsupported")
    weights;
  { n = Graph.n g; present = Bitset.full (Graph.n g); adj = Graph.adjacency g; weights }

let max_weight_set ?weights g =
  Obs.with_span sp_mis (fun () ->
      let d = make_dyn ?weights g in
      let gw, gset = greedy_incumbent d in
      (* [solve d gw] only returns sets strictly heavier than the greedy
         incumbent; [None] certifies the incumbent is optimal. *)
      match solve d gw with
      | Some (w, set) -> (w, List.sort compare set)
      | None -> (gw, List.sort compare gset))

let alpha g = fst (max_weight_set ~weights:(Array.make (Graph.n g) 1) g)

let max_independent_set g =
  snd (max_weight_set ~weights:(Array.make (Graph.n g) 1) g)

let is_independent g vs =
  let rec ok = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> not (Graph.mem_edge g u v)) rest && ok rest
  in
  ok vs

let min_vertex_cover_size g = Graph.n g - alpha g

let min_vertex_cover g =
  let inside = Array.make (Graph.n g) false in
  List.iter (fun v -> inside.(v) <- true) (max_independent_set g);
  List.filter (fun v -> not inside.(v)) (List.init (Graph.n g) Fun.id)
