open Ch_graph

(** Exact minimum (weight) distance-[radius] dominating sets.

    A set [D] is a radius-[r] dominating set when every vertex is within
    hop distance [r] of some member of [D] (so [radius = 1] is the classic
    dominating set, [radius = k] is the paper's k-MDS).  Branch and bound:
    pick an undominated vertex with the fewest candidate dominators and
    branch over them. *)

val min_weight_set :
  ?radius:int ->
  ?balls:Bitset.t array ->
  ?weights:int array ->
  ?required:int list ->
  Graph.t ->
  int * int list
(** Minimum total weight of a radius-[radius] dominating set (weights
    default to the graph's vertex weights), with a witness.  When
    [required] is given, only those vertices need to be dominated (partial
    domination, used by the Section 5.1 two-party protocols).  When
    [balls] is given, [balls.(v)] {b must} equal the closed hop-[radius]
    ball of [v] in [g]; the solver then skips its own BFS sweep and only
    reads the supplied bitsets (never mutates them), which lets callers
    share precomputed balls across many solves — see {!Ch_solvers.Cache}. *)

val exists_within :
  ?radius:int ->
  ?balls:Bitset.t array ->
  ?weights:int array ->
  ?required:int list ->
  Graph.t ->
  bound:int ->
  bool
(** Is there a dominating set of total weight at most [bound]?  Exact
    decision run as a cost-bounded search: the incumbent is seeded at
    [bound + 1] so subtrees that cannot beat the bound are cancelled at
    node entry, and the first witness within the bound ends the search.
    Equivalent to [fst (min_weight_set …) <= bound], usually much
    faster.  Parameters as in {!min_weight_set}. *)

val min_size : ?radius:int -> ?balls:Bitset.t array -> Graph.t -> int
(** γ(G) for [radius = 1].  [balls] as in {!min_weight_set}. *)

val exists_of_size : ?radius:int -> ?balls:Bitset.t array -> Graph.t -> int -> bool
(** Is there a radius-[radius] dominating set of cardinality at most the
    given bound?  Decision-bounded (see {!exists_within}). *)

val is_dominating : ?radius:int -> Graph.t -> int list -> bool
