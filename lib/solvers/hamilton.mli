open Ch_graph

(** Exact Hamiltonian path / cycle search for directed and undirected
    graphs, with the reachability and dead-end pruning needed to decide the
    paper's ~40-vertex gadget instances quickly. *)

val directed_path : Digraph.t -> int list option
(** A Hamiltonian path with arbitrary endpoints, or [None]. *)

val directed_path_over : succ:Bitset.t array -> pred:Bitset.t array -> int list option
(** {!directed_path} straight over adjacency bitsets (vertex [v]'s
    out-neighbors in [succ.(v)], in-neighbors in [pred.(v)]) — the entry
    point for callers that patch shared core bitsets per query instead of
    rebuilding a digraph ({!Cache.hampath_directed_path}).  The arrays are
    only read. *)

val directed_path_between : Digraph.t -> src:int -> dst:int -> int list option

val directed_cycle : Digraph.t -> int list option
(** A Hamiltonian cycle (listed from an arbitrary start, length [n]). *)

val undirected_path : Graph.t -> int list option

val undirected_cycle : Graph.t -> int list option

val is_directed_path : Digraph.t -> int list -> bool

val is_directed_cycle : Digraph.t -> int list -> bool

val is_undirected_path : Graph.t -> int list -> bool

val is_undirected_cycle : Graph.t -> int list -> bool
