open Ch_graph

(* Reusable scratch buffers for the recursive search kernels.  A branch
   and bound node that needs a temporary bitset or int array takes one
   from the pool and returns it on the way out; after the first few
   levels of recursion the pool is warm and the hot path allocates
   nothing.  Pools follow the searches' stack discipline (acquire at
   node entry, release at node exit), but nothing enforces it: an
   exception unwinding past releases just strands buffers in the arena,
   which is dropped wholesale with the search.  One arena per solver
   call — arenas are not domain-safe and must not be shared. *)

type t = {
  cap : int;
  mutable bits_free : Bitset.t list;
  mutable ints_free : int array list;
}

let create cap =
  if cap < 0 then invalid_arg "Arena.create";
  { cap; bits_free = []; ints_free = [] }

let capacity a = a.cap

let bits a =
  match a.bits_free with
  | b :: rest ->
      a.bits_free <- rest;
      Bitset.clear b;
      b
  | [] -> Bitset.create a.cap

let put_bits a b =
  if Bitset.capacity b <> a.cap then invalid_arg "Arena.put_bits: capacity";
  a.bits_free <- b :: a.bits_free

let ints a =
  match a.ints_free with
  | x :: rest ->
      a.ints_free <- rest;
      x
  | [] -> Array.make (max 1 a.cap) 0

let put_ints a x =
  if Array.length x <> max 1 a.cap then invalid_arg "Arena.put_ints: length";
  a.ints_free <- x :: a.ints_free
