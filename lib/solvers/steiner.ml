open Ch_graph
module Obs = Ch_obs.Obs

let c_dw_rows = Obs.counter "solver.steiner.dw_rows"
let c_subsets = Obs.counter "solver.steiner.subsets"
let c_nodes = Obs.counter "solver.steiner.nodes"
let c_pruned = Obs.counter "solver.steiner.pruned"
let h_subsets = Obs.histogram "solver.steiner.subsets_per_query"
let sp_steiner = Obs.span "solver.steiner"

let inf = max_int / 4

let check_terminals name terminals =
  if terminals = [] then invalid_arg (name ^ ": no terminals")

(* Array-backed binary min-heap on (dist, vertex) pairs, replacing the
   old [Set.Make]-based queue: no functor instantiation, no polymorphic
   compare, no per-operation allocation.  One heap is created per
   Dreyfus–Wagner call and reused across all 2^p rows.  Stale entries
   (pushed before a better distance arrived) are skipped on pop. *)
type heap = {
  mutable hd : int array; (* keys *)
  mutable hv : int array; (* vertices *)
  mutable hn : int;
}

let heap_make n = { hd = Array.make (max 1 n) 0; hv = Array.make (max 1 n) 0; hn = 0 }

let heap_push h d v =
  if h.hn = Array.length h.hd then begin
    let cap = 2 * Array.length h.hd in
    let nd = Array.make cap 0 and nv = Array.make cap 0 in
    Array.blit h.hd 0 nd 0 h.hn;
    Array.blit h.hv 0 nv 0 h.hn;
    h.hd <- nd;
    h.hv <- nv
  end;
  let hd = h.hd and hv = h.hv in
  (* Sift up by hole-shifting: move parents down into the hole, write
     the new entry once at its final slot. *)
  let i = ref h.hn in
  h.hn <- h.hn + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    if hd.(p) > d then begin
      hd.(!i) <- hd.(p);
      hv.(!i) <- hv.(p);
      i := p
    end
    else sifting := false
  done;
  hd.(!i) <- d;
  hv.(!i) <- v

let heap_top_d h = h.hd.(0)
let heap_top_v h = h.hv.(0)

let heap_drop h =
  h.hn <- h.hn - 1;
  let n = h.hn in
  if n > 0 then begin
    let hd = h.hd and hv = h.hv in
    let d = hd.(n) and v = hv.(n) in
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= n then sifting := false
      else begin
        let c = if l + 1 < n && hd.(l + 1) < hd.(l) then l + 1 else l in
        if hd.(c) < d then begin
          hd.(!i) <- hd.(c);
          hv.(!i) <- hv.(c);
          i := c
        end
        else sifting := false
      end
    done;
    hd.(!i) <- d;
    hv.(!i) <- v
  end

(* Dijkstra-style relaxation used by all Dreyfus–Wagner variants: [dist]
   holds tentative values; [adj.(v)] lists [(u, cost of extending from v
   to u)].  Tentative values above [bound] are never written: with
   non-negative costs the popped keys are monotone, so every prefix of a
   path whose final cost is within [bound] is itself within [bound] —
   cutting larger values cannot lose any answer ≤ [bound].  [pops]/[cut]
   accumulate caller-owned stats (flushed to obs once per solve). *)
let relax ?(bound = inf) ~pops ~cut h n dist adj =
  h.hn <- 0;
  for v = 0 to n - 1 do
    if dist.(v) < inf then heap_push h dist.(v) v
  done;
  while h.hn > 0 do
    let d = heap_top_d h and v = heap_top_v h in
    heap_drop h;
    if d = dist.(v) then begin
      incr pops;
      let av = adj.(v) in
      for k = 0 to Array.length av - 1 do
        let u, c = av.(k) in
        let nd = d + c in
        if nd < dist.(u) then
          if nd <= bound then begin
            dist.(u) <- nd;
            heap_push h nd u
          end
          else incr cut
      done
    end
  done

let iter_proper_submasks mask f =
  let sub = ref ((mask - 1) land mask) in
  while !sub > 0 do
    f !sub;
    sub := (!sub - 1) land mask
  done

(* The shared Dreyfus–Wagner engine.  [anchor] is the vertex the final
   answer is read at; after the singleton rows are relaxed we form the
   star upper bound ub = Σᵢ dp[{i}][anchor] − (p−1)·merge_adjust(anchor)
   — the cost of merging all p singleton trees at [anchor], a valid dp
   derivation.  Both dp steps are monotone (merge: a+b−adj(v) with
   a,b ≥ adj(v); relax: d+c with c ≥ 0), so every entry on the optimal
   derivation path is ≤ the optimum ≤ ub: entries above the bound can be
   clamped to [inf] without affecting the answer.  [cutoff] tightens the
   bound further for decision queries — dp[full][anchor] then holds the
   true cost when it is ≤ cutoff and [inf] otherwise. *)
let generic_dw n p ~anchor ?(cutoff = inf) ~leaf ~merge_adjust edges_of =
  let adj = Array.init n (fun v -> Array.of_list (edges_of v)) in
  let pops = ref 0 and cut = ref 0 in
  let h = heap_make n in
  let dp = Array.init (1 lsl p) (fun _ -> Array.make n inf) in
  for i = 0 to p - 1 do
    leaf i dp.(1 lsl i);
    relax ~bound:cutoff ~pops ~cut h n dp.(1 lsl i) adj
  done;
  let ub =
    let s = ref 0 and ok = ref true in
    for i = 0 to p - 1 do
      let d = dp.(1 lsl i).(anchor) in
      if d >= inf then ok := false else s := min inf (!s + d)
    done;
    if (not !ok) || !s >= inf then inf
    else max 0 (!s - ((p - 1) * merge_adjust anchor))
  in
  let bound = min ub cutoff in
  if bound < inf then
    for i = 0 to p - 1 do
      let row = dp.(1 lsl i) in
      for v = 0 to n - 1 do
        if row.(v) > bound && row.(v) < inf then begin
          row.(v) <- inf;
          incr cut
        end
      done
    done;
  for mask = 1 to (1 lsl p) - 1 do
    if mask land (mask - 1) <> 0 then begin
      let row = dp.(mask) in
      iter_proper_submasks mask (fun sub ->
          if sub < mask lxor sub then ()
          else
            let other = mask lxor sub in
            let rs = dp.(sub) and ro = dp.(other) in
            for v = 0 to n - 1 do
              if rs.(v) < inf && ro.(v) < inf then begin
                let cand = rs.(v) + ro.(v) - merge_adjust v in
                if cand < row.(v) then
                  if cand <= bound then row.(v) <- cand else incr cut
              end
            done);
      relax ~bound ~pops ~cut h n row adj
    end
  done;
  if Obs.enabled () then begin
    Obs.incr c_dw_rows (1 lsl p);
    Obs.incr c_nodes !pops;
    if !cut > 0 then Obs.incr c_pruned !cut
  end;
  dp

let dreyfus_wagner g terminals =
  check_terminals "Steiner.dreyfus_wagner" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Graph.n g and p = Array.length terminals in
      if p = 1 then 0
      else begin
        let edges_of v = Graph.neighbors_w g v in
        let leaf i row = row.(terminals.(i)) <- 0 in
        let dp =
          generic_dw n p ~anchor:terminals.(0) ~leaf
            ~merge_adjust:(fun _ -> 0)
            edges_of
        in
        let ans = dp.((1 lsl p) - 1).(terminals.(0)) in
        if ans >= inf then invalid_arg "Steiner.dreyfus_wagner: terminals disconnected"
        else ans
      end)

let node_weighted g terminals =
  check_terminals "Steiner.node_weighted" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Graph.n g and p = Array.length terminals in
      let w = Graph.vweights g in
      Array.iter (fun x -> if x < 0 then invalid_arg "Steiner.node_weighted: negative weight") w;
      if p = 1 then w.(terminals.(0))
      else begin
        let edges_of v = List.map (fun u -> (u, w.(u))) (Graph.neighbors g v) in
        let leaf i row = row.(terminals.(i)) <- w.(terminals.(i)) in
        let dp =
          generic_dw n p ~anchor:terminals.(0) ~leaf
            ~merge_adjust:(fun v -> w.(v))
            edges_of
        in
        let ans = dp.((1 lsl p) - 1).(terminals.(0)) in
        if ans >= inf then invalid_arg "Steiner.node_weighted: terminals disconnected"
        else ans
      end)

let directed_over ?cutoff ~reversed ~root terminals =
  check_terminals "Steiner.directed" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Array.length reversed and p = Array.length terminals in
      (* dp[S][v] = cost of an out-arborescence rooted at v covering S; the
         relaxation walks arcs backwards. *)
      let edges_of v = reversed.(v) in
      let leaf i row = row.(terminals.(i)) <- 0 in
      let dp =
        generic_dw n p ~anchor:root ?cutoff ~leaf
          ~merge_adjust:(fun _ -> 0)
          edges_of
      in
      let ans = dp.((1 lsl p) - 1).(root) in
      if ans >= inf then None else Some ans)

let directed ?cutoff dg ~root terminals =
  let n = Digraph.n dg in
  let reversed = Array.make n [] in
  Digraph.iter_arcs (fun u v w -> reversed.(v) <- (u, w) :: reversed.(v)) dg;
  directed_over ?cutoff ~reversed ~root terminals

(* Smallest S ⊆ V∖T with G[T ∪ S] connected, by iterative deepening over
   |S|.  The terminal-only components are contracted once up front, so a
   candidate subset is checked on a union-find over [ncomp] component
   ids plus one element per chosen candidate — not over all n vertices
   per subset as before.  The DFS keeps one parent array per depth
   (child blits parent's, then adds its own unions), and prunes a
   partial choice when the remaining picks cannot supply enough merges:
   connecting [cls] classes plus [r] future candidates needs
   [cls + r − 1] merges, and every merge is incident to a newly added
   candidate, which contributes at most [maxdtot] of them. *)
let min_extra_nodes ?cap g terminals =
  check_terminals "Steiner.min_extra_nodes" terminals;
  let n = Graph.n g in
  let terminals = List.sort_uniq compare terminals in
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let uf = Union_find.create n in
  Graph.iter_edges
    (fun u v _ ->
      if is_terminal.(u) && is_terminal.(v) then ignore (Union_find.union uf u v))
    g;
  let comp_id = Array.make n (-1) in
  let ncomp = ref 0 in
  List.iter
    (fun t ->
      let r = Union_find.find uf t in
      if comp_id.(r) = -1 then begin
        comp_id.(r) <- !ncomp;
        incr ncomp
      end)
    terminals;
  let ncomp = !ncomp in
  let comp_of t = comp_id.(Union_find.find uf t) in
  let others =
    Array.of_list (List.filter (fun v -> not is_terminal.(v)) (List.init n Fun.id))
  in
  let no = Array.length others in
  let oidx = Array.make n (-1) in
  Array.iteri (fun i v -> oidx.(v) <- i) others;
  (* Candidate adjacency, contracted: component ids it touches, and other
     candidates it touches. *)
  let cadj_l = Array.make (max 1 no) [] in
  let oadj_l = Array.make (max 1 no) [] in
  Graph.iter_edges
    (fun u v _ ->
      let handle a b =
        let i = oidx.(a) in
        if i >= 0 then
          if is_terminal.(b) then cadj_l.(i) <- comp_of b :: cadj_l.(i)
          else if oidx.(b) >= 0 then oadj_l.(i) <- oidx.(b) :: oadj_l.(i)
      in
      handle u v;
      handle v u)
    g;
  let cadj = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) cadj_l in
  let oadj = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) oadj_l in
  let maxdtot = ref 0 in
  for i = 0 to no - 1 do
    maxdtot := max !maxdtot (Array.length cadj.(i) + Array.length oadj.(i))
  done;
  let maxdtot = !maxdtot in
  let cap = match cap with Some c -> min c no | None -> no in
  let width = max 1 (ncomp + cap) in
  let parent = Array.init (cap + 1) (fun _ -> Array.make width 0) in
  let p0 = parent.(0) in
  for i = 0 to width - 1 do
    p0.(i) <- i
  done;
  let classes = Array.make (cap + 1) 0 in
  classes.(0) <- ncomp;
  let chosen_depth = Array.make (max 1 no) (-1) in
  let tried = ref 0 and pruned = ref 0 in
  let exception Hit in
  let rec find pr x =
    let p = pr.(x) in
    if p = x then x
    else begin
      let r = find pr p in
      pr.(x) <- r;
      r
    end
  in
  let rec down s d start =
    let pd = parent.(d) and pr = parent.(d + 1) in
    let e = ncomp + d in
    let last = no - (s - d) in
    for i = start to last do
      Array.blit pd 0 pr 0 width;
      pr.(e) <- e;
      let cls = ref (classes.(d) + 1) in
      let ca = cadj.(i) in
      for k = 0 to Array.length ca - 1 do
        let a = find pr ca.(k) and b = find pr e in
        if a <> b then begin
          pr.(a) <- b;
          decr cls
        end
      done;
      let oa = oadj.(i) in
      for k = 0 to Array.length oa - 1 do
        let dj = chosen_depth.(oa.(k)) in
        if dj >= 0 then begin
          let a = find pr (ncomp + dj) and b = find pr e in
          if a <> b then begin
            pr.(a) <- b;
            decr cls
          end
        end
      done;
      if d + 1 = s then begin
        incr tried;
        if !cls = 1 then raise Hit
      end
      else begin
        let r = s - d - 1 in
        if !cls - 1 + r > r * maxdtot then incr pruned
        else begin
          classes.(d + 1) <- !cls;
          chosen_depth.(i) <- d;
          down s (d + 1) (i + 1);
          chosen_depth.(i) <- -1
        end
      end
    done
  in
  let result =
    Obs.with_span sp_steiner (fun () ->
        let rec sizes s =
          if s > cap then None
          else if s = 0 then begin
            incr tried;
            if ncomp = 1 then Some 0 else sizes 1
          end
          else if ncomp - 1 + s > s * maxdtot then begin
            incr pruned;
            sizes (s + 1)
          end
          else
            match down s 0 0 with
            | () -> sizes (s + 1)
            | exception Hit -> Some s
        in
        sizes 0)
  in
  if Obs.enabled () then begin
    Obs.incr c_subsets !tried;
    Obs.incr c_nodes !tried;
    if !pruned > 0 then Obs.incr c_pruned !pruned;
    Obs.observe h_subsets !tried
  end;
  result

let min_edges ?cap g terminals =
  Option.map
    (fun extra -> List.length (List.sort_uniq compare terminals) + extra - 1)
    (min_extra_nodes ?cap g terminals)
