open Ch_graph
module Obs = Ch_obs.Obs

let c_dw_rows = Obs.counter "solver.steiner.dw_rows"
let c_subsets = Obs.counter "solver.steiner.subsets"
let h_subsets = Obs.histogram "solver.steiner.subsets_per_query"
let sp_steiner = Obs.span "solver.steiner"

let inf = max_int / 4

let check_terminals name terminals =
  if terminals = [] then invalid_arg (name ^ ": no terminals")

(* Dijkstra-style relaxation used by all Dreyfus–Wagner variants: [dist]
   holds tentative values; [edges_of v] lists [(u, cost of extending from
   v to u)]. *)
let relax n dist edges_of =
  let module Pq = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  for v = 0 to n - 1 do
    if dist.(v) < inf then pq := Pq.add (dist.(v), v) !pq
  done;
  while not (Pq.is_empty !pq) do
    let ((d, v) as top) = Pq.min_elt !pq in
    pq := Pq.remove top !pq;
    if d = dist.(v) then
      List.iter
        (fun (u, c) ->
          if d + c < dist.(u) then begin
            dist.(u) <- d + c;
            pq := Pq.add (dist.(u), u) !pq
          end)
        (edges_of v)
  done

let iter_proper_submasks mask f =
  let sub = ref ((mask - 1) land mask) in
  while !sub > 0 do
    f !sub;
    sub := (!sub - 1) land mask
  done

let generic_dw n p ~leaf ~merge_adjust ~edges_of =
  Obs.incr c_dw_rows (1 lsl p);
  let dp = Array.init (1 lsl p) (fun _ -> Array.make n inf) in
  for i = 0 to p - 1 do
    leaf i dp.(1 lsl i);
    relax n dp.(1 lsl i) edges_of
  done;
  for mask = 1 to (1 lsl p) - 1 do
    if mask land (mask - 1) <> 0 then begin
      let row = dp.(mask) in
      iter_proper_submasks mask (fun sub ->
          if sub < mask lxor sub then ()
          else
            let other = mask lxor sub in
            for v = 0 to n - 1 do
              if dp.(sub).(v) < inf && dp.(other).(v) < inf then begin
                let cand = dp.(sub).(v) + dp.(other).(v) - merge_adjust v in
                if cand < row.(v) then row.(v) <- cand
              end
            done);
      relax n row edges_of
    end
  done;
  dp

let dreyfus_wagner g terminals =
  check_terminals "Steiner.dreyfus_wagner" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Graph.n g and p = Array.length terminals in
      if p = 1 then 0
      else begin
        let edges_of v = Graph.neighbors_w g v in
        let leaf i row =
          row.(terminals.(i)) <- 0
        in
        let dp = generic_dw n p ~leaf ~merge_adjust:(fun _ -> 0) ~edges_of in
        let ans = dp.((1 lsl p) - 1).(terminals.(0)) in
        if ans >= inf then invalid_arg "Steiner.dreyfus_wagner: terminals disconnected"
        else ans
      end)

let node_weighted g terminals =
  check_terminals "Steiner.node_weighted" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Graph.n g and p = Array.length terminals in
      let w = Graph.vweights g in
      Array.iter (fun x -> if x < 0 then invalid_arg "Steiner.node_weighted: negative weight") w;
      if p = 1 then w.(terminals.(0))
      else begin
        let edges_of v = List.map (fun u -> (u, w.(u))) (Graph.neighbors g v) in
        let leaf i row = row.(terminals.(i)) <- w.(terminals.(i)) in
        let dp = generic_dw n p ~leaf ~merge_adjust:(fun v -> w.(v)) ~edges_of in
        let ans = dp.((1 lsl p) - 1).(terminals.(0)) in
        if ans >= inf then invalid_arg "Steiner.node_weighted: terminals disconnected"
        else ans
      end)

let directed_over ~reversed ~root terminals =
  check_terminals "Steiner.directed" terminals;
  Obs.with_span sp_steiner (fun () ->
      let terminals = Array.of_list (List.sort_uniq compare terminals) in
      let n = Array.length reversed and p = Array.length terminals in
      (* dp[S][v] = cost of an out-arborescence rooted at v covering S; the
         relaxation walks arcs backwards. *)
      let edges_of v = reversed.(v) in
      let leaf i row = row.(terminals.(i)) <- 0 in
      let dp = generic_dw n p ~leaf ~merge_adjust:(fun _ -> 0) ~edges_of in
      let ans = dp.((1 lsl p) - 1).(root) in
      if ans >= inf then None else Some ans)

let directed dg ~root terminals =
  let n = Digraph.n dg in
  let reversed = Array.make n [] in
  Digraph.iter_arcs (fun u v w -> reversed.(v) <- (u, w) :: reversed.(v)) dg;
  directed_over ~reversed ~root terminals

let min_extra_nodes ?cap g terminals =
  check_terminals "Steiner.min_extra_nodes" terminals;
  let n = Graph.n g in
  let terminals = List.sort_uniq compare terminals in
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let others = List.filter (fun v -> not is_terminal.(v)) (List.init n Fun.id) in
  let cap = match cap with Some c -> min c (List.length others) | None -> List.length others in
  let tried = ref 0 in
  let connected_with extra =
    incr tried;
    let sel = Array.make n false in
    List.iter (fun v -> sel.(v) <- true) terminals;
    List.iter (fun v -> sel.(v) <- true) extra;
    let uf = Union_find.create n in
    let classes = ref (List.length terminals + List.length extra) in
    Graph.iter_edges
      (fun u v _ ->
        if sel.(u) && sel.(v) && Union_find.union uf u v then decr classes)
      g;
    !classes = 1
  in
  let exception Hit in
  let rec choose pool k acc =
    if k = 0 then begin
      if connected_with acc then raise Hit
    end
    else
      match pool with
      | [] -> ()
      | v :: rest ->
          if List.length pool >= k then begin
            choose rest (k - 1) (v :: acc);
            choose rest k acc
          end
  in
  let rec sizes s =
    if s > cap then None
    else
      match choose others s [] with
      | () -> sizes (s + 1)
      | exception Hit -> Some s
  in
  let result = Obs.with_span sp_steiner (fun () -> sizes 0) in
  Obs.incr c_subsets !tried;
  Obs.observe h_subsets !tried;
  result

let min_edges ?cap g terminals =
  Option.map
    (fun extra -> List.length (List.sort_uniq compare terminals) + extra - 1)
    (min_extra_nodes ?cap g terminals)
