open Ch_graph
module Obs = Ch_obs.Obs

let c_flips = Obs.counter "solver.maxcut.flips"
let h_flips = Obs.histogram "solver.maxcut.flips_per_call"
let sp_maxcut = Obs.span "solver.maxcut"

let cut_weight g side =
  let acc = ref 0 in
  Graph.iter_edges (fun u v w -> if side.(u) <> side.(v) then acc := !acc + w) g;
  !acc

let flip_delta g side v =
  (* change in cut weight when v switches sides *)
  List.fold_left
    (fun acc (u, w) -> if side.(u) = side.(v) then acc + w else acc - w)
    0 (Graph.neighbors_w g v)

let trailing_zeros x =
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  if x = 0 then invalid_arg "trailing_zeros 0" else go 0 x

let max_cut g =
  Obs.with_span sp_maxcut (fun () ->
      let n = Graph.n g in
      if n > 30 then invalid_arg "Maxcut.max_cut: n > 30";
      let adjacency = Array.init n (fun v -> Array.of_list (Graph.neighbors_w g v)) in
      let side = Array.make n false in
      let best_w = ref 0 and best = Array.make n false in
      if n > 1 then begin
        let weight = ref 0 in
        (* vertex 0 stays on side [false]: cuts come in symmetric pairs *)
        let steps = (1 lsl (n - 1)) - 1 in
        Obs.incr c_flips steps;
        Obs.observe h_flips steps;
        for t = 1 to steps do
          let v = 1 + trailing_zeros t in
          let delta = ref 0 in
          Array.iter
            (fun (u, w) -> if side.(u) = side.(v) then delta := !delta + w else delta := !delta - w)
            adjacency.(v);
          weight := !weight + !delta;
          side.(v) <- not side.(v);
          if !weight > !best_w then begin
            best_w := !weight;
            Array.blit side 0 best 0 n
          end
        done
      end;
      (!best_w, best))

(* Decision variant: the same Gray-code walk as [max_cut], stopped at the
   first assignment reaching [bound] — typically after a tiny prefix of
   the 2^(n-1) walk when the answer is yes. *)
let exists_of_weight g bound =
  Obs.with_span sp_maxcut (fun () ->
      let n = Graph.n g in
      if n > 30 then invalid_arg "Maxcut.exists_of_weight: n > 30";
      if bound <= 0 then true (* the empty cut weighs 0 *)
      else if n <= 1 then false
      else begin
        let adjacency = Array.init n (fun v -> Array.of_list (Graph.neighbors_w g v)) in
        let side = Array.make n false in
        let weight = ref 0 in
        let steps = (1 lsl (n - 1)) - 1 in
        let taken = ref 0 and found = ref false in
        let t = ref 1 in
        while (not !found) && !t <= steps do
          let v = 1 + trailing_zeros !t in
          let delta = ref 0 in
          Array.iter
            (fun (u, w) -> if side.(u) = side.(v) then delta := !delta + w else delta := !delta - w)
            adjacency.(v);
          weight := !weight + !delta;
          side.(v) <- not side.(v);
          incr taken;
          if !weight >= bound then found := true;
          incr t
        done;
        if Obs.enabled () then begin
          Obs.incr c_flips !taken;
          Obs.observe h_flips !taken
        end;
        !found
      end)

(* One full 2^n Gray-code walk with the volatile vertices assigned to the
   high bit positions: each of their 2^s joint assignments is then visited
   as one contiguous block of the walk, so a single pass records the best
   cut weight attainable over the remaining vertices for every volatile
   assignment. *)
let conditioned_max g ~volatile =
  Obs.with_span sp_maxcut (fun () ->
  let n = Graph.n g in
  if n > 30 then invalid_arg "Maxcut.conditioned_max: n > 30";
  if n > 0 then begin
    Obs.incr c_flips ((1 lsl n) - 1);
    Obs.observe h_flips ((1 lsl n) - 1)
  end;
  let vol = Array.of_list volatile in
  let s = Array.length vol in
  let pos = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then invalid_arg "Maxcut.conditioned_max: bad vertex";
      if pos.(v) >= 0 then invalid_arg "Maxcut.conditioned_max: duplicate vertex";
      pos.(v) <- n - s + i)
    vol;
  let next = ref 0 in
  for v = 0 to n - 1 do
    if pos.(v) < 0 then begin
      pos.(v) <- !next;
      incr next
    end
  done;
  let vertex_at = Array.make n 0 in
  Array.iteri (fun v p -> vertex_at.(p) <- v) pos;
  let adjacency = Array.init n (fun v -> Array.of_list (Graph.neighbors_w g v)) in
  let side = Array.make n false in
  let m = Array.make (1 lsl s) 0 in
  let r = n - s in
  let weight = ref 0 and best = ref 0 and va = ref 0 in
  if n > 0 then
    for t = 1 to (1 lsl n) - 1 do
      let p = trailing_zeros t in
      let v = vertex_at.(p) in
      let delta = ref 0 in
      Array.iter
        (fun (u, w) -> if side.(u) = side.(v) then delta := !delta + w else delta := !delta - w)
        adjacency.(v);
      weight := !weight + !delta;
      side.(v) <- not side.(v);
      if p < r then begin
        if !weight > !best then best := !weight
      end
      else begin
        (* a volatile flip ends the current block: record it, start anew *)
        m.(!va) <- !best;
        va := !va lxor (1 lsl (p - r));
        best := !weight
      end
    done;
  m.(!va) <- !best;
  m)

let local_search ~seed g =
  let n = Graph.n g in
  let rng = Random.State.make [| seed |] in
  let side = Array.init n (fun _ -> Random.State.bool rng) in
  let improved = ref true in
  while !improved do
    improved := false;
    for v = 0 to n - 1 do
      if flip_delta g side v > 0 then begin
        side.(v) <- not side.(v);
        improved := true
      end
    done
  done;
  (cut_weight g side, side)

let random_cut ~seed g =
  let rng = Random.State.make [| seed |] in
  let side = Array.init (Graph.n g) (fun _ -> Random.State.bool rng) in
  (cut_weight g side, side)
