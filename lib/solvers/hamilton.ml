open Ch_graph
module Obs = Ch_obs.Obs

let c_nodes = Obs.counter "solver.hamilton.nodes"
let c_pruned = Obs.counter "solver.hamilton.pruned"
let sp_ham = Obs.span "solver.hamilton"

type goal = Any_end | End_at of int | Close_to of int

type ctx = { n : int; succ : Bitset.t array; pred : Bitset.t array }

exception Found

(* Feasibility pruning from [current] with [unvisited], cheapest cut
   first:
   - at most one unvisited vertex may be out-dead (no usable out-arc);
     for [Close_to s] any out-dead vertex must point back to [s];
   - every unvisited vertex needs a usable in-arc (from another
     unvisited vertex or from [current]) — "in-dead" vertices can never
     be entered;
   - at most one unvisited vertex may have [current] as its {e only}
     usable in-source: only one of them can be the next step, and after
     the step the others are in-dead;
   - every unvisited vertex must stay reachable from [current] (for
     [End_at e], without passing through [e]) — checked last, it is the
     only cut that needs a BFS.
   The degree cuts never subtract self-loops, so they only ever
   under-count deadness: conservative, hence sound. *)
let feasible ctx arena unvisited current goal =
  let blocked = match goal with End_at e -> e | Any_end | Close_to _ -> -1 in
  let dead = ref 0 and only_cur = ref 0 and ok = ref true in
  Bitset.iter
    (fun u ->
      let usable = Bitset.inter_cardinal ctx.succ.(u) unvisited in
      let usable =
        match goal with
        | End_at e when u <> e && Bitset.mem ctx.succ.(u) e ->
            usable - 1 (* an arc into e forces u to be second-to-last *)
        | _ -> usable
      in
      (if usable = 0 then
         match goal with
         | Any_end -> incr dead
         | End_at e -> if u <> e then incr dead
         | Close_to s ->
             incr dead;
             if not (Bitset.mem ctx.succ.(u) s) then ok := false);
      if Bitset.inter_cardinal ctx.pred.(u) unvisited = 0 then
        if Bitset.mem ctx.pred.(u) current then incr only_cur else ok := false)
    unvisited;
  !ok && !dead <= 1 && !only_cur <= 1
  &&
  let seen = Arena.bits arena in
  let stack = Arena.ints arena in
  let sp = ref 0 in
  stack.(0) <- current;
  incr sp;
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    Bitset.iter
      (fun u ->
        if Bitset.mem unvisited u && not (Bitset.mem seen u) then begin
          Bitset.add seen u;
          if u <> blocked then begin
            stack.(!sp) <- u;
            incr sp
          end
        end)
      ctx.succ.(v)
  done;
  let reachable = Bitset.subset unvisited seen in
  Arena.put_bits arena seen;
  Arena.put_ints arena stack;
  reachable

let search ctx start goal =
  Obs.with_span sp_ham (fun () ->
  let order = Array.make ctx.n (-1) in
  let unvisited = Bitset.full ctx.n in
  Bitset.remove unvisited start;
  order.(0) <- start;
  let arena = Arena.create ctx.n in
  let result = ref None in
  let rec dfs current count =
    Obs.bump c_nodes;
    if count = ctx.n then begin
      let complete =
        match goal with
        | Any_end -> true
        | End_at e -> current = e
        | Close_to s -> Bitset.mem ctx.succ.(current) s
      in
      if complete then begin
        result := Some (Array.to_list order);
        raise Found
      end
    end
    else if feasible ctx arena unvisited current goal then begin
      (* Candidates into arena arrays, then a stable insertion sort on
         ascending branching degree — the same order the old
         elements/filter/stable-sort pipeline produced, without the
         intermediate lists. *)
      let cand = Arena.ints arena and key = Arena.ints arena in
      let m = ref 0 in
      let nexts = Arena.bits arena in
      Bitset.copy_into nexts ctx.succ.(current);
      Bitset.inter_into nexts unvisited;
      Bitset.iter
        (fun v ->
          let keep =
            match goal with
            | End_at e -> v <> e || count + 1 = ctx.n
            | Any_end | Close_to _ -> true
          in
          if keep then begin
            cand.(!m) <- v;
            key.(!m) <- Bitset.inter_cardinal ctx.succ.(v) unvisited;
            incr m
          end)
        nexts;
      Arena.put_bits arena nexts;
      let m = !m in
      for i = 1 to m - 1 do
        let kv = key.(i) and cv = cand.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && key.(!j) > kv do
          key.(!j + 1) <- key.(!j);
          cand.(!j + 1) <- cand.(!j);
          decr j
        done;
        key.(!j + 1) <- kv;
        cand.(!j + 1) <- cv
      done;
      for i = 0 to m - 1 do
        let v = cand.(i) in
        Bitset.remove unvisited v;
        order.(count) <- v;
        dfs v (count + 1);
        order.(count) <- -1;
        Bitset.add unvisited v
      done;
      Arena.put_ints arena cand;
      Arena.put_ints arena key
    end
    else Obs.bump c_pruned
  in
  (try dfs start 1 with Found -> ());
  !result)

let make_ctx dg =
  { n = Digraph.n dg; succ = Digraph.succ_bitsets dg; pred = Digraph.pred_bitsets dg }

let directed_path_between dg ~src ~dst =
  let ctx = make_ctx dg in
  if ctx.n = 0 then None
  else if ctx.n = 1 then if src = dst then Some [ src ] else None
  else search ctx src (End_at dst)

let starts_to_try ctx =
  let sourceless =
    List.filter
      (fun v -> Bitset.is_empty ctx.pred.(v))
      (List.init ctx.n Fun.id)
  in
  match sourceless with
  | [] -> Some (List.init ctx.n Fun.id)
  | [ s ] -> Some [ s ]
  | _ -> None (* two vertices with no in-arc: no Hamiltonian path *)

let directed_path_over ~succ ~pred =
  let ctx = { n = Array.length succ; succ; pred } in
  if Array.length pred <> ctx.n then
    invalid_arg "Hamilton.directed_path_over: succ/pred length mismatch";
  if ctx.n = 0 then None
  else if ctx.n = 1 then Some [ 0 ]
  else
    match starts_to_try ctx with
    | None -> None
    | Some starts ->
        List.fold_left
          (fun acc s ->
            match acc with Some _ -> acc | None -> search ctx s Any_end)
          None starts

let directed_path dg =
  directed_path_over ~succ:(Digraph.succ_bitsets dg)
    ~pred:(Digraph.pred_bitsets dg)

let directed_cycle dg =
  let ctx = make_ctx dg in
  if ctx.n < 2 then None else search ctx 0 (Close_to 0)

let symmetric g =
  let dg = Digraph.create (Graph.n g) in
  Graph.iter_edges
    (fun u v _ ->
      Digraph.add_arc dg u v;
      Digraph.add_arc dg v u)
    g;
  dg

let undirected_path g = directed_path (symmetric g)

let undirected_cycle g =
  if Graph.n g < 3 then None else directed_cycle (symmetric g)

let covers_all n path =
  List.length path = n && List.sort_uniq compare path = List.init n Fun.id

let is_directed_path dg path =
  covers_all (Digraph.n dg) path
  &&
  let rec ok = function
    | a :: (b :: _ as rest) -> Digraph.mem_arc dg a b && ok rest
    | _ -> true
  in
  ok path

let is_directed_cycle dg path =
  match path with
  | [] -> false
  | first :: _ ->
      is_directed_path dg path
      && Digraph.mem_arc dg (List.nth path (List.length path - 1)) first

let is_undirected_path g path =
  covers_all (Graph.n g) path
  &&
  let rec ok = function
    | a :: (b :: _ as rest) -> Graph.mem_edge g a b && ok rest
    | _ -> true
  in
  ok path

let is_undirected_cycle g path =
  match path with
  | [] -> false
  | first :: _ ->
      is_undirected_path g path
      && Graph.mem_edge g (List.nth path (List.length path - 1)) first
