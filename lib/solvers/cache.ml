open Ch_graph
module Obs = Ch_obs.Obs

type stats = { hits : int; misses : int }

let sp_lookup = Obs.span "cache_lookup"
let sp_build = Obs.span "cache_build"

(* One tally per prepared instance, one [kind] per cache family.  The
   local cell backs the public [stats] reader with the historical
   semantics (prepare memo-hit → hits=1/misses=0, miss → 0/1; every
   query bumps hits), while the kind's Obs pair counts repo-wide,
   schedule-independent totals: [cache.<kind>.queries] is bumped once
   per query (a per-pair event) and [cache.<kind>.builds] once per
   table construction (a per-unique-core event now that builds are
   serialized under the memo lock) — unlike summed per-instance
   hit/miss cells, neither depends on how the pair space was chunked
   across domains. *)
module Tally = struct
  type kind = { kname : string; kqueries : Obs.counter; kbuilds : Obs.counter }

  let kind kname =
    {
      kname;
      kqueries = Obs.counter ("cache." ^ kname ^ ".queries");
      kbuilds = Obs.counter ("cache." ^ kname ^ ".builds");
    }

  type t = { mutable chits : int; mutable cmisses : int; tkind : kind }

  let make k ~was_hit =
    {
      chits = (if was_hit then 1 else 0);
      cmisses = (if was_hit then 0 else 1);
      tkind = k;
    }

  let query t =
    t.chits <- t.chits + 1;
    Obs.bump t.tkind.kqueries

  let built k = Obs.bump k.kbuilds
  let stats t = { hits = t.chits; misses = t.cmisses }
end

(* ------------------------------------------------------------------ *)
(* Structural-hash memo                                               *)
(* ------------------------------------------------------------------ *)

(* Core tables are immutable once published, so concurrent verification
   chunks (one prepared instance per chunk) can share one computation.
   Entries keep a snapshot of the keyed graph: a structural-hash
   collision can then never serve wrong tables, and later in-place
   patching of the caller's graph cannot corrupt the key. *)
module Memo = struct
  type 'a entry = { eg : Graph.t; eaux : string; etables : 'a }

  type 'a t = { lock : Mutex.t; tbl : (int, 'a entry list) Hashtbl.t }

  let create () = { lock = Mutex.create (); tbl = Hashtbl.create 16 }

  let probe memo ~graph ~aux ~hash =
    List.find_opt
      (fun e -> e.eaux = aux && Graph.equal_structure e.eg graph)
      (Option.value ~default:[] (Hashtbl.find_opt memo.tbl hash))

  (* [(tables, true)] on a memo hit, [(tables, false)] when this call
     computed them.  The build runs under the memo lock, so each unique
     (graph, aux) key is built exactly once: racing domains would
     otherwise duplicate the (expensive) build, and the duplicated
     solver work would make the telemetry counters schedule-dependent.
     Contention is negligible — builds are per-core, queries never take
     this path.  [Fun.protect] keeps the lock exception-safe (builders
     raise [Invalid_argument] on oversized cores). *)
  let find_or_build memo ~graph ~aux ~build =
    let hash = Props.structural_hash graph in
    Obs.with_span sp_lookup (fun () ->
        Mutex.lock memo.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock memo.lock)
          (fun () ->
            match probe memo ~graph ~aux ~hash with
            | Some e -> (e.etables, true)
            | None ->
                let tables = Obs.with_span sp_build build in
                let entry =
                  { eg = Graph.copy graph; eaux = aux; etables = tables }
                in
                Hashtbl.replace memo.tbl hash
                  (entry
                  :: Option.value ~default:[] (Hashtbl.find_opt memo.tbl hash));
                (tables, false)))

  let clear memo =
    Mutex.lock memo.lock;
    Hashtbl.reset memo.tbl;
    Mutex.unlock memo.lock

  (* Dump/merge hooks for [Cache.snapshot]/[Cache.restore].  [entries]
     orders buckets by hash so the dump bytes are a deterministic
     function of the memo contents; [add_if_absent] re-probes under the
     lock so restoring never shadows a table the process already built
     (nor duplicates one restored twice). *)
  let entries memo =
    Mutex.lock memo.lock;
    let l = Hashtbl.fold (fun h es acc -> (h, es) :: acc) memo.tbl [] in
    Mutex.unlock memo.lock;
    List.sort (fun (a, _) (b, _) -> compare (a : int) b) l

  let add_if_absent memo ~hash entry =
    Mutex.lock memo.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock memo.lock)
      (fun () ->
        match probe memo ~graph:entry.eg ~aux:entry.eaux ~hash with
        | Some _ -> false
        | None ->
            Hashtbl.replace memo.tbl hash
              (entry
              :: Option.value ~default:[] (Hashtbl.find_opt memo.tbl hash));
            true)
end

(* ------------------------------------------------------------------ *)
(* Steiner: core connectivity tables for min_extra_nodes              *)
(* ------------------------------------------------------------------ *)

(* Steiner.min_extra_nodes enumerates candidate connector sets in size
   order and only asks "is terminals ∪ extra connected?".  Connectivity
   over the fixed core edges is precomputed here for every candidate set:
   one byte per vertex per subset holds its core component id (0xff =
   not selected).  A query then replays only the input-derived edges over
   those component ids — a handful of tiny union-find operations per
   subset instead of a fresh union-find over the whole edge list. *)

type steiner_tables = {
  sn : int;  (* vertices *)
  scap : int;
  ssize_start : int array;  (* subset index range per size: [s .. s+1) *)
  scomp : Bytes.t;  (* nsubsets × n component ids *)
  sclasses : int array;  (* core components among selected, per subset *)
}

type steiner = {
  st : steiner_tables;
  (* stamped scratch union-find over component ids, reused across queries *)
  sparent : int array;
  sstamp : int array;
  mutable sround : int;
  sc : Tally.t;
}

let steiner_memo : steiner_tables Memo.t = Memo.create ()
let steiner_kind = Tally.kind "steiner"
let c_steiner_scanned = Obs.counter "cache.steiner.subsets_scanned"
let h_steiner_scanned = Obs.histogram "cache.steiner.subsets_scanned_per_query"

let count_subsets ~no ~cap =
  let total = ref 0 and c = ref 1 in
  (try
     for s = 0 to cap do
       total := !total + !c;
       if !total > 4_000_000 then raise Exit;
       c := !c * (no - s) / (s + 1)
     done
   with Exit -> invalid_arg "Cache.steiner_prepare: subset space too large");
  !total

let build_steiner_tables g ~terminals ~cap =
  let n = Graph.n g in
  if n = 0 || n > 250 then invalid_arg "Cache.steiner_prepare: need 1 <= n <= 250";
  let terminals = List.sort_uniq compare terminals in
  if terminals = [] then invalid_arg "Cache.steiner_prepare: no terminals";
  List.iter
    (fun t -> if t < 0 || t >= n then invalid_arg "Cache.steiner_prepare: bad terminal")
    terminals;
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let others =
    Array.of_list (List.filter (fun v -> not is_terminal.(v)) (List.init n Fun.id))
  in
  let no = Array.length others in
  if cap < 0 then invalid_arg "Cache.steiner_prepare: negative cap";
  let cap = min cap no in
  let nsubsets = count_subsets ~no ~cap in
  if nsubsets * n > 64_000_000 then
    invalid_arg "Cache.steiner_prepare: tables too large";
  let edges = Array.of_list (List.map (fun (u, v, _) -> (u, v)) (Graph.edges g)) in
  let comp = Bytes.make (nsubsets * n) '\255' in
  let classes = Array.make nsubsets 0 in
  let size_start = Array.make (cap + 2) 0 in
  let sel = Array.make n false in
  List.iter (fun t -> sel.(t) <- true) terminals;
  let root_id = Array.make n (-1) and root_stamp = Array.make n (-1) in
  let idx = ref 0 in
  let record () =
    let uf = Union_find.create n in
    Array.iter
      (fun (u, v) -> if sel.(u) && sel.(v) then ignore (Union_find.union uf u v))
      edges;
    let base = !idx * n in
    let next = ref 0 in
    for v = 0 to n - 1 do
      if sel.(v) then begin
        let r = Union_find.find uf v in
        if root_stamp.(r) <> !idx then begin
          root_stamp.(r) <- !idx;
          root_id.(r) <- !next;
          incr next
        end;
        Bytes.set comp (base + v) (Char.chr root_id.(r))
      end
    done;
    classes.(!idx) <- !next;
    incr idx
  in
  for s = 0 to cap do
    size_start.(s) <- !idx;
    (* lexicographic combinations of size s over the non-terminals; only
       the grouping by size matters for min_extra_nodes equivalence *)
    let rec go depth start =
      if depth = s then record ()
      else
        for i = start to no - (s - depth) do
          sel.(others.(i)) <- true;
          go (depth + 1) (i + 1);
          sel.(others.(i)) <- false
        done
    in
    go 0 0
  done;
  size_start.(cap + 1) <- !idx;
  { sn = n; scap = cap; ssize_start = size_start; scomp = comp; sclasses = classes }

let steiner_prepare g ~terminals ~cap =
  let aux =
    String.concat ","
      (List.map string_of_int (List.sort_uniq compare terminals))
    ^ ";" ^ string_of_int cap
  in
  let tables, was_hit =
    Memo.find_or_build steiner_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built steiner_kind;
        build_steiner_tables g ~terminals ~cap)
  in
  {
    st = tables;
    sparent = Array.make 256 0;
    sstamp = Array.make 256 (-1);
    sround = 0;
    sc = Tally.make steiner_kind ~was_hit;
  }

let steiner_min_extra c ~extra =
  Tally.query c.sc;
  let t = c.st in
  let n = t.sn in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Cache.steiner_min_extra: edge out of range")
    extra;
  let parent = c.sparent and stamp = c.sstamp in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  let touch x =
    if stamp.(x) <> c.sround then begin
      stamp.(x) <- c.sround;
      parent.(x) <- x
    end
  in
  let exception Hit of int in
  let scanned = ref 0 in
  let result =
    try
      for s = 0 to t.scap do
        for i = t.ssize_start.(s) to t.ssize_start.(s + 1) - 1 do
          incr scanned;
          let classes = ref t.sclasses.(i) in
          if !classes = 1 then raise (Hit s);
          c.sround <- c.sround + 1;
          let base = i * n in
          List.iter
            (fun (u, v) ->
              let cu = Char.code (Bytes.get t.scomp (base + u))
              and cv = Char.code (Bytes.get t.scomp (base + v)) in
              if cu <> 0xff && cv <> 0xff then begin
                touch cu;
                touch cv;
                let ru = find cu and rv = find cv in
                if ru <> rv then begin
                  parent.(ru) <- rv;
                  decr classes
                end
              end)
            extra;
          if !classes = 1 then raise (Hit s)
        done
      done;
      None
    with Hit s -> Some s
  in
  Obs.incr c_steiner_scanned !scanned;
  Obs.observe h_steiner_scanned !scanned;
  result

let steiner_stats c = Tally.stats c.sc

(* ------------------------------------------------------------------ *)
(* Max cut: conditioned table over the volatile vertices              *)
(* ------------------------------------------------------------------ *)

type maxcut_tables = {
  mn : int;
  mvol_index : int array;  (* vertex -> index into volatile, or -1 *)
  mnvol : int;
  mtable : int array;  (* Maxcut.conditioned_max of the core *)
}

type maxcut = { mt : maxcut_tables; mc : Tally.t }

let maxcut_memo : maxcut_tables Memo.t = Memo.create ()
let maxcut_kind = Tally.kind "maxcut"

let build_maxcut_tables g ~volatile =
  let n = Graph.n g in
  let vol_index = Array.make n (-1) in
  List.iteri
    (fun i v ->
      if v < 0 || v >= n then invalid_arg "Cache.maxcut_prepare: bad vertex";
      vol_index.(v) <- i)
    volatile;
  {
    mn = n;
    mvol_index = vol_index;
    mnvol = List.length volatile;
    mtable = Maxcut.conditioned_max g ~volatile;
  }

let maxcut_prepare g ~volatile =
  let aux = String.concat "," (List.map string_of_int volatile) in
  let tables, was_hit =
    Memo.find_or_build maxcut_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built maxcut_kind;
        build_maxcut_tables g ~volatile)
  in
  { mt = tables; mc = Tally.make maxcut_kind ~was_hit }

let trailing_zeros x =
  let rec go i x = if x land 1 = 1 then i else go (i + 1) (x lsr 1) in
  if x = 0 then invalid_arg "trailing_zeros 0" else go 0 x

let maxcut_max ?stop_at c ~extra =
  Tally.query c.mc;
  let t = c.mt in
  let s = t.mnvol in
  let adj = Array.make (max s 1) [] in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= t.mn || v < 0 || v >= t.mn then
        invalid_arg "Cache.maxcut_max: edge out of range";
      let iu = t.mvol_index.(u) and iv = t.mvol_index.(v) in
      if iu < 0 || iv < 0 then
        invalid_arg "Cache.maxcut_max: extra edge endpoint not volatile";
      adj.(iu) <- (iv, w) :: adj.(iu);
      adj.(iv) <- (iu, w) :: adj.(iv))
    extra;
  (* Gray walk over the 2^s volatile assignments: the extra-edge cut
     weight is maintained incrementally, the core contributes m.(va).
     With [stop_at] the walk ends as soon as the bound is witnessed:
     the result is then exact below the bound, and any value ≥ the
     bound certifies the true maximum is too. *)
  let stop = match stop_at with Some b -> b | None -> max_int in
  let side = Array.make (max s 1) false in
  let best = ref t.mtable.(0) and weight = ref 0 and va = ref 0 in
  (try
     if !best >= stop then raise Exit;
     for tt = 1 to (1 lsl s) - 1 do
       let i = trailing_zeros tt in
       let delta =
         List.fold_left
           (fun acc (j, w) -> if side.(j) = side.(i) then acc + w else acc - w)
           0 adj.(i)
       in
       weight := !weight + delta;
       side.(i) <- not side.(i);
       va := !va lxor (1 lsl i);
       if !weight + t.mtable.(!va) > !best then best := !weight + t.mtable.(!va);
       if !best >= stop then raise Exit
     done
   with Exit -> ());
  !best

let maxcut_stats c = Tally.stats c.mc

(* ------------------------------------------------------------------ *)
(* Hamiltonian paths: shared adjacency bitsets for one digraph core   *)
(* ------------------------------------------------------------------ *)

(* The Theorem 2.2 digraph is ~97% fixed: input pairs add at most k²+k²
   row-to-row arcs.  The snapshot here is the core's succ/pred bitsets;
   a query copy-on-writes only the rows its extra arcs touch and runs
   the search through Hamilton.directed_path_over — no per-pair digraph
   rebuild, no per-pair full bitset conversion.  Digraphs have no
   structural-hash module, so the memo keys on (n, sorted arcs). *)

type hampath_tables = { hn : int; hsucc : Bitset.t array; hpred : Bitset.t array }

type hampath = { ht : hampath_tables; hc : Tally.t }

let hampath_lock = Mutex.create ()
let hampath_kind = Tally.kind "hampath"

let hampath_memo :
    (int, ((int * (int * int * int) list) * hampath_tables) list) Hashtbl.t =
  Hashtbl.create 16

(* Like [Memo.find_or_build], the build runs under the lock so each
   unique core is converted exactly once. *)
let hampath_prepare dg =
  let key = (Digraph.n dg, Digraph.arcs dg) in
  let hash = Hashtbl.hash key in
  Obs.with_span sp_lookup (fun () ->
      Mutex.lock hampath_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock hampath_lock)
        (fun () ->
          match
            List.assoc_opt key
              (Option.value ~default:[] (Hashtbl.find_opt hampath_memo hash))
          with
          | Some tables ->
              { ht = tables; hc = Tally.make hampath_kind ~was_hit:true }
          | None ->
              let tables =
                Obs.with_span sp_build (fun () ->
                    Tally.built hampath_kind;
                    {
                      hn = Digraph.n dg;
                      hsucc = Digraph.succ_bitsets dg;
                      hpred = Digraph.pred_bitsets dg;
                    })
              in
              Hashtbl.replace hampath_memo hash
                ((key, tables)
                :: Option.value ~default:[]
                     (Hashtbl.find_opt hampath_memo hash));
              { ht = tables; hc = Tally.make hampath_kind ~was_hit:false }))

let hampath_directed_path c ~extra =
  Tally.query c.hc;
  let t = c.ht in
  let succ = Array.copy t.hsucc and pred = Array.copy t.hpred in
  let owned_s = Array.make t.hn false and owned_p = Array.make t.hn false in
  let touch owned arr v =
    if not owned.(v) then begin
      owned.(v) <- true;
      arr.(v) <- Bitset.copy arr.(v)
    end
  in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= t.hn || v < 0 || v >= t.hn then
        invalid_arg "Cache.hampath_directed_path: arc out of range";
      touch owned_s succ u;
      touch owned_p pred v;
      Bitset.add succ.(u) v;
      Bitset.add pred.(v) u)
    extra;
  Hamilton.directed_path_over ~succ ~pred

let hampath_stats c = Tally.stats c.hc

(* ------------------------------------------------------------------ *)
(* Max independent set: conditioned table over the volatile vertices  *)
(* ------------------------------------------------------------------ *)

(* α(core + extra), where the extra edges live inside [volatile]:
   any independent set splits as A ⊎ S with A = S∩volatile, so

     α(G) = max over A ⊆ volatile independent in G of
            |A| + α(G[V ∖ volatile ∖ N(A)])

   and because extra edges never touch V ∖ volatile, both the residual
   graph and N(A)∖volatile are those of the bare core — so each subset's
   value depends on the core alone.  The build no longer evaluates every
   subset eagerly (one exact MIS solve per subset, the dominant cost at
   larger scales): it only enumerates the masks and stores the
   admissible upper bound ub(A) = base(A) + value(∅), where value(∅) is
   the residual optimum with nothing removed — sound because the
   residual graph of any A is an induced subgraph of the ∅ residual and
   α/MWIS is monotone under induced subgraphs with non-negative
   weights.  Entries are sorted by decreasing ub; a query scans in that
   order, lazily evaluating compatible entries into a shared memo, and
   stops as soon as the next ub cannot beat the best exact value seen —
   so only the subsets some query actually needs are ever solved.  The
   evaluated set is query-determined, not schedule-determined: racing
   domains serialize on the per-table lock and the second one finds the
   memo filled, keeping the solver counters deterministic. *)

type mis_tables = {
  mi_n : int;
  mi_vol_index : int array;  (* vertex -> index into volatile, or -1 *)
  mi_masks : int array;  (* sorted by (ub desc, mask asc) *)
  mi_ubs : int array;
  mi_vals : int array;  (* lazy memo; -1 = not evaluated yet *)
  mi_lock : Mutex.t;
  mi_eval : int -> int;  (* mask -> exact value, on the frozen core *)
}

type mis = { mi : mis_tables; mic : Tally.t }

let mis_memo : mis_tables Memo.t = Memo.create ()
let mis_kind = Tally.kind "mis"
let mwis_kind = Tally.kind "mwis"
let c_mis_evals = Obs.counter "cache.mis.entries_evaluated"

(* The exact per-mask evaluator over a frozen core, shared by the eager
   build and the snapshot restore path (which re-derives the closure
   from an entry's frozen graph + aux, see [rebuild_mis_entry]).
   Returns the volatile index map plus the two halves of the value:
   [base_of] (the subset's own size/weight) and [residual_of] (the
   optimum outside volatile ∖ N(A)). *)
let mis_evaluator ~weighted g ~volatile =
  let n = Graph.n g in
  let vol = Array.of_list volatile in
  let s = Array.length vol in
  if s > 62 then invalid_arg "Cache.mis_prepare: too many volatile vertices";
  let vol_index = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then invalid_arg "Cache.mis_prepare: bad vertex";
      vol_index.(v) <- i)
    vol;
  let adj = Graph.adjacency g in
  let nonvol = List.filter (fun v -> vol_index.(v) < 0) (List.init n Fun.id) in
  let vw = Graph.vweights g in
  let base_of mask =
    if weighted then begin
      let wa = ref 0 in
      for i = 0 to s - 1 do
        if mask land (1 lsl i) <> 0 then wa := !wa + vw.(vol.(i))
      done;
      !wa
    end
    else begin
      let rec popcount acc m =
        if m = 0 then acc else popcount (acc + (m land 1)) (m lsr 1)
      in
      popcount 0 mask
    end
  in
  let residual_of mask =
    let nbrs = Bitset.create n in
    for i = 0 to s - 1 do
      if mask land (1 lsl i) <> 0 then Bitset.union_into nbrs adj.(vol.(i))
    done;
    let rest = List.filter (fun v -> not (Bitset.mem nbrs v)) nonvol in
    (* Graph.induced carries the vertex weights over, so the residual
       MWIS sees the core's weights unchanged *)
    let sub, _ = Graph.induced g rest in
    if weighted then fst (Mis.max_weight_set sub) else Mis.alpha sub
  in
  (vol_index, base_of, residual_of)

let build_mis_tables ?(weighted = false) g ~volatile =
  (* Freeze the core: families patch the caller's graph in place between
     pairs, and the lazy evaluator below must keep seeing the build-time
     topology and weights. *)
  let g = Graph.copy g in
  let n = Graph.n g in
  let vol = Array.of_list volatile in
  let s = Array.length vol in
  let vol_index, base_of, residual_of = mis_evaluator ~weighted g ~volatile in
  let adj = Graph.adjacency g in
  (* core adjacency restricted to the volatile set, as index masks *)
  let vadj = Array.make (max s 1) 0 in
  for i = 0 to s - 1 do
    for j = 0 to s - 1 do
      if i <> j && Bitset.mem adj.(vol.(i)) vol.(j) then
        vadj.(i) <- vadj.(i) lor (1 lsl j)
    done
  done;
  (* One exact solve at build time: the ∅ residual, which both seeds the
     memo and caps every other entry from above. *)
  let rest0 = residual_of 0 in
  let masks = ref [] and count = ref 0 in
  (* all subsets of volatile independent in the core; masks only ever
     contain indices < i *)
  let rec go i mask =
    if i = s then begin
      incr count;
      if !count > 65_536 then
        invalid_arg "Cache.mis_prepare: too many independent volatile subsets";
      masks := mask :: !masks
    end
    else begin
      go (i + 1) mask;
      if mask land vadj.(i) = 0 then go (i + 1) (mask lor (1 lsl i))
    end
  in
  go 0 0;
  let keyed = Array.of_list (List.map (fun m -> (base_of m + rest0, m)) !masks) in
  Array.sort
    (fun (ua, ma) (ub, mb) -> if ua <> ub then compare ub ua else compare ma mb)
    keyed;
  let count = Array.length keyed in
  let mi_masks = Array.make count 0 in
  let mi_ubs = Array.make count 0 in
  let mi_vals = Array.make count (-1) in
  Array.iteri
    (fun i (u, mk) ->
      mi_masks.(i) <- mk;
      mi_ubs.(i) <- u;
      if mk = 0 then mi_vals.(i) <- rest0)
    keyed;
  {
    mi_n = n;
    mi_vol_index = vol_index;
    mi_masks;
    mi_ubs;
    mi_vals;
    mi_lock = Mutex.create ();
    mi_eval = (fun mask -> base_of mask + residual_of mask);
  }

let mis_prepare g ~volatile =
  let aux = String.concat "," (List.map string_of_int volatile) in
  let tables, was_hit =
    Memo.find_or_build mis_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built mis_kind;
        build_mis_tables g ~volatile)
  in
  { mi = tables; mic = Tally.make mis_kind ~was_hit }

(* Lazy evaluation with double-checked locking: the unlocked probe races
   only against a single int store (no tearing on immediates), and a
   stale [-1] just falls through to the locked re-check, so each entry
   is solved exactly once process-wide. *)
let mis_entry_value t i =
  let v = t.mi_vals.(i) in
  if v >= 0 then v
  else begin
    Mutex.lock t.mi_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mi_lock)
      (fun () ->
        let v = t.mi_vals.(i) in
        if v >= 0 then v
        else begin
          let v = t.mi_eval t.mi_masks.(i) in
          t.mi_vals.(i) <- v;
          Obs.bump c_mis_evals;
          v
        end)
  end

let mis_alpha c ~extra =
  Tally.query c.mic;
  let t = c.mi in
  let forbidden =
    List.map
      (fun (u, v) ->
        if u < 0 || u >= t.mi_n || v < 0 || v >= t.mi_n then
          invalid_arg "Cache.mis_alpha: edge out of range";
        let iu = t.mi_vol_index.(u) and iv = t.mi_vol_index.(v) in
        if iu < 0 || iv < 0 then
          invalid_arg "Cache.mis_alpha: extra edge endpoint not volatile";
        (1 lsl iu) lor (1 lsl iv))
      extra
  in
  let ok mask = List.for_all (fun p -> mask land p <> p) forbidden in
  (* Scan in decreasing-ub order; stop once no later entry's bound can
     beat the best exact value.  The empty subset is always compatible,
     so [best] is eventually set and the scan terminates. *)
  let nentries = Array.length t.mi_masks in
  let best = ref min_int in
  let i = ref 0 in
  while !i < nentries && t.mi_ubs.(!i) > !best do
    if ok t.mi_masks.(!i) then begin
      let v = mis_entry_value t !i in
      if v > !best then best := v
    end;
    incr i
  done;
  !best

let mis_stats c = Tally.stats c.mic

(* ------------------------------------------------------------------ *)
(* Max weight independent set: same conditioning, weighted values      *)
(* ------------------------------------------------------------------ *)

(* Identical decomposition to [mis_prepare] — any independent set splits
   as A ⊎ S over the volatile cut — but tabulating
   w(A) + MWIS(core ∖ volatile ∖ N(A)) with the core's vertex weights.
   Valid for families whose inputs only add volatile-volatile edges and
   never touch weights (the Theorem 4.3 gadget). *)

type mwis = mis

let mwis_prepare g ~volatile =
  let aux = "w;" ^ String.concat "," (List.map string_of_int volatile) in
  let tables, was_hit =
    Memo.find_or_build mis_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built mwis_kind;
        build_mis_tables ~weighted:true g ~volatile)
  in
  { mi = tables; mic = Tally.make mwis_kind ~was_hit }

let mwis_weight = mis_alpha

let mwis_stats = mis_stats

(* ------------------------------------------------------------------ *)
(* Node-weighted Steiner: feasibility of every connector set           *)
(* ------------------------------------------------------------------ *)

(* Steiner.node_weighted equals min over U ⊇ terminals with G[U]
   connected of w(U): a minimum tree's vertex set induces a connected
   subgraph, and a spanning tree of any connected G[U] contains the
   terminals at weight w(U).  Connectivity of G[U] depends on the core
   topology alone, so it is tabulated here over every subset of
   non-terminals; a query only folds the current vertex weights over the
   feasible masks — which is how the Section 4.4 family (fixed topology,
   input-dependent weights) answers each pair without a Dreyfus–Wagner
   run. *)

type nwsteiner_tables = {
  nw_n : int;
  nw_terms : int list;  (* sorted terminals *)
  nw_nonterm : int array;  (* non-terminal vertex per mask bit *)
  nw_feasible : Bytes.t;  (* 2^|nonterm| flags: G[terms ∪ S] connected *)
}

type nwsteiner = { nwt : nwsteiner_tables; nwc : Tally.t }

let nwsteiner_memo : nwsteiner_tables Memo.t = Memo.create ()
let nwsteiner_kind = Tally.kind "nwsteiner"

let build_nwsteiner_tables g ~terminals =
  let n = Graph.n g in
  let terminals = List.sort_uniq compare terminals in
  if terminals = [] then invalid_arg "Cache.nwsteiner_prepare: no terminals";
  List.iter
    (fun t ->
      if t < 0 || t >= n then invalid_arg "Cache.nwsteiner_prepare: bad terminal")
    terminals;
  let is_terminal = Array.make n false in
  List.iter (fun t -> is_terminal.(t) <- true) terminals;
  let nonterm =
    Array.of_list (List.filter (fun v -> not is_terminal.(v)) (List.init n Fun.id))
  in
  let m = Array.length nonterm in
  if m > 18 then invalid_arg "Cache.nwsteiner_prepare: too many non-terminals";
  let edges = Array.of_list (List.map (fun (u, v, _) -> (u, v)) (Graph.edges g)) in
  let feasible = Bytes.make (1 lsl m) '\000' in
  let sel = Array.make n false in
  List.iter (fun t -> sel.(t) <- true) terminals;
  let nterms = List.length terminals in
  for mask = 0 to (1 lsl m) - 1 do
    let selected = ref nterms in
    for i = 0 to m - 1 do
      let on = mask land (1 lsl i) <> 0 in
      sel.(nonterm.(i)) <- on;
      if on then incr selected
    done;
    let uf = Union_find.create n in
    let classes = ref !selected in
    Array.iter
      (fun (u, v) -> if sel.(u) && sel.(v) && Union_find.union uf u v then decr classes)
      edges;
    if !classes = 1 then Bytes.set feasible mask '\001'
  done;
  { nw_n = n; nw_terms = terminals; nw_nonterm = nonterm; nw_feasible = feasible }

let nwsteiner_prepare g ~terminals =
  let aux =
    String.concat "," (List.map string_of_int (List.sort_uniq compare terminals))
  in
  let tables, was_hit =
    Memo.find_or_build nwsteiner_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built nwsteiner_kind;
        build_nwsteiner_tables g ~terminals)
  in
  { nwt = tables; nwc = Tally.make nwsteiner_kind ~was_hit }

let nwsteiner_cost c ~weights =
  Tally.query c.nwc;
  let t = c.nwt in
  if Array.length weights <> t.nw_n then
    invalid_arg "Cache.nwsteiner_cost: weights length mismatch";
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Steiner.node_weighted: negative weight")
    weights;
  let base = List.fold_left (fun acc v -> acc + weights.(v)) 0 t.nw_terms in
  let m = Array.length t.nw_nonterm in
  let wsum = Array.make (1 lsl m) 0 in
  let best = ref max_int in
  if Bytes.get t.nw_feasible 0 = '\001' then best := base;
  for mask = 1 to (1 lsl m) - 1 do
    let low = mask land -mask in
    wsum.(mask) <- wsum.(mask lxor low) + weights.(t.nw_nonterm.(trailing_zeros mask));
    if Bytes.get t.nw_feasible mask = '\001' && base + wsum.(mask) < !best then
      best := base + wsum.(mask)
  done;
  if !best = max_int then
    invalid_arg "Steiner.node_weighted: terminals disconnected"
  else !best

let nwsteiner_stats c = Tally.stats c.nwc

(* ------------------------------------------------------------------ *)
(* Directed Steiner: shared reversed-adjacency snapshot                *)
(* ------------------------------------------------------------------ *)

(* The Theorem 4.7 arborescence solve is per-pair work (input arcs carry
   the pair), but the core's reversed-adjacency view is not: a query
   copies the row array and conses its extra arcs on the touched rows —
   the shared core rows are untouched tails — then runs
   Steiner.directed_over.  Memoized like the hampath snapshot, on the
   sorted arc list plus the query frame. *)

type dsteiner_tables = {
  dsn : int;
  dsrev : (int * int) list array;
  dsroot : int;
  dsterms : int list;
}

type dsteiner = { dst : dsteiner_tables; dsc : Tally.t }

let dsteiner_lock = Mutex.create ()
let dsteiner_kind = Tally.kind "dsteiner"

let dsteiner_memo :
    (int, ((int * (int * int * int) list * int * int list) * dsteiner_tables) list)
    Hashtbl.t =
  Hashtbl.create 16

let dsteiner_prepare dg ~root ~terminals =
  let terminals = List.sort_uniq compare terminals in
  let key = (Digraph.n dg, Digraph.arcs dg, root, terminals) in
  let hash = Hashtbl.hash key in
  let probe () =
    List.assoc_opt key
      (Option.value ~default:[] (Hashtbl.find_opt dsteiner_memo hash))
  in
  Obs.with_span sp_lookup (fun () ->
      Mutex.lock dsteiner_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock dsteiner_lock)
        (fun () ->
          match probe () with
          | Some tables ->
              { dst = tables; dsc = Tally.make dsteiner_kind ~was_hit:true }
          | None ->
              let tables =
                Obs.with_span sp_build (fun () ->
                    Tally.built dsteiner_kind;
                    let n = Digraph.n dg in
                    let rev = Array.make n [] in
                    Digraph.iter_arcs (fun u v w -> rev.(v) <- (u, w) :: rev.(v)) dg;
                    { dsn = n; dsrev = rev; dsroot = root; dsterms = terminals })
              in
              Hashtbl.replace dsteiner_memo hash
                ((key, tables)
                :: Option.value ~default:[]
                     (Hashtbl.find_opt dsteiner_memo hash));
              { dst = tables; dsc = Tally.make dsteiner_kind ~was_hit:false }))

let dsteiner_cost ?cutoff c ~extra =
  Tally.query c.dsc;
  let t = c.dst in
  let rev = Array.copy t.dsrev in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= t.dsn || v < 0 || v >= t.dsn then
        invalid_arg "Cache.dsteiner_cost: arc out of range";
      rev.(v) <- (u, w) :: rev.(v))
    extra;
  Steiner.directed_over ?cutoff ~reversed:rev ~root:t.dsroot t.dsterms

let dsteiner_stats c = Tally.stats c.dsc

(* ------------------------------------------------------------------ *)
(* Dominating set: shared closed balls with copy-on-write patching    *)
(* ------------------------------------------------------------------ *)

type domset_tables = { dn : int; dradius : int; dballs : Bitset.t array }

type domset = { dt : domset_tables; dc : Tally.t }

let domset_memo : domset_tables Memo.t = Memo.create ()
let domset_kind = Tally.kind "domset"

let domset_prepare g ~radius =
  if radius < 1 then invalid_arg "Cache.domset_prepare: radius must be >= 1";
  let aux = string_of_int radius in
  let tables, was_hit =
    Memo.find_or_build domset_memo ~graph:g ~aux ~build:(fun () ->
        Tally.built domset_kind;
        {
          dn = Graph.n g;
          dradius = radius;
          dballs = Array.init (Graph.n g) (fun v -> Props.reachable_within g v ~radius);
        })
  in
  { dt = tables; dc = Tally.make domset_kind ~was_hit }

(* Adding edge {u,v} only changes the closed radius-1 balls of u and v,
   so the patched array shares every untouched ball with the core
   tables (which solvers only read — see Domset.min_weight_set).  At
   radius > 1 an extra edge can grow balls far from its endpoints, so
   the copy-on-write patch is only sound with [extra = []] — the
   weights-only families (Theorems 4.2/4.4) query exactly that way. *)
let domset_balls c ~extra =
  Tally.query c.dc;
  let t = c.dt in
  if extra <> [] && t.dradius <> 1 then
    invalid_arg "Cache.domset_balls: extra edges require radius 1";
  let balls = Array.copy t.dballs in
  let owned = Array.make t.dn false in
  let touch v =
    if v < 0 || v >= t.dn then invalid_arg "Cache.domset_balls: edge out of range";
    if not owned.(v) then begin
      owned.(v) <- true;
      balls.(v) <- Bitset.copy balls.(v)
    end
  in
  List.iter
    (fun (u, v) ->
      touch u;
      touch v;
      Bitset.add balls.(u) v;
      Bitset.add balls.(v) u)
    extra;
  balls

let domset_stats c = Tally.stats c.dc

(* ------------------------------------------------------------------ *)
(* Snapshot / restore: persistable view of the marshal-safe memos     *)
(* ------------------------------------------------------------------ *)

(* Every memo family crosses the Marshal boundary.  The MIS/MWIS tables
   hold a mutex and an evaluation closure, which cannot be marshalled
   directly: they are projected to the marshal-safe arrays (masks, upper
   bounds, the lazily-solved values) plus the frozen entry graph and aux
   string, from which [restore] re-derives a fresh lock and evaluator —
   so solved entries survive the round trip and unsolved ones stay lazy.
   Buckets are hash-sorted and hampath/dsteiner entries key-sorted, so
   identical memo contents marshal to identical bytes — which lets the
   store checksum snapshots like any other block. *)
type mis_entry_dump = {
  dmi_g : Graph.t;  (** the entry's frozen core graph *)
  dmi_aux : string;  (** ["w;"]-prefixed for MWIS, then the volatile list *)
  dmi_masks : int array;
  dmi_ubs : int array;
  dmi_vals : int array;  (** -1 where still unsolved at snapshot time *)
}

type dump = {
  dump_steiner : (int * steiner_tables Memo.entry list) list;
  dump_maxcut : (int * maxcut_tables Memo.entry list) list;
  dump_mis : (int * mis_entry_dump list) list;
  dump_nwsteiner : (int * nwsteiner_tables Memo.entry list) list;
  dump_domset : (int * domset_tables Memo.entry list) list;
  dump_hampath : ((int * (int * int * int) list) * hampath_tables) list;
  dump_dsteiner :
    ((int * (int * int * int) list * int * int list) * dsteiner_tables) list;
}

(* Bumped from "chcache1" when the MIS/MWIS projection joined the dump:
   an old snapshot fails the tag check cleanly (reported corrupt by the
   sweep store, recomputed) instead of being misparsed. *)
let snapshot_tag = "chcache2"

(* The volatile list and weighted flag round-trip through the aux string
   the prepare functions key the memo with: ["w;"] marks MWIS, the rest
   is the comma-joined volatile vertex list. *)
let parse_mis_aux aux =
  let weighted =
    String.length aux >= 2 && aux.[0] = 'w' && aux.[1] = ';'
  in
  let rest =
    if weighted then String.sub aux 2 (String.length aux - 2) else aux
  in
  let volatile =
    if rest = "" then []
    else List.map int_of_string (String.split_on_char ',' rest)
  in
  (weighted, volatile)

let dump_mis_entry (e : mis_tables Memo.entry) =
  let t = e.Memo.etables in
  {
    dmi_g = e.Memo.eg;
    dmi_aux = e.Memo.eaux;
    dmi_masks = t.mi_masks;
    dmi_ubs = t.mi_ubs;
    (* copied under no lock: a racing lazy solve can only flip a cell
       from -1 to its final value, and a stale -1 just re-solves after
       restore *)
    dmi_vals = Array.copy t.mi_vals;
  }

let rebuild_mis_entry d =
  let weighted, volatile = parse_mis_aux d.dmi_aux in
  let vol_index, base_of, residual_of =
    mis_evaluator ~weighted d.dmi_g ~volatile
  in
  {
    Memo.eg = d.dmi_g;
    eaux = d.dmi_aux;
    etables =
      {
        mi_n = Graph.n d.dmi_g;
        mi_vol_index = vol_index;
        mi_masks = d.dmi_masks;
        mi_ubs = d.dmi_ubs;
        mi_vals = d.dmi_vals;
        mi_lock = Mutex.create ();
        mi_eval = (fun mask -> base_of mask + residual_of mask);
      };
  }

let keyed_entries lock tbl =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun _ es acc -> es @ acc) tbl [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let snapshot () =
  let dump =
    {
      dump_steiner = Memo.entries steiner_memo;
      dump_maxcut = Memo.entries maxcut_memo;
      dump_mis =
        List.map
          (fun (hash, es) -> (hash, List.map dump_mis_entry es))
          (Memo.entries mis_memo);
      dump_nwsteiner = Memo.entries nwsteiner_memo;
      dump_domset = Memo.entries domset_memo;
      dump_hampath = keyed_entries hampath_lock hampath_memo;
      dump_dsteiner = keyed_entries dsteiner_lock dsteiner_memo;
    }
  in
  snapshot_tag ^ Marshal.to_string dump []

let restore_memo memo dumped =
  List.fold_left
    (fun acc (hash, es) ->
      List.fold_left
        (fun acc e -> if Memo.add_if_absent memo ~hash e then acc + 1 else acc)
        acc es)
    0 dumped

let restore_keyed lock tbl dumped =
  Mutex.lock lock;
  let added =
    List.fold_left
      (fun acc ((key, _) as kt) ->
        let hash = Hashtbl.hash key in
        let bucket = Option.value ~default:[] (Hashtbl.find_opt tbl hash) in
        if List.mem_assoc key bucket then acc
        else begin
          Hashtbl.replace tbl hash (kt :: bucket);
          acc + 1
        end)
      0 dumped
  in
  Mutex.unlock lock;
  added

let restore s =
  let tl = String.length snapshot_tag in
  if String.length s < tl || String.sub s 0 tl <> snapshot_tag then
    failwith "Cache.restore: not a cache snapshot";
  let dump =
    try (Marshal.from_string s tl : dump)
    with _ -> failwith "Cache.restore: unparseable snapshot"
  in
  let mis_rebuilt =
    (* the evaluator rebuild parses the aux string and indexes the frozen
       graph, so a snapshot with mangled entries fails here rather than
       poisoning the memo *)
    try
      List.map
        (fun (hash, es) -> (hash, List.map rebuild_mis_entry es))
        dump.dump_mis
    with _ -> failwith "Cache.restore: unparseable snapshot"
  in
  restore_memo steiner_memo dump.dump_steiner
  + restore_memo maxcut_memo dump.dump_maxcut
  + restore_memo mis_memo mis_rebuilt
  + restore_memo nwsteiner_memo dump.dump_nwsteiner
  + restore_memo domset_memo dump.dump_domset
  + restore_keyed hampath_lock hampath_memo dump.dump_hampath
  + restore_keyed dsteiner_lock dsteiner_memo dump.dump_dsteiner

let clear () =
  Memo.clear steiner_memo;
  Memo.clear maxcut_memo;
  Memo.clear mis_memo;
  Memo.clear nwsteiner_memo;
  Memo.clear domset_memo;
  Mutex.lock hampath_lock;
  Hashtbl.reset hampath_memo;
  Mutex.unlock hampath_lock;
  Mutex.lock dsteiner_lock;
  Hashtbl.reset dsteiner_memo;
  Mutex.unlock dsteiner_lock
