open Ch_graph

(** Exact maximum (weight) cut via Gray-code enumeration, plus a local
    search used by approximation experiments. *)

val cut_weight : Graph.t -> bool array -> int
(** Total weight of the edges crossing the bipartition. *)

val max_cut : Graph.t -> int * bool array
(** Exact maximum cut.  Enumeration over [2^(n-1)] assignments with O(deg)
    incremental updates.  @raise Invalid_argument when [n > 30]. *)

val exists_of_weight : Graph.t -> int -> bool
(** Is there a cut of weight at least the bound?  The same Gray-code walk
    as {!max_cut}, stopped at the first assignment reaching the bound —
    worst case the full walk, typically a small prefix on yes
    instances.  @raise Invalid_argument when [n > 30]. *)

val conditioned_max : Graph.t -> volatile:int list -> int array
(** [conditioned_max g ~volatile] is the table [m] of size
    [2^(List.length volatile)] with [m.(a)] the maximum cut weight of [g]
    over all assignments placing [volatile] vertex [i] on side [true] iff
    bit [i] of [a] is set (the non-volatile vertices range freely).  One
    [2^n] Gray-code walk, so the same cost as {!max_cut}; afterwards the
    exact max cut of [g] plus any extra edges {e within} the volatile set
    is [max_a (m.(a) + extra_cut a)] — a [2^|volatile|] scan per query
    instead of a fresh [2^n] enumeration (see {!Ch_solvers.Cache}).
    @raise Invalid_argument when [n > 30] or [volatile] repeats or
    exceeds the vertex range. *)

val local_search : seed:int -> Graph.t -> int * bool array
(** 1-flip local optimum from a random start: each side-flip that improves
    the cut is applied until none remains.  Guarantees weight at least half
    of the total edge weight. *)

val random_cut : seed:int -> Graph.t -> int * bool array
(** The trivial randomized (expected) 1/2-approximation. *)
