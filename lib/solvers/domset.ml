open Ch_graph
module Obs = Ch_obs.Obs

let c_nodes = Obs.counter "solver.domset.nodes"
let c_pruned = Obs.counter "solver.domset.pruned"
let sp_domset = Obs.span "solver.domset"

let balls g radius =
  Array.init (Graph.n g) (fun v -> Props.reachable_within g v ~radius)

let is_dominating ?(radius = 1) g set =
  let b = balls g radius in
  let covered = Bitset.create (Graph.n g) in
  List.iter (fun v -> Bitset.union_into covered b.(v)) set;
  Bitset.cardinal covered = Graph.n g

(* Branch and bound.  [balls.(v)] is both "what v dominates" and "who can
   dominate v" (closed balls are symmetric).  Zero-weight vertices are
   taken up front: adding them is free and only helps.

   [stop_at = Some b] turns the search into an exact decision: the
   incumbent starts at [b + 1], so only sets of weight ≤ b are ever
   explored, and the first one found ends the search — the bound check
   at node entry then cancels subtrees against [b] instead of against a
   slowly improving incumbent.  Returns [None] when no set within the
   bound exists (including the undominatable case). *)
let solve ~radius ~balls:cached ~weights ~required ~stop_at g =
  let n = Graph.n g in
  if n = 0 then Some (0, [])
  else begin
    let b =
      match cached with
      | None -> balls g radius
      | Some b ->
          if Array.length b <> n then invalid_arg "Domset: balls length";
          b
    in
    Array.iter (fun w -> if w < 0 then invalid_arg "Domset: negative weight") weights;
    let free = List.filter (fun v -> weights.(v) = 0) (List.init n Fun.id) in
    let undominated0 =
      match required with
      | None -> Bitset.full n
      | Some vs -> Bitset.of_list n vs
    in
    List.iter (fun v -> Bitset.diff_into undominated0 b.(v)) free;
    let allowed0 = Bitset.full n in
    List.iter (Bitset.remove allowed0) free;
    let min_positive_weight =
      Array.fold_left (fun acc w -> if w > 0 then min acc w else acc) max_int weights
    in
    let best_w = ref (match stop_at with Some b -> b + 1 | None -> max_int) in
    let best_set = ref None in
    let exception Hit in
    let arena = Arena.create n in
    let rec go undominated allowed acc chosen =
      Obs.bump c_nodes;
      if Bitset.is_empty undominated then begin
        if acc < !best_w then begin
          best_w := acc;
          best_set := Some chosen;
          if stop_at <> None then raise Hit
        end
      end
      else begin
        (* lower bound: each chosen vertex covers at most [max_cover] of the
           remaining undominated vertices, and costs at least
           [min_positive_weight] *)
        let rem = Bitset.cardinal undominated in
        let max_cover =
          Bitset.fold
            (fun v acc -> max acc (Bitset.inter_cardinal b.(v) undominated))
            allowed 0
        in
        if max_cover = 0 then () (* some vertex cannot be dominated *)
        else begin
          let needed = (rem + max_cover - 1) / max_cover in
          if acc + (needed * min_positive_weight) < !best_w then begin
            (* branch over dominators of the most constrained vertex *)
            let u =
              Bitset.fold
                (fun v best ->
                  let c = Bitset.inter_cardinal b.(v) allowed in
                  match best with
                  | None -> Some (v, c)
                  | Some (_, cb) -> if c < cb then Some (v, c) else best)
                undominated None
              |> Option.get |> fst
            in
            (* Candidates into arena arrays, stable insertion sort on
               (weight, -coverage) — the order the old elements/sort
               pipeline produced, without the intermediate lists. *)
            let cand = Arena.ints arena
            and kw = Arena.ints arena
            and kc = Arena.ints arena in
            let m = ref 0 in
            let pool = Arena.bits arena in
            Bitset.copy_into pool b.(u);
            Bitset.inter_into pool allowed;
            Bitset.iter
              (fun v ->
                cand.(!m) <- v;
                kw.(!m) <- weights.(v);
                kc.(!m) <- -Bitset.inter_cardinal b.(v) undominated;
                incr m)
              pool;
            Arena.put_bits arena pool;
            let m = !m in
            for i = 1 to m - 1 do
              let cv = cand.(i) and w1 = kw.(i) and c1 = kc.(i) in
              let j = ref (i - 1) in
              while !j >= 0 && (kw.(!j) > w1 || (kw.(!j) = w1 && kc.(!j) > c1)) do
                cand.(!j + 1) <- cand.(!j);
                kw.(!j + 1) <- kw.(!j);
                kc.(!j + 1) <- kc.(!j);
                decr j
              done;
              cand.(!j + 1) <- cv;
              kw.(!j + 1) <- w1;
              kc.(!j + 1) <- c1
            done;
            let alw = Arena.bits arena in
            Bitset.copy_into alw allowed;
            for i = 0 to m - 1 do
              let v = cand.(i) in
              let und' = Arena.bits arena in
              Bitset.copy_into und' undominated;
              Bitset.diff_into und' b.(v);
              (* v is excluded from later branches: they cover u some
                 other way *)
              Bitset.remove alw v;
              go und' alw (acc + weights.(v)) (v :: chosen);
              Arena.put_bits arena und'
            done;
            Arena.put_bits arena alw;
            Arena.put_ints arena cand;
            Arena.put_ints arena kw;
            Arena.put_ints arena kc
          end
          else Obs.bump c_pruned
        end
      end
    in
    (try go undominated0 allowed0 0 [] with Hit -> ());
    match !best_set with
    | Some set -> Some (!best_w, List.sort compare (free @ set))
    | None -> None
  end

let check_weights ?weights g =
  let weights =
    match weights with Some w -> Array.copy w | None -> Graph.vweights g
  in
  if Array.length weights <> Graph.n g then invalid_arg "Domset: weights length";
  weights

let min_weight_set ?(radius = 1) ?balls ?weights ?required g =
  let weights = check_weights ?weights g in
  Obs.with_span sp_domset (fun () ->
      match solve ~radius ~balls ~weights ~required ~stop_at:None g with
      | Some r -> r
      | None ->
          invalid_arg "Domset: graph has an undominatable vertex (empty ball?)")

let exists_within ?(radius = 1) ?balls ?weights ?required g ~bound =
  let weights = check_weights ?weights g in
  bound >= 0
  && Obs.with_span sp_domset (fun () ->
         solve ~radius ~balls ~weights ~required ~stop_at:(Some bound) g <> None)

let min_size ?(radius = 1) ?balls g =
  fst (min_weight_set ~radius ?balls ~weights:(Array.make (Graph.n g) 1) g)

let exists_of_size ?(radius = 1) ?balls g bound =
  exists_within ~radius ?balls ~weights:(Array.make (Graph.n g) 1) g ~bound
