open Ch_graph
module Obs = Ch_obs.Obs

let c_nodes = Obs.counter "solver.domset.nodes"
let c_pruned = Obs.counter "solver.domset.pruned"
let sp_domset = Obs.span "solver.domset"

let balls g radius =
  Array.init (Graph.n g) (fun v -> Props.reachable_within g v ~radius)

let is_dominating ?(radius = 1) g set =
  let b = balls g radius in
  let covered = Bitset.create (Graph.n g) in
  List.iter (fun v -> Bitset.union_into covered b.(v)) set;
  Bitset.cardinal covered = Graph.n g

(* Branch and bound.  [balls.(v)] is both "what v dominates" and "who can
   dominate v" (closed balls are symmetric).  Zero-weight vertices are
   taken up front: adding them is free and only helps. *)
let solve ~radius ~balls:cached ~weights ~required g =
  let n = Graph.n g in
  if n = 0 then (0, [])
  else begin
    let b =
      match cached with
      | None -> balls g radius
      | Some b ->
          if Array.length b <> n then invalid_arg "Domset: balls length";
          b
    in
    Array.iter (fun w -> if w < 0 then invalid_arg "Domset: negative weight") weights;
    let free = List.filter (fun v -> weights.(v) = 0) (List.init n Fun.id) in
    let undominated0 =
      match required with
      | None -> Bitset.full n
      | Some vs -> Bitset.of_list n vs
    in
    List.iter (fun v -> Bitset.diff_into undominated0 b.(v)) free;
    let allowed0 = Bitset.full n in
    List.iter (Bitset.remove allowed0) free;
    let min_positive_weight =
      Array.fold_left (fun acc w -> if w > 0 then min acc w else acc) max_int weights
    in
    let best_w = ref max_int and best_set = ref None in
    let rec go undominated allowed acc chosen =
      Obs.bump c_nodes;
      if Bitset.is_empty undominated then begin
        if acc < !best_w then begin
          best_w := acc;
          best_set := Some chosen
        end
      end
      else begin
        (* lower bound: each chosen vertex covers at most [max_cover] of the
           remaining undominated vertices, and costs at least
           [min_positive_weight] *)
        let rem = Bitset.cardinal undominated in
        let max_cover =
          Bitset.fold
            (fun v acc -> max acc (Bitset.inter_cardinal b.(v) undominated))
            allowed 0
        in
        if max_cover = 0 then () (* some vertex cannot be dominated *)
        else begin
          let needed = (rem + max_cover - 1) / max_cover in
          if acc + (needed * min_positive_weight) < !best_w then begin
            (* branch over dominators of the most constrained vertex *)
            let u =
              Bitset.fold
                (fun v best ->
                  let c = Bitset.inter_cardinal b.(v) allowed in
                  match best with
                  | None -> Some (v, c)
                  | Some (_, cb) -> if c < cb then Some (v, c) else best)
                undominated None
              |> Option.get |> fst
            in
            let candidates =
              Bitset.elements (Bitset.inter b.(u) allowed)
              |> List.sort (fun a c ->
                     compare
                       (weights.(a), - Bitset.inter_cardinal b.(a) undominated)
                       (weights.(c), - Bitset.inter_cardinal b.(c) undominated))
            in
            let allowed = Bitset.copy allowed in
            List.iter
              (fun v ->
                let undominated' = Bitset.diff undominated b.(v) in
                (* v is excluded from later branches: they cover u some
                   other way *)
                Bitset.remove allowed v;
                go undominated' (Bitset.copy allowed) (acc + weights.(v)) (v :: chosen))
              candidates
          end
          else Obs.bump c_pruned
        end
      end
    in
    go undominated0 allowed0 0 [];
    match !best_set with
    | Some set ->
        (!best_w, List.sort compare (free @ set))
    | None ->
        invalid_arg "Domset: graph has an undominatable vertex (empty ball?)"
  end

let min_weight_set ?(radius = 1) ?balls ?weights ?required g =
  let weights =
    match weights with Some w -> Array.copy w | None -> Graph.vweights g
  in
  if Array.length weights <> Graph.n g then invalid_arg "Domset: weights length";
  Obs.with_span sp_domset (fun () -> solve ~radius ~balls ~weights ~required g)

let min_size ?(radius = 1) ?balls g =
  fst (min_weight_set ~radius ?balls ~weights:(Array.make (Graph.n g) 1) g)

let exists_of_size ?(radius = 1) g bound = min_size ~radius g <= bound
