(** Repo-wide telemetry: monotonic-clock spans, named counters and
    log-scale histograms, aggregated per worker domain and merged
    deterministically at report time.

    {1 Determinism contract}

    Counter totals and histogram contents reported by {!report} depend
    only on the work performed, never on how that work was scheduled
    across domains: every handle is interned globally by name, every
    domain accumulates into domain-local storage, and {!report} merges
    all domains with order-independent sums.  Span {e trees} are merged
    path-wise (two domains recording [a > b] contribute to the same
    node), so span counts driven by per-pair work are schedule-
    independent too; span wall times are measured per domain and summed,
    so they are stable in shape but not bit-identical across runs.

    {1 Cost model}

    Every operation starts with a single check of the enabled flag; when
    telemetry is off (the default) the overhead is that one branch.  The
    flag starts from the [CH_OBS] environment variable ([1]/[true]/
    [yes]/[on]) and can be flipped programmatically with {!set_enabled}.

    Timing uses the monotonic clock ([clock_gettime(CLOCK_MONOTONIC)] via
    bechamel's noalloc stub), immune to wall-clock adjustments. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic timestamp in nanoseconds.  Always live, independent of
      the enabled flag — bench timing uses this directly. *)

  val seconds_since : int64 -> float
  (** [seconds_since t0] is [now_ns () - t0] in seconds. *)
end

(** {1 Handles}

    Handles are interned globally by name: [counter "x"] called from two
    modules (or twice) yields the same counter.  Interning takes a
    mutex; do it once at module init, not on hot paths. *)

type counter
type span
type histogram

val counter : string -> counter

val bump : counter -> unit
(** Add 1 to the calling domain's cell of the counter. *)

val incr : counter -> int -> unit
(** Add [n] (clamped to [>= 0]) to the calling domain's cell; totals
    saturate at [max_int] rather than wrapping. *)

val span : string -> span

val with_span : span -> (unit -> 'a) -> 'a
(** Run the thunk under the span: bumps the span's count, accumulates
    its monotonic duration, and nests it under the innermost open span
    of the calling domain.  Exception-safe (the span is closed on
    raise).  When a sink is installed, emits [span_open]/[span_close]
    JSONL events. *)

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a sample into log2-scale buckets: bucket 0 holds samples
    [<= 0]; bucket [i >= 1] holds samples in [[2^(i-1), 2^i - 1]].
    Tracks count, (saturating) sum and max alongside the buckets. *)

(** {1 Pool context}

    Worker domains do not inherit the submitting domain's open-span
    stack.  A pool captures {!current_ctx} at batch submission and wraps
    each task in {!with_ctx}: the worker's spans then attach under the
    same span path as the submitter's, so the merged tree has one shape
    for any [CH_JOBS].  [with_ctx] does not bump counts or accumulate
    time for the path nodes themselves. *)

type ctx

val current_ctx : unit -> ctx
val with_ctx : ctx -> (unit -> 'a) -> 'a

(** {1 JSONL sink}

    An optional line sink shared by span events ({!with_span}) and any
    client that calls {!emit} (e.g. reduction trace events), so solver
    profiles and reduction traces land in one stream.  Lines are written
    under a mutex; each line is one JSON object. *)

val set_sink : (string -> unit) option -> unit

val sink_installed : unit -> bool
(** Whether a sink is currently installed.  Clients that must {e build}
    an event line (e.g. render JSON) should check this first — {!emit}
    on [None] is cheap, but constructing the line is not. *)

val emit : string -> unit
val jsonl : out_channel -> string -> unit
(** [set_sink (Some (jsonl oc))] writes one line per event to [oc]. *)

(** {1 Reports} *)

type span_report = {
  sp_name : string;
  sp_count : int;
  sp_ns : int64;
  sp_children : span_report list;  (** sorted by name *)
}

type bucket = { b_lo : int; b_hi : int; b_count : int }

type hist_report = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : bucket list;  (** non-empty buckets, ascending *)
}

type report = {
  r_enabled : bool;
  r_counters : (string * int) list;  (** every interned counter, by name *)
  r_spans : span_report list;
  r_hists : hist_report list;
}

val report : unit -> report
(** Merge all domains' telemetry.  Deterministic: counters sorted by
    name with saturating sums; span trees merged path-wise with children
    sorted by name; histogram buckets summed. *)

val reset : unit -> unit
(** Zero all domains' telemetry (interned names survive).  Must not be
    called while spans are open or a pool batch is in flight. *)

val report_json : report -> string
(** The report as one JSON object:
    [{"enabled": .., "counters": [{"name","value"}..],
      "spans": [{"name","count","total_ns","children"}..],
      "histograms": [{"name","count","sum","max","buckets"}..]}].
    Each counter object is emitted on its own line so text tooling can
    diff counter sets across runs. *)

val pp_profile : ?wall_ns:int64 -> Format.formatter -> report -> unit
(** Render the span tree with durations and percentages (of [wall_ns]
    when given, else of the top-level span total), followed by counters
    (descending by value) and histogram summaries. *)
