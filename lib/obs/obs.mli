(** Repo-wide telemetry: monotonic-clock spans, named counters and
    log-scale histograms, aggregated per worker domain and merged
    deterministically at report time.

    {1 Determinism contract}

    Counter totals and histogram contents reported by {!report} depend
    only on the work performed, never on how that work was scheduled
    across domains: every handle is interned globally by name, every
    domain accumulates into domain-local storage, and {!report} merges
    all domains with order-independent sums.  Span {e trees} are merged
    path-wise (two domains recording [a > b] contribute to the same
    node), so span counts driven by per-pair work are schedule-
    independent too; span wall times are measured per domain and summed,
    so they are stable in shape but not bit-identical across runs.

    {1 Cost model}

    Every operation starts with a single check of the enabled flag; when
    telemetry is off (the default) the overhead is that one branch.  The
    flag starts from the [CH_OBS] environment variable ([1]/[true]/
    [yes]/[on]) and can be flipped programmatically with {!set_enabled}.

    Timing uses the monotonic clock ([clock_gettime(CLOCK_MONOTONIC)] via
    bechamel's noalloc stub), immune to wall-clock adjustments. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic timestamp in nanoseconds.  Always live, independent of
      the enabled flag — bench timing uses this directly. *)

  val seconds_since : int64 -> float
  (** [seconds_since t0] is [now_ns () - t0] in seconds. *)
end

(** {1 Handles}

    Handles are interned globally by name: [counter "x"] called from two
    modules (or twice) yields the same counter.  Interning takes a
    mutex; do it once at module init, not on hot paths. *)

type counter
type span
type histogram

val counter : string -> counter

val bump : counter -> unit
(** Add 1 to the calling domain's cell of the counter. *)

val incr : counter -> int -> unit
(** Add [n] (clamped to [>= 0]) to the calling domain's cell; totals
    saturate at [max_int] rather than wrapping. *)

val span : string -> span

val with_span : span -> (unit -> 'a) -> 'a
(** Run the thunk under the span: bumps the span's count, accumulates
    its monotonic duration, and nests it under the innermost open span
    of the calling domain.  Exception-safe (the span is closed on
    raise).  When a sink is installed, emits [span_open]/[span_close]
    JSONL events. *)

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a sample into log2-scale buckets: bucket 0 holds samples
    [<= 0]; bucket [i >= 1] holds samples in [[2^(i-1), 2^i - 1]].
    Tracks count, (saturating) sum and max alongside the buckets. *)

(** {1 Pool context}

    Worker domains do not inherit the submitting domain's open-span
    stack.  A pool captures {!current_ctx} at batch submission and wraps
    each task in {!with_ctx}: the worker's spans then attach under the
    same span path as the submitter's, so the merged tree has one shape
    for any [CH_JOBS].  [with_ctx] does not bump counts or accumulate
    time for the path nodes themselves. *)

type ctx

val current_ctx : unit -> ctx
val with_ctx : ctx -> (unit -> 'a) -> 'a

(** {1 Trace context}

    A request-scoped identifier stamped onto every span event the
    calling domain emits, so one logical request can be joined across
    process boundaries (client, daemon, forked workers) from their JSONL
    sinks.  The slot is per {e domain}, like the span stack: systhreads
    sharing a domain share it, so attribution under concurrent
    same-domain requests is best-effort — exactly the tolerance the span
    stack already has.  Independent of the enabled flag (setting a trace
    while disabled is cheap and harmless). *)

val set_trace : string option -> unit
val current_trace : unit -> string option

val with_trace : string option -> (unit -> 'a) -> 'a
(** Run the thunk with the calling domain's trace id set, restoring the
    previous value on exit (exception-safe). *)

(** {1 JSONL sink}

    An optional line sink shared by span events ({!with_span}) and any
    client that calls {!emit} (e.g. reduction trace events), so solver
    profiles and reduction traces land in one stream.  Lines are written
    under a mutex; each line is one JSON object. *)

val set_sink : (string -> unit) option -> unit

val sink_installed : unit -> bool
(** Whether a sink is currently installed.  Clients that must {e build}
    an event line (e.g. render JSON) should check this first — {!emit}
    on [None] is cheap, but constructing the line is not. *)

val emit : string -> unit
val jsonl : out_channel -> string -> unit
(** [set_sink (Some (jsonl oc))] writes one line per event to [oc]. *)

(** {1 Reports} *)

type span_report = {
  sp_name : string;
  sp_count : int;
  sp_ns : int64;
  sp_children : span_report list;  (** sorted by name *)
}

type bucket = { b_lo : int; b_hi : int; b_count : int }

type hist_report = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : bucket list;  (** non-empty buckets, ascending *)
}

type report = {
  r_enabled : bool;
  r_counters : (string * int) list;  (** every interned counter, by name *)
  r_spans : span_report list;
  r_hists : hist_report list;
}

val report : unit -> report
(** Merge all domains' telemetry.  Deterministic: counters sorted by
    name with saturating sums; span trees merged path-wise with children
    sorted by name; histogram buckets summed. *)

val reset : unit -> unit
(** Zero all domains' telemetry (interned names survive).  Must not be
    called while spans are open or a pool batch is in flight. *)

val quantile : hist_report -> float -> int
(** [quantile h q] is the upper bound of the log2 bucket holding the
    sample of rank [ceil (q * count)] (clamped to [[1, count]]); [0] on
    an empty histogram or when the rank lands in the [<= 0] bucket.  A
    deterministic upper estimate: the true sample lies within a factor
    of 2 below the returned bound. *)

(** {1 Snapshots}

    Obs state serialized for a process boundary: a forked sweep worker
    {!Snapshot.capture}s its merged report before [_exit], persists it
    via the sweep store, and the coordinator {!Snapshot.absorb}s it so
    worker-side counters, histograms and span trees survive the fork.
    The payload is a Marshal of the report behind a magic header — valid
    only between processes running the same binary, which is what a fork
    guarantees. *)

module Snapshot : sig
  val capture : unit -> string
  (** The merged report of all domains, serialized. *)

  val absorb : string -> unit
  (** Merge a captured snapshot into the calling domain: counters and
      histogram cells add in (saturating), span trees merge path-wise
      from the root with exact counts and nanoseconds.  No-op while
      telemetry is disabled.
      @raise Failure when the payload is not an obs snapshot. *)
end

(** {1 Time series}

    A fixed-capacity ring of timestamped {!report} snapshots, sampled
    periodically by a long-lived process (the serve daemon's sampler
    thread), answering "what happened over the retained window":
    counter deltas and rates, and windowed histograms for live latency
    quantiles.  Sampling is read-only with respect to the registry, so
    it never perturbs counter determinism. *)

module Series : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Ring capacity in samples (default 120, minimum 2); once full, each
      new sample overwrites the oldest. *)

  val capacity : t -> int

  val length : t -> int
  (** Samples currently retained, [<= capacity]. *)

  val sample : ?now_ns:int64 -> t -> unit
  (** Append one snapshot of the merged report.  [now_ns] overrides the
      timestamp (tests); defaults to the monotonic clock. *)

  val window_s : t -> float
  (** Seconds between the oldest and newest retained samples; [0] with
      fewer than two samples. *)

  val delta : t -> string -> int
  (** Newest minus oldest value of a counter over the window (clamped to
      [>= 0]); [0] with fewer than two samples or an unknown name. *)

  val rate : t -> string -> float
  (** [delta / window_s]; [0] on an empty window. *)

  val hist_total : t -> string -> hist_report option
  (** The named histogram as of the newest sample (cumulative). *)

  val hist_delta : t -> string -> hist_report option
  (** The named histogram restricted to the window: newest buckets minus
      oldest, count and sum differenced; [h_max] keeps the newest
      cumulative max (a log-scale approximation).  [None] with fewer
      than two samples or an unknown name. *)
end

val report_json : report -> string
(** The report as one JSON object:
    [{"enabled": .., "counters": [{"name","value"}..],
      "spans": [{"name","count","total_ns","children"}..],
      "histograms": [{"name","count","sum","max","buckets"}..]}].
    Each counter object is emitted on its own line so text tooling can
    diff counter sets across runs. *)

val pp_profile : ?wall_ns:int64 -> Format.formatter -> report -> unit
(** Render the span tree with durations and percentages (of [wall_ns]
    when given, else of the top-level span total), followed by counters
    (descending by value) and histogram summaries. *)
