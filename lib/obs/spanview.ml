(* Span-tree reconstruction from a captured JSONL event stream.  The
   sink writes span_open/span_close events stamped with (pid, domain,
   trace, t_ns); this module folds them back into the same shape
   [Obs.report] produces live, including events from several processes
   (a client and a daemon, a coordinator and its forked workers) in one
   stream.  Parsing the JSONL itself is the caller's job — this module
   only sees decoded events, so it stays free of any JSON dependency. *)

type event = {
  e_open : bool;
  e_span : string;
  e_pid : int;
  e_domain : int;
  e_trace : string option;
  e_t_ns : int64;
}

(* completed span occurrence *)
type tree = {
  tname : string;
  topen : int64;
  tclose : int64;
  ttrace : string option;
  tchildren : tree list; (* reverse completion order *)
}

type frame = {
  fname : string;
  fopen : int64;
  ftrace : string option;
  mutable fdone : tree list;
}

type root = { r_pid : int; r_domain : int; r_tree : tree }

let dur t = Int64.sub t.tclose t.topen

(* ---- per-(pid, domain) open/close folding ---- *)

let fold_stream events =
  let events =
    List.stable_sort (fun a b -> Int64.compare a.e_t_ns b.e_t_ns) events
  in
  let stacks : (int * int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let roots = ref [] in
  let stack_of pid domain =
    let key = (pid, domain) in
    match Hashtbl.find_opt stacks key with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks key s;
        s
  in
  let complete pid domain stack fr t =
    let t = if t < fr.fopen then fr.fopen else t in
    let tr =
      {
        tname = fr.fname;
        topen = fr.fopen;
        tclose = t;
        ttrace = fr.ftrace;
        tchildren = fr.fdone;
      }
    in
    match !stack with
    | parent :: _ -> parent.fdone <- tr :: parent.fdone
    | [] -> roots := { r_pid = pid; r_domain = domain; r_tree = tr } :: !roots
  in
  let last_t = ref 0L in
  List.iter
    (fun ev ->
      if ev.e_t_ns > !last_t then last_t := ev.e_t_ns;
      let stack = stack_of ev.e_pid ev.e_domain in
      if ev.e_open then
        stack :=
          { fname = ev.e_span; fopen = ev.e_t_ns; ftrace = ev.e_trace;
            fdone = [] }
          :: !stack
      else begin
        (* close: pop to the matching frame, closing intermediates at
           the same instant; an unmatched close is dropped (the open
           predates the capture window) *)
        let rec unwind () =
          match !stack with
          | [] -> ()
          | fr :: rest ->
              stack := rest;
              complete ev.e_pid ev.e_domain stack fr ev.e_t_ns;
              if fr.fname <> ev.e_span then unwind ()
        in
        if List.exists (fun fr -> fr.fname = ev.e_span) !stack then unwind ()
      end)
    events;
  (* frames still open at end of stream close at the last event time *)
  Hashtbl.iter
    (fun (pid, domain) stack ->
      let rec drain () =
        match !stack with
        | [] -> ()
        | fr :: rest ->
            stack := rest;
            complete pid domain stack fr !last_t;
            drain ()
      in
      drain ())
    stacks;
  !roots

(* ---- cross-process joining ---- *)

(* effective trace of a node: its own, else inherited from the nearest
   traced ancestor (threaded down during the search) *)
let eff_trace inherited t =
  match t.ttrace with Some _ as tr -> tr | None -> inherited

let contains outer inner =
  outer.topen <= inner.topen && inner.tclose <= outer.tclose

let trace_compatible a b =
  match (a, b) with Some x, Some y -> x = y | _ -> true

(* innermost node of [t] whose interval contains [target] and whose
   effective trace is compatible; [None] when even [t] does not
   contain it *)
let rec innermost_containing inherited t target ttrace =
  if not (contains t target) then None
  else
    let tr = eff_trace inherited t in
    let deeper =
      List.fold_left
        (fun acc c ->
          match acc with
          | Some _ -> acc
          | None -> innermost_containing tr c target ttrace)
        None t.tchildren
    in
    match deeper with
    | Some _ -> deeper
    | None -> if trace_compatible tr ttrace then Some t else None

(* Attach roots from one (pid, domain) stream under enclosing spans of
   another: a daemon's serve_request interval sits inside the client's
   request span (one monotonic clock per machine), so containment plus
   trace compatibility joins them.  Largest roots place first — a
   container must already be placed before its contents can attach, and
   a chain (client ⊃ daemon ⊃ worker) assembles outside-in, each root
   grafting at the innermost compatible span of a placed tree. *)
let join roots =
  let ordered =
    List.stable_sort (fun a b -> Int64.compare (dur b.r_tree) (dur a.r_tree))
      roots
  in
  let placed : root list ref = ref [] in
  let graft host target ttrace =
    match innermost_containing None host target ttrace with
    | None -> None
    | Some node ->
        let rec rebuild t =
          if t == node then
            Some { t with tchildren = target :: t.tchildren }
          else
            let rec sub acc = function
              | [] -> None
              | c :: rest -> (
                  match rebuild c with
                  | Some c' -> Some (List.rev_append acc (c' :: rest))
                  | None -> sub (c :: acc) rest)
            in
            Option.map
              (fun cs -> { t with tchildren = cs })
              (sub [] t.tchildren)
        in
        rebuild host
  in
  List.iter
    (fun r ->
      let rec try_hosts acc = function
        | [] -> placed := r :: List.rev acc
        | h :: rest ->
            if
              (h.r_pid, h.r_domain) <> (r.r_pid, r.r_domain)
              && contains h.r_tree r.r_tree
            then
              match graft h.r_tree r.r_tree r.r_tree.ttrace with
              | Some t' ->
                  placed := List.rev_append acc ({ h with r_tree = t' } :: rest)
              | None -> try_hosts (h :: acc) rest
            else try_hosts (h :: acc) rest
      in
      try_hosts [] !placed)
    ordered;
  List.rev_map (fun r -> r.r_tree) !placed

(* ---- aggregation to Obs.span_report ---- *)

let rec merge_trees (ts : tree list) : Obs.span_report list =
  let names =
    List.map (fun t -> t.tname) ts |> List.sort_uniq compare
  in
  List.map
    (fun name ->
      let same = List.filter (fun t -> t.tname = name) ts in
      {
        Obs.sp_name = name;
        sp_count = List.length same;
        sp_ns = List.fold_left (fun a t -> Int64.add a (dur t)) 0L same;
        sp_children = merge_trees (List.concat_map (fun t -> t.tchildren) same);
      })
    names

let forest events = merge_trees (join (fold_stream events))

let to_report events =
  {
    Obs.r_enabled = true;
    r_counters = [];
    r_spans = forest events;
    r_hists = [];
  }
