(** Span-tree reconstruction from a captured JSONL event stream.

    The {!Obs} sink stamps every [span_open]/[span_close] event with
    (pid, domain, trace, t_ns).  This module folds a decoded event list
    back into the aggregated tree shape {!Obs.report} produces live —
    including streams that interleave several processes, which a live
    report can never see.

    {b Joining:} within one (pid, domain) stream, opens and closes pair
    up as a stack (unbalanced closes are dropped; spans still open at
    the end of the stream close at the last event time).  Across
    streams, a completed root whose interval is contained in a span of
    another process — both clocks are the same machine-wide monotonic
    clock — is grafted under the innermost containing span whose
    effective (inherited) trace id is compatible, smallest roots first.
    One traced request therefore yields one tree spanning client,
    scheduler and engine.

    Parsing JSON is the caller's job; this module has no JSON
    dependency. *)

type event = {
  e_open : bool;  (** [span_open] vs [span_close] *)
  e_span : string;
  e_pid : int;
  e_domain : int;
  e_trace : string option;
  e_t_ns : int64;
}

val forest : event list -> Obs.span_report list
(** Aggregated span forest: same-name siblings merge (summed counts and
    durations), children sorted by name — the shape of
    [ (Obs.report ()).r_spans ]. *)

val to_report : event list -> Obs.report
(** The forest wrapped as a report (no counters or histograms), ready
    for {!Obs.pp_profile}. *)
