(* Telemetry core.  Three layers:
   - a global name registry (mutex-protected) interning counter / span /
     histogram names to dense ids, shared by every domain;
   - per-domain accumulators in Domain.DLS (int arrays for counters,
     bucket cells for histograms, a span tree + open-span stack), each
     registered globally at first use so [report] can find them;
   - a merge step that folds every domain's accumulators into one
     deterministic report (order-independent sums, name-sorted output).
   Hot paths touch only the enabled flag and domain-local state. *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "CH_OBS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

module Clock = struct
  let now_ns () = Monotonic_clock.now ()

  let seconds_since t0 =
    Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
end

let registry_lock = Mutex.create ()

(* ---- name interning ---- *)

type names = {
  tbl : (string, int) Hashtbl.t;
  mutable ordered : string list; (* reverse interning order *)
  mutable count : int;
}

let new_names () = { tbl = Hashtbl.create 32; ordered = []; count = 0 }
let counter_names = new_names ()
let span_names = new_names ()
let hist_names = new_names ()

let intern names name =
  Mutex.lock registry_lock;
  let id =
    match Hashtbl.find_opt names.tbl name with
    | Some id -> id
    | None ->
        let id = names.count in
        Hashtbl.add names.tbl name id;
        names.ordered <- name :: names.ordered;
        names.count <- id + 1;
        id
  in
  Mutex.unlock registry_lock;
  id

(* caller must hold registry_lock, or be single-threaded (sink emission
   takes the lock; report runs under it) *)
let name_of names id =
  List.nth names.ordered (names.count - 1 - id)

let locked_name names id =
  Mutex.lock registry_lock;
  let n = name_of names id in
  Mutex.unlock registry_lock;
  n

type counter = int
type span = int
type histogram = int

let counter name = intern counter_names name
let span name = intern span_names name
let histogram name = intern hist_names name

(* ---- per-domain state ---- *)

type node = {
  nspan : int;
  mutable ncount : int;
  mutable nns : int64;
  nchildren : (int, node) Hashtbl.t;
}

let new_node nspan =
  { nspan; ncount = 0; nns = 0L; nchildren = Hashtbl.create 4 }

type hcell = {
  hbuckets : int array; (* 64 log2 buckets *)
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

let new_hcell () =
  { hbuckets = Array.make 64 0; hcount = 0; hsum = 0; hmax = min_int }

type dstate = {
  mutable dcounters : int array;
  mutable dhists : hcell option array;
  droot : node;
  (* innermost first; [timed] distinguishes with_span frames (pop
     accumulates elapsed time) from with_ctx frames (position only) *)
  mutable dstack : (node * int64) list;
  ddomain : int;
  mutable dtrace : string option;
}

let all_states : dstate list ref = ref []

let dls_key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          dcounters = Array.make 64 0;
          dhists = Array.make 16 None;
          droot = new_node (-1);
          dstack = [];
          ddomain = (Domain.self () :> int);
          dtrace = None;
        }
      in
      Mutex.lock registry_lock;
      all_states := st :: !all_states;
      Mutex.unlock registry_lock;
      st)

let state () = Domain.DLS.get dls_key

let grown old fill n =
  let len = Array.length old in
  if n < len then old
  else begin
    let next = ref (max 16 (2 * len)) in
    while n >= !next do
      next := 2 * !next
    done;
    let fresh = Array.make !next fill in
    Array.blit old 0 fresh 0 len;
    fresh
  end

let sat_add a b =
  let s = a + b in
  if s < 0 && a >= 0 && b >= 0 then max_int else s

(* ---- counters ---- *)

let incr c n =
  if !enabled_flag then begin
    let n = if n < 0 then 0 else n in
    let st = state () in
    if c >= Array.length st.dcounters then
      st.dcounters <- grown st.dcounters 0 c;
    st.dcounters.(c) <- sat_add st.dcounters.(c) n
  end

let bump c = incr c 1

(* ---- histograms ---- *)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 1 and x = ref v in
    while !x > 1 do
      x := !x lsr 1;
      Stdlib.incr b
    done;
    min !b 63
  end

let observe h v =
  if !enabled_flag then begin
    let st = state () in
    if h >= Array.length st.dhists then st.dhists <- grown st.dhists None h;
    let cell =
      match st.dhists.(h) with
      | Some c -> c
      | None ->
          let c = new_hcell () in
          st.dhists.(h) <- Some c;
          c
    in
    cell.hbuckets.(bucket_of v) <- cell.hbuckets.(bucket_of v) + 1;
    cell.hcount <- cell.hcount + 1;
    cell.hsum <- sat_add cell.hsum (max v 0);
    if v > cell.hmax then cell.hmax <- v
  end

(* ---- sink ---- *)

let sink_lock = Mutex.create ()
let sink : (string -> unit) option ref = ref None

let set_sink s =
  Mutex.lock sink_lock;
  sink := s;
  Mutex.unlock sink_lock

let sink_installed () = !sink <> None

let emit line =
  if !sink <> None then begin
    Mutex.lock sink_lock;
    (match !sink with Some f -> f line | None -> ());
    Mutex.unlock sink_lock
  end

let jsonl oc line =
  output_string oc line;
  output_char oc '\n'

(* [getpid] is called per event, never cached at module init: forked
   sweep workers would otherwise stamp their parent's pid. *)
let emit_span_event ev sid st =
  if !sink <> None then
    emit
      (Printf.sprintf
         "{\"ev\": %S, \"span\": %S, \"domain\": %d, \"pid\": %d%s, \"t_ns\": %Ld}"
         ev
         (locked_name span_names sid)
         st.ddomain (Unix.getpid ())
         (match st.dtrace with
         | Some t -> Printf.sprintf ", \"trace\": %S" t
         | None -> "")
         (Clock.now_ns ()))

(* ---- spans ---- *)

let child_node parent sid =
  match Hashtbl.find_opt parent.nchildren sid with
  | Some n -> n
  | None ->
      let n = new_node sid in
      Hashtbl.add parent.nchildren sid n;
      n

let with_span sid f =
  if not !enabled_flag then f ()
  else begin
    let st = state () in
    let parent =
      match st.dstack with (n, _) :: _ -> n | [] -> st.droot
    in
    let node = child_node parent sid in
    node.ncount <- node.ncount + 1;
    emit_span_event "span_open" sid st;
    st.dstack <- (node, Clock.now_ns ()) :: st.dstack;
    Fun.protect
      ~finally:(fun () ->
        (match st.dstack with
        | (n, t0) :: rest when n == node ->
            n.nns <- Int64.add n.nns (Int64.sub (Clock.now_ns ()) t0);
            st.dstack <- rest
        | _ ->
            (* unbalanced (reset under an open span): drop the stack
               rather than misattribute time *)
            st.dstack <- []);
        emit_span_event "span_close" sid st)
      f
  end

(* ---- pool context ---- *)

type ctx = int list (* span-id path, root first *)

let current_ctx () =
  if not !enabled_flag then []
  else List.rev_map (fun (n, _) -> n.nspan) (state ()).dstack

let with_ctx ctx f =
  if (not !enabled_flag) || ctx = [] then f ()
  else begin
    let st = state () in
    let saved = st.dstack in
    (* resolve the submitter's span path in this domain's tree, creating
       nodes as needed without bumping counts or timing them — the
       submitter's own with_span frames account for the wall time *)
    let node = List.fold_left child_node st.droot ctx in
    st.dstack <- [ (node, Int64.min_int) ];
    Fun.protect ~finally:(fun () -> st.dstack <- saved) f
  end

(* ---- trace context ---- *)

(* One slot per domain, not per systhread: threads sharing a domain also
   share its span stack, so trace attribution has exactly the same
   tolerance as span nesting under concurrent systhreads. *)
let set_trace t = (state ()).dtrace <- t
let current_trace () = (state ()).dtrace

let with_trace t f =
  let st = state () in
  let saved = st.dtrace in
  st.dtrace <- t;
  Fun.protect ~finally:(fun () -> st.dtrace <- saved) f

(* ---- reports ---- *)

type span_report = {
  sp_name : string;
  sp_count : int;
  sp_ns : int64;
  sp_children : span_report list;
}

type bucket = { b_lo : int; b_hi : int; b_count : int }

type hist_report = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_max : int;
  h_buckets : bucket list;
}

type report = {
  r_enabled : bool;
  r_counters : (string * int) list;
  r_spans : span_report list;
  r_hists : hist_report list;
}

(* merge one tree level across domains; caller holds registry_lock *)
let rec merge_children (tbls : (int, node) Hashtbl.t list) : span_report list =
  let ids =
    List.concat_map (fun t -> Hashtbl.fold (fun k _ acc -> k :: acc) t []) tbls
    |> List.sort_uniq compare
  in
  ids
  |> List.map (fun sid ->
         let nodes = List.filter_map (fun t -> Hashtbl.find_opt t sid) tbls in
         {
           sp_name = name_of span_names sid;
           sp_count = List.fold_left (fun a n -> sat_add a n.ncount) 0 nodes;
           sp_ns = List.fold_left (fun a n -> Int64.add a n.nns) 0L nodes;
           sp_children = merge_children (List.map (fun n -> n.nchildren) nodes);
         })
  |> List.sort (fun a b -> compare a.sp_name b.sp_name)

let bucket_bounds i =
  if i = 0 then (min_int, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let report () =
  Mutex.lock registry_lock;
  let states = !all_states in
  let counters =
    List.mapi
      (fun rev_i name ->
        let id = counter_names.count - 1 - rev_i in
        let v =
          List.fold_left
            (fun a st ->
              if id < Array.length st.dcounters then sat_add a st.dcounters.(id)
              else a)
            0 states
        in
        (name, v))
      counter_names.ordered
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let spans = merge_children (List.map (fun st -> st.droot.nchildren) states) in
  let hists =
    List.mapi
      (fun rev_i name ->
        let id = hist_names.count - 1 - rev_i in
        let cells =
          List.filter_map
            (fun st ->
              if id < Array.length st.dhists then st.dhists.(id) else None)
            states
        in
        let buckets =
          List.init 64 (fun b ->
              let c =
                List.fold_left (fun a cell -> a + cell.hbuckets.(b)) 0 cells
              in
              let lo, hi = bucket_bounds b in
              { b_lo = lo; b_hi = hi; b_count = c })
          |> List.filter (fun b -> b.b_count > 0)
        in
        {
          h_name = name;
          h_count = List.fold_left (fun a c -> a + c.hcount) 0 cells;
          h_sum = List.fold_left (fun a c -> sat_add a c.hsum) 0 cells;
          h_max =
            List.fold_left (fun a c -> max a c.hmax) min_int cells
            |> (fun m -> if m = min_int then 0 else m);
          h_buckets = buckets;
        })
      hist_names.ordered
    |> List.sort (fun a b -> compare a.h_name b.h_name)
  in
  Mutex.unlock registry_lock;
  { r_enabled = !enabled_flag; r_counters = counters; r_spans = spans; r_hists = hists }

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun st ->
      Array.fill st.dcounters 0 (Array.length st.dcounters) 0;
      Array.fill st.dhists 0 (Array.length st.dhists) None;
      Hashtbl.reset st.droot.nchildren;
      st.dstack <- [])
    !all_states;
  Mutex.unlock registry_lock

(* ---- quantiles ---- *)

let quantile h q =
  if h.h_count <= 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
    let rec go seen = function
      | [] -> max h.h_max 0
      | b :: rest ->
          let seen = seen + b.b_count in
          if seen >= rank then max b.b_hi 0 else go seen rest
    in
    go 0 h.h_buckets
  end

(* ---- snapshots ---- *)

module Snapshot = struct
  (* Marshal of the merged report behind a magic header.  Snapshots only
     ever cross between processes running the same binary (forked sweep
     workers), which is exactly Marshal's compatibility contract; the
     header lets [absorb] reject arbitrary bytes before unmarshalling,
     and the sweep store's checksum layer rejects torn payloads. *)
  let magic = "chobsnap1\n"

  let capture () = magic ^ Marshal.to_string (report ()) []

  let absorb s =
    let fail () = failwith "Obs.Snapshot.absorb: not an obs snapshot" in
    let mlen = String.length magic in
    if String.length s < mlen || String.sub s 0 mlen <> magic then fail ();
    let r =
      match (Marshal.from_string s mlen : report) with
      | r -> r
      | exception _ -> fail ()
    in
    if !enabled_flag then begin
      let st = state () in
      List.iter (fun (name, v) -> incr (counter name) v) r.r_counters;
      List.iter
        (fun h ->
          if h.h_count > 0 then begin
            let id = histogram h.h_name in
            if id >= Array.length st.dhists then
              st.dhists <- grown st.dhists None id;
            let cell =
              match st.dhists.(id) with
              | Some c -> c
              | None ->
                  let c = new_hcell () in
                  st.dhists.(id) <- Some c;
                  c
            in
            (* [bucket_of b_lo] recovers the bucket index: bucket i >= 1
               starts at 2^(i-1), and bucket 0's lower bound (min_int)
               maps back to 0. *)
            List.iter
              (fun b ->
                let i = bucket_of b.b_lo in
                cell.hbuckets.(i) <- cell.hbuckets.(i) + b.b_count)
              h.h_buckets;
            cell.hcount <- cell.hcount + h.h_count;
            cell.hsum <- sat_add cell.hsum h.h_sum;
            if h.h_max > cell.hmax then cell.hmax <- h.h_max
          end)
        r.r_hists;
      let rec absorb_sp parent sp =
        let node = child_node parent (span sp.sp_name) in
        node.ncount <- sat_add node.ncount sp.sp_count;
        node.nns <- Int64.add node.nns sp.sp_ns;
        List.iter (absorb_sp node) sp.sp_children
      in
      List.iter (absorb_sp st.droot) r.r_spans
    end
end

(* ---- time series ---- *)

module Series = struct
  type sample = { s_t_ns : int64; s_report : report }
  type t = { ring : sample option array; mutable head : int; mutable len : int }

  let create ?(capacity = 120) () =
    let capacity = max 2 capacity in
    { ring = Array.make capacity None; head = 0; len = 0 }

  let capacity t = Array.length t.ring
  let length t = t.len

  let sample ?now_ns t =
    let now = match now_ns with Some n -> n | None -> Clock.now_ns () in
    t.ring.(t.head) <- Some { s_t_ns = now; s_report = report () };
    t.head <- (t.head + 1) mod Array.length t.ring;
    if t.len < Array.length t.ring then t.len <- t.len + 1

  (* i = 0 is the oldest retained sample, i = len - 1 the newest *)
  let get t i =
    let cap = Array.length t.ring in
    let idx = ((t.head - t.len + i) mod cap + cap) mod cap in
    match t.ring.(idx) with Some s -> s | None -> invalid_arg "Series.get"

  let newest t = get t (t.len - 1)
  let oldest t = get t 0

  let window_s t =
    if t.len < 2 then 0.
    else Int64.to_float (Int64.sub (newest t).s_t_ns (oldest t).s_t_ns) /. 1e9

  let counter_value r name =
    match List.assoc_opt name r.r_counters with Some v -> v | None -> 0

  let delta t name =
    if t.len < 2 then 0
    else
      max 0
        (counter_value (newest t).s_report name
        - counter_value (oldest t).s_report name)

  let rate t name =
    let w = window_s t in
    if w <= 0. then 0. else float_of_int (delta t name) /. w

  let find_hist r name = List.find_opt (fun h -> h.h_name = name) r.r_hists

  let hist_total t name =
    if t.len = 0 then None else find_hist (newest t).s_report name

  (* windowed histogram: newest cumulative buckets minus oldest.  The
     max field cannot be windowed from cumulative state; it keeps the
     newest cumulative max (documented log-scale approximation). *)
  let hist_delta t name =
    if t.len < 2 then None
    else
      match find_hist (newest t).s_report name with
      | None -> None
      | Some hn ->
          let old_h = find_hist (oldest t).s_report name in
          let old_bucket lo =
            match old_h with
            | None -> 0
            | Some ho -> (
                match List.find_opt (fun b -> b.b_lo = lo) ho.h_buckets with
                | Some b -> b.b_count
                | None -> 0)
          in
          let buckets =
            List.filter_map
              (fun b ->
                let c = b.b_count - old_bucket b.b_lo in
                if c > 0 then Some { b with b_count = c } else None)
              hn.h_buckets
          in
          let oc, os =
            match old_h with Some h -> (h.h_count, h.h_sum) | None -> (0, 0)
          in
          Some
            {
              hn with
              h_count = max 0 (hn.h_count - oc);
              h_sum = max 0 (hn.h_sum - os);
              h_buckets = buckets;
            }
end

(* ---- rendering ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json r =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"enabled\": %b,\n\"counters\": [" r.r_enabled;
  List.iteri
    (fun i (name, v) ->
      add "%s\n{\"name\": \"%s\", \"value\": %d}"
        (if i = 0 then "" else ",")
        (json_escape name) v)
    r.r_counters;
  add "\n],\n\"spans\": [";
  let rec spans first = function
    | [] -> ()
    | sp :: rest ->
        add "%s{\"name\": \"%s\", \"count\": %d, \"total_ns\": %Ld, \"children\": ["
          (if first then "" else ", ")
          (json_escape sp.sp_name) sp.sp_count sp.sp_ns;
        spans true sp.sp_children;
        add "]}";
        spans false rest
  in
  spans true r.r_spans;
  add "],\n\"histograms\": [";
  List.iteri
    (fun i h ->
      add "%s\n{\"name\": \"%s\", \"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": ["
        (if i = 0 then "" else ",")
        (json_escape h.h_name) h.h_count h.h_sum h.h_max;
      List.iteri
        (fun j bk ->
          add "%s{\"lo\": %d, \"hi\": %d, \"count\": %d}"
            (if j = 0 then "" else ", ")
            (max bk.b_lo 0) bk.b_hi bk.b_count)
        h.h_buckets;
      add "]}")
    r.r_hists;
  add "\n]}";
  Buffer.contents b

let ms ns = Int64.to_float ns /. 1e6

let pp_profile ?wall_ns ppf r =
  let span_total =
    List.fold_left (fun a sp -> Int64.add a sp.sp_ns) 0L r.r_spans
  in
  let base = match wall_ns with Some w when w > 0L -> w | _ -> span_total in
  let basef = Int64.to_float (max base 1L) in
  let pct ns = 100. *. Int64.to_float ns /. basef in
  Format.fprintf ppf "span tree (100%% = %.3f ms%s):@."
    (ms base)
    (match wall_ns with Some _ -> " wall" | None -> " of top-level spans");
  let rec tree indent sp =
    Format.fprintf ppf "  %s%-*s %10.3f ms %6.1f%%  x%d@." indent
      (max 1 (32 - String.length indent))
      sp.sp_name (ms sp.sp_ns) (pct sp.sp_ns) sp.sp_count;
    let child_ns =
      List.fold_left (fun a c -> Int64.add a c.sp_ns) 0L sp.sp_children
    in
    List.iter (tree (indent ^ "  ")) sp.sp_children;
    if sp.sp_children <> [] then
      let self = Int64.sub sp.sp_ns child_ns in
      if pct self >= 0.05 then
        Format.fprintf ppf "  %s  %-*s %10.3f ms %6.1f%%@." indent
          (max 1 (32 - String.length indent - 2))
          "(self)" (ms self) (pct self)
  in
  List.iter (tree "") r.r_spans;
  (match wall_ns with
  | Some _ ->
      Format.fprintf ppf "attributed to spans: %.1f%% of wall@."
        (pct span_total)
  | None -> ());
  let nonzero = List.filter (fun (_, v) -> v > 0) r.r_counters in
  if nonzero <> [] then begin
    Format.fprintf ppf "counters:@.";
    nonzero
    |> List.sort (fun (an, a) (bn, b) ->
           match compare b a with 0 -> compare an bn | c -> c)
    |> List.iter (fun (name, v) ->
           Format.fprintf ppf "  %-40s %12d@." name v)
  end;
  let live = List.filter (fun h -> h.h_count > 0) r.r_hists in
  if live <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun h ->
        Format.fprintf ppf "  %-40s n=%d sum=%d max=%d avg=%.1f@." h.h_name
          h.h_count h.h_sum h.h_max
          (float_of_int h.h_sum /. float_of_int (max 1 h.h_count));
        List.iter
          (fun bk ->
            Format.fprintf ppf "    [%d..%d] %d@." (max bk.b_lo 0) bk.b_hi
              bk.b_count)
          h.h_buckets)
      live
  end
