open Ch_cc
open Ch_core

(** Empirical lower-bound sweeps over input pairs.

    {!sweep} runs the lockstep simulation and its [run_split] oracle on
    every pair, differences them, and derives the family's empirical
    Theorem 1.1 figure Ω(CC(f)/(|E_cut|·log n)) from the measured cut
    size and bandwidth plus the known CC bound (CC(DISJ_K) ≥ K;
    deterministic CC(EQ_K) = K + 1). *)

type row = {
  bx : Bits.t;
  by : Bits.t;
  bt : Simulate.transcript;
  br : Simulate.reference;
  bmatch : bool;
      (** cut bits, cut messages, rounds and answer all equal the oracle *)
}

type report = {
  rep_name : string;
  rep_n : int;
  rep_input_bits : int;  (** K *)
  rep_parties : int;  (** t — 2 unless the family registered a partition *)
  rep_cut : int;  (** measured |multicut| (= |E_cut| at t=2) *)
  rep_bandwidth : int;  (** B *)
  rep_pairs : int;
  rep_rounds_max : int;
  rep_cut_bits_max : int;
  rep_budget_max : int;
  rep_bits_per_round : float;  (** mean over pairs of cut_bits/rounds *)
  rep_cc_bits : int;  (** the CC(f) lower bound invoked *)
  rep_lb_rounds : float;  (** CC(f)/(|E_cut|·log₂ n) *)
  rep_all_correct : bool;
  rep_all_match : bool;  (** transcript ≡ run_split on every pair *)
  rep_all_within_budget : bool;
}

val cc_bits : input_bits:int -> [ `Disj | `Eq ] -> int

val exhaustive_pairs : Framework.t -> (Bits.t * Bits.t) list
(** All 2^K × 2^K pairs.  @raise Invalid_argument when [K > 5]. *)

val sampled_pairs : Framework.t -> seed:int -> samples:int -> (Bits.t * Bits.t) list
(** The four corner pairs followed by [samples] random pairs; sample [i]
    draws seeds (seed + 2i, seed + 2i + 1), as in
    {!Framework.verify_random}. *)

val connected_pairs :
  Framework.t -> (Bits.t * Bits.t) list -> (Bits.t * Bits.t) list * int
(** Drop pairs whose instance (communication graph, for directed
    constructions) is disconnected — outside the CONGEST model;
    {!Simulate.lockstep} rejects them.  Also returns how many were
    dropped, so sweeps can report rather than silently shrink. *)

val matches : Simulate.transcript -> Simulate.reference -> bool

val sweep :
  ?trace:Trace.sink ->
  Simulate.spec ->
  (Bits.t * Bits.t) list ->
  row list * report

val pp_report : Format.formatter -> report -> unit

val sweep_registry :
  ?trace:Trace.sink ->
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?exhaustive:bool ->
  ?samples:int ->
  Registry.spec ->
  k:int ->
  (row list * report * int) option
(** The registry-driven sweep: compile a catalog spec's reduction at
    scale [k] via {!Simulate.registry_spec}, pick the pair set
    (all 4^K when [exhaustive], else corners + [samples] random pairs
    from [seed], 41 by default), drop disconnected pairs, and sweep.
    Returns the rows, the report and the dropped-pair count; [None]
    when the spec has no reduction algorithm. *)
