open Ch_congest

(** Concrete bit encodings for the CONGEST algorithms' messages.

    Every algorithm declares an abstract size ([algo.msg_bits]); the
    codecs here commit to an actual encoding of that exact width, which
    is what the lockstep simulation pushes through the two-party channel
    for cut-crossing messages.  Field widths are value-dependent (as in
    the [msg_bits] formulas), so the per-message field boundaries are
    frame metadata the two players share — in Theorem 1.1 terms, the
    round schedule and the B-bit slot per cut edge per round are common
    knowledge; only the payload bits are charged. *)

type 'msg t = {
  cname : string;
  enc : 'msg -> bool list;
      (** Exactly [msg_bits msg] bits.  @raise Invalid_argument when a
          field value is negative or exceeds its declared width. *)
}

val field : max:int -> int -> bool list
(** Big-endian field of width [Encode.int_bits ~max] holding [0..max]. *)

val length_ok : ('s, 'm) Network.algo -> 'm t -> 'm -> bool
(** [|enc msg| = algo.msg_bits msg] — the encoding-honesty property. *)

type 'msg family = { fname : string; for_party : int -> 'msg t }
(** A per-party encoder assignment for the t-party simulation: party p
    encodes its outgoing cross messages with [for_party p].  Every
    party's codec must still hit the exact [msg_bits] width — the
    encoding-honesty property is per party. *)

val uniform : 'msg t -> 'msg family
(** Every party uses the same codec — the 2-party simulations and all
    current algorithm codecs. *)

val per_party : name:string -> 'msg t array -> 'msg family
(** [for_party p = cs.(p)].  @raise Invalid_argument out of range. *)

val gather : Gather.msg t

val mds_greedy : Mds_greedy.msg t

val bfs : n:int -> int t

val leader : n:int -> int t

val mis_greedy : int t
