open Ch_congest

type 'msg t = { cname : string; enc : 'msg -> bool list }

(* big-endian fixed-width field, width = Encode.int_bits ~max *)
let field ~max v =
  if v < 0 then invalid_arg "Codec.field: negative value";
  let w = Encode.int_bits ~max in
  if w < 63 && v lsr w <> 0 then invalid_arg "Codec.field: value exceeds width";
  List.init w (fun i -> (v lsr (w - 1 - i)) land 1 = 1)

let tag3 c = [ c land 4 <> 0; c land 2 <> 0; c land 1 <> 0 ]

let length_ok (algo : ('s, 'm) Network.algo) codec msg =
  List.length (codec.enc msg) = algo.Network.msg_bits msg

(* ---- per-party encoder families -------------------------------------- *)

type 'msg family = { fname : string; for_party : int -> 'msg t }

let uniform c = { fname = c.cname; for_party = (fun _ -> c) }

let per_party ~name cs =
  if Array.length cs = 0 then invalid_arg "Codec.per_party: no parties";
  {
    fname = name;
    for_party =
      (fun p ->
        if p < 0 || p >= Array.length cs then
          invalid_arg "Codec.per_party: party out of range"
        else cs.(p));
  }

let bfs ~n = { cname = "bfs"; enc = (fun d -> field ~max:n d) }

let leader ~n =
  { cname = "leader"; enc = (fun id -> field ~max:(Stdlib.max 1 (n - 1)) id) }

let mis_greedy = { cname = "mis-greedy"; enc = (fun code -> field ~max:3 code) }

(* field widths mirror the algorithms' msg_bits formulas exactly, so
   |enc m| = msg_bits m by construction — asserted by the bandwidth
   property tests in test_reduction *)
let gather =
  {
    cname = "gather";
    enc =
      (fun msg ->
        match (msg : Gather.msg) with
        | Gather.Dist d -> tag3 0 @ field ~max:(max 1 d) d
        | Gather.Child -> tag3 1
        | Gather.Done -> tag3 2
        | Gather.Edge (u, v, w) ->
            let m = max u v in
            tag3 3 @ field ~max:m u @ field ~max:m v @ field ~max:(max 1 w) w
        | Gather.Vweight (v, w) ->
            tag3 4 @ field ~max:(max 1 v) v @ field ~max:(max 1 w) w
        | Gather.Answer a ->
            (* the magnitude carries the charged width; the families'
               answers are nonnegative counts *)
            tag3 5 @ field ~max:(max 1 (abs a)) (abs a));
  }

let mds_greedy =
  {
    cname = "mds-greedy";
    enc =
      (fun msg ->
        match (msg : Mds_greedy.msg) with
        | Mds_greedy.Dist d -> tag3 0 @ field ~max:(max 1 d) d
        | Mds_greedy.Status b -> tag3 1 @ [ b ]
        | Mds_greedy.Cand (c, i) ->
            tag3 2 @ field ~max:(max 1 c) c @ field ~max:(max 1 i) i
        | Mds_greedy.Winner (i, c) ->
            tag3 3 @ field ~max:(max 1 i) i @ field ~max:(max 1 c) c
        | Mds_greedy.Joined -> tag3 4);
  }
