open Ch_cc
open Ch_core

type row = {
  bx : Bits.t;
  by : Bits.t;
  bt : Simulate.transcript;
  br : Simulate.reference;
  bmatch : bool;
}

type report = {
  rep_name : string;
  rep_n : int;
  rep_input_bits : int;
  rep_parties : int;
  rep_cut : int;
  rep_bandwidth : int;
  rep_pairs : int;
  rep_rounds_max : int;
  rep_cut_bits_max : int;
  rep_budget_max : int;
  rep_bits_per_round : float;
  rep_cc_bits : int;
  rep_lb_rounds : float;
  rep_all_correct : bool;
  rep_all_match : bool;
  rep_all_within_budget : bool;
}

let cc_bits ~input_bits = function
  | `Disj -> Commfn.cc_disj_lower_bound input_bits
  | `Eq -> input_bits + 1

let exhaustive_pairs fam =
  if fam.Framework.input_bits > 5 then
    invalid_arg "Bound.exhaustive_pairs: K > 5";
  let inputs = Bits.all fam.Framework.input_bits in
  List.concat_map (fun x -> List.map (fun y -> (x, y)) inputs) inputs

(* corners first, then sample i from seeds (seed + 2i, seed + 2i + 1) —
   the Framework.verify_random derivation, reproducible for any sweep
   split *)
let sampled_pairs fam ~seed ~samples =
  let k = fam.Framework.input_bits in
  [
    (Bits.zeros k, Bits.zeros k);
    (Bits.ones k, Bits.ones k);
    (Bits.ones k, Bits.zeros k);
    (Bits.zeros k, Bits.ones k);
  ]
  @ List.init samples (fun i ->
        (Bits.random ~seed:(seed + (2 * i)) k, Bits.random ~seed:(seed + (2 * i) + 1) k))

(* CONGEST assumes a connected network; the single-rooted gather cannot
   (and no distributed algorithm could) decide a global predicate across
   components that cannot talk to each other *)
let connected_pairs fam pairs =
  let keep, skip =
    List.partition
      (fun (x, y) ->
        match fam.Framework.build x y with
        | Framework.Undirected g -> Ch_graph.Props.connected g
        | Framework.Directed dg ->
            Ch_graph.Props.connected (Ch_congest.Network.comm_graph dg)
        | _ -> true)
      pairs
  in
  (keep, List.length skip)

let matches (t : Simulate.transcript) (r : Simulate.reference) =
  t.Simulate.cut_bits = r.Simulate.ref_cut_bits
  && t.Simulate.cut_messages = r.Simulate.ref_cut_messages
  && t.Simulate.rounds = r.Simulate.ref_rounds
  && t.Simulate.answer = r.Simulate.ref_answer

let sweep ?trace (spec : Simulate.spec) pairs =
  let rows =
    List.map
      (fun (x, y) ->
        let t = spec.Simulate.srun ?trace x y in
        let r = spec.Simulate.sref x y in
        { bx = x; by = y; bt = t; br = r; bmatch = matches t r })
      pairs
  in
  let fam = spec.Simulate.sfam in
  let n = fam.Framework.nvertices and k = fam.Framework.input_bits in
  let cut, bandwidth =
    match rows with
    | r :: _ -> (r.bt.Simulate.cut_size, r.bt.Simulate.bandwidth)
    | [] -> (Framework.cut_size fam, 0)
  in
  let fold f init = List.fold_left (fun acc r -> f acc r.bt) init rows in
  let pairs_n = List.length rows in
  let report =
    {
      rep_name = spec.Simulate.sname;
      rep_n = n;
      rep_input_bits = k;
      rep_parties = spec.Simulate.sparties;
      rep_cut = cut;
      rep_bandwidth = bandwidth;
      rep_pairs = pairs_n;
      rep_rounds_max = fold (fun acc t -> max acc t.Simulate.rounds) 0;
      rep_cut_bits_max = fold (fun acc t -> max acc t.Simulate.cut_bits) 0;
      rep_budget_max = fold (fun acc t -> max acc t.Simulate.budget) 0;
      rep_bits_per_round =
        (if pairs_n = 0 then 0.0
         else
           fold
             (fun acc t ->
               acc
               +. (float_of_int t.Simulate.cut_bits /. float_of_int t.Simulate.rounds))
             0.0
           /. float_of_int pairs_n);
      rep_cc_bits = cc_bits ~input_bits:k spec.Simulate.scc;
      rep_lb_rounds = Framework.lower_bound_rounds ~input_bits:k ~cut ~n;
      rep_all_correct = List.for_all (fun r -> r.bt.Simulate.correct) rows;
      rep_all_match = List.for_all (fun r -> r.bmatch) rows;
      rep_all_within_budget =
        List.for_all (fun r -> r.bt.Simulate.within_budget) rows;
    }
  in
  (rows, report)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: n=%d K=%d t=%d |cut|=%d B=%d@,\
     pairs=%d rounds<=%d cut-bits<=%d budget<=%d bits/round=%.1f@,\
     CC(f)>=%d bits => Omega(%.2f) rounds@,\
     all-correct=%b transcript=oracle=%b within-budget=%b@]"
    r.rep_name r.rep_n r.rep_input_bits r.rep_parties r.rep_cut r.rep_bandwidth
    r.rep_pairs
    r.rep_rounds_max r.rep_cut_bits_max r.rep_budget_max r.rep_bits_per_round
    r.rep_cc_bits r.rep_lb_rounds r.rep_all_correct r.rep_all_match
    r.rep_all_within_budget

let sweep_registry ?trace ?seed:(sample_seed = 41) ?bandwidth_factor
    ?(exhaustive = false) ?(samples = 8) (s : Registry.spec) ~k =
  match Simulate.registry_spec ?bandwidth_factor s ~k with
  | None -> None
  | Some spec ->
      let fam = spec.Simulate.sfam in
      let raw =
        if exhaustive then exhaustive_pairs fam
        else sampled_pairs fam ~seed:sample_seed ~samples
      in
      let pairs, skipped = connected_pairs fam raw in
      let rows, report = sweep ?trace spec pairs in
      Some (rows, report, skipped)
