(** Structured observability for the lockstep reduction simulation.

    The simulation emits one {!event} per message and one per round;
    sinks are plain consumers.  Cut traffic is attributed to the cut-edge
    index of the family's {!Ch_core.Framework.cut_info} descriptor, and
    every event carries the cumulative charged cut bits, so a trace
    replays the whole two-party transcript and its budget line. *)

type event =
  | Msg of {
      round : int;
      sender : int;
      target : int;
      bits : int;
      cut : bool;  (** crossed the V_A/V_B cut (charged on the channel) *)
      edge : int option;  (** cut-edge index when [cut] *)
      cum_cut_bits : int;  (** channel total after this message *)
    }
  | Round of {
      round : int;
      cut_bits : int;  (** charged this round *)
      cut_messages : int;
      internal_bits : int;  (** same-side traffic this round, uncharged *)
      cum_cut_bits : int;
      budget : int;  (** (round+1)·|E_cut|·B — the Theorem 1.1 line *)
    }

type sink = event -> unit

val null : sink

val collector : unit -> sink * (unit -> event list)
(** A sink accumulating events, and a function returning them in order. *)

val tee : sink -> sink -> sink

val to_json : event -> string

val jsonl : out_channel -> sink
(** One JSON object per line. *)

val obs_sink : sink
(** Retargets events onto the shared {!Ch_obs.Obs} layer: bumps the
    [reduction.*] counters/histograms and, when an Obs JSONL sink is
    installed, emits each event's JSON into that stream — reduction
    traces and solver span events then land in one file. *)
