(** Structured observability for the lockstep reduction simulation.

    The simulation emits one {!event} per message and one per round;
    sinks are plain consumers.  Every message is tagged with its ordered
    (sender part, target part) pair; cut traffic is additionally
    attributed to the cut-edge index of the family's
    {!Ch_core.Framework.cut_info} (or [multicut_info]) descriptor, and
    every event carries the cumulative charged cut bits, so a trace
    replays the whole t-party transcript and its budget lines — overall
    and per part pair. *)

type event =
  | Msg of {
      round : int;
      sender : int;
      target : int;
      sender_part : int;  (** the party simulating the sender *)
      target_part : int;
      bits : int;
      cut : bool;
          (** crossed parts (charged on the part-pair's channel);
              equivalent to [sender_part <> target_part] *)
      edge : int option;  (** (multi)cut-edge index when [cut] *)
      cum_cut_bits : int;  (** charged total after this message *)
    }
  | Round of {
      round : int;
      cut_bits : int;  (** charged this round, all channels *)
      cut_messages : int;
      internal_bits : int;  (** same-part traffic this round, uncharged *)
      cum_cut_bits : int;
      budget : int;  (** (round+1)·|multicut|·B — the Theorem 1.1 line *)
      pair_bits : ((int * int) * int) list;
          (** per-edge-class budget lines: bits charged this round on
              each ordered part pair with traffic, sorted *)
    }

type sink = event -> unit

val null : sink

val collector : unit -> sink * (unit -> event list)
(** A sink accumulating events, and a function returning them in order. *)

val tee : sink -> sink -> sink

val to_json : event -> string

val jsonl : out_channel -> sink
(** One JSON object per line. *)

val obs_sink : sink
(** Retargets events onto the shared {!Ch_obs.Obs} layer: bumps the
    [reduction.*] counters/histograms and, when an Obs JSONL sink is
    installed, emits each event's JSON into that stream — reduction
    traces and solver span events then land in one file. *)
