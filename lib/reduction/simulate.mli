open Ch_cc
open Ch_core
open Ch_congest

(** The Theorem 1.1 reduction, executed mechanically.

    Given a family of lower bound graphs (Definition 1.1), an input pair
    (x, y) and a CONGEST algorithm deciding the family's predicate,
    {!lockstep} has Alice simulate the V_A vertices and Bob the V_B
    vertices round by round on two complementary {!Network.stepper}s.
    Same-side messages are delivered locally for free; every cut-crossing
    message is encoded by its {!Codec} and pushed through a real
    {!Protocol.t} channel, which charges exactly its [msg_bits] width.

    Invariants (asserted by the differential tests and the bench):
    - the charged transcript equals [Network.run_split]'s [cut_bits],
      [cut_messages] and [rounds] bit-for-bit — the halves replay the
      full run exactly because both are built on {!Network.stepper};
    - [cut_bits <= rounds·|E_cut|·B] — the Theorem 1.1 budget;
    - the decoded answer (vertex 0's output) passed through [accept]
      equals f(x, y) — Alice and Bob have solved the communication
      problem at transcript cost, which is the whole reduction. *)

type transcript = {
  rounds : int;
  cut_bits : int;  (** bits charged on the two-party channel *)
  cut_messages : int;
  internal_bits : int;  (** same-side traffic, simulated for free *)
  cut_size : int;  (** |E_cut| *)
  bandwidth : int;  (** B *)
  budget : int;  (** rounds·|E_cut|·B *)
  answer : int;  (** the algorithm's output at vertex 0 *)
  output : bool;  (** [accept answer] — the protocol's decision *)
  expected : bool;  (** f(x, y) *)
  correct : bool;  (** output = expected *)
  within_budget : bool;  (** cut_bits ≤ budget *)
}

exception Codec_mismatch of { algo : string; declared : int; encoded : int }
(** A codec produced a payload whose length differs from the declared
    [msg_bits] — encoding dishonesty, never expected. *)

val lockstep :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  ?trace:Trace.sink ->
  Framework.t ->
  algo:('state, 'msg) Network.algo ->
  codec:'msg Codec.t ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  transcript
(** Run the two-party simulation on G_{x,y}.  Only undirected instances
    are supported; [seed]/[bandwidth_factor]/[max_rounds] default as in
    {!Network.run}.  @raise Invalid_argument when G_{x,y} is disconnected
    (outside the CONGEST model — see {!Bound.connected_pairs}). *)

(** {1 Monomorphic packaging}

    A {!spec} hides the algorithm's state/message types so sweeps, the
    bench and the CLI can treat families uniformly. *)

type reference = {
  ref_answer : int;
  ref_cut_bits : int;
  ref_cut_messages : int;
  ref_rounds : int;
}
(** The [Network.run_split] oracle the transcript is differenced against. *)

type spec = {
  sname : string;
  sfam : Framework.t;
  scc : [ `Disj | `Eq ];  (** which CC(f) bound the family invokes *)
  srun : ?trace:Trace.sink -> Bits.t -> Bits.t -> transcript;
  sref : Bits.t -> Bits.t -> reference;
}

val make_spec :
  name:string ->
  ?cc:[ `Disj | `Eq ] ->
  Framework.t ->
  run:(?trace:Trace.sink -> Bits.t -> Bits.t -> transcript) ->
  reference:(Bits.t -> Bits.t -> reference) ->
  spec

val gather_spec :
  ?seed:int ->
  ?bandwidth_factor:int ->
  name:string ->
  Framework.t ->
  solver:(Ch_graph.Graph.t -> int) ->
  accept:(int -> bool) ->
  spec
(** The generic exact upper bound ({!Gather.algo} rooted at vertex 0 with
    the family's exact [solver] at the root) packaged for simulation,
    with {!Gather.solve_split} as the reference oracle. *)

val registry_spec :
  ?seed:int -> ?bandwidth_factor:int -> Registry.spec -> k:int -> spec option
(** The registry adapter: {!gather_spec} over a catalog spec's reduction
    algorithm (solver + acceptance threshold) at scale [k], named
    ["<id>-k<k>"].  [None] when the spec carries no reduction — the CLI
    and the bench decide availability by this, not by a hand-written
    family list. *)
