open Ch_cc
open Ch_core
open Ch_congest

(** The Theorem 1.1 reduction, executed mechanically — for t parties.

    Given a family of lower bound graphs (Definition 1.1, or its
    multiparty analogue), an input pair (x, y) and a CONGEST algorithm
    deciding the family's predicate, {!lockstep_partitioned} has party p
    simulate the vertices of part p round by round on t complementary
    {!Network.stepper}s.  Same-part messages are delivered locally for
    free; every multicut-crossing message is encoded by the sender
    party's {!Codec} and pushed through the real {!Protocol.t} channel of
    its (sender part, target part) pair, which charges exactly its
    [msg_bits] width.  {!lockstep} is the historical two-party entry
    point, now a thin t=2 wrapper via {!Network.partition_of_side}.

    Invariants (asserted by the differential tests and the bench):
    - the charged transcript equals [Network.run_partitioned]'s
      [p_cross_bits]/[p_cross_messages]/[rounds] bit-for-bit (at t=2,
      [run_split]'s cut accounting) — the parts replay the full run
      exactly because all are built on {!Network.stepper};
    - [cut_bits <= rounds·|multicut|·B] — the Theorem 1.1 budget;
    - the decoded answer (the output of vertex 0, read by the party that
      owns it) passed through [accept] equals f(x, y) — the parties have
      solved the communication problem at transcript cost, which is the
      whole reduction. *)

type transcript = {
  parties : int;  (** t *)
  rounds : int;
  cut_bits : int;  (** bits charged over all part-pair channels *)
  cut_messages : int;
  internal_bits : int;  (** same-part traffic, simulated for free *)
  cut_size : int;  (** |multicut| (= |E_cut| at t=2) *)
  bandwidth : int;  (** B *)
  budget : int;  (** rounds·|multicut|·B *)
  answer : int;  (** the algorithm's output at vertex 0 *)
  output : bool;  (** [accept answer] — the protocol's decision *)
  expected : bool;  (** f(x, y) *)
  correct : bool;  (** output = expected *)
  within_budget : bool;  (** cut_bits ≤ budget *)
}

exception Codec_mismatch of { algo : string; declared : int; encoded : int }
(** A codec produced a payload whose length differs from the declared
    [msg_bits] — encoding dishonesty, never expected. *)

val lockstep_partitioned :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  ?trace:Trace.sink ->
  Framework.t ->
  partition:int array ->
  algo:('state, 'msg) Network.algo ->
  codecs:'msg Codec.family ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  transcript
(** Run the t-party simulation on G_{x,y} under [partition] (vertex →
    part id).  Only undirected instances are supported;
    [seed]/[bandwidth_factor]/[max_rounds] default as in {!Network.run}.
    Parts are stepped in index order, so at t=2 the transcript is
    bit-identical to the historical Alice/Bob schedule.
    @raise Invalid_argument when G_{x,y} is disconnected (outside the
    CONGEST model — see {!Bound.connected_pairs}), when the partition has
    the wrong length, an empty part or a negative id. *)

val lockstep :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  ?trace:Trace.sink ->
  Framework.t ->
  algo:('state, 'msg) Network.algo ->
  codec:'msg Codec.t ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  transcript
(** The two-party simulation: {!lockstep_partitioned} with the family's
    [side] array as a 2-part partition (Alice = part 0) and a uniform
    codec. *)

val lockstep_directed :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  ?trace:Trace.sink ->
  Framework.t ->
  algo:('state, 'msg) Network.algo ->
  codec:'msg Codec.t ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  transcript
(** The two-party simulation over a directed construction: the steppers
    run on {!Network.stepper_directed} (communication on
    {!Network.comm_graph}, orientation as local data), cut charging as in
    {!lockstep}.  Only directed instances are supported. *)

(** {1 Monomorphic packaging}

    A {!spec} hides the algorithm's state/message types so sweeps, the
    bench and the CLI can treat families uniformly. *)

type reference = {
  ref_answer : int;
  ref_cut_bits : int;
  ref_cut_messages : int;
  ref_rounds : int;
}
(** The [Network.run_split] / [run_partitioned] oracle the transcript is
    differenced against. *)

type spec = {
  sname : string;
  sfam : Framework.t;
  scc : [ `Disj | `Eq ];  (** which CC(f) bound the family invokes *)
  sparties : int;  (** t — 2 unless the family registered a partition *)
  srun : ?trace:Trace.sink -> Bits.t -> Bits.t -> transcript;
  sref : Bits.t -> Bits.t -> reference;
}

val make_spec :
  name:string ->
  ?cc:[ `Disj | `Eq ] ->
  ?parties:int ->
  Framework.t ->
  run:(?trace:Trace.sink -> Bits.t -> Bits.t -> transcript) ->
  reference:(Bits.t -> Bits.t -> reference) ->
  spec
(** [parties] defaults to 2. *)

val gather_spec :
  ?seed:int ->
  ?bandwidth_factor:int ->
  name:string ->
  Framework.t ->
  solver:(Ch_graph.Graph.t -> int) ->
  accept:(int -> bool) ->
  spec
(** The generic exact upper bound ({!Gather.algo} rooted at vertex 0 with
    the family's exact [solver] at the root) packaged for two-party
    simulation, with {!Gather.solve_split} as the reference oracle. *)

val gather_spec_directed :
  ?seed:int ->
  ?bandwidth_factor:int ->
  name:string ->
  Framework.t ->
  solver:(Ch_graph.Digraph.t -> int) ->
  accept:(int -> bool) ->
  spec
(** {!gather_spec} for directed constructions: {!Gather.directed_algo}
    under {!lockstep_directed}, with {!Gather.solve_directed_split} as
    the reference oracle — Hamiltonian families plug in here. *)

val gather_spec_partitioned :
  ?seed:int ->
  ?bandwidth_factor:int ->
  name:string ->
  Framework.t ->
  partition:int array ->
  solver:(Ch_graph.Graph.t -> int) ->
  accept:(int -> bool) ->
  spec
(** {!gather_spec} under a t-part partition: {!lockstep_partitioned} with
    {!Gather.solve_partitioned} as the reference oracle. *)

val registry_spec :
  ?seed:int -> ?bandwidth_factor:int -> Registry.spec -> k:int -> spec option
(** The registry adapter: the gather spec matching a catalog spec's
    reduction record (solver + acceptance threshold + optional partition)
    at scale [k], named ["<id>-k<k>"].  [None] when the spec carries no
    reduction — the CLI and the bench decide availability by this, not by
    a hand-written family list. *)
