open Ch_graph
open Ch_cc
open Ch_core
open Ch_congest

type transcript = {
  parties : int;
  rounds : int;
  cut_bits : int;
  cut_messages : int;
  internal_bits : int;
  cut_size : int;
  bandwidth : int;
  budget : int;
  answer : int;
  output : bool;
  expected : bool;
  correct : bool;
  within_budget : bool;
}

exception
  Codec_mismatch of { algo : string; declared : int; encoded : int }

let undirected_of name fam x y =
  match fam.Framework.build x y with
  | Framework.Undirected g -> g
  | Framework.Directed _ | Framework.With_terminals _
  | Framework.Rooted_digraph _ ->
      invalid_arg (name ^ ": undirected instances only")

let directed_of name fam x y =
  match fam.Framework.build x y with
  | Framework.Directed dg -> dg
  | Framework.Undirected _ | Framework.With_terminals _
  | Framework.Rooted_digraph _ ->
      invalid_arg (name ^ ": directed instances only")

(* The generic t-party engine.  [mk_stepper owns] builds the partial
   stepper a party runs (undirected or directed network); [g] is the
   communication graph, used for connectivity and the divergence guard.
   Parts are stepped in index order every round — at t=2 with
   [partition_of_side] this is exactly the historical Alice-then-Bob
   schedule, so the old two-party transcripts replay bit-identically. *)
let lockstep_core ?max_rounds ?(trace = Trace.null) ~name fam ~partition
    ~(algo : ('state, 'msg) Network.algo) ~(codecs : 'msg Codec.family)
    ~accept ~g ~mk_stepper x y =
  (* the CONGEST model assumes a connected network; degenerate input pairs
     that disconnect G_{x,y} (e.g. the no-input-edge corner of the MDS
     family) are outside it — Bound.connected_pairs filters them *)
  if not (Props.connected g) then
    invalid_arg (name ^ ": G_{x,y} is disconnected");
  if Array.length partition <> Graph.n g then
    invalid_arg (name ^ ": partition length");
  (* rejects empty parts and negative ids — a party with no vertices
     cannot take part in the simulation *)
  let t = Network.partition_parts partition in
  let mc = Framework.multicut_info fam ~partition in
  let cut_size = Array.length mc.Framework.mc_edges in
  (* Party p owns partition⁻¹(p).  By Definition 1.1 (and its multiparty
     analogue) a party's induced subgraph depends only on its own share
     of the input, so each party really can run its stepper locally. *)
  let steppers =
    Array.init t (fun p -> mk_stepper (fun v -> partition.(v) = p))
  in
  let bandwidth = Network.stepper_bandwidth steppers.(0) in
  let max_rounds =
    match max_rounds with Some r -> r | None -> Network.default_max_rounds g
  in
  (* one two-party channel per unordered part pair {p, q}: the multicut
     edge classes of the Theorem 1.1 charging argument *)
  let chans = Array.init t (fun _ -> Array.init t (fun _ -> Protocol.create ())) in
  let chan p q = if p < q then chans.(p).(q) else chans.(q).(p) in
  let charged = ref 0 and cut_messages = ref 0 and internal_bits = ref 0 in
  let pair_round = Array.make_matrix t t 0 in
  let note_internal round (tr : 'msg Network.transfer) =
    internal_bits := !internal_bits + tr.Network.t_bits;
    let p = partition.(tr.Network.t_sender) in
    trace
      (Trace.Msg
         {
           round;
           sender = tr.Network.t_sender;
           target = tr.Network.t_target;
           sender_part = p;
           target_part = partition.(tr.Network.t_target);
           bits = tr.Network.t_bits;
           cut = false;
           edge = None;
           cum_cut_bits = !charged;
         })
  in
  (* A multicut crossing: the sender's party encodes the message and the
     payload goes through its part pair's channel, which charges exactly
     its length = msg_bits — so the transcript total is bit-for-bit the
     run_partitioned cross accounting.  The frame around the payload
     (which cut edge, the value-dependent field widths) is the round
     schedule all parties share; Theorem 1.1 budgets a B-bit slot per cut
     edge per round as common knowledge and charges only the payload. *)
  let cross round (tr : 'msg Network.transfer) =
    let sp = partition.(tr.Network.t_sender)
    and tp = partition.(tr.Network.t_target) in
    let payload = (codecs.Codec.for_party sp).Codec.enc tr.Network.t_msg in
    if List.length payload <> tr.Network.t_bits then
      raise
        (Codec_mismatch
           {
             algo = algo.Network.name;
             declared = tr.Network.t_bits;
             encoded = List.length payload;
           });
    ignore (Protocol.send_bits (chan sp tp) (Bits.of_list payload));
    charged := !charged + tr.Network.t_bits;
    incr cut_messages;
    pair_round.(sp).(tp) <- pair_round.(sp).(tp) + tr.Network.t_bits;
    trace
      (Trace.Msg
         {
           round;
           sender = tr.Network.t_sender;
           target = tr.Network.t_target;
           sender_part = sp;
           target_part = tp;
           bits = tr.Network.t_bits;
           cut = true;
           edge =
             Framework.multicut_index mc tr.Network.t_sender
               tr.Network.t_target;
           cum_cut_bits = !charged;
         });
    tr
  in
  let inject = Array.make t [] in
  let quiescent = ref false in
  (* the loop mirrors Network.run_internal exactly: same termination
     condition over the union of the parts, same divergence guard *)
  while
    (not !quiescent)
    || not (Array.for_all Network.stepper_all_output steppers)
  do
    if Network.stepper_round steppers.(0) > max_rounds then
      failwith
        (Printf.sprintf "%s: %S did not terminate in %d rounds" name
           algo.Network.name max_rounds);
    let before = !charged and before_msgs = !cut_messages in
    let internal_before = !internal_bits in
    let logs =
      Array.mapi
        (fun p st ->
          let l = Network.step ~inject:inject.(p) st in
          inject.(p) <- [];
          l)
        steppers
    in
    let round = logs.(0).Network.log_round in
    Array.iter
      (fun l -> List.iter (note_internal round) l.Network.internal)
      logs;
    (* cross traffic in part order (sender part 0 first), re-injected into
       the target part's next step — in-flight exactly like the inboxes
       of the unsplit run, which deliver in ascending sender order *)
    let next = Array.make t [] in
    Array.iter
      (fun l ->
        List.iter
          (fun tr ->
            let tr = cross round tr in
            let q = partition.(tr.Network.t_target) in
            next.(q) <- tr :: next.(q))
          l.Network.outbound)
      logs;
    Array.iteri (fun q acc -> inject.(q) <- List.rev acc) next;
    let pair_bits = ref [] in
    for p = t - 1 downto 0 do
      for q = t - 1 downto 0 do
        if pair_round.(p).(q) > 0 then
          pair_bits := ((p, q), pair_round.(p).(q)) :: !pair_bits;
        pair_round.(p).(q) <- 0
      done
    done;
    trace
      (Trace.Round
         {
           round;
           cut_bits = !charged - before;
           cut_messages = !cut_messages - before_msgs;
           internal_bits = !internal_bits - internal_before;
           cum_cut_bits = !charged;
           budget = (round + 1) * cut_size * bandwidth;
           pair_bits = !pair_bits;
         });
    quiescent := not (Array.exists (fun l -> l.Network.sent) logs)
  done;
  let rounds = Network.stepper_round steppers.(0) in
  let answer =
    match Network.stepper_output steppers.(partition.(0)) 0 with
    | Some a -> a
    | None -> assert false
  in
  let cut_bits = !charged in
  let budget = rounds * cut_size * bandwidth in
  let expected = fam.Framework.f x y in
  let output = accept answer in
  {
    parties = t;
    rounds;
    cut_bits;
    cut_messages = !cut_messages;
    internal_bits = !internal_bits;
    cut_size;
    bandwidth;
    budget;
    answer;
    output;
    expected;
    correct = output = expected;
    within_budget = cut_bits <= budget;
  }

let lockstep_partitioned ?seed ?bandwidth_factor ?max_rounds ?trace fam
    ~partition ~(algo : ('state, 'msg) Network.algo)
    ~(codecs : 'msg Codec.family) ~accept x y =
  let name = "Simulate.lockstep_partitioned" in
  let g = undirected_of name fam x y in
  lockstep_core ?max_rounds ?trace ~name fam ~partition ~algo ~codecs ~accept
    ~g
    ~mk_stepper:(fun owns -> Network.stepper ?seed ?bandwidth_factor ~owns g algo)
    x y

let lockstep ?seed ?bandwidth_factor ?max_rounds ?trace fam
    ~(algo : ('state, 'msg) Network.algo) ~(codec : 'msg Codec.t) ~accept x y =
  lockstep_partitioned ?seed ?bandwidth_factor ?max_rounds ?trace fam
    ~partition:(Network.partition_of_side fam.Framework.side)
    ~algo ~codecs:(Codec.uniform codec) ~accept x y

let lockstep_directed ?seed ?bandwidth_factor ?max_rounds ?trace fam
    ~(algo : ('state, 'msg) Network.algo) ~(codec : 'msg Codec.t) ~accept x y =
  let name = "Simulate.lockstep_directed" in
  let dg = directed_of name fam x y in
  let g = Network.comm_graph dg in
  lockstep_core ?max_rounds ?trace ~name fam
    ~partition:(Network.partition_of_side fam.Framework.side)
    ~algo ~codecs:(Codec.uniform codec) ~accept ~g
    ~mk_stepper:(fun owns ->
      Network.stepper_directed ?seed ?bandwidth_factor ~owns dg algo)
    x y

(* ---- monomorphic packaging ------------------------------------------ *)

type reference = {
  ref_answer : int;
  ref_cut_bits : int;
  ref_cut_messages : int;
  ref_rounds : int;
}

type spec = {
  sname : string;
  sfam : Framework.t;
  scc : [ `Disj | `Eq ];
  sparties : int;
  srun : ?trace:Trace.sink -> Bits.t -> Bits.t -> transcript;
  sref : Bits.t -> Bits.t -> reference;
}

let make_spec ~name ?(cc = `Disj) ?(parties = 2) fam ~run ~reference =
  {
    sname = name;
    sfam = fam;
    scc = cc;
    sparties = parties;
    srun = run;
    sref = reference;
  }

let gather_spec ?seed ?bandwidth_factor ~name fam ~solver ~accept =
  let algo = Gather.algo ~root:0 ~f:solver () in
  {
    sname = name;
    sfam = fam;
    scc = `Disj;
    sparties = 2;
    srun =
      (fun ?trace x y ->
        lockstep ?seed ?bandwidth_factor ?trace fam ~algo ~codec:Codec.gather
          ~accept x y);
    sref =
      (fun x y ->
        let g = undirected_of "Simulate.gather_spec" fam x y in
        let answer, cs =
          Gather.solve_split ?seed ?bandwidth_factor ~side:fam.Framework.side g
            ~f:solver
        in
        {
          ref_answer = answer;
          ref_cut_bits = cs.Network.cut_bits;
          ref_cut_messages = cs.Network.cut_messages;
          ref_rounds = cs.Network.stats.Network.rounds;
        });
  }

let gather_spec_directed ?seed ?bandwidth_factor ~name fam ~solver ~accept =
  let algo = Gather.directed_algo ~root:0 ~f:solver () in
  {
    sname = name;
    sfam = fam;
    scc = `Disj;
    sparties = 2;
    srun =
      (fun ?trace x y ->
        lockstep_directed ?seed ?bandwidth_factor ?trace fam ~algo
          ~codec:Codec.gather ~accept x y);
    sref =
      (fun x y ->
        let dg = directed_of "Simulate.gather_spec_directed" fam x y in
        let answer, cs =
          Gather.solve_directed_split ?seed ?bandwidth_factor
            ~side:fam.Framework.side dg ~f:solver
        in
        {
          ref_answer = answer;
          ref_cut_bits = cs.Network.cut_bits;
          ref_cut_messages = cs.Network.cut_messages;
          ref_rounds = cs.Network.stats.Network.rounds;
        });
  }

let gather_spec_partitioned ?seed ?bandwidth_factor ~name fam ~partition
    ~solver ~accept =
  let algo = Gather.algo ~root:0 ~f:solver () in
  {
    sname = name;
    sfam = fam;
    scc = `Disj;
    sparties = Network.partition_parts partition;
    srun =
      (fun ?trace x y ->
        lockstep_partitioned ?seed ?bandwidth_factor ?trace fam ~partition
          ~algo
          ~codecs:(Codec.uniform Codec.gather)
          ~accept x y);
    sref =
      (fun x y ->
        let g = undirected_of "Simulate.gather_spec_partitioned" fam x y in
        let answer, ps =
          Gather.solve_partitioned ?seed ?bandwidth_factor ~partition g
            ~f:solver
        in
        {
          ref_answer = answer;
          ref_cut_bits = ps.Network.p_cross_bits;
          ref_cut_messages = ps.Network.p_cross_messages;
          ref_rounds = ps.Network.p_stats.Network.rounds;
        });
  }

(* The registry adapter: any catalog spec carrying a reduction record
   compiles to a gather spec at scale k — two-party, t-party or directed
   two-party depending on what the record registered. *)
let registry_spec ?seed ?bandwidth_factor (s : Registry.spec) ~k =
  match s.Registry.reduction with
  | None -> None
  | Some rd ->
      let rd = rd k in
      let name = Printf.sprintf "%s-k%d" s.Registry.id k in
      let fam = s.Registry.scratch k in
      let accept = rd.Registry.rd_accept in
      Some
        (match (rd.Registry.rd_solver, rd.Registry.rd_partition) with
        | Framework.Graph_solver solver, None ->
            gather_spec ?seed ?bandwidth_factor ~name fam ~solver ~accept
        | Framework.Graph_solver solver, Some partition ->
            gather_spec_partitioned ?seed ?bandwidth_factor ~name fam
              ~partition ~solver ~accept
        | Framework.Digraph_solver solver, None ->
            gather_spec_directed ?seed ?bandwidth_factor ~name fam ~solver
              ~accept
        | Framework.Digraph_solver _, Some _ ->
            invalid_arg
              "Simulate.registry_spec: partitioned directed reductions are \
               not supported")
