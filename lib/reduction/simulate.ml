open Ch_graph
open Ch_cc
open Ch_core
open Ch_congest

type transcript = {
  rounds : int;
  cut_bits : int;
  cut_messages : int;
  internal_bits : int;
  cut_size : int;
  bandwidth : int;
  budget : int;
  answer : int;
  output : bool;
  expected : bool;
  correct : bool;
  within_budget : bool;
}

exception
  Codec_mismatch of { algo : string; declared : int; encoded : int }

let undirected_of name fam x y =
  match fam.Framework.build x y with
  | Framework.Undirected g -> g
  | Framework.Directed _ | Framework.With_terminals _
  | Framework.Rooted_digraph _ ->
      invalid_arg (name ^ ": undirected instances only")

let lockstep ?seed ?bandwidth_factor ?max_rounds ?(trace = Trace.null) fam
    ~(algo : ('state, 'msg) Network.algo) ~(codec : 'msg Codec.t) ~accept x y =
  let g = undirected_of "Simulate.lockstep" fam x y in
  (* the CONGEST model assumes a connected network; degenerate input pairs
     that disconnect G_{x,y} (e.g. the no-input-edge corner of the MDS
     family) are outside it — Bound.connected_pairs filters them *)
  if not (Props.connected g) then
    invalid_arg "Simulate.lockstep: G_{x,y} is disconnected";
  let side = fam.Framework.side in
  if Array.length side <> Graph.n g then invalid_arg "Simulate.lockstep: side length";
  let ci = Framework.cut_info fam in
  let cut_size = Array.length ci.Framework.ci_edges in
  (* Alice owns V_A, Bob owns V_B.  By Definition 1.1 Alice's half of the
     graph (and hence her stepper) depends only on x, Bob's only on y —
     each player really can run their stepper locally. *)
  let alice =
    Network.stepper ?seed ?bandwidth_factor ~owns:(fun v -> side.(v)) g algo
  in
  let bob =
    Network.stepper ?seed ?bandwidth_factor ~owns:(fun v -> not side.(v)) g algo
  in
  let bandwidth = Network.stepper_bandwidth alice in
  let max_rounds =
    match max_rounds with Some r -> r | None -> Network.default_max_rounds g
  in
  let chan = Protocol.create () in
  let cut_messages = ref 0 and internal_bits = ref 0 in
  let note_internal round (tr : 'msg Network.transfer) =
    internal_bits := !internal_bits + tr.Network.t_bits;
    trace
      (Trace.Msg
         {
           round;
           sender = tr.Network.t_sender;
           target = tr.Network.t_target;
           bits = tr.Network.t_bits;
           cut = false;
           edge = None;
           cum_cut_bits = Protocol.bits chan;
         })
  in
  (* A cut crossing: the sender's player encodes the message and the
     payload goes through the two-party channel, which charges exactly
     its length = msg_bits — so the transcript total is bit-for-bit the
     run_split cut accounting.  The frame around the payload (which cut
     edge, the value-dependent field widths) is the round schedule both
     players share; Theorem 1.1 budgets a B-bit slot per cut edge per
     round as common knowledge and charges only the payload. *)
  let cross round (tr : 'msg Network.transfer) =
    let payload = codec.Codec.enc tr.Network.t_msg in
    if List.length payload <> tr.Network.t_bits then
      raise
        (Codec_mismatch
           {
             algo = algo.Network.name;
             declared = tr.Network.t_bits;
             encoded = List.length payload;
           });
    ignore (Protocol.send_bits chan (Bits.of_list payload));
    incr cut_messages;
    trace
      (Trace.Msg
         {
           round;
           sender = tr.Network.t_sender;
           target = tr.Network.t_target;
           bits = tr.Network.t_bits;
           cut = true;
           edge = Framework.cut_index ci tr.Network.t_sender tr.Network.t_target;
           cum_cut_bits = Protocol.bits chan;
         });
    tr
  in
  let inject_a = ref [] and inject_b = ref [] in
  let quiescent = ref false in
  (* the loop mirrors Network.run_internal exactly: same termination
     condition over the union of the halves, same divergence guard *)
  while
    (not !quiescent)
    || not (Network.stepper_all_output alice && Network.stepper_all_output bob)
  do
    if Network.stepper_round alice > max_rounds then
      failwith
        (Printf.sprintf "Simulate.lockstep: %S did not terminate in %d rounds"
           algo.Network.name max_rounds);
    let before = Protocol.bits chan and before_msgs = !cut_messages in
    let internal_before = !internal_bits in
    let la = Network.step ~inject:!inject_a alice in
    let lb = Network.step ~inject:!inject_b bob in
    let round = la.Network.log_round in
    List.iter (note_internal round) la.Network.internal;
    List.iter (note_internal round) lb.Network.internal;
    inject_b := List.map (cross round) la.Network.outbound;
    inject_a := List.map (cross round) lb.Network.outbound;
    trace
      (Trace.Round
         {
           round;
           cut_bits = Protocol.bits chan - before;
           cut_messages = !cut_messages - before_msgs;
           internal_bits = !internal_bits - internal_before;
           cum_cut_bits = Protocol.bits chan;
           budget = (round + 1) * cut_size * bandwidth;
         });
    quiescent := not (la.Network.sent || lb.Network.sent)
  done;
  let rounds = Network.stepper_round alice in
  let answer =
    match Network.stepper_output (if side.(0) then alice else bob) 0 with
    | Some a -> a
    | None -> assert false
  in
  let cut_bits = Protocol.bits chan in
  let budget = rounds * cut_size * bandwidth in
  let expected = fam.Framework.f x y in
  let output = accept answer in
  {
    rounds;
    cut_bits;
    cut_messages = !cut_messages;
    internal_bits = !internal_bits;
    cut_size;
    bandwidth;
    budget;
    answer;
    output;
    expected;
    correct = output = expected;
    within_budget = cut_bits <= budget;
  }

(* ---- monomorphic packaging ------------------------------------------ *)

type reference = {
  ref_answer : int;
  ref_cut_bits : int;
  ref_cut_messages : int;
  ref_rounds : int;
}

type spec = {
  sname : string;
  sfam : Framework.t;
  scc : [ `Disj | `Eq ];
  srun : ?trace:Trace.sink -> Bits.t -> Bits.t -> transcript;
  sref : Bits.t -> Bits.t -> reference;
}

let make_spec ~name ?(cc = `Disj) fam ~run ~reference =
  { sname = name; sfam = fam; scc = cc; srun = run; sref = reference }

let gather_spec ?seed ?bandwidth_factor ~name fam ~solver ~accept =
  let algo = Gather.algo ~root:0 ~f:solver () in
  {
    sname = name;
    sfam = fam;
    scc = `Disj;
    srun =
      (fun ?trace x y ->
        lockstep ?seed ?bandwidth_factor ?trace fam ~algo ~codec:Codec.gather
          ~accept x y);
    sref =
      (fun x y ->
        let g = undirected_of "Simulate.gather_spec" fam x y in
        let answer, cs =
          Gather.solve_split ?seed ?bandwidth_factor ~side:fam.Framework.side g
            ~f:solver
        in
        {
          ref_answer = answer;
          ref_cut_bits = cs.Network.cut_bits;
          ref_cut_messages = cs.Network.cut_messages;
          ref_rounds = cs.Network.stats.Network.rounds;
        });
  }

(* The registry adapter: any catalog spec carrying a reduction algorithm
   compiles to a gather spec at scale k. *)
let registry_spec ?seed ?bandwidth_factor (s : Registry.spec) ~k =
  match s.Registry.reduction with
  | None -> None
  | Some rd ->
      let { Registry.rd_solver; rd_accept } = rd k in
      Some
        (gather_spec ?seed ?bandwidth_factor
           ~name:(Printf.sprintf "%s-k%d" s.Registry.id k)
           (s.Registry.scratch k) ~solver:rd_solver ~accept:rd_accept)
