type event =
  | Msg of {
      round : int;
      sender : int;
      target : int;
      sender_part : int;
      target_part : int;
      bits : int;
      cut : bool;
      edge : int option;
      cum_cut_bits : int;
    }
  | Round of {
      round : int;
      cut_bits : int;
      cut_messages : int;
      internal_bits : int;
      cum_cut_bits : int;
      budget : int;
      pair_bits : ((int * int) * int) list;
    }

type sink = event -> unit

let null _ = ()

let collector () =
  let acc = ref [] in
  ((fun e -> acc := e :: !acc), fun () -> List.rev !acc)

let tee a b e =
  a e;
  b e

let to_json = function
  | Msg
      {
        round;
        sender;
        target;
        sender_part;
        target_part;
        bits;
        cut;
        edge;
        cum_cut_bits;
      } ->
      Printf.sprintf
        "{\"type\": \"msg\", \"round\": %d, \"sender\": %d, \"target\": %d, \
         \"parts\": \"%d-%d\", \"bits\": %d, \"cut\": %b%s, \
         \"cum_cut_bits\": %d}"
        round sender target sender_part target_part bits cut
        (match edge with
        | Some i -> Printf.sprintf ", \"cut_edge\": %d" i
        | None -> "")
        cum_cut_bits
  | Round
      {
        round;
        cut_bits;
        cut_messages;
        internal_bits;
        cum_cut_bits;
        budget;
        pair_bits;
      } ->
      Printf.sprintf
        "{\"type\": \"round\", \"round\": %d, \"cut_bits\": %d, \
         \"cut_messages\": %d, \"internal_bits\": %d, \"cum_cut_bits\": %d, \
         \"budget\": %d, \"pair_bits\": {%s}}"
        round cut_bits cut_messages internal_bits cum_cut_bits budget
        (String.concat ", "
           (List.map
              (fun ((p, q), b) -> Printf.sprintf "\"%d-%d\": %d" p q b)
              pair_bits))

let jsonl oc e =
  output_string oc (to_json e);
  output_char oc '\n'

(* Retarget the trace onto the shared telemetry layer: counters and
   histograms go to Obs aggregation (merged into reports alongside the
   solver/cache/congest counters), and when an Obs JSONL sink is
   installed every event lands in the same stream as the span events. *)
module Obs = Ch_obs.Obs

let c_cut_msgs = Obs.counter "reduction.cut_messages"
let c_cut_bits = Obs.counter "reduction.cut_bits"
let c_internal_bits = Obs.counter "reduction.internal_bits"
let c_rounds = Obs.counter "reduction.rounds"
let h_round_cut_bits = Obs.histogram "reduction.round_cut_bits"

let obs_sink e =
  (match e with
  | Msg { bits; cut; _ } ->
      if cut then begin
        Obs.bump c_cut_msgs;
        Obs.incr c_cut_bits bits
      end
      else Obs.incr c_internal_bits bits
  | Round { cut_bits; _ } ->
      Obs.bump c_rounds;
      Obs.observe h_round_cut_bits cut_bits);
  (* rendering the JSON line costs more than the counters above — skip
     it entirely unless an event stream is actually attached *)
  if Obs.sink_installed () then Obs.emit (to_json e)
