type event =
  | Msg of {
      round : int;
      sender : int;
      target : int;
      bits : int;
      cut : bool;
      edge : int option;
      cum_cut_bits : int;
    }
  | Round of {
      round : int;
      cut_bits : int;
      cut_messages : int;
      internal_bits : int;
      cum_cut_bits : int;
      budget : int;
    }

type sink = event -> unit

let null _ = ()

let collector () =
  let acc = ref [] in
  ((fun e -> acc := e :: !acc), fun () -> List.rev !acc)

let tee a b e =
  a e;
  b e

let to_json = function
  | Msg { round; sender; target; bits; cut; edge; cum_cut_bits } ->
      Printf.sprintf
        "{\"type\": \"msg\", \"round\": %d, \"sender\": %d, \"target\": %d, \
         \"bits\": %d, \"cut\": %b%s, \"cum_cut_bits\": %d}"
        round sender target bits cut
        (match edge with
        | Some i -> Printf.sprintf ", \"cut_edge\": %d" i
        | None -> "")
        cum_cut_bits
  | Round { round; cut_bits; cut_messages; internal_bits; cum_cut_bits; budget } ->
      Printf.sprintf
        "{\"type\": \"round\", \"round\": %d, \"cut_bits\": %d, \
         \"cut_messages\": %d, \"internal_bits\": %d, \"cum_cut_bits\": %d, \
         \"budget\": %d}"
        round cut_bits cut_messages internal_bits cum_cut_bits budget

let jsonl oc e =
  output_string oc (to_json e);
  output_char oc '\n'
