(** On-disk content-addressed store for sweep artifacts.

    One directory per plan key under the store root:

    {v
    <root>/<key>/shard-<index %04d>.blk   per-shard verdict block
    <root>/<key>/memo-<slot>.snap         per-worker Cache snapshot
    <root>/<key>/obs-<slot>.snap          per-worker Obs snapshot
    v}

    The key ({!Sweep.store_key}) folds in the core's structural hash and
    every plan parameter, so two different sweeps can never exchange
    blocks.  Every artifact is written to a pid-suffixed temp file and
    [rename]d into place — concurrent writers and killed workers leave
    either the old file or the new one, never a torn block — and carries
    a checksummed header, so a truncated or bit-flipped file reads back
    as {!Corrupt}, never as data.

    Block format (text): a [chshard1 <index> <count> <md5>] header line,
    then the [count] verdicts as one ['0']/['1'] line; [md5] is the
    payload digest.  Snapshot format: a [chsnap1 <len> <md5>] header
    line, then the [len] raw snapshot bytes.  Obs snapshots use the
    same wrapper with a [chobs1] tag. *)

type t

type 'a read =
  | Value of 'a
  | Missing  (** never written (or removed) — recompute, nothing to report *)
  | Corrupt
      (** present but failing its header parse, length, index or
          checksum — report, then recompute *)

val open_ : dir:string -> key:string -> t
(** Create (or reopen) [dir/key], making parent directories as
    needed. *)

val dir : t -> string
(** The plan directory, [dir/key]. *)

val write_block : t -> index:int -> bool array -> unit
val read_block : t -> index:int -> bool array read

val write_snapshot : t -> slot:int -> string -> unit
val read_snapshot : t -> slot:int -> string read

val snapshot_slots : t -> int list
(** Slots with a snapshot file present, ascending. *)

(** {1 Obs snapshots}

    A forked sweep worker's parting {!Ch_obs.Obs.Snapshot} — written
    beside its memo snapshot, absorbed by the coordinator right after
    [waitpid], then removed so a later resume cannot double-count the
    same work. *)

val write_obs : t -> slot:int -> string -> unit
val read_obs : t -> slot:int -> string read

val obs_slots : t -> int list
(** Slots with an obs snapshot present, ascending. *)

val remove_obs : t -> slot:int -> unit
(** Delete one obs snapshot; a missing file is not an error. *)
