type t = { sdir : string }

type 'a read = Value of 'a | Missing | Corrupt

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir ~key =
  let sdir = Filename.concat dir key in
  mkdir_p sdir;
  { sdir }

let dir t = t.sdir

let block_path t index = Filename.concat t.sdir (Printf.sprintf "shard-%04d.blk" index)
let snap_path t slot = Filename.concat t.sdir (Printf.sprintf "memo-%d.snap" slot)
let obs_path t slot = Filename.concat t.sdir (Printf.sprintf "obs-%d.snap" slot)

(* Killed writers leave only their temp file behind; the rename is the
   commit point, so a reader never sees a partially written artifact
   under its final name. *)
let atomic_write path content =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  if not (Sys.file_exists path) then None
  else
    Some
      (let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let block_tag = "chshard1"
let snap_tag = "chsnap1"
let obs_tag = "chobs1"

let write_block t ~index verdicts =
  let payload =
    String.init (Array.length verdicts) (fun i ->
        if verdicts.(i) then '1' else '0')
  in
  let header =
    Printf.sprintf "%s %d %d %s\n" block_tag index (Array.length verdicts)
      (Digest.to_hex (Digest.string payload))
  in
  atomic_write (block_path t index) (header ^ payload ^ "\n")

(* Any deviation — bad tag, short file, index or length mismatch, digest
   mismatch, stray bytes after the payload — is [Corrupt]: the caller
   recomputes the shard, it never merges suspect bytes. *)
let parse_block ~index body =
  match String.index_opt body '\n' with
  | None -> Corrupt
  | Some nl -> (
      match String.split_on_char ' ' (String.sub body 0 nl) with
      | [ tag; idx; count; digest ] -> (
          match (int_of_string_opt idx, int_of_string_opt count) with
          | Some idx, Some count
            when tag = block_tag && idx = index && count >= 0
                 && String.length body = nl + 1 + count + 1
                 && body.[String.length body - 1] = '\n' ->
              let payload = String.sub body (nl + 1) count in
              if Digest.to_hex (Digest.string payload) <> digest then Corrupt
              else begin
                let ok = ref true in
                let verdicts =
                  Array.init count (fun i ->
                      match payload.[i] with
                      | '1' -> true
                      | '0' -> false
                      | _ ->
                          ok := false;
                          false)
                in
                if !ok then Value verdicts else Corrupt
              end
          | _ -> Corrupt)
      | _ -> Corrupt)

let read_block t ~index =
  match read_file (block_path t index) with
  | None -> Missing
  | Some body -> parse_block ~index body

(* memo and obs snapshots share one checksummed wrapper; only the tag
   and filename differ *)
let write_tagged tag path payload =
  let header =
    Printf.sprintf "%s %d %s\n" tag (String.length payload)
      (Digest.to_hex (Digest.string payload))
  in
  atomic_write path (header ^ payload)

let read_tagged tag path =
  match read_file path with
  | None -> Missing
  | Some body -> (
      match String.index_opt body '\n' with
      | None -> Corrupt
      | Some nl -> (
          match String.split_on_char ' ' (String.sub body 0 nl) with
          | [ t; len; digest ] -> (
              match int_of_string_opt len with
              | Some len
                when t = tag && len >= 0 && String.length body = nl + 1 + len
                ->
                  let payload = String.sub body (nl + 1) len in
                  if Digest.to_hex (Digest.string payload) = digest then
                    Value payload
                  else Corrupt
              | _ -> Corrupt)
          | _ -> Corrupt))

(* [<prefix><slot>.snap] filenames whose slot round-trips exactly *)
let slots_matching t ~prefix =
  Sys.readdir t.sdir |> Array.to_list
  |> List.filter_map (fun f ->
         let plen = String.length prefix and flen = String.length f in
         if flen > plen + 5 && String.sub f 0 plen = prefix then
           match
             int_of_string_opt (String.sub f plen (flen - plen - 5))
           with
           | Some slot when f = Printf.sprintf "%s%d.snap" prefix slot ->
               Some slot
           | _ -> None
         else None)
  |> List.sort compare

let write_snapshot t ~slot snap = write_tagged snap_tag (snap_path t slot) snap
let read_snapshot t ~slot = read_tagged snap_tag (snap_path t slot)
let snapshot_slots t = slots_matching t ~prefix:"memo-"
let write_obs t ~slot snap = write_tagged obs_tag (obs_path t slot) snap
let read_obs t ~slot = read_tagged obs_tag (obs_path t slot)
let obs_slots t = slots_matching t ~prefix:"obs-"

let remove_obs t ~slot = try Sys.remove (obs_path t slot) with Sys_error _ -> ()
