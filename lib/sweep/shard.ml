open Ch_cc
module Framework = Ch_core.Framework

type mode = Exhaustive | Sampled of { seed : int; samples : int }

(* bits 0-24 lo, bits 25-49 hi, bits 50-62 index *)
type t = int

(* 25 + 25 + 12 = 62 bits: the packed value stays a non-negative OCaml
   immediate (63-bit ints have 62 magnitude bits) *)
let lo_bits = 25
let index_bits = 12
let max_pairs = (1 lsl lo_bits) - 1
let max_shards = 1 lsl index_bits

let make ~index ~lo ~hi =
  if lo < 0 || hi < lo || hi > max_pairs then
    invalid_arg "Shard.make: need 0 <= lo <= hi <= max_pairs";
  if index < 0 || index >= max_shards then
    invalid_arg "Shard.make: index out of range";
  lo lor (hi lsl lo_bits) lor (index lsl (2 * lo_bits))

let pack t = t
let lo t = t land max_pairs
let hi t = (t lsr lo_bits) land max_pairs
let index t = t lsr (2 * lo_bits)
let count t = hi t - lo t

let unpack p =
  if p < 0 || p lsr (2 * lo_bits + index_bits) <> 0 then
    invalid_arg "Shard.unpack: not a packed shard";
  (* round-trip through [make] re-validates the field invariants *)
  make ~index:(index p) ~lo:(lo p) ~hi:(hi p)

let total fam mode =
  let t =
    match mode with
    | Exhaustive ->
        if fam.Framework.input_bits > 10 then
          invalid_arg "Shard.total: K > 10";
        let n = 1 lsl fam.Framework.input_bits in
        n * n
    | Sampled { samples; _ } ->
        if samples < 0 then invalid_arg "Shard.total: negative samples";
        samples + 4
  in
  if t > max_pairs then invalid_arg "Shard.total: pair space too large";
  t

let partition ~total ~shards =
  if total < 0 || total > max_pairs then
    invalid_arg "Shard.partition: need 0 <= total <= max_pairs";
  if shards < 1 || shards > max_shards then
    invalid_arg "Shard.partition: need 1 <= shards <= max_shards";
  Array.init shards (fun i ->
      make ~index:i ~lo:(i * total / shards) ~hi:((i + 1) * total / shards))

let generator fam mode =
  match mode with
  | Exhaustive ->
      let inputs = Array.of_list (Bits.all fam.Framework.input_bits) in
      let n = Array.length inputs in
      fun p -> (inputs.(p / n), inputs.(p mod n))
  | Sampled { seed; _ } -> fun i -> Framework.random_pair_at fam ~seed i
