open Ch_cc
module Framework = Ch_core.Framework

(** Packed shard descriptors over a family's input-pair space.

    A sweep enumerates pair indices [0 .. total): row-major (x, y) pairs
    in {!Bits.all} order for an exhaustive sweep, {!Framework.random_pair_at}
    sample indices for a sampled one.  A {e shard} is a contiguous
    half-open index range [\[lo, hi)] plus its position in the
    partition, packed into one immediate [int] (the fhk packed-subset
    idiom, SNIPPETS §2): descriptors cross [Marshal]/process boundaries
    as plain integers, land in store filenames as small decimals, and a
    worker process can be handed its whole slice in an argv string.

    Layout (62 magnitude bits of an OCaml int, so the packed value is
    always a non-negative immediate): bits 0–24 [lo], bits 25–49 [hi],
    bits 50–61 the shard index — hence {!max_pairs} = 2^25 − 1 indices
    per sweep and {!max_shards} = 2^12 shards per plan. *)

type mode =
  | Exhaustive  (** all 2^K × 2^K pairs, row-major — {!Framework.exhaustive_verdicts} order *)
  | Sampled of { seed : int; samples : int }
      (** corner pairs 0–3 then [samples] seeded draws —
          {!Framework.sampled_verdicts} order *)

type t

val max_pairs : int
val max_shards : int

val total : Framework.t -> mode -> int
(** Number of pair indices the mode spans: [2^2K] exhaustive (K ≤ 10, as
    {!Framework.exhaustive_verdicts}), [samples + 4] sampled.
    @raise Invalid_argument when the space exceeds {!max_pairs}. *)

val partition : total:int -> shards:int -> t array
(** [shards] contiguous ranges covering [\[0, total)] exactly, in index
    order, sizes differing by at most one (the same arithmetic for every
    caller, so a resumed run always re-derives the original shard
    boundaries).  Shards may be empty when [shards > total].
    @raise Invalid_argument outside [1 <= shards <= max_shards] or
    [0 <= total <= max_pairs]. *)

val make : index:int -> lo:int -> hi:int -> t
(** @raise Invalid_argument unless
    [0 <= lo <= hi <= max_pairs] and [0 <= index < max_shards]. *)

val pack : t -> int
val unpack : int -> t
(** Inverse of {!pack}.  @raise Invalid_argument on a bit pattern no
    {!make} produces (e.g. [lo > hi]) — a corrupted descriptor fails
    here, not downstream. *)

val index : t -> int
val lo : t -> int
val hi : t -> int
val count : t -> int

val generator : Framework.t -> mode -> int -> Bits.t * Bits.t
(** [generator fam mode] is the pair at each index — partially apply it
    once per worker: the exhaustive input table is built at that point,
    each per-index call is then a pure lookup (exhaustive) or seeded
    draw (sampled), so any shard regenerates its slice independently. *)
