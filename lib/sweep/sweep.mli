module Framework = Ch_core.Framework
module Pool = Ch_core.Pool

(** Sharded, resumable verdict sweeps.

    A sweep partitions a family's pair space into {!Shard} ranges, fans
    them out over the {!Pool} domains (and optionally over forked worker
    processes), and merges the per-shard verdict blocks in shard order —
    so the merged stream is bit-identical to
    {!Framework.exhaustive_verdicts} / {!Framework.sampled_verdicts} for
    any worker count, any schedule, and any resume point.  With a store
    directory, finished shards and the solver memo tables persist across
    runs: an interrupted sweep resumes by loading every valid block and
    computing only the rest, and a corrupt block (checksum failure) is
    reported and recomputed, never merged.

    {b Telemetry:} the parent bumps [sweep.shards.completed] (computed
    this run), [sweep.shards.resumed] (loaded from the store),
    [sweep.shards.recomputed] (computed where a corrupt artifact sat)
    and [sweep.store.corrupt] (corrupt artifacts detected) exactly once
    per run, so the counters are schedule- and worker-independent.
    Forked workers do not lose their telemetry either: each worker
    resets the state it inherited from the fork, and writes an
    {!Ch_obs.Obs.Snapshot} of its own counters, histograms and span tree
    into the store before [_exit]; the parent absorbs every worker
    snapshot right after [waitpid] and removes it (a resume must not
    re-absorb finished work).  Coordinator totals under [procs > 1] are
    therefore bit-identical to a single-process run of the same plan. *)

type outcome = {
  verdicts : bool array;  (** the merged stream, one cell per pair index *)
  failures : int;  (** pairs where the verdict differs from f(x,y) *)
  shards_total : int;
  shards_completed : int;
  shards_resumed : int;
  shards_recomputed : int;  (** subset of [shards_completed] *)
  artifacts_corrupt : int;  (** corrupt blocks + corrupt memo snapshots *)
  tables_restored : int;  (** memo tables merged in from store snapshots *)
}

exception Interrupted of int
(** Raised by a faulted run after the batch drains: the payload is the
    number of shards this run computed (and, with a store, persisted)
    before stopping.  Resume by re-running against the same store. *)

val store_key : Framework.t -> mode:Shard.mode -> shards:int -> string
(** The store sub-directory for one plan:
    [<core structural hash>-<digest of (name, params, K, mode, total,
    shards)>].  Content-addressed on the all-zeros core
    ({!Ch_graph.Props.structural_hash} — by Definition 1.1 the core is
    the same for every pair) plus every parameter that shapes the
    stream, so a resumed run either finds artifacts of the identical
    plan or a fresh directory, never a near-miss. *)

val run :
  ?pool:Pool.t ->
  ?procs:int ->
  ?store_dir:string ->
  ?fault_after:int ->
  ?should_stop:(unit -> bool) ->
  Framework.t ->
  mode:Shard.mode ->
  shards:int ->
  outcome
(** Run (or resume) a sweep cut into [shards] shards.

    [store_dir] is the store root; without it the sweep is scratch-only
    (nothing persisted, nothing resumed).  [procs > 1] forks that many
    worker processes, each computing an interleaved slice of the pending
    shards sequentially and exiting without running [at_exit] (the
    inherited domain pool belongs to the parent); it requires a store,
    which is how the workers hand their blocks back.  Shards a crashed
    worker never wrote are recomputed by the parent, so a sweep
    completes as long as the parent survives.  The OCaml 5 runtime
    forbids [Unix.fork] once other domains have been created, so a
    multi-process sweep must come before any multi-domain pool use in
    its process; [run] itself only touches a pool on the [procs = 1]
    path.

    [fault_after:s] is the crash-injection hook: the run stops once [s]
    shards have been computed this run — in-flight shards still finish
    and persist, pending ones are skipped — and raises {!Interrupted}.
    Under [procs > 1] each worker stops after [s] shards and the parent
    skips its recompute fallback, simulating killed workers.

    [should_stop] is the cooperative-interrupt hook (the CLI points it
    at its SIGINT/SIGTERM flag): polled before each shard on the
    single-process path and before each parent-side recompute, it trips
    the same stop mechanism as [fault_after] — in-flight shards finish
    and persist, the run raises {!Interrupted}, and a rerun against the
    same store resumes where the signal landed.

    @raise Invalid_argument on [procs < 1], [procs > 1] without
    [store_dir], or a plan outside the {!Shard} limits. *)

val oracle : ?pool:Pool.t -> Framework.t -> mode:Shard.mode -> bool array
(** The single-process from-scratch stream the sweep must reproduce:
    {!Framework.exhaustive_verdicts} or {!Framework.sampled_verdicts}. *)

val digest : bool array -> string
(** MD5 hex of the stream (as its ['0']/['1'] rendering) — what the CLI
    prints and the resume smoke diffs. *)
