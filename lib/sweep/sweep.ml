open Ch_cc
module Framework = Ch_core.Framework
module Pool = Ch_core.Pool
module Obs = Ch_obs.Obs
module Cache = Ch_solvers.Cache
module Props = Ch_graph.Props

(* Bumped once per run by the parent — never by workers — so the totals
   are independent of the schedule and the worker count. *)
let c_completed = Obs.counter "sweep.shards.completed"
let c_resumed = Obs.counter "sweep.shards.resumed"
let c_recomputed = Obs.counter "sweep.shards.recomputed"
let c_corrupt = Obs.counter "sweep.store.corrupt"
let sp_shard = Obs.span "sweep_shard"

type outcome = {
  verdicts : bool array;
  failures : int;
  shards_total : int;
  shards_completed : int;
  shards_resumed : int;
  shards_recomputed : int;
  artifacts_corrupt : int;
  tables_restored : int;
}

exception Interrupted of int

let store_key fam ~mode ~shards =
  let zeros = Bits.zeros fam.Framework.input_bits in
  let core = Framework.graph_of (fam.Framework.build zeros zeros) in
  let mode_tag =
    match mode with
    | Shard.Exhaustive -> "x"
    | Shard.Sampled { seed; samples } -> Printf.sprintf "s:%d:%d" seed samples
  in
  let desc =
    Printf.sprintf "%s|%s|k=%d|%s|total=%d|shards=%d" fam.Framework.name
      (String.concat ","
         (List.map
            (fun (k, v) -> k ^ "=" ^ string_of_int v)
            fam.Framework.params))
      fam.Framework.input_bits mode_tag (Shard.total fam mode) shards
  in
  Printf.sprintf "%08x-%s"
    (Props.structural_hash core land 0xffffffff)
    (String.sub (Digest.to_hex (Digest.string desc)) 0 12)

let compute_shard gen fam s =
  Obs.with_span sp_shard (fun () ->
      Array.init (Shard.count s) (fun j ->
          let x, y = gen (Shard.lo s + j) in
          Framework.verdict fam x y))

(* A worker process: the interleaved slice [pos mod procs = c] of the
   pending shards, computed sequentially (the inherited pool's domains
   live in the parent) and handed back through the store.  [Unix._exit]
   skips [at_exit] — the parent owns the pool shutdown hooks — and
   skips channel flushing, so a worker never re-emits inherited buffered
   output. *)
let child_main st gen fam plan pending ~procs ~fault_after c =
  (match
     try
       (* The fork copied the parent's accumulated telemetry; drop it so
          the parting obs snapshot holds only this worker's own work
          (the parent still reports its copy), but keep the parent's
          open-span path so worker spans merge at the same tree
          position. *)
       let obs_ctx = Obs.current_ctx () in
       if Obs.enabled () then Obs.reset ();
       Obs.with_ctx obs_ctx (fun () ->
           let computed = ref 0 in
           List.iteri
             (fun pos i ->
               if
                 pos mod procs = c
                 &&
                 match fault_after with Some f -> !computed < f | None -> true
               then begin
                 Store.write_block st
                   ~index:(Shard.index plan.(i))
                   (compute_shard gen fam plan.(i));
                 incr computed
               end)
             pending;
           (* a faulted worker simulates a kill: no parting snapshots *)
           if fault_after = None then begin
             Store.write_snapshot st ~slot:(c + 1) (Cache.snapshot ());
             if Obs.enabled () then
               Store.write_obs st ~slot:(c + 1) (Obs.Snapshot.capture ())
           end;
           0)
     with _ -> 2
   with
  | rc -> Unix._exit rc)

let run ?pool ?(procs = 1) ?store_dir ?fault_after
    ?(should_stop = fun () -> false) fam ~mode ~shards =
  if procs < 1 then invalid_arg "Sweep.run: procs must be >= 1";
  if procs > 1 && store_dir = None then
    invalid_arg "Sweep.run: multi-process sweeps need a store";
  (* Resolved only on the single-process path: Unix.fork is illegal once
     other domains run, so the multi-process path must not be the one to
     spin up the default pool. *)
  let pool () = match pool with Some p -> p | None -> Pool.default () in
  let total = Shard.total fam mode in
  let plan = Shard.partition ~total ~shards in
  let nsh = Array.length plan in
  let gen = Shard.generator fam mode in
  let blocks : bool array option array = Array.make nsh None in
  let was_corrupt = Array.make nsh false in
  let computed = Array.make nsh false in
  let resumed = ref 0 and corrupt = ref 0 and restored = ref 0 in
  let store =
    Option.map
      (fun dir -> Store.open_ ~dir ~key:(store_key fam ~mode ~shards))
      store_dir
  in
  (* Resume pass: merge stored memo snapshots, load every valid block. *)
  (match store with
  | None -> ()
  | Some st ->
      List.iter
        (fun slot ->
          match Store.read_snapshot st ~slot with
          | Store.Value snap -> (
              try restored := !restored + Cache.restore snap
              with Failure _ -> incr corrupt)
          | Store.Missing -> ()
          | Store.Corrupt -> incr corrupt)
        (Store.snapshot_slots st);
      Array.iteri
        (fun i s ->
          match Store.read_block st ~index:(Shard.index s) with
          | Store.Value v when Array.length v = Shard.count s ->
              blocks.(i) <- Some v;
              incr resumed
          | Store.Value _ | Store.Corrupt ->
              was_corrupt.(i) <- true;
              incr corrupt
          | Store.Missing -> ())
        plan);
  let pending =
    List.filter (fun i -> Option.is_none blocks.(i)) (List.init nsh Fun.id)
  in
  (* Compute pass. *)
  (if procs = 1 then begin
     (* Fault injection must not abort the pool batch: [Pool.run] drains
        every task even when one raises, so a raising task would still
        let the remaining shards compute.  Instead the fault trips an
        atomic flag and later tasks skip — in-flight shards finish and
        persist, exactly like workers outliving a coordinator. *)
     let interrupted = Atomic.make (fault_after = Some 0) in
     let ncomputed = Atomic.make 0 in
     Pool.run (pool ())
       (List.map
          (fun i _task ->
            (* [should_stop] (the CLI's signal flag) trips the same
               atomic as fault injection: in-flight shards finish and
               persist, pending ones are skipped, the run raises
               [Interrupted] — a SIGTERM behaves exactly like
               --fault-after at the moment it lands. *)
            if (not (Atomic.get interrupted)) && should_stop () then
              Atomic.set interrupted true;
            if not (Atomic.get interrupted) then begin
              let v = compute_shard gen fam plan.(i) in
              blocks.(i) <- Some v;
              computed.(i) <- true;
              (match store with
              | Some st -> Store.write_block st ~index:(Shard.index plan.(i)) v
              | None -> ());
              let n = 1 + Atomic.fetch_and_add ncomputed 1 in
              match fault_after with
              | Some f when n >= f -> Atomic.set interrupted true
              | _ -> ()
            end)
          pending)
   end
   else begin
     let st = Option.get store in
     let pending_arr = Array.of_list pending in
     let pids =
       List.init procs (fun c ->
           match Unix.fork () with
           | 0 -> child_main st gen fam plan pending ~procs ~fault_after c
           | pid -> pid)
     in
     List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
     (* Merge the workers' parting obs snapshots into this process, then
        remove them: the shards they cover are in the store now, so a
        later resume must not re-absorb the same work.  A snapshot that
        fails to parse is dropped — telemetry is best-effort, verdict
        blocks have their own integrity path. *)
     List.iter
       (fun slot ->
         (match Store.read_obs st ~slot with
         | Store.Value s -> ( try Obs.Snapshot.absorb s with Failure _ -> ())
         | Store.Missing | Store.Corrupt -> ());
         Store.remove_obs st ~slot)
       (Store.obs_slots st);
     (* Collect what the workers delivered, then recompute anything a
        crashed worker never wrote — unless this run is itself the
        faulted one, where missing shards are the point. *)
     Array.iter
       (fun i ->
         match Store.read_block st ~index:(Shard.index plan.(i)) with
         | Store.Value v when Array.length v = Shard.count plan.(i) ->
             blocks.(i) <- Some v;
             computed.(i) <- true
         | _ -> ())
       pending_arr;
     if fault_after = None then
       (* the parent's recompute fallback honors [should_stop] too: a
          signal between shards leaves the rest for the next resume *)
       Array.iter
         (fun i ->
           if Option.is_none blocks.(i) && not (should_stop ()) then begin
             let v = compute_shard gen fam plan.(i) in
             Store.write_block st ~index:(Shard.index plan.(i)) v;
             blocks.(i) <- Some v;
             computed.(i) <- true
           end)
         pending_arr
   end);
  let ncompleted = Array.fold_left (fun a c -> if c then a + 1 else a) 0 computed in
  let nrecomputed =
    let n = ref 0 in
    Array.iteri (fun i c -> if c && was_corrupt.(i) then incr n) computed;
    !n
  in
  Obs.incr c_completed ncompleted;
  Obs.incr c_resumed !resumed;
  Obs.incr c_recomputed nrecomputed;
  Obs.incr c_corrupt !corrupt;
  if Array.exists Option.is_none blocks then raise (Interrupted ncompleted);
  (match store with
  | Some st when procs = 1 && ncompleted > 0 ->
      Store.write_snapshot st ~slot:0 (Cache.snapshot ())
  | _ -> ());
  let verdicts = Array.make total false in
  Array.iteri
    (fun i s ->
      match blocks.(i) with
      | Some v -> Array.blit v 0 verdicts (Shard.lo s) (Array.length v)
      | None -> assert false)
    plan;
  let failures = ref 0 in
  for p = 0 to total - 1 do
    let x, y = gen p in
    if verdicts.(p) <> fam.Framework.f x y then incr failures
  done;
  {
    verdicts;
    failures = !failures;
    shards_total = nsh;
    shards_completed = ncompleted;
    shards_resumed = !resumed;
    shards_recomputed = nrecomputed;
    artifacts_corrupt = !corrupt;
    tables_restored = !restored;
  }

let oracle ?pool fam ~mode =
  match mode with
  | Shard.Exhaustive -> Framework.exhaustive_verdicts ?pool fam
  | Shard.Sampled { seed; samples } ->
      Framework.sampled_verdicts ?pool ~seed ~samples fam

let digest verdicts =
  Digest.to_hex
    (Digest.string
       (String.init (Array.length verdicts) (fun i ->
            if verdicts.(i) then '1' else '0')))
