open Ch_graph
open Ch_cc

(** The Figure 3 / Theorem 2.8 family: deciding whether a weighted graph
    has a cut of weight M requires Ω(n²/log² n) rounds.

    The budget trick: every row vertex a₁^i carries weight-1 edges to the
    a₂^j with x_{i,j} = 0 plus an edge to N_A of weight Σ_j x_{i,j}, so the
    weight from a₁^i into A₂ ∪ {N_A} is always exactly k.  A maximum cut
    is forced (by the k⁴-weight edges) to place N_A, N_B opposite CA, CB
    and to pick consistent bit-gadget sides; it reaches
    M = k⁴(8·log k + 4) + k³(12·log k − 4) + 4k² + 4k iff some index pair
    has x_{i,j} = y_{i,j} = 1. *)

module Ix : sig
  val n : k:int -> int
  (** 4k + 8·log k + 5. *)

  val row : k:int -> Mds_lb.set -> int -> int

  val f : k:int -> Mds_lb.set -> int -> int

  val t : k:int -> Mds_lb.set -> int -> int

  val ca : k:int -> int

  val ca_bar : k:int -> int

  val cb : k:int -> int

  val na : k:int -> int

  val nb : k:int -> int
end

val target_weight : k:int -> int
(** M. *)

val build : k:int -> Bits.t -> Bits.t -> Graph.t

val core_graph : k:int -> Graph.t
(** The fixed part: the k⁴ skeleton, 4-cycles and row attachments. *)

val input_edges : k:int -> Bits.t -> Bits.t -> (int * int * int) list
(** The input-dependent weighted edges [(u, v, w)]: weight-1 complement
    edges plus the 4k N-budget edges (weights may be 0). *)

val volatile : k:int -> int list
(** The 4k + 2 vertices input edges may touch: the rows and N_A, N_B. *)

type core

val build_core : k:int -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Graph.t
(** In-place patch to G_{x,y}; the result aliases the core. *)

val side : k:int -> bool array

val family : k:int -> Ch_core.Framework.t

val incremental : k:int -> Ch_core.Framework.incremental
(** Incremental descriptor backed by the conditioned max-cut table
    ({!Ch_solvers.Cache.maxcut_prepare} over {!volatile}): one full
    enumeration at prepare time, then 2^(4k+2) work per pair.  Like the
    from-scratch exact solver it is limited to n ≤ 30, i.e. k = 2 (the
    prepare raises instead of the solve). *)

val specs : Ch_core.Registry.spec list
(** Registry entry ["maxcut"]: incremental + Theorem 1.1 reduction. *)
