open Ch_graph
open Ch_cc
open Ch_codes
open Ch_core

type params = { k : int; ell : int; t : int; q : int }

let make_params ?ell ~k () =
  let t = Bitgadget.check_k "Maxis_approx_lb" k in
  let ell = match ell with Some e -> e | None -> max 2 (t * t) in
  let q = Gf.next_prime (ell + t + 1) in
  { k; ell; t; q }

let yes_weight p = (8 * p.ell) + (4 * p.t)

let no_weight p = (7 * p.ell) + (4 * p.t)

let code p = Reed_solomon.create ~len:(p.ell + p.t) ~dim:p.t ~q:p.q

let codewords p = Reed_solomon.injection (code p) p.k

(* ------------------------------------------------------------------ *)
(* Weighted construction (Theorem 4.3)                                *)
(* ------------------------------------------------------------------ *)

(* layout: rows 0..4k-1 (weight ℓ); then per set S a block of (ℓ+t)·q
   gadget vertices (weight 1): (S, j, α) *)
module WIx = struct
  let row p s i =
    assert (i >= 0 && i < p.k);
    (Mds_lb.set_index s * p.k) + i

  let gadget p s j alpha =
    (4 * p.k)
    + (Mds_lb.set_index s * (p.ell + p.t) * p.q)
    + (j * p.q) + alpha

  let n p = (4 * p.k) + (4 * (p.ell + p.t) * p.q)
end

let add_common_structure p g ~row_vertices ~gadget =
  let words = codewords p in
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  (* gadget row cliques *)
  List.iter
    (fun s ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = a + 1 to p.q - 1 do
            Graph.add_edge g (gadget s j a) (gadget s j b)
          done
        done
      done)
    sets;
  (* cross edges minus a perfect matching *)
  List.iter
    (fun (sa, sb) ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = 0 to p.q - 1 do
            if a <> b then Graph.add_edge g (gadget sa j a) (gadget sb j b)
          done
        done
      done)
    [ (Mds_lb.A1, Mds_lb.B1); (Mds_lb.A2, Mds_lb.B2) ];
  (* row vertices conflict with the gadget vertices contradicting their
     codeword; row_vertices lists the (set, index, vertex ids) present *)
  List.iter
    (fun (s, i, vertices) ->
      let w = words.(i) in
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          if a <> w.(j) then
            List.iter (fun v -> Graph.add_edge g v (gadget s j a)) vertices
        done
      done)
    row_vertices

(* everything but the input-dependent row-row edges *)
let weighted_core_graph p =
  let g = Graph.create (WIx.n p) in
  for v = 0 to (4 * p.k) - 1 do
    Graph.set_vweight g v p.ell
  done;
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  (* row cliques *)
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          Graph.add_edge g (WIx.row p s i) (WIx.row p s j)
        done
      done)
    sets;
  let row_vertices =
    List.concat_map
      (fun s -> List.init p.k (fun i -> (s, i, [ WIx.row p s i ])))
      sets
  in
  add_common_structure p g ~row_vertices ~gadget:(WIx.gadget p);
  g

(* inputs: edge present iff the bit is 0 *)
let weighted_input_edges p x y =
  if Bits.length x <> p.k * p.k || Bits.length y <> p.k * p.k then
    invalid_arg "Maxis_approx_lb: inputs must have k^2 bits";
  let acc = ref [] in
  for i = 0 to p.k - 1 do
    for j = 0 to p.k - 1 do
      if not (Bits.get_pair ~k:p.k x i j) then
        acc := (WIx.row p Mds_lb.A1 i, WIx.row p Mds_lb.A2 j) :: !acc;
      if not (Bits.get_pair ~k:p.k y i j) then
        acc := (WIx.row p Mds_lb.B1 i, WIx.row p Mds_lb.B2 j) :: !acc
    done
  done;
  List.rev !acc

let build_weighted p x y =
  let g = weighted_core_graph p in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (weighted_input_edges p x y);
  g

let weighted_side p =
  let side = Array.make (WIx.n p) false in
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        side.(WIx.row p s i) <- true
      done;
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          side.(WIx.gadget p s j a) <- true
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side

let weighted_family p =
  let target = yes_weight p in
  {
    Framework.name = "maxis-7/8-approx weighted (Thm 4.3)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k * p.k;
    nvertices = WIx.n p;
    side = weighted_side p;
    build = (fun x y -> Framework.Undirected (build_weighted p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> fst (Ch_solvers.Mis.max_weight_set g) >= target
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }

(* The inputs only add edges among the 4k row vertices and every row of a
   set is already a core clique, so the conditioned MWIS table
   (Cache.mwis) has at most (k+1)^4 entries. *)

type w_core = {
  wp : params;
  wg : Graph.t;
  mutable wapplied : (Bits.t * Bits.t) option;
}

let build_weighted_core p = { wp = p; wg = weighted_core_graph p; wapplied = None }

let apply_weighted_inputs c x y =
  let p = c.wp in
  (match c.wapplied with
  | Some (px, py) ->
      List.iter
        (fun (u, v) -> Graph.remove_edge c.wg u v)
        (weighted_input_edges p px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.wg u v) (weighted_input_edges p x y);
  c.wapplied <- Some (x, y);
  c.wg

let weighted_incremental p =
  let target = yes_weight p in
  let volatile = List.init (4 * p.k) Fun.id in
  {
    Framework.scratch = weighted_family p;
    prepare =
      (fun () ->
        let c = build_weighted_core p in
        let mw = Ch_solvers.Cache.mwis_prepare c.wg ~volatile in
        {
          Framework.pbuild =
            (fun x y -> Framework.Undirected (apply_weighted_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.mwis_weight mw
                ~extra:(weighted_input_edges p x y)
              >= target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.mwis_stats mw in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* ------------------------------------------------------------------ *)
(* Unweighted construction (Theorem 4.1): rows become ℓ-vertex batches *)
(* ------------------------------------------------------------------ *)

module UIx = struct
  let batch p s i xi =
    assert (xi >= 0 && xi < p.ell);
    ((Mds_lb.set_index s * p.k) + i) * p.ell |> fun base -> base + xi

  let gadget p s j alpha =
    (4 * p.k * p.ell)
    + (Mds_lb.set_index s * (p.ell + p.t) * p.q)
    + (j * p.q) + alpha

  let n p = (4 * p.k * p.ell) + (4 * (p.ell + p.t) * p.q)
end

let ubatch p s i = List.init p.ell (fun xi -> UIx.batch p s i xi)

let unweighted_core_graph p =
  let g = Graph.create (UIx.n p) in
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  let connect_batches b1 b2 =
    List.iter (fun u -> List.iter (fun v -> Graph.add_edge g u v) b2) b1
  in
  (* row "cliques": complete multipartite between batches of a set *)
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          connect_batches (ubatch p s i) (ubatch p s j)
        done
      done)
    sets;
  let row_vertices =
    List.concat_map (fun s -> List.init p.k (fun i -> (s, i, ubatch p s i))) sets
  in
  add_common_structure p g ~row_vertices ~gadget:(UIx.gadget p);
  g

let unweighted_input_edges p x y =
  if Bits.length x <> p.k * p.k || Bits.length y <> p.k * p.k then
    invalid_arg "Maxis_approx_lb: inputs must have k^2 bits";
  let acc = ref [] in
  let cross b1 b2 =
    List.iter (fun u -> List.iter (fun v -> acc := (u, v) :: !acc) b2) b1
  in
  for i = 0 to p.k - 1 do
    for j = 0 to p.k - 1 do
      if not (Bits.get_pair ~k:p.k x i j) then
        cross (ubatch p Mds_lb.A1 i) (ubatch p Mds_lb.A2 j);
      if not (Bits.get_pair ~k:p.k y i j) then
        cross (ubatch p Mds_lb.B1 i) (ubatch p Mds_lb.B2 j)
    done
  done;
  List.rev !acc

let build_unweighted p x y =
  let g = unweighted_core_graph p in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (unweighted_input_edges p x y);
  g

let unweighted_side p =
  let side = Array.make (UIx.n p) false in
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for xi = 0 to p.ell - 1 do
          side.(UIx.batch p s i xi) <- true
        done
      done;
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          side.(UIx.gadget p s j a) <- true
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side

let unweighted_family p =
  let target = yes_weight p in
  {
    Framework.name = "maxis-7/8-approx unweighted (Thm 4.1)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k * p.k;
    nvertices = UIx.n p;
    side = unweighted_side p;
    build = (fun x y -> Framework.Undirected (build_unweighted p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.alpha g >= target
        | _ -> invalid_arg "unweighted: expected undirected");
    f = Commfn.intersecting;
  }

(* Volatile vertices: all 4kℓ batch vertices.  A core-independent subset
   picks vertices of at most one batch per set (batches of a set are
   pairwise fully connected, batches themselves are edge-free), so the
   conditioned table has (1 + k(2^ℓ - 1))^4 entries. *)

type u_core = {
  up : params;
  ug : Graph.t;
  mutable uapplied : (Bits.t * Bits.t) option;
}

let build_unweighted_core p =
  { up = p; ug = unweighted_core_graph p; uapplied = None }

let apply_unweighted_inputs c x y =
  let p = c.up in
  (match c.uapplied with
  | Some (px, py) ->
      List.iter
        (fun (u, v) -> Graph.remove_edge c.ug u v)
        (unweighted_input_edges p px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.ug u v) (unweighted_input_edges p x y);
  c.uapplied <- Some (x, y);
  c.ug

let unweighted_incremental p =
  let target = yes_weight p in
  let volatile = List.init (4 * p.k * p.ell) Fun.id in
  {
    Framework.scratch = unweighted_family p;
    prepare =
      (fun () ->
        let c = build_unweighted_core p in
        let mc = Ch_solvers.Cache.mis_prepare c.ug ~volatile in
        {
          Framework.pbuild =
            (fun x y -> Framework.Undirected (apply_unweighted_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.mis_alpha mc
                ~extra:(unweighted_input_edges p x y)
              >= target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.mis_stats mc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* ------------------------------------------------------------------ *)
(* Linear variant (Theorem 4.2): only A₂/B₂ plus batches v_A, v_B      *)
(* ------------------------------------------------------------------ *)

let linear_yes_size p = (6 * p.ell) + (2 * p.t)

(* layout: batch(v_A): 0..ℓ-1; batch(v_B): ℓ..2ℓ-1; then A₂ batches
   (k·ℓ), B₂ batches (k·ℓ); then gadget blocks for A₂ and B₂ *)
module LIx = struct
  let va p xi = assert (xi < p.ell); xi

  let vb p xi = assert (xi < p.ell); p.ell + xi

  let batch p side_b i xi =
    (2 * p.ell) + (((if side_b then p.k else 0) + i) * p.ell) + xi

  let gadget p side_b j alpha =
    (2 * p.ell) + (2 * p.k * p.ell)
    + ((if side_b then (p.ell + p.t) * p.q else 0) + (j * p.q) + alpha)

  let n p = (2 * p.ell) + (2 * p.k * p.ell) + (2 * (p.ell + p.t) * p.q)
end

let lbatch p side_b i = List.init p.ell (fun xi -> LIx.batch p side_b i xi)

let lva p = List.init p.ell (fun xi -> LIx.va p xi)

let lvb p = List.init p.ell (fun xi -> LIx.vb p xi)

let linear_core_graph p =
  let g = Graph.create (LIx.n p) in
  let words = codewords p in
  let batch side_b i = lbatch p side_b i in
  let connect_batches b1 b2 =
    List.iter (fun u -> List.iter (fun v -> Graph.add_edge g u v) b2) b1
  in
  (* the two remaining row sets are "cliques" of batches *)
  List.iter
    (fun side_b ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          connect_batches (batch side_b i) (batch side_b j)
        done
      done)
    [ false; true ];
  (* gadget rows, cross edges, code conflicts *)
  List.iter
    (fun side_b ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = a + 1 to p.q - 1 do
            Graph.add_edge g (LIx.gadget p side_b j a) (LIx.gadget p side_b j b)
          done
        done
      done)
    [ false; true ];
  for j = 0 to p.ell + p.t - 1 do
    for a = 0 to p.q - 1 do
      for b = 0 to p.q - 1 do
        if a <> b then
          Graph.add_edge g (LIx.gadget p false j a) (LIx.gadget p true j b)
      done
    done
  done;
  List.iter
    (fun side_b ->
      for i = 0 to p.k - 1 do
        let w = words.(i) in
        for j = 0 to p.ell + p.t - 1 do
          for a = 0 to p.q - 1 do
            if a <> w.(j) then
              List.iter
                (fun v -> Graph.add_edge g v (LIx.gadget p side_b j a))
                (batch side_b i)
          done
        done
      done)
    [ false; true ];
  g

(* inputs of length k *)
let linear_input_edges p x y =
  if Bits.length x <> p.k || Bits.length y <> p.k then
    invalid_arg "Maxis_approx_lb.linear: inputs must have k bits";
  let acc = ref [] in
  let cross b1 b2 =
    List.iter (fun u -> List.iter (fun v -> acc := (u, v) :: !acc) b2) b1
  in
  for i = 0 to p.k - 1 do
    if not (Bits.get x i) then cross (lva p) (lbatch p false i);
    if not (Bits.get y i) then cross (lvb p) (lbatch p true i)
  done;
  List.rev !acc

let build_linear p x y =
  let g = linear_core_graph p in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (linear_input_edges p x y);
  g

let linear_side p =
  let side = Array.make (LIx.n p) false in
  for xi = 0 to p.ell - 1 do
    side.(LIx.va p xi) <- true
  done;
  for i = 0 to p.k - 1 do
    for xi = 0 to p.ell - 1 do
      side.(LIx.batch p false i xi) <- true
    done
  done;
  for j = 0 to p.ell + p.t - 1 do
    for a = 0 to p.q - 1 do
      side.(LIx.gadget p false j a) <- true
    done
  done;
  side

let linear_family p =
  let target = linear_yes_size p in
  {
    Framework.name = "maxis-5/6-approx (Thm 4.2)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k;
    nvertices = LIx.n p;
    side = linear_side p;
    build = (fun x y -> Framework.Undirected (build_linear p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.alpha g >= target
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }

(* Volatile vertices: v_A, v_B and the 2kℓ batch vertices.  v_A/v_B are
   core-edge-free, each side's batches are pairwise fully connected, so
   the table has (2^ℓ (1 + k(2^ℓ - 1)))^2 entries. *)

type l_core = {
  lp : params;
  lg : Graph.t;
  mutable lapplied : (Bits.t * Bits.t) option;
}

let build_linear_core p = { lp = p; lg = linear_core_graph p; lapplied = None }

let apply_linear_inputs c x y =
  let p = c.lp in
  (match c.lapplied with
  | Some (px, py) ->
      List.iter
        (fun (u, v) -> Graph.remove_edge c.lg u v)
        (linear_input_edges p px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.lg u v) (linear_input_edges p x y);
  c.lapplied <- Some (x, y);
  c.lg

let linear_incremental p =
  let target = linear_yes_size p in
  let volatile =
    lva p @ lvb p
    @ List.concat_map
        (fun side_b -> List.concat_map (fun i -> lbatch p side_b i) (List.init p.k Fun.id))
        [ false; true ]
  in
  {
    Framework.scratch = linear_family p;
    prepare =
      (fun () ->
        let c = build_linear_core p in
        let mc = Ch_solvers.Cache.mis_prepare c.lg ~volatile in
        {
          Framework.pbuild =
            (fun x y -> Framework.Undirected (apply_linear_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.mis_alpha mc ~extra:(linear_input_edges p x y)
              >= target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.mis_stats mc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* registry scale: k is the construction k; ell/t/q follow make_params
   defaults (k = 2 gives ell = 2, matching the historical CLI scale) *)
let registry_params k = make_params ~k ()

let specs =
  [
    {
      Registry.id = "maxis-78-weighted";
      title = "MaxIS 7/8-approx (weighted)";
      paper_ref = "Thm 4.3, Fig 4";
      origin = "Maxis_approx_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> weighted_family (registry_params k));
      incremental = Some (fun k -> weighted_incremental (registry_params k));
      reduction = None;
    };
    {
      Registry.id = "maxis-78-unweighted";
      title = "MaxIS 7/8-approx (unweighted)";
      paper_ref = "Thm 4.1, Fig 4";
      origin = "Maxis_approx_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> unweighted_family (registry_params k));
      incremental = Some (fun k -> unweighted_incremental (registry_params k));
      reduction = None;
    };
    {
      Registry.id = "maxis-56";
      title = "MaxIS 5/6-approx (linear variant)";
      paper_ref = "Thm 4.2";
      origin = "Maxis_approx_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> linear_family (registry_params k));
      incremental = Some (fun k -> linear_incremental (registry_params k));
      reduction = None;
    };
  ]
