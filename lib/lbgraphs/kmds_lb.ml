open Ch_graph
open Ch_cc
open Ch_core

type params = { collection : Covering.t; k : int; alpha : int }

let make_params ?(seed = 0) ?(k = 2) ~ell ~t_count ~r () =
  if k < 2 then invalid_arg "Kmds_lb: k >= 2 required";
  let collection = Covering.construct ~seed ~ell ~t_count ~r () in
  { collection; k; alpha = r + 1 }

(* layout: a_0..a_{ℓ-1}; b_0..b_{ℓ-1}; S_0..S_{T-1}; S̄_0..S̄_{T-1};
   a; b; R; then (k-2) internal path vertices per set-element incidence
   (first the S_i–a_j paths, then the S̄_i–b_j paths) *)
module Ix = struct
  let a_elt _p j = j

  let b_elt p j = p.collection.Covering.ell + j

  let s p i = (2 * p.collection.Covering.ell) + i

  let s_bar p i = (2 * p.collection.Covering.ell) + Array.length p.collection.Covering.sets + i

  let hub_a p = (2 * p.collection.Covering.ell) + (2 * Array.length p.collection.Covering.sets)

  let hub_b p = hub_a p + 1

  let root p = hub_a p + 2

  let base_paths p = hub_a p + 3
end

let incidences p =
  (* (set vertex, element vertex, side) pairs needing a path *)
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  let acc = ref [] in
  for i = 0 to t_count - 1 do
    for j = 0 to ell - 1 do
      if Covering.mem p.collection ~set:i j then
        acc := (Ix.s p i, Ix.a_elt p j, true) :: !acc
    done
  done;
  for i = 0 to t_count - 1 do
    for j = 0 to ell - 1 do
      if not (Covering.mem p.collection ~set:i j) then
        acc := (Ix.s_bar p i, Ix.b_elt p j, false) :: !acc
    done
  done;
  List.rev !acc

let nvertices p =
  Ix.base_paths p + ((p.k - 2) * List.length (incidences p))

let yes_weight = 2

let no_weight_exceeds p = p.collection.Covering.r

let build p x y =
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Kmds_lb.build: inputs must have T bits";
  let g = Graph.create ~default_vweight:p.alpha (nvertices p) in
  Graph.set_vweight g (Ix.root p) 0;
  (* the paper gives a and b weight α; only R is free *)
  for i = 0 to t_count - 1 do
    Graph.set_vweight g (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight g (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha)
  done;
  for j = 0 to ell - 1 do
    Graph.add_edge g (Ix.a_elt p j) (Ix.b_elt p j)
  done;
  for i = 0 to t_count - 1 do
    Graph.add_edge g (Ix.hub_a p) (Ix.s p i);
    Graph.add_edge g (Ix.hub_b p) (Ix.s_bar p i)
  done;
  Graph.add_edge g (Ix.root p) (Ix.hub_a p);
  Graph.add_edge g (Ix.root p) (Ix.hub_b p);
  (* set-element incidences as paths of length k-1 *)
  let next = ref (Ix.base_paths p) in
  List.iter
    (fun (set_v, elt_v, _) ->
      if p.k = 2 then Graph.add_edge g set_v elt_v
      else begin
        let internal = List.init (p.k - 2) (fun i -> !next + i) in
        next := !next + (p.k - 2);
        let chain = (set_v :: internal) @ [ elt_v ] in
        let rec link = function
          | u :: (v :: _ as rest) ->
              Graph.add_edge g u v;
              link rest
          | _ -> ()
        in
        link chain
      end)
    (incidences p);
  g

let side p =
  let n = nvertices p in
  let side = Array.make n false in
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  for j = 0 to ell - 1 do
    side.(Ix.a_elt p j) <- true
  done;
  for i = 0 to t_count - 1 do
    side.(Ix.s p i) <- true
  done;
  side.(Ix.hub_a p) <- true;
  (* internal path vertices inherit the side of their set vertex *)
  let next = ref (Ix.base_paths p) in
  List.iter
    (fun (_, _, alice) ->
      for _ = 1 to p.k - 2 do
        side.(!next) <- alice;
        incr next
      done)
    (incidences p);
  side

let family p =
  {
    Framework.name = Printf.sprintf "%d-mds-log-approx (Thm 4.%d)" p.k (if p.k = 2 then 4 else 5);
    params =
      [
        ("ell", p.collection.Covering.ell);
        ("T", Array.length p.collection.Covering.sets);
        ("r", p.collection.Covering.r);
        ("k", p.k);
      ];
    input_bits = Array.length p.collection.Covering.sets;
    nvertices = nvertices p;
    side = side p;
    build = (fun x y -> Framework.Undirected (build p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g ->
            fst (Ch_solvers.Domset.min_weight_set ~radius:p.k g) <= yes_weight
        | _ -> invalid_arg "kmds family: undirected expected");
    f = Commfn.intersecting;
  }

let gap_holds p x y =
  let g = build p x y in
  let w = fst (Ch_solvers.Domset.min_weight_set ~radius:p.k g) in
  if Commfn.intersecting x y then w <= yes_weight else w > no_weight_exceeds p

(* The topology is fixed: inputs only move the S_i / S̄_i vertex weights
   between 1 and α.  The core is the all-zero-bits build (every set
   vertex heavy) and applying a pair overwrites exactly the 2T set
   weights — nothing to undo. *)

type core = { cp : params; cg : Ch_graph.Graph.t }

let build_core p =
  let t_count = Array.length p.collection.Covering.sets in
  { cp = p; cg = build p (Bits.zeros t_count) (Bits.zeros t_count) }

let apply_inputs c x y =
  let p = c.cp in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Kmds_lb.apply_inputs: inputs must have T bits";
  for i = 0 to t_count - 1 do
    Graph.set_vweight c.cg (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight c.cg (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha)
  done;
  c.cg

let incremental p =
  {
    Framework.scratch = family p;
    prepare =
      (fun () ->
        (* balls of the pristine core: weight changes never move them *)
        let c = build_core p in
        let dc = Ch_solvers.Cache.domset_prepare c.cg ~radius:p.k in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              let g = apply_inputs c x y in
              let balls = Ch_solvers.Cache.domset_balls dc ~extra:[] in
              Ch_solvers.Domset.exists_within ~radius:p.k ~balls g
                ~bound:yes_weight);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.domset_stats dc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* registry scale: k selects the covering-collection size; the domination
   radius is fixed per id *)
let registry_params ~radius k =
  let ell, t_count =
    if k <= 2 then (6, 6) else if k <= 4 then (8, 10) else (10, 20)
  in
  make_params ~seed:1 ~k:radius ~ell ~t_count ~r:2 ()

let specs =
  [
    {
      Registry.id = "2mds";
      title = "weighted 2-MDS log-approx";
      paper_ref = "Thm 4.4, Fig 5";
      origin = "Kmds_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> family (registry_params ~radius:2 k));
      incremental = Some (fun k -> incremental (registry_params ~radius:2 k));
      reduction = None;
    };
    {
      Registry.id = "3mds";
      title = "weighted 3-MDS log-approx";
      paper_ref = "Thm 4.5, Fig 5";
      origin = "Kmds_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> family (registry_params ~radius:3 k));
      incremental = Some (fun k -> incremental (registry_params ~radius:3 k));
      reduction = None;
    };
  ]
