open Ch_graph
open Ch_cc

(** The MaxIS/MVC bit-gadget family of Censor-Hillel–Khoury–Paz [10],
    re-derived from the description in the paper (Sections 3.2 and 4.1):
    rows A₁, A₂, B₁, B₂ are k-cliques; per-set bit gadgets F_S, T_S with
    intra-pair edges (f^h_S, t^h_S) and equality cross edges
    (f^h_{Aℓ}, t^h_{Bℓ}), (t^h_{Aℓ}, f^h_{Bℓ}); each row vertex conflicts
    with the gadget vertices contradicting its binary representation; and
    the input edge (a₁^i, a₂^j) is present iff x_{i,j} = 0 (resp. y for
    B).  Then α(G_{x,y}) = 4·log k + 4 iff DISJ(x,y) = FALSE (Claim 3.6's
    Z = n_G − 4(k−1) − 4·log k), and otherwise α = 4·log k + 3.

    This is both the Ω̃(n²) family for exact MaxIS/MVC and the input to
    the Section 3 bounded-degree pipeline. *)

module Ix : sig
  val n : k:int -> int
  (** 4k + 8·log k. *)

  val row : k:int -> Mds_lb.set -> int -> int

  val f : k:int -> Mds_lb.set -> int -> int

  val t : k:int -> Mds_lb.set -> int -> int
end

val alpha_target : k:int -> int
(** Z = 4·log k + 4. *)

val build : k:int -> Bits.t -> Bits.t -> Graph.t

val core_graph : k:int -> Graph.t
(** The fixed part: cliques, bit gadgets, conflict edges. *)

val input_edges : k:int -> Bits.t -> Bits.t -> (int * int) list
(** The complement edges: (a₁^i, a₂^j) iff x_{i,j} = 0 (resp. y / B). *)

val volatile : k:int -> int list
(** The 4k row vertices — the only endpoints input edges may touch. *)

type core

val build_core : k:int -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Graph.t
(** In-place patch to G_{x,y}; the result aliases the core. *)

val side : k:int -> bool array

val family : k:int -> Ch_core.Framework.t
(** Predicate: α(G) ≥ Z. *)

val incremental : k:int -> Ch_core.Framework.incremental
(** Incremental descriptor backed by the conditioned α table
    ({!Ch_solvers.Cache.mis_prepare} over {!volatile}): one enumeration of
    the (k+1)^4 row-independent subsets at prepare time, then a per-pair
    verdict that never rebuilds the graph or re-runs the branch and
    bound. *)

val mvc_family : k:int -> Ch_core.Framework.t
(** The complementary vertex-cover view: τ(G) ≤ n − Z. *)

val specs : Ch_core.Registry.spec list
(** Registry entries ["maxis"] (incremental + reduction) and ["mvc"]. *)
