open Ch_cc
open Ch_graph
open Ch_core

(** The multiparty bit-gadget family: set intersection decided by exact
    MDS on a construction whose two-party cut is logarithmic (2·log₂ k
    edges — one bit gadget per bit position, as in arXiv:1901.01630) and
    which registers a 4-part partition (rows+pool | gadgets, per side)
    with an input-independent multicut — the repository's first t > 2
    workload for the partitioned lockstep simulation.

    Inputs are k-bit sets: x_i wires Alice's pool vertex to row a_i, y_j
    Bob's to b_j.  γ(G_{x,y}) ≤ 2·log₂ k + 2 iff x ∩ y ≠ ∅; a zero input
    isolates its pool vertex, leaving the connected-network model (such
    pairs are filtered from simulation sweeps, and the verdict is still
    "no").  k must be a power of two, at least 2. *)

val target_size : k:int -> int
(** 2·log₂ k + 2. *)

val build : k:int -> Bits.t -> Bits.t -> Graph.t

val side : k:int -> bool array

val partition : k:int -> int array
(** The registered 4-part partition: part 0 = Alice's rows and pool,
    1 = Alice's gadgets, 2 = Bob's gadgets, 3 = Bob's rows and pool. *)

val family : k:int -> Framework.t

val incremental : k:int -> Framework.incremental
(** Prepared verification: the gadget core is patched per pair and the
    dominating-set search reuses cached radius-1 balls, as in [Mds_lb]. *)

val specs : Registry.spec list
