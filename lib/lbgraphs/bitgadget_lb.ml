open Ch_graph
open Ch_cc
open Ch_core

(* The first genuinely multiparty workload: a set-intersection family
   with a logarithmic two-party cut, built from one bit gadget per bit
   position (arXiv:1901.01630 uses the same gadget to keep cuts small).

   Layout for k a power of two, t = log₂ k:
   - k row vertices a_0..a_{k-1} (Alice) and b_0..b_{k-1} (Bob);
   - per bit position h a 6-cycle
       fA_h – tA_h – uA_h – fB_h – tB_h – uB_h – fA_h
     whose only side-crossing edges are uA_h–fB_h and uB_h–fA_h — the
     2t-edge (logarithmic) two-party cut;
   - code edges a_i – (bit h of i ? tA_h : fA_h) for every h, and
     symmetrically for b_j: a row is wired to its binary code;
   - pool vertices pA ~ { a_i : x_i = 1 } and pB ~ { b_j : y_j = 1 } —
     the only input-dependent edges, strictly inside a side.

   γ(G_{x,y}) ≤ 2t + 2 iff x ∩ y ≠ ∅: an index i in the intersection
   buys {a_i, b_i} plus the aligned gadget picks (per h both sides take
   f when bit h of i is set, both take t otherwise), which dominate the
   pools, every row (any per-h choice covers all rows except the one
   whose code is its complement — a_i and b_i themselves) and every
   6-cycle (aligned picks {f, f} or {t, t} dominate the cycle; mixed
   picks strand a u vertex).  Disjoint nonzero inputs force misaligned
   picks or undominated rows and cost ≥ 2t + 3; a zero input isolates
   its pool (the instance leaves the connected-network model, and the
   verdict stays "no"). *)

module Ix = struct
  let n ~k =
    let t = Bitgadget.check_k "Bitgadget_lb" k in
    (2 * k) + (6 * t) + 2

  let a ~k:_ i = i

  let b ~k i = k + i

  (* per side: a block of 3·log k gadget vertices, F then T then U *)
  let gadget_base ~k ~alice =
    (2 * k) + if alice then 0 else 3 * Bitgadget.log2 k

  let f ~k ~alice h = gadget_base ~k ~alice + h

  let t ~k ~alice h = gadget_base ~k ~alice + Bitgadget.log2 k + h

  let u ~k ~alice h = gadget_base ~k ~alice + (2 * Bitgadget.log2 k) + h

  let pa ~k = (2 * k) + (6 * Bitgadget.log2 k)

  let pb ~k = pa ~k + 1
end

let target_size ~k = (2 * Bitgadget.log2 k) + 2

(* the fixed core: everything but the input-dependent pool edges *)
let core_graph ~k =
  let tbits = Bitgadget.check_k "Bitgadget_lb.core_graph" k in
  let g = Graph.create (Ix.n ~k) in
  for h = 0 to tbits - 1 do
    let f_a = Ix.f ~k ~alice:true h
    and t_a = Ix.t ~k ~alice:true h
    and u_a = Ix.u ~k ~alice:true h
    and f_b = Ix.f ~k ~alice:false h
    and t_b = Ix.t ~k ~alice:false h
    and u_b = Ix.u ~k ~alice:false h in
    List.iter
      (fun (p, q) -> Graph.add_edge g p q)
      [ (f_a, t_a); (t_a, u_a); (u_a, f_b); (f_b, t_b); (t_b, u_b); (u_b, f_a) ]
  done;
  List.iter
    (fun alice ->
      for i = 0 to k - 1 do
        let row = if alice then Ix.a ~k i else Ix.b ~k i in
        for h = 0 to tbits - 1 do
          let target =
            if Bitgadget.bit i h then Ix.t ~k ~alice h else Ix.f ~k ~alice h
          in
          Graph.add_edge g row target
        done
      done)
    [ true; false ];
  g

let input_edges ~k x y =
  if Bits.length x <> k || Bits.length y <> k then
    invalid_arg "Bitgadget_lb.input_edges: inputs must have k bits";
  let acc = ref [] in
  for i = k - 1 downto 0 do
    if Bits.get y i then acc := (Ix.pb ~k, Ix.b ~k i) :: !acc
  done;
  for i = k - 1 downto 0 do
    if Bits.get x i then acc := (Ix.pa ~k, Ix.a ~k i) :: !acc
  done;
  !acc

let build ~k x y =
  let g = core_graph ~k in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (input_edges ~k x y);
  g

type core = {
  ck : int;
  cg : Graph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Bitgadget_lb.build_core" k in
  { ck = k; cg = core_graph ~k; applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter (fun (u, v) -> Graph.remove_edge c.cg u v) (input_edges ~k px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.cg u v) (input_edges ~k x y);
  c.applied <- Some (x, y);
  c.cg

let side ~k =
  let n = Ix.n ~k in
  let side = Array.make n false in
  for i = 0 to k - 1 do
    side.(Ix.a ~k i) <- true
  done;
  for h = 0 to Bitgadget.log2 k - 1 do
    side.(Ix.f ~k ~alice:true h) <- true;
    side.(Ix.t ~k ~alice:true h) <- true;
    side.(Ix.u ~k ~alice:true h) <- true
  done;
  side.(Ix.pa ~k) <- true;
  side

(* The 4-party refinement of the Alice/Bob split: rows+pool | gadgets on
   each side.  Every pool edge stays inside part 0 or 3, so the multicut
   (row-to-gadget code edges plus the 2t cycle crossings, 2kt + 2t edges)
   is input independent — the multiparty analogue of Definition 1.1. *)
let partition ~k =
  let n = Ix.n ~k in
  let p = Array.make n 3 in
  for i = 0 to k - 1 do
    p.(Ix.a ~k i) <- 0
  done;
  for h = 0 to Bitgadget.log2 k - 1 do
    p.(Ix.f ~k ~alice:true h) <- 1;
    p.(Ix.t ~k ~alice:true h) <- 1;
    p.(Ix.u ~k ~alice:true h) <- 1;
    p.(Ix.f ~k ~alice:false h) <- 2;
    p.(Ix.t ~k ~alice:false h) <- 2;
    p.(Ix.u ~k ~alice:false h) <- 2
  done;
  p.(Ix.pa ~k) <- 0;
  p

let family ~k =
  let target = target_size ~k in
  {
    Framework.name = "bit-gadget intersection";
    params = [ ("k", k) ];
    input_bits = k;
    nvertices = Ix.n ~k;
    side = side ~k;
    build = (fun x y -> Framework.Undirected (build ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Domset.min_size g <= target
        | _ -> invalid_arg "bitgadget family: undirected expected");
    f = Commfn.intersecting;
  }

let incremental ~k =
  let target = target_size ~k in
  {
    Framework.scratch = family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        let dc = Ch_solvers.Cache.domset_prepare c.cg ~radius:1 in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              let g = apply_inputs c x y in
              let balls =
                Ch_solvers.Cache.domset_balls dc ~extra:(input_edges ~k x y)
              in
              Ch_solvers.Domset.exists_of_size ~balls g target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.domset_stats dc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let specs =
  [
    {
      Registry.id = "bitgadget";
      title = "bit-gadget intersection (t=4)";
      paper_ref = "Sec 2 bit gadgets; arXiv:1901.01630";
      origin = "Bitgadget_lb";
      default_k = 4;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction =
        Some
          (fun k ->
            Registry.reduction_partitioned ~partition:(partition ~k)
              ~solver:(fun g -> Ch_solvers.Domset.min_size g)
              ~accept:(fun a -> a <= target_size ~k));
    };
  ]
