open Ch_cc

(** Sections 4.2–4.3 (Figure 5): no O(log n)-approximation for weighted
    2-MDS / k-MDS.

    Element vertices a_j, b_j (weight α) are covered only by set vertices
    S_i / S̄_i whose weight is 1 precisely when the corresponding input
    bit is 1; everything else is covered for free through R (weight 0).
    If DISJ(x,y) = FALSE some index i has both S_i and S̄_i cheap and
    \{S_i, S̄_i\} is a k-MDS of weight 2; otherwise the cheap sets contain
    no complementary pair, so by the r-covering property any k-MDS has
    weight > r (Lemmas 4.3/4.4).  For k > 2 the set-element edges are
    subdivided into length-(k−1) paths. *)

type params = {
  collection : Covering.t;
  k : int;  (** the domination radius, ≥ 2 *)
  alpha : int;  (** the heavy weight, > r *)
}

val make_params : ?seed:int -> ?k:int -> ell:int -> t_count:int -> r:int -> unit -> params

val nvertices : params -> int

val yes_weight : int
(** 2. *)

val no_weight_exceeds : params -> int
(** r: every no-instance k-MDS weighs more than this. *)

val build : params -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val family : params -> Ch_core.Framework.t
(** Predicate: minimum-weight radius-k dominating set ≤ 2. *)

val gap_holds : params -> Bits.t -> Bits.t -> bool
(** The full gap statement on one instance: weight ≤ 2 when intersecting,
    and > r when disjoint. *)

(** {1 Incremental verification}

    The topology never depends on the inputs — only the 2T set-vertex
    weights do — so the radius-k closed balls are computed once on the
    core and every pair is a weight overwrite plus a ball-reusing
    weighted domination solve. *)

type core

val build_core : params -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Ch_graph.Graph.t
(** Overwrite the S_i / S̄_i weights for this pair (the shared graph is
    returned; topology untouched). *)

val incremental : params -> Ch_core.Framework.incremental
(** Memoized radius-k balls (see {!Ch_solvers.Cache.domset_prepare});
    verdicts bit-identical to {!family}. *)

val specs : Ch_core.Registry.spec list
(** Registry entries ["2mds"] and ["3mds"], both incremental. *)
