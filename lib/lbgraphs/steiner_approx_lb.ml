open Ch_graph
open Ch_cc
open Ch_core

type params = { collection : Covering.t; alpha : int }

let make_params ?(seed = 0) ~ell ~t_count ~r () =
  { collection = Covering.construct ~seed ~ell ~t_count ~r (); alpha = r + 1 }

(* shared layout with the k-MDS construction: a_j, b_j, S_i, S̄_i, a, b, R *)
module Ix = struct
  let a_elt _p j = j

  let b_elt p j = p.collection.Covering.ell + j

  let s p i = (2 * p.collection.Covering.ell) + i

  let s_bar p i =
    (2 * p.collection.Covering.ell) + Array.length p.collection.Covering.sets + i

  let hub_a p =
    (2 * p.collection.Covering.ell) + (2 * Array.length p.collection.Covering.sets)

  let hub_b p = hub_a p + 1

  let root p = hub_a p + 2

  let n p = hub_a p + 3
end

let terminals p =
  List.init (2 * p.collection.Covering.ell) Fun.id

(* ---------------- node-weighted (Theorem 4.6) ---------------- *)

let build_node_weighted p x y =
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Steiner_approx_lb: inputs must have T bits";
  let g = Graph.create ~default_vweight:0 (Ix.n p) in
  for i = 0 to t_count - 1 do
    Graph.set_vweight g (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight g (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha)
  done;
  for j = 0 to ell - 1 do
    Graph.add_edge g (Ix.a_elt p j) (Ix.b_elt p j)
  done;
  for i = 0 to t_count - 1 do
    Graph.add_edge g (Ix.hub_a p) (Ix.s p i);
    Graph.add_edge g (Ix.hub_b p) (Ix.s_bar p i);
    for j = 0 to ell - 1 do
      if Covering.mem p.collection ~set:i j then
        Graph.add_edge g (Ix.s p i) (Ix.a_elt p j)
      else Graph.add_edge g (Ix.s_bar p i) (Ix.b_elt p j)
    done
  done;
  Graph.add_edge g (Ix.root p) (Ix.hub_a p);
  Graph.add_edge g (Ix.root p) (Ix.hub_b p);
  g

let side p =
  let side = Array.make (Ix.n p) false in
  for j = 0 to p.collection.Covering.ell - 1 do
    side.(Ix.a_elt p j) <- true
  done;
  for i = 0 to Array.length p.collection.Covering.sets - 1 do
    side.(Ix.s p i) <- true
  done;
  side.(Ix.hub_a p) <- true;
  side

let node_weighted_cost p x y =
  let g = build_node_weighted p x y in
  Ch_solvers.Steiner.node_weighted g (terminals p)

let node_weighted_family p =
  {
    Framework.name = "node-weighted-steiner-log-approx (Thm 4.6)";
    params =
      [
        ("ell", p.collection.Covering.ell);
        ("T", Array.length p.collection.Covering.sets);
        ("r", p.collection.Covering.r);
      ];
    input_bits = Array.length p.collection.Covering.sets;
    nvertices = Ix.n p;
    side = side p;
    build = (fun x y -> Framework.With_terminals (build_node_weighted p x y, terminals p));
    predicate =
      (fun inst ->
        match inst with
        | Framework.With_terminals (g, terms) ->
            Ch_solvers.Steiner.node_weighted g terms <= 2
        | _ -> invalid_arg "expected terminals");
    f = Commfn.intersecting;
  }

let node_weighted_gap_holds p x y =
  let cost = node_weighted_cost p x y in
  if Commfn.intersecting x y then cost <= 2
  else cost > p.collection.Covering.r

(* Fixed topology, weights-only inputs: the same split as Kmds_lb, but
   the solve goes through the connector-feasibility table of
   Cache.nwsteiner rather than domination balls. *)

type nw_core = { np : params; ng : Graph.t }

let build_node_weighted_core p =
  let t_count = Array.length p.collection.Covering.sets in
  { np = p; ng = build_node_weighted p (Bits.zeros t_count) (Bits.zeros t_count) }

let apply_node_weighted_inputs c x y =
  let p = c.np in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Steiner_approx_lb: inputs must have T bits";
  for i = 0 to t_count - 1 do
    Graph.set_vweight c.ng (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight c.ng (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha)
  done;
  c.ng

let node_weighted_incremental p =
  {
    Framework.scratch = node_weighted_family p;
    prepare =
      (fun () ->
        let c = build_node_weighted_core p in
        let nc =
          Ch_solvers.Cache.nwsteiner_prepare c.ng ~terminals:(terminals p)
        in
        {
          Framework.pbuild =
            (fun x y ->
              Framework.With_terminals
                (apply_node_weighted_inputs c x y, terminals p));
          pverdict =
            (fun x y ->
              let g = apply_node_weighted_inputs c x y in
              Ch_solvers.Cache.nwsteiner_cost nc ~weights:(Graph.vweights g)
              <= 2);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.nwsteiner_stats nc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* ---------------- directed (Theorem 4.7) ---------------- *)

(* everything except the input-dependent zero-weight set→element arcs *)
let directed_core_digraph p =
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  let dg = Digraph.create (Ix.n p) in
  Digraph.add_arc ~w:0 dg (Ix.root p) (Ix.hub_a p);
  Digraph.add_arc ~w:0 dg (Ix.root p) (Ix.hub_b p);
  for i = 0 to t_count - 1 do
    Digraph.add_arc ~w:1 dg (Ix.hub_a p) (Ix.s p i);
    Digraph.add_arc ~w:1 dg (Ix.hub_b p) (Ix.s_bar p i)
  done;
  for j = 0 to ell - 1 do
    Digraph.add_arc ~w:0 dg (Ix.a_elt p j) (Ix.b_elt p j);
    Digraph.add_arc ~w:0 dg (Ix.b_elt p j) (Ix.a_elt p j);
    (* fallback arcs guaranteeing feasibility *)
    Digraph.add_arc ~w:p.alpha dg (Ix.hub_a p) (Ix.a_elt p j);
    Digraph.add_arc ~w:p.alpha dg (Ix.hub_b p) (Ix.b_elt p j)
  done;
  dg

let directed_input_arcs p x y =
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Steiner_approx_lb: inputs must have T bits";
  let acc = ref [] in
  for i = 0 to t_count - 1 do
    for j = 0 to ell - 1 do
      if Covering.mem p.collection ~set:i j then begin
        if Bits.get x i then acc := (Ix.s p i, Ix.a_elt p j, 0) :: !acc
      end
      else if Bits.get y i then acc := (Ix.s_bar p i, Ix.b_elt p j, 0) :: !acc
    done
  done;
  List.rev !acc

let build_directed p x y =
  let dg = directed_core_digraph p in
  let arcs = directed_input_arcs p x y in
  List.iter (fun (u, v, w) -> Digraph.add_arc ~w dg u v) arcs;
  dg

type dir_core = {
  dp_ : params;
  dg_ : Digraph.t;
  mutable dapplied : (Bits.t * Bits.t) option;
}

let build_directed_core p =
  { dp_ = p; dg_ = directed_core_digraph p; dapplied = None }

let apply_directed_inputs c x y =
  let p = c.dp_ in
  (match c.dapplied with
  | Some (px, py) ->
      List.iter
        (fun (u, v, _) -> Digraph.remove_arc c.dg_ u v)
        (directed_input_arcs p px py)
  | None -> ());
  List.iter
    (fun (u, v, w) -> Digraph.add_arc ~w c.dg_ u v)
    (directed_input_arcs p x y);
  c.dapplied <- Some (x, y);
  c.dg_

let directed_cost p x y =
  match
    Ch_solvers.Steiner.directed (build_directed p x y) ~root:(Ix.root p)
      (terminals p)
  with
  | Some c -> c
  | None -> max_int

let directed_family p =
  {
    Framework.name = "directed-steiner-log-approx (Thm 4.7)";
    params =
      [
        ("ell", p.collection.Covering.ell);
        ("T", Array.length p.collection.Covering.sets);
        ("r", p.collection.Covering.r);
      ];
    input_bits = Array.length p.collection.Covering.sets;
    nvertices = Ix.n p;
    side = side p;
    build =
      (fun x y ->
        Framework.Rooted_digraph (build_directed p x y, Ix.root p, terminals p));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Rooted_digraph (dg, root, terms) -> (
            match Ch_solvers.Steiner.directed dg ~root terms with
            | Some c -> c <= 2
            | None -> false)
        | _ -> invalid_arg "expected rooted digraph");
    f = Commfn.intersecting;
  }

let directed_gap_holds p x y =
  let cost = directed_cost p x y in
  if Commfn.intersecting x y then cost <= 2
  else cost > p.collection.Covering.r

let directed_incremental p =
  let root = Ix.root p and terms = terminals p in
  {
    Framework.scratch = directed_family p;
    prepare =
      (fun () ->
        let c = build_directed_core p in
        (* the shared reversed rows snapshot the pristine core; per-pair
           arcs ride in as ~extra, so the mutable digraph is only touched
           by pbuild *)
        let ds =
          Ch_solvers.Cache.dsteiner_prepare c.dg_ ~root ~terminals:terms
        in
        {
          Framework.pbuild =
            (fun x y ->
              Framework.Rooted_digraph (apply_directed_inputs c x y, root, terms));
          pverdict =
            (fun x y ->
              match
                Ch_solvers.Cache.dsteiner_cost ~cutoff:2 ds
                  ~extra:(directed_input_arcs p x y)
              with
              | Some cost -> cost <= 2
              | None -> false);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.dsteiner_stats ds in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* registry scale: the k = 2 collection (ell = 4, T = 3) keeps the
   2ell-terminal Dreyfus-Wagner scratch solver exhaustive-feasible *)
let registry_params k =
  let ell, t_count = if k <= 2 then (4, 3) else (6, 5) in
  make_params ~seed:1 ~ell ~t_count ~r:2 ()

let specs =
  [
    {
      Registry.id = "steiner-node-weighted";
      title = "node-weighted Steiner log-approx";
      paper_ref = "Thm 4.6, Fig 6";
      origin = "Steiner_approx_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> node_weighted_family (registry_params k));
      incremental = Some (fun k -> node_weighted_incremental (registry_params k));
      reduction = None;
    };
    {
      Registry.id = "steiner-directed";
      title = "directed Steiner log-approx";
      paper_ref = "Thm 4.7, Fig 6";
      origin = "Steiner_approx_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> directed_family (registry_params k));
      incremental = Some (fun k -> directed_incremental (registry_params k));
      reduction = None;
    };
  ]
