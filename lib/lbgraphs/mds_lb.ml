open Ch_graph
open Ch_cc
open Ch_core

type set = A1 | A2 | B1 | B2

let set_index = function A1 -> 0 | A2 -> 1 | B1 -> 2 | B2 -> 3

module Ix = struct
  let n ~k =
    let t = Bitgadget.check_k "Mds_lb" k in
    (4 * k) + (12 * t)

  let row ~k s i =
    assert (i >= 0 && i < k);
    (set_index s * k) + i

  (* per set: a block of 3·log k gadget vertices, F then T then U *)
  let gadget_base ~k s = (4 * k) + (set_index s * 3 * Bitgadget.log2 k)

  let f ~k s h = gadget_base ~k s + h

  let t ~k s h = gadget_base ~k s + Bitgadget.log2 k + h

  let u ~k s h = gadget_base ~k s + (2 * Bitgadget.log2 k) + h
end

let target_size ~k = (4 * Bitgadget.log2 k) + 2

(* the fixed gadget core: everything but the input-dependent edges *)
let core_graph ~k =
  let tbits = Bitgadget.check_k "Mds_lb.core_graph" k in
  let g = Graph.create (Ix.n ~k) in
  (* 6-cycles tying the bit gadgets of A_l and B_l together *)
  List.iter
    (fun (sa, sb) ->
      for h = 0 to tbits - 1 do
        let f_a = Ix.f ~k sa h
        and t_a = Ix.t ~k sa h
        and u_a = Ix.u ~k sa h
        and f_b = Ix.f ~k sb h
        and t_b = Ix.t ~k sb h
        and u_b = Ix.u ~k sb h in
        List.iter
          (fun (p, q) -> Graph.add_edge g p q)
          [ (f_a, t_a); (t_a, u_a); (u_a, f_b); (f_b, t_b); (t_b, u_b); (u_b, f_a) ]
      done)
    [ (A1, B1); (A2, B2) ];
  (* rows to bit gadgets by binary representation *)
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        for h = 0 to tbits - 1 do
          let target = if Bitgadget.bit i h then Ix.t ~k s h else Ix.f ~k s h in
          Graph.add_edge g (Ix.row ~k s i) target
        done
      done)
    [ A1; A2; B1; B2 ];
  g

let input_edges ~k x y =
  if Bits.length x <> k * k || Bits.length y <> k * k then
    invalid_arg "Mds_lb.input_edges: inputs must have k^2 bits";
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if Bits.get_pair ~k x i j then
        acc := (Ix.row ~k A1 i, Ix.row ~k A2 j) :: !acc;
      if Bits.get_pair ~k y i j then
        acc := (Ix.row ~k B1 i, Ix.row ~k B2 j) :: !acc
    done
  done;
  List.rev !acc

let build ~k x y =
  let g = core_graph ~k in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (input_edges ~k x y);
  g

type core = {
  ck : int;
  cg : Graph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Mds_lb.build_core" k in
  { ck = k; cg = core_graph ~k; applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter (fun (u, v) -> Graph.remove_edge c.cg u v) (input_edges ~k px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.cg u v) (input_edges ~k x y);
  c.applied <- Some (x, y);
  c.cg

let side ~k =
  let n = Ix.n ~k in
  let side = Array.make n false in
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        side.(Ix.row ~k s i) <- true
      done;
      for h = 0 to Bitgadget.log2 k - 1 do
        side.(Ix.f ~k s h) <- true;
        side.(Ix.t ~k s h) <- true;
        side.(Ix.u ~k s h) <- true
      done)
    [ A1; A2 ];
  side

let family ~k =
  let target = target_size ~k in
  {
    Framework.name = "mds-exact (Thm 2.1)";
    params = [ ("k", k) ];
    input_bits = k * k;
    nvertices = Ix.n ~k;
    side = side ~k;
    build = (fun x y -> Framework.Undirected (build ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Domset.min_size g <= target
        | _ -> invalid_arg "mds family: undirected expected");
    f = Commfn.intersecting;
  }

let incremental ~k =
  let target = target_size ~k in
  {
    Framework.scratch = family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        (* balls snapshot of the unpatched core *)
        let dc = Ch_solvers.Cache.domset_prepare c.cg ~radius:1 in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              let g = apply_inputs c x y in
              let balls =
                Ch_solvers.Cache.domset_balls dc ~extra:(input_edges ~k x y)
              in
              (* decision-bounded: the incremental sweep only needs the
                 ≤ target verdict, not the optimum itself *)
              Ch_solvers.Domset.exists_of_size ~balls g target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.domset_stats dc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let specs =
  [
    {
      Registry.id = "mds";
      title = "exact MDS";
      paper_ref = "Thm 2.1, Fig 1";
      origin = "Mds_lb";
      default_k = 2;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction =
        Some
          (fun k ->
            Registry.reduction2
              ~solver:(fun g -> Ch_solvers.Domset.min_size g)
              ~accept:(fun a -> a <= target_size ~k));
    };
  ]
