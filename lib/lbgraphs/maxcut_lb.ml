open Ch_graph
open Ch_cc
open Ch_core

module Ix = struct
  let row ~k s i =
    assert (i >= 0 && i < k);
    (Mds_lb.set_index s * k) + i

  let gadget_base ~k s = (4 * k) + (Mds_lb.set_index s * 2 * Bitgadget.log2 k)

  let f ~k s h = gadget_base ~k s + h

  let t ~k s h = gadget_base ~k s + Bitgadget.log2 k + h

  let specials_base ~k = (4 * k) + (8 * Bitgadget.log2 k)

  let ca ~k = specials_base ~k

  let ca_bar ~k = specials_base ~k + 1

  let cb ~k = specials_base ~k + 2

  let na ~k = specials_base ~k + 3

  let nb ~k = specials_base ~k + 4

  let n ~k =
    let _ = Bitgadget.check_k "Maxcut_lb" k in
    specials_base ~k + 5
end

let target_weight ~k =
  let t = Bitgadget.log2 k in
  let k2 = k * k in
  let k3 = k2 * k in
  let k4 = k3 * k in
  (k4 * ((8 * t) + 4)) + (k3 * ((12 * t) - 4)) + (4 * k2) + (4 * k)

let core_graph ~k =
  let tbits = Bitgadget.check_k "Maxcut_lb.core_graph" k in
  let g = Graph.create (Ix.n ~k) in
  let k2 = k * k in
  let k4 = k2 * k2 in
  let heavy = k4 in
  let bin_w = 2 * k2 in
  let center_w = (2 * k2 * tbits) - k2 in
  let edge w u v = Graph.add_edge ~w g u v in
  (* the k^4 skeleton *)
  edge heavy (Ix.ca ~k) (Ix.na ~k);
  edge heavy (Ix.cb ~k) (Ix.nb ~k);
  edge heavy (Ix.ca ~k) (Ix.ca_bar ~k);
  edge heavy (Ix.ca_bar ~k) (Ix.cb ~k);
  List.iter
    (fun (sa, sb) ->
      for h = 0 to tbits - 1 do
        let t_a = Ix.t ~k sa h
        and f_a = Ix.f ~k sa h
        and t_b = Ix.t ~k sb h
        and f_b = Ix.f ~k sb h in
        (* 4-cycle (t_A, f_A, t_B, f_B) *)
        edge heavy t_a f_a;
        edge heavy f_a t_b;
        edge heavy t_b f_b;
        edge heavy f_b t_a
      done)
    [ (Mds_lb.A1, Mds_lb.B1); (Mds_lb.A2, Mds_lb.B2) ];
  (* rows to their bit gadgets and to the C centers *)
  List.iter
    (fun (s, center) ->
      for j = 0 to k - 1 do
        let v = Ix.row ~k s j in
        for h = 0 to tbits - 1 do
          let target = if Bitgadget.bit j h then Ix.t ~k s h else Ix.f ~k s h in
          edge bin_w v target
        done;
        edge center_w v center
      done)
    [
      (Mds_lb.A1, Ix.ca ~k);
      (Mds_lb.A2, Ix.ca ~k);
      (Mds_lb.B1, Ix.cb ~k);
      (Mds_lb.B2, Ix.cb ~k);
    ];
  g

(* input-dependent part: complement edges of weight 1 and the N budget
   edges, keeping every row vertex's weight into (row₂ ∪ N) exactly k *)
let input_edges ~k x y =
  if Bits.length x <> k * k || Bits.length y <> k * k then
    invalid_arg "Maxcut_lb.input_edges: inputs must have k^2 bits";
  let row_sum get i =
    let acc = ref 0 in
    for j = 0 to k - 1 do
      if get i j then incr acc
    done;
    !acc
  in
  let acc = ref [] in
  let edge w u v = acc := (u, v, w) :: !acc in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if not (Bits.get_pair ~k x i j) then
        edge 1 (Ix.row ~k Mds_lb.A1 i) (Ix.row ~k Mds_lb.A2 j);
      if not (Bits.get_pair ~k y i j) then
        edge 1 (Ix.row ~k Mds_lb.B1 i) (Ix.row ~k Mds_lb.B2 j)
    done
  done;
  for i = 0 to k - 1 do
    edge (row_sum (Bits.get_pair ~k x) i) (Ix.row ~k Mds_lb.A1 i) (Ix.na ~k);
    edge (row_sum (fun a b -> Bits.get_pair ~k x b a) i) (Ix.row ~k Mds_lb.A2 i) (Ix.na ~k);
    edge (row_sum (Bits.get_pair ~k y) i) (Ix.row ~k Mds_lb.B1 i) (Ix.nb ~k);
    edge (row_sum (fun a b -> Bits.get_pair ~k y b a) i) (Ix.row ~k Mds_lb.B2 i) (Ix.nb ~k)
  done;
  List.rev !acc

(* every input edge stays within the rows and {N_A, N_B} — the volatile
   set the conditioned max-cut table ranges over (4k + 2 vertices) *)
let volatile ~k =
  List.concat_map
    (fun s -> List.init k (fun i -> Ix.row ~k s i))
    [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ]
  @ [ Ix.na ~k; Ix.nb ~k ]

let build ~k x y =
  let g = core_graph ~k in
  List.iter (fun (u, v, w) -> Graph.add_edge ~w g u v) (input_edges ~k x y);
  g

type core = {
  ck : int;
  cg : Graph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Maxcut_lb.build_core" k in
  { ck = k; cg = core_graph ~k; applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter
        (fun (u, v, _) -> Graph.remove_edge c.cg u v)
        (input_edges ~k px py)
  | None -> ());
  List.iter (fun (u, v, w) -> Graph.add_edge ~w c.cg u v) (input_edges ~k x y);
  c.applied <- Some (x, y);
  c.cg

let side ~k =
  let side = Array.make (Ix.n ~k) false in
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        side.(Ix.row ~k s i) <- true
      done;
      for h = 0 to Bitgadget.log2 k - 1 do
        side.(Ix.f ~k s h) <- true;
        side.(Ix.t ~k s h) <- true
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side.(Ix.ca ~k) <- true;
  side.(Ix.ca_bar ~k) <- true;
  side.(Ix.na ~k) <- true;
  side

let family ~k =
  let target = target_weight ~k in
  {
    Framework.name = "weighted-max-cut (Thm 2.8)";
    params = [ ("k", k) ];
    input_bits = k * k;
    nvertices = Ix.n ~k;
    side = side ~k;
    build = (fun x y -> Framework.Undirected (build ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> fst (Ch_solvers.Maxcut.max_cut g) >= target
        | _ -> invalid_arg "maxcut family: undirected expected");
    f = Commfn.intersecting;
  }

let incremental ~k =
  let target = target_weight ~k in
  {
    Framework.scratch = family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        (* n ≤ 30 — so k = 2 only, exactly like the scratch solver *)
        let mc = Ch_solvers.Cache.maxcut_prepare c.cg ~volatile:(volatile ~k) in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.maxcut_max ~stop_at:target mc
                ~extra:(input_edges ~k x y)
              >= target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.maxcut_stats mc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let specs =
  [
    {
      Registry.id = "maxcut";
      title = "weighted max cut";
      paper_ref = "Thm 2.8, Fig 3";
      origin = "Maxcut_lb";
      default_k = 2;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction =
        Some
          (fun k ->
            Registry.reduction2
              ~solver:(fun g -> fst (Ch_solvers.Maxcut.max_cut g))
              ~accept:(fun a -> a >= target_weight ~k));
    };
  ]
