open Ch_graph
open Ch_cc
open Ch_core

let target_edges ~k = (4 * k) + (16 * Bitgadget.log2 k) + 1

let terminals ~k = List.init (Mds_lb.Ix.n ~k) Fun.id

(* The Theorem 2.6 transform is edge-local in the base graph: each base
   edge {u,v} contributes exactly (ũ,v) and (ṽ,u), everything else
   (identity edges, copy cliques, crossing edges) is base-edge
   independent.  So transform(core) + mapped input edges =
   transform(full base graph) — the fact the incremental path relies
   on. *)
let transform_graph ~k g =
  let n = Graph.n g in
  let side = Mds_lb.side ~k in
  let g' = Graph.create (2 * n) in
  let copy v = n + v in
  Graph.iter_edges
    (fun u v _ ->
      Graph.add_edge g' (copy u) v;
      Graph.add_edge g' (copy v) u)
    g;
  for v = 0 to n - 1 do
    Graph.add_edge g' (copy v) v
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if side.(u) = side.(v) then Graph.add_edge g' (copy u) (copy v)
    done
  done;
  let f0a1 = Mds_lb.Ix.f ~k Mds_lb.A1 0
  and t0a1 = Mds_lb.Ix.t ~k Mds_lb.A1 0
  and f0b1 = Mds_lb.Ix.f ~k Mds_lb.B1 0
  and t0b1 = Mds_lb.Ix.t ~k Mds_lb.B1 0 in
  Graph.add_edge g' (copy f0a1) (copy f0b1);
  Graph.add_edge g' (copy t0a1) (copy t0b1);
  g'

let transform ~k inst =
  let g =
    match inst with
    | Framework.Undirected g -> g
    | _ -> invalid_arg "Steiner_lb: undirected expected"
  in
  Framework.With_terminals (transform_graph ~k g, terminals ~k)

let input_edges ~k x y =
  let n = Mds_lb.Ix.n ~k in
  List.concat_map
    (fun (u, v) -> [ (n + u, v); (n + v, u) ])
    (Mds_lb.input_edges ~k x y)

type core = {
  ck : int;
  cg : Graph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Steiner_lb.build_core" k in
  { ck = k; cg = transform_graph ~k (Mds_lb.core_graph ~k); applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter (fun (u, v) -> Graph.remove_edge c.cg u v) (input_edges ~k px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.cg u v) (input_edges ~k x y);
  c.applied <- Some (x, y);
  c.cg

let family ~k =
  let t = Bitgadget.check_k "Steiner_lb" k in
  let base = Mds_lb.family ~k in
  let n = base.Framework.nvertices in
  let side' = Array.append base.Framework.side base.Framework.side in
  let extra_budget = (4 * t) + 2 in
  Framework.reduce ~name:"steiner-tree (Thm 2.7)"
    ~transform:(transform ~k) ~nvertices:(2 * n) ~side:side'
    ~predicate:(fun inst ->
      match inst with
      | Framework.With_terminals (g, terms) -> (
          (* a Steiner tree with target_edges edges = terminals plus
             extra_budget connector copies *)
          match
            Ch_solvers.Steiner.min_extra_nodes ~cap:extra_budget g terms
          with
          | Some extra -> extra <= extra_budget
          | None -> false)
      | _ -> invalid_arg "steiner family: terminals expected")
    base

let incremental ~k =
  let t = Bitgadget.check_k "Steiner_lb.incremental" k in
  let extra_budget = (4 * t) + 2 in
  {
    Framework.scratch = family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        let sc =
          Ch_solvers.Cache.steiner_prepare c.cg ~terminals:(terminals ~k)
            ~cap:extra_budget
        in
        {
          Framework.pbuild =
            (fun x y ->
              Framework.With_terminals (apply_inputs c x y, terminals ~k));
          pverdict =
            (fun x y ->
              match
                Ch_solvers.Cache.steiner_min_extra sc
                  ~extra:(input_edges ~k x y)
              with
              | Some extra -> extra <= extra_budget
              | None -> false);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.steiner_stats sc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let specs =
  [
    {
      Registry.id = "steiner";
      title = "Steiner tree (cardinality)";
      paper_ref = "Thm 2.7";
      origin = "Steiner_lb";
      default_k = 2;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction = None;
    };
  ]
