open Ch_graph
open Ch_cc

(** The Figure 2 / Theorems 2.2–2.5 constructions: directed Hamiltonian
    path, directed Hamiltonian cycle (one extra [middle] vertex), their
    undirected variants (via the Lemma 2.2/2.3 transforms), and minimum
    2-ECSS (via Claim 2.7).

    For every 0 ≤ c < 2·log k the box C_c encodes the choice of the c-th
    bit of the indices (i, j): a Hamiltonian path must commit, per box, to
    the true- or false- launch lane, and the lanes' wheel vertices are the
    row vertices a₁/b₁ (boxes c < log k) or a₂/b₂ (boxes c ≥ log k) whose
    binary representation matches the choice.  Whatever the choices, the
    four row vertices a₁^i, a₂^j, b₁^i, b₂^j they spell are the only ones
    left unvisited, and the suffix start→…→end exists iff the input edges
    (a₁^i, a₂^j) and (b₁^i, b₂^j) are both present, i.e. x_{i,j} = y_{i,j}
    = 1. *)

module Ix : sig
  val n : k:int -> int
  (** 6 + 4k + 2·log k · (2 + 6k). *)

  val start : int

  val end_ : int

  val s11 : int

  val s21 : int

  val s12 : int

  val s22 : int

  val row : k:int -> Mds_lb.set -> int -> int

  val g : k:int -> int -> int

  val r : k:int -> int -> int

  val launch : k:int -> c:int -> d:int -> q:bool -> int
  (** [q = true] is the paper's t-lane. *)

  val skip : k:int -> c:int -> d:int -> q:bool -> int

  val burn : k:int -> c:int -> d:int -> q:bool -> int

  val wheel : k:int -> c:int -> d:int -> q:bool -> int
  (** The row vertex serving as wheel^{c,d}_q. *)
end

val build : k:int -> Bits.t -> Bits.t -> Digraph.t

val core_digraph : k:int -> Digraph.t
(** The fixed part — {!build} minus the input-dependent row arcs. *)

val input_arcs : k:int -> Bits.t -> Bits.t -> (int * int) list
(** The input-dependent arcs: (a₁^i, a₂^j) per set x-bit and (b₁^i, b₂^j)
    per set y-bit.  [build] = [core_digraph] + these. *)

type core
(** A core digraph plus the currently applied input pair. *)

val build_core : k:int -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Digraph.t
(** Patch the core in place to the pair's digraph: remove the previous
    pair's input arcs, add this pair's.  The result aliases the core —
    valid until the next [apply_inputs] on the same core. *)

val witness_path : k:int -> Bits.t -> Bits.t -> i:int -> j:int -> int list
(** The explicit Hamiltonian path of Claim 2.1 for an intersecting index
    pair (x_{i,j} = y_{i,j} = 1 required): forward wheel/beta steps along
    the chosen lanes, backward steps along the opposite lanes, then
    start→…→end through a₁^i, a₂^j, b₁^i, b₂^j.  Lets the completeness
    direction be checked constructively at any k, where search is
    hopeless. *)

val side : k:int -> bool array

val path_family : k:int -> Ch_core.Framework.t
(** Directed Hamiltonian path (Theorem 2.2). *)

val incremental : k:int -> Ch_core.Framework.incremental
(** Incremental descriptor for {!path_family}: shared core adjacency
    bitsets ({!Ch_solvers.Cache.hampath_prepare}) patched copy-on-write
    with the pair's {!input_arcs} instead of a fresh digraph build per
    pair. *)

val cycle_family : k:int -> Ch_core.Framework.t
(** Directed Hamiltonian cycle: adds [middle] (Theorem 2.3). *)

val undirected_cycle_family : k:int -> Ch_core.Framework.t
(** Via the Lemma 2.2 transform (Theorem 2.4). *)

val undirected_path_family : k:int -> Ch_core.Framework.t
(** Via the Lemma 2.3 transform on top (Theorem 2.4). *)

val ecss_family : k:int -> Ch_core.Framework.t
(** Minimum 2-ECSS (Theorem 2.5): the undirected-cycle graph has a
    2-edge-connected spanning subgraph with exactly n edges iff the cycle
    exists (Claim 2.7); the predicate is decided through that equivalence,
    which test_solvers verifies independently. *)

val specs : Ch_core.Registry.spec list
(** Registry entries ["hampath"] (incremental), ["hamcycle"],
    ["hamcycle-undirected"], ["hampath-undirected"] and ["2ecss"]. *)
