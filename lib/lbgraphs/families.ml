(* Listing order is the historical `hardness list` order: the Section 2
   exact families, the Section 3 spanner, then the Section 4 gap
   families. *)
let all =
  Mds_lb.specs @ Maxis_lb.specs @ Hampath_lb.specs @ Steiner_lb.specs
  @ Maxcut_lb.specs @ Spanner_lb.specs @ Maxis_approx_lb.specs
  @ Kmds_lb.specs @ Steiner_approx_lb.specs @ Mds_restricted_lb.specs
  @ Bitgadget_lb.specs

let catalog =
  let t = lazy (Ch_core.Registry.of_specs all) in
  fun () -> Lazy.force t
