(** The one aggregation point of every lower-bound family spec: the
    bench, the [hardness] CLI, the reduction sweeps and the tests all
    consume this catalog (see {!Ch_core.Registry}).  Adding a family is a
    one-module change — export its spec(s) and append them here. *)

val all : Ch_core.Registry.spec list
(** Every registered spec, in the canonical listing order. *)

val catalog : unit -> Ch_core.Registry.t
(** The registry over {!all}, built once (id uniqueness is checked on
    first use). *)
