open Ch_graph
open Ch_cc
open Ch_core

type params = { collection : Covering.t; alpha : int }

let make_params ?(seed = 0) ~ell ~t_count ~r () =
  { collection = Covering.construct ~seed ~ell ~t_count ~r (); alpha = r + 1 }

module Ix = struct
  let element _p j = j

  let s p i = p.collection.Covering.ell + i

  let s_bar p i = p.collection.Covering.ell + Array.length p.collection.Covering.sets + i

  let hub_a p = p.collection.Covering.ell + (2 * Array.length p.collection.Covering.sets)

  let hub_b p = hub_a p + 1

  let root p = hub_a p + 2

  let n p = hub_a p + 3
end

let nvertices p = Ix.n p

let element p j = Ix.element p j

let build p x y =
  let ell = p.collection.Covering.ell in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Mds_restricted_lb.build: inputs must have T bits";
  let g = Graph.create ~default_vweight:p.alpha (Ix.n p) in
  Graph.set_vweight g (Ix.hub_a p) 0;
  Graph.set_vweight g (Ix.hub_b p) 0;
  Graph.set_vweight g (Ix.root p) 0;
  for i = 0 to t_count - 1 do
    Graph.set_vweight g (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight g (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha);
    Graph.add_edge g (Ix.hub_a p) (Ix.s p i);
    Graph.add_edge g (Ix.hub_b p) (Ix.s_bar p i);
    for j = 0 to ell - 1 do
      if Covering.mem p.collection ~set:i j then
        Graph.add_edge g (Ix.s p i) (Ix.element p j)
      else Graph.add_edge g (Ix.s_bar p i) (Ix.element p j)
    done
  done;
  Graph.add_edge g (Ix.root p) (Ix.hub_a p);
  Graph.add_edge g (Ix.root p) (Ix.hub_b p);
  g

let owner p v =
  let t_count = Array.length p.collection.Covering.sets in
  if v < p.collection.Covering.ell then `Shared
  else if v < p.collection.Covering.ell + t_count then `Alice
  else if v < p.collection.Covering.ell + (2 * t_count) then `Bob
  else if v = Ix.hub_a p then `Alice
  else `Bob

let side p =
  Array.init (Ix.n p) (fun v ->
      match owner p v with `Alice | `Shared -> true | `Bob -> false)

let family p =
  {
    Framework.name = "restricted-mds-log-approx (Thm 4.8)";
    params =
      [
        ("ell", p.collection.Covering.ell);
        ("T", Array.length p.collection.Covering.sets);
        ("r", p.collection.Covering.r);
      ];
    input_bits = Array.length p.collection.Covering.sets;
    nvertices = Ix.n p;
    side = side p;
    build = (fun x y -> Framework.Undirected (build p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g ->
            fst (Ch_solvers.Domset.min_weight_set g) <= 2
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }

let gap_holds p x y =
  let g = build p x y in
  let w = fst (Ch_solvers.Domset.min_weight_set g) in
  if Commfn.intersecting x y then w <= 2 else w > p.collection.Covering.r

(* Fixed topology, weights-only inputs — the same split as Kmds_lb. *)

type core = { cp : params; cg : Ch_graph.Graph.t }

let build_core p =
  let t_count = Array.length p.collection.Covering.sets in
  { cp = p; cg = build p (Bits.zeros t_count) (Bits.zeros t_count) }

let apply_inputs c x y =
  let p = c.cp in
  let t_count = Array.length p.collection.Covering.sets in
  if Bits.length x <> t_count || Bits.length y <> t_count then
    invalid_arg "Mds_restricted_lb.apply_inputs: inputs must have T bits";
  for i = 0 to t_count - 1 do
    Graph.set_vweight c.cg (Ix.s p i) (if Bits.get x i then 1 else p.alpha);
    Graph.set_vweight c.cg (Ix.s_bar p i) (if Bits.get y i then 1 else p.alpha)
  done;
  c.cg

let incremental p =
  {
    Framework.scratch = family p;
    prepare =
      (fun () ->
        let c = build_core p in
        let dc = Ch_solvers.Cache.domset_prepare c.cg ~radius:1 in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              let g = apply_inputs c x y in
              let balls = Ch_solvers.Cache.domset_balls dc ~extra:[] in
              Ch_solvers.Domset.exists_within ~balls g ~bound:2);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.domset_stats dc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let registry_params k =
  let ell, t_count =
    if k <= 2 then (6, 6) else if k <= 4 then (8, 10) else (10, 20)
  in
  make_params ~seed:1 ~ell ~t_count ~r:2 ()

let specs =
  [
    {
      Registry.id = "mds-restricted";
      title = "restricted weighted MDS log-approx";
      paper_ref = "Thm 4.8, Fig 7";
      origin = "Mds_restricted_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> family (registry_params k));
      incremental = Some (fun k -> incremental (registry_params k));
      reduction = None;
    };
  ]
