open Ch_graph
open Ch_cc

(** The Figure 1 / Theorem 2.1 family: deciding whether a graph has a
    dominating set of size 4·log k + 2 requires Ω(n²/log² n) rounds.

    Four rows A₁, A₂, B₁, B₂ of k vertices are attached to per-set bit
    gadgets F_S, T_S, U_S (log k vertices each) by binary representation;
    the gadget triples are tied together by 6-cycles
    (f^h_{Aℓ}, t^h_{Aℓ}, u^h_{Aℓ}, f^h_{Bℓ}, t^h_{Bℓ}, u^h_{Bℓ}).
    Alice's input adds the edge (a^i₁, a^j₂) iff x_{i,j} = 1 and Bob's adds
    (b^i₁, b^j₂) iff y_{i,j} = 1; the graph then has a dominating set of
    size 4·log k + 2 iff DISJ(x,y) = FALSE. *)

type set = A1 | A2 | B1 | B2

val set_index : set -> int
(** 0..3, the row-block order used by the other constructions too. *)

module Ix : sig
  val n : k:int -> int
  (** 4k + 12·log k. *)

  val row : k:int -> set -> int -> int

  val f : k:int -> set -> int -> int

  val t : k:int -> set -> int -> int

  val u : k:int -> set -> int -> int
end

val target_size : k:int -> int
(** 4·log k + 2. *)

val build : k:int -> Bits.t -> Bits.t -> Graph.t

val core_graph : k:int -> Graph.t
(** The fixed gadget core — {!build} minus the input-dependent edges. *)

val input_edges : k:int -> Bits.t -> Bits.t -> (int * int) list
(** The input-dependent edges of the pair: (a₁^i, a₂^j) per set x-bit and
    (b₁^i, b₂^j) per set y-bit.  [build] = [core_graph] + these. *)

type core
(** A core graph plus the currently applied input pair. *)

val build_core : k:int -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Graph.t
(** Patch the core in place to G_{x,y}: remove the previous pair's input
    edges, add this pair's.  The returned graph aliases the core — valid
    until the next [apply_inputs] on the same core. *)

val side : k:int -> bool array
(** V_A = A₁ ∪ A₂ ∪ (their bit gadgets). *)

val family : k:int -> Ch_core.Framework.t

val incremental : k:int -> Ch_core.Framework.incremental
(** The incremental descriptor: per-pair edge patching plus shared
    dominating-set balls ({!Ch_solvers.Cache.domset_prepare}) instead of
    a fresh build + BFS sweep per pair. *)

val specs : Ch_core.Registry.spec list
(** Registry entry ["mds"]: incremental + Theorem 1.1 reduction. *)
