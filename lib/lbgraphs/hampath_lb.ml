open Ch_graph
open Ch_cc
open Ch_core
open Ch_congest

module Ix = struct
  let start = 0

  let end_ = 1

  let s11 = 2

  let s21 = 3

  let s12 = 4

  let s22 = 5

  let base_rows = 6

  let row ~k s i =
    assert (i >= 0 && i < k);
    base_rows + (Mds_lb.set_index s * k) + i

  let base_boxes ~k = base_rows + (4 * k)

  let box_size ~k = 2 + (6 * k)

  let boxes ~k = 2 * Bitgadget.log2 k

  let n ~k = base_boxes ~k + (boxes ~k * box_size ~k)

  let g ~k c = base_boxes ~k + (c * box_size ~k)

  let r ~k c = g ~k c + 1

  let lane_offset ~k ~d ~q = 2 + (if q then 0 else 3 * k) + (3 * d)

  let launch ~k ~c ~d ~q = g ~k c + lane_offset ~k ~d ~q

  let skip ~k ~c ~d ~q = launch ~k ~c ~d ~q + 1

  let burn ~k ~c ~d ~q = launch ~k ~c ~d ~q + 2

  let wheel ~k ~c ~d ~q =
    let t = Bitgadget.log2 k in
    let h = if c < t then c else c - t in
    let indices = Bitgadget.indices_with_bit ~k ~h ~value:q in
    let half = k / 2 in
    let pick d = List.nth indices d in
    if c < t then
      if d < half then row ~k Mds_lb.A1 (pick d)
      else row ~k Mds_lb.B1 (pick (d - half))
    else if d < half then row ~k Mds_lb.A2 (pick d)
    else row ~k Mds_lb.B2 (pick (d - half))
end

(* forward target of lane (c, d, q) *)
let forward_target ~k ~c ~d ~q =
  let last_box = Ix.boxes ~k - 1 in
  if d <> k - 1 then Ix.launch ~k ~c ~d:(d + 1) ~q
  else if c <> last_box then Ix.g ~k (c + 1)
  else Ix.r ~k last_box

(* backward target of burn (c, d, q) *)
let backward_target ~k ~c ~d ~q =
  if d <> 0 then Ix.launch ~k ~c ~d:(d - 1) ~q
  else if c <> 0 then Ix.r ~k (c - 1)
  else Ix.s11

(* the fixed part of the Theorem 2.2 digraph: everything but the
   input-dependent row-to-row arcs *)
let core_digraph ~k =
  let _ = Bitgadget.check_k "Hampath_lb.core_digraph" k in
  let dg = Digraph.create (Ix.n ~k) in
  let arc u v = Digraph.add_arc dg u v in
  arc Ix.start (Ix.g ~k 0);
  for i = 0 to k - 1 do
    arc Ix.s11 (Ix.row ~k Mds_lb.A1 i);
    arc (Ix.row ~k Mds_lb.A2 i) Ix.s21;
    arc Ix.s12 (Ix.row ~k Mds_lb.B1 i);
    arc (Ix.row ~k Mds_lb.B2 i) Ix.s22
  done;
  arc Ix.s21 Ix.s12;
  arc Ix.s22 Ix.end_;
  for c = 0 to Ix.boxes ~k - 1 do
    List.iter
      (fun q ->
        arc (Ix.g ~k c) (Ix.launch ~k ~c ~d:0 ~q);
        arc (Ix.r ~k c) (Ix.launch ~k ~c ~d:(k - 1) ~q);
        for d = 0 to k - 1 do
          let launch = Ix.launch ~k ~c ~d ~q in
          let skip = Ix.skip ~k ~c ~d ~q in
          let burn = Ix.burn ~k ~c ~d ~q in
          let wheel = Ix.wheel ~k ~c ~d ~q in
          arc launch skip;
          arc launch wheel;
          arc wheel burn;
          arc skip burn;
          arc burn skip;
          let fwd = forward_target ~k ~c ~d ~q in
          arc skip fwd;
          arc burn fwd;
          arc burn (backward_target ~k ~c ~d ~q)
        done)
      [ true; false ]
  done;
  dg

let input_arcs ~k x y =
  if Bits.length x <> k * k || Bits.length y <> k * k then
    invalid_arg "Hampath_lb.input_arcs: inputs must have k^2 bits";
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if Bits.get_pair ~k x i j then
        acc := (Ix.row ~k Mds_lb.A1 i, Ix.row ~k Mds_lb.A2 j) :: !acc;
      if Bits.get_pair ~k y i j then
        acc := (Ix.row ~k Mds_lb.B1 i, Ix.row ~k Mds_lb.B2 j) :: !acc
    done
  done;
  List.rev !acc

let build ~k x y =
  let dg = core_digraph ~k in
  List.iter (fun (u, v) -> Digraph.add_arc dg u v) (input_arcs ~k x y);
  dg

type core = {
  ck : int;
  cdg : Digraph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Hampath_lb.build_core" k in
  { ck = k; cdg = core_digraph ~k; applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter (fun (u, v) -> Digraph.remove_arc c.cdg u v) (input_arcs ~k px py)
  | None -> ());
  List.iter (fun (u, v) -> Digraph.add_arc c.cdg u v) (input_arcs ~k x y);
  c.applied <- Some (x, y);
  c.cdg

let witness_path ~k x y ~i ~j =
  let t = Bitgadget.check_k "Hampath_lb.witness_path" k in
  if not (Bits.get_pair ~k x i j && Bits.get_pair ~k y i j) then
    invalid_arg "Hampath_lb.witness_path: (i,j) must intersect";
  let boxes = 2 * t in
  (* lane choice per box: the f-lane when the encoded bit is 1 *)
  let chosen c =
    let bit = if c < t then Bitgadget.bit i c else Bitgadget.bit j (c - t) in
    not bit
  in
  let visited = Hashtbl.create 256 in
  let path = ref [] in
  let visit v =
    path := v :: !path;
    Hashtbl.replace visited v ()
  in
  visit Ix.start;
  (* forward phase *)
  for c = 0 to boxes - 1 do
    visit (Ix.g ~k c);
    let q = chosen c in
    for d = 0 to k - 1 do
      let wheel = Ix.wheel ~k ~c ~d ~q in
      visit (Ix.launch ~k ~c ~d ~q);
      if Hashtbl.mem visited wheel then begin
        (* beta-forward-step: launch, skip, burn *)
        visit (Ix.skip ~k ~c ~d ~q);
        visit (Ix.burn ~k ~c ~d ~q)
      end
      else begin
        (* wheel-forward-step: launch, wheel, burn, skip *)
        visit wheel;
        visit (Ix.burn ~k ~c ~d ~q);
        visit (Ix.skip ~k ~c ~d ~q)
      end
    done
  done;
  (* backward phase along the opposite lanes *)
  visit (Ix.r ~k (boxes - 1));
  for c = boxes - 1 downto 0 do
    let q = not (chosen c) in
    for d = k - 1 downto 0 do
      visit (Ix.launch ~k ~c ~d ~q);
      visit (Ix.skip ~k ~c ~d ~q);
      visit (Ix.burn ~k ~c ~d ~q)
    done;
    if c > 0 then visit (Ix.r ~k (c - 1))
  done;
  (* the suffix through the four untouched row vertices *)
  visit Ix.s11;
  visit (Ix.row ~k Mds_lb.A1 i);
  visit (Ix.row ~k Mds_lb.A2 j);
  visit Ix.s21;
  visit Ix.s12;
  visit (Ix.row ~k Mds_lb.B1 i);
  visit (Ix.row ~k Mds_lb.B2 j);
  visit Ix.s22;
  visit Ix.end_;
  List.rev !path

let side ~k =
  let n = Ix.n ~k in
  let side = Array.make n false in
  side.(Ix.start) <- true;
  side.(Ix.s11) <- true;
  side.(Ix.s21) <- true;
  for i = 0 to k - 1 do
    side.(Ix.row ~k Mds_lb.A1 i) <- true;
    side.(Ix.row ~k Mds_lb.A2 i) <- true
  done;
  for c = 0 to Ix.boxes ~k - 1 do
    side.(Ix.g ~k c) <- true;
    List.iter
      (fun q ->
        for d = 0 to (k / 2) - 1 do
          side.(Ix.launch ~k ~c ~d ~q) <- true;
          side.(Ix.skip ~k ~c ~d ~q) <- true;
          side.(Ix.burn ~k ~c ~d ~q) <- true
        done)
      [ true; false ]
  done;
  side

let path_family ~k =
  {
    Framework.name = "directed-hamiltonian-path (Thm 2.2)";
    params = [ ("k", k) ];
    input_bits = k * k;
    nvertices = Ix.n ~k;
    side = side ~k;
    build = (fun x y -> Framework.Directed (build ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Directed dg -> Ch_solvers.Hamilton.directed_path dg <> None
        | _ -> invalid_arg "hampath family: directed expected");
    f = Commfn.intersecting;
  }

let incremental ~k =
  {
    Framework.scratch = path_family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        (* bitsets snapshot of the unpatched core *)
        let hp = Ch_solvers.Cache.hampath_prepare c.cdg in
        {
          Framework.pbuild = (fun x y -> Framework.Directed (apply_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.hampath_directed_path hp
                ~extra:(input_arcs ~k x y)
              <> None);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.hampath_stats hp in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

(* Theorem 2.3: add middle with arcs end -> middle -> start *)
let build_cycle ~k x y =
  let dg = build ~k x y in
  let n = Digraph.n dg in
  let dg' = Digraph.create (n + 1) in
  Digraph.iter_arcs (fun u v w -> Digraph.add_arc ~w dg' u v) dg;
  Digraph.add_arc dg' Ix.end_ n;
  Digraph.add_arc dg' n Ix.start;
  dg'

let cycle_side ~k = Array.append (side ~k) [| true |]

let cycle_family ~k =
  {
    Framework.name = "directed-hamiltonian-cycle (Thm 2.3)";
    params = [ ("k", k) ];
    input_bits = k * k;
    nvertices = Ix.n ~k + 1;
    side = cycle_side ~k;
    build = (fun x y -> Framework.Directed (build_cycle ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Directed dg -> Ch_solvers.Hamilton.directed_cycle dg <> None
        | _ -> invalid_arg "hamcycle family: directed expected");
    f = Commfn.intersecting;
  }

(* Theorem 2.4 via Lemma 2.2: v -> (v_in, v_mid, v_out) *)
let expand_side_3x side =
  Array.concat (Array.to_list (Array.map (fun s -> [| s; s; s |]) side))

let undirected_cycle_family ~k =
  let base = cycle_family ~k in
  Framework.reduce ~name:"undirected-hamiltonian-cycle (Thm 2.4)"
    ~transform:(fun inst ->
      match inst with
      | Framework.Directed dg ->
          Framework.Undirected (Transform.directed_to_undirected_hc dg)
      | _ -> invalid_arg "expected directed")
    ~nvertices:(3 * base.Framework.nvertices)
    ~side:(expand_side_3x base.Framework.side)
    ~predicate:(fun inst ->
      match inst with
      | Framework.Undirected g ->
          (* decided through the Lemma 2.2 equivalence (tested on random
             digraphs): searching the 3n-vertex instance directly is
             needlessly slow *)
          Ch_solvers.Hamilton.directed_cycle (Transform.undirected_to_directed_hc g)
          <> None
      | _ -> invalid_arg "expected undirected")
    base

(* Theorem 2.4 via Lemma 2.3 on top: split vertex 0 and add s, t *)
let undirected_path_family ~k =
  let base = undirected_cycle_family ~k in
  let n = base.Framework.nvertices in
  let side' = Array.append base.Framework.side [| true; true; true |] in
  Framework.reduce ~name:"undirected-hamiltonian-path (Thm 2.4)"
    ~transform:(fun inst ->
      match inst with
      | Framework.Undirected g -> Framework.Undirected (fst (Transform.hc_to_hp g))
      | _ -> invalid_arg "expected undirected")
    ~nvertices:(n + 3) ~side:side'
    ~predicate:(fun inst ->
      match inst with
      | Framework.Undirected g ->
          (* Lemma 2.3 then Lemma 2.2 equivalences, both tested on random
             instances *)
          Ch_solvers.Hamilton.directed_cycle
            (Transform.undirected_to_directed_hc (Transform.hp_to_hc g))
          <> None
      | _ -> invalid_arg "expected undirected")
    base

(* Theorem 2.5 via Claim 2.7: the 2-ECSS predicate "has a 2-edge-connected
   spanning subgraph with exactly n edges" is equivalent to Hamiltonicity
   (verified independently in the test suite), which is how the exact
   decision is computed here. *)
let ecss_family ~k =
  let base = undirected_cycle_family ~k in
  {
    base with
    Framework.name = "min-2ecss (Thm 2.5)";
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g ->
            Ch_solvers.Hamilton.directed_cycle (Transform.undirected_to_directed_hc g)
            <> None
        | _ -> invalid_arg "expected undirected");
  }

let specs =
  [
    {
      Registry.id = "hampath";
      title = "directed Hamiltonian path";
      paper_ref = "Thm 2.2, Fig 2";
      origin = "Hampath_lb";
      default_k = 2;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> path_family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction =
        (* the directed gather: arcs are uploaded with their orientation,
           the root decides Hamiltonian-path existence on the digraph *)
        Some
          (fun _k ->
            Registry.reduction_directed
              ~solver:(fun dg ->
                if Ch_solvers.Hamilton.directed_path dg <> None then 1 else 0)
              ~accept:(fun a -> a = 1));
    };
    {
      Registry.id = "hamcycle";
      title = "directed Hamiltonian cycle";
      paper_ref = "Thm 2.3";
      origin = "Hampath_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> cycle_family ~k);
      incremental = None;
      reduction = None;
    };
    {
      Registry.id = "hamcycle-undirected";
      title = "undirected Hamiltonian cycle";
      paper_ref = "Thm 2.4 (Lemma 2.2)";
      origin = "Hampath_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> undirected_cycle_family ~k);
      incremental = None;
      reduction = None;
    };
    {
      Registry.id = "hampath-undirected";
      title = "undirected Hamiltonian path";
      paper_ref = "Thm 2.4 (Lemma 2.3)";
      origin = "Hampath_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> undirected_path_family ~k);
      incremental = None;
      reduction = None;
    };
    {
      Registry.id = "2ecss";
      title = "minimum 2-ECSS";
      paper_ref = "Thm 2.5 (Claim 2.7)";
      origin = "Hampath_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> ecss_family ~k);
      incremental = None;
      reduction = None;
    };
  ]
