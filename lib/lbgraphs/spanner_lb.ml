open Ch_graph
open Ch_core

let hub_weight ~k =
  (* anything exceeding the zero total of the original edges works; make
     it scale-visible *)
  ignore k;
  4

let target_cost ~k = hub_weight ~k * Mds_lb.target_size ~k

let hub_reduction g ~w =
  let n = Graph.n g in
  let g' = Graph.create (n + 1) in
  Graph.iter_edges (fun u v _ -> Graph.add_edge ~w:0 g' u v) g;
  for v = 0 to n - 1 do
    Graph.add_edge ~w g' n v
  done;
  g'

let build ~k x y = hub_reduction (Mds_lb.build ~k x y) ~w:(hub_weight ~k)

let family ~k =
  let base = Mds_lb.family ~k in
  let side' = Array.append base.Framework.side [| true |] in
  let target = target_cost ~k in
  Framework.reduce ~name:"weighted-2-spanner (Thm 3.4 variant)"
    ~transform:(fun inst ->
      match inst with
      | Framework.Undirected g ->
          Framework.Undirected (hub_reduction g ~w:(hub_weight ~k))
      | _ -> invalid_arg "expected undirected")
    ~nvertices:(base.Framework.nvertices + 1)
    ~side:side'
    ~predicate:(fun inst ->
      match inst with
      | Framework.Undirected g ->
          fst (Ch_solvers.Spanner.min_weight_2_spanner g) <= target
      | _ -> invalid_arg "expected undirected")
    base

let specs =
  [
    {
      Registry.id = "2spanner";
      title = "weighted 2-spanner";
      paper_ref = "Thm 3.4 variant";
      origin = "Spanner_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> family ~k);
      incremental = None;
      reduction = None;
    };
  ]
