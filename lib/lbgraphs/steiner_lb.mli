(** The Theorem 2.7 family: minimum Steiner tree, by the Theorem 2.6
    reduction from the MDS family (Section 2.3.2).

    Every vertex v of the MDS graph gets a copy ṽ; identity edges (ṽ,v),
    "original" edges (ũ,v) and (ṽ,u) per MDS edge {u,v}, cliques on Ṽ_A
    and Ṽ_B, and exactly two crossing edges (f̃⁰_{A1}, f̃⁰_{B1}) and
    (t̃⁰_{A1}, t̃⁰_{B1}).  With the original vertices as terminals, a
    Steiner tree with 4k + 16·log k + 1 edges exists iff the MDS instance
    has a dominating set of size 4·log k + 2, i.e. iff DISJ(x,y) =
    FALSE. *)

open Ch_graph
open Ch_cc

val target_edges : k:int -> int
(** 4k + 16·log k + 1. *)

val terminals : k:int -> int list
(** The original vertices 0 .. n−1. *)

val transform_graph : k:int -> Graph.t -> Graph.t
(** The Theorem 2.6 vertex-doubling transform of a base MDS-family
    graph.  Edge-local: transforming the core and then adding the mapped
    input edges yields the same graph as transforming G_{x,y}. *)

val input_edges : k:int -> Bits.t -> Bits.t -> (int * int) list
(** The transformed input edges: each MDS input edge {u,v} becomes
    (ũ,v) and (ṽ,u). *)

type core

val build_core : k:int -> core
(** [transform_graph] applied to the MDS core. *)

val apply_inputs : core -> Bits.t -> Bits.t -> Graph.t
(** In-place patch to the transformed G_{x,y}; the result aliases the
    core. *)

val family : k:int -> Ch_core.Framework.t

val incremental : k:int -> Ch_core.Framework.incremental
(** Incremental descriptor backed by the per-subset connectivity tables
    of {!Ch_solvers.Cache.steiner_prepare}: core component ids for every
    candidate extra-node set up to the budget are precomputed once, and
    each pair only replays its ≤ 16 input edges over those ids.
    Bit-identical to the scratch
    {!Ch_solvers.Steiner.min_extra_nodes}-based predicate. *)

val specs : Ch_core.Registry.spec list
(** Registry entry ["steiner"]: incremental. *)
