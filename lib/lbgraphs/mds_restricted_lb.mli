open Ch_cc

(** Section 4.5 (Figure 7): hardness of approximating weighted MDS for
    local-aggregate algorithms.

    The 2-MDS gadget with the element pairs a_j, b_j merged into single
    vertices j of weight α; the j's belong to neither player and are
    simulated jointly (see [Ch_limits.Aggregate]).  Weighted MDS is 2 iff
    the inputs intersect, and otherwise exceeds r (Lemma 4.7). *)

type params = { collection : Covering.t; alpha : int }

val make_params : ?seed:int -> ell:int -> t_count:int -> r:int -> unit -> params

val nvertices : params -> int

val build : params -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val element : params -> int -> int
(** Vertex id of element j (jointly simulated). *)

val owner : params -> int -> [ `Alice | `Bob | `Shared ]
(** Which player simulates each vertex. *)

val family : params -> Ch_core.Framework.t
(** For the Definition 1.1 checks the shared vertices are assigned to
    Alice; the Theorem 4.8 simulation accounts for them separately. *)

val gap_holds : params -> Bits.t -> Bits.t -> bool

(** {1 Incremental verification} — fixed topology, weights-only inputs
    (the same split as {!Kmds_lb}). *)

type core

val build_core : params -> core

val apply_inputs : core -> Bits.t -> Bits.t -> Ch_graph.Graph.t
(** Overwrite the S_i / S̄_i weights for this pair. *)

val incremental : params -> Ch_core.Framework.incremental
(** Memoized radius-1 balls; verdicts bit-identical to {!family}. *)

val specs : Ch_core.Registry.spec list
(** Registry entry ["mds-restricted"], incremental. *)
