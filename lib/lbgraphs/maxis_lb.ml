open Ch_graph
open Ch_cc
open Ch_core

module Ix = struct
  let row ~k s i =
    assert (i >= 0 && i < k);
    (Mds_lb.set_index s * k) + i

  let gadget_base ~k s = (4 * k) + (Mds_lb.set_index s * 2 * Bitgadget.log2 k)

  let f ~k s h = gadget_base ~k s + h

  let t ~k s h = gadget_base ~k s + Bitgadget.log2 k + h

  let n ~k =
    let tbits = Bitgadget.check_k "Maxis_lb" k in
    (4 * k) + (8 * tbits)
end

let alpha_target ~k = (4 * Bitgadget.log2 k) + 4

let core_graph ~k =
  let tbits = Bitgadget.check_k "Maxis_lb.core_graph" k in
  let g = Graph.create (Ix.n ~k) in
  (* row cliques *)
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          Graph.add_edge g (Ix.row ~k s i) (Ix.row ~k s j)
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ];
  (* bit gadgets: intra pairs and equality cross edges *)
  List.iter
    (fun (sa, sb) ->
      for h = 0 to tbits - 1 do
        Graph.add_edge g (Ix.f ~k sa h) (Ix.t ~k sa h);
        Graph.add_edge g (Ix.f ~k sb h) (Ix.t ~k sb h);
        Graph.add_edge g (Ix.f ~k sa h) (Ix.t ~k sb h);
        Graph.add_edge g (Ix.t ~k sa h) (Ix.f ~k sb h)
      done)
    [ (Mds_lb.A1, Mds_lb.B1); (Mds_lb.A2, Mds_lb.B2) ];
  (* each row vertex conflicts with the gadget values contradicting it *)
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        for h = 0 to tbits - 1 do
          let conflict =
            if Bitgadget.bit i h then Ix.f ~k s h else Ix.t ~k s h
          in
          Graph.add_edge g (Ix.row ~k s i) conflict
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ];
  g

(* inputs: the edge is present iff the bit is 0 *)
let input_edges ~k x y =
  if Bits.length x <> k * k || Bits.length y <> k * k then
    invalid_arg "Maxis_lb.input_edges: inputs must have k^2 bits";
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if not (Bits.get_pair ~k x i j) then
        acc := (Ix.row ~k Mds_lb.A1 i, Ix.row ~k Mds_lb.A2 j) :: !acc;
      if not (Bits.get_pair ~k y i j) then
        acc := (Ix.row ~k Mds_lb.B1 i, Ix.row ~k Mds_lb.B2 j) :: !acc
    done
  done;
  List.rev !acc

let build ~k x y =
  let g = core_graph ~k in
  List.iter (fun (u, v) -> Graph.add_edge g u v) (input_edges ~k x y);
  g

type core = {
  ck : int;
  cg : Graph.t;
  mutable applied : (Bits.t * Bits.t) option;
}

let build_core ~k =
  let _ = Bitgadget.check_k "Maxis_lb.build_core" k in
  { ck = k; cg = core_graph ~k; applied = None }

let apply_inputs c x y =
  let k = c.ck in
  (match c.applied with
  | Some (px, py) ->
      List.iter (fun (u, v) -> Graph.remove_edge c.cg u v) (input_edges ~k px py)
  | None -> ());
  List.iter (fun (u, v) -> Graph.add_edge c.cg u v) (input_edges ~k x y);
  c.applied <- Some (x, y);
  c.cg

(* the 4k row vertices — the only endpoints of input edges *)
let volatile ~k = List.init (4 * k) Fun.id

let side ~k =
  let side = Array.make (Ix.n ~k) false in
  List.iter
    (fun s ->
      for i = 0 to k - 1 do
        side.(Ix.row ~k s i) <- true
      done;
      for h = 0 to Bitgadget.log2 k - 1 do
        side.(Ix.f ~k s h) <- true;
        side.(Ix.t ~k s h) <- true
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side

let family ~k =
  let target = alpha_target ~k in
  {
    Framework.name = "maxis-exact ([10] reimplementation)";
    params = [ ("k", k) ];
    input_bits = k * k;
    nvertices = Ix.n ~k;
    side = side ~k;
    build = (fun x y -> Framework.Undirected (build ~k x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.alpha g >= target
        | _ -> invalid_arg "maxis family: undirected expected");
    f = Commfn.intersecting;
  }

let incremental ~k =
  let target = alpha_target ~k in
  {
    Framework.scratch = family ~k;
    prepare =
      (fun () ->
        let c = build_core ~k in
        (* conditioned α table of the unpatched core over the rows *)
        let mc = Ch_solvers.Cache.mis_prepare c.cg ~volatile:(volatile ~k) in
        {
          Framework.pbuild = (fun x y -> Framework.Undirected (apply_inputs c x y));
          pverdict =
            (fun x y ->
              Ch_solvers.Cache.mis_alpha mc ~extra:(input_edges ~k x y) >= target);
          pstats =
            (fun () ->
              let s = Ch_solvers.Cache.mis_stats mc in
              {
                Framework.cache_hits = s.Ch_solvers.Cache.hits;
                cache_misses = s.Ch_solvers.Cache.misses;
              });
        });
  }

let mvc_family ~k =
  let base = family ~k in
  let target = Ix.n ~k - alpha_target ~k in
  {
    base with
    Framework.name = "mvc-exact ([10] reimplementation)";
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.min_vertex_cover_size g <= target
        | _ -> invalid_arg "mvc family: undirected expected");
  }

let specs =
  [
    {
      Registry.id = "maxis";
      title = "exact MaxIS";
      paper_ref = "Sec 2 ([10] reimplementation)";
      origin = "Maxis_lb";
      default_k = 2;
      sweep_ks = [ 2; 4 ];
      scratch = (fun k -> family ~k);
      incremental = Some (fun k -> incremental ~k);
      reduction =
        Some
          (fun k ->
            Registry.reduction2
              ~solver:(fun g -> Ch_solvers.Mis.alpha g)
              ~accept:(fun a -> a >= alpha_target ~k));
    };
    {
      Registry.id = "mvc";
      title = "exact MVC (MaxIS complement)";
      paper_ref = "Sec 2 ([10] reimplementation)";
      origin = "Maxis_lb";
      default_k = 2;
      sweep_ks = [ 2 ];
      scratch = (fun k -> mvc_family ~k);
      incremental = None;
      reduction = None;
    };
  ]
