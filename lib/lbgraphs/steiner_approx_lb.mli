open Ch_cc

(** Section 4.4 (Figure 6): no O(log n)-approximation for the
    node-weighted and the directed Steiner tree problems.

    Both reuse the covering-collection machinery: terminals are the
    element vertices a_j, b_j; connecting them through cheap set vertices
    is possible at cost 2 iff the inputs intersect, and otherwise the
    r-covering property forces cost > r (Lemmas 4.5 and 4.6). *)

type params = { collection : Covering.t; alpha : int }

val make_params : ?seed:int -> ell:int -> t_count:int -> r:int -> unit -> params

val terminals : params -> int list

val node_weighted_family : params -> Ch_core.Framework.t
(** Theorem 4.6: node-weighted Steiner tree, predicate: cost ≤ 2. *)

val directed_family : params -> Ch_core.Framework.t
(** Theorem 4.7: directed Steiner tree rooted at R, predicate: cost ≤ 2. *)

val node_weighted_gap_holds : params -> Bits.t -> Bits.t -> bool

val directed_gap_holds : params -> Bits.t -> Bits.t -> bool

(** {1 Incremental verification}

    Node-weighted: fixed topology, weights-only inputs — the connector
    feasibility table ({!Ch_solvers.Cache.nwsteiner_prepare}) is computed
    once and every pair is a weight fold.  Directed: the core's reversed
    adjacency is snapshotted once and each pair's zero-weight set→element
    arcs ride in as the query delta
    ({!Ch_solvers.Cache.dsteiner_prepare}). *)

type nw_core

val build_node_weighted_core : params -> nw_core

val apply_node_weighted_inputs : nw_core -> Bits.t -> Bits.t -> Ch_graph.Graph.t
(** Overwrite the S_i / S̄_i weights for this pair. *)

val node_weighted_incremental : params -> Ch_core.Framework.incremental
(** Verdicts bit-identical to {!node_weighted_family}. *)

type dir_core

val build_directed_core : params -> dir_core

val apply_directed_inputs : dir_core -> Bits.t -> Bits.t -> Ch_graph.Digraph.t
(** Swap the previous pair's input arcs for this pair's. *)

val directed_input_arcs : params -> Bits.t -> Bits.t -> (int * int * int) list
(** The input-dependent zero-weight arcs [(u, v, w)] of a pair. *)

val directed_incremental : params -> Ch_core.Framework.incremental
(** Verdicts bit-identical to {!directed_family}. *)

val specs : Ch_core.Registry.spec list
(** Registry entries ["steiner-node-weighted"] and ["steiner-directed"],
    both incremental. *)
