open Ch_cc

(** Section 4.1: hardness of approximating MaxIS, built on Reed–Solomon
    code gadgets (Figure 4).

    Each row vertex is represented by a codeword of an
    (ℓ+t, t, ℓ+1, q) Reed–Solomon code; row j of the code gadget of a set
    S is a q-clique, cross edges (minus a perfect matching) force Alice's
    and Bob's gadget choices to agree per row, and a row vertex conflicts
    with every gadget vertex that contradicts its codeword.  Any
    independent set that picks inconsistent row indices loses at least ℓ
    gadget vertices — the code distance — which creates the 7/8 gap:

    - weighted (Thm 4.3): MWIS = 8ℓ+4t iff DISJ = FALSE, else 7ℓ+4t;
    - unweighted (Thm 4.1): rows become batches of ℓ twin vertices;
    - linear variant (Thm 4.2): A₁/B₁ are replaced by two batches v_A,
      v_B and the inputs have K = k bits; the gap is (5ℓ+2t)/(6ℓ+2t) →
      5/6. *)

type params = { k : int; ell : int; t : int; q : int }

val make_params : ?ell:int -> k:int -> unit -> params
(** t = log₂ k, ℓ defaults to t² (the paper's ℓ = c·log² k), q = the
    smallest prime exceeding ℓ+t. *)

val yes_weight : params -> int
(** 8ℓ + 4t. *)

val no_weight : params -> int
(** 7ℓ + 4t. *)

val codewords : params -> int array array
(** The injection g : [k] → C. *)

val weighted_family : params -> Ch_core.Framework.t

val unweighted_family : params -> Ch_core.Framework.t

val linear_yes_size : params -> int
(** 6ℓ + 2t. *)

val linear_family : params -> Ch_core.Framework.t
(** Input length K = k (set disjointness on singletons ⇒ Ω̃(n) bound). *)

val build_weighted : params -> Bits.t -> Bits.t -> Ch_graph.Graph.t

(** {1 Incremental verification}

    Inputs only ever add edges among the row/batch vertices (bit = 0 ⇒
    edge), so each variant conditions an independent-set table on that
    volatile set once per core ({!Ch_solvers.Cache.mwis_prepare} for the
    weighted variant, {!Ch_solvers.Cache.mis_prepare} for the other two)
    and answers every pair by scanning for the best entry compatible with
    the pair's edges. *)

type w_core

val build_weighted_core : params -> w_core

val apply_weighted_inputs : w_core -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val weighted_incremental : params -> Ch_core.Framework.incremental
(** Verdicts bit-identical to {!weighted_family}. *)

type u_core

val build_unweighted_core : params -> u_core

val apply_unweighted_inputs : u_core -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val unweighted_incremental : params -> Ch_core.Framework.incremental
(** Verdicts bit-identical to {!unweighted_family}. *)

type l_core

val build_linear_core : params -> l_core

val apply_linear_inputs : l_core -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val linear_incremental : params -> Ch_core.Framework.incremental
(** Verdicts bit-identical to {!linear_family}. *)

val specs : Ch_core.Registry.spec list
(** Registry entries ["maxis-78-weighted"], ["maxis-78-unweighted"] and
    ["maxis-56"], all incremental. *)
