open Ch_cc

(** Exact minimum weighted 2-spanner hardness, in the spirit of
    Theorem 3.4.

    The paper derives 2-spanner hardness from MVC through the reduction of
    [9], whose construction it does not spell out.  We use a hub reduction
    from the MDS family instead: add a hub z adjacent to every vertex with
    weight W > 0 on the hub edges and weight 0 on the original edges.
    Zero-weight edges always belong to an optimal 2-spanner, and then the
    hub edge (z,v) is 2-spanned exactly when \{u : (z,u) chosen\} contains
    v or a neighbor of v — so the minimum 2-spanner cost is precisely
    W·γ(G).  Applied to the Figure 1 family this gives an Ω̃(n) bound for
    exact weighted 2-spanner on general graphs (the hub inflates the cut
    to Θ(n), so the quadratic rate is not preserved; [9]'s
    degree-preserving gadget would keep Ω̃(n) on bounded-degree graphs).
    The reduction identity is property-tested on random graphs. *)

val hub_weight : k:int -> int

val target_cost : k:int -> int
(** W · (4·log k + 2). *)

val hub_reduction : Ch_graph.Graph.t -> w:int -> Ch_graph.Graph.t
(** The generic transform: a fresh hub adjacent to all, hub edges of
    weight [w], original edges re-weighted to 0. *)

val build : k:int -> Bits.t -> Bits.t -> Ch_graph.Graph.t

val family : k:int -> Ch_core.Framework.t

val specs : Ch_core.Registry.spec list
(** Registry entry ["2spanner"]. *)
