open Ch_graph

(** The generic exact CONGEST upper bound used throughout the paper: build
    a BFS tree, upcast every edge (and vertex weight) to the root over the
    tree — pipelined, one record per round per tree edge — solve the
    problem locally at the root, and broadcast the answer.  O(m + D)
    rounds with O(log n)-bit messages; with m = O(n²) this is the O(n²)
    algorithm the Section 2 lower bounds match.

    [edge_filter] restricts which of its incident edges a vertex uploads
    (used by the Theorem 2.9 sampling algorithm). *)

type msg =
  | Dist of int
  | Child
  | Edge of int * int * int
  | Vweight of int * int
  | Done
  | Answer of int

type state

val algo :
  ?edge_filter:(Network.ctx -> int * int * int -> bool) ->
  root:int ->
  f:(Graph.t -> int) ->
  unit ->
  (state, msg) Network.algo

val directed_algo :
  root:int ->
  f:(Digraph.t -> int) ->
  unit ->
  (state, msg) Network.algo
(** The gather upper bound on a directed network (run it over
    {!Network.stepper_directed} or {!Network.run_directed}): each vertex
    uploads its out-arcs with their orientation intact, the root rebuilds
    the digraph and answers f(D).  Same message vocabulary and widths as
    the undirected {!algo}. *)

val solve :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?root:int ->
  Graph.t ->
  f:(Graph.t -> int) ->
  int * Network.stats
(** Every vertex outputs f(G); the first component is that answer. *)

val solve_split :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?root:int ->
  side:bool array ->
  Graph.t ->
  f:(Graph.t -> int) ->
  int * Network.cut_stats
(** {!solve} under {!Network.run_split} bit accounting. *)

val solve_partitioned :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?root:int ->
  partition:int array ->
  Graph.t ->
  f:(Graph.t -> int) ->
  int * Network.part_stats
(** {!solve} under {!Network.run_partitioned} multicut accounting — the
    t-party reference oracle for the lockstep simulation. *)

val solve_directed :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?root:int ->
  Digraph.t ->
  f:(Digraph.t -> int) ->
  int * Network.stats
(** Every vertex outputs f(D) via {!directed_algo}. *)

val solve_directed_split :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?root:int ->
  side:bool array ->
  Digraph.t ->
  f:(Digraph.t -> int) ->
  int * Network.cut_stats
(** {!solve_directed} under two-party cut accounting. *)
