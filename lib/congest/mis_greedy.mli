open Ch_graph

(** The ID-greedy maximal independent set in CONGEST: an undecided vertex
    joins when every lower-id neighbor has decided against.  A maximal IS
    is a (Δ+1)-approximation of MaxIS — the trivial baseline against which
    the paper's Section 4 inapproximability results are measured (the best
    known CONGEST algorithms [7] reach ≈ Δ/2). *)

type state

val algo : (state, int) Network.algo
(** The raw algorithm; messages are decisions in {1, 2, 3}. *)

val run : ?seed:int -> Graph.t -> int list * Network.stats
(** The independent set found (maximal) and the round statistics. *)
