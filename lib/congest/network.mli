open Ch_graph

(** A synchronous CONGEST network simulator.

    Vertices run the same algorithm; in each round every vertex reads its
    inbox, updates its state, and sends at most one message per incident
    edge.  Message sizes are declared by the algorithm and checked against
    the bandwidth B(n) = [bandwidth_factor]·⌈log₂ n⌉ bits — the defining
    constraint of the model. *)

type ctx = {
  id : int;
  n : int;
  neighbors : int array;  (** sorted *)
  edge_weight : int -> int;  (** weight of the edge towards a neighbor *)
  vertex_weight : int;
  out_arcs : (int * int) array;
      (** on a directed network (see {!stepper_directed}): the vertex's
          out-arcs as sorted [(head, weight)] pairs — the orientation is
          local data while messages flow both ways over each arc's
          channel.  Empty on undirected networks. *)
  rng : Random.State.t;  (** private per-vertex randomness *)
}

type ('state, 'msg) algo = {
  name : string;
  init : ctx -> 'state;
  round : ctx -> round:int -> 'state -> (int * 'msg) list -> 'state * (int * 'msg) list;
      (** [round ctx ~round state inbox] returns the new state and the
          outbox as [(neighbor, message)] pairs.  The inbox lists
          [(sender, message)]. *)
  msg_bits : 'msg -> int;
  output : 'state -> int option;
      (** A vertex has terminated once its output is [Some _]. *)
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  bandwidth : int;
}

exception Bandwidth_exceeded of { algo : string; bits : int; bandwidth : int }

val bandwidth_for : ?factor:int -> int -> int
(** B(n) = factor·⌈log₂ n⌉, factor defaults to 8 (an "O(log n)-bit"
    message comfortably fits an edge id plus a weight). *)

(** {1 Stepwise execution}

    A {!stepper} runs the network one round at a time over a subset of
    the vertices (the [owns] predicate; everything by default).  This is
    the engine under {!run}/{!run_partitioned}/{!run_split}, and — with
    one partial stepper per party — under the Theorem 1.1 lockstep
    simulation in [Ch_reduction.Simulate]: a full run and any family of
    complementary partial runs execute bit-identically because they share
    this exact per-round semantics (per-vertex RNG seeded from
    [(seed, v)], inboxes delivered in ascending sender order, outbox
    validation and bandwidth checks at the sender, rounds counted per
    synchronous step). *)

type 'msg transfer = {
  t_sender : int;
  t_target : int;
  t_bits : int;  (** [algo.msg_bits t_msg], charged at the sender *)
  t_msg : 'msg;
}

type 'msg step_log = {
  log_round : int;  (** the 0-based round just executed *)
  internal : 'msg transfer list;
      (** messages delivered between owned vertices (read next round) *)
  outbound : 'msg transfer list;
      (** messages from owned vertices to unowned ones — cross traffic the
          driver must route (deliver via [step ~inject] on the peer) *)
  sent : bool;  (** some owned vertex sent this round *)
  all_output : bool;  (** every owned vertex has produced an output *)
}

type ('state, 'msg) stepper

val stepper :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?owns:(int -> bool) ->
  Graph.t ->
  ('state, 'msg) algo ->
  ('state, 'msg) stepper
(** A fresh network at round 0.  Only owned vertices are initialized and
    simulated; unowned ones exist solely as message endpoints. *)

val comm_graph : Digraph.t -> Graph.t
(** The communication graph of a directed network: the underlying
    undirected graph ({!Digraph.to_undirected} — each arc is a
    bidirectional channel, antiparallel arcs share one). *)

val stepper_directed :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?owns:(int -> bool) ->
  Digraph.t ->
  ('state, 'msg) algo ->
  ('state, 'msg) stepper
(** Like {!stepper}, over a directed network: vertices communicate on
    {!comm_graph} while each [ctx.out_arcs] carries the vertex's local
    orientation, so an algorithm can upload or route along arcs. *)

val step : ?inject:'msg transfer list -> ('state, 'msg) stepper -> 'msg step_log
(** Execute one synchronous round: deliver [inject] (cross messages the
    peer emitted last round; targets must be owned), run every owned
    vertex on its inbox, validate and deliver the outboxes.  Messages to
    unowned targets are returned in [outbound] instead of delivered, but
    are validated, counted and bandwidth-checked exactly like internal
    ones. *)

val stepper_round : ('state, 'msg) stepper -> int
(** Rounds executed so far. *)

val stepper_bandwidth : ('state, 'msg) stepper -> int

val stepper_owns : ('state, 'msg) stepper -> int -> bool

val stepper_output : ('state, 'msg) stepper -> int -> int option
(** Output of an owned vertex.  @raise Invalid_argument when unowned. *)

val stepper_all_output : ('state, 'msg) stepper -> bool

val stepper_stats : ('state, 'msg) stepper -> stats
(** Counters over messages {e sent} by owned vertices (internal and
    outbound); for a full stepper this equals the {!run} stats. *)

val default_max_rounds : Graph.t -> int
(** The [20·n + 10·m + 100] divergence guard {!run} uses by default. *)

(** {1 Whole-network runs} *)

val run :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  Graph.t ->
  ('state, 'msg) algo ->
  'state array * stats
(** Runs until every vertex has produced an output and no message is in
    flight, or [max_rounds] (default {!default_max_rounds}) elapses —
    exceeding it raises [Failure]. *)

val run_directed :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  Digraph.t ->
  ('state, 'msg) algo ->
  'state array * stats
(** {!run} over {!stepper_directed}. *)

(** {1 Partitioned runs}

    The t-party generalization of the Alice/Bob split: a partition
    assigns every vertex a part id in [0..t-1]; the network is executed
    as t lockstep partial steppers, one per part, and every message
    crossing parts is accounted against its ordered (sender part,
    target part) pair.  The t=2 instance is exactly {!run_split}. *)

val partition_of_side : bool array -> int array
(** The 2-part partition of a [side] array: [true] (Alice) is part 0,
    [false] (Bob) part 1. *)

val partition_parts : int array -> int
(** The number of parts t of a partition, validating that part ids are
    non-negative and every part in [0..t-1] is inhabited.
    @raise Invalid_argument on an empty part or a negative id. *)

type part_stats = {
  p_parts : int;
  p_stats : stats;  (** merged over the parts; equals the {!run} stats *)
  p_cross_bits : int;  (** total bits crossing the multicut *)
  p_cross_messages : int;
  p_pair_bits : int array array;
      (** [p_pair_bits.(p).(q)] = bits sent from part p to part q *)
  p_pair_messages : int array array;
}

val run_partitioned :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  partition:int array ->
  Graph.t ->
  ('state, 'msg) algo ->
  'state array * part_stats
(** Run the network as one partial stepper per part, bit-identical to
    {!run} (states, rounds, message volumes), with per-part-pair cross
    traffic accounting.
    @raise Invalid_argument on an invalid partition (see
    {!partition_parts}). *)

val run_directed_partitioned :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  partition:int array ->
  Digraph.t ->
  ('state, 'msg) algo ->
  'state array * part_stats
(** {!run_partitioned} over {!stepper_directed}. *)

type cut_stats = { stats : stats; cut_bits : int; cut_messages : int }

val run_split :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  side:bool array ->
  Graph.t ->
  ('state, 'msg) algo ->
  'state array * cut_stats
(** Like {!run} but also counts the bits carried by messages crossing the
    [side] partition — exactly what Alice and Bob must exchange to
    simulate the algorithm in the Theorem 1.1 reduction.  A thin wrapper
    over {!run_partitioned} at t=2 via {!partition_of_side}. *)

val run_directed_split :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  side:bool array ->
  Digraph.t ->
  ('state, 'msg) algo ->
  'state array * cut_stats
(** {!run_split} over {!stepper_directed} — the two-party split of a
    directed construction (Hamiltonian families). *)
