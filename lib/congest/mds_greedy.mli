open Ch_graph

(** The classic sequential-greedy dominating set algorithm run as a
    CONGEST protocol: in each phase the globally best (coverage, id)
    candidate is elected over a BFS tree and joins the dominating set.
    Gives the H(Δ+1) = O(log Δ) approximation the paper's Section 2.1
    cites as the state of the art for MDS, at an O(|D|·n) round cost
    (this is the simple baseline, not the polylog-round algorithms
    of [26,33,34]). *)

type msg =
  | Dist of int
  | Status of bool  (** dominated? *)
  | Cand of int * int  (** best (coverage, id) seen in subtree / from root *)
  | Winner of int * int  (** (winner id, its coverage); coverage 0 = stop *)
  | Joined

type state

val algo : n:int -> (state, msg) Network.algo
(** The raw algorithm, exposed for simulation and codec tests. *)

val run : ?seed:int -> Graph.t -> int list * Network.stats
(** The dominating set found and the round statistics. *)
