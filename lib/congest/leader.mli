open Ch_graph

(** Leader election by min-id flooding; every vertex learns the smallest
    id after (at most) n rounds, the classic O(n) baseline the paper's
    Theorem 2.9 proof allows itself. *)

type state

val algo : n:int -> (state, int) Network.algo
(** The raw algorithm; messages are candidate leader ids in [0, n). *)

val run : Graph.t -> int array * Network.stats
(** Per-vertex elected leader (all equal on connected graphs). *)
