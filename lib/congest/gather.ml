open Ch_graph

type msg =
  | Dist of int
  | Child
  | Edge of int * int * int
  | Vweight of int * int
  | Done
  | Answer of int

type state = {
  dist : int option;
  announced : bool;
  parent : int;
  children : int list;
  queue : msg list;
  pending_children : int;
  done_sent : bool;
  collected : msg list;
  answer : int option;
  answer_forwarded : bool;
}

let initial ~root ctx =
  {
    dist = (if ctx.Network.id = root then Some 0 else None);
    announced = false;
    parent = -1;
    children = [];
    queue = [];
    pending_children = 0;
    done_sent = false;
    collected = [];
    answer = None;
    answer_forwarded = false;
  }

let own_records ?edge_filter ctx =
  let v = ctx.Network.id in
  let edges =
    Array.to_list ctx.Network.neighbors
    |> List.filter (fun u -> v < u)
    |> List.map (fun u -> (v, u, ctx.Network.edge_weight u))
  in
  let edges =
    match edge_filter with
    | Some keep -> List.filter (keep ctx) edges
    | None -> edges
  in
  Vweight (v, ctx.Network.vertex_weight)
  :: List.map (fun (u, w, wt) -> Edge (u, w, wt)) edges

(* On a directed network a vertex uploads its out-arcs instead: the
   [Edge] record keeps its (tail, head) orientation, so the root can
   rebuild the digraph from the same message vocabulary (and the same
   codec) as the undirected gather. *)
let own_arc_records ctx =
  let v = ctx.Network.id in
  Vweight (v, ctx.Network.vertex_weight)
  :: (Array.to_list ctx.Network.out_arcs
     |> List.map (fun (u, w) -> Edge (v, u, w)))

let reconstruct ~n records =
  let g = Graph.create n in
  List.iter
    (function
      | Vweight (v, w) -> Graph.set_vweight g v w
      | Edge (u, v, w) -> Graph.add_edge ~w g u v
      | Dist _ | Child | Done | Answer _ -> assert false)
    records;
  g

let reconstruct_digraph ~n records =
  let dg = Digraph.create n in
  List.iter
    (function
      | Vweight (v, w) -> Digraph.set_vweight dg v w
      | Edge (u, v, w) -> Digraph.add_arc ~w dg u v
      | Dist _ | Child | Done | Answer _ -> assert false)
    records;
  dg

let algo_gen ~records ~answer_of ~root () : (state, msg) Network.algo =
  {
    name = "gather";
    init = initial ~root;
    round =
      (fun ctx ~round st inbox ->
        let n = ctx.Network.n in
        let is_root = ctx.Network.id = root in
        if round < n then begin
          (* phase 1: BFS flooding *)
          let st =
            match st.dist with
            | Some _ -> st
            | None -> (
                let dists =
                  List.filter_map
                    (function s, Dist d -> Some (s, d) | _ -> None)
                    inbox
                in
                match List.sort (fun (_, a) (_, b) -> compare a b) dists with
                | (sender, d) :: _ ->
                    { st with dist = Some (d + 1); parent = sender }
                | [] -> st)
          in
          match st.dist with
          | Some d when not st.announced ->
              ( { st with announced = true },
                Array.to_list
                  (Array.map (fun u -> (u, Dist d)) ctx.Network.neighbors) )
          | _ -> (st, [])
        end
        else if round = n then begin
          (* phase 2: children discovery + queue initialization *)
          let records = records ctx in
          let st =
            if is_root then { st with collected = records }
            else { st with queue = records }
          in
          if is_root || st.parent < 0 then (st, [])
          else (st, [ (st.parent, Child) ])
        end
        else begin
          (* phase 3: pipelined upcast, then answer broadcast *)
          let st =
            List.fold_left
              (fun st (sender, msg) ->
                match msg with
                | Child ->
                    {
                      st with
                      children = sender :: st.children;
                      pending_children = st.pending_children + 1;
                    }
                | Edge _ | Vweight _ ->
                    if is_root then { st with collected = msg :: st.collected }
                    else { st with queue = st.queue @ [ msg ] }
                | Done -> { st with pending_children = st.pending_children - 1 }
                | Answer a -> { st with answer = Some a }
                | Dist _ -> st)
              st inbox
          in
          if is_root then begin
            match st.answer with
            | Some a when not st.answer_forwarded ->
                ( { st with answer_forwarded = true },
                  List.map (fun c -> (c, Answer a)) st.children )
            | Some _ -> (st, [])
            | None ->
                (* children report Done only after round n+1, so waiting one
                   extra round for Child messages is safe *)
                if round > n + 1 && st.pending_children = 0 then begin
                  let a = answer_of ~n st.collected in
                  ({ st with answer = Some a }, [])
                end
                else (st, [])
          end
          else begin
            match st.answer with
            | Some a when not st.answer_forwarded ->
                ( { st with answer_forwarded = true },
                  List.map (fun c -> (c, Answer a)) st.children )
            | Some _ -> (st, [])
            | None -> (
                match st.queue with
                | record :: rest -> ({ st with queue = rest }, [ (st.parent, record) ])
                | [] ->
                    if
                      round > n + 1
                      && st.pending_children = 0
                      && not st.done_sent
                    then ({ st with done_sent = true }, [ (st.parent, Done) ])
                    else (st, []))
          end
        end);
    msg_bits =
      (fun msg ->
        match msg with
        | Dist d -> 3 + Encode.int_bits ~max:(max 1 d)
        | Child | Done -> 3
        | Edge (u, v, w) ->
            3 + Encode.int_bits ~max:(max u v) * 2 + Encode.int_bits ~max:(max 1 w)
        | Vweight (v, w) ->
            3 + Encode.int_bits ~max:(max 1 v) + Encode.int_bits ~max:(max 1 w)
        | Answer a -> 3 + Encode.int_bits ~max:(max 1 (abs a)));
    output = (fun st -> st.answer);
  }

let algo ?edge_filter ~root ~f () =
  algo_gen
    ~records:(own_records ?edge_filter)
    ~answer_of:(fun ~n records -> f (reconstruct ~n records))
    ~root ()

let directed_algo ~root ~f () =
  algo_gen ~records:own_arc_records
    ~answer_of:(fun ~n records -> f (reconstruct_digraph ~n records))
    ~root ()

let solve ?seed ?bandwidth_factor ?(root = 0) g ~f =
  let states, stats =
    Network.run ?seed ?bandwidth_factor g (algo ~root ~f ())
  in
  let answer = Option.get states.(root).answer in
  Array.iter (fun st -> assert (st.answer = Some answer)) states;
  (answer, stats)

let solve_split ?seed ?bandwidth_factor ?(root = 0) ~side g ~f =
  let states, cut_stats =
    Network.run_split ?seed ?bandwidth_factor ~side g (algo ~root ~f ())
  in
  (Option.get states.(root).answer, cut_stats)

let solve_partitioned ?seed ?bandwidth_factor ?(root = 0) ~partition g ~f =
  let states, part_stats =
    Network.run_partitioned ?seed ?bandwidth_factor ~partition g
      (algo ~root ~f ())
  in
  (Option.get states.(root).answer, part_stats)

let solve_directed ?seed ?bandwidth_factor ?(root = 0) dg ~f =
  let states, stats =
    Network.run_directed ?seed ?bandwidth_factor dg (directed_algo ~root ~f ())
  in
  let answer = Option.get states.(root).answer in
  Array.iter (fun st -> assert (st.answer = Some answer)) states;
  (answer, stats)

let solve_directed_split ?seed ?bandwidth_factor ?(root = 0) ~side dg ~f =
  let states, cut_stats =
    Network.run_directed_split ?seed ?bandwidth_factor ~side dg
      (directed_algo ~root ~f ())
  in
  (Option.get states.(root).answer, cut_stats)
