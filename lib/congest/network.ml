open Ch_graph
module Obs = Ch_obs.Obs

(* Per-round traffic accounting in the spirit of the paper's Theorem 1.1
   budget line: every simulated round bumps the round counter and adds
   its message/bit volume to the totals and the per-round histograms. *)
let c_rounds = Obs.counter "congest.rounds"
let c_messages = Obs.counter "congest.messages"
let c_bits = Obs.counter "congest.bits"
let h_round_messages = Obs.histogram "congest.round_messages"
let h_round_bits = Obs.histogram "congest.round_bits"

type ctx = {
  id : int;
  n : int;
  neighbors : int array;
  edge_weight : int -> int;
  vertex_weight : int;
  out_arcs : (int * int) array;
  rng : Random.State.t;
}

type ('state, 'msg) algo = {
  name : string;
  init : ctx -> 'state;
  round : ctx -> round:int -> 'state -> (int * 'msg) list -> 'state * (int * 'msg) list;
  msg_bits : 'msg -> int;
  output : 'state -> int option;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  bandwidth : int;
}

exception Bandwidth_exceeded of { algo : string; bits : int; bandwidth : int }

let bandwidth_for ?(factor = 8) n =
  let rec log2_ceil acc v = if v <= 1 then max acc 1 else log2_ceil (acc + 1) ((v + 1) / 2) in
  factor * log2_ceil 0 n

let make_ctxs ?(seed = 0) ?(out_arcs = fun _ -> [||]) g =
  Array.init (Graph.n g) (fun v ->
      {
        id = v;
        n = Graph.n g;
        neighbors = Array.of_list (Graph.neighbors g v);
        edge_weight = (fun u -> Graph.edge_weight g v u);
        vertex_weight = Graph.vweight g v;
        out_arcs = out_arcs v;
        rng = Random.State.make [| seed; v |];
      })

(* ---- stepwise execution --------------------------------------------- *)

type 'msg transfer = { t_sender : int; t_target : int; t_bits : int; t_msg : 'msg }

type 'msg step_log = {
  log_round : int;
  internal : 'msg transfer list;
  outbound : 'msg transfer list;
  sent : bool;
  all_output : bool;
}

type ('state, 'msg) stepper = {
  sp_g : Graph.t;
  sp_algo : ('state, 'msg) algo;
  sp_owns : bool array;
  sp_ctxs : ctx array;
  sp_states : 'state option array;  (* Some exactly on owned vertices *)
  sp_inboxes : (int * 'msg) list array;
  sp_bandwidth : int;
  mutable sp_round : int;
  mutable sp_messages : int;
  mutable sp_total_bits : int;
  mutable sp_max_bits : int;
}

let stepper_gen ?seed ?bandwidth_factor ?owns ~out_arcs g algo =
  let n = Graph.n g in
  let owns =
    match owns with Some f -> Array.init n f | None -> Array.make n true
  in
  let ctxs = make_ctxs ?seed ~out_arcs g in
  {
    sp_g = g;
    sp_algo = algo;
    sp_owns = owns;
    sp_ctxs = ctxs;
    sp_states =
      Array.init n (fun v -> if owns.(v) then Some (algo.init ctxs.(v)) else None);
    sp_inboxes = Array.make n [];
    sp_bandwidth = bandwidth_for ?factor:bandwidth_factor n;
    sp_round = 0;
    sp_messages = 0;
    sp_total_bits = 0;
    sp_max_bits = 0;
  }

let stepper ?seed ?bandwidth_factor ?owns g algo =
  stepper_gen ?seed ?bandwidth_factor ?owns ~out_arcs:(fun _ -> [||]) g algo

(* A digraph network communicates over its underlying undirected graph
   (an arc is a channel in both directions, as in the paper's directed
   constructions); the orientation itself is data, exposed to each
   vertex as its sorted out-arc list. *)
let comm_graph dg = Digraph.to_undirected dg

let stepper_directed ?seed ?bandwidth_factor ?owns dg algo =
  stepper_gen ?seed ?bandwidth_factor ?owns
    ~out_arcs:(fun v -> Array.of_list (Digraph.succ_w dg v))
    (comm_graph dg) algo

let stepper_round t = t.sp_round

let stepper_bandwidth t = t.sp_bandwidth

let stepper_owns t v = t.sp_owns.(v)

let owned_state t v =
  match t.sp_states.(v) with
  | Some st -> st
  | None -> invalid_arg "Network.stepper: vertex not owned"

let stepper_output t v = t.sp_algo.output (owned_state t v)

let stepper_all_output t =
  let ok = ref true in
  Array.iteri
    (fun v owned -> if owned && t.sp_algo.output (owned_state t v) = None then ok := false)
    t.sp_owns;
  !ok

let stepper_stats t =
  {
    rounds = t.sp_round;
    messages = t.sp_messages;
    total_bits = t.sp_total_bits;
    max_message_bits = t.sp_max_bits;
    bandwidth = t.sp_bandwidth;
  }

let step ?(inject = []) t =
  let algo = t.sp_algo and g = t.sp_g in
  let n = Graph.n g in
  List.iter
    (fun tr ->
      if tr.t_target < 0 || tr.t_target >= n || not t.sp_owns.(tr.t_target) then
        invalid_arg "Network.step: injected message targets an unowned vertex";
      t.sp_inboxes.(tr.t_target) <- (tr.t_sender, tr.t_msg) :: t.sp_inboxes.(tr.t_target))
    inject;
  let round = t.sp_round in
  let messages0 = t.sp_messages and bits0 = t.sp_total_bits in
  let outboxes = Array.make n [] in
  for v = 0 to n - 1 do
    if t.sp_owns.(v) then begin
      (* ascending sender order: at most one message per (directed) edge
         per round, so this reproduces the full run's delivery order even
         when injected cross messages interleave with internal ones *)
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) t.sp_inboxes.(v) in
      t.sp_inboxes.(v) <- [];
      let state', outbox = algo.round t.sp_ctxs.(v) ~round (owned_state t v) inbox in
      t.sp_states.(v) <- Some state';
      List.iter
        (fun (target, _) ->
          if not (Graph.mem_edge g v target) then
            failwith
              (Printf.sprintf
                 "Network.run: %S sent %d -> %d but they are not adjacent"
                 algo.name v target))
        outbox;
      let targets = List.map fst outbox in
      if List.length (List.sort_uniq compare targets) <> List.length targets then
        failwith
          (Printf.sprintf "Network.run: %S sent two messages on one edge" algo.name);
      outboxes.(v) <- outbox
    end
  done;
  let internal = ref [] and outbound = ref [] in
  Array.iteri
    (fun sender outbox ->
      List.iter
        (fun (target, msg) ->
          let bits = algo.msg_bits msg in
          if bits > t.sp_bandwidth then
            raise
              (Bandwidth_exceeded
                 { algo = algo.name; bits; bandwidth = t.sp_bandwidth });
          t.sp_messages <- t.sp_messages + 1;
          t.sp_total_bits <- t.sp_total_bits + bits;
          t.sp_max_bits <- max t.sp_max_bits bits;
          let tr = { t_sender = sender; t_target = target; t_bits = bits; t_msg = msg } in
          if t.sp_owns.(target) then begin
            t.sp_inboxes.(target) <- (sender, msg) :: t.sp_inboxes.(target);
            internal := tr :: !internal
          end
          else outbound := tr :: !outbound)
        outbox)
    outboxes;
  t.sp_round <- round + 1;
  Obs.bump c_rounds;
  Obs.incr c_messages (t.sp_messages - messages0);
  Obs.incr c_bits (t.sp_total_bits - bits0);
  Obs.observe h_round_messages (t.sp_messages - messages0);
  Obs.observe h_round_bits (t.sp_total_bits - bits0);
  let internal = List.rev !internal and outbound = List.rev !outbound in
  {
    log_round = round;
    internal;
    outbound;
    sent = internal <> [] || outbound <> [];
    all_output = stepper_all_output t;
  }

let default_max_rounds g = (20 * Graph.n g) + (10 * Graph.m g) + 100

(* ---- whole-network runs, rebuilt on the stepper ---------------------- *)

let run_internal ?max_rounds ~on_message t =
  let algo = t.sp_algo in
  let max_rounds =
    match max_rounds with Some r -> r | None -> default_max_rounds t.sp_g
  in
  let quiescent = ref false in
  while (not !quiescent) || not (stepper_all_output t) do
    if t.sp_round > max_rounds then
      failwith
        (Printf.sprintf "Network.run: algorithm %S did not terminate in %d rounds"
           algo.name max_rounds);
    let log = step t in
    List.iter
      (fun tr -> on_message ~sender:tr.t_sender ~target:tr.t_target ~bits:tr.t_bits)
      log.internal;
    quiescent := not log.sent
  done;
  (Array.map (fun s -> Option.get s) t.sp_states, stepper_stats t)

let run ?seed ?bandwidth_factor ?max_rounds g algo =
  run_internal ?max_rounds
    ~on_message:(fun ~sender:_ ~target:_ ~bits:_ -> ())
    (stepper ?seed ?bandwidth_factor g algo)

let run_directed ?seed ?bandwidth_factor ?max_rounds dg algo =
  run_internal ?max_rounds
    ~on_message:(fun ~sender:_ ~target:_ ~bits:_ -> ())
    (stepper_directed ?seed ?bandwidth_factor dg algo)

(* ---- partitioned runs: one partial stepper per part ------------------ *)

let partition_of_side side = Array.map (fun s -> if s then 0 else 1) side

let partition_parts partition =
  if Array.length partition = 0 then
    invalid_arg "Network.partition: empty vertex set";
  let t = Array.fold_left (fun acc p -> max acc (p + 1)) 0 partition in
  Array.iter
    (fun p -> if p < 0 then invalid_arg "Network.partition: negative part id")
    partition;
  let sizes = Array.make t 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) partition;
  Array.iteri
    (fun p c ->
      if c = 0 then
        invalid_arg (Printf.sprintf "Network.partition: part %d is empty" p))
    sizes;
  t

type part_stats = {
  p_parts : int;
  p_stats : stats;
  p_cross_bits : int;
  p_cross_messages : int;
  p_pair_bits : int array array;
  p_pair_messages : int array array;
}

(* The generic engine: [steppers.(p)] simulates part [p]; cross-part
   transfers are re-injected into the target part at the next step, so
   the t half-runs reproduce the full run's delivery schedule exactly
   (inboxes are sorted by sender, so injection order is immaterial). *)
let run_partitioned_steppers ?max_rounds ~partition steppers =
  let t = Array.length steppers in
  let g = steppers.(0).sp_g in
  let max_rounds =
    match max_rounds with Some r -> r | None -> default_max_rounds g
  in
  let pair_bits = Array.make_matrix t t 0 in
  let pair_messages = Array.make_matrix t t 0 in
  let cross_bits = ref 0 and cross_messages = ref 0 in
  let inject = Array.make t [] in
  let quiescent = ref false in
  let all_output () = Array.for_all stepper_all_output steppers in
  while (not !quiescent) || not (all_output ()) do
    if steppers.(0).sp_round > max_rounds then
      failwith
        (Printf.sprintf "Network.run: algorithm %S did not terminate in %d rounds"
           steppers.(0).sp_algo.name max_rounds);
    let sent = ref false in
    let logs =
      Array.mapi
        (fun p sp ->
          let log = step ~inject:inject.(p) sp in
          inject.(p) <- [];
          if log.sent then sent := true;
          log)
        steppers
    in
    Array.iteri
      (fun p log ->
        List.iter
          (fun tr ->
            let q = partition.(tr.t_target) in
            pair_bits.(p).(q) <- pair_bits.(p).(q) + tr.t_bits;
            pair_messages.(p).(q) <- pair_messages.(p).(q) + 1;
            cross_bits := !cross_bits + tr.t_bits;
            incr cross_messages;
            inject.(q) <- tr :: inject.(q))
          log.outbound)
      logs;
    quiescent := not !sent
  done;
  let n = Graph.n g in
  let states =
    Array.init n (fun v -> Option.get steppers.(partition.(v)).sp_states.(v))
  in
  let merged =
    Array.fold_left
      (fun acc sp ->
        let s = stepper_stats sp in
        {
          acc with
          messages = acc.messages + s.messages;
          total_bits = acc.total_bits + s.total_bits;
          max_message_bits = max acc.max_message_bits s.max_message_bits;
        })
      {
        rounds = steppers.(0).sp_round;
        messages = 0;
        total_bits = 0;
        max_message_bits = 0;
        bandwidth = steppers.(0).sp_bandwidth;
      }
      steppers
  in
  {
    p_parts = t;
    p_stats = merged;
    p_cross_bits = !cross_bits;
    p_cross_messages = !cross_messages;
    p_pair_bits = pair_bits;
    p_pair_messages = pair_messages;
  }
  |> fun ps -> (states, ps)

let check_partition ~who ~n partition =
  if Array.length partition <> n then
    invalid_arg (Printf.sprintf "Network.%s: partition length" who);
  partition_parts partition

let run_partitioned ?seed ?bandwidth_factor ?max_rounds ~partition g algo =
  let t = check_partition ~who:"run_partitioned" ~n:(Graph.n g) partition in
  let steppers =
    Array.init t (fun p ->
        stepper ?seed ?bandwidth_factor ~owns:(fun v -> partition.(v) = p) g algo)
  in
  run_partitioned_steppers ?max_rounds ~partition steppers

let run_directed_partitioned ?seed ?bandwidth_factor ?max_rounds ~partition dg
    algo =
  let t =
    check_partition ~who:"run_directed_partitioned" ~n:(Digraph.n dg) partition
  in
  let steppers =
    Array.init t (fun p ->
        stepper_directed ?seed ?bandwidth_factor
          ~owns:(fun v -> partition.(v) = p)
          dg algo)
  in
  run_partitioned_steppers ?max_rounds ~partition steppers

type cut_stats = { stats : stats; cut_bits : int; cut_messages : int }

let cut_of_part_stats (states, ps) =
  ( states,
    {
      stats = ps.p_stats;
      cut_bits = ps.p_cross_bits;
      cut_messages = ps.p_cross_messages;
    } )

let run_split ?seed ?bandwidth_factor ?max_rounds ~side g algo =
  if Array.length side <> Graph.n g then invalid_arg "Network.run_split: side length";
  cut_of_part_stats
    (run_partitioned ?seed ?bandwidth_factor ?max_rounds
       ~partition:(partition_of_side side) g algo)

let run_directed_split ?seed ?bandwidth_factor ?max_rounds ~side dg algo =
  if Array.length side <> Digraph.n dg then
    invalid_arg "Network.run_directed_split: side length";
  cut_of_part_stats
    (run_directed_partitioned ?seed ?bandwidth_factor ?max_rounds
       ~partition:(partition_of_side side) dg algo)
