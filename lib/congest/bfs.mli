open Ch_graph

(** Distributed BFS-tree construction from a root by flooding: the
    textbook O(D)-round CONGEST primitive. *)

type result = { dist : int array; parent : int array (* -1 at the root *) }

type state

val algo : root:int -> n:int -> (state, int) Network.algo
(** The raw algorithm; messages are distances in [0, n). *)

val run : ?root:int -> Graph.t -> result * Network.stats
(** @raise Failure on disconnected graphs (some vertex never terminates). *)
