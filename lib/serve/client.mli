(** The serve client: blocking request/response over one connection.

    Thin by design — framing and codecs live in {!Protocol}; this module
    owns only the socket lifecycle (connect with retry, roundtrip,
    close), shared by [hardness client], the bench's cold/warm pairs and
    the concurrent-client tests. *)

type t

val connect : ?retries:int -> Server.addr -> t
(** Connect to a daemon.  [retries] (default 0) retries at 100ms
    intervals while the socket is absent or refusing — the smoke
    scripts race daemon startup.  @raise Unix.Unix_error when the
    last attempt fails. *)

val roundtrip : t -> Protocol.request list -> Protocol.response list
(** Send one batch, wait for its response frame.
    @raise Protocol.Protocol_error on a torn or oversized response, and
    [Failure] on an undecodable one. *)

val close : t -> unit
