type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- render *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    invalid_arg "Jsonx.to_string: nan/infinity";
  let s = Printf.sprintf "%.17g" f in
  (* keep Float distinct from Int on the wire: force a decimal point *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ----------------------------------------------------------------- parse *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    (* encode one Unicode scalar value *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               let cp =
                 (* surrogate pair: a high surrogate must be followed by
                    an escaped low surrogate *)
                 if cp >= 0xd800 && cp <= 0xdbff then begin
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xdc00 || lo > 0xdfff then
                       fail "bad low surrogate"
                     else 0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                   end
                   else fail "lone high surrogate"
                 end
                 else if cp >= 0xdc00 && cp <= 0xdfff then
                   fail "lone low surrogate"
                 else cp
               in
               add_utf8 buf cp
           | _ -> fail "bad escape");
          loop ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (off, msg) ->
      Error (Printf.sprintf "at byte %d: %s" off msg)

(* ------------------------------------------------------------- accessors *)

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let as_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let as_str = function Str s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_arr = function Arr xs -> Some xs | _ -> None
