(* Prometheus-style text exposition of the live Obs registry.

   Counters render as monotone counters, histograms as summaries with
   p50/p90/p99 quantile lines computed from the log2 buckets —
   windowed over the sampler's retained ring when a Series with at
   least two samples is supplied (so the quantiles answer "right now",
   not "since boot"), cumulative otherwise.  _count/_sum stay
   cumulative, per the usual summary convention.  Everything else the
   daemon wants visible (queue depths, warm entries, req/s) comes in as
   explicit gauges. *)

module Obs = Ch_obs.Obs

(* metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* — dots and dashes
   from obs names (cache.mds-k2.builds) map to underscores *)
let sanitize_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  let b = Buffer.create (String.length s + 1) in
  String.iteri
    (fun i c ->
      if i = 0 && not (ok_first c) then begin
        Buffer.add_char b '_';
        if ok c then Buffer.add_char b c
      end
      else Buffer.add_char b (if ok c then c else '_'))
    s;
  if Buffer.length b = 0 then "_" else Buffer.contents b

(* label values escape backslash, double quote and newline *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_str = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                 (escape_label_value v))
             ls)
      ^ "}"

let line b name labels value =
  Buffer.add_string b (sanitize_name name);
  Buffer.add_string b (labels_str labels);
  Buffer.add_char b ' ';
  Buffer.add_string b value;
  Buffer.add_char b '\n'

let typ b name kind =
  Buffer.add_string b
    (Printf.sprintf "# TYPE %s %s\n" (sanitize_name name) kind)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_value : float;
}

let gauge ?(labels = []) name value =
  { g_name = name; g_labels = labels; g_value = value }

let prefix = "ch_"

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

let render ?(gauges = []) ?series (r : Obs.report) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let m = prefix ^ name in
      typ b m "counter";
      line b m [] (string_of_int v))
    r.Obs.r_counters;
  List.iter
    (fun (h : Obs.hist_report) ->
      let m = prefix ^ h.Obs.h_name in
      typ b m "summary";
      (* quantiles from the sampler window when one is live *)
      let qh =
        match series with
        | Some s -> (
            match Obs.Series.hist_delta s h.Obs.h_name with
            | Some d when d.Obs.h_count > 0 -> d
            | _ -> h)
        | None -> h
      in
      List.iter
        (fun (qs, q) ->
          line b m
            [ ("quantile", qs) ]
            (string_of_int (Obs.quantile qh q)))
        quantiles;
      line b (m ^ "_sum") [] (string_of_int h.Obs.h_sum);
      line b (m ^ "_count") [] (string_of_int h.Obs.h_count))
    r.Obs.r_hists;
  (* one TYPE line per gauge family, then every labeled sample *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let m = prefix ^ g.g_name in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        typ b m "gauge"
      end;
      line b m g.g_labels (float_str g.g_value))
    gauges;
  Buffer.contents b
