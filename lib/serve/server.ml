(* no [open Ch_cc]: it exports its own [Protocol], which would shadow
   the serve wire protocol *)
module Bits = Ch_cc.Bits
module Framework = Ch_core.Framework
module Registry = Ch_core.Registry
module Families = Ch_lbgraphs.Families
module Bound = Ch_reduction.Bound
module Shard = Ch_sweep.Shard
module Sweep = Ch_sweep.Sweep
module Store = Ch_sweep.Store
module Obs = Ch_obs.Obs
open Protocol

let c_requests = Obs.counter "serve.requests"
let c_warm_hits = Obs.counter "serve.requests.warm"
let c_overloaded = Obs.counter "serve.requests.overloaded"
let c_deadline = Obs.counter "serve.requests.deadline"
let c_errors = Obs.counter "serve.requests.errors"
let sp_request = Obs.span "serve_request"

(* queue wait and per-op service time land in separate histograms so the
   exposition can answer "is latency the queue or the work" *)
let h_queue_wait = Obs.histogram "serve.queue.wait_us"
let h_queue_depth = Obs.histogram "serve.queue.depth"

let op_tags =
  [
    "ping"; "catalog"; "stats"; "metrics"; "health"; "verify"; "simulate";
    "reduction"; "sweep-status";
  ]

(* pre-interned per-op service-time histograms: interning takes the
   registry mutex, which has no place on the request path *)
let op_hists =
  List.map (fun tag -> (tag, Obs.histogram ("serve.op." ^ tag ^ ".us"))) op_tags

let op_hist tag = List.assoc tag op_hists

type addr = Unix_socket of string | Tcp of int

type config = {
  cfg_addr : addr;
  cfg_workers : int;
  cfg_queue_depth : int;
  cfg_store_dir : string option;
  cfg_obs_out : string option;
  cfg_sample_period_s : float;
}

type t = {
  cfg : config;
  warm : Warm.t;
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  conns : (Unix.file_descr * Thread.t) list ref;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  obs_oc : out_channel option;
  mutable stopped : bool;
  stop_lock : Mutex.t;
  series : Obs.Series.t;
  started_ns : int64;
  mutable sampler_thread : Thread.t option;
}

let warm t = t.warm

(* control-flow exception inside [exec]: an op-level error with a code *)
exception Err of error_code * string

(* ------------------------------------------------------------------ ops *)

let find_spec name =
  match Registry.find (Families.catalog ()) name with
  | Some s -> s
  | None ->
      raise
        (Err
           ( Unknown_family,
             Registry.unknown_id_message (Families.catalog ()) name ))

let shard_mode = function
  | Exhaustive -> Shard.Exhaustive
  | Sampled { seed; samples } -> Shard.Sampled { seed; samples }

let vmode_body = function
  | Exhaustive -> Jsonx.Str "exhaustive"
  | Sampled { seed; samples } ->
      Jsonx.Obj [ ("seed", Jsonx.Int seed); ("samples", Jsonx.Int samples) ]

(* The incremental sampled trace: Framework has no sampled_verdicts_inc,
   so replay the documented sample-index space through one prepared
   instance — bit-identical to [Framework.sampled_verdicts] of the
   scratch family by the [pverdict] contract. *)
let sampled_verdicts_inc inc ~seed ~samples =
  let prep = inc.Framework.prepare () in
  Array.init (samples + 4) (fun i ->
      let x, y = Framework.random_pair_at inc.Framework.scratch ~seed i in
      prep.Framework.pverdict x y)

let verify_body fam ~k ~vmode ~engine_used ~(cached : Warm.cached) ~source =
  (* per-family throughput counter; every verify path (memory, store,
     computed) lands here.  Interning per request is off the per-pair
     hot path and the registry dedups by name. *)
  Obs.incr
    (Obs.counter ("serve.family." ^ fam.Framework.name ^ ".pairs"))
    (Array.length cached.Warm.c_verdicts);
  let lb =
    Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
      ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
  in
  Jsonx.Obj
    [
      ("family", Jsonx.Str fam.Framework.name);
      ("k", Jsonx.Int k);
      ("engine", Jsonx.Str engine_used);
      ("mode", vmode_body vmode);
      ("pairs", Jsonx.Int (Array.length cached.Warm.c_verdicts));
      ("failures", Jsonx.Int cached.Warm.c_failures);
      ("sided", Jsonx.Bool cached.Warm.c_sided);
      ("digest", Jsonx.Str cached.Warm.c_digest);
      ("lb_rounds", Jsonx.Float lb);
      ("source", Jsonx.Str source);
    ]

(* Derive the cached record from a raw verdict stream: failure count
   against f, the Definition 1.1 sidedness spot-check (the same seeds the
   verify CLI uses), and the stream digest. *)
let derive fam ~mode verdicts =
  let gen = Shard.generator fam mode in
  let failures = ref 0 in
  Array.iteri
    (fun p v ->
      let x, y = gen p in
      if v <> fam.Framework.f x y then incr failures)
    verdicts;
  {
    Warm.c_verdicts = verdicts;
    c_failures = !failures;
    c_sided = Framework.check_sidedness ~seed:3 ~samples:8 fam;
    c_digest = Sweep.digest verdicts;
  }

let exec_verify t ~family ~k ~vmode ~engine =
  let spec = find_spec family in
  let fam = spec.Registry.scratch k in
  let mode = shard_mode vmode in
  let key = Warm.key fam ~mode in
  match Warm.find t.warm ~key with
  | Some cached ->
      (true, verify_body fam ~k ~vmode ~engine_used:"cache" ~cached ~source:"memory")
  | None -> (
      let total = Shard.total fam mode in
      match Warm.find_block t.warm ~key ~total with
      | Some verdicts ->
          let cached = derive fam ~mode verdicts in
          Warm.remember ~write:false t.warm ~key cached;
          ( true,
            verify_body fam ~k ~vmode ~engine_used:"cache" ~cached
              ~source:"store" )
      | None ->
          let engine_used, verdicts =
            match (engine, spec.Registry.incremental) with
            | Incremental, None ->
                raise
                  (Err
                     ( Unsupported,
                       Printf.sprintf "family %S has no incremental engine"
                         family ))
            | (Incremental | Auto), Some incf -> (
                let inc = incf k in
                match mode with
                | Shard.Exhaustive ->
                    ("incremental", fst (Framework.exhaustive_verdicts_inc inc))
                | Shard.Sampled { seed; samples } ->
                    ("incremental", sampled_verdicts_inc inc ~seed ~samples))
            | Scratch, _ | Auto, None ->
                ("scratch", Sweep.oracle fam ~mode)
          in
          let cached = derive fam ~mode verdicts in
          Warm.remember ~write:true t.warm ~key cached;
          ( false,
            verify_body fam ~k ~vmode ~engine_used ~cached ~source:"computed" ))

let exec_simulate ~family ~k ~pairs ~seed =
  let spec = find_spec family in
  let rd =
    match spec.Registry.reduction with
    | Some rd -> rd k
    | None ->
        raise
          (Err
             ( Unsupported,
               Printf.sprintf "family %S has no reduction algorithm" family ))
  in
  let fam = spec.Registry.scratch k in
  let bits = fam.Framework.input_bits in
  let rows = ref [] in
  let all_correct = ref true in
  let skipped = ref 0 in
  (* a disconnected instance is outside the CONGEST model (the gather
     would never terminate) — skip the pair, mirroring
     Bound.connected_pairs *)
  let connected x y =
    match fam.Framework.build x y with
    | Framework.Undirected g -> Ch_graph.Props.connected g
    | Framework.Directed dg ->
        Ch_graph.Props.connected (Ch_congest.Network.comm_graph dg)
    | _ -> true
  in
  for i = pairs - 1 downto 0 do
    let x = Bits.random ~seed:(seed + (3 * i)) ~density:0.7 bits in
    let y = Bits.random ~seed:(seed + (3 * i) + 1) ~density:0.7 bits in
    if not (connected x y) then incr skipped
    else begin
      let sim =
        Framework.simulate_reduction ?partition:rd.Registry.rd_partition fam
          ~solver:rd.Registry.rd_solver ~accept:rd.Registry.rd_accept x y
      in
      if not sim.Framework.decision_correct then all_correct := false;
      rows :=
        Jsonx.Obj
          [
            ("pair", Jsonx.Int i);
            ("rounds", Jsonx.Int sim.Framework.rounds);
            ("cut_bits", Jsonx.Int sim.Framework.cut_bits);
            ("cut_messages", Jsonx.Int sim.Framework.cut_messages);
            ("correct", Jsonx.Bool sim.Framework.decision_correct);
          ]
        :: !rows
    end
  done;
  ( false,
    Jsonx.Obj
      [
        ("family", Jsonx.Str fam.Framework.name);
        ("k", Jsonx.Int k);
        ("parties", Jsonx.Int rd.Registry.rd_parties);
        ( "cut",
          Jsonx.Int
            (match rd.Registry.rd_partition with
            | None -> Framework.cut_size fam
            | Some partition ->
                Array.length
                  (Framework.multicut_info fam ~partition).Framework.mc_edges)
        );
        ("skipped", Jsonx.Int !skipped);
        ("pairs", Jsonx.Arr !rows);
        ("all_correct", Jsonx.Bool !all_correct);
      ] )

let exec_reduction ~family ~k ~exhaustive ~pairs ~seed =
  let spec = find_spec family in
  match Bound.sweep_registry ~seed ~exhaustive ~samples:pairs spec ~k with
  | None ->
      raise
        (Err
           ( Unsupported,
             Printf.sprintf "family %S has no reduction algorithm" family ))
  | Some (_, rep, skipped) ->
      ( false,
        Jsonx.Obj
          [
            ("family", Jsonx.Str rep.Bound.rep_name);
            ("k", Jsonx.Int k);
            ("pairs", Jsonx.Int rep.Bound.rep_pairs);
            ("skipped", Jsonx.Int skipped);
            ("cut", Jsonx.Int rep.Bound.rep_cut);
            ("cc_bits", Jsonx.Int rep.Bound.rep_cc_bits);
            ("lb_rounds", Jsonx.Float rep.Bound.rep_lb_rounds);
            ("rounds_max", Jsonx.Int rep.Bound.rep_rounds_max);
            ("cut_bits_max", Jsonx.Int rep.Bound.rep_cut_bits_max);
            ("all_correct", Jsonx.Bool rep.Bound.rep_all_correct);
            ("all_match", Jsonx.Bool rep.Bound.rep_all_match);
            ("all_within_budget", Jsonx.Bool rep.Bound.rep_all_within_budget);
          ] )

let exec_sweep_status t ~family ~k ~shards ~vmode =
  let spec = find_spec family in
  let fam = spec.Registry.scratch k in
  let mode = shard_mode vmode in
  match t.cfg.cfg_store_dir with
  | None -> (false, Jsonx.Obj [ ("store", Jsonx.Bool false) ])
  | Some dir ->
      let key = Sweep.store_key fam ~mode ~shards in
      let st = Store.open_ ~dir ~key in
      let total = Shard.total fam mode in
      let plan = Shard.partition ~total ~shards in
      let present = ref 0 and corrupt = ref 0 in
      Array.iter
        (fun s ->
          match Store.read_block st ~index:(Shard.index s) with
          | Store.Value v when Array.length v = Shard.count s -> incr present
          | Store.Value _ | Store.Corrupt -> incr corrupt
          | Store.Missing -> ())
        plan;
      ( false,
        Jsonx.Obj
          [
            ("store", Jsonx.Bool true);
            ("key", Jsonx.Str key);
            ("shards", Jsonx.Int (Array.length plan));
            ("present", Jsonx.Int !present);
            ("corrupt", Jsonx.Int !corrupt);
            ("snapshots", Jsonx.Int (List.length (Store.snapshot_slots st)));
          ] )

let exec_catalog () =
  let specs = Registry.all (Families.catalog ()) in
  ( false,
    Jsonx.Obj
      [
        ( "families",
          Jsonx.Arr
            (List.map
               (fun s ->
                 Jsonx.Obj
                   [
                     ("id", Jsonx.Str s.Registry.id);
                     ("title", Jsonx.Str s.Registry.title);
                     ("paper_ref", Jsonx.Str s.Registry.paper_ref);
                     ("default_k", Jsonx.Int s.Registry.default_k);
                     ( "incremental",
                       Jsonx.Bool (s.Registry.incremental <> None) );
                     ("reduction", Jsonx.Bool (s.Registry.reduction <> None));
                   ])
               specs) );
      ] )

let exec_stats t =
  ( false,
    Jsonx.Obj
      [
        ("warm_entries", Jsonx.Int (Warm.entries t.warm));
        ("tables_seeded", Jsonx.Int (Warm.tables_seeded t.warm));
        ("queue_depth", Jsonx.Int (Scheduler.depth t.sched));
        ("workers", Jsonx.Int t.cfg.cfg_workers);
        ("queue_bound", Jsonx.Int t.cfg.cfg_queue_depth);
        ( "store",
          match t.cfg.cfg_store_dir with
          | Some d -> Jsonx.Str d
          | None -> Jsonx.Null );
      ] )

let uptime_s t = Obs.Clock.seconds_since t.started_ns

(* Gauges the counter registry cannot carry: live queue state, warm
   entries, derived rates.  Cache hit rates come from the PR 6 counter
   pairs [cache.<kind>.queries] / [cache.<kind>.builds]. *)
let metrics_gauges t (r : Obs.report) =
  let find name =
    match List.assoc_opt name r.Obs.r_counters with Some v -> v | None -> 0
  in
  let base =
    [
      Expose.gauge "serve.uptime_seconds" (uptime_s t);
      Expose.gauge "serve.queue_depth"
        (float_of_int (Scheduler.depth t.sched));
      Expose.gauge "serve.running" (float_of_int (Scheduler.running t.sched));
      Expose.gauge "serve.workers" (float_of_int t.cfg.cfg_workers);
      Expose.gauge "serve.warm_entries" (float_of_int (Warm.entries t.warm));
      Expose.gauge "serve.requests_per_second"
        (Obs.Series.rate t.series "serve.requests");
      Expose.gauge "serve.sampler_window_seconds"
        (Obs.Series.window_s t.series);
      Expose.gauge "serve.sampler_samples"
        (float_of_int (Obs.Series.length t.series));
    ]
  in
  let per_client =
    List.map
      (fun (client, n) ->
        Expose.gauge
          ~labels:[ ("client", string_of_int client) ]
          "serve.queue_depth_client" (float_of_int n))
      (Scheduler.depths t.sched)
  in
  let warm_rate =
    let reqs = find "serve.requests" in
    if reqs <= 0 then []
    else
      [
        Expose.gauge "serve.warm_rate"
          (float_of_int (find "serve.requests.warm") /. float_of_int reqs);
      ]
  in
  let cache_rates =
    List.filter_map
      (fun (name, q) ->
        if
          String.starts_with ~prefix:"cache." name
          && String.ends_with ~suffix:".queries" name
          && q > 0
        then begin
          let kind = String.sub name 6 (String.length name - 6 - 8) in
          let builds = find ("cache." ^ kind ^ ".builds") in
          Some
            (Expose.gauge
               ~labels:[ ("kind", kind) ]
               "cache.hit_rate"
               (1. -. (float_of_int builds /. float_of_int q)))
        end
        else None)
      r.Obs.r_counters
  in
  base @ per_client @ warm_rate @ cache_rates

let metrics_text t =
  let r = Obs.report () in
  Expose.render ~gauges:(metrics_gauges t r) ~series:t.series r

let exec_metrics t =
  ( false,
    Jsonx.Obj
      [
        ("text", Jsonx.Str (metrics_text t));
        ("samples", Jsonx.Int (Obs.Series.length t.series));
        ("window_s", Jsonx.Float (Obs.Series.window_s t.series));
      ] )

let exec_health t =
  ( false,
    Jsonx.Obj
      [
        ("status", Jsonx.Str "ok");
        ("pid", Jsonx.Int (Unix.getpid ()));
        ("uptime_s", Jsonx.Float (uptime_s t));
        ("queue_depth", Jsonx.Int (Scheduler.depth t.sched));
        ("running", Jsonx.Int (Scheduler.running t.sched));
        ("workers", Jsonx.Int t.cfg.cfg_workers);
        ("warm_entries", Jsonx.Int (Warm.entries t.warm));
        ("samples", Jsonx.Int (Obs.Series.length t.series));
      ] )

let op_tag = function
  | Ping -> "ping"
  | Catalog -> "catalog"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Health -> "health"
  | Verify _ -> "verify"
  | Simulate _ -> "simulate"
  | Reduction _ -> "reduction"
  | Sweep_status _ -> "sweep-status"

(* Execute one request (already past admission).  [t0] is the admission
   timestamp — deadlines measure queueing plus service; the JSONL event
   reports queue wait and execution separately.  The whole request runs
   under the client's trace id, so every span event it emits (scheduler,
   engine, solvers) carries the id the client chose. *)
let exec t rq t0 =
  Obs.with_trace rq.rq_trace @@ fun () ->
  Obs.bump c_requests;
  (* execution starts now: everything before was queue wait *)
  let texec = Obs.Clock.now_ns () in
  let queue_us =
    Int64.to_int (Int64.div (Int64.max 0L (Int64.sub texec t0)) 1000L)
  in
  Obs.observe h_queue_wait queue_us;
  let warm_flag, outcome =
    try
      (match rq.rq_deadline_ms with
      | Some d
        when Obs.Clock.seconds_since t0 *. 1000. >= float_of_int d ->
          raise (Err (Deadline_exceeded, Printf.sprintf "deadline %dms" d))
      | _ -> ());
      let warm_flag, body =
        Obs.with_span sp_request (fun () ->
            match rq.rq_op with
            | Ping -> (false, Jsonx.Obj [ ("pong", Jsonx.Bool true) ])
            | Catalog -> exec_catalog ()
            | Stats -> exec_stats t
            | Metrics -> exec_metrics t
            | Health -> exec_health t
            | Verify { family; k; vmode; engine } ->
                exec_verify t ~family ~k ~vmode ~engine
            | Simulate { family; k; pairs; seed } ->
                exec_simulate ~family ~k ~pairs ~seed
            | Reduction { family; k; exhaustive; pairs; seed } ->
                exec_reduction ~family ~k ~exhaustive ~pairs ~seed
            | Sweep_status { family; k; shards; vmode } ->
                exec_sweep_status t ~family ~k ~shards ~vmode)
      in
      (warm_flag, Payload body)
    with
    | Err (code, msg) ->
        (match code with
        | Deadline_exceeded -> Obs.bump c_deadline
        | _ -> Obs.bump c_errors);
        (false, Error (code, msg))
    | Invalid_argument msg ->
        Obs.bump c_errors;
        (false, Error (Bad_request, msg))
    | e ->
        Obs.bump c_errors;
        (false, Error (Internal, Printexc.to_string e))
  in
  if warm_flag then Obs.bump c_warm_hits;
  let exec_us = int_of_float (Obs.Clock.seconds_since texec *. 1e6) in
  Obs.observe (op_hist (op_tag rq.rq_op)) exec_us;
  let micros =
    int_of_float (Obs.Clock.seconds_since t0 *. 1e6)
  in
  let status =
    match outcome with
    | Payload _ -> "ok"
    | Error (code, _) -> error_code_to_string code
  in
  if Obs.sink_installed () then
    Obs.emit
      (Jsonx.to_string
         (Jsonx.Obj
            ([
               ("ev", Jsonx.Str "serve_request");
               ("op", Jsonx.Str (op_tag rq.rq_op));
               ("id", Jsonx.Int rq.rq_id);
               ("status", Jsonx.Str status);
               ("warm", Jsonx.Bool warm_flag);
               ("queue_us", Jsonx.Int queue_us);
               ("exec_us", Jsonx.Int exec_us);
               ("micros", Jsonx.Int micros);
             ]
            @
            match rq.rq_trace with
            | Some tr -> [ ("trace", Jsonx.Str tr) ]
            | None -> [])));
  { rs_id = rq.rq_id; rs_outcome = outcome; rs_warm = warm_flag; rs_micros = micros }

(* ---------------------------------------------------------------- batches *)

(* distinct scheduler client id per accepted connection, so the
   round-robin dispatcher can interleave batches fairly *)
let next_client = Atomic.make 0

let serve_batch ?(client = 0) t reqs =
  let n = List.length reqs in
  let slots = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let done_ = Condition.create () in
  let resolve i r =
    Mutex.lock m;
    slots.(i) <- Some r;
    decr remaining;
    if !remaining = 0 then Condition.signal done_;
    Mutex.unlock m
  in
  List.iteri
    (fun i rq ->
      let t0 = Obs.Clock.now_ns () in
      Obs.observe h_queue_depth (Scheduler.depth t.sched);
      let accepted =
        Scheduler.submit ~client t.sched (fun () -> resolve i (exec t rq t0))
      in
      if not accepted then begin
        Obs.bump c_overloaded;
        resolve i
          {
            rs_id = rq.rq_id;
            rs_outcome =
              Error (Overloaded, "admission queue full, retry later");
            rs_warm = false;
            rs_micros = 0;
          }
      end)
    reqs;
  Mutex.lock m;
  while !remaining > 0 do
    Condition.wait done_ m
  done;
  Mutex.unlock m;
  Array.to_list (Array.map Option.get slots)

let bad_batch msg =
  [
    {
      rs_id = -1;
      rs_outcome = Error (Bad_request, msg);
      rs_warm = false;
      rs_micros = 0;
    };
  ]

(* ------------------------------------------------------------ connections *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w = 0 then raise Exit;
    off := !off + w
  done

(* Minimal one-shot HTTP answer for scrapers pointed straight at the
   daemon port: no framing library, no keep-alive.  Anything beyond
   /metrics and /health is a 404 — the JSON protocol is the real API. *)
let answer_http t path =
  let status, ctype, body =
    match path with
    | "/metrics" | "/" ->
        ("200 OK", "text/plain; version=0.0.4", metrics_text t)
    | "/health" -> ("200 OK", "text/plain", "ok\n")
    | _ -> ("404 Not Found", "text/plain", "not found\n")
  in
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status ctype (String.length body) body

let serve_payload t ~client fd payload =
  let responses =
    match Protocol.decode_requests payload with
    | Ok reqs -> serve_batch ~client t reqs
    | Error msg -> bad_batch msg
  in
  Protocol.write_frame fd (Protocol.encode_responses responses)

let handle_connection t fd =
  let client = Atomic.fetch_and_add next_client 1 in
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | Some payload ->
        serve_payload t ~client fd payload;
        loop ()
  in
  (try
     (* the first read sniffs for a plain-text scraper; subsequent
        frames on a kept connection are always length-prefixed *)
     match Protocol.read_first fd with
     | None -> ()
     | Some (Protocol.Http_get path) -> write_all fd (answer_http t path)
     | Some (Protocol.First_frame payload) ->
         serve_payload t ~client fd payload;
         loop ()
   with
  | Protocol.Protocol_error msg -> (
      try Protocol.write_frame fd (Protocol.encode_responses (bad_batch msg))
      with _ -> ())
  | _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          (* [stop]'s wake connection lands here: drop it and re-check
             the flag instead of serving it *)
          if Atomic.get t.stopping then
            try Unix.close fd with Unix.Unix_error _ -> ()
          else begin
            let th = Thread.create (fun () -> handle_connection t fd) () in
            Mutex.lock t.conns_lock;
            t.conns := (fd, th) :: !(t.conns);
            Mutex.unlock t.conns_lock;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* ----------------------------------------------------------- start / stop *)

let bind_listen = function
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

(* Periodic snapshots into the ring: the exposition derives req/s and
   live latency quantiles from deltas between retained samples.  Sleeps
   in short slices so [stop] never waits a full period for the join. *)
let sampler_loop t =
  Obs.Series.sample t.series;
  while not (Atomic.get t.stopping) do
    let slept = ref 0. in
    while !slept < t.cfg.cfg_sample_period_s && not (Atomic.get t.stopping) do
      let slice = Float.min 0.05 (t.cfg.cfg_sample_period_s -. !slept) in
      Thread.delay slice;
      slept := !slept +. slice
    done;
    if not (Atomic.get t.stopping) then Obs.Series.sample t.series
  done

let start cfg =
  let obs_oc =
    match cfg.cfg_obs_out with
    | None -> None
    | Some file ->
        let oc = open_out file in
        Obs.set_enabled true;
        Obs.set_sink (Some (Obs.jsonl oc));
        Some oc
  in
  let warm = Warm.create ~store_dir:cfg.cfg_store_dir in
  let sched =
    Scheduler.create ~workers:cfg.cfg_workers ~queue_depth:cfg.cfg_queue_depth
  in
  let listen_fd = bind_listen cfg.cfg_addr in
  let t =
    {
      cfg;
      warm;
      sched;
      listen_fd;
      stopping = Atomic.make false;
      conns = ref [];
      conns_lock = Mutex.create ();
      accept_thread = None;
      obs_oc;
      stopped = false;
      stop_lock = Mutex.create ();
      series = Obs.Series.create ();
      started_ns = Obs.Clock.now_ns ();
      sampler_thread = None;
    }
  in
  if cfg.cfg_sample_period_s > 0. then
    t.sampler_thread <- Some (Thread.create sampler_loop t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.stop_lock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_lock;
  if not already then begin
    Atomic.set t.stopping true;
    Option.iter Thread.join t.sampler_thread;
    (* wake the thread blocked in accept(2) with a throwaway connection
       — close() doesn't unblock it, and shutdown() on an AF_UNIX
       listening socket is ENOTCONN, so self-connect is the one portable
       wake-up *)
    (try
       let domain, sa =
         match t.cfg.cfg_addr with
         | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
         | Tcp port ->
             (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect fd sa with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* finish queued work — in-flight batches resolve and flush *)
    Scheduler.drain t.sched;
    (* wake connection readers with EOF, let them exit, then close *)
    Mutex.lock t.conns_lock;
    let conns = !(t.conns) in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    Warm.persist t.warm;
    (match t.cfg.cfg_addr with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    match t.obs_oc with
    | Some oc ->
        Obs.set_sink None;
        close_out oc
    | None -> ()
  end
