(* no [open Ch_cc]: it exports its own [Protocol], which would shadow
   the serve wire protocol *)
module Bits = Ch_cc.Bits
module Framework = Ch_core.Framework
module Registry = Ch_core.Registry
module Families = Ch_lbgraphs.Families
module Bound = Ch_reduction.Bound
module Shard = Ch_sweep.Shard
module Sweep = Ch_sweep.Sweep
module Store = Ch_sweep.Store
module Obs = Ch_obs.Obs
open Protocol

let c_requests = Obs.counter "serve.requests"
let c_warm_hits = Obs.counter "serve.requests.warm"
let c_overloaded = Obs.counter "serve.requests.overloaded"
let c_deadline = Obs.counter "serve.requests.deadline"
let c_errors = Obs.counter "serve.requests.errors"
let sp_request = Obs.span "serve_request"

type addr = Unix_socket of string | Tcp of int

type config = {
  cfg_addr : addr;
  cfg_workers : int;
  cfg_queue_depth : int;
  cfg_store_dir : string option;
  cfg_obs_out : string option;
}

type t = {
  cfg : config;
  warm : Warm.t;
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  conns : (Unix.file_descr * Thread.t) list ref;
  conns_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
  obs_oc : out_channel option;
  mutable stopped : bool;
  stop_lock : Mutex.t;
}

let warm t = t.warm

(* control-flow exception inside [exec]: an op-level error with a code *)
exception Err of error_code * string

(* ------------------------------------------------------------------ ops *)

let find_spec name =
  match Registry.find (Families.catalog ()) name with
  | Some s -> s
  | None ->
      raise
        (Err
           ( Unknown_family,
             Registry.unknown_id_message (Families.catalog ()) name ))

let shard_mode = function
  | Exhaustive -> Shard.Exhaustive
  | Sampled { seed; samples } -> Shard.Sampled { seed; samples }

let vmode_body = function
  | Exhaustive -> Jsonx.Str "exhaustive"
  | Sampled { seed; samples } ->
      Jsonx.Obj [ ("seed", Jsonx.Int seed); ("samples", Jsonx.Int samples) ]

(* The incremental sampled trace: Framework has no sampled_verdicts_inc,
   so replay the documented sample-index space through one prepared
   instance — bit-identical to [Framework.sampled_verdicts] of the
   scratch family by the [pverdict] contract. *)
let sampled_verdicts_inc inc ~seed ~samples =
  let prep = inc.Framework.prepare () in
  Array.init (samples + 4) (fun i ->
      let x, y = Framework.random_pair_at inc.Framework.scratch ~seed i in
      prep.Framework.pverdict x y)

let verify_body fam ~k ~vmode ~engine_used ~(cached : Warm.cached) ~source =
  let lb =
    Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
      ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
  in
  Jsonx.Obj
    [
      ("family", Jsonx.Str fam.Framework.name);
      ("k", Jsonx.Int k);
      ("engine", Jsonx.Str engine_used);
      ("mode", vmode_body vmode);
      ("pairs", Jsonx.Int (Array.length cached.Warm.c_verdicts));
      ("failures", Jsonx.Int cached.Warm.c_failures);
      ("sided", Jsonx.Bool cached.Warm.c_sided);
      ("digest", Jsonx.Str cached.Warm.c_digest);
      ("lb_rounds", Jsonx.Float lb);
      ("source", Jsonx.Str source);
    ]

(* Derive the cached record from a raw verdict stream: failure count
   against f, the Definition 1.1 sidedness spot-check (the same seeds the
   verify CLI uses), and the stream digest. *)
let derive fam ~mode verdicts =
  let gen = Shard.generator fam mode in
  let failures = ref 0 in
  Array.iteri
    (fun p v ->
      let x, y = gen p in
      if v <> fam.Framework.f x y then incr failures)
    verdicts;
  {
    Warm.c_verdicts = verdicts;
    c_failures = !failures;
    c_sided = Framework.check_sidedness ~seed:3 ~samples:8 fam;
    c_digest = Sweep.digest verdicts;
  }

let exec_verify t ~family ~k ~vmode ~engine =
  let spec = find_spec family in
  let fam = spec.Registry.scratch k in
  let mode = shard_mode vmode in
  let key = Warm.key fam ~mode in
  match Warm.find t.warm ~key with
  | Some cached ->
      (true, verify_body fam ~k ~vmode ~engine_used:"cache" ~cached ~source:"memory")
  | None -> (
      let total = Shard.total fam mode in
      match Warm.find_block t.warm ~key ~total with
      | Some verdicts ->
          let cached = derive fam ~mode verdicts in
          Warm.remember ~write:false t.warm ~key cached;
          ( true,
            verify_body fam ~k ~vmode ~engine_used:"cache" ~cached
              ~source:"store" )
      | None ->
          let engine_used, verdicts =
            match (engine, spec.Registry.incremental) with
            | Incremental, None ->
                raise
                  (Err
                     ( Unsupported,
                       Printf.sprintf "family %S has no incremental engine"
                         family ))
            | (Incremental | Auto), Some incf -> (
                let inc = incf k in
                match mode with
                | Shard.Exhaustive ->
                    ("incremental", fst (Framework.exhaustive_verdicts_inc inc))
                | Shard.Sampled { seed; samples } ->
                    ("incremental", sampled_verdicts_inc inc ~seed ~samples))
            | Scratch, _ | Auto, None ->
                ("scratch", Sweep.oracle fam ~mode)
          in
          let cached = derive fam ~mode verdicts in
          Warm.remember ~write:true t.warm ~key cached;
          ( false,
            verify_body fam ~k ~vmode ~engine_used ~cached ~source:"computed" ))

let exec_simulate ~family ~k ~pairs ~seed =
  let spec = find_spec family in
  let rd =
    match spec.Registry.reduction with
    | Some rd -> rd k
    | None ->
        raise
          (Err
             ( Unsupported,
               Printf.sprintf "family %S has no reduction algorithm" family ))
  in
  let fam = spec.Registry.scratch k in
  let bits = fam.Framework.input_bits in
  let rows = ref [] in
  let all_correct = ref true in
  let skipped = ref 0 in
  (* a disconnected instance is outside the CONGEST model (the gather
     would never terminate) — skip the pair, mirroring
     Bound.connected_pairs *)
  let connected x y =
    match fam.Framework.build x y with
    | Framework.Undirected g -> Ch_graph.Props.connected g
    | Framework.Directed dg ->
        Ch_graph.Props.connected (Ch_congest.Network.comm_graph dg)
    | _ -> true
  in
  for i = pairs - 1 downto 0 do
    let x = Bits.random ~seed:(seed + (3 * i)) ~density:0.7 bits in
    let y = Bits.random ~seed:(seed + (3 * i) + 1) ~density:0.7 bits in
    if not (connected x y) then incr skipped
    else begin
      let sim =
        Framework.simulate_reduction ?partition:rd.Registry.rd_partition fam
          ~solver:rd.Registry.rd_solver ~accept:rd.Registry.rd_accept x y
      in
      if not sim.Framework.decision_correct then all_correct := false;
      rows :=
        Jsonx.Obj
          [
            ("pair", Jsonx.Int i);
            ("rounds", Jsonx.Int sim.Framework.rounds);
            ("cut_bits", Jsonx.Int sim.Framework.cut_bits);
            ("cut_messages", Jsonx.Int sim.Framework.cut_messages);
            ("correct", Jsonx.Bool sim.Framework.decision_correct);
          ]
        :: !rows
    end
  done;
  ( false,
    Jsonx.Obj
      [
        ("family", Jsonx.Str fam.Framework.name);
        ("k", Jsonx.Int k);
        ("parties", Jsonx.Int rd.Registry.rd_parties);
        ( "cut",
          Jsonx.Int
            (match rd.Registry.rd_partition with
            | None -> Framework.cut_size fam
            | Some partition ->
                Array.length
                  (Framework.multicut_info fam ~partition).Framework.mc_edges)
        );
        ("skipped", Jsonx.Int !skipped);
        ("pairs", Jsonx.Arr !rows);
        ("all_correct", Jsonx.Bool !all_correct);
      ] )

let exec_reduction ~family ~k ~exhaustive ~pairs ~seed =
  let spec = find_spec family in
  match Bound.sweep_registry ~seed ~exhaustive ~samples:pairs spec ~k with
  | None ->
      raise
        (Err
           ( Unsupported,
             Printf.sprintf "family %S has no reduction algorithm" family ))
  | Some (_, rep, skipped) ->
      ( false,
        Jsonx.Obj
          [
            ("family", Jsonx.Str rep.Bound.rep_name);
            ("k", Jsonx.Int k);
            ("pairs", Jsonx.Int rep.Bound.rep_pairs);
            ("skipped", Jsonx.Int skipped);
            ("cut", Jsonx.Int rep.Bound.rep_cut);
            ("cc_bits", Jsonx.Int rep.Bound.rep_cc_bits);
            ("lb_rounds", Jsonx.Float rep.Bound.rep_lb_rounds);
            ("rounds_max", Jsonx.Int rep.Bound.rep_rounds_max);
            ("cut_bits_max", Jsonx.Int rep.Bound.rep_cut_bits_max);
            ("all_correct", Jsonx.Bool rep.Bound.rep_all_correct);
            ("all_match", Jsonx.Bool rep.Bound.rep_all_match);
            ("all_within_budget", Jsonx.Bool rep.Bound.rep_all_within_budget);
          ] )

let exec_sweep_status t ~family ~k ~shards ~vmode =
  let spec = find_spec family in
  let fam = spec.Registry.scratch k in
  let mode = shard_mode vmode in
  match t.cfg.cfg_store_dir with
  | None -> (false, Jsonx.Obj [ ("store", Jsonx.Bool false) ])
  | Some dir ->
      let key = Sweep.store_key fam ~mode ~shards in
      let st = Store.open_ ~dir ~key in
      let total = Shard.total fam mode in
      let plan = Shard.partition ~total ~shards in
      let present = ref 0 and corrupt = ref 0 in
      Array.iter
        (fun s ->
          match Store.read_block st ~index:(Shard.index s) with
          | Store.Value v when Array.length v = Shard.count s -> incr present
          | Store.Value _ | Store.Corrupt -> incr corrupt
          | Store.Missing -> ())
        plan;
      ( false,
        Jsonx.Obj
          [
            ("store", Jsonx.Bool true);
            ("key", Jsonx.Str key);
            ("shards", Jsonx.Int (Array.length plan));
            ("present", Jsonx.Int !present);
            ("corrupt", Jsonx.Int !corrupt);
            ("snapshots", Jsonx.Int (List.length (Store.snapshot_slots st)));
          ] )

let exec_catalog () =
  let specs = Registry.all (Families.catalog ()) in
  ( false,
    Jsonx.Obj
      [
        ( "families",
          Jsonx.Arr
            (List.map
               (fun s ->
                 Jsonx.Obj
                   [
                     ("id", Jsonx.Str s.Registry.id);
                     ("title", Jsonx.Str s.Registry.title);
                     ("paper_ref", Jsonx.Str s.Registry.paper_ref);
                     ("default_k", Jsonx.Int s.Registry.default_k);
                     ( "incremental",
                       Jsonx.Bool (s.Registry.incremental <> None) );
                     ("reduction", Jsonx.Bool (s.Registry.reduction <> None));
                   ])
               specs) );
      ] )

let exec_stats t =
  ( false,
    Jsonx.Obj
      [
        ("warm_entries", Jsonx.Int (Warm.entries t.warm));
        ("tables_seeded", Jsonx.Int (Warm.tables_seeded t.warm));
        ("queue_depth", Jsonx.Int (Scheduler.depth t.sched));
        ("workers", Jsonx.Int t.cfg.cfg_workers);
        ("queue_bound", Jsonx.Int t.cfg.cfg_queue_depth);
        ( "store",
          match t.cfg.cfg_store_dir with
          | Some d -> Jsonx.Str d
          | None -> Jsonx.Null );
      ] )

let op_tag = function
  | Ping -> "ping"
  | Catalog -> "catalog"
  | Stats -> "stats"
  | Verify _ -> "verify"
  | Simulate _ -> "simulate"
  | Reduction _ -> "reduction"
  | Sweep_status _ -> "sweep-status"

(* Execute one request (already past admission).  [t0] is the admission
   timestamp — deadlines measure queueing plus service. *)
let exec t rq t0 =
  Obs.bump c_requests;
  let warm_flag, outcome =
    try
      (match rq.rq_deadline_ms with
      | Some d
        when Obs.Clock.seconds_since t0 *. 1000. >= float_of_int d ->
          raise (Err (Deadline_exceeded, Printf.sprintf "deadline %dms" d))
      | _ -> ());
      let warm_flag, body =
        Obs.with_span sp_request (fun () ->
            match rq.rq_op with
            | Ping -> (false, Jsonx.Obj [ ("pong", Jsonx.Bool true) ])
            | Catalog -> exec_catalog ()
            | Stats -> exec_stats t
            | Verify { family; k; vmode; engine } ->
                exec_verify t ~family ~k ~vmode ~engine
            | Simulate { family; k; pairs; seed } ->
                exec_simulate ~family ~k ~pairs ~seed
            | Reduction { family; k; exhaustive; pairs; seed } ->
                exec_reduction ~family ~k ~exhaustive ~pairs ~seed
            | Sweep_status { family; k; shards; vmode } ->
                exec_sweep_status t ~family ~k ~shards ~vmode)
      in
      (warm_flag, Payload body)
    with
    | Err (code, msg) ->
        (match code with
        | Deadline_exceeded -> Obs.bump c_deadline
        | _ -> Obs.bump c_errors);
        (false, Error (code, msg))
    | Invalid_argument msg ->
        Obs.bump c_errors;
        (false, Error (Bad_request, msg))
    | e ->
        Obs.bump c_errors;
        (false, Error (Internal, Printexc.to_string e))
  in
  if warm_flag then Obs.bump c_warm_hits;
  let micros =
    int_of_float (Obs.Clock.seconds_since t0 *. 1e6)
  in
  let status =
    match outcome with
    | Payload _ -> "ok"
    | Error (code, _) -> error_code_to_string code
  in
  if Obs.sink_installed () then
    Obs.emit
      (Jsonx.to_string
         (Jsonx.Obj
            [
              ("ev", Jsonx.Str "serve_request");
              ("op", Jsonx.Str (op_tag rq.rq_op));
              ("id", Jsonx.Int rq.rq_id);
              ("status", Jsonx.Str status);
              ("warm", Jsonx.Bool warm_flag);
              ("micros", Jsonx.Int micros);
            ]));
  { rs_id = rq.rq_id; rs_outcome = outcome; rs_warm = warm_flag; rs_micros = micros }

(* ---------------------------------------------------------------- batches *)

(* distinct scheduler client id per accepted connection, so the
   round-robin dispatcher can interleave batches fairly *)
let next_client = Atomic.make 0

let serve_batch ?(client = 0) t reqs =
  let n = List.length reqs in
  let slots = Array.make n None in
  let remaining = ref n in
  let m = Mutex.create () in
  let done_ = Condition.create () in
  let resolve i r =
    Mutex.lock m;
    slots.(i) <- Some r;
    decr remaining;
    if !remaining = 0 then Condition.signal done_;
    Mutex.unlock m
  in
  List.iteri
    (fun i rq ->
      let t0 = Obs.Clock.now_ns () in
      let accepted =
        Scheduler.submit ~client t.sched (fun () -> resolve i (exec t rq t0))
      in
      if not accepted then begin
        Obs.bump c_overloaded;
        resolve i
          {
            rs_id = rq.rq_id;
            rs_outcome =
              Error (Overloaded, "admission queue full, retry later");
            rs_warm = false;
            rs_micros = 0;
          }
      end)
    reqs;
  Mutex.lock m;
  while !remaining > 0 do
    Condition.wait done_ m
  done;
  Mutex.unlock m;
  Array.to_list (Array.map Option.get slots)

let bad_batch msg =
  [
    {
      rs_id = -1;
      rs_outcome = Error (Bad_request, msg);
      rs_warm = false;
      rs_micros = 0;
    };
  ]

(* ------------------------------------------------------------ connections *)

let handle_connection t fd =
  let client = Atomic.fetch_and_add next_client 1 in
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | Some payload ->
        let responses =
          match Protocol.decode_requests payload with
          | Ok reqs -> serve_batch ~client t reqs
          | Error msg -> bad_batch msg
        in
        Protocol.write_frame fd (Protocol.encode_responses responses);
        loop ()
  in
  (try loop () with
  | Protocol.Protocol_error msg -> (
      try Protocol.write_frame fd (Protocol.encode_responses (bad_batch msg))
      with _ -> ())
  | _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          (* [stop]'s wake connection lands here: drop it and re-check
             the flag instead of serving it *)
          if Atomic.get t.stopping then
            try Unix.close fd with Unix.Unix_error _ -> ()
          else begin
            let th = Thread.create (fun () -> handle_connection t fd) () in
            Mutex.lock t.conns_lock;
            t.conns := (fd, th) :: !(t.conns);
            Mutex.unlock t.conns_lock;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  in
  loop ()

(* ----------------------------------------------------------- start / stop *)

let bind_listen = function
  | Unix_socket path ->
      if Sys.file_exists path then (try Unix.unlink path with _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

let start cfg =
  let obs_oc =
    match cfg.cfg_obs_out with
    | None -> None
    | Some file ->
        let oc = open_out file in
        Obs.set_enabled true;
        Obs.set_sink (Some (Obs.jsonl oc));
        Some oc
  in
  let warm = Warm.create ~store_dir:cfg.cfg_store_dir in
  let sched =
    Scheduler.create ~workers:cfg.cfg_workers ~queue_depth:cfg.cfg_queue_depth
  in
  let listen_fd = bind_listen cfg.cfg_addr in
  let t =
    {
      cfg;
      warm;
      sched;
      listen_fd;
      stopping = Atomic.make false;
      conns = ref [];
      conns_lock = Mutex.create ();
      accept_thread = None;
      obs_oc;
      stopped = false;
      stop_lock = Mutex.create ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  Mutex.lock t.stop_lock;
  let already = t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_lock;
  if not already then begin
    Atomic.set t.stopping true;
    (* wake the thread blocked in accept(2) with a throwaway connection
       — close() doesn't unblock it, and shutdown() on an AF_UNIX
       listening socket is ENOTCONN, so self-connect is the one portable
       wake-up *)
    (try
       let domain, sa =
         match t.cfg.cfg_addr with
         | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
         | Tcp port ->
             (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect fd sa with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* finish queued work — in-flight batches resolve and flush *)
    Scheduler.drain t.sched;
    (* wake connection readers with EOF, let them exit, then close *)
    Mutex.lock t.conns_lock;
    let conns = !(t.conns) in
    Mutex.unlock t.conns_lock;
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns;
    List.iter (fun (_, th) -> Thread.join th) conns;
    Warm.persist t.warm;
    (match t.cfg.cfg_addr with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    match t.obs_oc with
    | Some oc ->
        Obs.set_sink None;
        close_out oc
    | None -> ()
  end
