(** The serve daemon: a long-lived process boundary over the verification
    engine.

    One accept thread takes connections on a Unix or loopback TCP
    socket; one thread per connection reads request batches
    ({!Protocol}), fans each request as a job onto the bounded
    {!Scheduler}, and answers the batch when every slot resolves.  Jobs
    run the library paths — registry lookup, incremental or scratch
    verification over the shared domain pool, reduction sweeps — through
    the {!Warm} registry, so repeat plans are answered from memory or
    the sweep store.

    {b Backpressure:} a request the scheduler refuses (queue at depth,
    or draining) resolves to an [overloaded] error immediately — the
    connection never queues unboundedly.  A request whose [deadline_ms]
    elapsed before its job started resolves to [deadline_exceeded]
    without doing the work.

    {b Shutdown} ({!stop}): stop accepting, drain the scheduler (queued
    jobs finish and their responses flush), wake the connection threads,
    persist the warm state to the store, unlink the Unix socket.  The
    caller installs its own SIGTERM/SIGINT handlers and calls [stop] —
    signal policy stays in the CLI.

    {b Telemetry:} with [cfg_obs_out] the daemon enables {!Ch_obs.Obs}
    and streams one [serve_request] JSONL event per request (op, id,
    status, warmth, queue wait vs execution micros, optional trace id)
    alongside the usual span events into that file.  Every request runs
    under its [rq_trace] ({!Ch_obs.Obs.with_trace}), so server-side span
    events carry the id the client chose and a cross-process span tree
    joins up.  The [metrics] and [health] ops answer from the live
    registry; [metrics] renders the Prometheus-style page ({!Expose})
    with rates and latency quantiles windowed over a background sampler
    that snapshots the registry every [cfg_sample_period_s] seconds
    (non-positive disables the sampler — quantiles fall back to
    cumulative).  A connection whose first bytes are an HTTP [GET] gets
    a one-shot plain-text answer ([/metrics], [/health]) instead of the
    framed protocol. *)

type addr = Unix_socket of string | Tcp of int

type config = {
  cfg_addr : addr;
  cfg_workers : int;  (** scheduler worker threads *)
  cfg_queue_depth : int;  (** admission queue bound *)
  cfg_store_dir : string option;  (** sweep store to seed from / persist to *)
  cfg_obs_out : string option;  (** JSONL telemetry sink *)
  cfg_sample_period_s : float;
      (** metrics sampler period; [<= 0.] disables the sampler thread *)
}

type t

val start : config -> t
(** Bind, listen, spawn the accept thread, seed the warm registry.
    @raise Unix.Unix_error when the address cannot be bound. *)

val stop : t -> unit
(** Graceful drain as documented above.  Idempotent. *)

val warm : t -> Warm.t
(** The daemon's warm registry (the bench reads its counters). *)

(** {1 In-process service}

    The request executor, exposed for differential tests and the bench:
    [serve_batch t reqs] is exactly what a connection does with a decoded
    batch — scheduler admission, deadlines, warm lookups — without the
    socket hop.  [client] is the scheduler's fairness key (each real
    connection gets a distinct one); defaults to 0. *)

val serve_batch :
  ?client:int -> t -> Protocol.request list -> Protocol.response list
