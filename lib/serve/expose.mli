(** Prometheus-style text exposition of the live {!Ch_obs.Obs} registry.

    One line per sample: [ch_<name>{<labels>} <value>], preceded by a
    [# TYPE] comment per family.  Counters render as counters,
    histograms as summaries with p50/p90/p99 quantile lines from the
    log2 buckets — windowed over a supplied {!Ch_obs.Obs.Series} when it
    holds at least two samples (live quantiles), cumulative otherwise;
    [_sum]/[_count] stay cumulative.  Gauges are the caller's: queue
    depths, warm entries, request rates.

    Names are sanitized to [[a-zA-Z_:][a-zA-Z0-9_:]*] (anything else
    becomes ['_']); label values escape backslash, quote and newline.
    All metric names carry the [ch_] prefix. *)

val sanitize_name : string -> string
(** Map an obs/family name onto the exposition charset: invalid
    characters become ['_'], a leading digit gets a ['_'] prefix, the
    empty string becomes ["_"]. *)

val escape_label_value : string -> string
(** Escape backslash, double quote and newline for a label value
    position. *)

type gauge = {
  g_name : string;  (** unprefixed, unsanitized — {!render} handles both *)
  g_labels : (string * string) list;
  g_value : float;
}

val gauge : ?labels:(string * string) list -> string -> float -> gauge

val prefix : string
(** ["ch_"], prepended to every metric name. *)

val render :
  ?gauges:gauge list -> ?series:Ch_obs.Obs.Series.t -> Ch_obs.Obs.report ->
  string
(** The full exposition page for one report snapshot. *)
