module Framework = Ch_core.Framework
module Shard = Ch_sweep.Shard
module Sweep = Ch_sweep.Sweep
module Store = Ch_sweep.Store
module Cache = Ch_solvers.Cache
module Obs = Ch_obs.Obs

let c_seeded = Obs.counter "serve.warm.tables_seeded"
let c_hits = Obs.counter "serve.warm.hits"
let c_block_hits = Obs.counter "serve.warm.block_hits"

type cached = {
  c_verdicts : bool array;
  c_failures : int;
  c_sided : bool;
  c_digest : string;
}

type t = {
  store_dir : string option;
  mutable tables_seeded : int;
  table : (string, cached) Hashtbl.t;
  lock : Mutex.t;
}

(* The store pins every daemon-written artifact under one plan key per
   verify plan (shards = 1), plus a "serve" directory for the shutdown
   memo snapshot. *)
let serve_key = "serve"

let seed_tables ~dir =
  let restored = ref 0 in
  let keys = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare keys;
  Array.iter
    (fun key ->
      if Sys.is_directory (Filename.concat dir key) then begin
        let st = Store.open_ ~dir ~key in
        List.iter
          (fun slot ->
            match Store.read_snapshot st ~slot with
            | Store.Value snap -> (
                try restored := !restored + Cache.restore snap
                with Failure _ -> ())
            | Store.Missing | Store.Corrupt -> ())
          (Store.snapshot_slots st)
      end)
    keys;
  !restored

let create ~store_dir =
  let tables_seeded =
    match store_dir with
    | Some dir when Sys.file_exists dir -> seed_tables ~dir
    | _ -> 0
  in
  Obs.incr c_seeded tables_seeded;
  { store_dir; tables_seeded; table = Hashtbl.create 64; lock = Mutex.create () }

let tables_seeded t = t.tables_seeded

let entries t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let key fam ~mode = Sweep.store_key fam ~mode ~shards:1

let find t ~key =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  if r <> None then Obs.bump c_hits;
  r

let find_block t ~key ~total =
  match t.store_dir with
  | None -> None
  | Some dir -> (
      let st = Store.open_ ~dir ~key in
      match Store.read_block st ~index:0 with
      | Store.Value v when Array.length v = total ->
          Obs.bump c_block_hits;
          Some v
      | Store.Value _ | Store.Missing | Store.Corrupt -> None)

let remember ?(write = true) t ~key cached =
  Mutex.lock t.lock;
  if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key cached;
  Mutex.unlock t.lock;
  if write then
    match t.store_dir with
    | None -> ()
    | Some dir ->
        let st = Store.open_ ~dir ~key in
        Store.write_block st ~index:0 cached.c_verdicts

let persist t =
  match t.store_dir with
  | None -> ()
  | Some dir ->
      let st = Store.open_ ~dir ~key:serve_key in
      Store.write_snapshot st ~slot:0 (Cache.snapshot ())
