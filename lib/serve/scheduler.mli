(** A bounded admission queue over a fixed worker-thread pool — the
    server's backpressure stage.

    Connection threads {!submit} one job per request; [submit] never
    blocks.  Past the configured queue depth it refuses ([false]) and
    the caller answers [overloaded] immediately — the client learns to
    back off instead of queueing unboundedly.  Worker threads pop jobs
    in FIFO order and run them to completion; a job that raises is
    dropped (jobs wrap their own error reporting).

    Workers are systhreads, not domains: the jobs themselves fan their
    per-pair work onto the shared domain pool ({!Ch_core.Pool}), whose
    busy fallback runs a nested batch in the calling thread — so
    concurrent jobs degrade to sequential pool use rather than
    deadlock.

    {!drain} is the graceful-shutdown edge: new submissions are refused,
    queued jobs run to completion, then the workers exit and join. *)

type t

val create : workers:int -> queue_depth:int -> t
(** @raise Invalid_argument on [workers < 1] or [queue_depth < 1]. *)

val submit : t -> (unit -> unit) -> bool
(** [false] when the queue is at depth or the scheduler is draining. *)

val depth : t -> int
(** Jobs currently queued (excluding running ones). *)

val drain : t -> unit
(** Refuse new work, run the queue dry, join the workers.  Idempotent. *)
