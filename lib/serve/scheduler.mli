(** A bounded admission queue over a fixed worker-thread pool — the
    server's backpressure stage.

    Connection threads {!submit} one job per request; [submit] never
    blocks.  Past the configured queue depth (measured across all
    clients) it refuses ([false]) and the caller answers [overloaded]
    immediately — the client learns to back off instead of queueing
    unboundedly.

    Dispatch is round-robin over clients, not global FIFO: each client
    id has its own FIFO queue, and workers serve one job from the next
    client in rotation before moving on.  Jobs of one client still run
    in submission order, but a connection that floods the queue cannot
    starve a later-arriving client — it waits at most one job per
    competing client.  A job that raises is dropped (jobs wrap their own
    error reporting).

    Workers are systhreads, not domains: the jobs themselves fan their
    per-pair work onto the shared domain pool ({!Ch_core.Pool}), whose
    busy fallback runs a nested batch in the calling thread — so
    concurrent jobs degrade to sequential pool use rather than
    deadlock.

    {!drain} is the graceful-shutdown edge: new submissions are refused,
    queued jobs run to completion, then the workers exit and join. *)

type t

val create : workers:int -> queue_depth:int -> t
(** @raise Invalid_argument on [workers < 1] or [queue_depth < 1]. *)

val submit : ?client:int -> t -> (unit -> unit) -> bool
(** Enqueue on [client]'s queue (0 by default — single-tenant callers
    keep plain FIFO).  [false] when the total queued count is at depth
    or the scheduler is draining. *)

val depth : t -> int
(** Jobs currently queued (excluding running ones). *)

val depths : t -> (int * int) list
(** Per-client queued counts [(client, jobs)], sorted by client id;
    clients with an empty queue are absent.  The metrics exposition
    emits these as gauges, so one client starving behind its own
    backlog is visible from outside. *)

val running : t -> int
(** Jobs currently executing on worker threads. *)

val drain : t -> unit
(** Refuse new work, run the queue dry, join the workers.  Idempotent. *)
