type t = { fd : Unix.file_descr }

let sockaddr = function
  | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp port ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let connect ?(retries = 0) addr =
  let domain, sa = sockaddr addr in
  let rec attempt left =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> { fd }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when left > 0
      ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.1;
        attempt (left - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt retries

let roundtrip t reqs =
  Protocol.write_frame t.fd (Protocol.encode_requests reqs);
  match Protocol.read_frame t.fd with
  | None -> raise (Protocol.Protocol_error "connection closed before response")
  | Some payload -> (
      match Protocol.decode_responses payload with
      | Ok rs -> rs
      | Error msg -> failwith ("Client.roundtrip: bad response: " ^ msg))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
