type engine = Auto | Incremental | Scratch

type vmode = Exhaustive | Sampled of { seed : int; samples : int }

type op =
  | Ping
  | Catalog
  | Stats
  | Metrics
  | Health
  | Verify of { family : string; k : int; vmode : vmode; engine : engine }
  | Simulate of { family : string; k : int; pairs : int; seed : int }
  | Reduction of {
      family : string;
      k : int;
      exhaustive : bool;
      pairs : int;
      seed : int;
    }
  | Sweep_status of { family : string; k : int; shards : int; vmode : vmode }

type request = {
  rq_id : int;
  rq_op : op;
  rq_deadline_ms : int option;
  rq_trace : string option;
}

type error_code =
  | Bad_request
  | Unknown_family
  | Overloaded
  | Deadline_exceeded
  | Unsupported
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_family -> "unknown_family"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Unsupported -> "unsupported"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_family" -> Some Unknown_family
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "unsupported" -> Some Unsupported
  | "internal" -> Some Internal
  | _ -> None

type outcome = Payload of Jsonx.t | Error of error_code * string

type response = {
  rs_id : int;
  rs_outcome : outcome;
  rs_warm : bool;
  rs_micros : int;
}

(* ---------------------------------------------------------------- encode *)

let vmode_json = function
  | Exhaustive -> Jsonx.Str "exhaustive"
  | Sampled { seed; samples } ->
      Jsonx.Obj [ ("seed", Jsonx.Int seed); ("samples", Jsonx.Int samples) ]

let engine_to_string = function
  | Auto -> "auto"
  | Incremental -> "incremental"
  | Scratch -> "scratch"

let op_fields = function
  | Ping -> [ ("op", Jsonx.Str "ping") ]
  | Catalog -> [ ("op", Jsonx.Str "catalog") ]
  | Stats -> [ ("op", Jsonx.Str "stats") ]
  | Metrics -> [ ("op", Jsonx.Str "metrics") ]
  | Health -> [ ("op", Jsonx.Str "health") ]
  | Verify { family; k; vmode; engine } ->
      [
        ("op", Jsonx.Str "verify");
        ("family", Jsonx.Str family);
        ("k", Jsonx.Int k);
        ("mode", vmode_json vmode);
        ("engine", Jsonx.Str (engine_to_string engine));
      ]
  | Simulate { family; k; pairs; seed } ->
      [
        ("op", Jsonx.Str "simulate");
        ("family", Jsonx.Str family);
        ("k", Jsonx.Int k);
        ("pairs", Jsonx.Int pairs);
        ("seed", Jsonx.Int seed);
      ]
  | Reduction { family; k; exhaustive; pairs; seed } ->
      [
        ("op", Jsonx.Str "reduction");
        ("family", Jsonx.Str family);
        ("k", Jsonx.Int k);
        ("exhaustive", Jsonx.Bool exhaustive);
        ("pairs", Jsonx.Int pairs);
        ("seed", Jsonx.Int seed);
      ]
  | Sweep_status { family; k; shards; vmode } ->
      [
        ("op", Jsonx.Str "sweep-status");
        ("family", Jsonx.Str family);
        ("k", Jsonx.Int k);
        ("shards", Jsonx.Int shards);
        ("mode", vmode_json vmode);
      ]

let request_json r =
  let base = ("id", Jsonx.Int r.rq_id) :: op_fields r.rq_op in
  let base =
    match r.rq_deadline_ms with
    | None -> base
    | Some d -> base @ [ ("deadline_ms", Jsonx.Int d) ]
  in
  match r.rq_trace with
  | None -> Jsonx.Obj base
  | Some t -> Jsonx.Obj (base @ [ ("trace", Jsonx.Str t) ])

let encode_requests rs =
  Jsonx.to_string
    (Jsonx.Obj [ ("requests", Jsonx.Arr (List.map request_json rs)) ])

let response_json r =
  let base =
    [
      ("id", Jsonx.Int r.rs_id);
      ( "ok",
        Jsonx.Bool (match r.rs_outcome with Payload _ -> true | Error _ -> false)
      );
      ("warm", Jsonx.Bool r.rs_warm);
      ("micros", Jsonx.Int r.rs_micros);
    ]
  in
  match r.rs_outcome with
  | Payload body -> Jsonx.Obj (base @ [ ("body", body) ])
  | Error (code, msg) ->
      Jsonx.Obj
        (base
        @ [
            ("error", Jsonx.Str (error_code_to_string code));
            ("message", Jsonx.Str msg);
          ])

let encode_responses rs =
  Jsonx.to_string
    (Jsonx.Obj [ ("responses", Jsonx.Arr (List.map response_json rs)) ])

(* ---------------------------------------------------------------- decode *)

let ( let* ) = Result.bind

let field name v =
  match Jsonx.mem name v with
  | Some x -> Ok x
  | None -> Result.error (Printf.sprintf "missing field %S" name)

let int_field name v =
  let* x = field name v in
  match Jsonx.as_int x with
  | Some n -> Ok n
  | None -> Result.error (Printf.sprintf "field %S: expected integer" name)

let str_field name v =
  let* x = field name v in
  match Jsonx.as_str x with
  | Some s -> Ok s
  | None -> Result.error (Printf.sprintf "field %S: expected string" name)

let vmode_of_json = function
  | Jsonx.Str "exhaustive" -> Ok Exhaustive
  | Jsonx.Obj _ as o ->
      let* seed = int_field "seed" o in
      let* samples = int_field "samples" o in
      if samples < 0 then Result.error "field \"samples\": must be >= 0"
      else Ok (Sampled { seed; samples })
  | _ -> Result.error "field \"mode\": expected \"exhaustive\" or {seed,samples}"

let mode_field v =
  match Jsonx.mem "mode" v with
  | None -> Ok Exhaustive
  | Some m -> vmode_of_json m

let engine_field v =
  match Jsonx.mem "engine" v with
  | None -> Ok Auto
  | Some (Jsonx.Str "auto") -> Ok Auto
  | Some (Jsonx.Str "incremental") -> Ok Incremental
  | Some (Jsonx.Str "scratch") -> Ok Scratch
  | Some _ ->
      Result.error "field \"engine\": expected auto | incremental | scratch"

let decode_op v =
  let* op = str_field "op" v in
  match op with
  | "ping" -> Ok Ping
  | "catalog" -> Ok Catalog
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "verify" ->
      let* family = str_field "family" v in
      let* k = int_field "k" v in
      let* vmode = mode_field v in
      let* engine = engine_field v in
      Ok (Verify { family; k; vmode; engine })
  | "simulate" ->
      let* family = str_field "family" v in
      let* k = int_field "k" v in
      let* pairs = int_field "pairs" v in
      let* seed = int_field "seed" v in
      Ok (Simulate { family; k; pairs; seed })
  | "reduction" ->
      let* family = str_field "family" v in
      let* k = int_field "k" v in
      let* pairs = int_field "pairs" v in
      let* seed = int_field "seed" v in
      let exhaustive =
        match Jsonx.mem "exhaustive" v with
        | Some (Jsonx.Bool b) -> b
        | _ -> false
      in
      Ok (Reduction { family; k; exhaustive; pairs; seed })
  | "sweep-status" ->
      let* family = str_field "family" v in
      let* k = int_field "k" v in
      let* shards = int_field "shards" v in
      let* vmode = mode_field v in
      Ok (Sweep_status { family; k; shards; vmode })
  | other -> Result.error (Printf.sprintf "unknown op %S" other)

let decode_request v =
  let* rq_id = int_field "id" v in
  let* rq_op = decode_op v in
  let rq_deadline_ms =
    Option.bind (Jsonx.mem "deadline_ms" v) Jsonx.as_int
  in
  let rq_trace = Option.bind (Jsonx.mem "trace" v) Jsonx.as_str in
  Ok { rq_id; rq_op; rq_deadline_ms; rq_trace }

let decode_requests s =
  let* v = Jsonx.parse s in
  let* batch = field "requests" v in
  match Jsonx.as_arr batch with
  | None -> Result.error "field \"requests\": expected array"
  | Some items ->
      List.fold_left
        (fun acc item ->
          let* rs = acc in
          let* r = decode_request item in
          Ok (r :: rs))
        (Ok []) items
      |> Result.map List.rev

let decode_response v =
  let* rs_id = int_field "id" v in
  let* ok = field "ok" v in
  let* ok =
    match Jsonx.as_bool ok with
    | Some b -> Ok b
    | None -> Result.error "field \"ok\": expected bool"
  in
  let rs_warm =
    match Option.bind (Jsonx.mem "warm" v) Jsonx.as_bool with
    | Some b -> b
    | None -> false
  in
  let rs_micros =
    match Option.bind (Jsonx.mem "micros" v) Jsonx.as_int with
    | Some n -> n
    | None -> 0
  in
  let* rs_outcome =
    if ok then
      let* body = field "body" v in
      Ok (Payload body)
    else
      let* code = str_field "error" v in
      let* code =
        match error_code_of_string code with
        | Some c -> Ok c
        | None -> Result.error (Printf.sprintf "unknown error code %S" code)
      in
      let msg =
        match Option.bind (Jsonx.mem "message" v) Jsonx.as_str with
        | Some m -> m
        | None -> ""
      in
      Ok (Error (code, msg))
  in
  Ok { rs_id; rs_outcome; rs_warm; rs_micros }

let decode_responses s =
  let* v = Jsonx.parse s in
  let* batch = field "responses" v in
  match Jsonx.as_arr batch with
  | None -> Result.error "field \"responses\": expected array"
  | Some items ->
      List.fold_left
        (fun acc item ->
          let* rs = acc in
          let* r = decode_response item in
          Ok (r :: rs))
        (Ok []) items
      |> Result.map List.rev

(* --------------------------------------------------------------- framing *)

let max_frame = 8 * 1024 * 1024

let frame payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Protocol.frame: payload too large";
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

type unframed = Frame of string * int | Need_more | Too_large of int

let unframe buf ~pos =
  let n = String.length buf in
  if pos + 4 > n then Need_more
  else
    let len =
      (Char.code buf.[pos] lsl 24)
      lor (Char.code buf.[pos + 1] lsl 16)
      lor (Char.code buf.[pos + 2] lsl 8)
      lor Char.code buf.[pos + 3]
    in
    if len > max_frame then Too_large len
    else if pos + 4 + len > n then Need_more
    else Frame (String.sub buf (pos + 4) len, pos + 4 + len)

exception Protocol_error of string

let rec really_read fd b off len =
  if len > 0 then
    let n =
      try Unix.read fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n < 0 then really_read fd b off len (* EINTR: retry *)
    else if n = 0 then raise (Protocol_error "unexpected EOF mid-frame")
    else really_read fd b (off + n) (len - n)

let read_frame fd =
  let hdr = Bytes.create 4 in
  let first =
    try Unix.read fd hdr 0 4
    with Unix.Unix_error (Unix.EINTR, _, _) -> -1
  in
  if first < 0 then (
    (* EINTR before any byte: retry the whole header *)
    really_read fd hdr 0 4;
    ())
  else if first = 0 then raise Exit (* clean EOF, handled below *)
  else really_read fd hdr first (4 - first);
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" len));
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  Bytes.unsafe_to_string payload

let read_frame fd = try Some (read_frame fd) with Exit -> None

(* A length-prefixed frame never starts with "GET " (that header would
   decode as a 1.2 GiB length, far over [max_frame]), so sniffing the
   first four bytes cleanly separates framed clients from a plain HTTP
   scrape (curl, Prometheus) on the same socket. *)
type first = First_frame of string | Http_get of string

let read_first fd =
  let hdr = Bytes.create 4 in
  let first =
    try Unix.read fd hdr 0 4
    with Unix.Unix_error (Unix.EINTR, _, _) -> -1
  in
  if first < 0 then really_read fd hdr 0 4
  else if first = 0 then raise Exit
  else really_read fd hdr first (4 - first);
  if Bytes.to_string hdr = "GET " then begin
    (* drain the rest of the request line and the headers; a metrics
       scrape has no business sending more than 8 KiB of them *)
    let b = Buffer.create 256 in
    let one = Bytes.create 1 in
    let stop = ref false in
    while not !stop do
      if Buffer.length b > 8192 then
        raise (Protocol_error "oversized HTTP request");
      let n =
        try Unix.read fd one 0 1
        with Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      if n = 0 then stop := true
      else if n > 0 then begin
        Buffer.add_char b (Bytes.get one 0);
        let s = Buffer.contents b in
        let l = String.length s in
        if
          (l >= 3 && String.sub s (l - 3) 3 = "\n\r\n")
          || (l >= 2 && String.sub s (l - 2) 2 = "\n\n")
        then stop := true
      end
    done;
    let all = Buffer.contents b in
    let line =
      match String.index_opt all '\n' with
      | Some i -> String.sub all 0 i
      | None -> all
    in
    (* the sniffed header already consumed "GET ", so the path is the
       first token of what remains *)
    let path =
      match String.split_on_char ' ' (String.trim line) with
      | p :: _ when p <> "" -> p
      | _ -> "/"
    in
    Http_get path
  end
  else begin
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then
      raise
        (Protocol_error (Printf.sprintf "frame of %d bytes exceeds limit" len));
    let payload = Bytes.create len in
    really_read fd payload 0 len;
    First_frame (Bytes.unsafe_to_string payload)
  end

let read_first fd = try Some (read_first fd) with Exit -> None

let write_frame fd payload =
  let framed = frame payload in
  let b = Bytes.unsafe_of_string framed in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
