module Framework = Ch_core.Framework
module Shard = Ch_sweep.Shard

(** The daemon's warm state: memoized verify results keyed by sweep plan,
    backed by the solver memo tables and (optionally) the sweep store.

    Three warmth tiers, hottest first:

    - {b response cache} — the full verify result (verdict digest,
      failure count, sidedness) held in memory under the plan key.  A
      repeat request is a hash lookup.
    - {b store blocks} — a single-shard verdict block written by a prior
      [hardness sweep --shards 1] run (or by this daemon's write-through)
      under the same {!Ch_sweep.Sweep.store_key}, so CLI sweeps and the
      daemon share artifacts.  The verdict stream is read back; derived
      figures are recomputed.
    - {b solver memo tables} — [Cache] snapshots from the store's memo
      slots, merged at startup ({!create}) and persisted at shutdown
      ({!persist}), so even a first-of-its-kind request skips the
      core-table build.

    The key ({!Ch_sweep.Sweep.store_key} with [shards = 1]) folds in the
    core's structural hash and every stream-shaping parameter but {e not}
    the engine: incremental and scratch engines promise bit-identical
    verdicts, so they share cache lines — which is itself a differential
    check, asserted by the tests. *)

type cached = {
  c_verdicts : bool array;
  c_failures : int;
  c_sided : bool;  (** Definition 1.1 sidedness spot-check result *)
  c_digest : string;  (** {!Ch_sweep.Sweep.digest} of [c_verdicts] *)
}

type t

val create : store_dir:string option -> t
(** With a store root, walk every plan directory and merge each valid
    memo snapshot into the process-wide [Cache] (corrupt ones are
    counted, not fatal). *)

val tables_seeded : t -> int
(** Memo tables merged in by {!create}. *)

val entries : t -> int
(** Response-cache entries currently held. *)

val key : Framework.t -> mode:Shard.mode -> string
(** The response-cache / store key for one verify plan. *)

val find : t -> key:string -> cached option

val find_block : t -> key:string -> total:int -> bool array option
(** The stored single-shard verdict block for the plan, when the store
    holds a valid one of the right length. *)

val remember : ?write:bool -> t -> key:string -> cached -> unit
(** Publish into the response cache; with [write] (default true) also
    write the verdict block through to the store, where a later
    [hardness sweep --shards 1] of the same plan will resume from it. *)

val persist : t -> unit
(** Write the current [Cache] snapshot to the store (slot 0 of a
    dedicated ["serve"] plan directory), so the next daemon start —
    and any sweep pointed at the same store — begins warm.  No-op
    without a store. *)
