(** The serve wire protocol: request/response batches over length-prefixed
    JSON frames.

    {1 Framing}

    Each frame is a 4-byte big-endian payload length followed by the
    payload bytes; payloads above {!max_frame} are rejected before any
    allocation.  Framing is exposed twice: as pure string functions
    ({!frame} / {!unframe}) the property tests drive, and as
    [Unix.file_descr] I/O ({!read_frame} / {!write_frame}) the server and
    client use.

    {1 Shape}

    A request frame is [{"requests": [{...}, ...]}] — a batch, the unit
    of admission.  Each request object carries an [id] (echoed back, so
    a client can match out-of-order completions), an [op], and the op's
    parameters.  A response frame is [{"responses": [{...}, ...]}] with
    one object per request, each [{"id", "ok", "warm", "micros", ...}] —
    on [ok: true] a [body] object, on [ok: false] an [error] code plus
    [message].  A frame that fails to parse at all yields a single
    response with [id: -1] and code [bad_request]. *)

type engine = Auto | Incremental | Scratch

type vmode = Exhaustive | Sampled of { seed : int; samples : int }

type op =
  | Ping
  | Catalog
  | Stats
  | Metrics  (** Prometheus-style text exposition of the live registry *)
  | Health  (** liveness summary: uptime, queue depth, warm entries *)
  | Verify of { family : string; k : int; vmode : vmode; engine : engine }
  | Simulate of { family : string; k : int; pairs : int; seed : int }
  | Reduction of {
      family : string;
      k : int;
      exhaustive : bool;
      pairs : int;
      seed : int;
    }
  | Sweep_status of { family : string; k : int; shards : int; vmode : vmode }

type request = {
  rq_id : int;
  rq_op : op;
  rq_deadline_ms : int option;
  rq_trace : string option;
      (** client-chosen trace id, stamped onto every span event the
          daemon emits while serving this request (wire field
          ["trace"]), so client- and server-side JSONL sinks join into
          one tree *)
}

type error_code =
  | Bad_request  (** unparseable or ill-shaped request *)
  | Unknown_family  (** family id not in the registry *)
  | Overloaded  (** admission queue full — retry later *)
  | Deadline_exceeded  (** [deadline_ms] elapsed before the op started *)
  | Unsupported  (** op needs a capability the family lacks *)
  | Internal  (** solver/IO failure while serving *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type outcome = Payload of Jsonx.t | Error of error_code * string

type response = {
  rs_id : int;
  rs_outcome : outcome;
  rs_warm : bool;  (** served from the warm-cache registry *)
  rs_micros : int;  (** service time, microseconds *)
}

(** {1 JSON codec} *)

val encode_requests : request list -> string
val decode_requests : string -> (request list, string) result
val encode_responses : response list -> string
val decode_responses : string -> (response list, string) result

(** {1 Pure framing} *)

val max_frame : int
(** Maximum payload length, 8 MiB. *)

val frame : string -> string
(** Prefix the payload with its 4-byte big-endian length.
    @raise Invalid_argument above {!max_frame}. *)

type unframed =
  | Frame of string * int  (** payload, next offset *)
  | Need_more  (** the buffer ends mid-header or mid-payload *)
  | Too_large of int  (** declared length above {!max_frame} *)

val unframe : string -> pos:int -> unframed
(** Decode one frame starting at [pos] of the buffer. *)

(** {1 Socket framing} *)

exception Protocol_error of string
(** Torn header/payload (EOF mid-frame) or an oversized declared
    length.  The server answers the connection with a [bad_request]
    response and closes; the client surfaces it. *)

val read_frame : Unix.file_descr -> string option
(** One payload, or [None] on clean EOF at a frame boundary.  Restarts
    on [EINTR].  @raise Protocol_error as above. *)

val write_frame : Unix.file_descr -> string -> unit
(** @raise Invalid_argument above {!max_frame}. *)

(** {1 First-read sniffing}

    A framed payload never begins with the bytes ["GET "] — as a length
    header they would decode to ~1.2 GiB, far above {!max_frame} — so
    the server sniffs a connection's first four bytes to also answer
    plain HTTP scrapes ([curl], Prometheus) on the same socket. *)

type first =
  | First_frame of string  (** a normal framed payload *)
  | Http_get of string
      (** an HTTP GET; the payload is the request path.  The request
          line and headers (8 KiB cap) have been drained — the caller
          writes a minimal HTTP response and closes. *)

val read_first : Unix.file_descr -> first option
(** First read on a fresh connection: [None] on clean EOF.
    @raise Protocol_error on a torn frame or an oversized HTTP
    request. *)
