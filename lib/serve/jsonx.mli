(** A minimal JSON codec for the serve wire protocol.

    The repo deliberately carries no JSON dependency (the bench and the
    registry render their JSON by hand), but a request {e parser} needs a
    real grammar, so this module implements just enough of RFC 8259 for
    the protocol: the seven value forms, string escapes (including
    [\uXXXX], decoded to UTF-8), and integer/float numbers.

    The codec round-trips: [parse (to_string v)] returns [Ok v] for every
    value this module can construct, with [Int]/[Float] kept distinct
    ([Float] renders with a decimal point or exponent even when
    integral).  Parsing is total — malformed input yields [Error], never
    an exception — because the bytes come straight off a socket. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no whitespace).  Object fields keep their given
    order.  @raise Invalid_argument on [Float nan] or infinities — JSON
    has no spelling for them and the protocol never needs one. *)

val parse : string -> (t, string) result
(** Parse exactly one JSON value spanning the whole string (trailing
    whitespace allowed).  Errors carry a byte offset. *)

(** {1 Accessors}

    Total lookups used by the protocol decoder: [None] on shape
    mismatch, so a malformed request degrades to a [bad_request]
    response instead of an exception. *)

val mem : string -> t -> t option
(** Field of an [Obj], [None] otherwise. *)

val as_int : t -> int option
(** [Int n], or a [Float] that is exactly integral. *)

val as_str : t -> string option
val as_bool : t -> bool option
val as_arr : t -> t list option
