type t = {
  q : (unit -> unit) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  max_depth : int;
  mutable running : int;  (** jobs currently executing *)
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

let worker t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.stopping do
      Condition.wait t.nonempty t.m
    done;
    match Queue.take_opt t.q with
    | Some job ->
        t.running <- t.running + 1;
        Mutex.unlock t.m;
        (try job () with _ -> ());
        Mutex.lock t.m;
        t.running <- t.running - 1;
        Mutex.unlock t.m;
        loop ()
    | None ->
        (* stopping and the queue is dry *)
        Mutex.unlock t.m
  in
  loop ()

let create ~workers ~queue_depth =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Scheduler.create: queue_depth must be >= 1";
  let t =
    {
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      max_depth = queue_depth;
      running = 0;
      stopping = false;
      threads = [];
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker t);
  t

let submit t job =
  Mutex.lock t.m;
  let accepted = (not t.stopping) && Queue.length t.q < t.max_depth in
  if accepted then begin
    Queue.add job t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  accepted

let depth t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

let drain t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.m;
  if not already then List.iter Thread.join threads
