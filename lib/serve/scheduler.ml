(* Per-client round-robin: one FIFO queue per client id plus a rotation
   of client ids with pending work.  A worker serves exactly one job
   from the head client, then sends that client to the back of the
   rotation — a chatty connection can fill its own queue but never
   starves a later-arriving client, which waits at most one job per
   competing client rather than behind the whole backlog. *)

type t = {
  queues : (int, (unit -> unit) Queue.t) Hashtbl.t;
  rotation : int Queue.t;  (** client ids with pending jobs, each once *)
  m : Mutex.t;
  nonempty : Condition.t;
  max_depth : int;
  mutable total : int;  (** jobs queued across all clients *)
  mutable running : int;  (** jobs currently executing *)
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

(* callers hold t.m *)
let take_next t =
  match Queue.take_opt t.rotation with
  | None -> None
  | Some client ->
      let q = Hashtbl.find t.queues client in
      let job = Queue.take q in
      t.total <- t.total - 1;
      if Queue.is_empty q then Hashtbl.remove t.queues client
      else Queue.add client t.rotation;
      Some job

let worker t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.rotation && not t.stopping do
      Condition.wait t.nonempty t.m
    done;
    match take_next t with
    | Some job ->
        t.running <- t.running + 1;
        Mutex.unlock t.m;
        (try job () with _ -> ());
        Mutex.lock t.m;
        t.running <- t.running - 1;
        Mutex.unlock t.m;
        loop ()
    | None ->
        (* stopping and the queues are dry *)
        Mutex.unlock t.m
  in
  loop ()

let create ~workers ~queue_depth =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Scheduler.create: queue_depth must be >= 1";
  let t =
    {
      queues = Hashtbl.create 16;
      rotation = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      max_depth = queue_depth;
      total = 0;
      running = 0;
      stopping = false;
      threads = [];
    }
  in
  t.threads <- List.init workers (fun _ -> Thread.create worker t);
  t

let submit ?(client = 0) t job =
  Mutex.lock t.m;
  let accepted = (not t.stopping) && t.total < t.max_depth in
  if accepted then begin
    (match Hashtbl.find_opt t.queues client with
    | Some q -> Queue.add job q
    | None ->
        let q = Queue.create () in
        Queue.add job q;
        Hashtbl.add t.queues client q;
        Queue.add client t.rotation);
    t.total <- t.total + 1;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  accepted

let depth t =
  Mutex.lock t.m;
  let n = t.total in
  Mutex.unlock t.m;
  n

let depths t =
  Mutex.lock t.m;
  let ds =
    Hashtbl.fold (fun client q acc -> (client, Queue.length q) :: acc) t.queues
      []
  in
  Mutex.unlock t.m;
  List.sort compare ds

let running t =
  Mutex.lock t.m;
  let n = t.running in
  Mutex.unlock t.m;
  n

let drain t =
  Mutex.lock t.m;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.m;
  if not already then List.iter Thread.join threads
