type reduction = {
  rd_parties : int;
  rd_partition : int array option;
  rd_solver : Framework.solver;
  rd_accept : int -> bool;
}

let reduction2 ~solver ~accept =
  {
    rd_parties = 2;
    rd_partition = None;
    rd_solver = Framework.Graph_solver solver;
    rd_accept = accept;
  }

let reduction_directed ~solver ~accept =
  {
    rd_parties = 2;
    rd_partition = None;
    rd_solver = Framework.Digraph_solver solver;
    rd_accept = accept;
  }

let reduction_partitioned ~partition ~solver ~accept =
  let parties = Ch_congest.Network.partition_parts partition in
  {
    rd_parties = parties;
    rd_partition = Some partition;
    rd_solver = Framework.Graph_solver solver;
    rd_accept = accept;
  }

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  origin : string;
  default_k : int;
  sweep_ks : int list;
  scratch : int -> Framework.t;
  incremental : (int -> Framework.incremental) option;
  reduction : (int -> reduction) option;
}

(* registration order matters for listings, so keep the list alongside the
   id index *)
type t = { specs : spec list; index : (string, spec) Hashtbl.t }

exception Duplicate_id of string

let of_specs specs =
  let index = Hashtbl.create (List.length specs) in
  List.iter
    (fun s ->
      if Hashtbl.mem index s.id then raise (Duplicate_id s.id);
      Hashtbl.add index s.id s)
    specs;
  { specs; index }

let ids t = List.map (fun s -> s.id) t.specs

let all t = t.specs

let find t id = Hashtbl.find_opt t.index id

let mem t id = Hashtbl.mem t.index id

let unknown_id_message t id =
  Printf.sprintf "unknown family %S; valid ids: %s" id
    (String.concat ", " (ids t))

let find_exn t id =
  match find t id with
  | Some s -> s
  | None -> invalid_arg (unknown_id_message t id)

let filter ?incremental ?reduction t =
  let flag opt present =
    match opt with None -> true | Some want -> want = present
  in
  List.filter
    (fun s ->
      flag incremental (s.incremental <> None)
      && flag reduction (s.reduction <> None))
    t.specs

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"families\": [\n";
  List.iteri
    (fun i s ->
      let fam = s.scratch s.default_k in
      let parties =
        match s.reduction with
        | None -> ""
        | Some rd ->
            Printf.sprintf ", \"parties\": %d" (rd s.default_k).rd_parties
      in
      Printf.bprintf buf
        "    {\"id\": \"%s\", \"title\": \"%s\", \"paper_ref\": \"%s\", \
         \"origin\": \"%s\", \"default_k\": %d, \"incremental\": %b, \
         \"reduction\": %b%s, \"n\": %d, \"input_bits\": %d, \"cut\": %d}%s\n"
        (json_escape s.id) (json_escape s.title) (json_escape s.paper_ref)
        (json_escape s.origin) s.default_k (s.incremental <> None)
        (s.reduction <> None) parties fam.Framework.nvertices
        fam.Framework.input_bits (Framework.cut_size fam)
        (if i < List.length t.specs - 1 then "," else ""))
    t.specs;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf
