open Ch_graph
open Ch_cc
module Obs = Ch_obs.Obs

(* Telemetry spans shared by every verification path: [apply_inputs]
   wraps instance construction, [solver] wraps the predicate (scratch or
   prepared), [core_build] wraps per-chunk incremental preparation, and
   [sidedness] wraps Definition 1.1 fingerprint checks.  All no-ops
   unless Obs is enabled. *)
let sp_apply = Obs.span "apply_inputs"
let sp_solver = Obs.span "solver"
let sp_core = Obs.span "core_build"
let sp_sided = Obs.span "sidedness"

type instance =
  | Undirected of Graph.t
  | Directed of Digraph.t
  | With_terminals of Graph.t * int list
  | Rooted_digraph of Digraph.t * int * int list

type t = {
  name : string;
  params : (string * int) list;
  input_bits : int;
  nvertices : int;
  side : bool array;
  build : Bits.t -> Bits.t -> instance;
  predicate : instance -> bool;
  f : Bits.t -> Bits.t -> bool;
}

let graph_of = function
  | Undirected g -> g
  | Directed dg -> Digraph.to_undirected dg
  | With_terminals (g, _) -> g
  | Rooted_digraph (dg, _, _) -> Digraph.to_undirected dg

(* weighted edge fingerprints of the two sides and the cut, plus vertex
   weights per side: everything Definition 1.1 constrains *)
let fingerprint fam instance =
  let g = graph_of instance in
  let side = fam.side in
  let a_edges = ref [] and b_edges = ref [] and cut = ref [] in
  Graph.iter_edges
    (fun u v w ->
      match (side.(u), side.(v)) with
      | true, true -> a_edges := (u, v, w) :: !a_edges
      | false, false -> b_edges := (u, v, w) :: !b_edges
      | _ -> cut := (u, v, w) :: !cut)
    g;
  let weights_of keep =
    List.filter_map
      (fun v -> if keep v then Some (v, Graph.vweight g v) else None)
      (List.init (Graph.n g) Fun.id)
  in
  ( List.sort compare !a_edges,
    List.sort compare !b_edges,
    List.sort compare !cut,
    weights_of (fun v -> side.(v)),
    weights_of (fun v -> not side.(v)) )

let cut_edges fam =
  let x = Bits.zeros fam.input_bits and y = Bits.zeros fam.input_bits in
  let _, _, cut, _, _ = fingerprint fam (fam.build x y) in
  List.map (fun (u, v, _) -> (u, v)) cut

let cut_size fam = List.length (cut_edges fam)

type cut_info = {
  ci_edges : (int * int) array;
  ci_asize : int;
  ci_bsize : int;
  ci_index : (int * int, int) Hashtbl.t;
}

let cut_info fam =
  let edges =
    Array.of_list
      (List.map
         (fun (u, v) -> if fam.side.(u) then (u, v) else (v, u))
         (cut_edges fam))
  in
  Array.sort compare edges;
  let index = Hashtbl.create (2 * Array.length edges) in
  Array.iteri
    (fun i (a, b) ->
      Hashtbl.replace index (a, b) i;
      Hashtbl.replace index (b, a) i)
    edges;
  let asize = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 fam.side in
  {
    ci_edges = edges;
    ci_asize = asize;
    ci_bsize = Array.length fam.side - asize;
    ci_index = index;
  }

let cut_index ci u v = Hashtbl.find_opt ci.ci_index (u, v)

(* ---- t-party multicut descriptors ------------------------------------ *)

type multicut_info = {
  mc_parts : int;
  mc_edges : (int * int) array;
  mc_index : (int * int, int) Hashtbl.t;
  mc_part_sizes : int array;
}

(* Like [cut_info], measured on the zero-input instance: Definition 1.1
   (and its multiparty analogue) requires the multicut to be input
   independent, so families registering a partition must keep their
   input edges inside parts. *)
let multicut_info fam ~partition =
  if Array.length partition <> fam.nvertices then
    invalid_arg "Framework.multicut_info: partition length";
  let t = Ch_congest.Network.partition_parts partition in
  let x = Bits.zeros fam.input_bits and y = Bits.zeros fam.input_bits in
  let g = graph_of (fam.build x y) in
  let cross = ref [] in
  Graph.iter_edges
    (fun u v _ ->
      if partition.(u) <> partition.(v) then
        cross :=
          (if partition.(u) < partition.(v) then (u, v) else (v, u)) :: !cross)
    g;
  let edges = Array.of_list !cross in
  Array.sort compare edges;
  let index = Hashtbl.create (2 * Array.length edges) in
  Array.iteri
    (fun i (a, b) ->
      Hashtbl.replace index (a, b) i;
      Hashtbl.replace index (b, a) i)
    edges;
  let sizes = Array.make t 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) partition;
  { mc_parts = t; mc_edges = edges; mc_index = index; mc_part_sizes = sizes }

let multicut_index mc u v = Hashtbl.find_opt mc.mc_index (u, v)

let build_timed fam x y = Obs.with_span sp_apply (fun () -> fam.build x y)

let verdict_timed fam x y =
  let inst = build_timed fam x y in
  Obs.with_span sp_solver (fun () -> fam.predicate inst)

let verdict = verdict_timed
let verify_pair fam x y = verdict_timed fam x y = fam.f x y

(* ---- incremental descriptors ---------------------------------------- *)

type cache_stats = { cache_hits : int; cache_misses : int }

let no_cache_stats = { cache_hits = 0; cache_misses = 0 }

let add_cache_stats a b =
  {
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
  }

type prepared = {
  pbuild : Bits.t -> Bits.t -> instance;
  pverdict : Bits.t -> Bits.t -> bool;
  pstats : unit -> cache_stats;
}

type incremental = { scratch : t; prepare : unit -> prepared }

let of_family fam =
  {
    scratch = fam;
    prepare =
      (fun () ->
        {
          pbuild = fam.build;
          pverdict = (fun x y -> fam.predicate (fam.build x y));
          pstats = (fun () -> no_cache_stats);
        });
  }

let verify_pair_inc p fam x y =
  Obs.with_span sp_solver (fun () -> p.pverdict x y) = fam.f x y

let prepare_timed inc = Obs.with_span sp_core inc.prepare

(* Verification fans out over the default domain pool (or [pool]).  The
   pair space is chunked into index ranges merged in range order, and
   every random draw below derives its seed from the sample index alone,
   so each function returns bit-identical results for any CH_JOBS. *)

let exhaustive_inputs name fam =
  if fam.input_bits > 10 then invalid_arg (name ^ ": K > 10");
  Array.of_list (Bits.all fam.input_bits)

let verify_exhaustive ?pool fam =
  let inputs = exhaustive_inputs "Framework.verify_exhaustive" fam in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Array.length inputs in
  let counts =
    Pool.parallel_chunks pool ~lo:0 ~hi:(n * n) (fun lo hi ->
        let failures = ref 0 in
        for p = lo to hi - 1 do
          if not (verify_pair fam inputs.(p / n) inputs.(p mod n)) then
            incr failures
        done;
        !failures)
  in
  (List.fold_left ( + ) 0 counts, n * n)

(* One prepared instance per chunk: the per-instance query scratch stays
   domain-local while the memoized core tables are shared, and the chunk
   boundaries (hence the merged counts) are the same as the from-scratch
   verifiers', so results stay bit-identical for any CH_JOBS. *)
let verify_exhaustive_inc ?pool inc =
  let fam = inc.scratch in
  let inputs = exhaustive_inputs "Framework.verify_exhaustive_inc" fam in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Array.length inputs in
  let chunks =
    Pool.parallel_chunks pool ~lo:0 ~hi:(n * n) (fun lo hi ->
        let p = prepare_timed inc in
        let failures = ref 0 in
        for i = lo to hi - 1 do
          if not (verify_pair_inc p fam inputs.(i / n) inputs.(i mod n)) then
            incr failures
        done;
        (!failures, p.pstats ()))
  in
  let failures = List.fold_left (fun acc (f, _) -> acc + f) 0 chunks in
  let stats =
    List.fold_left (fun acc (_, s) -> add_cache_stats acc s) no_cache_stats chunks
  in
  ((failures, n * n), stats)

let exhaustive_verdicts ?pool fam =
  let inputs = exhaustive_inputs "Framework.exhaustive_verdicts" fam in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Array.length inputs in
  let chunks =
    Pool.parallel_chunks pool ~lo:0 ~hi:(n * n) (fun lo hi ->
        Array.init (hi - lo) (fun j ->
            let i = lo + j in
            verdict_timed fam inputs.(i / n) inputs.(i mod n)))
  in
  Array.concat chunks

let exhaustive_verdicts_inc ?pool inc =
  let fam = inc.scratch in
  let inputs = exhaustive_inputs "Framework.exhaustive_verdicts_inc" fam in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Array.length inputs in
  let chunks =
    Pool.parallel_chunks pool ~lo:0 ~hi:(n * n) (fun lo hi ->
        let p = prepare_timed inc in
        let v =
          Array.init (hi - lo) (fun j ->
              let i = lo + j in
              Obs.with_span sp_solver (fun () ->
                  p.pverdict inputs.(i / n) inputs.(i mod n)))
        in
        (v, p.pstats ()))
  in
  let verdicts = Array.concat (List.map fst chunks) in
  let stats =
    List.fold_left
      (fun acc (_, s) -> add_cache_stats acc s)
      no_cache_stats chunks
  in
  (verdicts, stats)

let corner_pairs fam =
  let k = fam.input_bits in
  [
    (Bits.zeros k, Bits.zeros k);
    (Bits.ones k, Bits.ones k);
    (Bits.ones k, Bits.zeros k);
    (Bits.zeros k, Bits.ones k);
  ]

(* Sample [i] is the pair drawn from seeds (seed + 2i, seed + 2i + 1);
   the four corner pairs are checked first.  The derivation depends only
   on the sample index, never on a shared RNG, so any chunk can generate
   its own samples. *)
let random_pair_at fam ~seed i =
  if i < 4 then List.nth (corner_pairs fam) i
  else
    let i = i - 4 in
    let k = fam.input_bits in
    (Bits.random ~seed:(seed + (2 * i)) k, Bits.random ~seed:(seed + (2 * i) + 1) k)

let verify_random ?pool ~seed ~samples fam =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let total = samples + 4 in
  let counts =
    Pool.parallel_chunks pool ~lo:0 ~hi:total (fun lo hi ->
        let failures = ref 0 in
        for i = lo to hi - 1 do
          let x, y = random_pair_at fam ~seed i in
          if not (verify_pair fam x y) then incr failures
        done;
        !failures)
  in
  (List.fold_left ( + ) 0 counts, total)

let sampled_verdicts ?pool ~seed ~samples fam =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let total = samples + 4 in
  let chunks =
    Pool.parallel_chunks pool ~lo:0 ~hi:total (fun lo hi ->
        Array.init (hi - lo) (fun j ->
            let x, y = random_pair_at fam ~seed (lo + j) in
            verdict_timed fam x y))
  in
  Array.concat chunks

let verify_random_inc ?pool ~seed ~samples inc =
  let fam = inc.scratch in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let total = samples + 4 in
  let chunks =
    Pool.parallel_chunks pool ~lo:0 ~hi:total (fun lo hi ->
        let p = prepare_timed inc in
        let failures = ref 0 in
        for i = lo to hi - 1 do
          let x, y = random_pair_at fam ~seed i in
          if not (verify_pair_inc p fam x y) then incr failures
        done;
        (!failures, p.pstats ()))
  in
  let failures = List.fold_left (fun acc (f, _) -> acc + f) 0 chunks in
  let stats =
    List.fold_left (fun acc (_, s) -> add_cache_stats acc s) no_cache_stats chunks
  in
  ((failures, total), stats)

(* Sample [i] uses seeds (seed + 4i .. seed + 4i + 3). *)
let check_sidedness ?pool ~seed ~samples fam =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let k = fam.input_bits in
  let sample_ok i =
    Obs.with_span sp_sided (fun () ->
        let ok = ref true in
        let x = Bits.random ~seed:(seed + (4 * i)) k in
        let x' = Bits.random ~seed:(seed + (4 * i) + 1) k in
        let y = Bits.random ~seed:(seed + (4 * i) + 2) k in
        let y' = Bits.random ~seed:(seed + (4 * i) + 3) k in
        let _, b1, c1, _, wb1 = fingerprint fam (build_timed fam x y) in
        let _, b2, c2, _, wb2 = fingerprint fam (build_timed fam x' y) in
        (* changing x must leave Bob's side and the cut untouched *)
        if not (b1 = b2 && c1 = c2 && wb1 = wb2) then ok := false;
        let a1, _, c1, wa1, _ = fingerprint fam (build_timed fam x y) in
        let a2, _, c2, wa2, _ = fingerprint fam (build_timed fam x y') in
        if not (a1 = a2 && c1 = c2 && wa1 = wa2) then ok := false;
        (* the vertex count is fixed *)
        if Graph.n (graph_of (build_timed fam x y)) <> fam.nvertices then
          ok := false;
        !ok)
  in
  let oks =
    Pool.parallel_chunks pool ~lo:0 ~hi:samples (fun lo hi ->
        let ok = ref true in
        for i = lo to hi - 1 do
          if not (sample_ok i) then ok := false
        done;
        !ok)
  in
  List.for_all Fun.id oks

let lower_bound_rounds ~input_bits ~cut ~n =
  float_of_int (Commfn.cc_disj_lower_bound input_bits)
  /. (float_of_int cut *. (log (float_of_int n) /. log 2.0))

type simulation = {
  decision_correct : bool;
  cut_bits : int;
  cut_messages : int;
  rounds : int;
}

type solver =
  | Graph_solver of (Graph.t -> int)
  | Digraph_solver of (Digraph.t -> int)

let simulate_reduction ?seed ?bandwidth_factor ?partition fam ~solver ~accept x
    y =
  let open Ch_congest in
  let finish answer ~cut_bits ~cut_messages ~rounds =
    { decision_correct = accept answer = fam.f x y; cut_bits; cut_messages; rounds }
  in
  let of_cut (answer, (cs : Network.cut_stats)) =
    finish answer ~cut_bits:cs.Network.cut_bits
      ~cut_messages:cs.Network.cut_messages
      ~rounds:cs.Network.stats.Network.rounds
  in
  match (solver, fam.build x y, partition) with
  | Graph_solver f, Undirected g, None ->
      of_cut (Gather.solve_split ?seed ?bandwidth_factor ~side:fam.side g ~f)
  | Graph_solver f, Undirected g, Some partition ->
      let answer, ps =
        Gather.solve_partitioned ?seed ?bandwidth_factor ~partition g ~f
      in
      finish answer ~cut_bits:ps.Network.p_cross_bits
        ~cut_messages:ps.Network.p_cross_messages
        ~rounds:ps.Network.p_stats.Network.rounds
  | Digraph_solver f, Directed dg, None ->
      of_cut
        (Gather.solve_directed_split ?seed ?bandwidth_factor ~side:fam.side dg
           ~f)
  | Digraph_solver _, Directed _, Some _ ->
      invalid_arg
        "Framework.simulate_reduction: partitioned directed simulation is not \
         supported"
  | Graph_solver _, _, _ ->
      invalid_arg "Framework.simulate_reduction: undirected instances only"
  | Digraph_solver _, _, _ ->
      invalid_arg "Framework.simulate_reduction: directed instances only"

let simulate_alice_bob ?seed ?bandwidth_factor fam ~solver ~accept x y =
  simulate_reduction ?seed ?bandwidth_factor fam ~solver:(Graph_solver solver)
    ~accept x y

let reduce ~name ~transform ~nvertices ~side ~predicate fam =
  {
    name;
    params = fam.params;
    input_bits = fam.input_bits;
    nvertices;
    side;
    build = (fun x y -> transform (fam.build x y));
    predicate;
    f = fam.f;
  }
