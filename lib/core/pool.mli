(** A work-stealing pool of OCaml 5 domains.

    Family verification is embarrassingly parallel: up to 2^K × 2^K
    independent input pairs, each requiring an exact NP-hard solve.  The
    pool fans such workloads out across domains while keeping every
    result bit-identical to a sequential run — work is split into
    index-ordered tasks up front, each task derives any randomness from
    its own index, and results are merged in task order, so the schedule
    never influences the answer.

    {b Sizing.}  The default worker count is [CH_JOBS] when that
    environment variable is set to a positive integer, otherwise
    {!Domain.recommended_domain_count}.  With one worker the pool runs
    every batch sequentially on the calling domain — no domains are
    spawned and no synchronization is performed, so [CH_JOBS=1] is an
    exact fallback for single-core machines (and the reference against
    which parallel runs are compared in tests and benchmarks).

    {b Scheduling.}  Each batch is partitioned round-robin into one
    slice per worker.  A worker drains its own slice front-to-back;
    when it runs dry it steals from the other slices back-to-front.
    Every task is claimed with a compare-and-set, so a task runs
    exactly once no matter how owners and thieves race.

    {b Exceptions.}  If tasks raise, the batch still drains (every task
    is either run or observed by the exception path), the workers
    survive, and the first exception observed is re-raised on the
    calling domain.  A failing batch therefore never deadlocks or
    poisons the pool.

    {b Re-entrancy.}  Calling {!run} (or anything built on it) from
    inside a pool task executes the nested batch sequentially on the
    current domain — nesting is safe but does not multiply
    parallelism. *)

type t

val jobs_from_env : unit -> int
(** [CH_JOBS] when set to a positive integer, otherwise
    {!Domain.recommended_domain_count} (always ≥ 1). *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] workers ([jobs_from_env ()] when omitted): the
    calling domain plus [jobs - 1] spawned domains.  Spawned workers
    idle on a condition variable between batches and are shut down at
    program exit. *)

val jobs : t -> int

val default : unit -> t
(** The process-wide shared pool, created on first use with
    [create ()].  The verification layer and the benchmark harness use
    this unless handed an explicit pool. *)

val run : t -> (int -> unit) list -> unit
(** [run pool tasks] executes every task exactly once, in parallel, and
    returns when all have finished.  Each task receives its own index.
    The first exception raised by any task is re-raised after the batch
    drains. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the applications distributed over the pool.
    The result order is that of the input list, independent of the
    schedule. *)

val parallel_chunks :
  t -> ?chunk_size:int -> lo:int -> hi:int -> (int -> int -> 'a) -> 'a list
(** [parallel_chunks pool ~lo ~hi f] splits the half-open range
    [\[lo, hi)] into contiguous chunks, evaluates [f chunk_lo chunk_hi]
    for each in parallel, and returns the per-chunk results in range
    order.  [chunk_size] defaults to a value that yields roughly four
    chunks per worker, so stealing can rebalance uneven chunks. *)

val shutdown : t -> unit
(** Stop and join the spawned workers.  Idempotent; called
    automatically at exit for every pool still alive. *)
