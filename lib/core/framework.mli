open Ch_graph
open Ch_cc

(** The paper's lower-bound framework.

    A {e family of lower bound graphs} (Definition 1.1) w.r.t. a function
    f : \{0,1\}^K × \{0,1\}^K → \{TRUE,FALSE\} and a predicate P is a set
    of graphs G_{x,y} on a fixed vertex set V = V_A ⊎ V_B such that only
    G[V_A] depends on x, only G[V_B] depends on y, and G_{x,y} ⊨ P iff
    f(x,y).  Theorem 1.1 turns such a family into an
    Ω(CC(f)/(|E_cut|·log n)) round lower bound: Alice and Bob simulate a
    CONGEST algorithm for P, exchanging only the messages that cross
    E_cut. *)

type instance =
  | Undirected of Graph.t
  | Directed of Digraph.t
  | With_terminals of Graph.t * int list
  | Rooted_digraph of Digraph.t * int * int list
      (** graph, root, terminals — the directed Steiner instances *)

type t = {
  name : string;
  params : (string * int) list;  (** construction parameters, e.g. [("k", 4)] *)
  input_bits : int;  (** K: the length of each player's input *)
  nvertices : int;
  side : bool array;  (** [side.(v)] iff v ∈ V_A *)
  build : Bits.t -> Bits.t -> instance;
  predicate : instance -> bool;  (** P, decided by an exact solver *)
  f : Bits.t -> Bits.t -> bool;  (** the communication function (e.g. ¬DISJ) *)
}

val graph_of : instance -> Graph.t
(** The underlying undirected graph (directed instances forget
    orientation) — used for structural measurements. *)

val cut_edges : t -> (int * int) list
(** E_cut of the family, measured on the all-zeros instance (by
    Definition 1.1 it is the same for every instance). *)

val cut_size : t -> int

type cut_info = {
  ci_edges : (int * int) array;
      (** E_cut, oriented (Alice endpoint, Bob endpoint), sorted *)
  ci_asize : int;  (** |V_A| *)
  ci_bsize : int;  (** |V_B| *)
  ci_index : (int * int, int) Hashtbl.t;  (** both orientations → index *)
}

val cut_info : t -> cut_info
(** The cut/side descriptor the reduction simulation works from:
    {!cut_edges} oriented towards Alice and indexed for per-edge traffic
    attribution (see [Ch_reduction.Trace]). *)

val cut_index : cut_info -> int -> int -> int option
(** Index of the cut edge {u,v} in {!field-ci_edges} (either endpoint
    order), or [None] when {u,v} does not cross the cut. *)

type multicut_info = {
  mc_parts : int;  (** t *)
  mc_edges : (int * int) array;
      (** the multicut, oriented (lower part, higher part), sorted *)
  mc_index : (int * int, int) Hashtbl.t;  (** both orientations → index *)
  mc_part_sizes : int array;  (** vertices per part *)
}

val multicut_info : t -> partition:int array -> multicut_info
(** The t-party analogue of {!cut_info} for a vertex partition: the cross
    edges of the zero-input instance, indexed for per-edge traffic
    attribution.  Like the 2-party cut, the multicut must be input
    independent — families registering a partition keep their input
    edges inside parts.
    @raise Invalid_argument on a partition of the wrong length or with
    an empty part. *)

val multicut_index : multicut_info -> int -> int -> int option

(** {1 Family verification}

    The three verifiers fan their (perfectly parallel) input-pair checks
    out over a domain pool — [pool] when given, otherwise
    {!Pool.default} (sized by [CH_JOBS], see {!Pool}).  All of them are
    deterministic regardless of the worker count or schedule: the pair
    space is chunked by index, per-chunk counts are merged in index
    order, and random samples derive their seeds from the sample index
    alone. *)

val verdict : t -> Bits.t -> Bits.t -> bool
(** P(G_{x,y}) alone — one cell of the verdict stream, for drivers (the
    sweep shards) that assemble {!exhaustive_verdicts}-compatible traces
    pair by pair. *)

val verify_pair : t -> Bits.t -> Bits.t -> bool
(** Does P(G_{x,y}) = f(x,y) hold for this input pair? *)

val verify_exhaustive : ?pool:Pool.t -> t -> int * int
(** [(failures, total)] over all 2^K × 2^K input pairs.
    @raise Invalid_argument when [input_bits > 10]. *)

val verify_random : ?pool:Pool.t -> seed:int -> samples:int -> t -> int * int
(** [(failures, total)] over the four all-zeros / all-ones corner pairs
    followed by [samples] random pairs.  {b Seeding scheme:} sample [i]
    (0-based, corners excluded) is the pair
    [(Bits.random ~seed:(seed + 2i), Bits.random ~seed:(seed + 2i + 1))]
    — each sample's seeds are a pure function of [seed] and [i], never a
    shared RNG stream, so the result is reproducible under any parallel
    schedule and any [CH_JOBS].

    {b Sampling is with replacement:} distinct sample indices may draw
    the same pair (and may re-draw a corner pair), and every index is
    counted — [failures] and [total] tally checks, not distinct pairs.
    Deduplicating would make the failure count depend on which indices
    collide and break the per-index seed derivation above, so duplicates
    are kept by design; use {!verify_exhaustive} when coverage of
    distinct pairs matters. *)

(** {2 Incremental verification}

    Per Definition 1.1 only the input encoding — O(k) edges — varies
    across the 2^K × 2^K pair space; the gadget core is fixed.  An
    {!incremental} descriptor exploits that: {!field-prepare} builds the
    core (and any solver cache, see [Ch_solvers.Cache]) once, and the
    returned {!prepared} patches input edges and answers the predicate
    per pair.  The plain {!field-scratch} family is kept alongside as the
    reference oracle — the [_inc] verifiers promise results bit-identical
    to their from-scratch counterparts, which the differential tests and
    the bench harness assert pair by pair.

    The verifiers call [prepare] once per pool chunk, so the mutable
    per-instance state never crosses domains; chunk boundaries match the
    from-scratch verifiers', keeping results independent of [CH_JOBS]. *)

type cache_stats = { cache_hits : int; cache_misses : int }
(** Summed solver-cache counters: a miss is a core-table computation, a
    hit an operation served from cached tables (see [Ch_solvers.Cache]). *)

val no_cache_stats : cache_stats

val add_cache_stats : cache_stats -> cache_stats -> cache_stats

type prepared = {
  pbuild : Bits.t -> Bits.t -> instance;
      (** Patch the core with the pair's input edges.  The returned
          instance aliases the core graph: it is valid until the next
          [pbuild]/[pverdict] call on this prepared value. *)
  pverdict : Bits.t -> Bits.t -> bool;
      (** P(G_{x,y}), equal to [scratch.predicate (scratch.build x y)]
          but answered from the core caches.

          {b Decision-bounded queries.}  Every family predicate is a
          threshold test ("optimum ≤ target" or "≥ target"), so a
          [pverdict] need not compute the optimum: it may call the
          solver's decision form ([Domset.exists_within],
          [Cache.maxcut_max ~stop_at], [Cache.dsteiner_cost ~cutoff],
          …), which cancels branch-and-bound subtrees that provably
          cannot cross the threshold.  The contract is unchanged — the
          verdict must be bit-identical to the scratch oracle on every
          pair, which the differential verifiers assert; only the node
          counts ([solver.*.nodes] in [Ch_obs]) shrink. *)
  pstats : unit -> cache_stats;
}

type incremental = {
  scratch : t;  (** the from-scratch family — the reference oracle *)
  prepare : unit -> prepared;
      (** build the core and solver caches; call once per worker *)
}

val of_family : t -> incremental
(** The degenerate incremental descriptor: rebuilds from scratch per pair
    and reports zero cache activity.  Lets the [_inc] drivers run
    un-ported families. *)

val verify_pair_inc : prepared -> t -> Bits.t -> Bits.t -> bool
(** [pverdict x y = f x y], the incremental {!verify_pair}. *)

val verify_exhaustive_inc :
  ?pool:Pool.t -> incremental -> (int * int) * cache_stats
(** Incremental {!verify_exhaustive}: identical [(failures, total)], plus
    the summed cache counters.  @raise Invalid_argument when
    [input_bits > 10]. *)

val verify_random_inc :
  ?pool:Pool.t -> seed:int -> samples:int -> incremental -> (int * int) * cache_stats
(** Incremental {!verify_random}: identical counts under the identical
    (documented) seed-derivation scheme. *)

val exhaustive_verdicts : ?pool:Pool.t -> t -> bool array
(** P(G_{x,y}) for every pair of the 2^K × 2^K space, row-major in
    (x, y) with inputs in {!Bits.all} order — the per-pair trace the
    differential harness compares between paths.
    @raise Invalid_argument when [input_bits > 10]. *)

val random_pair_at : t -> seed:int -> int -> Bits.t * Bits.t
(** The pair sample index [i] denotes under the documented
    {!verify_random} derivation: indices 0–3 are the four corner pairs
    (all-zeros/all-ones combinations, in {!verify_random}'s order) and
    index [i >= 4] is the pair drawn from seeds
    [(seed + 2(i-4), seed + 2(i-4) + 1)].  A pure function of [(seed, i)],
    so any slice of the sample space can be regenerated independently —
    the sweep scheduler's shards rely on exactly this. *)

val sampled_verdicts : ?pool:Pool.t -> seed:int -> samples:int -> t -> bool array
(** P(G_{x,y}) for sample indices [0 .. samples + 3] of the
    {!random_pair_at} space — the from-scratch per-pair trace a sampled
    sweep is differenced against, as {!exhaustive_verdicts} is for
    exhaustive sweeps. *)

val exhaustive_verdicts_inc :
  ?pool:Pool.t -> incremental -> bool array * cache_stats
(** The incremental per-pair trace; must equal {!exhaustive_verdicts} of
    the scratch family on every index. *)

val check_sidedness : ?pool:Pool.t -> seed:int -> samples:int -> t -> bool
(** Conditions 1–3 of Definition 1.1: the vertex set is fixed, G[V_B] and
    E_cut (edges, weights, vertex weights) do not depend on x, and
    symmetrically for y.  Checked on random input pairs; sample [i] draws
    its four strings from seeds [seed + 4i .. seed + 4i + 3]. *)

(** {1 Theorem 1.1} *)

val lower_bound_rounds : input_bits:int -> cut:int -> n:int -> float
(** CC(f)/(|E_cut|·log₂ n) with CC instantiated as the Ω(K) disjointness
    bound: the round lower bound the family certifies. *)

type simulation = {
  decision_correct : bool;
  cut_bits : int;
  cut_messages : int;
  rounds : int;
}

type solver =
  | Graph_solver of (Graph.t -> int)
  | Digraph_solver of (Digraph.t -> int)
      (** the local decision procedure a reduction runs at the gather
          root — on the undirected instance, or on the digraph itself
          for directed constructions (Hamiltonian families) *)

val simulate_reduction :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?partition:int array ->
  t ->
  solver:solver ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  simulation
(** Run the generic exact CONGEST algorithm (gather + local [solver]) on
    the instance of (x,y) and check that [accept answer] equals f(x,y).
    Without [partition] this is the two-party Theorem 1.1 simulation over
    [fam.side] (undirected or directed per the solver); with [partition]
    the t-party run charges every cross-part message against the
    multicut (undirected instances only). *)

val simulate_alice_bob :
  ?seed:int ->
  ?bandwidth_factor:int ->
  t ->
  solver:(Graph.t -> int) ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  simulation
(** Run the generic exact CONGEST algorithm (gather + local [solver]) on
    G_{x,y} with Alice simulating V_A and Bob V_B, count the bits crossing
    E_cut, and check that [accept answer] equals f(x,y): the two players
    have solved the communication problem, which is exactly the Theorem
    1.1 argument.  Only undirected instances are supported.
    [simulate_reduction] with a [Graph_solver] and no partition. *)

(** {1 Theorem 2.6: reductions between families} *)

val reduce :
  name:string ->
  transform:(instance -> instance) ->
  nvertices:int ->
  side:bool array ->
  predicate:(instance -> bool) ->
  t ->
  t
(** A new family G′_{x,y} = transform(G_{x,y}).  The Theorem 2.6 side
    conditions (V′ and E′ determined side-by-side) are not assumed — they
    are re-checked by {!check_sidedness} on the result. *)
