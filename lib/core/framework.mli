open Ch_graph
open Ch_cc

(** The paper's lower-bound framework.

    A {e family of lower bound graphs} (Definition 1.1) w.r.t. a function
    f : \{0,1\}^K × \{0,1\}^K → \{TRUE,FALSE\} and a predicate P is a set
    of graphs G_{x,y} on a fixed vertex set V = V_A ⊎ V_B such that only
    G[V_A] depends on x, only G[V_B] depends on y, and G_{x,y} ⊨ P iff
    f(x,y).  Theorem 1.1 turns such a family into an
    Ω(CC(f)/(|E_cut|·log n)) round lower bound: Alice and Bob simulate a
    CONGEST algorithm for P, exchanging only the messages that cross
    E_cut. *)

type instance =
  | Undirected of Graph.t
  | Directed of Digraph.t
  | With_terminals of Graph.t * int list
  | Rooted_digraph of Digraph.t * int * int list
      (** graph, root, terminals — the directed Steiner instances *)

type t = {
  name : string;
  params : (string * int) list;  (** construction parameters, e.g. [("k", 4)] *)
  input_bits : int;  (** K: the length of each player's input *)
  nvertices : int;
  side : bool array;  (** [side.(v)] iff v ∈ V_A *)
  build : Bits.t -> Bits.t -> instance;
  predicate : instance -> bool;  (** P, decided by an exact solver *)
  f : Bits.t -> Bits.t -> bool;  (** the communication function (e.g. ¬DISJ) *)
}

val graph_of : instance -> Graph.t
(** The underlying undirected graph (directed instances forget
    orientation) — used for structural measurements. *)

val cut_edges : t -> (int * int) list
(** E_cut of the family, measured on the all-zeros instance (by
    Definition 1.1 it is the same for every instance). *)

val cut_size : t -> int

(** {1 Family verification}

    The three verifiers fan their (perfectly parallel) input-pair checks
    out over a domain pool — [pool] when given, otherwise
    {!Pool.default} (sized by [CH_JOBS], see {!Pool}).  All of them are
    deterministic regardless of the worker count or schedule: the pair
    space is chunked by index, per-chunk counts are merged in index
    order, and random samples derive their seeds from the sample index
    alone. *)

val verify_pair : t -> Bits.t -> Bits.t -> bool
(** Does P(G_{x,y}) = f(x,y) hold for this input pair? *)

val verify_exhaustive : ?pool:Pool.t -> t -> int * int
(** [(failures, total)] over all 2^K × 2^K input pairs.
    @raise Invalid_argument when [input_bits > 10]. *)

val verify_random : ?pool:Pool.t -> seed:int -> samples:int -> t -> int * int
(** [(failures, total)] over the four all-zeros / all-ones corner pairs
    followed by [samples] random pairs.  {b Seeding scheme:} sample [i]
    (0-based, corners excluded) is the pair
    [(Bits.random ~seed:(seed + 2i), Bits.random ~seed:(seed + 2i + 1))]
    — each sample's seeds are a pure function of [seed] and [i], never a
    shared RNG stream, so the result is reproducible under any parallel
    schedule and any [CH_JOBS]. *)

val check_sidedness : ?pool:Pool.t -> seed:int -> samples:int -> t -> bool
(** Conditions 1–3 of Definition 1.1: the vertex set is fixed, G[V_B] and
    E_cut (edges, weights, vertex weights) do not depend on x, and
    symmetrically for y.  Checked on random input pairs; sample [i] draws
    its four strings from seeds [seed + 4i .. seed + 4i + 3]. *)

(** {1 Theorem 1.1} *)

val lower_bound_rounds : input_bits:int -> cut:int -> n:int -> float
(** CC(f)/(|E_cut|·log₂ n) with CC instantiated as the Ω(K) disjointness
    bound: the round lower bound the family certifies. *)

type simulation = {
  decision_correct : bool;
  cut_bits : int;
  cut_messages : int;
  rounds : int;
}

val simulate_alice_bob :
  ?seed:int ->
  ?bandwidth_factor:int ->
  t ->
  solver:(Graph.t -> int) ->
  accept:(int -> bool) ->
  Bits.t ->
  Bits.t ->
  simulation
(** Run the generic exact CONGEST algorithm (gather + local [solver]) on
    G_{x,y} with Alice simulating V_A and Bob V_B, count the bits crossing
    E_cut, and check that [accept answer] equals f(x,y): the two players
    have solved the communication problem, which is exactly the Theorem
    1.1 argument.  Only undirected instances are supported. *)

(** {1 Theorem 2.6: reductions between families} *)

val reduce :
  name:string ->
  transform:(instance -> instance) ->
  nvertices:int ->
  side:bool array ->
  predicate:(instance -> bool) ->
  t ->
  t
(** A new family G′_{x,y} = transform(G_{x,y}).  The Theorem 2.6 side
    conditions (V′ and E′ determined side-by-side) are not assumed — they
    are re-checked by {!check_sidedness} on the result. *)
