open Ch_graph

(** The family registry: one first-class catalog of every lower-bound
    family (Definition 1.1 instances) driving the bench, the CLI, the
    reduction sweeps and the tests.

    Each {!spec} packages a family's stable identity (CLI/bench id, human
    title, paper reference), its scale constructor ([k] ↦ scratch
    {!Framework.t}), the optional incremental descriptor, the optional
    Theorem 1.1 reduction algorithm (exact solver + acceptance threshold)
    and its default bench sweep bounds.  Adding a family is then a
    one-file change: export a [specs] list from the construction module
    and append it to the [Families] aggregation — the bench tables, the
    [hardness] subcommands, the reduction sweeps and the registry-generic
    differential tests pick it up from the catalog. *)

type reduction = {
  rd_parties : int;
      (** the simulation's party count: 2 for the classic Alice/Bob
          split over [Framework.side], t ≥ 3 when a vertex partition is
          registered *)
  rd_partition : int array option;
      (** the t-part vertex partition when [rd_parties > 2]; [None]
          means the 2-party [side] split *)
  rd_solver : Framework.solver;
      (** the exact solver of the family's optimisation problem, run at
          the gather root (see [Ch_reduction.Simulate.gather_spec]) *)
  rd_accept : int -> bool;  (** [accept γ ⟺ f(x,y)] at this scale *)
}

val reduction2 : solver:(Graph.t -> int) -> accept:(int -> bool) -> reduction
(** The classic 2-party reduction over the family's Alice/Bob side —
    existing 2-party specs register through this unchanged. *)

val reduction_directed :
  solver:(Digraph.t -> int) -> accept:(int -> bool) -> reduction
(** A 2-party reduction on a directed construction: the gather runs over
    the underlying communication graph and the root solves on the
    digraph itself (Hamiltonian families). *)

val reduction_partitioned :
  partition:int array ->
  solver:(Graph.t -> int) ->
  accept:(int -> bool) ->
  reduction
(** A t-party reduction over a vertex partition (t inferred from the
    partition); every cross-part message is charged against the
    part-pair's channel.  @raise Invalid_argument on an invalid
    partition. *)

type spec = {
  id : string;  (** stable CLI/bench id, e.g. ["mds"] — unique per registry *)
  title : string;  (** human title, e.g. ["exact MDS"] *)
  paper_ref : string;  (** figure/section reference, e.g. ["Thm 2.1, Fig 1"] *)
  origin : string;
      (** the [lib/lbgraphs] module exporting this spec, e.g. ["Mds_lb"] —
          what the CI registration guard checks against the mli exports *)
  default_k : int;  (** the scale the CLI and tests use by default *)
  sweep_ks : int list;  (** default bench sweep bounds (scales per row) *)
  scratch : int -> Framework.t;  (** [k] ↦ the from-scratch family *)
  incremental : (int -> Framework.incremental) option;
      (** [k] ↦ the incremental descriptor, when the family is ported to
          the core/apply-inputs split *)
  reduction : (int -> reduction) option;
      (** [k] ↦ the Theorem 1.1 reduction algorithm, when the family has a
          gather codec (undirected instances only) *)
}

type t

exception Duplicate_id of string
(** Raised at registration time when two specs claim the same id. *)

val of_specs : spec list -> t
(** Build a registry, checking id uniqueness.  @raise Duplicate_id. *)

val ids : t -> string list
(** All ids, in registration order. *)

val all : t -> spec list
(** All specs, in registration order. *)

val find : t -> string -> spec option

val find_exn : t -> string -> spec
(** @raise Invalid_argument with {!unknown_id_message} when absent. *)

val mem : t -> string -> bool

val filter :
  ?incremental:bool -> ?reduction:bool -> t -> spec list
(** Specs in registration order, restricted to those with (or, when the
    flag is [false], without) an incremental descriptor / a reduction
    algorithm. *)

val unknown_id_message : t -> string -> string
(** ["unknown family \"foo\"; valid ids: mds, maxis, ..."] — the error
    every consumer prints on a miss, so the valid ids are always shown. *)

val to_json : t -> string
(** The catalog dump behind [hardness list --json]: one object per spec
    with [id], [title], [paper_ref], [origin], [default_k], [incremental]
    and [reduction] booleans (plus the reduction's [parties] when it has
    one), plus [n]/[input_bits]/[cut] measured on the scratch family at
    [default_k]. *)
