(* A work-stealing pool of OCaml 5 domains.

   Batches are partitioned round-robin into one slice per worker: worker
   w owns the task indices congruent to w.  Owners drain their slice
   front-to-back; a worker that runs dry steals from the other slices
   back-to-front, so owners and thieves meet in the middle of uneven
   slices.  Every slot is claimed with a compare-and-set, which makes the
   race benign: each task runs exactly once regardless of schedule.

   Determinism is the callers' contract: tasks write only to their own
   index's result slot and derive any randomness from their index, so the
   merged result is independent of which domain ran what. *)

type batch = { tasks : (int -> unit) array; claimed : bool Atomic.t array }

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_cond : Condition.t;  (* new batch posted, or stopping *)
  done_cond : Condition.t;  (* remaining reached 0 *)
  mutable batch : batch option;
  mutable generation : int;
  mutable remaining : int;
  mutable first_exn : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  busy : bool Atomic.t;  (* a batch is in flight: nested runs go sequential *)
}

let jobs_from_env () =
  match Sys.getenv_opt "CH_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> invalid_arg (Printf.sprintf "CH_JOBS=%S: expected a positive integer" s))
  | None -> max 1 (Domain.recommended_domain_count ())

let jobs t = t.jobs

(* Run task [i] of [b], then retire it; exceptions are recorded (first
   wins) instead of escaping, so the batch always drains. *)
let run_task t b i =
  (try b.tasks.(i) i
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Mutex.lock t.mutex;
     if t.first_exn = None then t.first_exn <- Some (e, bt);
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  t.remaining <- t.remaining - 1;
  if t.remaining = 0 then Condition.broadcast t.done_cond;
  Mutex.unlock t.mutex

let claim b i = Atomic.compare_and_set b.claimed.(i) false true

(* Participate in batch [b] as worker [w]: drain own slice, then steal. *)
let work t b w =
  let n = Array.length b.tasks in
  let i = ref w in
  while !i < n do
    if claim b !i then run_task t b !i;
    i := !i + t.jobs
  done;
  for v = 1 to t.jobs - 1 do
    let v = (w + v) mod t.jobs in
    if v < n then begin
      let i = ref (v + ((n - 1 - v) / t.jobs * t.jobs)) in
      while !i >= 0 do
        if claim b !i then run_task t b !i;
        i := !i - t.jobs
      done
    end
  done

let worker t w () =
  (* A worker that oversleeps a whole batch (posted and fully drained by
     the others before it got the mutex) sees a fresh generation but
     [batch = None]; it must keep waiting for the next post rather than
     touch the vanished batch. *)
  let rec loop last_gen =
    Mutex.lock t.mutex;
    while
      (not t.stopped) && (t.generation = last_gen || Option.is_none t.batch)
    do
      Condition.wait t.work_cond t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let b = Option.get t.batch in
      Mutex.unlock t.mutex;
      work t b w;
      loop gen
    end
  in
  loop 0

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_cond;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

let registry = ref []
let registry_mutex = Mutex.create ()
let () = at_exit (fun () -> List.iter shutdown !registry)

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> jobs_from_env () in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      batch = None;
      generation = 0;
      remaining = 0;
      first_exn = None;
      stopped = false;
      domains = [];
      busy = Atomic.make false;
    }
  in
  if jobs > 1 then begin
    t.domains <- List.init (jobs - 1) (fun w -> Domain.spawn (worker t (w + 1)));
    Mutex.lock registry_mutex;
    registry := t :: !registry;
    Mutex.unlock registry_mutex
  end;
  t

let default_pool = ref None

let default () =
  Mutex.lock registry_mutex;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
        (* create inside the lock would self-deadlock on registry_mutex *)
        Mutex.unlock registry_mutex;
        let t = create () in
        Mutex.lock registry_mutex;
        (match !default_pool with
        | Some t' -> t'
        | None ->
            default_pool := Some t;
            t)
  in
  Mutex.unlock registry_mutex;
  t

let run_sequential tasks = List.iteri (fun i f -> f i) tasks

let run t tasks =
  let n = List.length tasks in
  if n = 0 then ()
  else if
    t.jobs = 1 || n = 1 || t.stopped
    || not (Atomic.compare_and_set t.busy false true)
  then run_sequential tasks
  else begin
    (* propagate the submitter's open-span path so worker-domain spans
       attach at the same place in the merged telemetry tree (the span
       tree shape is then independent of CH_JOBS) *)
    let ctx = Ch_obs.Obs.current_ctx () in
    let tasks =
      List.map (fun f i -> Ch_obs.Obs.with_ctx ctx (fun () -> f i)) tasks
    in
    let b =
      { tasks = Array.of_list tasks; claimed = Array.init n (fun _ -> Atomic.make false) }
    in
    Mutex.lock t.mutex;
    t.batch <- Some b;
    t.remaining <- n;
    t.first_exn <- None;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.mutex;
    work t b 0;
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.done_cond t.mutex
    done;
    let exn = t.first_exn in
    t.batch <- None;
    t.first_exn <- None;
    Mutex.unlock t.mutex;
    Atomic.set t.busy false;
    match exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let parallel_map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let out = Array.make (Array.length arr) None in
      run t
        (List.init (Array.length arr) (fun i _ -> out.(i) <- Some (f arr.(i))));
      Array.to_list (Array.map Option.get out)

let parallel_chunks t ?chunk_size ~lo ~hi f =
  if hi <= lo then []
  else begin
    let total = hi - lo in
    let chunk =
      match chunk_size with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Pool.parallel_chunks: chunk_size %d" c)
      | None -> max 1 (total / (4 * t.jobs))
    in
    let nchunks = (total + chunk - 1) / chunk in
    parallel_map t
      (fun c ->
        let clo = lo + (c * chunk) in
        f clo (min hi (clo + chunk)))
      (List.init nchunks Fun.id)
  end
