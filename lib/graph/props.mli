(** Structural graph properties: distances, connectivity, diameter,
    bipartiteness, bridges, 2-edge-connectivity. *)

val bfs_dist : Graph.t -> int -> int array
(** Hop distances from a source; unreachable vertices get [max_int]. *)

val bfs_tree : Graph.t -> int -> int array
(** Parent array of a BFS tree ([-1] for the root and unreachable). *)

val dijkstra : Graph.t -> int -> int array
(** Weighted distances (nonnegative weights); unreachable get [max_int]. *)

val connected : Graph.t -> bool

val components : Graph.t -> int array * int
(** Component id per vertex and the number of components. *)

val reachable_within : Graph.t -> int -> radius:int -> Bitset.t
(** Closed ball of the given hop radius around a vertex. *)

val eccentricity : Graph.t -> int -> int

val diameter : Graph.t -> int
(** @raise Invalid_argument on a disconnected graph. *)

val is_bipartite : Graph.t -> bool

val bipartition : Graph.t -> bool array option

val bridges : Graph.t -> (int * int) list
(** All bridge edges (u < v). *)

val is_two_edge_connected : Graph.t -> bool
(** Connected, at least 2 vertices, and bridgeless. *)

val is_spanning_connected : Graph.t -> (int * int) list -> bool
(** Does the given edge subset connect all [n] vertices? *)

val is_forest : Graph.t -> bool

val is_tree : Graph.t -> bool

val degree_histogram : Graph.t -> (int * int) list
(** Sorted [(degree, count)] pairs. *)

val strongly_connected : Digraph.t -> bool

val structural_hash : Graph.t -> int
(** A nonnegative hash of everything {!Graph.equal_structure} compares
    (vertex count, vertex weights, sorted weighted edge list), independent
    of edge insertion order.  Two structurally equal graphs hash alike;
    cache layers key on it (and re-check equality to rule out
    collisions). *)
