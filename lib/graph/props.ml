let bfs_generic g source visit =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    visit u dist.(u);
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  (dist, parent)

let bfs_dist g source = fst (bfs_generic g source (fun _ _ -> ()))

let bfs_tree g source = snd (bfs_generic g source (fun _ _ -> ()))

let dijkstra g source =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let module Pq = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0, source)) in
  dist.(source) <- 0;
  while not (Pq.is_empty !pq) do
    let ((d, u) as top) = Pq.min_elt !pq in
    pq := Pq.remove top !pq;
    if d = dist.(u) then
      List.iter
        (fun (v, w) ->
          if w < 0 then invalid_arg "Props.dijkstra: negative weight";
          if d + w < dist.(v) then begin
            dist.(v) <- d + w;
            pq := Pq.add (d + w, v) !pq
          end)
        (Graph.neighbors_w g u)
  done;
  dist

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let id = !count in
      incr count;
      let stack = ref [ v ] in
      comp.(v) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            List.iter
              (fun w ->
                if comp.(w) = -1 then begin
                  comp.(w) <- id;
                  stack := w :: !stack
                end)
              (Graph.neighbors g u)
      done
    end
  done;
  (comp, !count)

let connected g = Graph.n g = 0 || snd (components g) = 1

let reachable_within g source ~radius =
  let dist = bfs_dist g source in
  let ball = Bitset.create (Graph.n g) in
  Array.iteri (fun v d -> if d <= radius then Bitset.add ball v) dist;
  ball

let eccentricity g v =
  let dist = bfs_dist g v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Props.eccentricity: disconnected"
      else max acc d)
    0 dist

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    best := max !best (eccentricity g v)
  done;
  !best

let bipartition g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    if color.(v) = -1 then begin
      color.(v) <- 0;
      let queue = Queue.create () in
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.take queue in
        List.iter
          (fun w ->
            if color.(w) = -1 then begin
              color.(w) <- 1 - color.(u);
              Queue.add w queue
            end
            else if color.(w) = color.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  if !ok then Some (Array.map (fun c -> c = 1) color) else None

let is_bipartite g = bipartition g <> None

let bridges g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let result = ref [] in
  (* iterative DFS to survive deep graphs *)
  let rec dfs u parent =
    disc.(u) <- !timer;
    low.(u) <- !timer;
    incr timer;
    List.iter
      (fun v ->
        if disc.(v) = -1 then begin
          dfs v u;
          low.(u) <- min low.(u) low.(v);
          if low.(v) > disc.(u) then result := (min u v, max u v) :: !result
        end
        else if v <> parent then low.(u) <- min low.(u) disc.(v))
      (Graph.neighbors g u)
  in
  for v = 0 to n - 1 do
    if disc.(v) = -1 then dfs v (-1)
  done;
  List.sort compare !result

let is_two_edge_connected g =
  Graph.n g >= 2 && connected g && bridges g = []

let is_spanning_connected g edge_list =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let uf = Union_find.create n in
    List.iter
      (fun (u, v) ->
        assert (Graph.mem_edge g u v);
        ignore (Union_find.union uf u v))
      edge_list;
    Union_find.count uf = 1
  end

let is_forest g =
  let _, c = components g in
  Graph.m g = Graph.n g - c

let is_tree g = connected g && Graph.m g = Graph.n g - 1

let degree_histogram g =
  let tbl = Hashtbl.create 8 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let strongly_connected dg =
  let n = Digraph.n dg in
  n = 0
  ||
  let reach step =
    let seen = Array.make n false in
    let rec dfs v =
      seen.(v) <- true;
      List.iter (fun u -> if not seen.(u) then dfs u) (step v)
    in
    dfs 0;
    Array.for_all Fun.id seen
  in
  reach (Digraph.succ dg) && reach (Digraph.pred dg)

let structural_hash g =
  (* FNV-1a over exactly what Graph.equal_structure compares: n, m,
     vertex weights and the sorted weighted edge list.  Insertion-order
     independent, like equal_structure itself. *)
  let h = ref 0x27d4eb2f165667c5 in
  let mix x = h := (!h lxor x) * 0x100000001b3 in
  mix (Graph.n g);
  mix (Graph.m g);
  Array.iter mix (Graph.vweights g);
  List.iter
    (fun (u, v, w) ->
      mix u;
      mix v;
      mix w)
    (Graph.edges g);
  !h land max_int
