type t = { capacity : int; words : int array }

let bits_per_word = 63

let nwords capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { capacity; words = Array.make (max 1 (nwords capacity)) 0 }

let capacity t = t.capacity

let full capacity =
  let t = create capacity in
  let wn = Array.length t.words in
  for w = 0 to wn - 1 do
    let lo = w * bits_per_word in
    let hi = min t.capacity (lo + bits_per_word) in
    let count = hi - lo in
    if count > 0 then t.words.(w) <- (1 lsl count) - 1
  done;
  t

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* Population count by 16-bit table lookup: four dependent-free loads
   beat the bit-at-a-time Kernighan loop on the dense words the solvers
   scan.  Words may have bit 62 set (OCaml's 63-bit ints are negative
   then); [lsr] is a logical shift, so the top slice is still < 2^15. *)
let pc16 =
  let t = Bytes.create 65536 in
  Bytes.unsafe_set t 0 '\000';
  for i = 1 to 65535 do
    Bytes.unsafe_set t i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t (i lsr 1)) + (i land 1)))
  done;
  t

let[@inline] pc i = Char.code (Bytes.unsafe_get pc16 i)

let[@inline] popcount x =
  pc (x land 0xffff)
  + pc ((x lsr 16) land 0xffff)
  + pc ((x lsr 32) land 0xffff)
  + pc (x lsr 48)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  a.words = b.words

let subset a b =
  same_capacity a b;
  let n = Array.length a.words in
  let rec go w = w >= n || (a.words.(w) land lnot b.words.(w) = 0 && go (w + 1)) in
  go 0

let copy_into dst src =
  same_capacity dst src;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let union_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let union a b =
  let t = copy a in
  union_into t b;
  t

let inter a b =
  let t = copy a in
  inter_into t b;
  t

let diff a b =
  let t = copy a in
  diff_into t b;
  t

let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let intersects a b =
  same_capacity a b;
  let n = Array.length a.words in
  let rec go w = w < n && (a.words.(w) land b.words.(w) <> 0 || go (w + 1)) in
  go 0

(* Index of the lowest set bit: isolate it and popcount the ones below.
   With the table-based popcount this is O(1), not O(set bits). *)
let[@inline] lowest_bit x = popcount ((x land -x) - 1)

let choose t =
  let rec go w =
    if w >= Array.length t.words then raise Not_found
    else if t.words.(w) <> 0 then (w * bits_per_word) + lowest_bit t.words.(w)
    else go (w + 1)
  in
  go 0

(* Word-at-a-time scan: zero words cost one compare, and each set bit
   costs one ctz plus one clear-lowest-bit ([w land (w - 1)]) instead of
   a per-index [mem] probe. *)
let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let word = ref (Array.unsafe_get words w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let x = !word in
        f (base + lowest_bit x);
        word := x land (x - 1)
      done
    end
  done

let fold f t init =
  let words = t.words in
  let acc = ref init in
  for w = 0 to Array.length words - 1 do
    let word = ref (Array.unsafe_get words w) in
    if !word <> 0 then begin
      let base = w * bits_per_word in
      while !word <> 0 do
        let x = !word in
        acc := f (base + lowest_bit x) !acc;
        word := x land (x - 1)
      done
    end
  done;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity items =
  let t = create capacity in
  List.iter (add t) items;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
