(** Fixed-capacity bit sets over the integers [0, capacity).

    Used pervasively by the exact solvers, where sets of vertices must be
    intersected and scanned millions of times during branch and bound. *)

type t

val create : int -> t
(** [create capacity] is the empty set able to hold [0 .. capacity-1]. *)

val capacity : t -> int

val full : int -> t
(** [full capacity] contains every element of [0 .. capacity-1]. *)

val copy : t -> t

val clear : t -> unit
(** Remove every element (in place). *)

val copy_into : t -> t -> unit
(** [copy_into dst src] makes [dst] equal to [src] without allocating.
    The capacities must match. *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] when every element of [a] is in [b]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds all elements of [src] to [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] removes all elements of [src] from [dst]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val inter_cardinal : t -> t -> int

val intersects : t -> t -> bool

val choose : t -> int
(** Smallest element. @raise Not_found on the empty set. *)

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit
