type t = {
  n : int;
  mutable m : int;
  out : (int, int) Hashtbl.t array;
  inc : (int, int) Hashtbl.t array;
  vweight : int array;
}

let create ?(default_vweight = 1) n =
  if n < 0 then invalid_arg "Digraph.create";
  {
    n;
    m = 0;
    out = Array.init n (fun _ -> Hashtbl.create 4);
    inc = Array.init n (fun _ -> Hashtbl.create 4);
    vweight = Array.make n default_vweight;
  }

let n g = g.n

let m g = g.m

let check g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Digraph: vertex %d out of [0,%d)" v g.n)

let mem_arc g u v =
  check g u;
  check g v;
  Hashtbl.mem g.out.(u) v

let add_arc ?(w = 1) g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Digraph.add_arc: self loop";
  if Hashtbl.mem g.out.(u) v then
    invalid_arg (Printf.sprintf "Digraph.add_arc: duplicate arc (%d,%d)" u v);
  Hashtbl.replace g.out.(u) v w;
  Hashtbl.replace g.inc.(v) u w;
  g.m <- g.m + 1

let remove_arc g u v =
  check g u;
  check g v;
  if not (Hashtbl.mem g.out.(u) v) then
    invalid_arg (Printf.sprintf "Digraph.remove_arc: no arc (%d,%d)" u v);
  Hashtbl.remove g.out.(u) v;
  Hashtbl.remove g.inc.(v) u;
  g.m <- g.m - 1

let arc_weight g u v =
  check g u;
  check g v;
  match Hashtbl.find_opt g.out.(u) v with
  | Some w -> w
  | None -> raise Not_found

let vweight g v =
  check g v;
  g.vweight.(v)

let set_vweight g v w =
  check g v;
  g.vweight.(v) <- w

let succ g v =
  check g v;
  Hashtbl.fold (fun u _ acc -> u :: acc) g.out.(v) [] |> List.sort compare

let pred g v =
  check g v;
  Hashtbl.fold (fun u _ acc -> u :: acc) g.inc.(v) [] |> List.sort compare

let succ_w g v =
  check g v;
  Hashtbl.fold (fun u w acc -> (u, w) :: acc) g.out.(v) [] |> List.sort compare

let out_degree g v =
  check g v;
  Hashtbl.length g.out.(v)

let in_degree g v =
  check g v;
  Hashtbl.length g.inc.(v)

let iter_arcs f g =
  for u = 0 to g.n - 1 do
    Hashtbl.iter (fun v w -> f u v w) g.out.(u)
  done

let arcs g =
  let acc = ref [] in
  iter_arcs (fun u v w -> acc := (u, v, w) :: !acc) g;
  List.sort compare !acc

let copy g =
  {
    n = g.n;
    m = g.m;
    out = Array.map Hashtbl.copy g.out;
    inc = Array.map Hashtbl.copy g.inc;
    vweight = Array.copy g.vweight;
  }

let succ_bitsets g =
  Array.init g.n (fun v ->
      let set = Bitset.create g.n in
      Hashtbl.iter (fun u _ -> Bitset.add set u) g.out.(v);
      set)

let pred_bitsets g =
  Array.init g.n (fun v ->
      let set = Bitset.create g.n in
      Hashtbl.iter (fun u _ -> Bitset.add set u) g.inc.(v);
      set)

let of_arcs n arc_list =
  let g = create n in
  List.iter (fun (u, v) -> add_arc g u v) arc_list;
  g

let to_undirected g =
  let u_graph = Graph.create g.n in
  for v = 0 to g.n - 1 do
    Graph.set_vweight u_graph v g.vweight.(v)
  done;
  iter_arcs
    (fun u v w ->
      if Graph.mem_edge u_graph u v then
        Graph.set_edge_weight u_graph u v (min w (Graph.edge_weight u_graph u v))
      else Graph.add_edge ~w u_graph u v)
    g;
  u_graph

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph n=%d m=%d@," g.n g.m;
  iter_arcs (fun u v w -> Format.fprintf ppf "%d -> %d (w=%d)@," u v w) g;
  Format.fprintf ppf "@]"

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  iter_arcs
    (fun u v w ->
      if w = 1 then Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v)
      else Buffer.add_string buf (Printf.sprintf "  %d -> %d [label=%d];\n" u v w))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
