(** Simple directed graphs on vertices [0 .. n-1] with integer arc weights
    and integer vertex weights. *)

type t

val create : ?default_vweight:int -> int -> t

val n : t -> int

val m : t -> int
(** Number of arcs. *)

val add_arc : ?w:int -> t -> int -> int -> unit
(** [add_arc g u v] inserts the arc [u -> v].  Antiparallel arcs are
    allowed; duplicates and self loops are rejected. *)

val remove_arc : t -> int -> int -> unit
(** [remove_arc g u v] deletes the arc [u -> v].
    @raise Invalid_argument when the arc is absent. *)

val mem_arc : t -> int -> int -> bool

val arc_weight : t -> int -> int -> int
(** @raise Not_found when the arc is absent. *)

val vweight : t -> int -> int

val set_vweight : t -> int -> int -> unit

val succ : t -> int -> int list
(** Sorted out-neighbors. *)

val pred : t -> int -> int list
(** Sorted in-neighbors. *)

val succ_w : t -> int -> (int * int) list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val arcs : t -> (int * int * int) list
(** All arcs [(u, v, w)], sorted. *)

val iter_arcs : (int -> int -> int -> unit) -> t -> unit

val copy : t -> t

val succ_bitsets : t -> Bitset.t array

val pred_bitsets : t -> Bitset.t array

val of_arcs : int -> (int * int) list -> t

val to_undirected : t -> Graph.t
(** Forget orientation; antiparallel arc pairs collapse to one edge whose
    weight is the smaller arc weight. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** GraphViz source for the directed graph. *)
