#!/bin/sh
# Registration guard: every lib/lbgraphs module that exports lower-bound
# families (Framework.t) or incremental descriptors must be reflected in
# the registry catalog (`hardness list --json`).  Catches the "new family
# compiled but never registered" drift the old hand-wired consumer lists
# allowed.
#
# Usage: scripts/check_registry.sh [catalog.json]
# With no argument the catalog is produced by `dune exec bin/hardness.exe`.
set -eu
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
  catalog=$(cat "$1")
else
  catalog=$(dune exec bin/hardness.exe -- list --json)
fi

fail=0
for mli in lib/lbgraphs/*.mli; do
  base=$(basename "$mli" .mli)
  # the aggregation point itself is not a construction module
  [ "$base" = "families" ] && continue
  modname=$(printf '%s' "$base" | awk '{ print toupper(substr($0,1,1)) substr($0,2) }')

  exports_family=false
  grep -q 'Framework\.t' "$mli" && exports_family=true
  exports_specs=false
  grep -q 'Registry\.spec list' "$mli" && exports_specs=true
  exports_inc=false
  grep -q 'Framework\.incremental' "$mli" && exports_inc=true

  if $exports_family && ! $exports_specs; then
    echo "FAIL: $mli exports families (Framework.t) but no registry specs" \
      "(add: val specs : Ch_core.Registry.spec list)" >&2
    fail=1
  fi
  if $exports_specs && ! printf '%s' "$catalog" | grep -q "\"origin\": \"$modname\""; then
    echo "FAIL: $mli exports registry specs but \"$modname\" is not an origin" \
      "in the catalog — append ${modname}.specs to Families.all" >&2
    fail=1
  fi
  if $exports_inc && ! printf '%s' "$catalog" \
      | grep -q "\"origin\": \"$modname\".*\"incremental\": true"; then
    echo "FAIL: $mli exports an incremental descriptor but no catalog entry" \
      "from $modname has \"incremental\": true" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "registry guard ok: every lib/lbgraphs export is registered"
fi
exit "$fail"
