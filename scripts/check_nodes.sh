#!/bin/sh
# Pruning-regression guard: the branch-and-bound solvers publish their
# search effort as solver.*.nodes counters, folded into a first-class
# "solver_nodes" field per verify entry of the --json bench artifact.
# The counts are pure functions of the workload (schedule-independent,
# see the CH_JOBS determinism step), so a jump means a pruning rule or
# bound got weaker — which wall-clock noise would hide.  This compares
# the pinned workloads of a smoke BENCH json against the recorded
# baseline and fails on any entry exceeding it by more than 25%.
#
# Usage: scripts/check_nodes.sh BENCH.json [baseline.txt]
#
# Regenerate the baseline after an intentional solver change:
#   dune exec bench/main.exe -- e17 --json --smoke
#   scripts/check_nodes.sh --record BENCH_<ts>.json > scripts/nodes_baseline.txt
set -eu

record=false
if [ "${1:-}" = "--record" ]; then
  record=true
  shift
fi
if [ $# -lt 1 ]; then
  echo "usage: $0 [--record] BENCH.json [baseline.txt]" >&2
  exit 2
fi
file=$1
baseline=${2:-"$(dirname "$0")/nodes_baseline.txt"}

if $record; then
  python3 - "$file" <<'EOF'
import json, sys
bench = json.load(open(sys.argv[1]))
print("# per-entry solver_nodes baseline for scripts/check_nodes.sh")
print("# regenerate: scripts/check_nodes.sh --record BENCH_<ts>.json")
for e in bench.get("verify", []):
    if "solver_nodes" in e:
        print(f'{e["family"]} {e["solver_nodes"]}')
EOF
  exit 0
fi

python3 - "$file" "$baseline" <<'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
baseline = {}
with open(sys.argv[2]) as f:
    for line in f:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, nodes = line.split()
        baseline[name] = int(nodes)

entries = {e["family"]: e for e in bench.get("verify", [])}
fail = False
checked = 0
for name, base in sorted(baseline.items()):
    e = entries.get(name)
    if e is None:
        # the baseline pins smoke-run workloads; a full run carries a
        # superset, a differently-filtered run may miss some
        print(f"skip: {name} not in this bench run", file=sys.stderr)
        continue
    nodes = e.get("solver_nodes")
    if nodes is None:
        print(f"FAIL: {name} carries no solver_nodes field "
              "(bench run without telemetry?)", file=sys.stderr)
        fail = True
        continue
    limit = base + base // 4
    if nodes > limit:
        print(f"FAIL: {name} expanded {nodes} search nodes, baseline {base} "
              f"(limit {limit}) — a pruning rule regressed", file=sys.stderr)
        fail = True
    else:
        print(f"ok: {name} {nodes} nodes <= {limit} (baseline {base})")
        checked += 1

if not baseline:
    print("FAIL: baseline is empty", file=sys.stderr)
    fail = True
if not fail and checked == 0:
    print("FAIL: no pinned workload present in this bench run", file=sys.stderr)
    fail = True
sys.exit(1 if fail else 0)
EOF
