#!/bin/sh
# Sweep-engine crash/recovery smoke: run a small sharded sweep to get
# the one-shot digest, kill a store-backed sweep mid-flight with fault
# injection, resume it, and require that the resumed run recomputes
# nothing and reproduces the one-shot digest bit-for-bit (checked again
# against the in-process oracle via --check-oracle).
#
# Usage: scripts/check_sweep.sh HARDNESS_EXE
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 HARDNESS_EXE" >&2
  exit 2
fi
exe=$1

store=$(mktemp -d "${TMPDIR:-/tmp}/check_sweep.XXXXXX")
trap 'rm -rf "$store"' EXIT INT TERM

# One-shot scratch sweep: the reference digest, cross-checked against
# Framework.exhaustive_verdicts in-process.
scratch=$("$exe" sweep mds -k 2 --shards 6 --check-oracle)
echo "$scratch" | grep -q 'oracle differential: ok' || {
  echo "FAIL: scratch sweep disagrees with the oracle" >&2
  echo "$scratch" >&2
  exit 1
}
digest=$(echo "$scratch" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
[ -n "$digest" ] || { echo "FAIL: no digest in scratch output" >&2; exit 1; }

# Interrupted store-backed sweep: the fault trips after 2 shards, so the
# run must exit 3 (interrupted) and leave exactly 2 resumable blocks.
# CH_JOBS=1 keeps the fault point exact: with a wider pool, in-flight
# shards still finish by design.
rc=0
CH_JOBS=1 "$exe" sweep mds -k 2 --shards 6 --resume "$store" --fault-after 2 || rc=$?
if [ "$rc" -ne 3 ]; then
  echo "FAIL: faulted sweep exited $rc, expected 3" >&2
  exit 1
fi
blocks=$(find "$store" -name 'shard-*.blk' | wc -l)
if [ "$blocks" -ne 2 ]; then
  echo "FAIL: $blocks blocks persisted before the crash, expected 2" >&2
  exit 1
fi

# Resume: the stored shards are reused as-is, nothing is recomputed, and
# the merged stream matches both the oracle and the one-shot digest.
out=$("$exe" sweep mds -k 2 --shards 6 --resume "$store" --check-oracle)
echo "$out"
fail=0
echo "$out" | grep -q 'resumed=2'                  || { echo "FAIL: resume did not reuse 2 stored shards" >&2; fail=1; }
echo "$out" | grep -q 'recomputed=0'               || { echo "FAIL: resume recomputed stored work" >&2; fail=1; }
echo "$out" | grep -q 'corrupt=0'                  || { echo "FAIL: store corruption reported on clean resume" >&2; fail=1; }
echo "$out" | grep -q "digest $digest"             || { echo "FAIL: resumed digest differs from one-shot digest $digest" >&2; fail=1; }
echo "$out" | grep -q 'oracle differential: ok'    || { echo "FAIL: resumed sweep disagrees with the oracle" >&2; fail=1; }

[ "$fail" -eq 0 ] && echo "sweep smoke ok: crash after 2/6 shards, resume bit-identical ($digest)"
exit "$fail"
