#!/bin/sh
# Telemetry stream guard: validate a JSONL file produced by
# `hardness ... --profile --obs-out FILE` (or any Obs sink).  Each line
# must be one JSON object carrying an event discriminator ("ev" for
# span events, "type" for reduction trace events), and the span stream
# must be balanced: every span_open matched by a span_close.
#
# Usage: scripts/check_obs.sh FILE.jsonl
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 FILE.jsonl" >&2
  exit 2
fi
file=$1

[ -s "$file" ] || { echo "FAIL: $file is missing or empty" >&2; exit 1; }

fail=0
lineno=0
opens=0
closes=0
while IFS= read -r line || [ -n "$line" ]; do
  lineno=$((lineno + 1))
  case $line in
    {*}) ;;
    *)
      echo "FAIL: $file:$lineno is not a JSON object: $line" >&2
      fail=1
      continue
      ;;
  esac
  case $line in
    *'"ev"'*|*'"type"'*) ;;
    *)
      echo "FAIL: $file:$lineno has neither \"ev\" nor \"type\": $line" >&2
      fail=1
      ;;
  esac
  case $line in
    *'"ev": "span_open"'*) opens=$((opens + 1)) ;;
    *'"ev": "span_close"'*) closes=$((closes + 1)) ;;
  esac
done < "$file"

if [ "$opens" -ne "$closes" ]; then
  echo "FAIL: $file has $opens span_open but $closes span_close events" >&2
  fail=1
fi

# every line must parse as JSON when a python is around to check
if command -v python3 > /dev/null 2>&1; then
  python3 - "$file" <<'EOF' || fail=1
import json, sys
with open(sys.argv[1]) as f:
    for i, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as e:
            print(f"FAIL: line {i} is not valid JSON: {e}", file=sys.stderr)
            sys.exit(1)
        if not isinstance(obj, dict):
            print(f"FAIL: line {i} is not a JSON object", file=sys.stderr)
            sys.exit(1)
EOF
fi

if [ "$fail" -eq 0 ]; then
  echo "obs stream ok: $lineno events, $opens spans balanced"
fi
exit "$fail"
