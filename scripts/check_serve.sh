#!/bin/sh
# Serve daemon smoke: start the daemon on a Unix socket, hit it with
# two concurrent clients running different families (each differential-
# checked against the in-process oracle), require a warm-cache speedup
# on a repeated node-weighted-Steiner verify, then SIGTERM it under a
# normal workload and require a clean drain: exit 0, "draining" then
# "stopped" in the log, and no orphaned socket file.
#
# Usage: scripts/check_serve.sh HARDNESS_EXE
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 HARDNESS_EXE" >&2
  exit 2
fi
exe=$1

work=$(mktemp -d "${TMPDIR:-/tmp}/check_serve.XXXXXX")
sock="$work/serve.sock"
daemon_pid=
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

"$exe" serve --socket "$sock" --store "$work/store" \
  --obs-out "$work/serve.jsonl" > "$work/serve.log" 2>&1 &
daemon_pid=$!

# Wait for the daemon to bind its socket (up to 5s).
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon never bound $sock" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon exited before binding" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

# Two concurrent clients, different families, every served verdict
# stream bit-identical to the in-process oracle.
"$exe" client verify mds -k 2 --socket "$sock" --check-oracle \
  > "$work/c1.log" 2>&1 &
c1=$!
"$exe" client verify maxis -k 2 --socket "$sock" \
  --check-oracle > "$work/c2.log" 2>&1 &
c2=$!
wait "$c1" || { echo "FAIL: concurrent client 1 (mds)" >&2; cat "$work/c1.log" >&2; exit 1; }
wait "$c2" || { echo "FAIL: concurrent client 2 (maxis)" >&2; cat "$work/c2.log" >&2; exit 1; }
grep -q 'oracle differential: ok' "$work/c1.log" || { echo "FAIL: mds stream differs from the oracle" >&2; cat "$work/c1.log" >&2; exit 1; }
grep -q 'oracle differential: ok' "$work/c2.log" || { echo "FAIL: maxis stream differs from the oracle" >&2; cat "$work/c2.log" >&2; exit 1; }

# A mixed batch of the remaining ops against the same daemon.
"$exe" client catalog --socket "$sock" > /dev/null
"$exe" client stats --socket "$sock" > /dev/null
"$exe" client simulate mds -k 2 --pairs 2 --socket "$sock" > /dev/null
"$exe" client sweep-status mds -k 2 --shards 1 --socket "$sock" > /dev/null

# Repeated node-weighted-Steiner verify — the family no earlier request
# touched, so the first service is genuinely cold: the repeats must be
# served from the warm registry, measurably faster.
out=$("$exe" client verify steiner-node-weighted -k 2 --socket "$sock" \
  --repeat 6 --check-oracle)
echo "$out" | grep -q 'warm=true' || {
  echo "FAIL: repeated verify never hit the warm registry" >&2
  echo "$out" >&2
  exit 1
}
speedup=$(echo "$out" | sed -n 's/^warm_speedup=//p')
[ -n "$speedup" ] || { echo "FAIL: no warm_speedup in client output" >&2; exit 1; }
awk "BEGIN { exit !($speedup >= 2.0) }" || {
  echo "FAIL: warm speedup $speedup < 2.0" >&2
  echo "$out" >&2
  exit 1
}

# The telemetry sink streamed per-request events.
grep -q 'serve_request' "$work/serve.jsonl" || {
  echo "FAIL: no serve_request events in --obs-out stream" >&2
  exit 1
}

# Graceful SIGTERM drain: exit 0, drain messages logged, socket gone.
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited $rc on SIGTERM, expected 0" >&2
  cat "$work/serve.log" >&2
  exit 1
fi
grep -q 'draining' "$work/serve.log" || { echo "FAIL: no drain message in daemon log" >&2; cat "$work/serve.log" >&2; exit 1; }
grep -q 'stopped' "$work/serve.log" || { echo "FAIL: no stop message in daemon log" >&2; cat "$work/serve.log" >&2; exit 1; }
if [ -e "$sock" ]; then
  echo "FAIL: socket file $sock orphaned after drain" >&2
  exit 1
fi

echo "serve smoke ok: concurrent oracle differentials, warm speedup ${speedup}x, clean SIGTERM drain"
