#!/bin/sh
# Observability smoke: start the daemon with the report sampler on,
# scrape the metrics op and the HTTP GET surface, lint the exposition
# grammar, send a traced request with a client-side capture, join the
# two JSONL streams into one span tree with `hardness profile --from`,
# smoke `hardness top`, and check that `hardness bench-diff` flags an
# injected >= 25% pairs/sec regression while passing identical files.
#
# Usage: scripts/check_metrics.sh HARDNESS_EXE
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 HARDNESS_EXE" >&2
  exit 2
fi
exe=$1

work=$(mktemp -d "${TMPDIR:-/tmp}/check_metrics.XXXXXX")
sock="$work/serve.sock"
daemon_pid=
cleanup() {
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill -9 "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

"$exe" serve --socket "$sock" --store "$work/store" --sample-period 0.2 \
  --obs-out "$work/server.jsonl" > "$work/serve.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon never bound $sock" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon exited before binding" >&2
    cat "$work/serve.log" >&2
    exit 1
  fi
  sleep 0.1
done

# Traffic so the op histograms and cache counters have something in
# them, plus a traced request captured client-side for the join below.
"$exe" client verify mds -k 2 --socket "$sock" > /dev/null
"$exe" client verify mds -k 2 --socket "$sock" --trace-id t-ci-1 \
  --obs-out "$work/client.jsonl" > /dev/null
sleep 0.5  # at least two sampler ticks, so windowed quantiles resolve

# --- metrics op: exposition grammar and required families ---
"$exe" client metrics --socket "$sock" > "$work/metrics.txt"
bad=$(grep -v '^#' "$work/metrics.txt" | grep -v '^$' \
  | grep -cvE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(inf|nan)?$' \
  || true)
if [ "$bad" -ne 0 ]; then
  echo "FAIL: $bad exposition lines violate the metric-line grammar" >&2
  grep -v '^#' "$work/metrics.txt" \
    | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+(inf|nan)?$' >&2
  exit 1
fi
for want in \
  '# TYPE ch_serve_requests counter' \
  'ch_serve_op_verify_us{quantile="0.5"}' \
  'ch_serve_queue_wait_us{quantile="0.99"}' \
  'ch_serve_workers ' \
  'ch_cache_hit_rate{kind="'; do
  grep -qF "$want" "$work/metrics.txt" || {
    echo "FAIL: metrics output missing: $want" >&2
    cat "$work/metrics.txt" >&2
    exit 1
  }
done

# --- health op ---
"$exe" client health --socket "$sock" > "$work/health.txt"
grep -q '"status"[[:space:]]*:[[:space:]]*"ok"' "$work/health.txt" || {
  echo "FAIL: health op did not answer status ok" >&2
  cat "$work/health.txt" >&2
  exit 1
}

# --- HTTP GET on the same socket (curl if present, else python3) ---
http_get() {
  path=$1
  if command -v curl >/dev/null 2>&1; then
    curl -s --unix-socket "$sock" "http://localhost$path"
  else
    python3 - "$sock" "$path" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(("GET %s HTTP/1.0\r\nHost: x\r\n\r\n" % sys.argv[2]).encode())
buf = b""
while True:
    c = s.recv(65536)
    if not c:
        break
    buf += c
sys.stdout.write(buf.split(b"\r\n\r\n", 1)[1].decode())
EOF
  fi
}
if command -v curl >/dev/null 2>&1 || command -v python3 >/dev/null 2>&1; then
  http_get /metrics > "$work/http_metrics.txt"
  grep -q '^ch_serve_requests ' "$work/http_metrics.txt" || {
    echo "FAIL: HTTP GET /metrics did not return the exposition" >&2
    cat "$work/http_metrics.txt" >&2
    exit 1
  }
  [ "$(http_get /health)" = "ok" ] || {
    echo "FAIL: HTTP GET /health did not answer ok" >&2
    exit 1
  }
else
  echo "skip: neither curl nor python3 available for the HTTP GET check" >&2
fi

# --- hardness top, one plain refresh ---
"$exe" top --socket "$sock" --iters 1 --plain > "$work/top.txt"
grep -q 'queue wait' "$work/top.txt" || {
  echo "FAIL: hardness top rendered no queue-wait line" >&2
  cat "$work/top.txt" >&2
  exit 1
}

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero" >&2; exit 1; }
daemon_pid=

# --- cross-process trace join: client + server JSONL -> one tree ---
cat "$work/client.jsonl" "$work/server.jsonl" > "$work/joined.jsonl"
"$exe" profile --from "$work/joined.jsonl" > "$work/profile.txt"
for span in client_request serve_request; do
  grep -q "$span" "$work/profile.txt" || {
    echo "FAIL: joined profile is missing the $span span" >&2
    cat "$work/profile.txt" >&2
    exit 1
  }
done
# the daemon's span must sit *inside* the client's: deeper indentation
ci=$(grep 'client_request' "$work/profile.txt" | head -1 \
  | sed 's/[^ ].*//' | wc -c)
si=$(grep 'serve_request' "$work/profile.txt" | head -1 \
  | sed 's/[^ ].*//' | wc -c)
if [ "$si" -le "$ci" ]; then
  echo "FAIL: serve_request not nested under client_request in the joined tree" >&2
  cat "$work/profile.txt" >&2
  exit 1
fi

# --- bench-diff: identical files pass, injected regression fails ---
cat > "$work/old.json" <<'EOF'
{"timestamp": "2026-01-01T00:00:00Z", "jobs": 2,
 "verify": [{"family": "mds-k2", "pairs_per_s": 1000.0, "solver_nodes": 500,
             "cache_hits": 90, "cache_misses": 10}],
 "serve": [{"name": "steiner-warm", "warm_speedup": 8.0}]}
EOF
sed 's/"pairs_per_s": 1000.0/"pairs_per_s": 700.0/' "$work/old.json" \
  > "$work/slow.json"
"$exe" bench-diff "$work/old.json" "$work/old.json" > /dev/null || {
  echo "FAIL: bench-diff flagged identical files" >&2
  exit 1
}
rc=0
"$exe" bench-diff "$work/old.json" "$work/slow.json" \
  > "$work/diff.txt" 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "FAIL: bench-diff exited $rc on a 30% pairs/sec drop, expected 1" >&2
  cat "$work/diff.txt" >&2
  exit 1
fi
grep -q 'REGRESSION' "$work/diff.txt" || {
  echo "FAIL: bench-diff exit 1 without a REGRESSION line" >&2
  cat "$work/diff.txt" >&2
  exit 1
}

echo "metrics smoke ok: exposition lint, health, HTTP GET, joined trace tree, top, bench-diff gate"
