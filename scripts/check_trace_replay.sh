#!/bin/sh
# Round-level trace replay regression: record the per-message/per-round
# JSONL trace of a reduction sweep, replay it (`hardness replay`
# regenerates the sweep and differences the event streams), and require
# (a) a clean bit-identical replay on the 2-party mds sweep and the
# 4-party bitgadget sweep, and (b) a nonzero exit naming the first
# divergent event when the recorded trace is corrupted.
#
# Usage: scripts/check_trace_replay.sh HARDNESS_EXE
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 HARDNESS_EXE" >&2
  exit 2
fi
exe=$1

work=$(mktemp -d "${TMPDIR:-/tmp}/check_replay.XXXXXX")
cleanup() { rm -rf "$work"; }
trap cleanup EXIT INT TERM

# 2-party: exhaustive mds k=2.
"$exe" reduction mds -k 2 --exhaustive --trace "$work/mds.jsonl" \
  > "$work/mds.log" 2>&1
[ -s "$work/mds.jsonl" ] || {
  echo "FAIL: --trace wrote no events" >&2
  cat "$work/mds.log" >&2
  exit 1
}
"$exe" replay mds "$work/mds.jsonl" -k 2 --exhaustive > "$work/replay.log" 2>&1 || {
  echo "FAIL: mds replay diverged" >&2
  cat "$work/replay.log" >&2
  exit 1
}
grep -q 'trace replay ok' "$work/replay.log" || {
  echo "FAIL: no replay-ok line" >&2
  cat "$work/replay.log" >&2
  exit 1
}

# t=4 multiparty: sampled bitgadget k=4 (same seed on both sides).
"$exe" reduction bitgadget -k 4 --pairs 2 --seed 7 \
  --trace "$work/bg.jsonl" > "$work/bg.log" 2>&1
"$exe" replay bitgadget "$work/bg.jsonl" -k 4 --pairs 2 --seed 7 \
  > "$work/bg_replay.log" 2>&1 || {
  echo "FAIL: bitgadget replay diverged" >&2
  cat "$work/bg_replay.log" >&2
  exit 1
}

# Corrupt one recorded message width: the replay must fail and point at
# the divergent event.
sed '4s/"bits": [0-9]*/"bits": 9999/' "$work/mds.jsonl" > "$work/bad.jsonl"
if "$exe" replay mds "$work/bad.jsonl" -k 2 --exhaustive \
  > "$work/bad.log" 2>&1; then
  echo "FAIL: corrupted trace replayed cleanly" >&2
  cat "$work/bad.log" >&2
  exit 1
fi
grep -q 'traces diverge at event' "$work/bad.log" || {
  echo "FAIL: divergence not reported" >&2
  cat "$work/bad.log" >&2
  exit 1
}

echo "trace replay ok: mds k=2 exhaustive, bitgadget k=4 (t=4), corruption detected"
