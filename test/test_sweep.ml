(* Tests for the sharded, resumable sweep engine: the shard partition is
   an exact disjoint cover of the pair space, merged shard streams are
   bit-identical to the from-scratch oracle under any shard count /
   permutation / resume point, crash injection leaves a store a resumed
   run finishes with zero recomputation, and corrupted store artifacts
   are detected by checksum and transparently recomputed. *)

open Ch_graph
open Ch_cc
open Ch_core
open Ch_sweep
module Obs = Ch_obs.Obs
module Cache = Ch_solvers.Cache
module Mis = Ch_solvers.Mis

let qt = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* Helpers                                                          *)
(* ---------------------------------------------------------------- *)

let mds_fam =
  lazy
    (let cat = Ch_lbgraphs.Families.catalog () in
     (Registry.find_exn cat "mds").Registry.scratch 2)

(* A cheap synthetic family: the verdict is pure bit arithmetic, so
   qcheck can afford hundreds of full sweeps.  It still goes through
   build/predicate like every real family. *)
let dummy_fam k : Framework.t =
  let build x y =
    let g = Graph.create 2 in
    if (Bits.popcount x + Bits.popcount y) mod 2 = 0 then Graph.add_edge g 0 1;
    Framework.Undirected g
  in
  {
    name = "dummy";
    params = [ ("k", k) ];
    input_bits = k;
    nvertices = 2;
    side = [| true; false |];
    build;
    predicate =
      (function Framework.Undirected g -> Graph.m g > 0 | _ -> false);
    f = (fun x y -> (Bits.popcount x + Bits.popcount y) mod 2 = 0);
  }

(* Fault-injection counts are only exact under a serial schedule: with
   a wider pool, shards already in flight when the fault trips still
   finish (by design).  The determinism tests pin jobs=1. *)
let serial = lazy (Pool.create ~jobs:1 ())

let tmp_counter = ref 0

let temp_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ch_test_sweep_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let check_verdicts msg expected got =
  Alcotest.(check (array bool)) msg expected got

(* ---------------------------------------------------------------- *)
(* Shard descriptors: packing and partition                         *)
(* ---------------------------------------------------------------- *)

(* pack/unpack round-trips every valid (index, lo, hi) triple and the
   packed value is a non-negative immediate. *)
let prop_pack_roundtrip =
  QCheck.Test.make ~count:500 ~name:"shard pack/unpack roundtrip"
    QCheck.(
      triple (int_bound (Shard.max_shards - 1)) (int_bound Shard.max_pairs)
        (int_bound Shard.max_pairs))
    (fun (index, a, b) ->
      let lo = min a b and hi = max a b in
      let s = Shard.make ~index ~lo ~hi in
      let p = Shard.pack s in
      let s' = Shard.unpack p in
      p >= 0 && Shard.index s' = index && Shard.lo s' = lo && Shard.hi s' = hi
      && Shard.count s' = hi - lo)

let test_pack_rejects () =
  Alcotest.check_raises "negative packed value"
    (Invalid_argument "Shard.unpack: not a packed shard") (fun () ->
      ignore (Shard.unpack (-1)));
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Shard.make: need 0 <= lo <= hi <= max_pairs") (fun () ->
      ignore (Shard.make ~index:0 ~lo:5 ~hi:4));
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Shard.make: index out of range") (fun () ->
      ignore (Shard.make ~index:Shard.max_shards ~lo:0 ~hi:1))

(* The partition is an exact disjoint cover: contiguous half-open
   ranges, starting at 0, ending at total, indexed in order. *)
let exact_cover ~total ~shards =
  let plan = Shard.partition ~total ~shards in
  Array.length plan = shards
  && Shard.lo plan.(0) = 0
  && Shard.hi plan.(shards - 1) = total
  && Array.for_all (fun s -> Shard.count s >= 0) plan
  && Array.to_list plan
     |> List.mapi (fun i s -> Shard.index s = i) |> List.for_all Fun.id
  && List.for_all
       (fun i -> Shard.lo plan.(i + 1) = Shard.hi plan.(i))
       (List.init (shards - 1) Fun.id)
  && Array.fold_left (fun a s -> a + Shard.count s) 0 plan = total

let prop_partition_cover =
  QCheck.Test.make ~count:500 ~name:"partition is an exact disjoint cover"
    QCheck.(pair (int_range 0 100_000) (int_range 1 256))
    (fun (total, shards) -> exact_cover ~total ~shards)

(* The same, anchored on real pair-space sizes: exhaustive and sampled
   totals for every K <= 5, across a spread of shard counts including
   shards > total. *)
let test_partition_family_totals () =
  for k = 1 to 5 do
    let fam = dummy_fam k in
    List.iter
      (fun mode ->
        let total = Shard.total fam mode in
        List.iter
          (fun shards ->
            if not (exact_cover ~total ~shards) then
              Alcotest.failf "not an exact cover: K=%d total=%d shards=%d" k
                total shards)
          [ 1; 2; 3; 7; 8; 13; 64; total + 3 ])
      [ Shard.Exhaustive; Shard.Sampled { seed = 5; samples = 29 } ]
  done

(* ---------------------------------------------------------------- *)
(* Merge determinism: any permutation, any resume point              *)
(* ---------------------------------------------------------------- *)

(* Computing the shards in an arbitrary permutation and merging by
   descriptor offset reproduces the oracle stream bit-for-bit. *)
let prop_permuted_merge =
  QCheck.Test.make ~count:60
    ~name:"permuted shard merge = exhaustive_verdicts"
    QCheck.(triple (int_range 1 5) (int_range 1 12) (int_range 0 1000))
    (fun (k, shards, salt) ->
      let fam = dummy_fam k in
      let total = Shard.total fam Shard.Exhaustive in
      let plan = Shard.partition ~total ~shards in
      let gen = Shard.generator fam Shard.Exhaustive in
      let order =
        (* a deterministic pseudo-random permutation of the shard list *)
        List.init shards Fun.id
        |> List.map (fun i -> ((Hashtbl.hash (salt, i) : int), i))
        |> List.sort compare |> List.map snd
      in
      let verdicts = Array.make total false in
      List.iter
        (fun i ->
          let s = plan.(i) in
          for j = 0 to Shard.count s - 1 do
            let x, y = gen (Shard.lo s + j) in
            verdicts.(Shard.lo s + j) <- fam.Framework.f x y
          done)
        order;
      verdicts = Framework.exhaustive_verdicts fam)

(* Interrupt a store-backed sweep after a random number of shards, then
   resume: the merged stream is bit-identical to the one-shot oracle and
   nothing already persisted is recomputed. *)
let prop_resume_any_point =
  QCheck.Test.make ~count:25 ~name:"resume from any fault point = oracle"
    QCheck.(triple (int_range 1 4) (int_range 1 8) (int_range 0 8))
    (fun (k, shards, fault) ->
      let fam = dummy_fam k in
      let mode = Shard.Exhaustive in
      let pool = Lazy.force serial in
      with_temp_dir (fun dir ->
          let interrupted =
            match
              Sweep.run ~pool ~store_dir:dir ~fault_after:fault fam ~mode
                ~shards
            with
            | (_ : Sweep.outcome) -> false
            | exception Sweep.Interrupted n ->
                if n <> min fault shards then
                  QCheck.Test.fail_reportf
                    "interrupted after %d shards, expected %d" n
                    (min fault shards);
                true
          in
          if interrupted <> (fault < shards) then
            QCheck.Test.fail_reportf
              "fault=%d shards=%d: interrupted=%b" fault shards interrupted;
          let o = Sweep.run ~pool ~store_dir:dir fam ~mode ~shards in
          if interrupted && o.Sweep.shards_resumed <> fault then
            QCheck.Test.fail_reportf "resumed %d shards, expected %d"
              o.Sweep.shards_resumed fault;
          o.Sweep.shards_recomputed = 0
          && o.Sweep.failures = 0
          && o.Sweep.shards_resumed + o.Sweep.shards_completed = shards
          && o.Sweep.verdicts = Framework.exhaustive_verdicts fam))

(* The sampled pair space merges just as deterministically, including
   through a store round-trip. *)
let test_sampled_matches_oracle () =
  let fam = dummy_fam 5 in
  let mode = Shard.Sampled { seed = 3; samples = 37 } in
  let oracle = Sweep.oracle fam ~mode in
  let scratch = Sweep.run fam ~mode ~shards:5 in
  check_verdicts "scratch sampled sweep" oracle scratch.Sweep.verdicts;
  with_temp_dir (fun dir ->
      let first = Sweep.run ~store_dir:dir fam ~mode ~shards:5 in
      let again = Sweep.run ~store_dir:dir fam ~mode ~shards:5 in
      check_verdicts "stored sampled sweep" oracle first.Sweep.verdicts;
      check_verdicts "fully resumed sampled sweep" oracle again.Sweep.verdicts;
      Alcotest.(check int) "all shards resumed" 5 again.Sweep.shards_resumed;
      Alcotest.(check int) "nothing recomputed" 0 again.Sweep.shards_completed)

(* ---------------------------------------------------------------- *)
(* Crash injection on a real family                                 *)
(* ---------------------------------------------------------------- *)

(* Kill the sweep after 2 of 5 shards, check the store holds only
   intact blocks, then resume and demand zero recomputation — both in
   the outcome and in the sweep.shards.* obs counters. *)
let test_crash_recovery_mds () =
  let fam = Lazy.force mds_fam in
  let mode = Shard.Exhaustive in
  let shards = 5 in
  let pool = Lazy.force serial in
  with_temp_dir (fun dir ->
      (match
         Sweep.run ~pool ~store_dir:dir ~fault_after:2 fam ~mode ~shards
       with
      | _ -> Alcotest.fail "faulted sweep did not raise Interrupted"
      | exception Sweep.Interrupted n ->
          Alcotest.(check int) "shards before the crash" 2 n);
      (* Store integrity after the crash: every artifact present parses
         cleanly; nothing is corrupt. *)
      let st =
        Store.open_ ~dir ~key:(Sweep.store_key fam ~mode ~shards)
      in
      let present = ref 0 in
      Array.iter
        (fun s ->
          match Store.read_block st ~index:(Shard.index s) with
          | Store.Value v ->
              Alcotest.(check int) "block length" (Shard.count s)
                (Array.length v);
              incr present
          | Store.Missing -> ()
          | Store.Corrupt -> Alcotest.fail "corrupt block after crash")
        (Shard.partition ~total:(Shard.total fam mode) ~shards);
      Alcotest.(check int) "persisted blocks" 2 !present;
      (* Resume under telemetry. *)
      let was_enabled = Obs.enabled () in
      Obs.set_enabled true;
      Obs.reset ();
      let o = Sweep.run ~store_dir:dir fam ~mode ~shards in
      let counters = (Obs.report ()).Obs.r_counters in
      Obs.set_enabled was_enabled;
      Alcotest.(check int) "resumed shards" 2 o.Sweep.shards_resumed;
      Alcotest.(check int) "completed shards" 3 o.Sweep.shards_completed;
      Alcotest.(check int) "recomputed shards" 0 o.Sweep.shards_recomputed;
      Alcotest.(check int) "corrupt artifacts" 0 o.Sweep.artifacts_corrupt;
      Alcotest.(check int) "failures" 0 o.Sweep.failures;
      List.iter
        (fun (name, expected) ->
          Alcotest.(check int) name expected (List.assoc name counters))
        [
          ("sweep.shards.completed", 3);
          ("sweep.shards.resumed", 2);
          ("sweep.shards.recomputed", 0);
          ("sweep.store.corrupt", 0);
        ];
      check_verdicts "resumed stream = oracle"
        (Framework.exhaustive_verdicts fam)
        o.Sweep.verdicts)

(* ---------------------------------------------------------------- *)
(* Store corruption                                                 *)
(* ---------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Truncated and bit-flipped blocks — and a bit-flipped memo snapshot —
   must be caught by the checksum, counted, and recomputed without
   changing the merged stream. *)
let test_store_corruption () =
  let fam = Lazy.force mds_fam in
  let mode = Shard.Exhaustive in
  let shards = 6 in
  with_temp_dir (fun dir ->
      let first = Sweep.run ~store_dir:dir fam ~mode ~shards in
      Alcotest.(check int) "first run computes all" shards
        first.Sweep.shards_completed;
      let st =
        Store.open_ ~dir ~key:(Sweep.store_key fam ~mode ~shards)
      in
      let block i = Filename.concat (Store.dir st) (Printf.sprintf "shard-%04d.blk" i) in
      (* flip a payload bit in shard 1 *)
      let b1 = read_file (block 1) in
      let flip = Bytes.of_string b1 in
      let last = Bytes.length flip - 2 in
      Bytes.set flip last (if Bytes.get flip last = '0' then '1' else '0');
      write_file (block 1) (Bytes.to_string flip);
      (* truncate shard 3 mid-payload *)
      let b3 = read_file (block 3) in
      write_file (block 3) (String.sub b3 0 (String.length b3 - 3));
      (* corrupt the memo snapshot too *)
      let snap = Filename.concat (Store.dir st) "memo-0.snap" in
      let s = Bytes.of_string (read_file snap) in
      let mid = Bytes.length s / 2 in
      Bytes.set s mid (Char.chr (Char.code (Bytes.get s mid) lxor 0xff));
      write_file snap (Bytes.to_string s);
      Array.iter
        (fun i ->
          match Store.read_block st ~index:i with
          | Store.Corrupt -> ()
          | _ -> Alcotest.failf "tampered block %d not flagged corrupt" i)
        [| 1; 3 |];
      let o = Sweep.run ~store_dir:dir fam ~mode ~shards in
      Alcotest.(check int) "resumed" (shards - 2) o.Sweep.shards_resumed;
      Alcotest.(check int) "recomputed" 2 o.Sweep.shards_recomputed;
      Alcotest.(check int) "corrupt artifacts" 3 o.Sweep.artifacts_corrupt;
      Alcotest.(check int) "failures" 0 o.Sweep.failures;
      check_verdicts "stream unchanged by corruption"
        (Framework.exhaustive_verdicts fam)
        o.Sweep.verdicts;
      (* the recomputed blocks were re-persisted intact *)
      Array.iter
        (fun i ->
          match Store.read_block st ~index:i with
          | Store.Value _ -> ()
          | _ -> Alcotest.failf "block %d not repaired in store" i)
        [| 1; 3 |])

(* ---------------------------------------------------------------- *)
(* Memo-table snapshots and multi-process fan-out                   *)
(* ---------------------------------------------------------------- *)

let test_cache_snapshot_roundtrip () =
  Cache.clear ();
  (* populate two memo tables the way the incremental engine would *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  ignore (Cache.domset_prepare g ~radius:1);
  ignore (Cache.steiner_prepare g ~terminals:[ 0; 2 ] ~cap:4);
  let snap = Cache.snapshot () in
  Cache.clear ();
  let n = Cache.restore snap in
  Alcotest.(check bool) "restore repopulates tables" true (n > 0);
  Alcotest.(check int) "second restore adds nothing" 0 (Cache.restore snap);
  (match Cache.restore "garbage" with
  | _ -> Alcotest.fail "garbage restore did not fail"
  | exception Failure _ -> ());
  Cache.clear ()

(* The MIS/MWIS memo tables hold a mutex and a lazy evaluation closure,
   so their snapshot form is a projection to marshal-safe arrays and
   restore re-derives the lock and evaluator.  Check the full round
   trip: lazily-solved values survive, restored tables answer queries
   bit-identically to the from-scratch solvers on the patched graph. *)
let test_mis_snapshot_roundtrip () =
  Cache.clear ();
  let mk () =
    let g = Graph.of_edges 6 [ (0, 3); (1, 4); (2, 5); (3, 4); (4, 5) ] in
    Graph.set_vweight g 0 3;
    Graph.set_vweight g 1 5;
    Graph.set_vweight g 4 7;
    g
  in
  let volatile = [ 0; 1; 2 ] in
  let extra = [ (0, 1); (1, 2) ] in
  let patched = mk () in
  List.iter (fun (u, v) -> Graph.add_edge patched u v) extra;
  let expect_alpha = Mis.alpha patched in
  let expect_w = fst (Mis.max_weight_set patched) in
  let m = Cache.mis_prepare (mk ()) ~volatile in
  let w = Cache.mwis_prepare (mk ()) ~volatile in
  Alcotest.(check int) "mis before snapshot" expect_alpha
    (Cache.mis_alpha m ~extra);
  Alcotest.(check int) "mwis before snapshot" expect_w
    (Cache.mwis_weight w ~extra);
  let snap = Cache.snapshot () in
  Cache.clear ();
  let n = Cache.restore snap in
  Alcotest.(check bool) "restore adds both tables" true (n >= 2);
  Alcotest.(check int) "second restore adds nothing" 0 (Cache.restore snap);
  (* fresh prepared instances hit the restored memo and answer exactly *)
  let m' = Cache.mis_prepare (mk ()) ~volatile in
  let w' = Cache.mwis_prepare (mk ()) ~volatile in
  Alcotest.(check int) "mis after restore" expect_alpha
    (Cache.mis_alpha m' ~extra);
  Alcotest.(check int) "mwis after restore" expect_w
    (Cache.mwis_weight w' ~extra);
  (* unsolved entries stayed lazy and still solve on demand *)
  Alcotest.(check int) "mis, no extra edges" (Mis.alpha (mk ()))
    (Cache.mis_alpha m' ~extra:[]);
  Alcotest.(check int) "mwis, no extra edges"
    (fst (Mis.max_weight_set (mk ())))
    (Cache.mwis_weight w' ~extra:[]);
  Cache.clear ()

(* ---------------------------------------------------------------- *)
(* Cooperative stop: should_stop behaves like fault injection        *)
(* ---------------------------------------------------------------- *)

(* A should_stop closure that trips mid-sweep interrupts like
   --fault-after: finished shards persist, Interrupted carries their
   count, and a resumed run completes with zero recomputation. *)
let test_should_stop () =
  let fam = dummy_fam 4 in
  let mode = Shard.Exhaustive in
  let shards = 6 in
  let pool = Lazy.force serial in
  with_temp_dir (fun dir ->
      let calls = ref 0 in
      let stop () =
        incr calls;
        !calls > 2
      in
      let persisted =
        match
          Sweep.run ~pool ~store_dir:dir ~should_stop:stop fam ~mode ~shards
        with
        | _ -> Alcotest.fail "stopped sweep did not raise Interrupted"
        | exception Sweep.Interrupted n ->
            Alcotest.(check bool) "stopped mid-sweep" true
              (n >= 1 && n < shards);
            n
      in
      let o = Sweep.run ~pool ~store_dir:dir fam ~mode ~shards in
      Alcotest.(check int) "resumed shards" persisted o.Sweep.shards_resumed;
      Alcotest.(check int) "recomputed shards" 0 o.Sweep.shards_recomputed;
      Alcotest.(check int) "all shards covered" shards
        (o.Sweep.shards_resumed + o.Sweep.shards_completed);
      check_verdicts "stop/resume stream = oracle"
        (Framework.exhaustive_verdicts fam)
        o.Sweep.verdicts)

(* Span shape and counts, with the wall-clock timings stripped. *)
type sshape = S of string * int * sshape list

let rec sspan sp =
  S (sp.Obs.sp_name, sp.Obs.sp_count, List.map sspan sp.Obs.sp_children)

let obs_totals () =
  let r = Obs.report () in
  (r.Obs.r_counters, List.map sspan r.Obs.r_spans)

(* Unix.fork is illegal once domains have been created, so this test
   runs first in the suite, before anything touches a multi-domain
   pool (Sweep.run's multi-process path never does; the serial rerun
   below pins jobs=1, which spawns no domains either).

   Beyond the verdict stream, the coordinator's obs totals must be
   bit-identical to a serial in-process run of the same sweep: the
   forked workers' counters and spans travel back through the store
   as parting snapshots, so nothing the workers measured is lost.
   The mds family is the probe — its scratch verdicts drive the
   domset solver, whose node/prune counters are deterministic per
   pair and accumulate entirely inside the workers. *)
let test_multiprocess_matches_oracle () =
  let fam = Lazy.force mds_fam in
  let mode = Shard.Exhaustive in
  let shards = 7 in
  let oracle = Framework.exhaustive_verdicts fam in
  let was_enabled = Obs.enabled () in
  Fun.protect ~finally:(fun () -> Obs.set_enabled was_enabled) @@ fun () ->
  Obs.set_enabled true;
  Obs.reset ();
  let o2, multi_totals =
    with_temp_dir (fun dir ->
        let o = Sweep.run ~procs:2 ~store_dir:dir fam ~mode ~shards in
        (o, obs_totals ()))
  in
  Alcotest.(check int) "failures" 0 o2.Sweep.failures;
  Alcotest.(check int) "completed" shards o2.Sweep.shards_completed;
  check_verdicts "two-process sweep = oracle" oracle o2.Sweep.verdicts;
  Obs.reset ();
  let o1, serial_totals =
    with_temp_dir (fun dir ->
        let o =
          Sweep.run ~pool:(Lazy.force serial) ~store_dir:dir fam ~mode ~shards
        in
        (o, obs_totals ()))
  in
  Alcotest.(check int) "serial failures" 0 o1.Sweep.failures;
  check_verdicts "serial sweep = oracle" oracle o1.Sweep.verdicts;
  Alcotest.(check (list (pair string int)))
    "coordinator counter totals = serial totals" (fst serial_totals)
    (fst multi_totals);
  Alcotest.(check bool) "merged span forest = serial span forest" true
    (snd serial_totals = snd multi_totals)

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "sweep"
    [
      (* must stay first: forking is only legal before any domains *)
      ( "fanout",
        [
          Alcotest.test_case "multi-process fan-out" `Quick
            test_multiprocess_matches_oracle;
        ] );
      ( "shard",
        [
          qt prop_pack_roundtrip;
          Alcotest.test_case "pack validation" `Quick test_pack_rejects;
          qt prop_partition_cover;
          Alcotest.test_case "family pair-space cover (K <= 5)" `Quick
            test_partition_family_totals;
        ] );
      ( "determinism",
        [
          qt prop_permuted_merge;
          qt prop_resume_any_point;
          Alcotest.test_case "sampled mode" `Quick test_sampled_matches_oracle;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash injection + resume (mds)" `Quick
            test_crash_recovery_mds;
          Alcotest.test_case "store corruption" `Quick test_store_corruption;
          Alcotest.test_case "cache snapshot roundtrip" `Quick
            test_cache_snapshot_roundtrip;
          Alcotest.test_case "mis/mwis snapshot roundtrip" `Quick
            test_mis_snapshot_roundtrip;
          Alcotest.test_case "cooperative should_stop + resume" `Quick
            test_should_stop;
        ] );
    ]
