open Ch_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bitset                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_int "cardinal" 4 (Bitset.cardinal s);
  check "mem 63" true (Bitset.mem s 63);
  check "mem 64" true (Bitset.mem s 64);
  check "not mem 1" false (Bitset.mem s 1);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  check_int "choose" 0 (Bitset.choose s);
  check_int "elements" 3 (List.length (Bitset.elements s))

let test_bitset_full () =
  let s = Bitset.full 70 in
  check_int "cardinal full" 70 (Bitset.cardinal s);
  check "mem last" true (Bitset.mem s 69);
  let t = Bitset.create 70 in
  Bitset.add t 5;
  check "subset" true (Bitset.subset t s);
  check "not subset" false (Bitset.subset s t)

let test_bitset_ops () =
  let a = Bitset.of_list 128 [ 1; 2; 3; 100 ] in
  let b = Bitset.of_list 128 [ 2; 3; 4; 127 ] in
  check_int "inter" 2 (Bitset.cardinal (Bitset.inter a b));
  check_int "union" 6 (Bitset.cardinal (Bitset.union a b));
  check_int "diff" 2 (Bitset.cardinal (Bitset.diff a b));
  check_int "inter_cardinal" 2 (Bitset.inter_cardinal a b);
  check "intersects" true (Bitset.intersects a b);
  check "no intersect" false
    (Bitset.intersects a (Bitset.of_list 128 [ 0; 5 ]))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(list (int_bound 199))
    (fun items ->
      let sorted = List.sort_uniq compare items in
      let s = Bitset.of_list 200 items in
      Bitset.elements s = sorted && Bitset.cardinal s = List.length sorted)

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"bitset de morgan" ~count:200
    QCheck.(pair (list (int_bound 99)) (list (int_bound 99)))
    (fun (xs, ys) ->
      let full = Bitset.full 100 in
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      let lhs = Bitset.diff full (Bitset.union a b) in
      let rhs = Bitset.inter (Bitset.diff full a) (Bitset.diff full b) in
      Bitset.equal lhs rhs)

(* The word-level iter/fold against a naive per-index reference, at
   capacities straddling the 63-bit word boundary and on the empty /
   full / sparse shapes the solvers produce. *)

let boundary_capacities = [ 0; 1; 31; 62; 63; 64; 65; 125; 126; 127; 200 ]

let naive_elements s =
  List.filter (Bitset.mem s) (List.init (Bitset.capacity s) Fun.id)

let iter_elements s =
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let agrees_with_naive s =
  let reference = naive_elements s in
  iter_elements s = reference
  && Bitset.fold (fun i acc -> i :: acc) s [] = List.rev reference
  && Bitset.elements s = reference
  && Bitset.cardinal s = List.length reference
  && Bitset.is_empty s = (reference = [])
  && (reference = [] || Bitset.choose s = List.hd reference)

let test_bitset_scan_boundaries () =
  List.iter
    (fun cap ->
      let name shape = Printf.sprintf "%s capacity %d" shape cap in
      check (name "empty") true (agrees_with_naive (Bitset.create cap));
      check (name "full") true (agrees_with_naive (Bitset.full cap));
      (* every k-th element exercises runs of zero words *)
      List.iter
        (fun k ->
          let s = Bitset.create cap in
          let rec fill i = if i < cap then (Bitset.add s i; fill (i + k)) in
          fill 0;
          check (name (Printf.sprintf "stride-%d" k)) true (agrees_with_naive s))
        [ 1; 2; 63; 64; 100 ])
    boundary_capacities

let prop_bitset_scan =
  QCheck.Test.make ~name:"bitset iter/fold match naive reference" ~count:300
    QCheck.(pair (int_range 0 10) (list (int_bound 199)))
    (fun (cap_idx, items) ->
      let cap = List.nth boundary_capacities cap_idx in
      let s = Bitset.of_list cap (List.filter (fun i -> i < cap) items) in
      agrees_with_naive s)

(* ------------------------------------------------------------------ *)
(* Graph                                                              *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = Graph.create 5 in
  Graph.add_edge g 0 1;
  Graph.add_edge ~w:7 g 1 2;
  check_int "n" 5 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  check "mem" true (Graph.mem_edge g 1 0);
  check_int "weight" 7 (Graph.edge_weight g 2 1);
  check_int "deg" 2 (Graph.degree g 1);
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self loop")
    (fun () -> Graph.add_edge g 3 3);
  Alcotest.check_raises "dup" (Invalid_argument "Graph.add_edge: duplicate edge (0,1)")
    (fun () -> Graph.add_edge g 0 1);
  Graph.remove_edge g 0 1;
  check_int "m after remove" 1 (Graph.m g);
  check "removed" false (Graph.mem_edge g 0 1)

let test_graph_induced () =
  let g = Gen.clique 5 in
  let sub, map = Graph.induced g [ 0; 2; 4 ] in
  check_int "induced n" 3 (Graph.n sub);
  check_int "induced m" 3 (Graph.m sub);
  check_int "map" 4 map.(2)

let test_graph_union () =
  let g = Graph.union_disjoint (Gen.clique 3) (Gen.path 4) in
  check_int "n" 7 (Graph.n g);
  check_int "m" 6 (Graph.m g);
  check "cross edge absent" false (Graph.mem_edge g 2 3)

let test_graph_adjacency () =
  let g = Gen.cycle 5 in
  let adj = Graph.adjacency g in
  check_int "deg via bitset" 2 (Bitset.cardinal adj.(0));
  check "adj 0-1" true (Bitset.mem adj.(0) 1);
  check "adj 0-4" true (Bitset.mem adj.(0) 4);
  let cadj = Graph.closed_adjacency g in
  check "closed contains self" true (Bitset.mem cadj.(3) 3)


let test_to_dot () =
  let g = Gen.cycle 4 in
  Graph.set_vweight g 0 7;
  let dot = Graph.to_dot ~highlight:[ 1 ] g in
  check "graph header" true (String.length dot > 0 && String.sub dot 0 5 = "graph");
  check "edge present" true
    (let needle = "0 -- 1" in
     let rec find i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  let dg = Digraph.of_arcs 3 [ (0, 1); (2, 1) ] in
  let ddot = Digraph.to_dot dg in
  check "digraph header" true (String.sub ddot 0 7 = "digraph")

(* ------------------------------------------------------------------ *)
(* Digraph                                                            *)
(* ------------------------------------------------------------------ *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_arc g 0 1;
  Digraph.add_arc g 1 0;
  Digraph.add_arc ~w:3 g 1 2;
  check_int "m" 3 (Digraph.m g);
  check "mem" true (Digraph.mem_arc g 0 1);
  check "antiparallel" true (Digraph.mem_arc g 1 0);
  check "directedness" false (Digraph.mem_arc g 2 1);
  check_int "succ" 2 (List.length (Digraph.succ g 1));
  check_int "pred" 1 (List.length (Digraph.pred g 2));
  check_int "out deg" 2 (Digraph.out_degree g 1);
  check_int "in deg" 1 (Digraph.in_degree g 1);
  let u = Digraph.to_undirected g in
  check_int "undirected m" 2 (Graph.m u)

(* ------------------------------------------------------------------ *)
(* Generators & Props                                                 *)
(* ------------------------------------------------------------------ *)

let test_gen_counts () =
  check_int "path m" 9 (Graph.m (Gen.path 10));
  check_int "cycle m" 10 (Graph.m (Gen.cycle 10));
  check_int "clique m" 45 (Graph.m (Gen.clique 10));
  check_int "bipartite m" 12 (Graph.m (Gen.complete_bipartite 3 4));
  check_int "star m" 7 (Graph.m (Gen.star 8));
  check_int "grid m" 12 (Graph.m (Gen.grid 3 3));
  check_int "gnm m" 20 (Graph.m (Gen.gnm ~seed:3 15 20))

let test_gen_regular () =
  match Gen.random_regular ~seed:11 10 3 with
  | None -> Alcotest.fail "regular generation failed"
  | Some g ->
      for v = 0 to 9 do
        check_int "regular degree" 3 (Graph.degree g v)
      done

let test_props_bfs () =
  let g = Gen.path 6 in
  let dist = Props.bfs_dist g 0 in
  check_int "dist end" 5 dist.(5);
  check_int "diameter path" 5 (Props.diameter g);
  check_int "ecc middle" 3 (Props.eccentricity g 2);
  let parent = Props.bfs_tree g 0 in
  check_int "parent" 1 parent.(2)

let test_props_connectivity () =
  let g = Graph.union_disjoint (Gen.clique 3) (Gen.clique 3) in
  check "disconnected" false (Props.connected g);
  let _, c = Props.components g in
  check_int "components" 2 c;
  check "connected clique" true (Props.connected (Gen.clique 4))

let test_props_bipartite () =
  check "cycle4 bipartite" true (Props.is_bipartite (Gen.cycle 4));
  check "cycle5 not bipartite" false (Props.is_bipartite (Gen.cycle 5));
  check "grid bipartite" true (Props.is_bipartite (Gen.grid 3 4))

let test_props_bridges () =
  let g = Gen.path 4 in
  check_int "path bridges" 3 (List.length (Props.bridges g));
  check "cycle 2ec" true (Props.is_two_edge_connected (Gen.cycle 5));
  check "path not 2ec" false (Props.is_two_edge_connected (Gen.path 5));
  let g = Graph.create 5 in
  (* triangle with a pendant path *)
  List.iter (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ];
  check "bridges of lollipop" true
    (Props.bridges g = [ (2, 3); (3, 4) ])

let test_props_dijkstra () =
  let g = Graph.create 4 in
  Graph.add_edge ~w:10 g 0 3;
  Graph.add_edge ~w:1 g 0 1;
  Graph.add_edge ~w:1 g 1 2;
  Graph.add_edge ~w:1 g 2 3;
  let dist = Props.dijkstra g 0 in
  check_int "shortcut" 3 dist.(3)

let test_props_tree () =
  check "path is tree" true (Props.is_tree (Gen.path 5));
  check "cycle not tree" false (Props.is_tree (Gen.cycle 5));
  check "forest" true
    (Props.is_forest (Graph.union_disjoint (Gen.path 3) (Gen.path 4)))

let test_props_strongly_connected () =
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2); (2, 0) ] in
  check "dicycle strong" true (Props.strongly_connected g);
  let g = Digraph.of_arcs 3 [ (0, 1); (1, 2) ] in
  check "dipath not strong" false (Props.strongly_connected g)

let test_props_ball () =
  let g = Gen.path 7 in
  let ball = Props.reachable_within g 3 ~radius:2 in
  check_int "ball size" 5 (Bitset.cardinal ball);
  check "ball member" true (Bitset.mem ball 1);
  check "ball excludes" false (Bitset.mem ball 0)

(* ------------------------------------------------------------------ *)
(* Expander gadget                                                    *)
(* ------------------------------------------------------------------ *)

let test_expander_small () =
  List.iter
    (fun d ->
      let e = Expander.build d in
      check "certified" true e.Expander.certified;
      Array.iter
        (fun v -> check_int "distinguished degree 2" 2 (Graph.degree e.Expander.graph v))
        e.Expander.distinguished;
      check "max degree <= 4" true (Graph.max_degree e.Expander.graph <= 4);
      check "connected" true (Props.connected e.Expander.graph))
    [ 1; 2; 3; 4; 5; 6 ]

let prop_gnp_simple =
  QCheck.Test.make ~name:"gnp produces simple graphs" ~count:50
    QCheck.(pair (int_range 1 20) (int_bound 1000))
    (fun (n, seed) ->
      let g = Gen.gnp ~seed n 0.3 in
      List.for_all (fun (u, v, _) -> u < v && u >= 0 && v < n) (Graph.edges g))

let prop_induced_subgraph =
  QCheck.Test.make ~name:"induced subgraph edges come from parent" ~count:100
    QCheck.(pair (int_bound 1000) (list (int_bound 11)))
    (fun (seed, vs) ->
      let g = Gen.gnp ~seed 12 0.4 in
      let sub, map = Graph.induced g vs in
      List.for_all
        (fun (u, v, _) -> Graph.mem_edge g map.(u) map.(v))
        (Graph.edges sub))

let prop_components_partition =
  QCheck.Test.make ~name:"components partition respects edges" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let g = Gen.gnp ~seed 15 0.1 in
      let comp, _ = Props.components g in
      List.for_all (fun (u, v, _) -> comp.(u) = comp.(v)) (Graph.edges g))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "graph"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "ops" `Quick test_bitset_ops;
          Alcotest.test_case "scan at word boundaries" `Quick
            test_bitset_scan_boundaries;
          qt prop_bitset_roundtrip;
          qt prop_bitset_demorgan;
          qt prop_bitset_scan;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "union" `Quick test_graph_union;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "dot export" `Quick test_to_dot;
        ] );
      ("digraph", [ Alcotest.test_case "basic" `Quick test_digraph_basic ]);
      ( "gen",
        [
          Alcotest.test_case "counts" `Quick test_gen_counts;
          Alcotest.test_case "regular" `Quick test_gen_regular;
          qt prop_gnp_simple;
        ] );
      ( "props",
        [
          Alcotest.test_case "bfs" `Quick test_props_bfs;
          Alcotest.test_case "connectivity" `Quick test_props_connectivity;
          Alcotest.test_case "bipartite" `Quick test_props_bipartite;
          Alcotest.test_case "bridges" `Quick test_props_bridges;
          Alcotest.test_case "dijkstra" `Quick test_props_dijkstra;
          Alcotest.test_case "trees" `Quick test_props_tree;
          Alcotest.test_case "strong connectivity" `Quick test_props_strongly_connected;
          Alcotest.test_case "balls" `Quick test_props_ball;
          qt prop_induced_subgraph;
          qt prop_components_partition;
        ] );
      ("expander", [ Alcotest.test_case "claim 3.2 gadgets" `Quick test_expander_small ]);
    ]
