(* Tests for the serve daemon: the JSON codec and framing round-trip
   under qcheck (torn and oversized frames degrade to clean protocol
   errors, never exceptions), and an in-process daemon on a temp Unix
   socket serves verdicts bit-identical to the in-process oracle —
   cold, warm, across engines, and under concurrent clients — while
   backpressure and deadlines surface as typed error responses. *)

open Ch_core
open Ch_sweep
open Ch_serve
module Cache = Ch_solvers.Cache
module Obs = Ch_obs.Obs

let qt = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* Helpers                                                          *)
(* ---------------------------------------------------------------- *)

let cat = lazy (Ch_lbgraphs.Families.catalog ())
let fam_of id k = (Registry.find_exn (Lazy.force cat) id).Registry.scratch k

let tmp_counter = ref 0

let temp_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ch_test_serve_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* One fresh daemon per test: own socket, own warm registry, optional
   store, stopped (idempotently) on the way out. *)
let with_server ?(workers = 2) ?(queue_depth = 16) ?(store = false) f =
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "serve.sock" in
      let t =
        Server.start
          {
            Server.cfg_addr = Server.Unix_socket sock;
            cfg_workers = workers;
            cfg_queue_depth = queue_depth;
            cfg_store_dir =
              (if store then Some (Filename.concat dir "store") else None);
            cfg_obs_out = None;
            cfg_sample_period_s = 0.05;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () -> f t (Server.Unix_socket sock)))

let verify ?deadline ?trace ?(engine = Protocol.Auto)
    ?(vmode = Protocol.Exhaustive) ~id family k =
  {
    Protocol.rq_id = id;
    rq_op = Protocol.Verify { family; k; vmode; engine };
    rq_deadline_ms = deadline;
    rq_trace = trace;
  }

let simple ~id op =
  { Protocol.rq_id = id; rq_op = op; rq_deadline_ms = None; rq_trace = None }

let body_exn rs =
  match rs.Protocol.rs_outcome with
  | Protocol.Payload body -> body
  | Protocol.Error (c, m) ->
      Alcotest.failf "request %d failed %s: %s" rs.Protocol.rs_id
        (Protocol.error_code_to_string c)
        m

let field name body =
  match Jsonx.mem name body with
  | Some v -> v
  | None -> Alcotest.failf "response body lacks %S" name

let digest_of rs =
  match Jsonx.as_str (field "digest" (body_exn rs)) with
  | Some d -> d
  | None -> Alcotest.fail "digest is not a string"

let oracle_digest id k ~mode =
  Sweep.digest (Sweep.oracle (fam_of id k) ~mode)

(* ---------------------------------------------------------------- *)
(* Jsonx: printer/parser round-trip                                 *)
(* ---------------------------------------------------------------- *)

let json_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Jsonx.Null;
        map (fun b -> Jsonx.Bool b) bool;
        map (fun i -> Jsonx.Int i) (int_range (-1_000_000_000) 1_000_000_000);
        map (fun f -> Jsonx.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Jsonx.Str s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Jsonx.Arr l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun l -> Jsonx.Obj l)
                 (list_size (int_bound 4)
                    (pair (string_size ~gen:printable (int_bound 8)) (self (n / 2))));
             ])

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"jsonx print/parse roundtrip"
    (QCheck.make ~print:Jsonx.to_string json_gen) (fun j ->
      Jsonx.parse (Jsonx.to_string j) = Ok j)

(* strings that exercise every escape class, including the \uXXXX
   decoder with a surrogate pair *)
let test_json_escapes () =
  let j =
    Jsonx.Obj
      [
        ("quote\"back\\slash", Jsonx.Str "tab\tnl\ncr\rnul\x00bell\x07");
        ("unicode", Jsonx.Str "caf\xc3\xa9");
      ]
  in
  (match Jsonx.parse (Jsonx.to_string j) with
  | Ok j' -> Alcotest.(check bool) "escape roundtrip" true (j = j')
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Jsonx.parse {|"\u00e9 \ud83d\ude00"|} with
  | Ok (Jsonx.Str s) ->
      Alcotest.(check string) "uXXXX to UTF-8" "\xc3\xa9 \xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Jsonx.parse bad with
      | Ok _ -> Alcotest.failf "accepted malformed %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "nul"; "\"abc"; "1 2"; "{\"a\" 1}"; "" ]

(* ---------------------------------------------------------------- *)
(* Framing: pure round-trip, truncation, oversize                   *)
(* ---------------------------------------------------------------- *)

let prop_frame_roundtrip =
  QCheck.Test.make ~count:300 ~name:"frame/unframe roundtrip"
    (QCheck.make
       ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:char (int_bound 2000)))
    (fun s ->
      let f = Protocol.frame s in
      match Protocol.unframe (f ^ "trailing") ~pos:0 with
      | Protocol.Frame (p, next) -> p = s && next = String.length f
      | _ -> false)

let prop_frame_truncated =
  QCheck.Test.make ~count:300 ~name:"every strict prefix is Need_more"
    (QCheck.make
       ~print:(fun (s, salt) -> Printf.sprintf "(%S, %d)" s salt)
       QCheck.Gen.(
         pair (string_size ~gen:char (int_bound 500)) (int_bound 1000)))
    (fun (s, salt) ->
      let f = Protocol.frame s in
      let cut = salt mod String.length f in
      Protocol.unframe (String.sub f 0 cut) ~pos:0 = Protocol.Need_more)

let test_unframe_too_large () =
  let n = Protocol.max_frame + 1 in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  (match Protocol.unframe (Bytes.to_string b) ~pos:0 with
  | Protocol.Too_large m -> Alcotest.(check int) "declared length" n m
  | _ -> Alcotest.fail "oversized header not rejected");
  Alcotest.check_raises "frame refuses oversize"
    (Invalid_argument "Protocol.frame: payload too large") (fun () ->
      ignore (Protocol.frame (String.make n 'x')))

(* fd-level framing: clean EOF at a boundary is None; EOF mid-header,
   mid-payload, or an oversized declared length raise Protocol_error *)
let test_read_frame_errors () =
  let with_pair f =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ())
      (fun () -> f a b)
  in
  with_pair (fun a b ->
      Protocol.write_frame a "hello";
      Unix.close a;
      (match Protocol.read_frame b with
      | Some p -> Alcotest.(check string) "payload" "hello" p
      | None -> Alcotest.fail "EOF before the frame");
      Alcotest.(check bool) "clean EOF at boundary" true
        (Protocol.read_frame b = None));
  List.iter
    (fun torn ->
      with_pair (fun a b ->
          if String.length torn > 0 then
            ignore (Unix.write_substring a torn 0 (String.length torn));
          Unix.close a;
          match Protocol.read_frame b with
          | _ -> Alcotest.failf "torn frame (%d bytes) not rejected"
                   (String.length torn)
          | exception Protocol.Protocol_error _ -> ()))
    [
      String.sub (Protocol.frame "0123456789") 0 2 (* mid-header *);
      String.sub (Protocol.frame "0123456789") 0 7 (* mid-payload *);
      "\xff\xff\xff\xff" (* declared length far above max_frame *);
    ]

(* ---------------------------------------------------------------- *)
(* Request/response codec                                           *)
(* ---------------------------------------------------------------- *)

let sample_requests =
  [
    { Protocol.rq_id = 0; rq_op = Protocol.Ping; rq_deadline_ms = None;
      rq_trace = None };
    { Protocol.rq_id = 1; rq_op = Protocol.Catalog; rq_deadline_ms = Some 250;
      rq_trace = None };
    { Protocol.rq_id = 2; rq_op = Protocol.Stats; rq_deadline_ms = None;
      rq_trace = Some "trace-abc" };
    simple ~id:9 Protocol.Metrics;
    simple ~id:10 Protocol.Health;
    verify ~id:3 "mds" 2;
    verify ~id:4 ~deadline:5 ~engine:Protocol.Incremental
      ~vmode:(Protocol.Sampled { seed = 7; samples = 40 })
      "steiner-node-weighted" 3;
    verify ~id:5 ~engine:Protocol.Scratch ~trace:"t/esc\"ape" "maxis" 2;
    {
      Protocol.rq_id = 6;
      rq_op = Protocol.Simulate { family = "mds"; k = 2; pairs = 3; seed = 42 };
      rq_deadline_ms = None;
      rq_trace = None;
    };
    {
      Protocol.rq_id = 7;
      rq_op =
        Protocol.Reduction
          { family = "mds"; k = 2; exhaustive = true; pairs = 4; seed = 1 };
      rq_deadline_ms = None;
      rq_trace = None;
    };
    {
      Protocol.rq_id = 8;
      rq_op =
        Protocol.Sweep_status
          {
            family = "mds";
            k = 2;
            shards = 4;
            vmode = Protocol.Sampled { seed = 1; samples = 9 };
          };
      rq_deadline_ms = None;
      rq_trace = None;
    };
  ]

let test_request_codec () =
  match Protocol.decode_requests (Protocol.encode_requests sample_requests) with
  | Ok rs ->
      Alcotest.(check bool) "request roundtrip" true (rs = sample_requests)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_response_codec () =
  let rs =
    [
      {
        Protocol.rs_id = 1;
        rs_outcome = Protocol.Payload (Jsonx.Obj [ ("pong", Jsonx.Bool true) ]);
        rs_warm = true;
        rs_micros = 12;
      };
      {
        Protocol.rs_id = 2;
        rs_outcome = Protocol.Error (Protocol.Overloaded, "queue full");
        rs_warm = false;
        rs_micros = 0;
      };
    ]
  in
  (match Protocol.decode_responses (Protocol.encode_responses rs) with
  | Ok got -> Alcotest.(check bool) "response roundtrip" true (got = rs)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Protocol.error_code_to_string c)
        true
        (Protocol.error_code_of_string (Protocol.error_code_to_string c)
        = Some c))
    [
      Protocol.Bad_request;
      Protocol.Unknown_family;
      Protocol.Overloaded;
      Protocol.Deadline_exceeded;
      Protocol.Unsupported;
      Protocol.Internal;
    ]

let test_request_decode_rejects () =
  List.iter
    (fun bad ->
      match Protocol.decode_requests bad with
      | Ok _ -> Alcotest.failf "accepted ill-shaped batch %S" bad
      | Error _ -> ())
    [
      "[]";
      "{}";
      {|{"requests": 3}|};
      {|{"requests": [{"op": "verify"}]}|};
      {|{"requests": [{"id": 1}]}|};
      {|{"requests": [{"id": 1, "op": "no-such-op"}]}|};
      {|{"requests": [{"id": 1, "op": "verify", "family": "mds"}]}|};
    ]

(* ---------------------------------------------------------------- *)
(* Integration: daemon on a temp socket vs the in-process oracle    *)
(* ---------------------------------------------------------------- *)

let test_ping_catalog_stats () =
  with_server (fun _t addr ->
      let c = Client.connect ~retries:20 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let rs =
            Client.roundtrip c
              [
                simple ~id:7 Protocol.Ping;
                simple ~id:8 Protocol.Catalog;
                simple ~id:9 Protocol.Stats;
              ]
          in
          Alcotest.(check (list int))
            "ids echoed in order" [ 7; 8; 9 ]
            (List.map (fun r -> r.Protocol.rs_id) rs);
          let ping, catalog, stats =
            match rs with
            | [ a; b; c ] -> (a, b, c)
            | _ -> Alcotest.fail "expected 3 responses"
          in
          Alcotest.(check (option bool))
            "pong" (Some true)
            (Jsonx.as_bool (field "pong" (body_exn ping)));
          let fams =
            match Jsonx.as_arr (field "families" (body_exn catalog)) with
            | Some l -> l
            | None -> Alcotest.fail "families is not an array"
          in
          Alcotest.(check bool)
            "catalog lists every registry family" true
            (List.length fams = List.length (Registry.all (Lazy.force cat)));
          Alcotest.(check bool)
            "catalog includes mds" true
            (List.exists
               (fun f ->
                 Option.bind (Jsonx.mem "id" f) Jsonx.as_str = Some "mds")
               fams);
          Alcotest.(check (option int))
            "stats reports worker count" (Some 2)
            (Jsonx.as_int (field "workers" (body_exn stats)))))

(* Cold then warm: the first verify computes, the repeat is served from
   the warm registry, and both digests equal the in-process oracle. *)
let test_cold_then_warm_matches_oracle () =
  Cache.clear ();
  with_server ~store:true (fun _t addr ->
      let expect = oracle_digest "mds" 2 ~mode:Shard.Exhaustive in
      let c = Client.connect ~retries:20 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let cold =
            match Client.roundtrip c [ verify ~id:1 "mds" 2 ] with
            | [ r ] -> r
            | _ -> Alcotest.fail "expected 1 response"
          in
          Alcotest.(check bool) "first service is cold" false
            cold.Protocol.rs_warm;
          Alcotest.(check string) "cold digest = oracle" expect (digest_of cold);
          let warm =
            match Client.roundtrip c [ verify ~id:2 "mds" 2 ] with
            | [ r ] -> r
            | _ -> Alcotest.fail "expected 1 response"
          in
          Alcotest.(check bool) "repeat is warm" true warm.Protocol.rs_warm;
          Alcotest.(check string) "warm digest = oracle" expect
            (digest_of warm);
          Alcotest.(check (option string))
            "warm source is the memory tier" (Some "memory")
            (Jsonx.as_str (field "source" (body_exn warm)))))

(* Four clients, each its own connection and its own socket hop, racing
   the same two families: every verdict digest equals the oracle's. *)
let test_concurrent_clients_differential () =
  Cache.clear ();
  with_server ~workers:4 (fun _t addr ->
      let jobs =
        [ ("mds", 2); ("steiner-node-weighted", 2); ("maxis", 2); ("maxcut", 2) ]
      in
      let expected =
        List.map (fun (id, k) -> oracle_digest id k ~mode:Shard.Exhaustive) jobs
      in
      let failures = ref [] in
      let fail_lock = Mutex.create () in
      let worker (fam, k) expect =
        try
          let c = Client.connect ~retries:20 addr in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              for i = 0 to 2 do
                match Client.roundtrip c [ verify ~id:i fam k ] with
                | [ r ] ->
                    let d = digest_of r in
                    if d <> expect then
                      failwith
                        (Printf.sprintf "%s k=%d: digest %s <> oracle %s" fam k
                           d expect)
                | _ -> failwith "expected 1 response"
              done)
        with e ->
          Mutex.lock fail_lock;
          failures := Printexc.to_string e :: !failures;
          Mutex.unlock fail_lock
      in
      let threads =
        List.map2 (fun job exp -> Thread.create (fun () -> worker job exp) ())
          jobs expected
      in
      List.iter Thread.join threads;
      match !failures with
      | [] -> ()
      | fs -> Alcotest.failf "concurrent clients diverged: %s"
                (String.concat "; " fs))

(* The scratch and incremental engines answer a sampled verify with the
   same digest, equal to the sampled oracle — each on a fresh daemon so
   the warm registry cannot shortcut the engine under test. *)
let test_engines_agree_sampled () =
  Cache.clear ();
  let vmode = Protocol.Sampled { seed = 5; samples = 29 } in
  let mode = Shard.Sampled { seed = 5; samples = 29 } in
  let expect = oracle_digest "steiner-node-weighted" 2 ~mode in
  let run engine =
    with_server (fun t _addr ->
        match
          Server.serve_batch t
            [ verify ~id:0 ~engine ~vmode "steiner-node-weighted" 2 ]
        with
        | [ r ] -> digest_of r
        | _ -> Alcotest.fail "expected 1 response")
  in
  Alcotest.(check string) "incremental = oracle" expect
    (run Protocol.Incremental);
  Alcotest.(check string) "scratch = oracle" expect (run Protocol.Scratch)

let test_error_responses () =
  with_server (fun t _addr ->
      (* unknown family *)
      (match Server.serve_batch t [ verify ~id:1 "no-such-family" 2 ] with
      | [ { Protocol.rs_outcome = Protocol.Error (Protocol.Unknown_family, msg); _ } ] ->
          Alcotest.(check bool) "message names the family" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "unknown family not rejected");
      (* an elapsed deadline refuses the work *)
      match Server.serve_batch t [ verify ~id:2 ~deadline:0 "mds" 2 ] with
      | [ { Protocol.rs_outcome = Protocol.Error (Protocol.Deadline_exceeded, _); _ } ] ->
          ()
      | _ -> Alcotest.fail "deadline_ms=0 not refused")

(* One worker, queue depth one, a burst of eight: the admission queue
   refuses part of the burst as [overloaded] and serves the rest. *)
let test_overload_backpressure () =
  Cache.clear ();
  with_server ~workers:1 ~queue_depth:1 (fun t _addr ->
      let reqs =
        List.init 8 (fun i -> verify ~id:i "steiner-node-weighted" 2)
      in
      let rs = Server.serve_batch t reqs in
      Alcotest.(check int) "one response per request" 8 (List.length rs);
      let ok, overloaded, other =
        List.fold_left
          (fun (ok, ov, other) r ->
            match r.Protocol.rs_outcome with
            | Protocol.Payload _ -> (ok + 1, ov, other)
            | Protocol.Error (Protocol.Overloaded, _) -> (ok, ov + 1, other)
            | Protocol.Error _ -> (ok, ov, other + 1))
          (0, 0, 0) rs
      in
      Alcotest.(check int) "no other error kind" 0 other;
      Alcotest.(check bool) "some served" true (ok >= 1);
      Alcotest.(check bool) "some refused" true (overloaded >= 1))

(* Round-robin fairness: with the single worker wedged on a gate job,
   client 0 floods the queue, then client 1 submits its jobs.  A global
   FIFO would drain client 0's whole backlog before client 1's first
   job; the per-client rotation serves the two alternately, so neither
   starves. *)
let test_scheduler_fairness () =
  let sched = Scheduler.create ~workers:1 ~queue_depth:64 in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let gate_open = ref false in
  let gate_running = ref false in
  let order = ref [] in
  let record tag =
    Mutex.lock m;
    order := tag :: !order;
    Mutex.unlock m
  in
  (* wedge the worker so every later submission queues behind the gate *)
  Alcotest.(check bool)
    "gate admitted" true
    (Scheduler.submit sched (fun () ->
         Mutex.lock m;
         gate_running := true;
         Condition.broadcast cv;
         while not !gate_open do
           Condition.wait cv m
         done;
         Mutex.unlock m));
  Mutex.lock m;
  while not !gate_running do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  for i = 1 to 4 do
    Alcotest.(check bool)
      "A admitted" true
      (Scheduler.submit ~client:0 sched (fun () ->
           record (Printf.sprintf "A%d" i)))
  done;
  for i = 1 to 4 do
    Alcotest.(check bool)
      "B admitted" true
      (Scheduler.submit ~client:1 sched (fun () ->
           record (Printf.sprintf "B%d" i)))
  done;
  Alcotest.(check int) "eight queued" 8 (Scheduler.depth sched);
  Alcotest.(check (list (pair int int)))
    "per-client depths" [ (0, 4); (1, 4) ]
    (Scheduler.depths sched);
  Mutex.lock m;
  gate_open := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  Scheduler.drain sched;
  Alcotest.(check (list string))
    "clients alternate, FIFO within each"
    [ "A1"; "B1"; "A2"; "B2"; "A3"; "B3"; "A4"; "B4" ]
    (List.rev !order)

(* Stop under an in-flight batch: admitted jobs finish, their responses
   flush to the client, the socket file is unlinked, stop is
   idempotent, and new connections are refused. *)
let test_drain_under_load () =
  Cache.clear ();
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "serve.sock" in
      let t =
        Server.start
          {
            Server.cfg_addr = Server.Unix_socket sock;
            cfg_workers = 2;
            cfg_queue_depth = 16;
            cfg_store_dir = None;
            cfg_obs_out = None;
            cfg_sample_period_s = 0.05;
          }
      in
      let result = ref None in
      let client =
        Thread.create
          (fun () ->
            let c = Client.connect ~retries:20 (Server.Unix_socket sock) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let reqs = List.init 4 (fun i -> verify ~id:i "mds" 2) in
                result := Some (Client.roundtrip c reqs)))
          ()
      in
      (* let the batch get admitted, then drain while it is in flight *)
      Thread.delay 0.05;
      Server.stop t;
      Thread.join client;
      (match !result with
      | None -> Alcotest.fail "client never got its responses"
      | Some rs ->
          Alcotest.(check int) "all responses flushed" 4 (List.length rs);
          List.iter (fun r -> ignore (body_exn r)) rs);
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
      Server.stop t;
      (* idempotent *)
      match Client.connect (Server.Unix_socket sock) with
      | c ->
          Client.close c;
          Alcotest.fail "stopped daemon accepted a connection"
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
          ())

(* The warm state persists through the store: a second daemon on the
   same store answers its first request warm, from the store tier. *)
let test_warm_restart_from_store () =
  Cache.clear ();
  with_temp_dir (fun dir ->
      let config sock =
        {
          Server.cfg_addr = Server.Unix_socket sock;
          cfg_workers = 2;
          cfg_queue_depth = 16;
          cfg_store_dir = Some (Filename.concat dir "store");
          cfg_obs_out = None;
          cfg_sample_period_s = 0.;
        }
      in
      let expect = oracle_digest "mds" 2 ~mode:Shard.Exhaustive in
      let sock1 = Filename.concat dir "serve1.sock" in
      let t1 = Server.start (config sock1) in
      (match Server.serve_batch t1 [ verify ~id:1 "mds" 2 ] with
      | [ r ] -> Alcotest.(check string) "first daemon" expect (digest_of r)
      | _ -> Alcotest.fail "expected 1 response");
      Server.stop t1;
      Cache.clear ();
      let sock2 = Filename.concat dir "serve2.sock" in
      let t2 = Server.start (config sock2) in
      Fun.protect
        ~finally:(fun () -> Server.stop t2)
        (fun () ->
          match Server.serve_batch t2 [ verify ~id:2 "mds" 2 ] with
          | [ r ] ->
              Alcotest.(check bool) "served warm after restart" true
                r.Protocol.rs_warm;
              Alcotest.(check string) "restart digest" expect (digest_of r);
              Alcotest.(check (option string))
                "from the store tier" (Some "store")
                (Jsonx.as_str (field "source" (body_exn r)))
          | _ -> Alcotest.fail "expected 1 response"))

(* ---------------------------------------------------------------- *)
(* Observability: exposition format, metrics/health ops, HTTP GET,   *)
(* trace propagation                                                 *)
(* ---------------------------------------------------------------- *)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let check_contains label text needle =
  if not (contains text needle) then
    Alcotest.failf "%s: %S not found in:\n%s" label needle text

(* the sanitizer and escaper against the exposition grammar, then a
   full render with hostile names and label values *)
let test_exposition_format () =
  Alcotest.(check string)
    "dots and dashes" "cache_mds_k2_builds"
    (Expose.sanitize_name "cache.mds-k2.builds");
  Alcotest.(check string) "leading digit" "_9lives" (Expose.sanitize_name "9lives");
  Alcotest.(check string) "empty" "_" (Expose.sanitize_name "");
  Alcotest.(check string)
    "escapes" "a\\\\b\\\"c\\nd"
    (Expose.escape_label_value "a\\b\"c\nd");
  let text =
    Expose.render
      ~gauges:[ Expose.gauge ~labels:[ ("kind", "we\"ird\n\\") ] "g.x" 1.5 ]
      {
        Obs.r_enabled = true;
        r_counters = [ ("a.b", 3) ];
        r_spans = [];
        r_hists =
          [
            {
              Obs.h_name = "lat.us";
              h_count = 4;
              h_sum = 22;
              h_max = 9;
              h_buckets =
                [
                  { Obs.b_lo = 1; b_hi = 1; b_count = 1 };
                  { Obs.b_lo = 4; b_hi = 7; b_count = 2 };
                  { Obs.b_lo = 8; b_hi = 15; b_count = 1 };
                ];
            };
          ];
      }
  in
  check_contains "counter" text "# TYPE ch_a_b counter\nch_a_b 3\n";
  check_contains "summary type" text "# TYPE ch_lat_us summary";
  check_contains "p50" text "ch_lat_us{quantile=\"0.5\"} 7";
  check_contains "p99" text "ch_lat_us{quantile=\"0.99\"} 15";
  check_contains "sum/count" text "ch_lat_us_sum 22\nch_lat_us_count 4";
  check_contains "escaped gauge" text
    "ch_g_x{kind=\"we\\\"ird\\n\\\\\"} 1.5";
  (* every non-comment line matches the exposition grammar *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        let sp = String.index line ' ' in
        let metric = String.sub line 0 sp in
        let name_end =
          match String.index_opt metric '{' with
          | Some i -> i
          | None -> String.length metric
        in
        Alcotest.(check string)
          ("sanitized: " ^ line)
          (String.sub metric 0 name_end)
          (Expose.sanitize_name (String.sub metric 0 name_end))
      end)
    (String.split_on_char '\n' text)

let with_obs_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let test_metrics_health_ops () =
  Cache.clear ();
  with_obs_enabled @@ fun () ->
  with_server (fun t _addr ->
      (* traffic first, so counters, per-op histograms and cache rates
         have something to say *)
      (match Server.serve_batch t [ verify ~id:1 "mds" 2 ] with
      | [ r ] -> ignore (body_exn r)
      | _ -> Alcotest.fail "expected 1 response");
      (* let the 0.05s sampler retain at least two snapshots *)
      Thread.delay 0.15;
      match
        Server.serve_batch t
          [ simple ~id:2 Protocol.Metrics; simple ~id:3 Protocol.Health ]
      with
      | [ m; h ] ->
          let text =
            match Jsonx.as_str (field "text" (body_exn m)) with
            | Some s -> s
            | None -> Alcotest.fail "metrics text is not a string"
          in
          check_contains "requests counter" text
            "# TYPE ch_serve_requests counter";
          check_contains "per-op latency quantiles" text
            "ch_serve_op_verify_us{quantile=\"0.5\"}";
          check_contains "queue wait summary" text
            "# TYPE ch_serve_queue_wait_us summary";
          check_contains "workers gauge" text "# TYPE ch_serve_workers gauge";
          check_contains "cache hit rate" text "ch_cache_hit_rate{kind=\"";
          check_contains "per-family throughput" text "ch_serve_family_mds";
          Alcotest.(check bool)
            "sampler window live" true
            (match Jsonx.as_int (field "samples" (body_exn m)) with
            | Some n -> n >= 2
            | None -> false);
          Alcotest.(check (option string))
            "health ok" (Some "ok")
            (Jsonx.as_str (field "status" (body_exn h)));
          Alcotest.(check (option int))
            "health workers" (Some 2)
            (Jsonx.as_int (field "workers" (body_exn h)))
      | _ -> Alcotest.fail "expected 2 responses")

(* A plain-text scraper on the same socket: the first-read sniffer
   answers HTTP and closes, without disturbing framed clients. *)
let test_http_get () =
  with_obs_enabled @@ fun () ->
  with_server (fun _t addr ->
      let sock =
        match addr with
        | Server.Unix_socket p -> p
        | Server.Tcp _ -> Alcotest.fail "expected a unix socket"
      in
      let http path =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let req = "GET " ^ path ^ " HTTP/1.0\r\nHost: x\r\n\r\n" in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 1024 in
        let b = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd b 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf b 0 n;
              drain ()
        in
        drain ();
        Unix.close fd;
        Buffer.contents buf
      in
      let metrics = http "/metrics" in
      check_contains "status line" metrics "HTTP/1.0 200 OK";
      check_contains "content type" metrics "text/plain; version=0.0.4";
      check_contains "a metric" metrics "ch_serve_workers";
      check_contains "health" (http "/health") "ok";
      check_contains "404" (http "/nope") "404 Not Found";
      (* framed clients still work on the same listener afterwards *)
      let c = Client.connect ~retries:20 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.roundtrip c [ simple ~id:1 Protocol.Ping ] with
          | [ r ] -> ignore (body_exn r)
          | _ -> Alcotest.fail "expected 1 response"))

(* End-to-end trace: a traced request's span events and its
   serve_request JSONL line all carry the client-chosen id, and the
   captured stream folds back into a tree rooted at serve_request. *)
let test_trace_propagation () =
  Cache.clear ();
  with_temp_dir (fun dir ->
      let sock = Filename.concat dir "serve.sock" in
      let obs_file = Filename.concat dir "obs.jsonl" in
      let t =
        Server.start
          {
            Server.cfg_addr = Server.Unix_socket sock;
            cfg_workers = 1;
            cfg_queue_depth = 8;
            cfg_store_dir = None;
            cfg_obs_out = Some obs_file;
            cfg_sample_period_s = 0.;
          }
      in
      (match Server.serve_batch t [ verify ~id:1 ~trace:"t-123" "mds" 2 ] with
      | [ r ] -> ignore (body_exn r)
      | _ -> Alcotest.fail "expected 1 response");
      Server.stop t;
      Obs.set_enabled false;
      let lines =
        let ic = open_in obs_file in
        let ls = ref [] in
        (try
           while true do
             ls := input_line ic :: !ls
           done
         with End_of_file -> ());
        close_in ic;
        List.rev !ls
      in
      let jmem name j = Jsonx.mem name j in
      let jstr name j = Option.bind (jmem name j) Jsonx.as_str in
      let jint name j = Option.bind (jmem name j) Jsonx.as_int in
      let parsed =
        List.filter_map
          (fun l -> match Jsonx.parse l with Ok j -> Some j | Error _ -> None)
          lines
      in
      (* the serve_request event carries the trace *)
      Alcotest.(check bool)
        "serve_request JSONL carries trace" true
        (List.exists
           (fun j ->
             jstr "ev" j = Some "serve_request"
             && jstr "trace" j = Some "t-123"
             && jmem "queue_us" j <> None
             && jmem "exec_us" j <> None)
           parsed);
      (* span events carry it too, and fold into a serve_request tree *)
      let events =
        List.filter_map
          (fun j ->
            match (jstr "ev" j, jstr "span" j, jint "t_ns" j) with
            | Some (("span_open" | "span_close") as ev), Some sp, Some t ->
                Some
                  {
                    Ch_obs.Spanview.e_open = ev = "span_open";
                    e_span = sp;
                    e_pid = Option.value (jint "pid" j) ~default:0;
                    e_domain = Option.value (jint "domain" j) ~default:0;
                    e_trace = jstr "trace" j;
                    e_t_ns = Int64.of_int t;
                  }
            | _ -> None)
          parsed
      in
      Alcotest.(check bool)
        "a traced serve_request span_open exists" true
        (List.exists
           (fun e ->
             e.Ch_obs.Spanview.e_open
             && e.Ch_obs.Spanview.e_span = "serve_request"
             && e.Ch_obs.Spanview.e_trace = Some "t-123")
           events);
      let report = Ch_obs.Spanview.to_report events in
      let rec has_span name (sp : Obs.span_report) =
        sp.Obs.sp_name = name || List.exists (has_span name) sp.Obs.sp_children
      in
      Alcotest.(check bool)
        "stream folds into a serve_request tree" true
        (List.exists (has_span "serve_request") report.Obs.r_spans))

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "jsonx",
        [
          qt prop_json_roundtrip;
          Alcotest.test_case "escapes and malformed input" `Quick
            test_json_escapes;
        ] );
      ( "framing",
        [
          qt prop_frame_roundtrip;
          qt prop_frame_truncated;
          Alcotest.test_case "oversized frames" `Quick test_unframe_too_large;
          Alcotest.test_case "torn frames on a socket" `Quick
            test_read_frame_errors;
        ] );
      ( "codec",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_codec;
          Alcotest.test_case "response roundtrip" `Quick test_response_codec;
          Alcotest.test_case "ill-shaped batches rejected" `Quick
            test_request_decode_rejects;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "ping, catalog, stats" `Quick
            test_ping_catalog_stats;
          Alcotest.test_case "cold then warm = oracle" `Quick
            test_cold_then_warm_matches_oracle;
          Alcotest.test_case "concurrent clients differential" `Quick
            test_concurrent_clients_differential;
          Alcotest.test_case "engines agree on sampled mode" `Quick
            test_engines_agree_sampled;
          Alcotest.test_case "typed error responses" `Quick
            test_error_responses;
          Alcotest.test_case "overload backpressure" `Quick
            test_overload_backpressure;
          Alcotest.test_case "scheduler round-robin fairness" `Quick
            test_scheduler_fairness;
          Alcotest.test_case "drain under load" `Quick test_drain_under_load;
          Alcotest.test_case "warm restart from the store" `Quick
            test_warm_restart_from_store;
        ] );
      ( "observability",
        [
          Alcotest.test_case "exposition format and escaping" `Quick
            test_exposition_format;
          Alcotest.test_case "metrics and health ops" `Quick
            test_metrics_health_ops;
          Alcotest.test_case "HTTP GET scrape" `Quick test_http_get;
          Alcotest.test_case "trace propagation and span join" `Quick
            test_trace_propagation;
        ] );
    ]
