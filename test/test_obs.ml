(* The telemetry layer's own contract: schedule-independent reports
   (the same workload on a 1-worker and a 4-worker pool merges to the
   same counters, histogram buckets, and span-tree shape), saturating
   counters, log2 bucket boundaries, and a truly dark disabled path. *)

open Ch_core
module Obs = Ch_obs.Obs

let c_items = Obs.counter "test.items"
let c_weight = Obs.counter "test.weight"
let h_vals = Obs.histogram "test.vals"
let sp_outer = Obs.span "test.outer"
let sp_inner = Obs.span "test.inner"

(* One deterministic workload: under an outer span, fan 64 items over
   the pool; each item bumps/increments/observes and opens a nested
   span.  Everything derives from the item index, never the schedule. *)
let workload pool =
  Obs.with_span sp_outer (fun () ->
      ignore
        (Pool.parallel_chunks pool ~lo:0 ~hi:64 (fun lo hi ->
             for i = lo to hi - 1 do
               Obs.with_span sp_inner (fun () ->
                   Obs.bump c_items;
                   Obs.incr c_weight (i * 3);
                   Obs.observe h_vals (i * i))
             done;
             0)))

type sspan = S of string * int * sspan list

let strip_times r =
  let rec sp s =
    S (s.Obs.sp_name, s.Obs.sp_count, List.map sp s.Obs.sp_children)
  in
  ( r.Obs.r_counters,
    List.map sp r.Obs.r_spans,
    List.map
      (fun h ->
        (h.Obs.h_name, h.Obs.h_count, h.Obs.h_sum, h.Obs.h_max, h.Obs.h_buckets))
      r.Obs.r_hists )

let run_report pool =
  Obs.reset ();
  workload pool;
  strip_times (Obs.report ())

let test_merge_determinism () =
  Obs.set_enabled true;
  let pool1 = Pool.create ~jobs:1 () and pool4 = Pool.create ~jobs:4 () in
  let r1 = run_report pool1 and r4 = run_report pool4 in
  Alcotest.(check bool)
    "report identical under jobs=1 and jobs=4 (modulo times)" true (r1 = r4);
  let counters, spans, _ = r4 in
  Alcotest.(check int) "items" 64 (List.assoc "test.items" counters);
  Alcotest.(check int) "weight" (3 * 2016) (List.assoc "test.weight" counters);
  (match List.find_opt (fun (S (n, _, _)) -> n = "test.outer") spans with
  | Some (S (_, count, children)) ->
      Alcotest.(check int) "outer count" 1 count;
      Alcotest.(check bool)
        "inner nested under outer with count 64" true
        (List.mem (S ("test.inner", 64, [])) children)
  | None -> Alcotest.fail "no test.outer span in the merged report");
  Pool.shutdown pool1;
  Pool.shutdown pool4

let test_counter_saturation () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.incr c_items (max_int - 1);
  Obs.incr c_items max_int;
  Obs.incr c_items (-5) (* negative deltas are clamped to 0 *);
  let r = Obs.report () in
  Alcotest.(check int)
    "sum saturates at max_int" max_int
    (List.assoc "test.items" r.Obs.r_counters)

let test_histogram_buckets () =
  Obs.set_enabled true;
  Obs.reset ();
  (* one sample per interesting boundary: <=0 land in bucket 0, and
     bucket i >= 1 covers [2^(i-1), 2^i - 1] *)
  List.iter (Obs.observe h_vals) [ -3; 0; 1; 2; 3; 4; 7; 8; 1024; 2047 ];
  let r = Obs.report () in
  match List.find_opt (fun h -> h.Obs.h_name = "test.vals") r.Obs.r_hists with
  | None -> Alcotest.fail "no test.vals histogram"
  | Some h ->
      Alcotest.(check int) "count" 10 h.Obs.h_count;
      Alcotest.(check int) "max" 2047 h.Obs.h_max;
      (* -3 clamps to 0 in the sum *)
      Alcotest.(check int) "sum" (0 + 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024 + 2047)
        h.Obs.h_sum;
      let count_of lo =
        match List.find_opt (fun b -> b.Obs.b_lo <= lo && lo <= b.Obs.b_hi) h.Obs.h_buckets with
        | Some b -> b.Obs.b_count
        | None -> 0
      in
      Alcotest.(check int) "bucket [..0] holds -3 and 0" 2 (count_of 0);
      Alcotest.(check int) "bucket [1..1]" 1 (count_of 1);
      Alcotest.(check int) "bucket [2..3] holds 2 and 3" 2 (count_of 2);
      Alcotest.(check int) "bucket [4..7] holds 4 and 7" 2 (count_of 4);
      Alcotest.(check int) "bucket [8..15] holds 8" 1 (count_of 8);
      Alcotest.(check int) "bucket [1024..2047] holds both" 2 (count_of 1024)

let test_disabled_dark () =
  Obs.set_enabled false;
  Obs.reset ();
  Obs.bump c_items;
  Obs.incr c_weight 1000;
  Obs.observe h_vals 42;
  Obs.with_span sp_outer (fun () -> ());
  let r = Obs.report () in
  Alcotest.(check bool) "report says disabled" false r.Obs.r_enabled;
  List.iter
    (fun (name, v) ->
      Alcotest.(check int) (name ^ " stays zero") 0 v)
    r.Obs.r_counters;
  Alcotest.(check (list string)) "no spans recorded" []
    (List.map (fun s -> s.Obs.sp_name) r.Obs.r_spans);
  Alcotest.(check bool) "no histogram samples" true
    (List.for_all (fun h -> h.Obs.h_count = 0) r.Obs.r_hists);
  Obs.set_enabled true

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "merge determinism jobs=1 vs jobs=4" `Quick
            test_merge_determinism;
          Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_disabled_dark;
        ] );
    ]
