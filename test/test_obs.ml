(* The telemetry layer's own contract: schedule-independent reports
   (the same workload on a 1-worker and a 4-worker pool merges to the
   same counters, histogram buckets, and span-tree shape), saturating
   counters, log2 bucket boundaries, and a truly dark disabled path. *)

open Ch_core
module Obs = Ch_obs.Obs

let c_items = Obs.counter "test.items"
let c_weight = Obs.counter "test.weight"
let h_vals = Obs.histogram "test.vals"
let sp_outer = Obs.span "test.outer"
let sp_inner = Obs.span "test.inner"

(* One deterministic workload: under an outer span, fan 64 items over
   the pool; each item bumps/increments/observes and opens a nested
   span.  Everything derives from the item index, never the schedule. *)
let workload pool =
  Obs.with_span sp_outer (fun () ->
      ignore
        (Pool.parallel_chunks pool ~lo:0 ~hi:64 (fun lo hi ->
             for i = lo to hi - 1 do
               Obs.with_span sp_inner (fun () ->
                   Obs.bump c_items;
                   Obs.incr c_weight (i * 3);
                   Obs.observe h_vals (i * i))
             done;
             0)))

type sspan = S of string * int * sspan list

let strip_times r =
  let rec sp s =
    S (s.Obs.sp_name, s.Obs.sp_count, List.map sp s.Obs.sp_children)
  in
  ( r.Obs.r_counters,
    List.map sp r.Obs.r_spans,
    List.map
      (fun h ->
        (h.Obs.h_name, h.Obs.h_count, h.Obs.h_sum, h.Obs.h_max, h.Obs.h_buckets))
      r.Obs.r_hists )

let run_report pool =
  Obs.reset ();
  workload pool;
  strip_times (Obs.report ())

let test_merge_determinism () =
  Obs.set_enabled true;
  let pool1 = Pool.create ~jobs:1 () and pool4 = Pool.create ~jobs:4 () in
  let r1 = run_report pool1 and r4 = run_report pool4 in
  Alcotest.(check bool)
    "report identical under jobs=1 and jobs=4 (modulo times)" true (r1 = r4);
  let counters, spans, _ = r4 in
  Alcotest.(check int) "items" 64 (List.assoc "test.items" counters);
  Alcotest.(check int) "weight" (3 * 2016) (List.assoc "test.weight" counters);
  (match List.find_opt (fun (S (n, _, _)) -> n = "test.outer") spans with
  | Some (S (_, count, children)) ->
      Alcotest.(check int) "outer count" 1 count;
      Alcotest.(check bool)
        "inner nested under outer with count 64" true
        (List.mem (S ("test.inner", 64, [])) children)
  | None -> Alcotest.fail "no test.outer span in the merged report");
  Pool.shutdown pool1;
  Pool.shutdown pool4

let test_counter_saturation () =
  Obs.set_enabled true;
  Obs.reset ();
  Obs.incr c_items (max_int - 1);
  Obs.incr c_items max_int;
  Obs.incr c_items (-5) (* negative deltas are clamped to 0 *);
  let r = Obs.report () in
  Alcotest.(check int)
    "sum saturates at max_int" max_int
    (List.assoc "test.items" r.Obs.r_counters)

let test_histogram_buckets () =
  Obs.set_enabled true;
  Obs.reset ();
  (* one sample per interesting boundary: <=0 land in bucket 0, and
     bucket i >= 1 covers [2^(i-1), 2^i - 1] *)
  List.iter (Obs.observe h_vals) [ -3; 0; 1; 2; 3; 4; 7; 8; 1024; 2047 ];
  let r = Obs.report () in
  match List.find_opt (fun h -> h.Obs.h_name = "test.vals") r.Obs.r_hists with
  | None -> Alcotest.fail "no test.vals histogram"
  | Some h ->
      Alcotest.(check int) "count" 10 h.Obs.h_count;
      Alcotest.(check int) "max" 2047 h.Obs.h_max;
      (* -3 clamps to 0 in the sum *)
      Alcotest.(check int) "sum" (0 + 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024 + 2047)
        h.Obs.h_sum;
      let count_of lo =
        match List.find_opt (fun b -> b.Obs.b_lo <= lo && lo <= b.Obs.b_hi) h.Obs.h_buckets with
        | Some b -> b.Obs.b_count
        | None -> 0
      in
      Alcotest.(check int) "bucket [..0] holds -3 and 0" 2 (count_of 0);
      Alcotest.(check int) "bucket [1..1]" 1 (count_of 1);
      Alcotest.(check int) "bucket [2..3] holds 2 and 3" 2 (count_of 2);
      Alcotest.(check int) "bucket [4..7] holds 4 and 7" 2 (count_of 4);
      Alcotest.(check int) "bucket [8..15] holds 8" 1 (count_of 8);
      Alcotest.(check int) "bucket [1024..2047] holds both" 2 (count_of 1024)

let test_disabled_dark () =
  Obs.set_enabled false;
  Obs.reset ();
  Obs.bump c_items;
  Obs.incr c_weight 1000;
  Obs.observe h_vals 42;
  Obs.with_span sp_outer (fun () -> ());
  let r = Obs.report () in
  Alcotest.(check bool) "report says disabled" false r.Obs.r_enabled;
  List.iter
    (fun (name, v) ->
      Alcotest.(check int) (name ^ " stays zero") 0 v)
    r.Obs.r_counters;
  Alcotest.(check (list string)) "no spans recorded" []
    (List.map (fun s -> s.Obs.sp_name) r.Obs.r_spans);
  Alcotest.(check bool) "no histogram samples" true
    (List.for_all (fun h -> h.Obs.h_count = 0) r.Obs.r_hists);
  Obs.set_enabled true

(* Quantile vs brute force: on any sample set, the log2-bucket quantile
   is an upper bound on the exact order statistic, within a factor of 2
   (the bucket width guarantee). *)
let test_quantile_vs_brute_force () =
  Obs.set_enabled true;
  Obs.reset ();
  let st = ref 123 in
  let next () =
    (* xorshift; spread across several bucket magnitudes *)
    st := !st lxor (!st lsl 13);
    st := !st lxor (!st lsr 7);
    st := !st lxor (!st lsl 17);
    abs !st mod 10_000
  in
  let values = List.init 500 (fun _ -> next ()) in
  List.iter (Obs.observe h_vals) values;
  let r = Obs.report () in
  let h =
    match
      List.find_opt (fun h -> h.Obs.h_name = "test.vals") r.Obs.r_hists
    with
    | Some h -> h
    | None -> Alcotest.fail "no test.vals histogram"
  in
  let sorted = List.sort compare values |> Array.of_list in
  List.iter
    (fun q ->
      let rank =
        max 1 (int_of_float (Float.ceil (q *. float_of_int h.Obs.h_count)))
      in
      let exact = sorted.(rank - 1) in
      let est = Obs.quantile h q in
      if not (est >= exact && est <= max ((2 * exact) - 1) 0) then
        Alcotest.failf "q=%.2f: estimate %d outside [%d, %d]" q est exact
          (max ((2 * exact) - 1) 0))
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  (* empty histogram and out-of-range q *)
  Obs.reset ();
  let r = Obs.report () in
  let h =
    List.find (fun h -> h.Obs.h_name = "test.vals") r.Obs.r_hists
  in
  Alcotest.(check int) "empty histogram" 0 (Obs.quantile h 0.5)

(* The ring: wraparound, counter deltas/rates over the retained window,
   and windowed histograms. *)
let test_series_ring () =
  Obs.set_enabled true;
  Obs.reset ();
  let s = Obs.Series.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (Obs.Series.capacity s);
  Alcotest.(check int) "empty delta" 0 (Obs.Series.delta s "test.items");
  Alcotest.(check (float 0.)) "empty window" 0. (Obs.Series.window_s s);
  (* sample i at t = i seconds, after adding i to the counter and
     observing one histogram value of i *)
  for i = 1 to 10 do
    Obs.incr c_items i;
    Obs.observe h_vals i;
    Obs.Series.sample ~now_ns:(Int64.of_int (i * 1_000_000_000)) s
  done;
  Alcotest.(check int) "wrapped to capacity" 4 (Obs.Series.length s);
  (* retained window is samples 7..10: cumulative counter went from
     1+..+7 = 28 to 1+..+10 = 55 *)
  Alcotest.(check int) "delta over window" 27 (Obs.Series.delta s "test.items");
  Alcotest.(check (float 1e-6)) "window seconds" 3. (Obs.Series.window_s s);
  Alcotest.(check (float 1e-6)) "rate" 9. (Obs.Series.rate s "test.items");
  Alcotest.(check int) "unknown counter" 0 (Obs.Series.delta s "no.such");
  (match Obs.Series.hist_total s "test.vals" with
  | Some h -> Alcotest.(check int) "cumulative count" 10 h.Obs.h_count
  | None -> Alcotest.fail "no cumulative histogram");
  (match Obs.Series.hist_delta s "test.vals" with
  | Some d ->
      Alcotest.(check int) "windowed count" 3 d.Obs.h_count;
      Alcotest.(check int) "windowed sum" (8 + 9 + 10) d.Obs.h_sum;
      Alcotest.(check int)
        "windowed buckets hold the window's samples" 3
        (List.fold_left (fun a b -> a + b.Obs.b_count) 0 d.Obs.h_buckets)
  | None -> Alcotest.fail "no windowed histogram");
  Alcotest.(check bool) "unknown histogram" true
    (Obs.Series.hist_delta s "no.such" = None)

(* Snapshot: capture → reset → absorb reproduces the exact report
   (modulo span timings, which absorb sums); absorbing twice doubles
   counters; garbage is refused. *)
let test_snapshot_roundtrip () =
  Obs.set_enabled true;
  let pool = Pool.create ~jobs:1 () in
  Obs.reset ();
  workload pool;
  Pool.shutdown pool;
  let before = strip_times (Obs.report ()) in
  let snap = Obs.Snapshot.capture () in
  Obs.reset ();
  Obs.Snapshot.absorb snap;
  let after = strip_times (Obs.report ()) in
  Alcotest.(check bool) "absorb reproduces the report" true (before = after);
  Obs.Snapshot.absorb snap;
  let r2 = Obs.report () in
  Alcotest.(check int)
    "second absorb doubles counters" 128
    (List.assoc "test.items" r2.Obs.r_counters);
  Alcotest.check_raises "garbage refused"
    (Failure "Obs.Snapshot.absorb: not an obs snapshot") (fun () ->
      Obs.Snapshot.absorb "not a snapshot at all");
  (* disabled: absorb is a no-op *)
  Obs.set_enabled false;
  Obs.reset ();
  Obs.Snapshot.absorb snap;
  Obs.set_enabled true;
  let r3 = Obs.report () in
  Alcotest.(check int)
    "absorb while disabled records nothing" 0
    (List.assoc "test.items" r3.Obs.r_counters)

(* Spanview: two process streams with the same trace join into one
   tree by time containment; a root with a different trace stays
   separate; stray closes are dropped. *)
let test_spanview_join () =
  let ev ?trace ~pid ~t name opened =
    {
      Ch_obs.Spanview.e_open = opened;
      e_span = name;
      e_pid = pid;
      e_domain = 0;
      e_trace = trace;
      e_t_ns = Int64.of_int t;
    }
  in
  let events =
    [
      (* client process: one traced request spanning the whole window *)
      ev ~trace:"t-1" ~pid:1 ~t:0 "client_request" true;
      (* server process: the traced request executes inside it *)
      ev ~trace:"t-1" ~pid:2 ~t:10 "serve_request" true;
      ev ~trace:"t-1" ~pid:2 ~t:20 "engine" true;
      ev ~trace:"t-1" ~pid:2 ~t:30 "engine" false;
      ev ~trace:"t-1" ~pid:2 ~t:90 "serve_request" false;
      (* a differently-traced root inside the same interval: must NOT
         graft under client_request *)
      ev ~trace:"t-2" ~pid:3 ~t:40 "other" true;
      ev ~trace:"t-2" ~pid:3 ~t:50 "other" false;
      (* a stray close with no matching open: dropped *)
      ev ~pid:1 ~t:60 "stray" false;
      ev ~trace:"t-1" ~pid:1 ~t:100 "client_request" false;
    ]
  in
  let roots = Ch_obs.Spanview.forest events in
  let names = List.map (fun s -> s.Obs.sp_name) roots in
  Alcotest.(check (list string))
    "two roots: joined tree + foreign trace" [ "client_request"; "other" ]
    (List.sort compare names);
  let client =
    List.find (fun s -> s.Obs.sp_name = "client_request") roots
  in
  (match client.Obs.sp_children with
  | [ sr ] ->
      Alcotest.(check string) "server grafted under client" "serve_request"
        sr.Obs.sp_name;
      Alcotest.(check (list string))
        "engine nested in serve_request" [ "engine" ]
        (List.map (fun s -> s.Obs.sp_name) sr.Obs.sp_children)
  | cs ->
      Alcotest.failf "client_request has %d children, expected 1"
        (List.length cs));
  (* same-trace half-open intervals: an unclosed span closes at the
     last event time and still forms a root *)
  let dangling =
    [ ev ~pid:9 ~t:0 "lonely" true; ev ~pid:9 ~t:5 "inner" true ]
  in
  match Ch_obs.Spanview.forest dangling with
  | [ { Obs.sp_name = "lonely"; sp_children = [ i ]; _ } ] ->
      Alcotest.(check string) "inner kept" "inner" i.Obs.sp_name
  | _ -> Alcotest.fail "dangling opens not closed at stream end"

let () =
  Alcotest.run "obs"
    [
      ( "obs",
        [
          Alcotest.test_case "merge determinism jobs=1 vs jobs=4" `Quick
            test_merge_determinism;
          Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "disabled mode records nothing" `Quick
            test_disabled_dark;
        ] );
      ( "series",
        [
          Alcotest.test_case "quantile vs brute force" `Quick
            test_quantile_vs_brute_force;
          Alcotest.test_case "ring wraparound, delta, rate" `Quick
            test_series_ring;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "capture/reset/absorb roundtrip" `Quick
            test_snapshot_roundtrip;
        ] );
      ( "spanview",
        [
          Alcotest.test_case "cross-stream trace join" `Quick
            test_spanview_join;
        ] );
    ]
