open Ch_core
open Ch_lbgraphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pool4 = lazy (Pool.create ~jobs:4 ())
let pool1 = lazy (Pool.create ~jobs:1 ())

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_parallel_map_vs_list_map () =
  let xs = List.init 1000 (fun i -> i - 500) in
  let f x = (x * x) + (x mod 7) in
  check "1000 tasks, jobs=4" true
    (Pool.parallel_map (Lazy.force pool4) f xs = List.map f xs);
  check "1000 tasks, jobs=1" true
    (Pool.parallel_map (Lazy.force pool1) f xs = List.map f xs);
  check "empty" true (Pool.parallel_map (Lazy.force pool4) f [] = []);
  check "singleton" true (Pool.parallel_map (Lazy.force pool4) f [ 3 ] = [ f 3 ])

let test_parallel_chunks () =
  let pool = Lazy.force pool4 in
  (* per-chunk sums over [0, 10_000) merge to the closed-form total *)
  let sums =
    Pool.parallel_chunks pool ~lo:0 ~hi:10_000 (fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
  in
  check_int "range sum" (10_000 * 9_999 / 2) (List.fold_left ( + ) 0 sums);
  (* chunk boundaries partition the range in order *)
  let bounds =
    Pool.parallel_chunks pool ~chunk_size:7 ~lo:3 ~hi:50 (fun lo hi -> (lo, hi))
  in
  let rec contiguous = function
    | (_, hi) :: ((lo, _) :: _ as rest) -> hi = lo && contiguous rest
    | _ -> true
  in
  check "contiguous chunks" true (contiguous bounds);
  check "covers lo" true (fst (List.hd bounds) = 3);
  check "covers hi" true (snd (List.nth bounds (List.length bounds - 1)) = 50);
  check "empty range" true
    (Pool.parallel_chunks pool ~lo:5 ~hi:5 (fun lo hi -> (lo, hi)) = [])

let test_nested_run () =
  (* a nested parallel_map from inside a task falls back to sequential
     execution instead of deadlocking *)
  let pool = Lazy.force pool4 in
  let rows =
    Pool.parallel_map pool
      (fun i -> Pool.parallel_map pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      [ 1; 2; 3; 4 ]
  in
  check "nested" true
    (rows = [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ])

exception Boom of int

let test_exception_propagation () =
  let pool = Lazy.force pool4 in
  let ran = Atomic.make 0 in
  (match
     Pool.run pool
       (List.init 100 (fun i _ ->
            Atomic.incr ran;
            if i mod 10 = 3 then raise (Boom i)))
   with
  | () -> Alcotest.fail "expected an exception"
  | exception Boom _ -> ());
  (* the batch drained: every task was attempted despite the failures *)
  check_int "all tasks attempted" 100 (Atomic.get ran);
  (* the pool survives and is reusable after a failing batch *)
  let xs = List.init 50 Fun.id in
  check "reusable after failure" true
    (Pool.parallel_map pool (fun x -> x * 2) xs = List.map (fun x -> x * 2) xs)

(* ------------------------------------------------------------------ *)
(* Parallel verification determinism: CH_JOBS=1 vs CH_JOBS=4          *)
(* ------------------------------------------------------------------ *)

(* Exhaustive sweeps on the Maxcut/Steiner k=2 families cost several
   exact-solver seconds per pair space, so only the cheap MDS family is
   swept exhaustively; the others are covered by the random verifier. *)

let families () =
  [ Mds_lb.family ~k:2; Maxcut_lb.family ~k:2; Steiner_lb.family ~k:2 ]

let test_verify_exhaustive_jobs_invariant () =
  let fam = Mds_lb.family ~k:2 in
  let r1 = Framework.verify_exhaustive ~pool:(Lazy.force pool1) fam in
  let r4 = Framework.verify_exhaustive ~pool:(Lazy.force pool4) fam in
  check (fam.Framework.name ^ " exhaustive jobs=1 vs jobs=4") true (r1 = r4);
  check (fam.Framework.name ^ " no failures") true (fst r1 = 0);
  check_int (fam.Framework.name ^ " total = 2^K * 2^K") (16 * 16) (snd r1)

let test_verify_random_jobs_invariant () =
  List.iter
    (fun fam ->
      let r1 =
        Framework.verify_random ~pool:(Lazy.force pool1) ~seed:77 ~samples:8 fam
      in
      let r4 =
        Framework.verify_random ~pool:(Lazy.force pool4) ~seed:77 ~samples:8 fam
      in
      check (fam.Framework.name ^ " random jobs=1 vs jobs=4") true (r1 = r4);
      check_int (fam.Framework.name ^ " total = samples + corners") 12 (snd r1))
    (families ())

let test_check_sidedness_jobs_invariant () =
  List.iter
    (fun fam ->
      let r1 =
        Framework.check_sidedness ~pool:(Lazy.force pool1) ~seed:5 ~samples:6 fam
      in
      let r4 =
        Framework.check_sidedness ~pool:(Lazy.force pool4) ~seed:5 ~samples:6 fam
      in
      check (fam.Framework.name ^ " sidedness jobs=1 vs jobs=4") true (r1 = r4);
      check (fam.Framework.name ^ " sidedness holds") true r1)
    (families ())

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map = List.map" `Quick
            test_parallel_map_vs_list_map;
          Alcotest.test_case "parallel_chunks" `Quick test_parallel_chunks;
          Alcotest.test_case "nested run" `Quick test_nested_run;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "verify",
        [
          Alcotest.test_case "verify_exhaustive schedule-invariant" `Quick
            test_verify_exhaustive_jobs_invariant;
          Alcotest.test_case "verify_random schedule-invariant" `Quick
            test_verify_random_jobs_invariant;
          Alcotest.test_case "check_sidedness schedule-invariant" `Quick
            test_check_sidedness_jobs_invariant;
        ] );
    ]
