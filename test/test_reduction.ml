open Ch_graph
open Ch_cc
open Ch_congest
open Ch_lbgraphs
open Ch_solvers
open Ch_reduction

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- the three Theorem 1.1 target families at k = 2 ------------------ *)

let mds_spec () =
  Simulate.gather_spec ~name:"mds-k2" (Mds_lb.family ~k:2)
    ~solver:Domset.min_size
    ~accept:(fun a -> a <= Mds_lb.target_size ~k:2)

let maxis_spec () =
  Simulate.gather_spec ~name:"maxis-k2" (Maxis_lb.family ~k:2) ~solver:Mis.alpha
    ~accept:(fun a -> a >= Maxis_lb.alpha_target ~k:2)

let maxcut_spec () =
  Simulate.gather_spec ~name:"maxcut-k2" (Maxcut_lb.family ~k:2)
    ~solver:(fun g -> fst (Maxcut.max_cut g))
    ~accept:(fun a -> a >= Maxcut_lb.target_weight ~k:2)

let assert_report name (r : Bound.report) =
  check (name ^ ": transcript = run_split on every pair") true r.Bound.rep_all_match;
  check (name ^ ": decisions match f(x,y)") true r.Bound.rep_all_correct;
  check (name ^ ": cut bits within rounds*|Ecut|*B") true
    r.Bound.rep_all_within_budget

let test_mds_differential () =
  let spec = mds_spec () in
  let fam = spec.Simulate.sfam in
  let pairs, skipped = Bound.connected_pairs fam (Bound.exhaustive_pairs fam) in
  check_int "only the no-edge corner is disconnected" 1 skipped;
  let _, report = Bound.sweep spec pairs in
  check_int "255 pairs" 255 report.Bound.rep_pairs;
  assert_report "mds" report

let test_maxis_differential () =
  let spec = maxis_spec () in
  let fam = spec.Simulate.sfam in
  let pairs, skipped = Bound.connected_pairs fam (Bound.exhaustive_pairs fam) in
  check_int "only the all-ones corner is disconnected" 1 skipped;
  let _, report = Bound.sweep spec pairs in
  check_int "255 pairs" 255 report.Bound.rep_pairs;
  assert_report "maxis" report

let test_maxcut_differential () =
  let spec = maxcut_spec () in
  let fam = spec.Simulate.sfam in
  let pairs, skipped =
    Bound.connected_pairs fam (Bound.sampled_pairs fam ~seed:41 ~samples:4)
  in
  check_int "maxcut instances always connected" 0 skipped;
  let _, report = Bound.sweep spec pairs in
  check_int "corners + 4 samples" 8 report.Bound.rep_pairs;
  assert_report "maxcut" report

(* ---- trace regression: the events replay the charged transcript ------ *)

let test_trace_replays_transcript () =
  let spec = mds_spec () in
  let x = Bits.random ~seed:7 4 and y = Bits.random ~seed:8 4 in
  let sink, events = Trace.collector () in
  let t = spec.Simulate.srun ~trace:sink x y in
  let r = spec.Simulate.sref x y in
  check_int "run_split oracle agrees" r.Simulate.ref_cut_bits
    t.Simulate.cut_bits;
  let events = events () in
  let cut_msg_bits, cut_msgs, round_cut_bits, last_cum =
    List.fold_left
      (fun (mb, mc, rb, _) ev ->
        match ev with
        | Trace.Msg { cut = true; bits; cum_cut_bits; edge; _ } ->
            check "cut message has a cut-edge index" true (edge <> None);
            (mb + bits, mc + 1, rb, cum_cut_bits)
        | Trace.Msg { cut = false; edge; cum_cut_bits; _ } ->
            check "internal message has no cut-edge index" true (edge = None);
            (mb, mc, rb, cum_cut_bits)
        | Trace.Round { cut_bits; cum_cut_bits; _ } ->
            (mb, mc, rb + cut_bits, cum_cut_bits))
      (0, 0, 0, 0) events
  in
  check_int "sum of cut Msg bits = transcript cut_bits" t.Simulate.cut_bits
    cut_msg_bits;
  check_int "sum of Round cut_bits = transcript cut_bits" t.Simulate.cut_bits
    round_cut_bits;
  check_int "cut Msg count = transcript cut_messages" t.Simulate.cut_messages
    cut_msgs;
  check_int "final cumulative = transcript cut_bits" t.Simulate.cut_bits
    last_cum;
  check_int "one Round event per round" t.Simulate.rounds
    (List.length
       (List.filter (function Trace.Round _ -> true | _ -> false) events))

let test_trace_json () =
  let spec = maxis_spec () in
  let sink, events = Trace.collector () in
  let _ = spec.Simulate.srun ~trace:sink (Bits.ones 4) (Bits.zeros 4) in
  List.iter
    (fun ev ->
      let s = Trace.to_json ev in
      check "json object" true
        (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}'))
    (events ())

(* ---- bandwidth accounting: msg_bits is honest for every algorithm ---- *)

(* run [algo] on [g] through a full-graph stepper and hand every message
   sent to [f] *)
let iter_messages (algo : ('s, 'm) Network.algo) g f =
  let t = Network.stepper g algo in
  let quiescent = ref false in
  let guard = Network.default_max_rounds g in
  while (not !quiescent) || not (Network.stepper_all_output t) do
    if Network.stepper_round t > guard then
      failwith ("iter_messages: " ^ algo.Network.name ^ " did not terminate");
    let log = Network.step t in
    List.iter (fun tr -> f tr.Network.t_bits tr.Network.t_msg) log.Network.internal;
    quiescent := not log.Network.sent
  done

let check_codec_on name algo codec g =
  let bw = Network.bandwidth_for (Graph.n g) in
  let seen = ref 0 in
  iter_messages algo g (fun bits msg ->
      incr seen;
      check_int
        (Printf.sprintf "%s: |enc m| = msg_bits m" name)
        bits
        (List.length (codec.Codec.enc msg));
      check (Printf.sprintf "%s: msg_bits <= bandwidth_for n" name) true
        (bits <= bw));
  check (name ^ ": exercised some messages") true (!seen > 0)

let test_codec_bfs () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 17 0.2 in
      let n = Graph.n g in
      check_codec_on "bfs" (Bfs.algo ~root:0 ~n) (Codec.bfs ~n) g)
    [ 1; 2; 3 ]

let test_codec_leader () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 15 0.2 in
      let n = Graph.n g in
      check_codec_on "leader" (Leader.algo ~n) (Codec.leader ~n) g)
    [ 4; 5; 6 ]

let test_codec_mis_greedy () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 16 0.25 in
      check_codec_on "mis-greedy" Mis_greedy.algo Codec.mis_greedy g)
    [ 7; 8; 9 ]

let test_codec_mds_greedy () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 12 0.3 in
      let n = Graph.n g in
      check_codec_on "mds-greedy" (Mds_greedy.algo ~n) Codec.mds_greedy g)
    [ 10; 11; 12 ]

let test_codec_gather () =
  List.iter
    (fun seed ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed 13 0.25) in
      check_codec_on "gather"
        (Gather.algo ~root:0 ~f:Graph.m ())
        Codec.gather g)
    [ 13; 14; 15 ];
  (* the lower-bound instances themselves, where the codec must also hold *)
  List.iter
    (fun (fam : Ch_core.Framework.t) ->
      match fam.Ch_core.Framework.build (Bits.ones 4) (Bits.random ~seed:21 4) with
      | Ch_core.Framework.Undirected g ->
          check_codec_on "gather-lb"
            (Gather.algo ~root:0 ~f:Graph.m ())
            Codec.gather g
      | _ -> Alcotest.fail "undirected family expected")
    [ Mds_lb.family ~k:2; Maxis_lb.family ~k:2; Maxcut_lb.family ~k:2 ]

(* ---- run_split cut accounting vs the stepper-derived trace ----------- *)

let test_run_split_matches_trace () =
  let fam = Maxis_lb.family ~k:2 in
  List.iter
    (fun seed ->
      let x = Bits.random ~seed 4 and y = Bits.random ~seed:(seed + 100) 4 in
      let spec = maxis_spec () in
      let sink, events = Trace.collector () in
      let t = spec.Simulate.srun ~trace:sink x y in
      let g =
        match fam.Ch_core.Framework.build x y with
        | Ch_core.Framework.Undirected g -> g
        | _ -> Alcotest.fail "undirected"
      in
      let _, cs =
        Gather.solve_split ~side:fam.Ch_core.Framework.side g ~f:Mis.alpha
      in
      let per_round =
        List.filter_map
          (function Trace.Round { cut_bits; _ } -> Some cut_bits | _ -> None)
          (events ())
      in
      check_int "run_split cut_bits = sum of per-round trace cut bits"
        cs.Network.cut_bits
        (List.fold_left ( + ) 0 per_round);
      check_int "and equals the charged transcript" cs.Network.cut_bits
        t.Simulate.cut_bits)
    [ 31; 32; 33 ]

(* ---- bound report arithmetic ----------------------------------------- *)

let test_report_figures () =
  let spec = mds_spec () in
  let fam = spec.Simulate.sfam in
  let pairs, _ =
    Bound.connected_pairs fam (Bound.sampled_pairs fam ~seed:3 ~samples:2)
  in
  let rows, report = Bound.sweep spec pairs in
  check_int "rows = pairs" (List.length pairs) (List.length rows);
  check_int "cc bits for DISJ_K is K" fam.Ch_core.Framework.input_bits
    report.Bound.rep_cc_bits;
  check "lb rounds positive" true (report.Bound.rep_lb_rounds > 0.0);
  check "bits per round positive" true (report.Bound.rep_bits_per_round > 0.0);
  check "cut matches the framework descriptor" true
    (report.Bound.rep_cut = Ch_core.Framework.cut_size fam)

let test_exhaustive_guard () =
  Alcotest.check_raises "K > 5 rejected"
    (Invalid_argument "Bound.exhaustive_pairs: K > 5") (fun () ->
      ignore (Bound.exhaustive_pairs (Mds_lb.family ~k:8)))

(* ---- multiparty conservation laws (qcheck) --------------------------- *)

let qt = QCheck_alcotest.to_alcotest
let bits_of_int w v = Bits.of_fun w (fun b -> v land (1 lsl b) <> 0)

(* a valid t-part partition of n vertices: parts 0..t-1 all inhabited
   (vertex p pinned to part p), the rest uniform *)
let gen_partition n =
  QCheck.Gen.(
    int_range 2 4 >>= fun t ->
    array_size (return n) (int_bound (t - 1)) >>= fun a ->
    for p = 0 to t - 1 do
      a.(p) <- p
    done;
    return a)

let print_case (partition, xi, yi) =
  Printf.sprintf "partition=[|%s|] x=%d y=%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int partition)))
    xi yi

(* property (i): whatever the partition, the bits the simulation charges
   through the part-pair channels are exactly the engine's cross-part
   accounting — nothing leaks, nothing is double-charged *)
let prop_partition_conservation =
  let fam = Mds_lb.family ~k:2 in
  let target = Mds_lb.target_size ~k:2 in
  let algo () = Gather.algo ~root:0 ~f:Domset.min_size () in
  QCheck.Test.make ~count:60
    ~name:"any t-partition: charged cut bits = run_partitioned cross bits"
    (QCheck.make ~print:print_case
       QCheck.Gen.(
         triple
           (gen_partition fam.Ch_core.Framework.nvertices)
           (int_bound 15) (int_bound 15)))
    (fun (partition, xi, yi) ->
      let x = bits_of_int 4 xi and y = bits_of_int 4 yi in
      match fam.Ch_core.Framework.build x y with
      | Ch_core.Framework.Undirected g ->
          if not (Props.connected g) then true
          else
            let t =
              Simulate.lockstep_partitioned fam ~partition ~algo:(algo ())
                ~codecs:(Codec.uniform Codec.gather)
                ~accept:(fun a -> a <= target)
                x y
            in
            let _, ps = Network.run_partitioned ~partition g (algo ()) in
            t.Simulate.parties = ps.Network.p_parts
            && t.Simulate.cut_bits = ps.Network.p_cross_bits
            && t.Simulate.cut_messages = ps.Network.p_cross_messages
            && t.Simulate.rounds = ps.Network.p_stats.Network.rounds
      | _ -> false)

(* property (ii): at t=2 the generalized engine is bit-identical to the
   historical Alice/Bob path — exhaustively, over every connected k=2
   MDS and MaxIS instance *)
let test_t2_bit_identity () =
  List.iter
    (fun (name, spec) ->
      let fam = spec.Simulate.sfam in
      let kbits = fam.Ch_core.Framework.input_bits in
      for xi = 0 to (1 lsl kbits) - 1 do
        for yi = 0 to (1 lsl kbits) - 1 do
          let x = bits_of_int kbits xi and y = bits_of_int kbits yi in
          match fam.Ch_core.Framework.build x y with
          | Ch_core.Framework.Undirected g when Props.connected g ->
              let t = spec.Simulate.srun x y in
              let r = spec.Simulate.sref x y in
              let tag what = Printf.sprintf "%s %d/%d %s" name xi yi what in
              check_int (tag "answer") r.Simulate.ref_answer t.Simulate.answer;
              check_int (tag "cut bits") r.Simulate.ref_cut_bits
                t.Simulate.cut_bits;
              check_int (tag "cut messages") r.Simulate.ref_cut_messages
                t.Simulate.cut_messages;
              check_int (tag "rounds") r.Simulate.ref_rounds t.Simulate.rounds;
              check_int (tag "parties") 2 t.Simulate.parties
          | _ -> ()
        done
      done)
    [ ("mds", mds_spec ()); ("maxis", maxis_spec ()) ]

(* the t=2 wrapper and an explicit side-derived 2-partition emit the very
   same trace, event for event *)
let test_t2_wrapper_trace_identity () =
  let fam = Mds_lb.family ~k:2 in
  let target = Mds_lb.target_size ~k:2 in
  let accept a = a <= target in
  List.iter
    (fun seed ->
      let x = Bits.random ~seed 4 and y = Bits.random ~seed:(seed + 60) 4 in
      let sink2, events2 = Trace.collector () in
      let t2 =
        Simulate.lockstep ~trace:sink2 fam
          ~algo:(Gather.algo ~root:0 ~f:Domset.min_size ())
          ~codec:Codec.gather ~accept x y
      in
      let sinkp, eventsp = Trace.collector () in
      let tp =
        Simulate.lockstep_partitioned ~trace:sinkp fam
          ~partition:(Network.partition_of_side fam.Ch_core.Framework.side)
          ~algo:(Gather.algo ~root:0 ~f:Domset.min_size ())
          ~codecs:(Codec.uniform Codec.gather)
          ~accept x y
      in
      check_int "same cut bits" t2.Simulate.cut_bits tp.Simulate.cut_bits;
      Alcotest.(check (list string))
        "identical event streams"
        (List.map Trace.to_json (events2 ()))
        (List.map Trace.to_json (eventsp ())))
    [ 71; 72; 73 ]

(* ---- the first genuinely multiparty workload ------------------------- *)

let test_bitgadget_t4_differential () =
  match
    Simulate.registry_spec
      (Ch_core.Registry.find_exn (Families.catalog ()) "bitgadget")
      ~k:2
  with
  | None -> Alcotest.fail "bitgadget spec carries a reduction"
  | Some spec ->
      check_int "t=4" 4 spec.Simulate.sparties;
      let fam = spec.Simulate.sfam in
      let pairs, skipped =
        Bound.connected_pairs fam (Bound.exhaustive_pairs fam)
      in
      check "some pool-empty corners are disconnected" true (skipped > 0);
      let _, report = Bound.sweep spec pairs in
      assert_report "bitgadget" report;
      check_int "report says t=4" 4 report.Bound.rep_parties

let () =
  Alcotest.run "reduction"
    [
      ( "differential",
        [
          Alcotest.test_case "mds k=2 exhaustive" `Slow test_mds_differential;
          Alcotest.test_case "maxis k=2 exhaustive" `Slow test_maxis_differential;
          Alcotest.test_case "maxcut k=2 sampled" `Slow test_maxcut_differential;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events replay transcript" `Quick
            test_trace_replays_transcript;
          Alcotest.test_case "json events" `Quick test_trace_json;
          Alcotest.test_case "run_split vs trace" `Quick
            test_run_split_matches_trace;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "bfs" `Quick test_codec_bfs;
          Alcotest.test_case "leader" `Quick test_codec_leader;
          Alcotest.test_case "mis-greedy" `Quick test_codec_mis_greedy;
          Alcotest.test_case "mds-greedy" `Quick test_codec_mds_greedy;
          Alcotest.test_case "gather" `Quick test_codec_gather;
        ] );
      ( "bound",
        [
          Alcotest.test_case "report figures" `Quick test_report_figures;
          Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
        ] );
      ( "multiparty",
        [
          qt prop_partition_conservation;
          Alcotest.test_case "t=2 bit-identity (exhaustive)" `Slow
            test_t2_bit_identity;
          Alcotest.test_case "t=2 wrapper trace identity" `Quick
            test_t2_wrapper_trace_identity;
          Alcotest.test_case "bitgadget t=4 exhaustive differential" `Slow
            test_bitgadget_t4_differential;
        ] );
    ]
