(* Differential tests for the incremental verification engine: every
   ported family must produce bit-identical graphs and verdicts through
   the core + apply_inputs path, and every solver cache must agree with
   its from-scratch solver on random graphs. *)

open Ch_graph
open Ch_cc
open Ch_core
open Ch_lbgraphs
module Cache = Ch_solvers.Cache

let qt = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* Family differentials                                             *)
(* ---------------------------------------------------------------- *)

(* A deterministic mix of corner and random input pairs, applied in
   sequence so the remove-previous/add-next patching path is exercised,
   not just the first application. *)
let sample_pairs ~input_bits ~samples =
  let corners =
    [
      (Bits.zeros input_bits, Bits.zeros input_bits);
      (Bits.ones input_bits, Bits.ones input_bits);
      (Bits.ones input_bits, Bits.zeros input_bits);
      (Bits.zeros input_bits, Bits.ones input_bits);
    ]
  in
  corners
  @ List.init samples (fun i ->
        ( Bits.random ~seed:(7000 + (2 * i)) input_bits,
          Bits.random ~seed:(7000 + (2 * i) + 1) input_bits ))

(* The patched graph must equal the from-scratch build structurally at
   every step of a pair sequence reusing one core. *)
let check_graph_sequence name fam (apply : Bits.t -> Bits.t -> Graph.t) pairs =
  List.iteri
    (fun i (x, y) ->
      let patched = apply x y in
      let fresh = Framework.graph_of (fam.Framework.build x y) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: graph differential at pair %d" name i)
        true
        (Graph.equal_structure patched fresh))
    pairs

let test_mds_graphs () =
  let fam = Mds_lb.family ~k:2 in
  let c = Mds_lb.build_core ~k:2 in
  check_graph_sequence "mds" fam
    (Mds_lb.apply_inputs c)
    (sample_pairs ~input_bits:4 ~samples:12)

let test_maxis_graphs () =
  let fam = Maxis_lb.family ~k:2 in
  let c = Maxis_lb.build_core ~k:2 in
  check_graph_sequence "maxis" fam
    (Maxis_lb.apply_inputs c)
    (sample_pairs ~input_bits:4 ~samples:12)

let test_maxcut_graphs () =
  let fam = Maxcut_lb.family ~k:2 in
  let c = Maxcut_lb.build_core ~k:2 in
  check_graph_sequence "maxcut" fam
    (Maxcut_lb.apply_inputs c)
    (sample_pairs ~input_bits:4 ~samples:12)

(* Hampath's instances are digraphs; difference the sorted arc lists. *)
let test_hampath_graphs () =
  let c = Hampath_lb.build_core ~k:2 in
  List.iteri
    (fun i (x, y) ->
      let patched = Hampath_lb.apply_inputs c x y in
      let fresh = Hampath_lb.build ~k:2 x y in
      Alcotest.(check bool)
        (Printf.sprintf "hampath: digraph differential at pair %d" i)
        true
        (Digraph.n patched = Digraph.n fresh
        && Digraph.arcs patched = Digraph.arcs fresh))
    (sample_pairs ~input_bits:4 ~samples:12)

let test_steiner_graphs () =
  let fam = Steiner_lb.family ~k:2 in
  let c = Steiner_lb.build_core ~k:2 in
  check_graph_sequence "steiner" fam
    (Steiner_lb.apply_inputs c)
    (sample_pairs ~input_bits:4 ~samples:12)

(* Cheap solvers: compare the full 2^K × 2^K verdict trace pair by
   pair.  This is the PR's acceptance differential at k = 2. *)
let check_exhaustive name inc =
  let scratch = Framework.exhaustive_verdicts inc.Framework.scratch in
  let incr, stats = Framework.exhaustive_verdicts_inc inc in
  Alcotest.(check (array bool)) (name ^ ": exhaustive verdicts") scratch incr;
  Alcotest.(check bool)
    (name ^ ": stats are non-negative")
    true
    (stats.Framework.cache_hits >= 0 && stats.Framework.cache_misses >= 0)

let test_mds_exhaustive () =
  Cache.clear ();
  let inc = Mds_lb.incremental ~k:2 in
  check_exhaustive "mds" inc;
  (* k = 2 is 256 pairs; every pair queries the ball cache *)
  let _, stats = Framework.exhaustive_verdicts_inc inc in
  Alcotest.(check bool)
    "mds: per-pair cache hits" true
    (stats.Framework.cache_hits >= 256)

let test_maxis_exhaustive () =
  check_exhaustive "maxis" (Maxis_lb.incremental ~k:2)

let test_maxcut_exhaustive () =
  Cache.clear ();
  check_exhaustive "maxcut" (Maxcut_lb.incremental ~k:2)

(* Steiner's from-scratch solve is ~0.2 s per pair, so the exhaustive
   trace is differenced in the bench harness; here corners + random
   pairs keep the suite fast. *)
let check_sampled name inc pairs =
  let fam = inc.Framework.scratch in
  let p = inc.Framework.prepare () in
  List.iteri
    (fun i (x, y) ->
      let scratch = fam.Framework.predicate (fam.Framework.build x y) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: verdict differential at pair %d" name i)
        scratch
        (p.Framework.pverdict x y))
    pairs

let test_steiner_sampled () =
  Cache.clear ();
  check_sampled "steiner" (Steiner_lb.incremental ~k:2)
    (sample_pairs ~input_bits:4 ~samples:8)

let test_maxcut_sampled () =
  Cache.clear ();
  check_sampled "maxcut" (Maxcut_lb.incremental ~k:2)
    (sample_pairs ~input_bits:4 ~samples:16)

let test_hampath_exhaustive () =
  Cache.clear ();
  check_exhaustive "hampath" (Hampath_lb.incremental ~k:2)

(* The _inc verifiers must agree with their scratch counterparts
   through the degenerate of_family descriptor too. *)
let test_of_family () =
  let fam = Mds_lb.family ~k:2 in
  let (f1, t1) = Framework.verify_exhaustive fam in
  let (f2, t2), stats = Framework.verify_exhaustive_inc (Framework.of_family fam) in
  Alcotest.(check (pair int int)) "of_family counts" (f1, t1) (f2, t2);
  Alcotest.(check (pair int int))
    "of_family reports no cache activity" (0, 0)
    (stats.Framework.cache_hits, stats.Framework.cache_misses)

let test_verify_counts () =
  let inc = Mds_lb.incremental ~k:2 in
  let scratch = Framework.verify_exhaustive inc.Framework.scratch in
  let incr, _ = Framework.verify_exhaustive_inc inc in
  Alcotest.(check (pair int int)) "exhaustive counts" scratch incr;
  let scratch_r =
    Framework.verify_random ~seed:42 ~samples:50 inc.Framework.scratch
  in
  let incr_r, _ = Framework.verify_random_inc ~seed:42 ~samples:50 inc in
  Alcotest.(check (pair int int)) "random counts" scratch_r incr_r

(* ---------------------------------------------------------------- *)
(* Solver caches vs from-scratch solvers on random graphs           *)
(* ---------------------------------------------------------------- *)

(* Random extra edges among the non-adjacent pairs of [allowed]. *)
let random_extra ~seed g allowed =
  let non_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v ->
            if u < v && not (Graph.mem_edge g u v) then Some (u, v) else None)
          allowed)
      allowed
  in
  let st = Random.State.make [| seed |] in
  List.filter (fun _ -> Random.State.bool st) non_edges

let prop_steiner_cache =
  QCheck.Test.make ~count:60 ~name:"Cache.steiner_min_extra = Steiner.min_extra_nodes"
    QCheck.(pair (int_range 3 9) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.gnp ~seed n 0.3 in
      let nterm = 2 + (seed mod (n - 1)) in
      let terminals = List.init (min nterm n) Fun.id in
      let cap = seed mod 4 in
      let extra = random_extra ~seed:(seed + 1) g (List.init n Fun.id) in
      let g' = Graph.copy g in
      List.iter (fun (u, v) -> Graph.add_edge g' u v) extra;
      Cache.clear ();
      let c = Cache.steiner_prepare g ~terminals ~cap in
      Cache.steiner_min_extra c ~extra
      = Ch_solvers.Steiner.min_extra_nodes ~cap g' terminals)

let prop_maxcut_cache =
  QCheck.Test.make ~count:60 ~name:"Cache.maxcut_max = Maxcut.max_cut"
    QCheck.(pair (int_range 2 9) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.random_weights ~seed (Gen.gnp ~seed n 0.4) in
      let volatile = List.init ((n / 2) + 1) Fun.id in
      let extra =
        List.mapi
          (fun i (u, v) -> (u, v, 1 + ((seed + i) mod 7)))
          (random_extra ~seed:(seed + 1) g volatile)
      in
      let g' = Graph.copy g in
      List.iter (fun (u, v, w) -> Graph.add_edge ~w g' u v) extra;
      Cache.clear ();
      let c = Cache.maxcut_prepare g ~volatile in
      Cache.maxcut_max c ~extra = fst (Ch_solvers.Maxcut.max_cut g'))

let prop_mis_cache =
  QCheck.Test.make ~count:60 ~name:"Cache.mis_alpha = Mis.alpha"
    QCheck.(pair (int_range 2 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.gnp ~seed n 0.35 in
      let volatile = List.init ((n / 2) + 1) Fun.id in
      let extra = random_extra ~seed:(seed + 1) g volatile in
      let g' = Graph.copy g in
      List.iter (fun (u, v) -> Graph.add_edge g' u v) extra;
      Cache.clear ();
      let c = Cache.mis_prepare g ~volatile in
      Cache.mis_alpha c ~extra = Ch_solvers.Mis.alpha g')

let prop_domset_cache =
  QCheck.Test.make ~count:60 ~name:"Domset.min_size ~balls:(Cache.domset_balls) = plain"
    QCheck.(pair (int_range 2 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.gnp ~seed n 0.3 in
      let extra = random_extra ~seed:(seed + 1) g (List.init n Fun.id) in
      let g' = Graph.copy g in
      List.iter (fun (u, v) -> Graph.add_edge g' u v) extra;
      Cache.clear ();
      let c = Cache.domset_prepare g ~radius:1 in
      let balls = Cache.domset_balls c ~extra in
      Ch_solvers.Domset.min_size ~balls g' = Ch_solvers.Domset.min_size g')

(* ---------------------------------------------------------------- *)
(* Memoization behavior                                             *)
(* ---------------------------------------------------------------- *)

let test_memo_counters () =
  Cache.clear ();
  let g = Mds_lb.core_graph ~k:2 in
  let c1 = Cache.domset_prepare g ~radius:1 in
  let s1 = Cache.domset_stats c1 in
  Alcotest.(check (pair int int))
    "first prepare is a miss" (0, 1)
    (s1.Cache.hits, s1.Cache.misses);
  (* a structurally equal but physically distinct graph must hit *)
  let c2 = Cache.domset_prepare (Mds_lb.core_graph ~k:2) ~radius:1 in
  let s2 = Cache.domset_stats c2 in
  Alcotest.(check (pair int int))
    "memoized prepare is a hit" (1, 0)
    (s2.Cache.hits, s2.Cache.misses);
  ignore (Cache.domset_balls c2 ~extra:[]);
  let s3 = Cache.domset_stats c2 in
  Alcotest.(check int) "queries count as hits" 2 s3.Cache.hits;
  Cache.clear ();
  let c4 = Cache.domset_prepare g ~radius:1 in
  let s4 = Cache.domset_stats c4 in
  Alcotest.(check (pair int int))
    "clear drops the memo" (0, 1)
    (s4.Cache.hits, s4.Cache.misses)

let test_memo_aux_keying () =
  Cache.clear ();
  let g = Mds_lb.core_graph ~k:2 in
  let _ = Cache.steiner_prepare g ~terminals:[ 0; 1 ] ~cap:1 in
  (* same graph, different parameters: must rebuild, not hit *)
  let c = Cache.steiner_prepare g ~terminals:[ 0; 1; 2 ] ~cap:1 in
  let s = Cache.steiner_stats c in
  Alcotest.(check (pair int int))
    "different terminals miss" (0, 1)
    (s.Cache.hits, s.Cache.misses);
  let c' = Cache.steiner_prepare g ~terminals:[ 0; 1 ] ~cap:2 in
  let s' = Cache.steiner_stats c' in
  Alcotest.(check (pair int int))
    "different cap misses" (0, 1)
    (s'.Cache.hits, s'.Cache.misses)

(* ---------------------------------------------------------------- *)
(* Seed derivation: verify_random is schedule-independent           *)
(* ---------------------------------------------------------------- *)

(* A deliberately broken family (predicate always TRUE) makes the
   failure count non-trivial: it fails exactly on the non-intersecting
   pairs.  The expected count is recomputed here straight from the
   documented derivation — corners first, then sample i drawn from
   seeds (seed + 2i, seed + 2i + 1) — and must match under any worker
   count, pinning both the sampling-with-replacement semantics and the
   per-index seed scheme. *)
let test_seed_derivation () =
  let base = Mds_lb.family ~k:2 in
  let broken = { base with Framework.predicate = (fun _ -> true) } in
  let seed = 1234 and samples = 200 in
  let k = broken.Framework.input_bits in
  let corners =
    [
      (Bits.zeros k, Bits.zeros k);
      (Bits.ones k, Bits.ones k);
      (Bits.ones k, Bits.zeros k);
      (Bits.zeros k, Bits.ones k);
    ]
  in
  let drawn =
    corners
    @ List.init samples (fun i ->
          ( Bits.random ~seed:(seed + (2 * i)) k,
            Bits.random ~seed:(seed + (2 * i) + 1) k ))
  in
  let expected =
    List.length
      (List.filter (fun (x, y) -> not (broken.Framework.f x y)) drawn)
  in
  let p1 = Pool.create ~jobs:1 () in
  let p4 = Pool.create ~jobs:4 () in
  let f1, t1 = Framework.verify_random ~pool:p1 ~seed ~samples broken in
  let f4, t4 = Framework.verify_random ~pool:p4 ~seed ~samples broken in
  Pool.shutdown p1;
  Pool.shutdown p4;
  Alcotest.(check (pair int int)) "1 worker matches the formula"
    (expected, samples + 4) (f1, t1);
  Alcotest.(check (pair int int)) "4 workers match the formula"
    (expected, samples + 4) (f4, t4)

let () =
  Alcotest.run "incremental"
    [
      ( "graph differentials",
        [
          Alcotest.test_case "mds core+inputs = build" `Quick test_mds_graphs;
          Alcotest.test_case "maxis core+inputs = build" `Quick test_maxis_graphs;
          Alcotest.test_case "maxcut core+inputs = build" `Quick
            test_maxcut_graphs;
          Alcotest.test_case "hampath core+inputs = build" `Quick
            test_hampath_graphs;
          Alcotest.test_case "steiner core+inputs = build" `Quick
            test_steiner_graphs;
        ] );
      ( "verdict differentials",
        [
          Alcotest.test_case "mds exhaustive" `Quick test_mds_exhaustive;
          Alcotest.test_case "maxis exhaustive" `Quick test_maxis_exhaustive;
          Alcotest.test_case "maxcut exhaustive" `Slow test_maxcut_exhaustive;
          Alcotest.test_case "steiner sampled" `Slow test_steiner_sampled;
          Alcotest.test_case "maxcut sampled" `Quick test_maxcut_sampled;
          Alcotest.test_case "hampath exhaustive" `Slow test_hampath_exhaustive;
          Alcotest.test_case "of_family fallback" `Quick test_of_family;
          Alcotest.test_case "verifier counts" `Quick test_verify_counts;
        ] );
      ( "solver caches",
        [
          qt prop_steiner_cache;
          qt prop_maxcut_cache;
          qt prop_mis_cache;
          qt prop_domset_cache;
        ] );
      ( "memoization",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_memo_counters;
          Alcotest.test_case "aux keying" `Quick test_memo_aux_keying;
        ] );
      ( "determinism",
        [ Alcotest.test_case "seed derivation" `Quick test_seed_derivation ] );
    ]
