open Ch_cc
open Ch_core
open Ch_lbgraphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_family ?(samples = 12) ?(exhaustive = false) name fam =
  let failures, total =
    if exhaustive then Framework.verify_exhaustive fam
    else Framework.verify_random ~seed:11 ~samples fam
  in
  Alcotest.(check string)
    (name ^ " iff-predicate")
    (Printf.sprintf "0/%d" total)
    (Printf.sprintf "%d/%d" failures total);
  check (name ^ " sidedness") true (Framework.check_sidedness ~seed:5 ~samples:5 fam)

(* ------------------------------------------------------------------ *)
(* Theorem 2.1: MDS                                                    *)
(* ------------------------------------------------------------------ *)

let test_mds_k2 () = assert_family ~exhaustive:true "mds k=2" (Mds_lb.family ~k:2)

let test_mds_k4 () = assert_family ~samples:16 "mds k=4" (Mds_lb.family ~k:4)

let test_mds_structure () =
  List.iter
    (fun k ->
      let fam = Mds_lb.family ~k in
      check_int "n = 4k + 12 log k" ((4 * k) + (12 * Bitgadget.log2 k))
        fam.Framework.nvertices;
      check_int "cut = 4 log k" (4 * Bitgadget.log2 k) (Framework.cut_size fam))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Theorems 2.2-2.5: Hamiltonian constructions                         *)
(* ------------------------------------------------------------------ *)

let test_hampath_k2 () =
  assert_family ~exhaustive:true "hamiltonian path k=2" (Hampath_lb.path_family ~k:2)

let test_hamcycle_k2 () =
  assert_family ~samples:16 "hamiltonian cycle k=2" (Hampath_lb.cycle_family ~k:2)

let test_undirected_variants_k2 () =
  assert_family ~samples:8 "undirected HC k=2" (Hampath_lb.undirected_cycle_family ~k:2);
  assert_family ~samples:8 "undirected HP k=2" (Hampath_lb.undirected_path_family ~k:2);
  assert_family ~samples:8 "2-ECSS k=2" (Hampath_lb.ecss_family ~k:2)

let test_hampath_structure () =
  List.iter
    (fun k ->
      let fam = Hampath_lb.path_family ~k in
      let t = Bitgadget.log2 k in
      check_int "n = 6 + 4k + 2 log k (2 + 6k)"
        (6 + (4 * k) + (2 * t * (2 + (6 * k))))
        fam.Framework.nvertices;
      check "cut O(log k)" true (Framework.cut_size fam <= (24 * t) + 2))
    [ 2; 4; 8 ]

(* the Claim 2.1 constructive path is a valid Hamiltonian path at every
   scale — search is exhausted only at k=2, but the completeness direction
   holds for any k *)
let test_hampath_witness_paths () =
  List.iter
    (fun (k, i, j, extra) ->
      let kk = k * k in
      let x = Bits.of_fun kk (fun b -> b = (i * k) + j || List.mem b extra) in
      let y = Bits.of_fun kk (fun b -> b = (i * k) + j) in
      let dg = Hampath_lb.build ~k x y in
      let p = Hampath_lb.witness_path ~k x y ~i ~j in
      check
        (Printf.sprintf "witness path valid at k=%d i=%d j=%d" k i j)
        true
        (Ch_solvers.Hamilton.is_directed_path dg p))
    [ (2, 0, 1, []); (2, 1, 1, [ 0 ]); (4, 1, 2, [ 3; 7 ]); (8, 5, 6, [ 1 ]);
      (16, 9, 3, [ 17; 200 ]) ]

(* ------------------------------------------------------------------ *)
(* Theorem 2.7: Steiner tree                                           *)
(* ------------------------------------------------------------------ *)

let test_steiner_k2 () = assert_family ~samples:8 "steiner k=2" (Steiner_lb.family ~k:2)

let test_steiner_structure () =
  let fam = Steiner_lb.family ~k:4 in
  check_int "n doubles" (2 * Mds_lb.Ix.n ~k:4) fam.Framework.nvertices;
  check "cut O(log k)" true (Framework.cut_size fam <= (8 * Bitgadget.log2 4) + 2)

(* ------------------------------------------------------------------ *)
(* Theorem 2.8: max cut                                                *)
(* ------------------------------------------------------------------ *)

let test_maxcut_k2 () = assert_family ~samples:8 "max-cut k=2" (Maxcut_lb.family ~k:2)

let test_maxcut_structure () =
  List.iter
    (fun k ->
      let fam = Maxcut_lb.family ~k in
      check_int "n = 4k + 8 log k + 5"
        ((4 * k) + (8 * Bitgadget.log2 k) + 5)
        fam.Framework.nvertices;
      check_int "cut = 4 log k + 1" ((4 * Bitgadget.log2 k) + 1) (Framework.cut_size fam))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Section 3: exact MaxIS/MVC and the bounded-degree pipeline          *)
(* ------------------------------------------------------------------ *)

let test_maxis_k2 () =
  assert_family ~exhaustive:true "maxis k=2" (Maxis_lb.family ~k:2);
  assert_family ~exhaustive:true "mvc k=2" (Maxis_lb.mvc_family ~k:2)

let test_maxis_k4 () = assert_family ~samples:20 "maxis k=4" (Maxis_lb.family ~k:4)

let test_bounded_degree_pipeline () =
  let k = 2 in
  (* predicate through the verified chain equals ¬DISJ *)
  let pairs =
    (Bits.zeros 4, Bits.zeros 4)
    :: (Bits.ones 4, Bits.ones 4)
    :: (Bits.ones 4, Bits.zeros 4)
    :: List.init 20 (fun i ->
           (Bits.random ~seed:(900 + i) 4, Bits.random ~seed:(950 + i) 4))
  in
  List.iter
    (fun (x, y) ->
      let inst = Bounded_degree.build ~k x y in
      check "bounded-degree predicate iff intersecting"
        (Ch_cc.Commfn.intersecting x y)
        (Bounded_degree.predicate inst))
    pairs

let test_bounded_degree_structure () =
  let inst = Bounded_degree.build ~k:2 (Bits.zeros 4) (Bits.ones 4) in
  let g = inst.Bounded_degree.graph in
  check "max degree 5" true (Ch_graph.Graph.max_degree g <= 5);
  check "connected" true (Ch_graph.Props.connected g);
  check "diameter O(log n) (measured constant 8)" true
    (let n = float_of_int (Ch_graph.Graph.n g) in
     float_of_int (Ch_graph.Props.diameter g) <= 8.0 *. (log n /. log 2.0));
  check_int "cut equals the base family cut" 4 (Bounded_degree.cut_size inst)

(* the chain alpha agrees with the direct solver on one instance *)
let test_bounded_degree_alpha_direct () =
  (* a smaller base: k=2 with densest inputs minimizes |E|; still ~1500
     vertices, so check a trimmed variant instead: the equality was already
     established per-stage in test_sat; here spot-check m and targets *)
  let inst = Bounded_degree.build ~k:2 (Bits.ones 4) (Bits.ones 4) in
  check_int "alpha' = base + m + m_exp"
    (inst.Bounded_degree.base_alpha + inst.Bounded_degree.m_base
   + inst.Bounded_degree.m_exp)
    (Bounded_degree.alpha' inst)

let test_mvc_to_mds_reduction () =
  (* Theorem 3.3: γ(reduction(G)) = τ(G) on random graphs *)
  List.iter
    (fun seed ->
      let g = Ch_graph.Gen.random_connected ~seed 9 0.35 in
      let reduced = Bounded_degree.mvc_to_mds g in
      check_int "gamma equals tau"
        (Ch_solvers.Mis.min_vertex_cover_size g)
        (Ch_solvers.Domset.min_size reduced))
    [ 3; 5; 7; 9; 11 ]


(* ------------------------------------------------------------------ *)
(* Theorem 3.4 variant: 2-spanner via the hub reduction                *)
(* ------------------------------------------------------------------ *)

let test_spanner_hub_identity () =
  (* min 2-spanner cost of the hub graph = W * gamma(G), on random graphs *)
  List.iter
    (fun seed ->
      let g = Ch_graph.Gen.random_connected ~seed 7 0.35 in
      let hub = Spanner_lb.hub_reduction g ~w:5 in
      check_int "hub spanner cost = W * gamma"
        (5 * Ch_solvers.Domset.min_size g)
        (fst (Ch_solvers.Spanner.min_weight_2_spanner hub)))
    [ 2; 4; 6; 8 ]

let test_spanner_family () =
  assert_family ~samples:10 "2-spanner family" (Spanner_lb.family ~k:2)

(* ------------------------------------------------------------------ *)
(* Section 4: approximation families                                   *)
(* ------------------------------------------------------------------ *)

let approx_params = Maxis_approx_lb.make_params ~ell:2 ~k:2 ()

let test_maxis_approx_weighted () =
  assert_family ~exhaustive:true "weighted 7/8 family"
    (Maxis_approx_lb.weighted_family approx_params)

let test_maxis_approx_unweighted () =
  assert_family ~samples:10 "unweighted 7/8 family"
    (Maxis_approx_lb.unweighted_family approx_params)

let test_maxis_approx_linear () =
  assert_family ~exhaustive:true "5/6 family"
    (Maxis_approx_lb.linear_family approx_params)

let test_maxis_approx_gap () =
  (* the no-instances land at exactly no_weight, the yes at yes_weight *)
  let p = approx_params in
  let seen_yes = ref false and seen_no = ref false in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let g = Maxis_approx_lb.build_weighted p x y in
          let w = fst (Ch_solvers.Mis.max_weight_set g) in
          if Ch_cc.Commfn.intersecting x y then begin
            seen_yes := true;
            check_int "yes weight" (Maxis_approx_lb.yes_weight p) w
          end
          else begin
            seen_no := true;
            check "no weight at most 7l+4t" true (w <= Maxis_approx_lb.no_weight p)
          end)
        [ Bits.zeros 4; Bits.ones 4 ])
    [ Bits.zeros 4; Bits.ones 4 ];
  check "both cases exercised" true (!seen_yes && !seen_no)

let test_kmds_families () =
  let p2 = Kmds_lb.make_params ~seed:1 ~k:2 ~ell:6 ~t_count:6 ~r:2 () in
  assert_family ~samples:20 "2-MDS family" (Kmds_lb.family p2);
  let p3 = Kmds_lb.make_params ~seed:1 ~k:3 ~ell:6 ~t_count:6 ~r:2 () in
  assert_family ~samples:12 "3-MDS family" (Kmds_lb.family p3);
  check "2-MDS gap" true
    (List.for_all Fun.id
       (List.init 15 (fun i ->
            Kmds_lb.gap_holds p2
              (Bits.random ~seed:(100 + i) 6)
              (Bits.random ~seed:(200 + i) 6))))

let test_covering_property () =
  let c = Covering.construct ~seed:3 ~ell:8 ~t_count:8 ~r:2 () in
  check "verified" true (Covering.property_holds ~ell:8 ~r:2 c.Covering.sets);
  check_int "t sets" 8 (Array.length c.Covering.sets)

let test_steiner_approx_families () =
  let p = Steiner_approx_lb.make_params ~seed:1 ~ell:6 ~t_count:5 ~r:2 () in
  assert_family ~samples:8 "node-weighted steiner family"
    (Steiner_approx_lb.node_weighted_family p);
  assert_family ~samples:8 "directed steiner family"
    (Steiner_approx_lb.directed_family p);
  check "node-weighted gap" true
    (List.for_all Fun.id
       (List.init 8 (fun i ->
            Steiner_approx_lb.node_weighted_gap_holds p
              (Bits.random ~seed:(300 + i) 5)
              (Bits.random ~seed:(400 + i) 5))));
  check "directed gap" true
    (List.for_all Fun.id
       (List.init 8 (fun i ->
            Steiner_approx_lb.directed_gap_holds p
              (Bits.random ~seed:(500 + i) 5)
              (Bits.random ~seed:(600 + i) 5))))

let test_restricted_mds_family () =
  let p = Mds_restricted_lb.make_params ~seed:1 ~ell:6 ~t_count:6 ~r:2 () in
  assert_family ~samples:24 "restricted MDS family" (Mds_restricted_lb.family p);
  check "gap" true
    (List.for_all Fun.id
       (List.init 15 (fun i ->
            Mds_restricted_lb.gap_holds p
              (Bits.random ~seed:(700 + i) 6)
              (Bits.random ~seed:(800 + i) 6))))

(* ------------------------------------------------------------------ *)
(* Multiparty bit gadgets (sec 2 / arXiv:1901.01630)                   *)
(* ------------------------------------------------------------------ *)

let test_bitgadget_k2 () =
  assert_family ~exhaustive:true "bitgadget k=2" (Bitgadget_lb.family ~k:2)

let test_bitgadget_k4 () =
  assert_family ~exhaustive:true "bitgadget k=4" (Bitgadget_lb.family ~k:4)

let test_bitgadget_structure () =
  List.iter
    (fun k ->
      let t = Bitgadget.log2 k in
      let fam = Bitgadget_lb.family ~k in
      check_int "n = 2k + 6 log k + 2"
        ((2 * k) + (6 * t) + 2)
        fam.Framework.nvertices;
      check_int "two-party cut = 2 log k" (2 * t) (Framework.cut_size fam);
      let partition = Bitgadget_lb.partition ~k in
      check_int "4 parts" 4 (Array.fold_left max 0 partition + 1);
      check_int "partition covers every vertex" fam.Framework.nvertices
        (Array.length partition);
      (* the multicut is input-independent: row-gadget code edges plus the
         side-crossing gadget edges *)
      let mc =
        Framework.multicut_info fam ~partition
      in
      check_int "multicut = 2kt + 2t"
        ((2 * k * t) + (2 * t))
        (Array.length mc.Framework.mc_edges))
    [ 2; 4; 8 ]

(* the t=4 simulation end-to-end: four parties decide intersection with
   every cross-part message charged against the multicut *)
let test_bitgadget_t4_simulation () =
  let k = 4 in
  let fam = Bitgadget_lb.family ~k in
  let target = Bitgadget_lb.target_size ~k in
  let pairs =
    (Bits.ones k, Bits.ones k)
    :: (Bits.ones k, Bits.of_fun k (fun b -> b = 2))
    :: (List.init 6 (fun i ->
            (Bits.random ~seed:(60 + i) k, Bits.random ~seed:(70 + i) k))
       |> List.filter (fun (x, y) -> Bits.popcount x > 0 && Bits.popcount y > 0))
  in
  List.iter
    (fun (x, y) ->
      let sim =
        Framework.simulate_reduction ~partition:(Bitgadget_lb.partition ~k) fam
          ~solver:(Framework.Graph_solver Ch_solvers.Domset.min_size)
          ~accept:(fun gamma -> gamma <= target)
          x y
      in
      check "t=4 simulation decides intersection" true
        sim.Framework.decision_correct;
      check "some bits cross the multicut" true (sim.Framework.cut_bits > 0))
    pairs

(* ------------------------------------------------------------------ *)
(* The registry: one catalog drives the CLI, bench and these tests     *)
(* ------------------------------------------------------------------ *)

let test_registry_catalog () =
  let reg = Families.catalog () in
  let ids = Registry.ids reg in
  check_int "20 families" 20 (List.length ids);
  check "ids unique" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  List.iter
    (fun s ->
      check (s.Registry.id ^ " paper_ref non-empty") true (s.Registry.paper_ref <> "");
      check (s.Registry.id ^ " origin non-empty") true (s.Registry.origin <> ""))
    (Registry.all reg);
  (* find / find_exn / unknown-id message *)
  check "find mds" true (Registry.find reg "mds" <> None);
  check "mem 2mds" true (Registry.mem reg "2mds");
  (match Registry.find_exn reg "no-such-family" with
  | exception Invalid_argument msg ->
      check "unknown-id message lists valid ids" true
        (String.length msg > 0
        && String.sub msg 0 14 = "unknown family"
        &&
        let rec contains s sub i =
          if i + String.length sub > String.length s then false
          else String.sub s i (String.length sub) = sub || contains s sub (i + 1)
        in
        contains msg "mds-restricted" 0)
  | _ -> Alcotest.fail "find_exn should raise on unknown id");
  (* duplicate registration is rejected *)
  match Registry.of_specs (Families.all @ [ List.hd Families.all ]) with
  | exception Registry.Duplicate_id "mds" -> ()
  | _ -> Alcotest.fail "duplicate id should raise"

(* Every spec with an incremental descriptor: the memoized per-pair path
   must be bit-identical to the from-scratch solvers over the whole
   exhaustive k=2 input space. *)
let registry_differential_case s =
  let run () =
    match s.Registry.incremental with
    | None -> assert false
    | Some inc ->
        let inc = inc 2 in
        let scratch = Framework.exhaustive_verdicts inc.Framework.scratch in
        let incr, stats = Framework.exhaustive_verdicts_inc inc in
        Alcotest.(check (array bool)) (s.Registry.id ^ " verdicts") scratch incr;
        check (s.Registry.id ^ " cache used") true
          (stats.Framework.cache_hits + stats.Framework.cache_misses > 0)
  in
  let slow =
    (* the scratch side of these exhaustive sweeps dominates the suite *)
    [ "hampath"; "maxcut"; "steiner"; "maxis-78-unweighted" ]
  in
  Alcotest.test_case
    (s.Registry.id ^ " k=2 exhaustive differential")
    (if List.mem s.Registry.id slow then `Slow else `Quick)
    run

let registry_differential_cases =
  List.map registry_differential_case
    (Registry.filter ~incremental:true (Families.catalog ()))

(* ------------------------------------------------------------------ *)
(* Theorem 1.1 end-to-end: Alice and Bob solve DISJ by simulation      *)
(* ------------------------------------------------------------------ *)

let test_theorem_1_1_simulation () =
  let k = 2 in
  let fam = Mds_lb.family ~k in
  let target = Mds_lb.target_size ~k in
  (* the simulation runs a CONGEST algorithm, so the instance must be
     connected: in the Figure 1 graph that means x or y is nonzero *)
  let pairs =
    (Bits.ones 4, Bits.zeros 4)
    :: (Bits.ones 4, Bits.ones 4)
    :: (List.init 6 (fun i -> (Bits.random ~seed:(40 + i) 4, Bits.random ~seed:(50 + i) 4))
       |> List.filter (fun (x, y) -> Bits.popcount x + Bits.popcount y > 0))
  in
  List.iter
    (fun (x, y) ->
      let sim =
        Framework.simulate_alice_bob fam ~solver:Ch_solvers.Domset.min_size
          ~accept:(fun gamma -> gamma <= target)
          x y
      in
      check "simulation decides DISJ" true sim.Framework.decision_correct;
      check "some bits cross the cut" true (sim.Framework.cut_bits > 0))
    pairs

let test_lower_bound_calculator () =
  (* the certified bound grows like n^2 / log^2 n for the MDS family *)
  let lb k =
    let fam = Mds_lb.family ~k in
    Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
      ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
  in
  check "monotone growth" true (lb 4 > lb 2 && lb 8 > lb 4 && lb 16 > lb 8);
  (* normalized rate should stay within a constant band *)
  let rate k =
    let fam = Mds_lb.family ~k in
    let n = float_of_int fam.Framework.nvertices in
    let logn = log n /. log 2.0 in
    lb k *. logn *. logn /. (n *. n)
  in
  let r16 = rate 16 and r64 = rate 64 in
  check "rate flat within 4x" true (r64 /. r16 < 4.0 && r16 /. r64 < 4.0)

let () =
  Alcotest.run "families"
    [
      ( "mds (thm 2.1)",
        [
          Alcotest.test_case "k=2 exhaustive" `Quick test_mds_k2;
          Alcotest.test_case "k=4 sampled" `Quick test_mds_k4;
          Alcotest.test_case "structure" `Quick test_mds_structure;
        ] );
      ( "hamiltonian (thms 2.2-2.5)",
        [
          Alcotest.test_case "path k=2 exhaustive" `Slow test_hampath_k2;
          Alcotest.test_case "cycle k=2" `Quick test_hamcycle_k2;
          Alcotest.test_case "undirected + ecss" `Quick test_undirected_variants_k2;
          Alcotest.test_case "structure" `Quick test_hampath_structure;
          Alcotest.test_case "claim 2.1 witness paths" `Quick test_hampath_witness_paths;
        ] );
      ( "steiner (thm 2.7)",
        [
          Alcotest.test_case "k=2" `Quick test_steiner_k2;
          Alcotest.test_case "structure" `Quick test_steiner_structure;
        ] );
      ( "max-cut (thm 2.8)",
        [
          Alcotest.test_case "k=2" `Quick test_maxcut_k2;
          Alcotest.test_case "structure" `Quick test_maxcut_structure;
        ] );
      ( "bounded degree (sec 3)",
        [
          Alcotest.test_case "maxis k=2 exhaustive" `Quick test_maxis_k2;
          Alcotest.test_case "maxis k=4" `Quick test_maxis_k4;
          Alcotest.test_case "pipeline iff" `Quick test_bounded_degree_pipeline;
          Alcotest.test_case "pipeline structure" `Quick test_bounded_degree_structure;
          Alcotest.test_case "alpha chain" `Quick test_bounded_degree_alpha_direct;
          Alcotest.test_case "mvc-to-mds" `Quick test_mvc_to_mds_reduction;
          Alcotest.test_case "spanner hub identity" `Quick test_spanner_hub_identity;
          Alcotest.test_case "spanner family" `Quick test_spanner_family;
        ] );
      ( "approximation (sec 4)",
        [
          Alcotest.test_case "weighted 7/8" `Quick test_maxis_approx_weighted;
          Alcotest.test_case "unweighted 7/8" `Quick test_maxis_approx_unweighted;
          Alcotest.test_case "linear 5/6" `Quick test_maxis_approx_linear;
          Alcotest.test_case "gap values" `Quick test_maxis_approx_gap;
          Alcotest.test_case "k-mds" `Quick test_kmds_families;
          Alcotest.test_case "covering designs" `Quick test_covering_property;
          Alcotest.test_case "steiner variants" `Quick test_steiner_approx_families;
          Alcotest.test_case "restricted mds" `Quick test_restricted_mds_family;
        ] );
      ( "bit gadgets (multiparty)",
        [
          Alcotest.test_case "k=2 exhaustive" `Quick test_bitgadget_k2;
          Alcotest.test_case "k=4 exhaustive" `Quick test_bitgadget_k4;
          Alcotest.test_case "structure" `Quick test_bitgadget_structure;
          Alcotest.test_case "t=4 simulation" `Quick test_bitgadget_t4_simulation;
        ] );
      ( "theorem 1.1",
        [
          Alcotest.test_case "alice-bob simulation" `Quick test_theorem_1_1_simulation;
          Alcotest.test_case "lower bound rates" `Quick test_lower_bound_calculator;
        ] );
      ( "registry",
        Alcotest.test_case "catalog" `Quick test_registry_catalog
        :: registry_differential_cases );
    ]
