open Ch_graph
open Ch_solvers

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Brute-force reference implementations                              *)
(* ------------------------------------------------------------------ *)

let subsets n f =
  for mask = 0 to (1 lsl n) - 1 do
    f (List.filter (fun v -> (mask lsr v) land 1 = 1) (List.init n Fun.id))
  done

let brute_alpha ?weights g =
  let weights =
    match weights with Some w -> w | None -> Array.make (Graph.n g) 1
  in
  let best = ref 0 in
  subsets (Graph.n g) (fun set ->
      if Mis.is_independent g set then
        best := max !best (List.fold_left (fun acc v -> acc + weights.(v)) 0 set));
  !best

let brute_domset ?(radius = 1) ?weights g =
  let weights =
    match weights with Some w -> w | None -> Array.make (Graph.n g) 1
  in
  let best = ref max_int in
  subsets (Graph.n g) (fun set ->
      if Domset.is_dominating ~radius g set then
        best := min !best (List.fold_left (fun acc v -> acc + weights.(v)) 0 set));
  !best

let brute_maxcut g =
  let n = Graph.n g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let side = Array.init n (fun v -> (mask lsr v) land 1 = 1) in
    best := max !best (Maxcut.cut_weight g side)
  done;
  !best

let brute_matching g =
  let edges = List.map (fun (u, v, _) -> (u, v)) (Graph.edges g) in
  let rec go chosen = function
    | [] -> List.length chosen
    | (u, v) :: rest ->
        let skip = go chosen rest in
        if List.exists (fun (a, b) -> a = u || b = u || a = v || b = v) chosen
        then skip
        else max skip (go ((u, v) :: chosen) rest)
  in
  go [] edges

let brute_ham_path dg =
  let n = Digraph.n dg in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
          l
  in
  List.exists (Hamilton.is_directed_path dg) (permutations (List.init n Fun.id))

let kruskal_weight g vertices =
  (* MST weight of the subgraph induced on [vertices]; None if disconnected *)
  let sel = Array.make (Graph.n g) false in
  List.iter (fun v -> sel.(v) <- true) vertices;
  let edges =
    List.filter (fun (u, v, _) -> sel.(u) && sel.(v)) (Graph.edges g)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
  in
  let uf = Union_find.create (Graph.n g) in
  let total = ref 0 and joined = ref 1 in
  List.iter
    (fun (u, v, w) ->
      if Union_find.union uf u v then begin
        total := !total + w;
        incr joined
      end)
    edges;
  if !joined = List.length vertices then Some !total else None

let brute_steiner g terminals =
  let n = Graph.n g in
  let best = ref max_int in
  subsets n (fun extra ->
      let vertices = List.sort_uniq compare (terminals @ extra) in
      match kruskal_weight g vertices with
      | Some w -> best := min !best w
      | None -> ());
  !best

let brute_node_steiner g terminals =
  let n = Graph.n g in
  let best = ref max_int in
  subsets n (fun extra ->
      let vertices = List.sort_uniq compare (terminals @ extra) in
      let sub, _ = Graph.induced g vertices in
      if Props.connected sub && Graph.n sub = List.length vertices then
        best :=
          min !best (List.fold_left (fun acc v -> acc + Graph.vweight g v) 0 vertices));
  !best


let prop_steiner_cardinality_consistency =
  QCheck.Test.make ~name:"min_edges equals unit-weight dreyfus-wagner" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n) ->
      let g = Gen.random_connected ~seed n 0.35 in
      let rng = Random.State.make [| seed; 21 |] in
      let t = List.sort_uniq compare
          (List.init (min n 4) (fun _ -> Random.State.int rng n)) in
      match Steiner.min_edges g t with
      | Some edges -> edges = Steiner.dreyfus_wagner g t
      | None -> false)

let prop_domset_radius3 =
  QCheck.Test.make ~name:"3-MDS matches brute force" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.25 in
      Domset.min_size ~radius:3 g = brute_domset ~radius:3 g)

let petersen () =
  let g = Graph.create 10 in
  for i = 0 to 4 do
    Graph.add_edge g i ((i + 1) mod 5);
    Graph.add_edge g i (i + 5);
    Graph.add_edge g (5 + i) (5 + ((i + 2) mod 5))
  done;
  g

(* ------------------------------------------------------------------ *)
(* MIS / MVC                                                          *)
(* ------------------------------------------------------------------ *)

let test_mis_known () =
  check_int "alpha C5" 2 (Mis.alpha (Gen.cycle 5));
  check_int "alpha C6" 3 (Mis.alpha (Gen.cycle 6));
  check_int "alpha K7" 1 (Mis.alpha (Gen.clique 7));
  check_int "alpha P5" 3 (Mis.alpha (Gen.path 5));
  check_int "alpha K34" 4 (Mis.alpha (Gen.complete_bipartite 3 4));
  check_int "alpha petersen" 4 (Mis.alpha (petersen ()));
  check_int "alpha empty" 6 (Mis.alpha (Graph.create 6));
  check_int "tau petersen" 6 (Mis.min_vertex_cover_size (petersen ()))

let test_mis_witness () =
  let g = petersen () in
  let set = Mis.max_independent_set g in
  check "independent" true (Mis.is_independent g set);
  check_int "witness size" 4 (List.length set);
  let cover = Mis.min_vertex_cover g in
  let covered (u, v, _) = List.mem u cover || List.mem v cover in
  check "cover covers" true (List.for_all covered (Graph.edges g))

let prop_mis_vs_brute =
  QCheck.Test.make ~name:"alpha matches brute force" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 12))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.35 in
      Mis.alpha g = brute_alpha g)

let prop_mwis_vs_brute =
  QCheck.Test.make ~name:"weighted MIS matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 1 11))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.4 in
      let rng = Random.State.make [| seed; 7 |] in
      let weights = Array.init n (fun _ -> Random.State.int rng 20) in
      fst (Mis.max_weight_set ~weights g) = brute_alpha ~weights g)

let prop_mis_dense =
  QCheck.Test.make ~name:"alpha on dense graphs" ~count:20
    QCheck.(pair (int_bound 10000) (int_range 1 11))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.8 in
      Mis.alpha g = brute_alpha g)

(* exercise the sparse/kernelization path on a larger instance *)
let test_mis_large_sparse () =
  let g = Gen.random_connected ~seed:42 120 0.02 in
  let w, set = Mis.max_weight_set ~weights:(Array.make 120 1) g in
  check "independent" true (Mis.is_independent g set);
  check_int "witness weight" w (List.length set);
  (* sanity: at least the greedy bound *)
  check "reasonable size" true (w >= 120 / (Graph.max_degree g + 1))

(* ------------------------------------------------------------------ *)
(* Dominating sets                                                    *)
(* ------------------------------------------------------------------ *)

let test_domset_known () =
  check_int "gamma star" 1 (Domset.min_size (Gen.star 9));
  check_int "gamma P7" 3 (Domset.min_size (Gen.path 7));
  check_int "gamma C6" 2 (Domset.min_size (Gen.cycle 6));
  check_int "gamma petersen" 3 (Domset.min_size (petersen ()));
  check_int "2-dom P9" 2 (Domset.min_size ~radius:2 (Gen.path 9));
  check_int "2-dom P10" 2 (Domset.min_size ~radius:2 (Gen.path 10));
  check "exists" true (Domset.exists_of_size (Gen.cycle 6) 2);
  check "not exists" false (Domset.exists_of_size (Gen.cycle 6) 1)

let test_domset_witness () =
  let g = petersen () in
  let w, set = Domset.min_weight_set ~weights:(Array.make 10 1) g in
  check_int "weight" 3 w;
  check "dominating" true (Domset.is_dominating g set)

let prop_domset_vs_brute =
  QCheck.Test.make ~name:"min dominating set matches brute force" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 11))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.3 in
      Domset.min_size g = brute_domset g)

let prop_domset_weighted =
  QCheck.Test.make ~name:"weighted dominating set matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.3 in
      let rng = Random.State.make [| seed; 13 |] in
      let weights = Array.init n (fun _ -> Random.State.int rng 8) in
      fst (Domset.min_weight_set ~weights g) = brute_domset ~weights g)

let prop_domset_radius2 =
  QCheck.Test.make ~name:"2-MDS matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.25 in
      Domset.min_size ~radius:2 g = brute_domset ~radius:2 g)

(* ------------------------------------------------------------------ *)
(* Max cut                                                            *)
(* ------------------------------------------------------------------ *)

let test_maxcut_known () =
  check_int "maxcut K34" 12 (fst (Maxcut.max_cut (Gen.complete_bipartite 3 4)));
  check_int "maxcut C5" 4 (fst (Maxcut.max_cut (Gen.cycle 5)));
  check_int "maxcut C6" 6 (fst (Maxcut.max_cut (Gen.cycle 6)));
  check_int "maxcut K4" 4 (fst (Maxcut.max_cut (Gen.clique 4)));
  let g = Gen.clique 4 in
  Graph.set_edge_weight g 0 1 10;
  check_int "weighted" 13 (fst (Maxcut.max_cut g))

let prop_maxcut_vs_brute =
  QCheck.Test.make ~name:"max cut matches brute force" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 12))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.gnp ~seed n 0.5) in
      fst (Maxcut.max_cut g) = brute_maxcut g)

let prop_maxcut_witness =
  QCheck.Test.make ~name:"max cut witness is consistent" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 12))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.5 in
      let w, side = Maxcut.max_cut g in
      Maxcut.cut_weight g side = w)

let prop_local_search_half =
  QCheck.Test.make ~name:"local search cuts at least half the weight" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 2 20))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.gnp ~seed n 0.4) in
      2 * fst (Maxcut.local_search ~seed g) >= Graph.total_edge_weight g)

(* ------------------------------------------------------------------ *)
(* Hamiltonicity                                                      *)
(* ------------------------------------------------------------------ *)

let test_ham_known () =
  check "C6 cycle" true (Hamilton.undirected_cycle (Gen.cycle 6) <> None);
  check "P6 path" true (Hamilton.undirected_path (Gen.path 6) <> None);
  check "P6 no cycle" true (Hamilton.undirected_cycle (Gen.path 6) = None);
  check "star no path" true (Hamilton.undirected_path (Gen.star 5) = None);
  check "K5 cycle" true (Hamilton.undirected_cycle (Gen.clique 5) <> None);
  check "petersen no cycle" true (Hamilton.undirected_cycle (petersen ()) = None);
  check "petersen has path" true (Hamilton.undirected_path (petersen ()) <> None);
  check "grid 3x3 no cycle" true (Hamilton.undirected_cycle (Gen.grid 3 3) = None);
  check "grid 3x4 cycle" true (Hamilton.undirected_cycle (Gen.grid 3 4) <> None)

let test_ham_directed () =
  let dicycle = Digraph.of_arcs 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  (match Hamilton.directed_cycle dicycle with
  | Some c -> check "valid dicycle" true (Hamilton.is_directed_cycle dicycle c)
  | None -> Alcotest.fail "expected directed cycle");
  let dag = Digraph.of_arcs 4 [ (0, 1); (1, 2); (2, 3); (0, 2); (0, 3) ] in
  (match Hamilton.directed_path dag with
  | Some p -> check "valid dipath" true (Hamilton.is_directed_path dag p)
  | None -> Alcotest.fail "expected directed path");
  check "dag no cycle" true (Hamilton.directed_cycle dag = None);
  check "between" true
    (Hamilton.directed_path_between dag ~src:0 ~dst:3 <> None);
  check "not between" true
    (Hamilton.directed_path_between dag ~src:3 ~dst:0 = None)

let prop_ham_path_vs_brute =
  QCheck.Test.make ~name:"directed hamiltonian path matches brute force" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 6))
    (fun (seed, n) ->
      let dg = Gen.random_digraph ~seed n 0.4 in
      (Hamilton.directed_path dg <> None) = brute_ham_path dg)

let prop_ham_witness =
  QCheck.Test.make ~name:"hamiltonian witnesses are valid" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 3 9))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.6 in
      (match Hamilton.undirected_path g with
      | Some p -> Hamilton.is_undirected_path g p
      | None -> true)
      &&
      match Hamilton.undirected_cycle g with
      | Some c -> Hamilton.is_undirected_cycle g c
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Steiner trees                                                      *)
(* ------------------------------------------------------------------ *)

let prop_steiner_vs_brute =
  QCheck.Test.make ~name:"dreyfus-wagner matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 10))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed n 0.3) in
      let rng = Random.State.make [| seed; 3 |] in
      let t = List.sort_uniq compare
          (List.init (min n 4) (fun _ -> Random.State.int rng n)) in
      Steiner.dreyfus_wagner g t = brute_steiner g t)

let brute_min_extra g terminals =
  let n = Graph.n g in
  let is_t = Array.make n false in
  List.iter (fun t -> is_t.(t) <- true) terminals;
  let best = ref max_int in
  subsets n (fun extra ->
      let extra = List.filter (fun v -> not is_t.(v)) extra in
      let vertices = List.sort_uniq compare (terminals @ extra) in
      let sub, _ = Graph.induced g vertices in
      if Props.connected sub then best := min !best (List.length extra));
  if !best = max_int then None else Some !best

let prop_min_extra_vs_brute =
  QCheck.Test.make ~name:"min_extra_nodes matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.35 in
      let rng = Random.State.make [| seed; 11 |] in
      let t = List.sort_uniq compare
          (List.init (min n 3) (fun _ -> Random.State.int rng n)) in
      let cap = Random.State.int rng (n + 1) in
      let brute =
        match brute_min_extra g t with
        | Some s when s <= cap -> Some s
        | _ -> None
      in
      Steiner.min_extra_nodes ~cap g t = brute)

let prop_node_steiner_vs_brute =
  QCheck.Test.make ~name:"node-weighted steiner matches brute force" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n) ->
      let g = Gen.random_connected ~seed n 0.3 in
      let rng = Random.State.make [| seed; 5 |] in
      for v = 0 to n - 1 do
        Graph.set_vweight g v (Random.State.int rng 10)
      done;
      let t = List.sort_uniq compare
          (List.init (min n 4) (fun _ -> Random.State.int rng n)) in
      Steiner.node_weighted g t = brute_node_steiner g t)

let prop_directed_steiner_symmetric =
  QCheck.Test.make ~name:"directed steiner on symmetric digraph = undirected" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed n 0.3) in
      let dg = Digraph.create n in
      Graph.iter_edges
        (fun u v w ->
          Digraph.add_arc ~w dg u v;
          Digraph.add_arc ~w dg v u)
        g;
      let rng = Random.State.make [| seed; 9 |] in
      let t = List.sort_uniq compare
          (List.init (min n 4) (fun _ -> Random.State.int rng n)) in
      let root = List.hd t in
      Steiner.directed dg ~root t = Some (Steiner.dreyfus_wagner g t))

let test_steiner_known () =
  (* star: terminals are two leaves, the optimum passes through the hub *)
  let g = Gen.star 5 in
  check_int "star steiner" 2 (Steiner.dreyfus_wagner g [ 1; 2 ]);
  check_int "star extra nodes" 1 (Option.get (Steiner.min_extra_nodes g [ 1; 2; 3 ]));
  check_int "star min edges" 3 (Option.get (Steiner.min_edges g [ 1; 2; 3 ]));
  let p = Gen.path 6 in
  check_int "path extra" 4 (Option.get (Steiner.min_extra_nodes p [ 0; 5 ]));
  check "unreachable directed" true
    (Steiner.directed (Digraph.of_arcs 3 [ (1, 0) ]) ~root:0 [ 2 ] = None)

(* ------------------------------------------------------------------ *)
(* Decision-bounded search vs the unbounded optimum                    *)
(*                                                                    *)
(* The bounded entry points (exists_within / exists_of_weight /       *)
(* ?cutoff) prune subtrees that provably cannot cross the bound; each *)
(* property pins their verdicts to the unbounded optimum with bounds  *)
(* drawn to straddle it, so both the accept and the reject paths get  *)
(* exercised.                                                         *)
(* ------------------------------------------------------------------ *)

let prop_domset_exists_within =
  QCheck.Test.make ~name:"exists_within iff optimum weight <= bound" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 9))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.3 in
      let rng = Random.State.make [| seed; 17 |] in
      let weights = Array.init n (fun _ -> 1 + Random.State.int rng 6) in
      let radius = 1 + Random.State.int rng 2 in
      let opt = fst (Domset.min_weight_set ~radius ~weights g) in
      let bound = Random.State.int rng (opt + 3) - 1 in
      Domset.exists_within ~radius ~weights g ~bound = (opt <= bound))

let prop_domset_exists_of_size =
  QCheck.Test.make ~name:"exists_of_size iff optimum size <= bound" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.3 in
      let rng = Random.State.make [| seed; 23 |] in
      let opt = Domset.min_size g in
      let bound = Random.State.int rng (opt + 3) - 1 in
      Domset.exists_of_size g bound = (opt <= bound))

let prop_maxcut_exists_of_weight =
  QCheck.Test.make ~name:"exists_of_weight iff max cut >= bound" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.gnp ~seed n 0.5) in
      let rng = Random.State.make [| seed; 29 |] in
      let opt = fst (Maxcut.max_cut g) in
      let bound = Random.State.int rng (opt + 3) - 1 in
      Maxcut.exists_of_weight g bound = (opt >= bound))

let prop_directed_steiner_cutoff =
  QCheck.Test.make ~name:"directed steiner ?cutoff is an exact decision" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 8))
    (fun (seed, n) ->
      let dg = Gen.random_digraph ~seed n 0.4 in
      let rng = Random.State.make [| seed; 31 |] in
      let t = List.sort_uniq compare
          (List.init (min n 3) (fun _ -> Random.State.int rng n)) in
      let root = List.hd t in
      let cutoff = Random.State.int rng 6 in
      match (Steiner.directed ~cutoff dg ~root t, Steiner.directed dg ~root t) with
      | Some c, Some c' -> c = c' && c <= cutoff
      | None, Some c' -> c' > cutoff
      | None, None -> true
      | Some _, None -> false)

let prop_mwis_witness =
  QCheck.Test.make ~name:"warm-started MWIS witness is valid" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 11))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.4 in
      let rng = Random.State.make [| seed; 37 |] in
      let weights = Array.init n (fun _ -> Random.State.int rng 20) in
      let w, set = Mis.max_weight_set ~weights g in
      Mis.is_independent g set
      && List.fold_left (fun acc v -> acc + weights.(v)) 0 set = w)

let prop_ham_directed_witness =
  QCheck.Test.make ~name:"pruned directed hamiltonian witnesses are valid" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 8))
    (fun (seed, n) ->
      let dg = Gen.random_digraph ~seed n 0.5 in
      (match Hamilton.directed_path dg with
      | Some p -> Hamilton.is_directed_path dg p
      | None -> true)
      &&
      match Hamilton.directed_cycle dg with
      | Some c -> Hamilton.is_directed_cycle dg c
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Matching                                                           *)
(* ------------------------------------------------------------------ *)

let test_matching_known () =
  check_int "nu C5" 2 (Matching.nu (Gen.cycle 5));
  check_int "nu C6" 3 (Matching.nu (Gen.cycle 6));
  check_int "nu petersen" 5 (Matching.nu (petersen ()));
  check_int "nu K4" 2 (Matching.nu (Gen.clique 4));
  check_int "nu star" 1 (Matching.nu (Gen.star 6));
  check "matching valid" true
    (Matching.is_matching (petersen ()) (Matching.maximum_matching (petersen ())))

let prop_matching_vs_brute =
  QCheck.Test.make ~name:"blossom matches brute force" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.4 in
      Matching.nu g = brute_matching g)

let prop_tutte_berge =
  QCheck.Test.make ~name:"tutte-berge formula" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 1 9))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.35 in
      let u = Matching.tutte_berge_witness g in
      let d = Matching.tutte_berge_deficiency g u in
      2 * Matching.nu g = n - d)

(* ------------------------------------------------------------------ *)
(* Flow                                                               *)
(* ------------------------------------------------------------------ *)

let test_flow_known () =
  let f = Flow.create 4 in
  Flow.add_edge f 0 1 ~cap:3;
  Flow.add_edge f 0 2 ~cap:2;
  Flow.add_edge f 1 2 ~cap:5;
  Flow.add_edge f 1 3 ~cap:2;
  Flow.add_edge f 2 3 ~cap:3;
  check_int "max flow" 5 (Flow.max_flow f ~s:0 ~t:3);
  let side = Flow.min_cut_side f ~s:0 ~t:3 in
  check "s on source side" true side.(0);
  check "t on sink side" false side.(3)

let brute_min_cut g s t =
  let n = Graph.n g in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    if (mask lsr s) land 1 = 1 && (mask lsr t) land 1 = 0 then begin
      let w = ref 0 in
      Graph.iter_edges
        (fun u v wt ->
          if (mask lsr u) land 1 <> (mask lsr v) land 1 then w := !w + wt)
        g;
      best := min !best !w
    end
  done;
  !best

let prop_maxflow_mincut =
  QCheck.Test.make ~name:"max flow equals min cut" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 9))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed n 0.4) in
      let f = Flow.of_graph g in
      Flow.max_flow f ~s:0 ~t:(n - 1) = brute_min_cut g 0 (n - 1))

let prop_flow_conservation =
  QCheck.Test.make ~name:"flow conservation" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 9))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed n 0.4) in
      let f = Flow.of_graph g in
      let value = Flow.max_flow f ~s:0 ~t:(n - 1) in
      let net = Array.make n 0 in
      List.iter
        (fun (u, v, fl) ->
          net.(u) <- net.(u) - fl;
          net.(v) <- net.(v) + fl)
        (Flow.flow_on_edges f);
      net.(0) = -value && net.(n - 1) = value
      && List.for_all (fun v -> net.(v) = 0)
           (List.filter (fun v -> v <> 0 && v <> n - 1) (List.init n Fun.id)))

(* ------------------------------------------------------------------ *)
(* 2-spanner                                                          *)
(* ------------------------------------------------------------------ *)

let test_spanner_known () =
  check_int "triangle spanner" 2 (fst (Spanner.min_weight_2_spanner (Gen.clique 3)));
  check_int "C4 spanner" 4 (fst (Spanner.min_weight_2_spanner (Gen.cycle 4)));
  check_int "star spanner" 5 (fst (Spanner.min_weight_2_spanner (Gen.star 6)));
  (* K4: two adjacent "hub" edges cover everything? no — check exact value
     against brute force below; here just validity *)
  let w, edges = Spanner.min_weight_2_spanner (Gen.clique 4) in
  check "valid spanner" true (Spanner.is_2_spanner (Gen.clique 4) edges);
  check_int "weight consistent" w (List.length edges)

let brute_spanner g =
  let edges = List.map (fun (u, v, _) -> (u, v)) (Graph.edges g) in
  let m = List.length edges in
  let best = ref max_int in
  for mask = 0 to (1 lsl m) - 1 do
    let subset = List.filteri (fun i _ -> (mask lsr i) land 1 = 1) edges in
    if Spanner.is_2_spanner g subset then begin
      let w =
        List.fold_left (fun acc (u, v) -> acc + Graph.edge_weight g u v) 0 subset
      in
      best := min !best w
    end
  done;
  !best

let prop_spanner_vs_brute =
  QCheck.Test.make ~name:"2-spanner matches brute force" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 1 6))
    (fun (seed, n) ->
      let g = Gen.random_weights ~seed ~lo:1 ~hi:5 (Gen.gnp ~seed n 0.5) in
      if Graph.m g > 12 then true
      else fst (Spanner.min_weight_2_spanner g) = brute_spanner g)

(* ------------------------------------------------------------------ *)
(* 2-ECSS                                                             *)
(* ------------------------------------------------------------------ *)

let test_ecss_known () =
  check_int "cycle min 2ecss" 6 (Option.get (Ecss.min_edges (Gen.cycle 6)));
  check "path has none" true (Ecss.min_edges (Gen.path 5) = None);
  check "exists" true (Ecss.exists_with_edges (Gen.clique 4) 4);
  check "not with fewer" false (Ecss.exists_with_edges (Gen.clique 4) 3)

let prop_claim_2_7 =
  QCheck.Test.make ~name:"claim 2.7: n-edge 2-ECSS iff hamiltonian cycle" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 3 7))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.6 in
      Ecss.exists_with_edges g n = (Hamilton.undirected_cycle g <> None))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "solvers"
    [
      ( "mis",
        [
          Alcotest.test_case "known values" `Quick test_mis_known;
          Alcotest.test_case "witnesses" `Quick test_mis_witness;
          Alcotest.test_case "large sparse" `Quick test_mis_large_sparse;
          qt prop_mis_vs_brute;
          qt prop_mwis_vs_brute;
          qt prop_mis_dense;
        ] );
      ( "domset",
        [
          Alcotest.test_case "known values" `Quick test_domset_known;
          Alcotest.test_case "witnesses" `Quick test_domset_witness;
          qt prop_domset_vs_brute;
          qt prop_domset_weighted;
          qt prop_domset_radius2;
          qt prop_domset_radius3;
        ] );
      ( "maxcut",
        [
          Alcotest.test_case "known values" `Quick test_maxcut_known;
          qt prop_maxcut_vs_brute;
          qt prop_maxcut_witness;
          qt prop_local_search_half;
        ] );
      ( "hamilton",
        [
          Alcotest.test_case "known undirected" `Quick test_ham_known;
          Alcotest.test_case "known directed" `Quick test_ham_directed;
          qt prop_ham_path_vs_brute;
          qt prop_ham_witness;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "known values" `Quick test_steiner_known;
          qt prop_steiner_vs_brute;
          qt prop_min_extra_vs_brute;
          qt prop_steiner_cardinality_consistency;
          qt prop_node_steiner_vs_brute;
          qt prop_directed_steiner_symmetric;
        ] );
      ( "bounded",
        [
          qt prop_domset_exists_within;
          qt prop_domset_exists_of_size;
          qt prop_maxcut_exists_of_weight;
          qt prop_directed_steiner_cutoff;
          qt prop_mwis_witness;
          qt prop_ham_directed_witness;
        ] );
      ( "matching",
        [
          Alcotest.test_case "known values" `Quick test_matching_known;
          qt prop_matching_vs_brute;
          qt prop_tutte_berge;
        ] );
      ( "flow",
        [
          Alcotest.test_case "known values" `Quick test_flow_known;
          qt prop_maxflow_mincut;
          qt prop_flow_conservation;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "known values" `Quick test_spanner_known;
          qt prop_spanner_vs_brute;
        ] );
      ( "ecss",
        [
          Alcotest.test_case "known values" `Quick test_ecss_known;
          qt prop_claim_2_7;
        ] );
    ]
