(* Schema regression for the --json bench artifact: run a tiny smoke
   experiment in a temp directory and check the BENCH_<ts>.json it
   writes carries every field the perf-trajectory tooling reads,
   including the cache counters and the incremental entries.  Then
   cross-check it against the `hardness list --json` catalog dump:
   the catalog's ids must be unique with non-empty paper refs, and
   every verify/reduction bench entry must name a registered family. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* every string value of ["key": "..."] occurrences, in order *)
let string_values ~key body =
  let marker = Printf.sprintf "\"%s\": \"" key in
  let ml = String.length marker and bl = String.length body in
  let rec go i acc =
    if i + ml > bl then List.rev acc
    else if String.sub body i ml = marker then begin
      let start = i + ml in
      let stop = String.index_from body start '"' in
      go stop (String.sub body start (stop - start) :: acc)
    end
    else go (i + 1) acc
  in
  go 0 []

let () =
  let exe = Filename.concat (Sys.getcwd ()) Sys.argv.(1) in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_json_%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let cmd =
    Printf.sprintf "cd %s && %s e17 --json --smoke > log.txt 2>&1"
      (Filename.quote dir) (Filename.quote exe)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then failwith (Printf.sprintf "bench exited with %d" rc);
  let json_files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
  in
  let file =
    match json_files with
    | [ f ] -> Filename.concat dir f
    | l -> failwith (Printf.sprintf "expected 1 BENCH_*.json, found %d" (List.length l))
  in
  let ic = open_in file in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let required =
    [
      "\"timestamp\":";
      "\"jobs\":";
      "\"experiments\":";
      "\"name\": \"e17\"";
      "\"wall_s\":";
      "\"verify\":";
      "\"family\": \"mds-k2-exhaustive\"";
      "\"family\": \"mds-k2-exhaustive-inc\"";
      "\"family\": \"steiner-k2-exhaustive-inc\"";
      "\"family\": \"maxcut-k2-exhaustive-inc\"";
      "\"family\": \"hampath-k2-exhaustive-inc\"";
      "\"pairs\":";
      "\"pairs_per_s\":";
      "\"wall_s_jobs1\":";
      "\"speedup_vs_jobs1\":";
      "\"cache_hits\":";
      "\"cache_misses\":";
      "\"speedup_vs_scratch\":";
      "\"differential_ok\": true";
      (* first-class search-effort totals, folded from the obs counters *)
      "\"solver_nodes\":";
      "\"solver_pruned\":";
      "\"reduction\":";
      "\"family\": \"mds-k2-reduction\"";
      "\"family\": \"maxis-k2-reduction\"";
      "\"family\": \"maxcut-k2-reduction\"";
      (* the directed and multiparty reduction entries *)
      "\"family\": \"hampath-k2-reduction\"";
      "\"family\": \"bitgadget-k4-reduction\"";
      "\"parties\": 2";
      "\"parties\": 4";
      "\"pairs_skipped\":";
      "\"bits_per_round\":";
      "\"cc_bits\":";
      "\"lb_rounds\":";
      "\"transcript_differential_ok\": true";
      "\"decisions_ok\": true";
      "\"within_budget\": true";
      (* the sharded sweep-engine section *)
      "\"sweep\":";
      "\"family\": \"mds-k2-sweep-x4\"";
      "\"family\": \"mds-k2-sweep-resume4\"";
      "\"shards_completed\":";
      "\"shards_resumed\":";
      "\"shards_recomputed\":";
      "\"artifacts_corrupt\":";
      "\"name\": \"sweep.shards.completed\"";
      (* the serve-daemon section: cold vs warm over a localhost socket *)
      "\"serve\":";
      "\"name\": \"serve-nwsteiner-k2-x\"";
      "\"cold_s\":";
      "\"warm_s\":";
      "\"warm_speedup\":";
      "\"warm_hit\": true";
      "\"digest_ok\": true";
      "\"name\": \"serve.requests\"";
      (* the telemetry section: one report per bench entry, enabled by
         default under --json *)
      "\"obs\":";
      "\"enabled\": true";
      "\"counters\":";
      "\"spans\":";
      "\"histograms\":";
      "\"name\": \"cache.domset.queries\"";
      "\"name\": \"solver.domset.nodes\"";
      "\"name\": \"reduction.rounds\"";
      "\"name\": \"congest.bits\"";
      "\"name\": \"core_build\"";
      "\"total_ns\":";
    ]
  in
  List.iter
    (fun needle ->
      if not (contains ~needle body) then
        failwith (Printf.sprintf "missing %s in %s:\n%s" needle file body))
    required;
  if contains ~needle:"\"differential_ok\": false" body then
    failwith "differential mismatch reported in bench JSON";
  if contains ~needle:"\"transcript_differential_ok\": false" body then
    failwith "reduction transcript mismatch reported in bench JSON";
  (* the registry catalog round-trip: `hardness list --json` *)
  let hardness = Filename.concat (Sys.getcwd ()) Sys.argv.(2) in
  let cat_cmd =
    Printf.sprintf "cd %s && %s list --json > catalog.json 2>> log.txt"
      (Filename.quote dir) (Filename.quote hardness)
  in
  let rc = Sys.command cat_cmd in
  if rc <> 0 then failwith (Printf.sprintf "hardness list --json exited with %d" rc);
  let ic = open_in (Filename.concat dir "catalog.json") in
  let cat = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if not (contains ~needle:"\"families\":" cat) then
    failwith "catalog missing \"families\"";
  let ids = string_values ~key:"id" cat in
  if ids = [] then failwith "catalog lists no families";
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    failwith "catalog ids are not unique";
  let refs = string_values ~key:"paper_ref" cat in
  if List.length refs <> List.length ids then
    failwith "catalog: paper_ref count differs from id count";
  List.iter (fun r -> if r = "" then failwith "catalog: empty paper_ref") refs;
  (* every bench verify/reduction entry names a registered family: the
     entry names are "<id>-k<k>-exhaustive[-inc]" / "<id>-k<k>-reduction" *)
  let family_of_entry name =
    let rec strip i =
      if i < 0 then name
      else if
        i + 2 <= String.length name
        && String.sub name i 2 = "-k"
        && i + 2 < String.length name
        && name.[i + 2] >= '0'
        && name.[i + 2] <= '9'
      then String.sub name 0 i
      else strip (i - 1)
    in
    strip (String.length name - 2)
  in
  let is_serve_entry name =
    String.length name > 6 && String.sub name 0 6 = "serve-"
  in
  List.iter
    (fun entry ->
      if
        entry <> ""
        && (not (is_serve_entry entry))
        && not (List.mem (family_of_entry entry) ids)
      then
        failwith
          (Printf.sprintf "bench entry %S names unregistered family %S" entry
             (family_of_entry entry)))
    (string_values ~key:"family" body);
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  print_endline "bench json schema ok"
