(* Schema regression for the --json bench artifact: run a tiny smoke
   experiment in a temp directory and check the BENCH_<ts>.json it
   writes carries every field the perf-trajectory tooling reads,
   including the cache counters and the incremental entries. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let exe = Filename.concat (Sys.getcwd ()) Sys.argv.(1) in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_json_%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let cmd =
    Printf.sprintf "cd %s && %s e17 --json --smoke > log.txt 2>&1"
      (Filename.quote dir) (Filename.quote exe)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then failwith (Printf.sprintf "bench exited with %d" rc);
  let json_files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
  in
  let file =
    match json_files with
    | [ f ] -> Filename.concat dir f
    | l -> failwith (Printf.sprintf "expected 1 BENCH_*.json, found %d" (List.length l))
  in
  let ic = open_in file in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let required =
    [
      "\"timestamp\":";
      "\"jobs\":";
      "\"experiments\":";
      "\"name\": \"e17\"";
      "\"wall_s\":";
      "\"verify\":";
      "\"family\": \"mds-k2-exhaustive\"";
      "\"family\": \"mds-k2-exhaustive-inc\"";
      "\"family\": \"steiner-k2-exhaustive-inc\"";
      "\"family\": \"maxcut-k2-exhaustive-inc\"";
      "\"family\": \"hampath-k2-exhaustive-inc\"";
      "\"pairs\":";
      "\"pairs_per_s\":";
      "\"wall_s_jobs1\":";
      "\"speedup_vs_jobs1\":";
      "\"cache_hits\":";
      "\"cache_misses\":";
      "\"speedup_vs_scratch\":";
      "\"differential_ok\": true";
      "\"reduction\":";
      "\"family\": \"mds-k2-reduction\"";
      "\"family\": \"maxis-k2-reduction\"";
      "\"family\": \"maxcut-k2-reduction\"";
      "\"pairs_skipped\":";
      "\"bits_per_round\":";
      "\"cc_bits\":";
      "\"lb_rounds\":";
      "\"transcript_differential_ok\": true";
      "\"decisions_ok\": true";
      "\"within_budget\": true";
    ]
  in
  List.iter
    (fun needle ->
      if not (contains ~needle body) then
        failwith (Printf.sprintf "missing %s in %s:\n%s" needle file body))
    required;
  if contains ~needle:"\"differential_ok\": false" body then
    failwith "differential mismatch reported in bench JSON";
  if contains ~needle:"\"transcript_differential_ok\": false" body then
    failwith "reduction transcript mismatch reported in bench JSON";
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  print_endline "bench json schema ok"
