(* The experiment harness: one table per experiment of DESIGN.md
   (E1..E18), reproducing the *shape* of every lower/upper bound in the
   paper, plus Bechamel micro-benchmarks of the machinery.

     dune exec bench/main.exe                 -- all report tables
     dune exec bench/main.exe -- e1 e7        -- selected tables
     dune exec bench/main.exe -- bech         -- Bechamel timings
     dune exec bench/main.exe -- e1 --json    -- also write BENCH_<ts>.json
     dune exec bench/main.exe -- e1 --json --smoke
                                              -- CI-sized verify benches

   Sweeps fan out over the CH_JOBS-sized domain pool (Ch_core.Pool);
   --json records per-experiment wall time plus a verification
   throughput benchmark (pairs/sec, speedup vs a 1-worker pool, cache
   hit/miss counters, incremental-vs-scratch speedup and per-pair
   differential) to BENCH_<timestamp>.json so the perf trajectory is
   tracked per PR.  --smoke drops the slow from-scratch Steiner/Maxcut
   sweeps from the verify benches.  --json also switches on the Ch_obs
   telemetry layer and embeds one report per bench entry in an "obs"
   section (schedule-independent counters, so identical across CH_JOBS);
   --no-obs keeps telemetry off to measure the disabled-path overhead. *)

open Ch_cc
open Ch_core
open Ch_lbgraphs

(* Families are resolved through the one registry; the two aliases reach
   construction internals (witness paths, target weights) that sit
   outside the spec record. *)
module H = Hampath_lb
module MC = Maxcut_lb

let reg () = Families.catalog ()

let spec id = Registry.find_exn (reg ()) id

let fam_of ?k id =
  let s = spec id in
  s.Registry.scratch (match k with Some k -> k | None -> s.Registry.default_k)

let reduction_of id ~k =
  match (spec id).Registry.reduction with
  | Some rd -> rd k
  | None -> invalid_arg (Printf.sprintf "bench: %s has no reduction" id)

let log2 x = log (float_of_int x) /. log 2.0

let pmap f xs = Pool.parallel_map (Pool.default ()) f xs

module Obs = Ch_obs.Obs

(* Monotonic clock: bench walls are immune to wall-clock adjustments. *)
let timed f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  (r, Obs.Clock.seconds_since t0)

(* Per-entry telemetry capture: when obs is enabled (--json without
   --no-obs) every bench entry resets the counters before its runs and
   snapshots the merged report after, so the JSON "obs" section carries
   one report per entry.  Counter totals are schedule-independent, so
   the section is identical under CH_JOBS=1 and CH_JOBS=4 — CI greps
   the counter lines of two runs and diffs them. *)
let obs_fresh () = if Obs.enabled () then Obs.reset ()

let obs_snap () = if Obs.enabled () then Some (Obs.report ()) else None

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let family_row fam ~verified =
  let cut = Framework.cut_size fam in
  let n = fam.Framework.nvertices in
  let k_val = try List.assoc "k" fam.Framework.params with Not_found -> 0 in
  let lb =
    Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits ~cut ~n
  in
  (k_val, n, fam.Framework.input_bits, cut, lb, verified)

let print_sweep ~rate_label ~rate rows =
  Printf.printf "  %6s %8s %9s %6s %14s %12s  %s\n" "k" "n" "K" "cut"
    "LB (rounds)" rate_label "verified";
  List.iter
    (fun (k, n, bits, cut, lb, verified) ->
      Printf.printf "  %6d %8d %9d %6d %14.1f %12.4f  %s\n" k n bits cut lb
        (rate ~n ~lb) verified)
    rows

let quick_verify ?(samples = 8) fam =
  let failures, total = Framework.verify_random ~seed:77 ~samples fam in
  Printf.sprintf "%d/%d ok" (total - failures) total

(* ------------------------------------------------------------------ *)
(* E1: exact MDS, Ω̃(n²)                                               *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 | Theorem 2.1 (Fig 1): exact MDS needs Ω(n²/log² n) rounds";
  let rows =
    pmap
      (fun k ->
        let fam = fam_of "mds" ~k in
        let verified = if k <= 4 then quick_verify fam else "-" in
        family_row fam ~verified)
      [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  print_sweep rows
    ~rate_label:"LB·log²n/n²"
    ~rate:(fun ~n ~lb ->
      let nf = float_of_int n in
      lb *. log2 n *. log2 n /. (nf *. nf));
  Printf.printf
    "  shape: the normalized rate settles to a constant, i.e. LB = Θ(n²/log² n).\n"

(* ------------------------------------------------------------------ *)
(* E2-E4: Hamiltonian constructions and 2-ECSS                         *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2 | Theorem 2.2 (Fig 2): directed Hamiltonian path, Ω(n²/log⁴ n)";
  let rows =
    pmap
      (fun k ->
        let fam = fam_of "hampath" ~k in
        let verified =
          if k = 2 then quick_verify fam
          else begin
            (* completeness at scale, via the Claim 2.1 witness path *)
            let kk = k * k in
            let x = Bits.of_fun kk (fun b -> b = k + 1) in
            let dg = H.build ~k x x in
            let p = H.witness_path ~k x x ~i:1 ~j:1 in
            if Ch_solvers.Hamilton.is_directed_path dg p then "witness ok"
            else "WITNESS FAIL"
          end
        in
        family_row fam ~verified)
      [ 2; 4; 8; 16; 32; 64 ]
  in
  print_sweep rows
    ~rate_label:"LB·log⁴n/n²"
    ~rate:(fun ~n ~lb ->
      let nf = float_of_int n and l = log2 n in
      lb *. l *. l *. l *. l /. (nf *. nf))

let e3 () =
  header "E3 | Theorems 2.3/2.4: Hamiltonian cycle and the undirected variants";
  Printf.printf "  %-38s %8s %6s  %s\n" "family" "n" "cut" "verified (k=2)";
  List.iter
    (fun fam ->
      Printf.printf "  %-38s %8d %6d  %s\n" fam.Framework.name
        fam.Framework.nvertices (Framework.cut_size fam)
        (quick_verify ~samples:6 fam))
    [
      fam_of "hamcycle" ~k:2;
      fam_of "hamcycle-undirected" ~k:2;
      fam_of "hampath-undirected" ~k:2;
    ];
  Printf.printf
    "  simulation overheads (Lemmas 2.2/2.3): ×%d and ×%d rounds per round.\n"
    Ch_congest.Transform.directed_to_undirected_overhead
    Ch_congest.Transform.hc_to_hp_overhead

let e4 () =
  header "E4 | Theorem 2.5: minimum 2-ECSS (via Claim 2.7)";
  let fam = fam_of "2ecss" ~k:2 in
  Printf.printf "  n = %d, cut = %d, verified: %s\n" fam.Framework.nvertices
    (Framework.cut_size fam)
    (quick_verify ~samples:6 fam);
  Printf.printf
    "  Claim 2.7 (n-edge 2-ECSS ⟺ Hamiltonian cycle) is property-tested in\n\
    \  test_solvers on random graphs.\n"

(* ------------------------------------------------------------------ *)
(* E5: Steiner tree                                                    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5 | Theorem 2.7: exact Steiner tree, Ω(n²/log² n) (reduction from E1)";
  let rows =
    pmap
      (fun k ->
        let fam = fam_of "steiner" ~k in
        let verified = if k = 2 then quick_verify ~samples:6 fam else "-" in
        family_row fam ~verified)
      [ 2; 4; 8; 16; 32; 64 ]
  in
  print_sweep rows
    ~rate_label:"LB·log²n/n²"
    ~rate:(fun ~n ~lb ->
      let nf = float_of_int n in
      lb *. log2 n *. log2 n /. (nf *. nf))

(* ------------------------------------------------------------------ *)
(* E6: weighted max cut                                                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6 | Theorem 2.8 (Fig 3): exact weighted max cut, Ω(n²/log² n)";
  let rows =
    pmap
      (fun k ->
        let fam = fam_of "maxcut" ~k in
        let verified = if k = 2 then quick_verify ~samples:6 fam else "-" in
        family_row fam ~verified)
      [ 2; 4; 8; 16; 32; 64; 128 ]
  in
  print_sweep rows
    ~rate_label:"LB·log²n/n²"
    ~rate:(fun ~n ~lb ->
      let nf = float_of_int n in
      lb *. log2 n *. log2 n /. (nf *. nf));
  Printf.printf "  target cut weights M: ";
  List.iter
    (fun k -> Printf.printf "k=%d → %d  " k (MC.target_weight ~k))
    [ 2; 4; 8 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E7: Theorem 2.9 upper bound                                         *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7 | Theorem 2.9: (1−ε)-approx max cut in Õ(n) CONGEST rounds";
  Printf.printf "  %4s %6s %8s %10s %10s %8s %9s\n" "n" "m" "p" "sampled" "estimate"
    "exact" "rounds";
  List.iter
    (fun n ->
      let g = Ch_graph.Gen.random_connected ~seed:n n 0.4 in
      let exact = fst (Ch_solvers.Maxcut.max_cut g) in
      let r = Ch_congest.Maxcut_sample.run ~seed:5 g in
      Printf.printf "  %4d %6d %8.2f %10d %10d %8d %9d\n" n (Ch_graph.Graph.m g)
        (Ch_congest.Maxcut_sample.sample_probability g)
        r.Ch_congest.Maxcut_sample.sampled_edges r.Ch_congest.Maxcut_sample.estimate
        exact r.Ch_congest.Maxcut_sample.stats.Ch_congest.Network.rounds)
    [ 12; 16; 20; 24; 28 ];
  Printf.printf
    "  rounds grow with n + m·p = Õ(n); the estimate tracks the optimum.\n"

(* ------------------------------------------------------------------ *)
(* E8: bounded-degree lower bounds                                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 | Theorems 3.1-3.3: Ω̃(n) in max-degree-5, log-diameter graphs";
  Printf.printf "  %4s %8s %8s %8s %6s %6s %16s\n" "k" "K" "n(G')" "maxdeg" "diam"
    "cut" "LB = K/(cut·log n)";
  List.iter
    (fun k ->
      let x = Bits.ones (k * k) and y = Bits.zeros (k * k) in
      let inst = Bounded_degree.build ~k x y in
      let g = inst.Bounded_degree.graph in
      let n = Ch_graph.Graph.n g in
      let cut = Bounded_degree.cut_size inst in
      let lb = float_of_int (k * k) /. (float_of_int cut *. log2 n) in
      Printf.printf "  %4d %8d %8d %8d %6d %6d %16.2f\n" k (k * k) n
        (Ch_graph.Graph.max_degree g)
        (Ch_graph.Props.diameter g)
        cut lb)
    [ 2; 4 ];
  Printf.printf
    "  n(G') = Θ(k²) = Θ(K) with an O(log k) cut: LB = Ω̃(n), near the O(n)\n\
    \  learn-everything upper bound for bounded-degree graphs.\n";
  Printf.printf "\n  Theorem 3.4 variant (hub reduction, general graphs):\n";
  Printf.printf "  %4s %8s %6s %18s\n" "k" "n" "cut" "LB = K/(cut·log n)";
  List.iter
    (fun k ->
      let fam = Spanner_lb.family ~k in
      let n = fam.Framework.nvertices in
      let cut = Framework.cut_size fam in
      Printf.printf "  %4d %8d %6d %18.2f\n" k n cut
        (float_of_int fam.Framework.input_bits /. (float_of_int cut *. log2 n)))
    [ 2; 4; 8; 16; 32 ];
  Printf.printf
    "  the hub inflates the cut to Θ(n), so the certified rate is Ω̃(n) —\n\
    \  the [9] degree-preserving gadget would keep it on bounded degrees.\n"

(* ------------------------------------------------------------------ *)
(* E9/E10: approximate MaxIS                                           *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 | Theorems 4.1/4.3 (Fig 4): (7/8+ε)-approx MaxIS is hard";
  Printf.printf "  %4s %4s %4s %4s %8s %8s %10s %10s %10s\n" "k" "ell" "t" "q" "n(wtd)"
    "cut" "yes" "no" "gap ratio";
  List.iter
    (fun (k, ell) ->
      let p = Maxis_approx_lb.make_params ~ell ~k () in
      let fam = Maxis_approx_lb.weighted_family p in
      let yes = Maxis_approx_lb.yes_weight p and no = Maxis_approx_lb.no_weight p in
      Printf.printf "  %4d %4d %4d %4d %8d %8d %10d %10d %10.4f\n" k
        p.Maxis_approx_lb.ell p.Maxis_approx_lb.t p.Maxis_approx_lb.q
        fam.Framework.nvertices (Framework.cut_size fam) yes no
        (float_of_int no /. float_of_int yes))
    [ (2, 2); (4, 4); (8, 9); (16, 16); (32, 25); (64, 36) ];
  Printf.printf "  gap ratio (7ℓ+4t)/(8ℓ+4t) → 7/8 as ℓ/t grows: a (7/8+ε)-\n";
  Printf.printf "  approximation distinguishes the cases, so it needs Ω̃(K/cut) rounds.\n"

let e10 () =
  header "E10 | Theorem 4.2: (5/6+ε)-approx MaxIS needs Ω̃(n) rounds";
  Printf.printf "  %4s %4s %8s %8s %8s %10s\n" "k" "ell" "K" "n" "cut" "gap ratio";
  List.iter
    (fun (k, ell) ->
      let p = Maxis_approx_lb.make_params ~ell ~k () in
      let fam = Maxis_approx_lb.linear_family p in
      let yes = Maxis_approx_lb.linear_yes_size p in
      let no = yes - p.Maxis_approx_lb.ell in
      Printf.printf "  %4d %4d %8d %8d %8d %10.4f\n" k p.Maxis_approx_lb.ell
        fam.Framework.input_bits fam.Framework.nvertices (Framework.cut_size fam)
        (float_of_int no /. float_of_int yes))
    [ (2, 2); (4, 4); (8, 9); (16, 16); (32, 25) ];
  Printf.printf "  K = k is linear in n/ℓ: the bound is Ω̃(n), gap → 5/6.\n"

(* ------------------------------------------------------------------ *)
(* E11/E12: k-MDS                                                      *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11 | Theorem 4.4 (Fig 5): no O(log n)-approx for weighted 2-MDS";
  Printf.printf "  %4s %4s %3s %8s %6s %12s %14s\n" "ell" "T" "r" "n" "cut" "yes/no gap"
    "verified";
  List.iter
    (fun (ell, t_count) ->
      let p = Kmds_lb.make_params ~seed:1 ~k:2 ~ell ~t_count ~r:2 () in
      let fam = Kmds_lb.family p in
      let verified = if t_count <= 8 then quick_verify ~samples:8 fam else "-" in
      Printf.printf "  %4d %4d %3d %8d %6d %6d vs >%d %17s\n" ell t_count 2
        fam.Framework.nvertices (Framework.cut_size fam) Kmds_lb.yes_weight
        (Kmds_lb.no_weight_exceeds p) verified)
    [ (6, 6); (8, 10); (10, 20); (12, 40); (14, 80) ];
  Printf.printf
    "  T grows exponentially in ℓ (Lemma 4.2): n = Θ(T), cut = Θ(ℓ) = Θ(polylog n),\n\
    \  and the gap factor r/2 = Θ(log ℓ) = Θ(log log n) at these collection sizes.\n"

let e12 () =
  header "E12 | Theorem 4.5: k-MDS for k > 2";
  Printf.printf "  %3s %4s %4s %8s %6s %10s\n" "k" "ell" "T" "n" "cut" "verified";
  List.iter
    (fun k ->
      let p = Kmds_lb.make_params ~seed:1 ~k ~ell:6 ~t_count:6 ~r:2 () in
      let fam = Kmds_lb.family p in
      Printf.printf "  %3d %4d %4d %8d %6d %10s\n" k 6 6 fam.Framework.nvertices
        (Framework.cut_size fam)
        (quick_verify ~samples:6 fam))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E13: Steiner tree variants                                          *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13 | Theorems 4.6/4.7 (Fig 6): node-weighted / directed Steiner tree";
  let p = Steiner_approx_lb.make_params ~seed:1 ~ell:6 ~t_count:5 ~r:2 () in
  List.iter
    (fun fam ->
      Printf.printf "  %-44s n=%4d cut=%3d verified %s\n" fam.Framework.name
        fam.Framework.nvertices (Framework.cut_size fam)
        (quick_verify ~samples:6 fam))
    [ Steiner_approx_lb.node_weighted_family p; Steiner_approx_lb.directed_family p ];
  let gap_checks f =
    List.for_all Fun.id
      (List.init 10 (fun i ->
           f p (Bits.random ~seed:(900 + i) 5) (Bits.random ~seed:(990 + i) 5)))
  in
  Printf.printf "  gap (cost 2 vs > r) holds on random inputs: node-weighted %b, directed %b\n"
    (gap_checks Steiner_approx_lb.node_weighted_gap_holds)
    (gap_checks Steiner_approx_lb.directed_gap_holds)

(* ------------------------------------------------------------------ *)
(* E14: restricted MDS + local-aggregate simulation                    *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14 | Theorem 4.8 (Fig 7): restricted (local-aggregate) MDS hardness";
  let p = Mds_restricted_lb.make_params ~seed:1 ~ell:6 ~t_count:6 ~r:2 () in
  let fam = Mds_restricted_lb.family p in
  Printf.printf "  family: n=%d, verified %s\n" fam.Framework.nvertices
    (quick_verify ~samples:10 fam);
  let x = Bits.random ~seed:3 6 and y = Bits.random ~seed:4 6 in
  let g = Mds_restricted_lb.build p x y in
  let owner v =
    match Mds_restricted_lb.owner p v with
    | `Alice -> Ch_limits.Aggregate.Alice
    | `Bob -> Ch_limits.Aggregate.Bob
    | `Shared -> Ch_limits.Aggregate.Shared
  in
  Printf.printf "  local-aggregate simulation bits (shared vertices = ℓ = 6):\n";
  Printf.printf "  %8s %12s %18s\n" "rounds" "bits" "bound 2ℓ·t·⌈log⌉";
  List.iter
    (fun rounds ->
      let sim =
        Ch_limits.Aggregate.simulate_two_party g ~owner
          (Ch_limits.Aggregate.flood_max ~rounds)
      in
      Printf.printf "  %8d %12d %18d\n" rounds sim.Ch_limits.Aggregate.bits
        (2 * 6 * rounds * 10))
    [ 1; 2; 4; 8 ];
  Printf.printf
    "  the cost is Θ(ℓ·log n) per round — exactly the Theorem 4.8 simulation charge.\n"

(* ------------------------------------------------------------------ *)
(* E15: limitation protocols                                           *)
(* ------------------------------------------------------------------ *)

let e15 () =
  header "E15 | Claims 5.1-5.9: cheap two-party approximations (framework limits)";
  let open Ch_limits in
  let mk seed =
    let g =
      Ch_graph.Gen.random_weights ~seed (Ch_graph.Gen.random_connected ~seed 14 0.3)
    in
    for v = 0 to 13 do
      Ch_graph.Graph.set_vweight g v (1 + (v mod 5))
    done;
    Split.make g ~side:(Array.init 14 (fun v -> v < 7))
  in
  let split = mk 3 in
  let g = split.Split.graph in
  let cut = Split.cut_size split in
  Printf.printf "  instance: n=14 m=%d cut=%d\n" (Ch_graph.Graph.m g) cut;
  Printf.printf "  %-28s %10s %8s\n" "protocol" "value" "bits";
  let row name value bits = Printf.printf "  %-28s %10s %8d\n" name value bits in
  let r = Approx_protocols.mvc_bounded_degree ~eps:0.5 split in
  row "MVC (1+eps), Claim 5.1" (string_of_int (List.length r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.mds_bounded_degree ~eps:0.9 split in
  row "MDS (1+eps), Claim 5.2" (string_of_int (List.length r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.maxis_bounded_degree ~eps:0.9 split in
  row "MaxIS (1-eps), Claim 5.3" (string_of_int (List.length r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.maxcut_unweighted ~eps:0.8 split in
  row "max-cut (1-eps), Claim 5.4" (string_of_int (fst r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.maxcut_weighted_two_thirds split in
  row "max-cut 2/3, Claim 5.5" (string_of_int (fst r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.mvc_three_halves split in
  row "MVC 3/2, Claim 5.6" (string_of_int r.Approx_protocols.value) r.Approx_protocols.bits;
  let r = Approx_protocols.mds_two_approx split in
  row "MDS 2x, Claim 5.8" (string_of_int (List.length r.Approx_protocols.value)) r.Approx_protocols.bits;
  let r = Approx_protocols.maxis_half split in
  row "MaxIS 1/2, Claim 5.9" (string_of_int r.Approx_protocols.value) r.Approx_protocols.bits;
  Printf.printf
    "  each is O(|E_cut|·log n / ε) bits, so by Corollary 5.1 no family of lower\n\
    \  bound graphs can push past these ratios with Theorem 1.1.\n"

(* ------------------------------------------------------------------ *)
(* E16: nondeterministic flow protocols                                *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header "E16 | Claim 5.11: nondeterministic max-flow certificates";
  let open Ch_limits in
  Printf.printf "  %6s %8s %8s %12s %12s\n" "seed" "flow" "cut" "bits(≥k)" "bits(<k)";
  List.iter
    (fun seed ->
      let g =
        Ch_graph.Gen.random_weights ~seed (Ch_graph.Gen.random_connected ~seed 12 0.3)
      in
      let split = Split.make g ~side:(Array.init 12 (fun v -> v < 6)) in
      let network = Ch_solvers.Flow.of_graph g in
      let value = Ch_solvers.Flow.max_flow network ~s:0 ~t:11 in
      let ge = Nondet.flow_ge split ~s:0 ~t:11 ~k:value in
      let lt = Nondet.flow_lt split ~s:0 ~t:11 ~k:(value + 1) in
      assert (ge.Nondet.accepted && lt.Nondet.accepted);
      Printf.printf "  %6d %8d %8d %12d %12d\n" seed value (Split.cut_size split)
        ge.Nondet.bits lt.Nondet.bits)
    [ 1; 2; 3; 4 ];
  Printf.printf
    "  CC_N(flow ≥ k) and CC_N(flow < k) are both O(|E_cut|·log W): by Claim 5.10\n\
    \  the fixed-cut framework cannot give super-constant max-flow bounds.\n"

(* ------------------------------------------------------------------ *)
(* E17: proof labeling schemes                                         *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header "E17 | Theorem 5.1 / Lemma 5.1: PLS label widths";
  let open Ch_pls in
  let g = Ch_graph.Gen.random_connected ~seed:8 24 0.2 in
  let parent = Ch_graph.Props.bfs_tree g 0 in
  let tree =
    List.filter_map
      (fun v ->
        if parent.(v) >= 0 then Some (min v parent.(v), max v parent.(v)) else None)
      (List.init 24 Fun.id)
  in
  let instances =
    [
      ("H = spanning tree", Verif.make ~s:0 ~t:23 ~e:(List.hd tree) g ~h:tree);
      ( "H = all edges",
        Verif.make ~s:0 ~t:23 ~e:(List.hd tree) g
          ~h:(List.map (fun (u, v, _) -> (u, v)) (Ch_graph.Graph.edges g)) );
      ("H = empty", Verif.make ~s:0 ~t:23 ~e:(List.hd tree) g ~h:[]);
    ]
  in
  Printf.printf "  n = 24, ⌈log₂ n⌉ = 5\n";
  Printf.printf "  %-24s %-20s %12s\n" "scheme" "true on" "label bits";
  List.iter
    (fun (name, scheme) ->
      let hits =
        List.filter_map
          (fun (iname, inst) ->
            if scheme.Pls.predicate inst then
              match scheme.Pls.prover inst with
              | Some labeling -> Some (iname, Pls.max_label_bits labeling)
              | None -> None
            else None)
          instances
      in
      match hits with
      | [] -> ()
      | (iname, bits) :: _ -> Printf.printf "  %-24s %-20s %12d\n" name iname bits)
    Schemes.all_named;
  Printf.printf
    "  all O(log n): Theorem 5.1 turns each into an O(|E_cut|·log n)-bit\n\
    \  nondeterministic protocol, capping Theorem 1.1 for these predicates.\n"

(* ------------------------------------------------------------------ *)
(* E18: Theorem 1.1 end to end                                         *)
(* ------------------------------------------------------------------ *)

let e18 () =
  header "E18 | Theorem 1.1 end-to-end: Alice/Bob solve DISJ by simulating CONGEST";
  Printf.printf "  %4s %6s %6s %9s %12s %14s\n" "k" "n" "cut" "rounds" "cut bits"
    "decisions ok";
  List.iter
    (fun k ->
      let fam = fam_of "mds" ~k in
      let rd = reduction_of "mds" ~k in
      let pairs =
        List.init 6 (fun i ->
            ( Bits.random ~seed:(70 + i) ~density:0.7 (k * k),
              Bits.random ~seed:(80 + i) ~density:0.7 (k * k) ))
      in
      let sims =
        List.map
          (fun (x, y) ->
            Framework.simulate_reduction ?partition:rd.Registry.rd_partition
              fam ~solver:rd.Registry.rd_solver ~accept:rd.Registry.rd_accept x
              y)
          pairs
      in
      let ok = List.for_all (fun s -> s.Framework.decision_correct) sims in
      let avg f =
        List.fold_left (fun acc s -> acc + f s) 0 sims / List.length sims
      in
      Printf.printf "  %4d %6d %6d %9d %12d %14b\n" k fam.Framework.nvertices
        (Framework.cut_size fam)
        (avg (fun s -> s.Framework.rounds))
        (avg (fun s -> s.Framework.cut_bits))
        ok)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment's core operation      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let x64 = Bits.random ~seed:1 (64 * 64) and y64 = Bits.random ~seed:2 (64 * 64) in
  let x16 = Bits.random ~seed:1 256 and y16 = Bits.random ~seed:2 256 in
  let x2 = Bits.random ~seed:1 4 and y2 = Bits.random ~seed:2 4 in
  let g20 = Ch_graph.Gen.random_connected ~seed:4 20 0.3 in
  let approx = Maxis_approx_lb.make_params ~ell:2 ~k:2 () in
  let kparams = Kmds_lb.make_params ~seed:1 ~k:2 ~ell:6 ~t_count:6 ~r:2 () in
  let kgraph = Kmds_lb.build kparams (Bits.random ~seed:3 6) (Bits.random ~seed:4 6) in
  let wgraph = Maxis_approx_lb.build_weighted approx x2 y2 in
  let undirected inst =
    match inst with Framework.Undirected g -> g | _ -> assert false
  in
  let mds2 = undirected ((fam_of "mds" ~k:2).Framework.build x2 y2) in
  let mds_rd = reduction_of "mds" ~k:2 in
  let pls_g = Ch_graph.Gen.random_connected ~seed:8 16 0.25 in
  let pls_parent = Ch_graph.Props.bfs_tree pls_g 0 in
  let pls_tree =
    List.filter_map
      (fun v ->
        if pls_parent.(v) >= 0 then Some (min v pls_parent.(v), max v pls_parent.(v))
        else None)
      (List.init 16 Fun.id)
  in
  let pls_inst = Ch_pls.Verif.make pls_g ~h:pls_tree in
  let split =
    Ch_limits.Split.make g20 ~side:(Array.init 20 (fun v -> v < 10))
  in
  [
    Test.make ~name:"e1-build-mds-k64"
      (Staged.stage (fun () -> (fam_of "mds" ~k:64).Framework.build x64 y64));
    Test.make ~name:"e2-hampath-build+witness-k16"
      (Staged.stage (fun () ->
           let dg = H.build ~k:16 x16 y16 in
           ignore dg;
           H.witness_path ~k:16 (Bits.ones 256) (Bits.ones 256) ~i:3 ~j:5));
    Test.make ~name:"e5-steiner-transform-k8"
      (Staged.stage (fun () ->
           (fam_of "steiner" ~k:8).Framework.build (Bits.random ~seed:9 64)
             (Bits.random ~seed:10 64)));
    Test.make ~name:"e6-maxcut-build-k16"
      (Staged.stage (fun () -> (fam_of "maxcut" ~k:16).Framework.build x16 y16));
    Test.make ~name:"e7-maxcut-sample-n20"
      (Staged.stage (fun () -> Ch_congest.Maxcut_sample.run ~seed:3 g20));
    Test.make ~name:"e8-bounded-degree-build-k2"
      (Staged.stage (fun () -> Bounded_degree.build ~k:2 x2 y2));
    Test.make ~name:"e9-mwis-code-gadget"
      (Staged.stage (fun () -> Ch_solvers.Mis.max_weight_set wgraph));
    Test.make ~name:"e11-2mds-solve"
      (Staged.stage (fun () -> Ch_solvers.Domset.min_weight_set ~radius:2 kgraph));
    Test.make ~name:"e1-solver-mds-k2-gadget"
      (Staged.stage (fun () -> Ch_solvers.Domset.min_size mds2));
    Test.make ~name:"e15-mds-2approx-protocol"
      (Staged.stage (fun () -> Ch_limits.Approx_protocols.mds_two_approx split));
    Test.make ~name:"e17-pls-spanning-tree"
      (Staged.stage (fun () ->
           match Ch_pls.Schemes.spanning_tree.Ch_pls.Pls.prover pls_inst with
           | Some labeling ->
               Ch_pls.Pls.accepts Ch_pls.Schemes.spanning_tree pls_inst labeling
           | None -> false));
    Test.make ~name:"ablation-covering-anchored"
      (Staged.stage (fun () -> Covering.construct ~seed:3 ~ell:12 ~t_count:40 ~r:2 ()));
    Test.make ~name:"ablation-covering-randomized"
      (* t_count above the anchored capacity forces the randomized search *)
      (Staged.stage (fun () -> Covering.construct ~seed:3 ~ell:6 ~t_count:7 ~r:2 ()));
    Test.make ~name:"e18-alice-bob-sim-k2"
      (Staged.stage (fun () ->
           Framework.simulate_reduction (fam_of "mds" ~k:2)
             ~solver:mds_rd.Registry.rd_solver ~accept:mds_rd.Registry.rd_accept
             (Bits.ones 4) y2));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  header "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let tests = Test.make_grouped ~name:"congest-hardness" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-44s %14.0f ns/run\n" name est
      | _ -> Printf.printf "  %-44s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18);
  ]

(* ------------------------------------------------------------------ *)
(* --json: perf trajectory tracking                                    *)
(* ------------------------------------------------------------------ *)

(* Verification throughput: the same workload on the CH_JOBS pool and on
   a 1-worker pool.  Results must be bitwise identical (the determinism
   contract); the ratio of wall times is the parallel speedup.  The
   exhaustive sweep is capped at K ≤ 10 by the framework, so the k=4 MDS
   family (K = 16) is measured through verify_random.

   Exhaustive sweeps run through [Framework.exhaustive_verdicts] (same
   cost as [verify_exhaustive], but keeping the per-pair trace): the
   failure count is derived from the expected f(x,y) array, and each
   incremental "<id>-inc" entry is differenced pair by pair against its
   from-scratch counterpart's trace.  The workload is the registry's
   incremental slice — every family ported to the core/apply-inputs
   split is benched scratch-vs-incremental with no per-family wiring
   here.  [--smoke] drops the slow from-scratch sweeps (so those -inc
   entries carry no differential) for CI-sized runs. *)
type ventry = {
  vname : string;
  vpairs : int;
  vwall : float;
  vwall1 : float;
  vhits : int;
  vmisses : int;
  vvs_scratch : float option;  (* scratch wall / incremental wall *)
  vdiff_ok : bool option;  (* per-pair trace equality vs scratch *)
  vobs : Obs.report option;  (* telemetry for this entry's runs *)
  vnodes : int option;  (* Σ solver.*.nodes over this entry's runs *)
  vpruned : int option;  (* Σ solver.*.pruned over this entry's runs *)
}

(* The search-effort totals of a bench entry, folded out of its obs
   report: every [solver.<name>.nodes] / [.pruned] counter summed.  The
   pruning-regression guard in CI reads these as first-class fields
   rather than digging through the "obs" section. *)
let solver_totals = function
  | None -> (None, None)
  | Some rep ->
      let sum suffix =
        List.fold_left
          (fun acc (name, v) ->
            if
              String.length name > 7
              && String.sub name 0 7 = "solver."
              && Filename.check_suffix name suffix
            then acc + v
            else acc)
          0 rep.Obs.r_counters
      in
      (Some (sum ".nodes"), Some (sum ".pruned"))

let verify_benches ~smoke () =
  let pool = Pool.default () and pool1 = Pool.create ~jobs:1 () in
  (* expected per-pair answers, in exhaustive_verdicts order *)
  let expected fam =
    let xs = Array.of_list (Bits.all fam.Framework.input_bits) in
    let n = Array.length xs in
    Array.init (n * n) (fun i -> fam.Framework.f xs.(i / n) xs.(i mod n))
  in
  let entry ~name ~pairs ~wall ~wall1 ?(hits = 0) ?(misses = 0) ?vs_scratch
      ?diff_ok () =
    let vobs = obs_snap () in
    let vnodes, vpruned = solver_totals vobs in
    {
      vname = name;
      vpairs = pairs;
      vwall = wall;
      vwall1 = wall1;
      vhits = hits;
      vmisses = misses;
      vvs_scratch = vs_scratch;
      vdiff_ok = diff_ok;
      vobs;
      vnodes;
      vpruned;
    }
  in
  (* from-scratch traces, by name, for the -inc differentials *)
  let traces : (string, bool array * float) Hashtbl.t = Hashtbl.create 8 in
  let bench_scratch ~name fam =
    obs_fresh ();
    let v, wall = timed (fun () -> Framework.exhaustive_verdicts ~pool fam) in
    let v1, wall1 = timed (fun () -> Framework.exhaustive_verdicts ~pool:pool1 fam) in
    if v <> v1 then
      failwith (Printf.sprintf "verify bench %s: CH_JOBS result mismatch" name);
    let exp = expected fam in
    Array.iteri
      (fun i e ->
        if v.(i) <> e then
          failwith (Printf.sprintf "verify bench %s: failure at pair %d" name i))
      exp;
    Hashtbl.replace traces name (v, wall);
    entry ~name ~pairs:(Array.length v) ~wall ~wall1 ()
  in
  let bench_inc ~name ~scratch_name inc =
    obs_fresh ();
    let (v, stats), wall =
      timed (fun () -> Framework.exhaustive_verdicts_inc ~pool inc)
    in
    let (v1, _), wall1 =
      timed (fun () -> Framework.exhaustive_verdicts_inc ~pool:pool1 inc)
    in
    if v <> v1 then
      failwith (Printf.sprintf "verify bench %s: CH_JOBS result mismatch" name);
    let exp = expected inc.Framework.scratch in
    Array.iteri
      (fun i e ->
        if v.(i) <> e then
          failwith (Printf.sprintf "verify bench %s: failure at pair %d" name i))
      exp;
    let vs_scratch, diff_ok =
      match Hashtbl.find_opt traces scratch_name with
      | Some (sv, swall) -> (Some (swall /. wall), Some (sv = v))
      | None -> (None, None)
    in
    (match diff_ok with
    | Some false ->
        failwith (Printf.sprintf "verify bench %s: differential mismatch" name)
    | _ -> ());
    entry ~name ~pairs:(Array.length v) ~wall ~wall1
      ~hits:stats.Framework.cache_hits ~misses:stats.Framework.cache_misses
      ?vs_scratch ?diff_ok ()
  in
  let bench_counts ~name f =
    obs_fresh ();
    let r, wall = timed (fun () -> f pool) in
    let r1, wall1 = timed (fun () -> f pool1) in
    if r <> r1 then
      failwith (Printf.sprintf "verify bench %s: CH_JOBS result mismatch" name);
    let failures, pairs = r in
    if failures > 0 then
      failwith (Printf.sprintf "verify bench %s: %d failures" name failures);
    entry ~name ~pairs ~wall ~wall1 ()
  in
  (* the from-scratch side of these exhaustive sweeps is too slow for a
     CI smoke run; their -inc entries still run, without a differential *)
  let slow_scratch = [ "steiner"; "maxcut"; "hampath" ] in
  let family_entries =
    (* concat_map evaluates left to right, and within a family the
       scratch binding precedes the -inc one — each -inc entry needs its
       scratch trace recorded first *)
    List.concat_map
      (fun s ->
        let id = s.Registry.id and k = s.Registry.default_k in
        let scratch_name = Printf.sprintf "%s-k%d-exhaustive" id k in
        let scratch =
          if smoke && List.mem id slow_scratch then []
          else [ bench_scratch ~name:scratch_name (s.Registry.scratch k) ]
        in
        let inc =
          match s.Registry.incremental with
          | None -> []
          | Some inc ->
              [ bench_inc ~name:(scratch_name ^ "-inc") ~scratch_name (inc k) ]
        in
        scratch @ inc)
      (Registry.filter ~incremental:true (reg ()))
  in
  let k4 =
    if smoke then []
    else begin
      let k4_block =
        bench_counts ~name:"mds-k4-exhaustive-block" (fun p ->
            (* a 128 × 16 block of the K = 16 pair space: ~2k exact
               solves on the k=4 gadget — big enough to time, bounded
               enough for a smoke run (the full 2^16 × 2^16 space is out
               of reach) *)
            let fam = fam_of "mds" ~k:4 in
            let xs = Array.of_list (Bits.all 16) in
            let counts =
              Pool.parallel_chunks p ~lo:0 ~hi:(128 * 16) (fun lo hi ->
                  let bad = ref 0 in
                  for i = lo to hi - 1 do
                    if
                      not
                        (Framework.verify_pair fam
                           xs.(257 * (i / 16))
                           xs.(i mod 16))
                    then incr bad
                  done;
                  !bad)
            in
            (List.fold_left ( + ) 0 counts, 128 * 16))
      in
      let k4_random =
        bench_counts ~name:"mds-k4-random-64" (fun p ->
            Framework.verify_random ~pool:p ~seed:77 ~samples:64
              (fam_of "mds" ~k:4))
      in
      [ k4_block; k4_random ]
    end
  in
  family_entries @ k4

(* Theorem 1.1 reduction sweeps: the lockstep two-party simulation on
   every swept pair, differenced bit-for-bit against the
   [Network.run_split] oracle, with the derived empirical
   Ω(CC(f)/(|E_cut|·log n)) figure.  The workload is the registry's
   reduction slice ([Bound.sweep_registry] at each family's default
   scale).  Cheap solvers sweep the full (connected) 2^K × 2^K pair
   space; the MaxCut gadget's exact solver is ~30ms per pair, so it
   sweeps the corners plus a sample ([--smoke] shrinks only that
   sample).  Disconnected pairs are outside the CONGEST model and
   skipped, with the count reported. *)
type rentry = {
  rname : string;
  rskipped : int;
  rwall : float;
  rrep : Ch_reduction.Bound.report;
  robs : Obs.report option;  (* telemetry for this entry's sweep *)
}

let reduction_benches ~smoke () =
  let open Ch_reduction in
  (* exhaustive 4^K sweeps everywhere they stay cheap; maxcut's solver
     and hampath's Hamiltonian-path search get the sampled pair set *)
  let sampled_only = [ "maxcut"; "hampath" ] in
  List.map
    (fun s ->
      let id = s.Registry.id and k = s.Registry.default_k in
      let name = Printf.sprintf "%s-k%d-reduction" id k in
      let exhaustive = not (List.mem id sampled_only) in
      let samples = if smoke then 4 else 20 in
      obs_fresh ();
      let trace = if Obs.enabled () then Some Trace.obs_sink else None in
      let r, wall =
        timed (fun () ->
            Bound.sweep_registry ?trace ~seed:41 ~exhaustive ~samples s ~k)
      in
      match r with
      | None -> failwith (Printf.sprintf "reduction bench %s: no reduction" name)
      | Some (_, rep, skipped) ->
          if
            not
              (rep.Bound.rep_all_match && rep.Bound.rep_all_correct
             && rep.Bound.rep_all_within_budget)
          then failwith (Printf.sprintf "reduction bench %s: invariant failed" name);
          {
            rname = name;
            rskipped = skipped;
            rwall = wall;
            rrep = rep;
            robs = obs_snap ();
          })
    (Registry.filter ~reduction:true (reg ()))

(* Sharded sweep engine (lib/sweep): a fresh store-backed sweep, a
   crash-and-resume cycle in the same store, and — full runs only — the
   large-k sampled workload.  Every merged verdict stream is differenced
   bit-for-bit against the single-process scratch oracle
   ([Framework.exhaustive_verdicts] / [sampled_verdicts]) before the
   entry is recorded, the same discipline as the -inc entries above.
   The shard counts are pinned (no CH_JOBS / machine dependence) and
   [--smoke] keeps only the two tiny k=2 exhaustive entries, so the CI
   run stays timeout-bounded. *)
type sentry = {
  sname : string;
  spairs : int;
  snshards : int;
  swall : float;
  scompleted : int;
  sresumed : int;
  srecomputed : int;
  scorrupt : int;
  sdiff_ok : bool;
  sobs : Obs.report option;
}

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let sweep_benches ~smoke () =
  let open Ch_sweep in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_sweep_%d" (Unix.getpid ()))
  in
  (* the oracle runs before [obs_fresh], so each entry's obs report (and
     its sweep.shards.* counters) covers the sweep alone *)
  let entry ~name ~fam ~mode ~store run =
    let oracle = Sweep.oracle fam ~mode in
    obs_fresh ();
    let o, wall = timed (fun () -> run ~store_dir:(Filename.concat root store)) in
    if o.Sweep.verdicts <> oracle then
      failwith (Printf.sprintf "sweep bench %s: differential mismatch" name);
    if o.Sweep.failures > 0 then
      failwith (Printf.sprintf "sweep bench %s: %d failures" name o.Sweep.failures);
    {
      sname = name;
      spairs = Array.length o.Sweep.verdicts;
      snshards = o.Sweep.shards_total;
      swall = wall;
      scompleted = o.Sweep.shards_completed;
      sresumed = o.Sweep.shards_resumed;
      srecomputed = o.Sweep.shards_recomputed;
      scorrupt = o.Sweep.artifacts_corrupt;
      sdiff_ok = true;
      sobs = obs_snap ();
    }
  in
  let fam2 = fam_of "mds" ~k:2 in
  let fresh =
    entry ~name:"mds-k2-sweep-x4" ~fam:fam2 ~mode:Shard.Exhaustive
      ~store:"fresh" (fun ~store_dir ->
        Sweep.run ~store_dir fam2 ~mode:Shard.Exhaustive ~shards:4)
  in
  let resume =
    (* interrupt a sweep after two shards, then time the resumed run: it
       must load the persisted shards (zero recomputation) and still
       merge to the oracle stream *)
    (try
       ignore
         (Sweep.run
            ~store_dir:(Filename.concat root "resume")
            ~fault_after:2 fam2 ~mode:Shard.Exhaustive ~shards:4)
     with Sweep.Interrupted _ -> ());
    let e =
      entry ~name:"mds-k2-sweep-resume4" ~fam:fam2 ~mode:Shard.Exhaustive
        ~store:"resume" (fun ~store_dir ->
          Sweep.run ~store_dir fam2 ~mode:Shard.Exhaustive ~shards:4)
    in
    if e.sresumed < 2 || e.srecomputed > 0 then
      failwith "sweep bench resume: expected >= 2 resumed shards, 0 recomputed";
    e
  in
  let big =
    if smoke then []
    else begin
      (* the first large-k sampled workload: 49 152 pairs of the k=4 MDS
         gadget (12× the largest exhaustive space benched above), cut
         into 64 shards *)
      let fam4 = fam_of "mds" ~k:4 in
      let mode = Shard.Sampled { seed = 11; samples = 49148 } in
      [
        entry ~name:"mds-k4-sweep-sample49152" ~fam:fam4 ~mode ~store:"big"
          (fun ~store_dir -> Sweep.run ~store_dir fam4 ~mode ~shards:64);
      ]
    end
  in
  let entries = (fresh :: resume :: big) in
  if Sys.file_exists root then rm_rf root;
  entries

(* Serve daemon (lib/serve): cold vs warm service time for one verify
   plan over a real localhost Unix socket — daemon thread, framing,
   scheduler admission and the warm-cache registry all on the measured
   path.  The daemon runs in-process (threads, not fork: the domain
   pool is already up, and OCaml 5 forbids fork after domains spawn);
   the socket hop is real, so cold/warm is exactly what a CLI client
   sees.  [Cache.clear] before each entry makes the first request
   genuinely cold; the warm figure is the best of five repeats, and the
   oracle digest is computed after the roundtrips so its work never
   pre-warms the server. *)
type sventry = {
  svname : string;
  svpairs : int;
  svcold_s : float;
  svwarm_s : float;  (** best of the warm repeats *)
  svwarm_hit : bool;  (** every repeat answered [warm: true] *)
  svdigest_ok : bool;  (** every digest equals the in-process oracle *)
  svobs : Obs.report option;
}

let serve_benches ~smoke () =
  let open Ch_serve in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_serve_%d.sock" (Unix.getpid ()))
  in
  let server =
    Server.start
      {
        Server.cfg_addr = Server.Unix_socket sock;
        cfg_workers = 4;
        cfg_queue_depth = 64;
        cfg_store_dir = None;
        cfg_obs_out = None;
        (* the sampler stays live during the serve benches — its cost is
           part of the daemon's steady state *)
        cfg_sample_period_s = 0.5;
      }
  in
  let entry ~name ~family ~k ~vmode =
    Ch_solvers.Cache.clear ();
    obs_fresh ();
    let c = Client.connect ~retries:20 (Server.Unix_socket sock) in
    let req id =
      {
        Protocol.rq_id = id;
        rq_op = Protocol.Verify { family; k; vmode; engine = Protocol.Auto };
        rq_deadline_ms = None;
        rq_trace = None;
      }
    in
    let get id =
      match Client.roundtrip c [ req id ] with
      | [ r ] -> r
      | _ -> failwith (Printf.sprintf "serve bench %s: bad batch shape" name)
    in
    let body r =
      match r.Protocol.rs_outcome with
      | Protocol.Payload b -> b
      | Protocol.Error (code, msg) ->
          failwith
            (Printf.sprintf "serve bench %s: %s (%s)" name
               (Protocol.error_code_to_string code)
               msg)
    in
    let r0, cold = timed (fun () -> get 0) in
    let repeats = List.init 5 (fun i -> timed (fun () -> get (i + 1))) in
    Client.close c;
    let warm =
      List.fold_left (fun acc (_, w) -> Float.min acc w) Float.infinity repeats
    in
    let warm_hit = List.for_all (fun (r, _) -> r.Protocol.rs_warm) repeats in
    let digest r =
      match Jsonx.mem "digest" (body r) with
      | Some (Jsonx.Str d) -> d
      | _ -> failwith (Printf.sprintf "serve bench %s: no digest" name)
    in
    let pairs =
      match Jsonx.mem "pairs" (body r0) with Some (Jsonx.Int n) -> n | _ -> 0
    in
    let fam = fam_of ~k family in
    let mode =
      match vmode with
      | Protocol.Exhaustive -> Ch_sweep.Shard.Exhaustive
      | Protocol.Sampled { seed; samples } ->
          Ch_sweep.Shard.Sampled { seed; samples }
    in
    let oracle_digest =
      Ch_sweep.Sweep.digest (Ch_sweep.Sweep.oracle fam ~mode)
    in
    let digest_ok =
      List.for_all (fun (r, _) -> digest r = oracle_digest) ((r0, cold) :: repeats)
    in
    if not digest_ok then
      failwith (Printf.sprintf "serve bench %s: digest mismatch vs oracle" name);
    {
      svname = name;
      svpairs = pairs;
      svcold_s = cold;
      svwarm_s = warm;
      svwarm_hit = warm_hit;
      svdigest_ok = digest_ok;
      svobs = obs_snap ();
    }
  in
  let entries =
    (* the acceptance workload first: repeated node-weighted Steiner at
       k=2 must serve warm >= 10x faster than cold *)
    entry ~name:"serve-nwsteiner-k2-x" ~family:"steiner-node-weighted" ~k:2
      ~vmode:Protocol.Exhaustive
    :: entry ~name:"serve-mds-k2-x" ~family:"mds" ~k:2
         ~vmode:Protocol.Exhaustive
    ::
    (if smoke then []
     else
       [
         entry ~name:"serve-mds-k4-s2048" ~family:"mds" ~k:4
           ~vmode:(Protocol.Sampled { seed = 11; samples = 2044 });
       ])
  in
  Server.stop server;
  entries

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_json ~experiment_times ~verify ~reduction ~sweep ~serve =
  let ts = int_of_float (Unix.time ()) in
  let file = Printf.sprintf "BENCH_%d.json" ts in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"timestamp\": %d,\n" ts;
  Printf.bprintf buf "  \"jobs\": %d,\n" (Pool.jobs (Pool.default ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (name, wall) ->
      Printf.bprintf buf "    {\"name\": \"%s\", \"wall_s\": %.6f}%s\n"
        (json_escape name) wall
        (if i < List.length experiment_times - 1 then "," else ""))
    experiment_times;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"verify\": [\n";
  List.iteri
    (fun i e ->
      Printf.bprintf buf
        "    {\"family\": \"%s\", \"pairs\": %d, \"wall_s\": %.6f, \
         \"pairs_per_s\": %.1f, \"wall_s_jobs1\": %.6f, \
         \"speedup_vs_jobs1\": %.3f, \"cache_hits\": %d, \
         \"cache_misses\": %d%s%s}%s\n"
        (json_escape e.vname) e.vpairs e.vwall
        (float_of_int e.vpairs /. e.vwall)
        e.vwall1
        (e.vwall1 /. e.vwall)
        e.vhits e.vmisses
        (match e.vvs_scratch with
        | Some s -> Printf.sprintf ", \"speedup_vs_scratch\": %.3f" s
        | None -> "")
        ((match e.vdiff_ok with
         | Some ok -> Printf.sprintf ", \"differential_ok\": %b" ok
         | None -> "")
        ^ (match e.vnodes with
          | Some n -> Printf.sprintf ", \"solver_nodes\": %d" n
          | None -> "")
        ^
        match e.vpruned with
        | Some p -> Printf.sprintf ", \"solver_pruned\": %d" p
        | None -> "")
        (if i < List.length verify - 1 then "," else ""))
    verify;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"reduction\": [\n";
  List.iteri
    (fun i r ->
      let rep = r.rrep in
      let open Ch_reduction.Bound in
      Printf.bprintf buf
        "    {\"family\": \"%s\", \"pairs\": %d, \"pairs_skipped\": %d, \
         \"wall_s\": %.6f, \"pairs_per_s\": %.1f, \"parties\": %d, \
         \"cut\": %d, \
         \"bandwidth\": %d, \"rounds_max\": %d, \"cut_bits_max\": %d, \
         \"budget_max\": %d, \"bits_per_round\": %.2f, \"cc_bits\": %d, \
         \"lb_rounds\": %.3f, \"transcript_differential_ok\": %b, \
         \"decisions_ok\": %b, \"within_budget\": %b}%s\n"
        (json_escape r.rname) rep.rep_pairs r.rskipped r.rwall
        (float_of_int rep.rep_pairs /. r.rwall)
        rep.rep_parties rep.rep_cut rep.rep_bandwidth rep.rep_rounds_max
        rep.rep_cut_bits_max
        rep.rep_budget_max rep.rep_bits_per_round rep.rep_cc_bits
        rep.rep_lb_rounds rep.rep_all_match rep.rep_all_correct
        rep.rep_all_within_budget
        (if i < List.length reduction - 1 then "," else ""))
    reduction;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"sweep\": [\n";
  List.iteri
    (fun i e ->
      Printf.bprintf buf
        "    {\"family\": \"%s\", \"pairs\": %d, \"shards\": %d, \
         \"wall_s\": %.6f, \"pairs_per_s\": %.1f, \"shards_completed\": %d, \
         \"shards_resumed\": %d, \"shards_recomputed\": %d, \
         \"artifacts_corrupt\": %d, \"differential_ok\": %b}%s\n"
        (json_escape e.sname) e.spairs e.snshards e.swall
        (float_of_int e.spairs /. e.swall)
        e.scompleted e.sresumed e.srecomputed e.scorrupt e.sdiff_ok
        (if i < List.length sweep - 1 then "," else ""))
    sweep;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"serve\": [\n";
  List.iteri
    (fun i e ->
      Printf.bprintf buf
        "    {\"name\": \"%s\", \"pairs\": %d, \"cold_s\": %.6f, \
         \"warm_s\": %.6f, \"warm_speedup\": %.2f, \"warm_hit\": %b, \
         \"digest_ok\": %b}%s\n"
        (json_escape e.svname) e.svpairs e.svcold_s e.svwarm_s
        (e.svcold_s /. e.svwarm_s)
        e.svwarm_hit e.svdigest_ok
        (if i < List.length serve - 1 then "," else ""))
    serve;
  Buffer.add_string buf "  ],\n";
  (* one telemetry report per bench entry; the counter objects inside
     each report sit one per line, so two runs' counter sets diff with
     plain grep (the CH_JOBS determinism guard in CI does exactly that) *)
  let obs_entries =
    List.filter_map (fun e -> Option.map (fun r -> (e.vname, r)) e.vobs) verify
    @ List.filter_map (fun r -> Option.map (fun o -> (r.rname, o)) r.robs)
        reduction
    @ List.filter_map (fun e -> Option.map (fun o -> (e.sname, o)) e.sobs) sweep
    @ List.filter_map
        (fun e -> Option.map (fun o -> (e.svname, o)) e.svobs)
        serve
  in
  Buffer.add_string buf "  \"obs\": [\n";
  List.iteri
    (fun i (name, rep) ->
      Printf.bprintf buf "    {\"family\": \"%s\", \"report\":\n%s    }%s\n"
        (json_escape name)
        (Obs.report_json rep)
        (if i < List.length obs_entries - 1 then "," else ""))
    obs_entries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let smoke = List.mem "--smoke" args in
  let no_obs = List.mem "--no-obs" args in
  let args =
    List.filter (fun a -> a <> "--json" && a <> "--smoke" && a <> "--no-obs") args
  in
  (* --json turns telemetry on so the report carries per-entry counters;
     --no-obs keeps it off to measure the disabled-path overhead *)
  if json && not no_obs then Obs.set_enabled true;
  let selected =
    match args with
    | [] -> List.filter (fun (id, _) -> id <> "bech") all_experiments
    | ids ->
        List.filter_map
          (fun id ->
            match List.assoc_opt id all_experiments with
            | Some f -> Some (id, f)
            | None ->
                if id <> "bech" then Printf.eprintf "unknown experiment %S\n" id;
                None)
          ids
  in
  if args = [] then
    Printf.printf
      "Hardness of Distributed Optimization (PODC 2019) — experiment report\n";
  let experiment_times =
    List.map
      (fun (name, f) ->
        let (), wall = timed f in
        (name, wall))
      selected
  in
  if args = [] || List.mem "bech" args then run_bechamel ();
  if json then begin
    header "Verification throughput (CH_JOBS pool vs 1 worker)";
    let verify = verify_benches ~smoke () in
    List.iter
      (fun e ->
        Printf.printf
          "  %-28s %8d pairs  %8.3fs  %10.1f pairs/s  ×%.2f vs jobs=1%s%s\n"
          e.vname e.vpairs e.vwall
          (float_of_int e.vpairs /. e.vwall)
          (e.vwall1 /. e.vwall)
          (match e.vvs_scratch with
          | Some s -> Printf.sprintf "  ×%.2f vs scratch" s
          | None -> "")
          (match e.vdiff_ok with
          | Some true -> "  differential ok"
          | Some false -> "  DIFFERENTIAL MISMATCH"
          | None -> ""))
      verify;
    header "Theorem 1.1 reduction (lockstep transcript vs partitioned oracle)";
    let reduction = reduction_benches ~smoke () in
    List.iter
      (fun r ->
        let rep = r.rrep in
        let open Ch_reduction.Bound in
        Printf.printf
          "  %-22s %5d pairs (%d skipped)  t=%d  %7.3fs  %8.1f pairs/s  \
           %6.1f bits/round  Ω(%.2f) rounds  %s\n"
          r.rname rep.rep_pairs r.rskipped rep.rep_parties r.rwall
          (float_of_int rep.rep_pairs /. r.rwall)
          rep.rep_bits_per_round rep.rep_lb_rounds
          (if rep.rep_all_match then "differential ok"
           else "DIFFERENTIAL MISMATCH"))
      reduction;
    header "Sharded sweep engine (store-backed, resumable)";
    let sweep = sweep_benches ~smoke () in
    List.iter
      (fun e ->
        Printf.printf
          "  %-28s %8d pairs  %3d shards  %8.3fs  %10.1f pairs/s  \
           completed=%d resumed=%d recomputed=%d corrupt=%d  %s\n"
          e.sname e.spairs e.snshards e.swall
          (float_of_int e.spairs /. e.swall)
          e.scompleted e.sresumed e.srecomputed e.scorrupt
          (if e.sdiff_ok then "differential ok" else "DIFFERENTIAL MISMATCH"))
      sweep;
    header "Serve daemon (cold vs warm over a localhost socket)";
    let serve = serve_benches ~smoke () in
    List.iter
      (fun e ->
        Printf.printf
          "  %-28s %8d pairs  cold %8.4fs  warm %8.6fs  ×%.1f  %s%s\n"
          e.svname e.svpairs e.svcold_s e.svwarm_s
          (e.svcold_s /. e.svwarm_s)
          (if e.svwarm_hit then "warm hits" else "NO WARM HIT")
          (if e.svdigest_ok then "  digest ok" else "  DIGEST MISMATCH"))
      serve;
    write_json ~experiment_times ~verify ~reduction ~sweep ~serve
  end
