open Ch_graph
open Ch_solvers
open Ch_sat

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_cnf_basic () =
  let phi =
    Cnf.make 3
      [
        Cnf.One (Cnf.Pos 0);
        Cnf.Two (Cnf.Neg 0, Cnf.Pos 1);
        Cnf.Two (Cnf.Neg 1, Cnf.Neg 2);
        Cnf.One (Cnf.Pos 2);
      ]
  in
  check_int "nclauses" 4 (Cnf.nclauses phi);
  check_int "count [t;t;f]" 3 (Cnf.count_sat phi [| true; true; false |]);
  (* x2 = T forces x1 = F forces x0 = F, losing the first clause *)
  check_int "max sat" 3 (fst (Cnf.max_sat phi));
  let occ = Cnf.occurrences phi in
  check_int "occ x0" 2 occ.(0);
  check_int "occ x1" 2 occ.(1);
  check_int "occ x2" 2 occ.(2);
  let pos, neg = Cnf.literal_occurrences phi in
  check_int "pos x2" 1 pos.(2);
  check_int "neg x2" 1 neg.(2)

let test_cnf_unsat_clause_counting () =
  (* x and ~x can never both be satisfied *)
  let phi = Cnf.make 1 [ Cnf.One (Cnf.Pos 0); Cnf.One (Cnf.Neg 0) ] in
  check_int "max sat" 1 (fst (Cnf.max_sat phi))

(* Claim 3.1: f(φ) = α(G) + |E| *)
let prop_claim_3_1 =
  QCheck.Test.make ~name:"claim 3.1: f(phi) = alpha + m" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.4 in
      let phi = Sat_reductions.graph_to_cnf g in
      fst (Cnf.max_sat phi) = Mis.alpha g + Graph.m g)

(* Claim 3.4: α(G′) = f(φ′) for any 1/2-CNF formula *)
let random_cnf ~seed ~nvars ~nclauses =
  let rng = Random.State.make [| seed |] in
  let lit () =
    let v = Random.State.int rng nvars in
    if Random.State.bool rng then Cnf.Pos v else Cnf.Neg v
  in
  let clause () =
    if nvars < 2 || Random.State.bool rng then Cnf.One (lit ())
    else begin
      let a = lit () in
      let rec other () =
        let b = lit () in
        if Cnf.var b = Cnf.var a then other () else b
      in
      Cnf.Two (a, other ())
    end
  in
  Cnf.make nvars (List.init nclauses (fun _ -> clause ()))

let prop_claim_3_4 =
  QCheck.Test.make ~name:"claim 3.4: alpha(G') = f(phi')" ~count:40
    QCheck.(triple (int_bound 10000) (int_range 1 10) (int_range 1 14))
    (fun (seed, nvars, nclauses) ->
      let phi = random_cnf ~seed ~nvars ~nclauses in
      let sg = Sat_reductions.cnf_to_graph phi in
      Mis.alpha sg.Sat_reductions.graph = fst (Cnf.max_sat phi))

let prop_assignment_to_is =
  QCheck.Test.make ~name:"assignment induces an independent set of size count_sat"
    ~count:40
    QCheck.(triple (int_bound 10000) (int_range 1 8) (int_range 1 12))
    (fun (seed, nvars, nclauses) ->
      let phi = random_cnf ~seed ~nvars ~nclauses in
      let sg = Sat_reductions.cnf_to_graph phi in
      let rng = Random.State.make [| seed; 31 |] in
      let assignment = Array.init nvars (fun _ -> Random.State.bool rng) in
      let set = Sat_reductions.independent_set_of_assignment phi sg assignment in
      Mis.is_independent sg.Sat_reductions.graph set
      && List.length set = Cnf.count_sat phi assignment)

(* Corollary 3.1: f(φ′) = f(φ) + m_exp, for formulas small enough that φ′
   stays brute-forceable *)
let random_low_occurrence_cnf ~seed ~nvars =
  let rng = Random.State.make [| seed |] in
  let occ = Array.make nvars 0 in
  let lit v = if Random.State.bool rng then Cnf.Pos v else Cnf.Neg v in
  let clauses = ref [] in
  (* each variable appears at most twice: gadgets stay tiny *)
  for v = 0 to nvars - 1 do
    occ.(v) <- 1 + Random.State.int rng 2
  done;
  let pool = ref [] in
  Array.iteri (fun v c -> for _ = 1 to c do pool := v :: !pool done) occ;
  let rec pair_up = function
    | [] -> ()
    | [ v ] -> clauses := Cnf.One (lit v) :: !clauses
    | v :: u :: rest ->
        if v <> u && Random.State.bool rng then begin
          clauses := Cnf.Two (lit v, lit u) :: !clauses;
          pair_up rest
        end
        else begin
          clauses := Cnf.One (lit v) :: !clauses;
          pair_up (u :: rest)
        end
  in
  pair_up !pool;
  Cnf.make nvars !clauses

let prop_corollary_3_1 =
  QCheck.Test.make ~name:"corollary 3.1: f(phi') = f(phi) + m_exp" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 1 4))
    (fun (seed, nvars) ->
      let phi = random_low_occurrence_cnf ~seed ~nvars in
      let e = Sat_reductions.expand ~seed phi in
      e.Sat_reductions.gadget_certified
      && e.Sat_reductions.cnf.Cnf.nvars <= 24
      && fst (Cnf.max_sat e.Sat_reductions.cnf)
         = fst (Cnf.max_sat phi) + e.Sat_reductions.m_exp)

(* Corollary 3.1 for larger formulas: compute f(φ′) through the (already
   verified) Claim 3.4 equivalence α(G′) = f(φ′). *)
let prop_corollary_3_1_large =
  QCheck.Test.make ~name:"corollary 3.1 via alpha(G')" ~count:8
    QCheck.(pair (int_bound 10000) (int_range 2 4))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.35 in
      let phi = Sat_reductions.graph_to_cnf g in
      let e = Sat_reductions.expand ~seed phi in
      let sg = Sat_reductions.cnf_to_graph e.Sat_reductions.cnf in
      Mis.alpha sg.Sat_reductions.graph
      = fst (Cnf.max_sat phi) + e.Sat_reductions.m_exp)

(* Structural guarantees of the pipeline (Section 3.1) *)
let test_pipeline_structure () =
  let g = Gen.gnp ~seed:5 8 0.5 in
  let phi = Sat_reductions.graph_to_cnf g in
  check_int "phi vars" 8 phi.Cnf.nvars;
  check_int "phi clauses" (8 + Graph.m g) (Cnf.nclauses phi);
  let e = Sat_reductions.expand ~seed:1 phi in
  let phi' = e.Sat_reductions.cnf in
  let occ = Cnf.occurrences phi' in
  Array.iter (fun c -> check "var appears <= 8 times" true (c <= 8)) occ;
  let pos, neg = Cnf.literal_occurrences phi' in
  Array.iter (fun c -> check "literal <= 4 times" true (c <= 4)) pos;
  Array.iter (fun c -> check "literal <= 4 times" true (c <= 4)) neg;
  let sg = Sat_reductions.cnf_to_graph phi' in
  check "G' max degree <= 5" true (Graph.max_degree sg.Sat_reductions.graph <= 5);
  (* owner map is a partition *)
  let total =
    Array.fold_left (fun acc l -> acc + List.length l) 0 e.Sat_reductions.copies
  in
  check_int "copies partition vars" phi'.Cnf.nvars total

(* End-to-end: α(G′) = α(G) + |E| + m_exp *)
let test_pipeline_end_to_end () =
  List.iter
    (fun (seed, n, p) ->
      let g = Gen.gnp ~seed n p in
      let phi = Sat_reductions.graph_to_cnf g in
      let e = Sat_reductions.expand ~seed phi in
      let sg = Sat_reductions.cnf_to_graph e.Sat_reductions.cnf in
      check "gadgets certified" true e.Sat_reductions.gadget_certified;
      check_int
        (Printf.sprintf "alpha(G') for seed=%d n=%d" seed n)
        (Mis.alpha g + Graph.m g + e.Sat_reductions.m_exp)
        (Mis.alpha sg.Sat_reductions.graph))
    [ (1, 5, 0.4); (2, 6, 0.4); (4, 7, 0.3) ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sat"
    [
      ( "cnf",
        [
          Alcotest.test_case "basics" `Quick test_cnf_basic;
          Alcotest.test_case "contradictory units" `Quick test_cnf_unsat_clause_counting;
        ] );
      ( "reductions",
        [
          qt prop_claim_3_1;
          qt prop_claim_3_4;
          qt prop_assignment_to_is;
          qt prop_corollary_3_1;
          qt prop_corollary_3_1_large;
          Alcotest.test_case "pipeline structure" `Quick test_pipeline_structure;
          Alcotest.test_case "pipeline end to end" `Quick test_pipeline_end_to_end;
        ] );
    ]
