open Ch_graph
open Ch_solvers
open Ch_limits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let split_of ~seed n p =
  let g = Gen.random_connected ~seed n p in
  Split.make g ~side:(Array.init n (fun v -> v < n / 2))

let bounded_degree_split ~seed n =
  (* a connected graph with small max degree: a cycle plus a few chords *)
  let g = Gen.cycle n in
  let rng = Random.State.make [| seed |] in
  for _ = 1 to n / 4 do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then Graph.add_edge g u v
  done;
  Split.make g ~side:(Array.init n (fun v -> v < n / 2))

(* ------------------------------------------------------------------ *)
(* Claims 5.1-5.3: bounded degree protocols                            *)
(* ------------------------------------------------------------------ *)

let test_mvc_bounded () =
  List.iter
    (fun seed ->
      let split = bounded_degree_split ~seed 14 in
      let g = split.Split.graph in
      let eps = 0.5 in
      let r = Approx_protocols.mvc_bounded_degree ~eps split in
      let covered (u, v, _) = List.mem u r.Approx_protocols.value || List.mem v r.Approx_protocols.value in
      check "is a vertex cover" true (List.for_all covered (Graph.edges g));
      let opt = Mis.min_vertex_cover_size g in
      check "(1+eps) guarantee" true
        (float_of_int (List.length r.Approx_protocols.value)
        <= ((1.0 +. eps) *. float_of_int opt) +. 0.001);
      check "bits are modest" true (r.Approx_protocols.bits <= 60 * Graph.m g))
    [ 1; 2; 3 ]

let test_mds_bounded () =
  List.iter
    (fun seed ->
      let split = bounded_degree_split ~seed 14 in
      let g = split.Split.graph in
      let eps = 0.9 in
      let r = Approx_protocols.mds_bounded_degree ~eps split in
      check "dominates" true (Domset.is_dominating g r.Approx_protocols.value);
      let opt = Domset.min_size g in
      check "(1+eps) guarantee" true
        (float_of_int (List.length r.Approx_protocols.value)
        <= ((1.0 +. eps) *. float_of_int opt) +. 0.001))
    [ 4; 5; 6 ]

let test_maxis_bounded () =
  List.iter
    (fun seed ->
      let split = bounded_degree_split ~seed 14 in
      let g = split.Split.graph in
      let eps = 0.9 in
      let r = Approx_protocols.maxis_bounded_degree ~eps split in
      check "independent" true (Mis.is_independent g r.Approx_protocols.value);
      let opt = Mis.alpha g in
      check "(1-eps) guarantee" true
        (float_of_int (List.length r.Approx_protocols.value)
        >= ((1.0 -. eps) *. float_of_int opt) -. 0.001))
    [ 7; 8; 9 ]

(* ------------------------------------------------------------------ *)
(* Claims 5.4-5.5: max cut                                             *)
(* ------------------------------------------------------------------ *)

let test_maxcut_unweighted () =
  List.iter
    (fun seed ->
      let split = split_of ~seed 14 0.3 in
      let g = split.Split.graph in
      let eps = 0.8 in
      let r = Approx_protocols.maxcut_unweighted ~eps split in
      let value, side = r.Approx_protocols.value in
      check_int "value consistent" (Maxcut.cut_weight g side) value;
      let opt = fst (Maxcut.max_cut g) in
      check "(1-eps) guarantee" true
        (float_of_int value >= ((1.0 -. eps) *. float_of_int opt) -. 0.001))
    [ 11; 12; 13 ]

let test_maxcut_two_thirds () =
  List.iter
    (fun seed ->
      let split =
        Split.make
          (Gen.random_weights ~seed (Gen.random_connected ~seed 13 0.35))
          ~side:(Array.init 13 (fun v -> v < 6))
      in
      let g = split.Split.graph in
      let r = Approx_protocols.maxcut_weighted_two_thirds split in
      let value, side = r.Approx_protocols.value in
      check_int "value consistent" (Maxcut.cut_weight g side) value;
      let opt = fst (Maxcut.max_cut g) in
      check "2/3 guarantee" true (3 * value >= 2 * opt);
      check "bits O(cut log n)" true
        (r.Approx_protocols.bits <= 200 + (Split.cut_size split * 64)))
    [ 21; 22; 23; 24 ]

(* ------------------------------------------------------------------ *)
(* Claims 5.6, 5.8, 5.9                                                *)
(* ------------------------------------------------------------------ *)

let test_mvc_three_halves () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 13 0.3 in
      let rng = Random.State.make [| seed; 3 |] in
      for v = 0 to 12 do
        Graph.set_vweight g v (1 + Random.State.int rng 9)
      done;
      let split = Split.make g ~side:(Array.init 13 (fun v -> v < 6)) in
      let r = Approx_protocols.mvc_three_halves split in
      let total = Array.fold_left ( + ) 0 (Graph.vweights g) in
      let opt = total - fst (Mis.max_weight_set g) in
      check "feasible weight at least opt" true (r.Approx_protocols.value >= opt);
      check "3/2 guarantee" true (2 * r.Approx_protocols.value <= 3 * opt))
    [ 31; 32; 33; 34 ]

let test_mds_two_approx () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 13 0.3 in
      let rng = Random.State.make [| seed; 5 |] in
      for v = 0 to 12 do
        Graph.set_vweight g v (1 + Random.State.int rng 9)
      done;
      let split = Split.make g ~side:(Array.init 13 (fun v -> v < 6)) in
      let r = Approx_protocols.mds_two_approx split in
      check "dominates" true (Domset.is_dominating g r.Approx_protocols.value);
      let weight_of set = List.fold_left (fun acc v -> acc + Graph.vweight g v) 0 set in
      let opt = fst (Domset.min_weight_set g) in
      check "2-approximation" true (weight_of r.Approx_protocols.value <= 2 * opt);
      check "bits O(cut log n)" true
        (r.Approx_protocols.bits <= 200 + (Split.cut_size split * 128)))
    [ 41; 42; 43; 44 ]

let test_maxis_half () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 13 0.3 in
      let split = Split.make g ~side:(Array.init 13 (fun v -> v < 6)) in
      let r = Approx_protocols.maxis_half split in
      let opt = Mis.alpha g in
      check "1/2 guarantee" true (2 * r.Approx_protocols.value >= opt);
      check "feasible" true (r.Approx_protocols.value <= opt);
      check "tiny bit cost" true (r.Approx_protocols.bits <= 64))
    [ 51; 52; 53 ]

(* ------------------------------------------------------------------ *)
(* Claim 5.11: nondeterministic flow protocols                         *)
(* ------------------------------------------------------------------ *)

let test_flow_nondet () =
  List.iter
    (fun seed ->
      let g = Gen.random_weights ~seed (Gen.random_connected ~seed 10 0.35) in
      let split = Split.make g ~side:(Array.init 10 (fun v -> v < 5)) in
      let network = Flow.of_graph g in
      let value = Flow.max_flow network ~s:0 ~t:9 in
      List.iter
        (fun k ->
          let ge = Nondet.flow_ge split ~s:0 ~t:9 ~k in
          let lt = Nondet.flow_lt split ~s:0 ~t:9 ~k in
          check "ge accepted iff flow >= k" (value >= k) ge.Nondet.accepted;
          check "lt accepted iff flow < k" (value < k) lt.Nondet.accepted;
          check "bits O(cut log W)" true
            (ge.Nondet.bits + lt.Nondet.bits
            <= 200 + (Split.cut_size split * 64)))
        [ max 1 (value - 1); value; value + 1 ])
    [ 61; 62; 63 ]

(* ------------------------------------------------------------------ *)
(* Theorem 4.8: local aggregate simulation                             *)
(* ------------------------------------------------------------------ *)

let test_aggregate_simulation () =
  let p = Ch_lbgraphs.Mds_restricted_lb.make_params ~seed:1 ~ell:6 ~t_count:6 ~r:2 () in
  let x = Ch_cc.Bits.random ~seed:5 6 and y = Ch_cc.Bits.random ~seed:6 6 in
  let g = Ch_lbgraphs.Mds_restricted_lb.build p x y in
  let owner v =
    match Ch_lbgraphs.Mds_restricted_lb.owner p v with
    | `Alice -> Aggregate.Alice
    | `Bob -> Aggregate.Bob
    | `Shared -> Aggregate.Shared
  in
  List.iter
    (fun algo_name ->
      let algo =
        match algo_name with
        | `Max -> Aggregate.flood_max ~rounds:4
        | `Sum -> Aggregate.gossip_sum ~rounds:4
      in
      let central = Aggregate.run_centralized g algo in
      let sim = Aggregate.simulate_two_party g ~owner algo in
      check "simulation matches the centralized run" true
        (central = sim.Aggregate.states);
      check "bits charged only for shared vertices" true
        (sim.Aggregate.bits > 0 && sim.Aggregate.shared = 6))
    [ `Max; `Sum ]

let test_aggregate_no_shared_is_free () =
  let g = Gen.random_connected ~seed:9 12 0.3 in
  let owner v = if v < 6 then Aggregate.Alice else Aggregate.Bob in
  let sim = Aggregate.simulate_two_party g ~owner (Aggregate.flood_max ~rounds:3) in
  check_int "no shared vertices, no bits" 0 sim.Aggregate.bits


(* ------------------------------------------------------------------ *)
(* Claim 5.7: the (1+eps) MVC protocol                                 *)
(* ------------------------------------------------------------------ *)

let test_mvc_one_plus_eps () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 13 0.3 in
      let split = Split.make g ~side:(Array.init 13 (fun v -> v < 6)) in
      List.iter
        (fun eps ->
          let r = Approx_protocols.mvc_one_plus_eps ~eps split in
          let covered (u, v, _) =
            List.mem u r.Approx_protocols.value || List.mem v r.Approx_protocols.value
          in
          check "is a vertex cover" true (List.for_all covered (Graph.edges g));
          let opt = Mis.min_vertex_cover_size g in
          check "(1+eps) guarantee" true
            (float_of_int (List.length r.Approx_protocols.value)
            <= ((1.0 +. eps) *. float_of_int opt) +. 0.001))
        [ 0.3; 1.0 ])
    [ 71; 72; 73 ]

(* ------------------------------------------------------------------ *)
(* Section 5.2 extras: ¬EQ certificates and the PLS bridge             *)
(* ------------------------------------------------------------------ *)

let test_neq_protocol () =
  let x = Ch_cc.Bits.random ~seed:1 64 and y = Ch_cc.Bits.random ~seed:2 64 in
  let r = Nondet.neq x y in
  check "differing strings accepted" true r.Nondet.accepted;
  check "O(log K) bits" true (r.Nondet.bits <= 8);
  let same = Nondet.neq x x in
  check "equal strings rejected" false same.Nondet.accepted

let test_via_pls () =
  let g = Gen.random_connected ~seed:4 14 0.25 in
  let split = Split.make g ~side:(Array.init 14 (fun v -> v < 7)) in
  let parent = Ch_graph.Props.bfs_tree g 0 in
  let tree =
    List.filter_map
      (fun v ->
        if parent.(v) >= 0 then Some (min v parent.(v), max v parent.(v)) else None)
      (List.init 14 Fun.id)
  in
  let inst = Ch_pls.Verif.make g ~h:tree in
  let r = Nondet.via_pls Ch_pls.Schemes.spanning_tree split inst in
  check "spanning tree certified" true r.Nondet.accepted;
  check "bits O(cut·log n)" true
    (r.Nondet.bits
    <= 32
       * (List.length (Split.cut_vertices split ~alice:true)
         + List.length (Split.cut_vertices split ~alice:false)));
  let bad = Ch_pls.Verif.make g ~h:(List.tl tree) in
  let r_bad = Nondet.via_pls Ch_pls.Schemes.spanning_tree split bad in
  check "broken tree rejected" false r_bad.Nondet.accepted

let () =
  Alcotest.run "limits"
    [
      ( "bounded degree protocols (5.1-5.3)",
        [
          Alcotest.test_case "mvc" `Quick test_mvc_bounded;
          Alcotest.test_case "mds" `Quick test_mds_bounded;
          Alcotest.test_case "maxis" `Quick test_maxis_bounded;
        ] );
      ( "max cut protocols (5.4-5.5)",
        [
          Alcotest.test_case "unweighted" `Quick test_maxcut_unweighted;
          Alcotest.test_case "weighted 2/3" `Quick test_maxcut_two_thirds;
        ] );
      ( "general protocols (5.6, 5.8, 5.9)",
        [
          Alcotest.test_case "mvc 3/2" `Quick test_mvc_three_halves;
          Alcotest.test_case "mvc 1+eps (claim 5.7)" `Quick test_mvc_one_plus_eps;
          Alcotest.test_case "mds 2x" `Quick test_mds_two_approx;
          Alcotest.test_case "maxis 1/2" `Quick test_maxis_half;
        ] );
      ( "nondeterminism (5.11 + 5.2)",
        [
          Alcotest.test_case "flow certificates" `Quick test_flow_nondet;
          Alcotest.test_case "neq certificate" `Quick test_neq_protocol;
          Alcotest.test_case "pls bridge (thm 5.1)" `Quick test_via_pls;
        ] );
      ( "local aggregate (thm 4.8)",
        [
          Alcotest.test_case "simulation fidelity" `Quick test_aggregate_simulation;
          Alcotest.test_case "no shared vertices" `Quick test_aggregate_no_shared_is_free;
        ] );
    ]
