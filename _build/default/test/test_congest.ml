open Ch_graph
open Ch_solvers
open Ch_congest

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_bfs () =
  let g = Gen.random_connected ~seed:3 20 0.15 in
  let result, stats = Bfs.run ~root:0 g in
  let expected = Props.bfs_dist g 0 in
  check "distances" true (result.Bfs.dist = expected);
  check "parent consistent" true
    (Array.for_all Fun.id
       (Array.mapi
          (fun v p ->
            if v = 0 then p = -1
            else Graph.mem_edge g v p && result.Bfs.dist.(p) = result.Bfs.dist.(v) - 1)
          result.Bfs.parent));
  check "rounds near eccentricity" true
    (stats.Network.rounds <= Props.eccentricity g 0 + 3)

let test_leader () =
  let g = Gen.random_connected ~seed:5 15 0.2 in
  let leaders, _ = Leader.run g in
  check "all elect 0" true (Array.for_all (fun l -> l = 0) leaders)

let test_gather_m () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 14 0.25 in
      let answer, stats = Gather.solve g ~f:Graph.m in
      check_int "gather computes m" (Graph.m g) answer;
      check "rounds linear-ish" true
        (stats.Network.rounds <= (3 * (Graph.n g + Graph.m g)) + 20))
    [ 1; 2; 3 ]

let test_gather_weights () =
  let g = Gen.random_weights ~seed:7 (Gen.random_connected ~seed:7 12 0.3) in
  for v = 0 to 11 do
    Graph.set_vweight g v (v + 2)
  done;
  let total_w, _ = Gather.solve g ~f:Graph.total_edge_weight in
  check_int "edge weights survive gather" (Graph.total_edge_weight g) total_w;
  let total_vw, _ =
    Gather.solve g ~f:(fun g ->
        Array.fold_left ( + ) 0 (Graph.vweights g))
  in
  check_int "vertex weights survive gather" (12 * 13 / 2 + 12) total_vw

let test_gather_solves_mds () =
  let g = Gen.random_connected ~seed:11 13 0.25 in
  let gamma, _ = Gather.solve g ~f:Domset.min_size in
  check_int "distributed exact MDS" (Domset.min_size g) gamma

let test_run_split_accounting () =
  let g = Gen.random_connected ~seed:13 12 0.3 in
  let side = Array.init 12 (fun v -> v < 6) in
  let answer, cut_stats = Gather.solve_split ~side g ~f:Graph.m in
  check_int "answer unchanged" (Graph.m g) answer;
  let cut_edges = ref 0 in
  Graph.iter_edges (fun u v _ -> if side.(u) <> side.(v) then incr cut_edges) g;
  check "cut bits positive" true (cut_stats.Network.cut_bits > 0);
  check "cut bits bounded by rounds * cut * bandwidth" true
    (cut_stats.Network.cut_bits
    <= cut_stats.Network.stats.Network.rounds * !cut_edges
       * cut_stats.Network.stats.Network.bandwidth)

let test_bandwidth_respected () =
  let g = Gen.random_connected ~seed:17 25 0.15 in
  let _, stats = Gather.solve g ~f:Graph.m in
  check "messages fit bandwidth" true
    (stats.Network.max_message_bits <= stats.Network.bandwidth)

let test_maxcut_sample_exact_when_p1 () =
  let g = Gen.gnp ~seed:19 16 0.4 in
  let result = Maxcut_sample.run ~seed:2 ~p:1.0 g in
  check_int "p=1 recovers the exact max cut" (fst (Maxcut.max_cut g))
    result.Maxcut_sample.estimate;
  check_int "samples everything" (Graph.m g) result.Maxcut_sample.sampled_edges

let test_maxcut_sample_quality () =
  let g = Gen.gnp ~seed:23 18 0.5 in
  let exact = fst (Maxcut.max_cut g) in
  let result = Maxcut_sample.run ~seed:3 ~p:0.7 g in
  check "estimate within 30% for this seed" true
    (float_of_int result.Maxcut_sample.estimate >= 0.7 *. float_of_int exact
    && float_of_int result.Maxcut_sample.estimate <= 1.3 *. float_of_int exact)

let test_mds_greedy () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 14 0.2 in
      let set, _ = Mds_greedy.run g in
      check "greedy set dominates" true (Domset.is_dominating g set);
      let gamma = Domset.min_size g in
      check "greedy within H(deg+1) of optimum" true
        (List.length set <= 3 * gamma))
    [ 29; 31; 37 ]


let test_gather_topologies () =
  (* a deep tree (path) and a shallow one (star) both gather correctly *)
  List.iter
    (fun g ->
      let answer, _ = Gather.solve g ~f:Graph.m in
      Alcotest.(check int) "gather m on topology" (Graph.m g) answer)
    [ Gen.path 17; Gen.star 15; Gen.cycle 12; Gen.grid 3 5 ]

let test_bfs_nonzero_root () =
  let g = Gen.grid 4 4 in
  let result, _ = Bfs.run ~root:9 g in
  check "dist from root 9" true (result.Bfs.dist = Props.bfs_dist g 9)


let test_mis_greedy () =
  List.iter
    (fun seed ->
      let g = Gen.random_connected ~seed 16 0.25 in
      let set, _ = Mis_greedy.run g in
      check "independent" true (Mis.is_independent g set);
      (* maximality: every vertex is in the set or adjacent to it *)
      check "maximal" true
        (List.for_all
           (fun v ->
             List.mem v set
             || List.exists (fun u -> List.mem u set) (Graph.neighbors g v))
           (List.init 16 Fun.id));
      (* a maximal IS is a (Δ+1)-approximation of MaxIS *)
      check "(max degree + 1)-approximation" true
        ((Graph.max_degree g + 1) * List.length set >= Mis.alpha g))
    [ 43; 47; 53 ]

(* Lemmas 2.2 / 2.3: the folklore reductions preserve Hamiltonicity *)
let prop_lemma_2_2 =
  QCheck.Test.make ~name:"directed HC iff undirected HC of split graph" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 6))
    (fun (seed, n) ->
      let dg = Gen.random_digraph ~seed n 0.5 in
      (Hamilton.directed_cycle dg <> None)
      = (Hamilton.undirected_cycle (Transform.directed_to_undirected_hc dg)
        <> None))

and prop_lemma_2_3 =
  QCheck.Test.make ~name:"HC iff HP of the split-vertex graph" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 3 7))
    (fun (seed, n) ->
      let g = Gen.gnp ~seed n 0.55 in
      (Hamilton.undirected_cycle g <> None)
      = (Hamilton.undirected_path (fst (Transform.hc_to_hp g)) <> None))

and prop_transform_inverses =
  QCheck.Test.make ~name:"transform inverses" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 2 7))
    (fun (seed, n) ->
      let dg = Gen.random_digraph ~seed n 0.4 in
      let round_trip =
        Transform.undirected_to_directed_hc (Transform.directed_to_undirected_hc dg)
      in
      let g = Gen.gnp ~seed n 0.5 in
      Digraph.arcs round_trip = Digraph.arcs dg
      && Graph.edges (Transform.hp_to_hc (fst (Transform.hc_to_hp g)))
         = Graph.edges g)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "congest"
    [
      ( "primitives",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "leader" `Quick test_leader;
        ] );
      ( "gather",
        [
          Alcotest.test_case "edge count" `Quick test_gather_m;
          Alcotest.test_case "weights" `Quick test_gather_weights;
          Alcotest.test_case "exact mds" `Quick test_gather_solves_mds;
          Alcotest.test_case "split accounting" `Quick test_run_split_accounting;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth_respected;
          Alcotest.test_case "topologies" `Quick test_gather_topologies;
          Alcotest.test_case "bfs other roots" `Quick test_bfs_nonzero_root;
        ] );
      ( "theorem 2.9",
        [
          Alcotest.test_case "p=1 exact" `Quick test_maxcut_sample_exact_when_p1;
          Alcotest.test_case "sampling quality" `Quick test_maxcut_sample_quality;
        ] );
      ("mds greedy", [ Alcotest.test_case "approximation" `Quick test_mds_greedy ]);
      ("mis greedy", [ Alcotest.test_case "maximal IS" `Quick test_mis_greedy ]);
      ( "transforms",
        [ qt prop_lemma_2_2; qt prop_lemma_2_3; qt prop_transform_inverses ] );
    ]
