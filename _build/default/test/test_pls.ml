open Ch_graph
open Ch_pls

let check = Alcotest.(check bool)

(* a pool of instances exercising yes and no cases of every scheme *)
let instance_pool =
  let cycle6 = Gen.cycle 6 in
  let path5 = Gen.path 5 in
  let k4 = Gen.clique 4 in
  let grid = Gen.grid 2 3 in
  let all_edges g = List.map (fun (u, v, _) -> (u, v)) (Graph.edges g) in
  let connected8 = Gen.random_connected ~seed:5 8 0.3 in
  [
    (* H = all of G *)
    Verif.make ~s:0 ~t:4 ~e:(0, 1) cycle6 ~h:(all_edges cycle6);
    Verif.make ~s:0 ~t:4 ~e:(0, 1) path5 ~h:(all_edges path5);
    Verif.make ~s:0 ~t:3 ~e:(0, 1) k4 ~h:(all_edges k4);
    (* H = a spanning tree *)
    Verif.make ~s:0 ~t:3 ~e:(0, 1) k4 ~h:[ (0, 1); (1, 2); (2, 3) ];
    (* H = a path inside a grid *)
    Verif.make ~s:0 ~t:5 ~e:(0, 1) grid ~h:[ (0, 1); (1, 2); (2, 5) ];
    (* H empty *)
    Verif.make ~s:0 ~t:5 ~e:(0, 1) grid ~h:[];
    (* H = a perfect matching of C6 *)
    Verif.make ~s:0 ~t:3 ~e:(0, 1) cycle6 ~h:[ (0, 1); (2, 3); (4, 5) ];
    (* H = a triangle inside K4 *)
    Verif.make ~s:0 ~t:3 ~e:(0, 1) k4 ~h:[ (0, 1); (1, 2); (0, 2) ];
    (* random subgraphs of a random connected graph *)
    Verif.random_subinstance ~seed:1 connected8;
    Verif.random_subinstance ~seed:2 connected8;
    Verif.random_subinstance ~seed:3 ~density:0.8 connected8;
    Verif.random_subinstance ~seed:4 ~density:0.2 connected8;
  ]
  |> List.map (fun inst ->
         (* give s and t to the random instances too *)
         if inst.Verif.s = None then
           Verif.make ~s:0 ~t:(Graph.n inst.Verif.graph - 1) inst.Verif.graph
             ~h:inst.Verif.h
         else inst)

let exercise_scheme name scheme =
  let covered_yes = ref 0 and covered_no = ref 0 in
  List.iteri
    (fun i inst ->
      if scheme.Pls.predicate inst then incr covered_yes else incr covered_no;
      check
        (Printf.sprintf "%s completeness on instance %d" name i)
        true
        (Pls.check_completeness scheme inst);
      check
        (Printf.sprintf "%s soundness on instance %d" name i)
        true
        (Pls.check_soundness ~seed:(17 * i) ~attempts:30 scheme inst))
    instance_pool;
  (!covered_yes, !covered_no)

let test_all_named () =
  List.iter
    (fun (name, scheme) ->
      let yes, no = exercise_scheme name scheme in
      check (name ^ " exercised both polarities (or is st/e-specific)") true
        (yes + no = List.length instance_pool))
    Schemes.all_named

(* every scheme's label stays O(log n): measure on the pool *)
let test_label_sizes () =
  List.iter
    (fun (name, scheme) ->
      List.iter
        (fun inst ->
          if scheme.Pls.predicate inst then
            match scheme.Pls.prover inst with
            | None -> Alcotest.fail (name ^ ": prover refused a yes-instance")
            | Some labeling ->
                let n = Graph.n inst.Verif.graph in
                let logn =
                  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))
                in
                check
                  (Printf.sprintf "%s label size O(log n)" name)
                  true
                  (Pls.max_label_bits labeling <= 24 * logn))
        instance_pool)
    Schemes.all_named

(* polarity coverage: specific yes/no instances per predicate pair *)
let test_polarity_coverage () =
  let count_yes scheme =
    List.length (List.filter scheme.Pls.predicate instance_pool)
  in
  List.iter
    (fun (name, scheme) ->
      check (name ^ " has a yes-instance in the pool") true (count_yes scheme > 0))
    Schemes.all_named

let test_matching_schemes () =
  let g = Gen.cycle 6 in
  let inst = Verif.make g ~h:(List.map (fun (u, v, _) -> (u, v)) (Graph.edges g)) in
  (* ν(C6) = 3 *)
  List.iter
    (fun k ->
      let ge = Schemes.matching_ge k and lt = Schemes.matching_lt k in
      check
        (Printf.sprintf "matching-ge-%d completeness" k)
        true
        (Pls.check_completeness ge inst);
      check
        (Printf.sprintf "matching-ge-%d soundness" k)
        true
        (Pls.check_soundness ~seed:k ~attempts:30 ge inst);
      check
        (Printf.sprintf "matching-lt-%d completeness" k)
        true
        (Pls.check_completeness lt inst);
      check
        (Printf.sprintf "matching-lt-%d soundness" k)
        true
        (Pls.check_soundness ~seed:(k + 7) ~attempts:30 lt inst))
    [ 1; 2; 3; 4; 5 ];
  (* an odd component forces a Tutte-Berge certificate with nonempty U *)
  let star = Gen.star 6 in
  let inst_star =
    Verif.make star ~h:(List.map (fun (u, v, _) -> (u, v)) (Graph.edges star))
  in
  check "star matching-lt-2 completeness" true
    (Pls.check_completeness (Schemes.matching_lt 2) inst_star);
  check "star matching-ge-2 soundness" true
    (Pls.check_soundness ~seed:3 ~attempts:40 (Schemes.matching_ge 2) inst_star)

let test_wdist_schemes () =
  let g = Graph.create 5 in
  List.iter
    (fun (u, v, w) -> Graph.add_edge ~w g u v)
    [ (0, 1, 2); (1, 2, 3); (2, 4, 4); (0, 3, 1); (3, 4, 20) ];
  (* dist(0,4) = 9 *)
  let inst = Verif.make ~s:0 ~t:4 g ~h:[] in
  List.iter
    (fun k ->
      let ge = Schemes.wdist_ge k and lt = Schemes.wdist_lt k in
      check (Printf.sprintf "wdist-ge-%d completeness" k) true
        (Pls.check_completeness ge inst);
      check (Printf.sprintf "wdist-ge-%d soundness" k) true
        (Pls.check_soundness ~seed:k ~attempts:30 ge inst);
      check (Printf.sprintf "wdist-lt-%d completeness" k) true
        (Pls.check_completeness lt inst);
      check (Printf.sprintf "wdist-lt-%d soundness" k) true
        (Pls.check_soundness ~seed:(k + 5) ~attempts:30 lt inst))
    [ 5; 9; 10; 15 ]

(* adversarial (not merely random) labelings for key schemes *)
let test_adversarial_spanning_tree () =
  let g = Gen.clique 4 in
  (* H is NOT a tree (a cycle): try the labeling of a real tree *)
  let bad = Verif.make g ~h:[ (0, 1); (1, 2); (2, 0) ] in
  check "predicate is false" false (Schemes.spanning_tree.Pls.predicate bad);
  let fake = [| [ 0; 0 ]; [ 0; 1 ]; [ 0; 1 ]; [ 0; 2 ] |] in
  check "fake tree labels rejected" false
    (Pls.accepts Schemes.spanning_tree bad fake)

let test_adversarial_ham_cycle () =
  (* two disjoint triangles marked in a 6-vertex graph: all H-degrees are
     2 but there is no hamiltonian cycle; consistent mod-enumeration
     labelings must be rejected *)
  let g = Graph.create 6 in
  List.iter
    (fun (u, v) -> Graph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (0, 3) ];
  let inst =
    Verif.make g ~h:[ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ]
  in
  check "predicate false" false (Schemes.hamiltonian_cycle.Pls.predicate inst);
  (* enumerate both triangles 0,1,2 / 3,4,5 — the ±1 mod 6 rule fails *)
  let fake = [| [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ]; [ 5 ] |] in
  check "fake enumeration rejected" false
    (Pls.accepts Schemes.hamiltonian_cycle inst fake);
  check "negation scheme accepts its own certificate" true
    (Pls.check_completeness Schemes.not_hamiltonian_cycle inst)


(* exhaustive soundness on tiny instances: for 1-field-label schemes,
   enumerate *every* labeling over a small field domain and confirm that
   no labeling is accepted on a no-instance *)
let test_exhaustive_soundness_tiny () =
  let enumerate_labelings n domain f =
    let total = int_of_float (float_of_int domain ** float_of_int n) in
    for code = 0 to total - 1 do
      let rest = ref code in
      let labeling =
        Array.init n (fun _ ->
            let v = !rest mod domain in
            rest := !rest / domain;
            [ v ])
      in
      f labeling
    done
  in
  let cases =
    [
      (* C4 with H = 3 edges of the cycle: not a hamiltonian cycle *)
      ( "hamiltonian-cycle",
        Schemes.hamiltonian_cycle,
        Verif.make (Gen.cycle 4) ~h:[ (0, 1); (1, 2); (2, 3) ],
        6 );
      (* triangle fully marked: not bipartite *)
      ( "bipartite",
        Schemes.bipartite,
        Verif.make (Gen.clique 3) ~h:[ (0, 1); (1, 2); (0, 2) ],
        4 );
      (* a forest: no cycle to mark *)
      ( "has-cycle",
        Schemes.has_cycle,
        Verif.make (Gen.path 4) ~h:[ (0, 1); (2, 3) ],
        6 );
      (* s and t in separate H components: st-connected must reject all *)
      ( "st-connected",
        Schemes.st_connected,
        Verif.make ~s:0 ~t:3 (Gen.path 4) ~h:[ (0, 1); (2, 3) ],
        8 );
    ]
  in
  List.iter
    (fun (name, scheme, inst, domain) ->
      check (name ^ " predicate is false") false (scheme.Pls.predicate inst);
      let n = Graph.n inst.Verif.graph in
      let accepted = ref 0 in
      enumerate_labelings n domain (fun labeling ->
          if Pls.accepts scheme inst labeling then incr accepted);
      Alcotest.(check int) (name ^ " exhaustively sound") 0 !accepted)
    cases

let () =
  Alcotest.run "pls"
    [
      ( "schemes",
        [
          Alcotest.test_case "completeness+soundness sweep" `Slow test_all_named;
          Alcotest.test_case "label sizes" `Quick test_label_sizes;
          Alcotest.test_case "polarity coverage" `Quick test_polarity_coverage;
        ] );
      ( "parameterized",
        [
          Alcotest.test_case "matching" `Quick test_matching_schemes;
          Alcotest.test_case "weighted distance" `Quick test_wdist_schemes;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "spanning tree" `Quick test_adversarial_spanning_tree;
          Alcotest.test_case "hamiltonian cycle" `Quick test_adversarial_ham_cycle;
          Alcotest.test_case "exhaustive tiny soundness" `Quick
            test_exhaustive_soundness_tiny;
        ] );
    ]
