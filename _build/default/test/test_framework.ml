open Ch_cc
open Ch_core
open Ch_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bits / Commfn                                                       *)
(* ------------------------------------------------------------------ *)

let test_bits_basics () =
  let b = Bits.of_list [ true; false; true ] in
  check_int "length" 3 (Bits.length b);
  check "get" true (Bits.get b 0);
  check "set is functional" false (Bits.get (Bits.set b 0 false) 0 || not (Bits.get b 0));
  check_int "popcount" 2 (Bits.popcount b);
  Alcotest.(check string) "to_string" "101" (Bits.to_string b);
  check_int "all 3" 8 (List.length (Bits.all 3));
  let p = Bits.set_pair ~k:2 (Bits.zeros 4) 1 0 true in
  check "pair indexing row-major" true (Bits.get p 2);
  check "get_pair" true (Bits.get_pair ~k:2 p 1 0)

let prop_disj_symmetric =
  QCheck.Test.make ~name:"disjointness is symmetric" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let x = Bits.random ~seed:s1 12 and y = Bits.random ~seed:s2 12 in
      Commfn.disj x y = Commfn.disj y x)

let prop_witness_sound =
  QCheck.Test.make ~name:"disjointness witness is sound" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let x = Bits.random ~seed:s1 12 and y = Bits.random ~seed:s2 12 in
      match Commfn.witness x y with
      | Some i -> Bits.get x i && Bits.get y i
      | None -> Commfn.disj x y)

let prop_witness_diff_sound =
  QCheck.Test.make ~name:"difference witness is sound" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let x = Bits.random ~seed:s1 12 and y = Bits.random ~seed:s2 12 in
      match Commfn.witness_diff x y with
      | Some i -> Bits.get x i <> Bits.get y i
      | None -> Commfn.eq x y)

let test_protocol_accounting () =
  let ch = Protocol.create () in
  check_int "empty" 0 (Protocol.bits ch);
  ignore (Protocol.send_bool ch true);
  check_int "bool = 1 bit" 1 (Protocol.bits ch);
  ignore (Protocol.send_int ch ~max:255 17);
  check_int "byte-sized int" 9 (Protocol.bits ch);
  check_int "width of 0..1" 1 (Protocol.bits_for_int ~max:1);
  check_int "width of 0..7" 3 (Protocol.bits_for_int ~max:7);
  check_int "width of 0..8" 4 (Protocol.bits_for_int ~max:8);
  Alcotest.check_raises "range checked"
    (Invalid_argument "Protocol.send_int: out of range") (fun () ->
      ignore (Protocol.send_int ch ~max:3 9))


let test_eq_fingerprint () =
  let x = Bits.random ~seed:3 96 in
  List.iter
    (fun seed ->
      let r = Randomized.eq_fingerprint ~seed x x in
      check "equal strings always accepted" true r.Randomized.equal;
      check "O(log K) bits" true (r.Randomized.bits <= 40))
    [ 1; 2; 3 ];
  (* one-sided error: across many unequal pairs and seeds, no collision
     with these fixed seeds *)
  let collisions = ref 0 in
  for i = 0 to 49 do
    let a = Bits.random ~seed:(2 * i) 96 and b = Bits.random ~seed:(2 * i + 1) 96 in
    if not (Commfn.eq a b) then begin
      let r = Randomized.eq_fingerprint ~seed:(100 + i) a b in
      if r.Randomized.equal then incr collisions
    end
  done;
  Alcotest.(check int) "no collisions at these seeds" 0 !collisions

(* ------------------------------------------------------------------ *)
(* Framework plumbing                                                  *)
(* ------------------------------------------------------------------ *)

let toy_family =
  (* an intentionally broken family: P = "graph has an edge between 0 and
     1" but f = intersecting on 2-bit inputs, where the edge appears only
     when x₀ = 1 — so verify must catch mismatches *)
  {
    Framework.name = "toy";
    params = [];
    input_bits = 2;
    nvertices = 4;
    side = [| true; true; false; false |];
    build =
      (fun x _ ->
        let g = Graph.create 4 in
        Graph.add_edge g 1 2;
        if Bits.get x 0 then Graph.add_edge g 0 1;
        Framework.Undirected g);
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Graph.mem_edge g 0 1
        | _ -> false);
    f = Commfn.intersecting;
  }

let test_verify_detects_mismatch () =
  let failures, total = Framework.verify_exhaustive toy_family in
  check_int "sixteen pairs" 16 total;
  check "mismatches found" true (failures > 0)

let test_cut_edges () =
  check "cut is the 1-2 edge" true (Framework.cut_edges toy_family = [ (1, 2) ]);
  check_int "cut size" 1 (Framework.cut_size toy_family)

let test_sidedness_detects_violation () =
  (* y changing Alice's side must be flagged *)
  let bad =
    {
      toy_family with
      Framework.build =
        (fun _ y ->
          let g = Graph.create 4 in
          Graph.add_edge g 1 2;
          if Bits.get y 0 then Graph.add_edge g 0 1;
          Framework.Undirected g);
    }
  in
  check "violation detected" false
    (Framework.check_sidedness ~seed:3 ~samples:10 bad)

let test_reduce_composes () =
  let base = Ch_lbgraphs.Mds_lb.family ~k:2 in
  let doubled =
    Framework.reduce ~name:"identity-with-terminals"
      ~transform:(fun inst ->
        match inst with
        | Framework.Undirected g -> Framework.With_terminals (g, [ 0; 1 ])
        | _ -> assert false)
      ~nvertices:base.Framework.nvertices ~side:base.Framework.side
      ~predicate:(fun inst ->
        match inst with
        | Framework.With_terminals (g, _) ->
            Ch_solvers.Domset.min_size g <= Ch_lbgraphs.Mds_lb.target_size ~k:2
        | _ -> assert false)
      base
  in
  let failures, total = Framework.verify_exhaustive doubled in
  check_int "reduced family still verifies" 0 failures;
  check_int "all pairs" 256 total

let test_lower_bound_formula () =
  (* K / (cut · log2 n) with n = 1024, cut = 8, K = 2^20 *)
  Alcotest.(check (float 0.001))
    "formula" 13107.2
    (Framework.lower_bound_rounds ~input_bits:(1 lsl 20) ~cut:8 ~n:1024)

(* ------------------------------------------------------------------ *)
(* Network misbehavior handling                                        *)
(* ------------------------------------------------------------------ *)

let silly_algo ~bits ~target : (int, int) Ch_congest.Network.algo =
  {
    name = "silly";
    init = (fun _ -> 0);
    round =
      (fun ctx ~round _ _ ->
        if round = 0 && ctx.Ch_congest.Network.id = 0 then (1, [ (target, 42) ])
        else (1, []));
    msg_bits = (fun _ -> bits);
    output = (fun st -> if st > 0 then Some st else None);
  }

let test_bandwidth_violation () =
  let g = Gen.path 4 in
  match Ch_congest.Network.run g (silly_algo ~bits:10_000 ~target:1) with
  | exception Ch_congest.Network.Bandwidth_exceeded _ -> ()
  | _ -> Alcotest.fail "expected Bandwidth_exceeded"

let test_non_neighbor_send () =
  let g = Gen.path 4 in
  match Ch_congest.Network.run g (silly_algo ~bits:4 ~target:3) with
  | exception Failure msg ->
      check "mentions adjacency" true
        (String.length msg > 0
        && String.length msg >= 10)
  | _ -> Alcotest.fail "expected failure for non-neighbor send"

let test_non_terminating_algo () =
  let g = Gen.path 3 in
  let never : (int, int) Ch_congest.Network.algo =
    {
      name = "never";
      init = (fun _ -> 0);
      round = (fun _ ~round:_ st _ -> (st, []));
      msg_bits = (fun _ -> 1);
      output = (fun _ -> None);
    }
  in
  match Ch_congest.Network.run ~max_rounds:50 g never with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected termination failure"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "framework"
    [
      ( "cc",
        [
          Alcotest.test_case "bits" `Quick test_bits_basics;
          Alcotest.test_case "protocol accounting" `Quick test_protocol_accounting;
          qt prop_disj_symmetric;
          qt prop_witness_sound;
          qt prop_witness_diff_sound;
          Alcotest.test_case "randomized EQ fingerprint" `Quick test_eq_fingerprint;
        ] );
      ( "framework",
        [
          Alcotest.test_case "verify catches bad families" `Quick
            test_verify_detects_mismatch;
          Alcotest.test_case "cut edges" `Quick test_cut_edges;
          Alcotest.test_case "sidedness violations" `Quick
            test_sidedness_detects_violation;
          Alcotest.test_case "theorem 2.6 reduce" `Quick test_reduce_composes;
          Alcotest.test_case "lower bound formula" `Quick test_lower_bound_formula;
        ] );
      ( "network guards",
        [
          Alcotest.test_case "bandwidth enforced" `Quick test_bandwidth_violation;
          Alcotest.test_case "adjacency enforced" `Quick test_non_neighbor_send;
          Alcotest.test_case "max rounds enforced" `Quick test_non_terminating_algo;
        ] );
    ]
