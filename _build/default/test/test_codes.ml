open Ch_codes

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_primality () =
  check "2 prime" true (Gf.is_prime 2);
  check "17 prime" true (Gf.is_prime 17);
  check "1 not" false (Gf.is_prime 1);
  check "91 not" false (Gf.is_prime 91);
  check_int "next prime 14" 17 (Gf.next_prime 14);
  check_int "next prime 17" 17 (Gf.next_prime 17);
  Alcotest.check_raises "composite rejected"
    (Invalid_argument "Gf.create: modulus must be prime") (fun () ->
      ignore (Gf.create 15))

let test_field_ops () =
  let f = Gf.create 13 in
  check_int "add" 2 (Gf.add f 8 7);
  check_int "sub" 12 (Gf.sub f 3 4);
  check_int "mul" 4 (Gf.mul f 8 7);
  check_int "pow" 8 (Gf.pow f 2 3);
  check_int "eval" ((3 + (2 * 5) + (5 * 5)) mod 13) (Gf.eval_poly f [| 3; 2; 1 |] 5)

let prop_inverse =
  QCheck.Test.make ~name:"x * inv x = 1 in GF(p)" ~count:100
    QCheck.(pair (int_range 0 30) (int_range 1 1000))
    (fun (pi, x) ->
      let p = Gf.next_prime (pi + 2) in
      let f = Gf.create p in
      let x = 1 + (x mod (p - 1)) in
      Gf.mul f x (Gf.inv f x) = 1)

let prop_fermat =
  QCheck.Test.make ~name:"fermat little theorem" ~count:100
    QCheck.(pair (int_range 0 30) (int_range 0 1000))
    (fun (pi, x) ->
      let p = Gf.next_prime (pi + 2) in
      let f = Gf.create p in
      let x = x mod p in
      Gf.pow f x p = x)

let test_rs_params () =
  let code = Reed_solomon.create ~len:5 ~dim:2 ~q:7 in
  check_int "length" 5 (Reed_solomon.length code);
  check_int "dimension" 2 (Reed_solomon.dimension code);
  check_int "distance" 4 (Reed_solomon.distance code);
  check_int "field" 7 (Reed_solomon.field_order code);
  let c = Reed_solomon.encode code [| 3; 2 |] in
  (* polynomial 3 + 2x evaluated at 0..4 *)
  check "codeword" true (c = [| 3; 5; 0; 2; 4 |])

let prop_rs_distance =
  QCheck.Test.make ~name:"all codeword pairs at hamming distance >= d" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let dim = 1 + Random.State.int rng 2 in
      let len = dim + 1 + Random.State.int rng 4 in
      let q = Gf.next_prime (len + 1) in
      let code = Reed_solomon.create ~len ~dim ~q in
      let k = min 20 (int_of_float (float_of_int q ** float_of_int dim)) in
      let words = Reed_solomon.injection code k in
      let d = Reed_solomon.distance code in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b -> if i < j && Reed_solomon.hamming a b < d then ok := false)
            words)
        words;
      !ok)

let prop_rs_linear =
  QCheck.Test.make ~name:"encoding is linear" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = 11 in
      let code = Reed_solomon.create ~len:7 ~dim:3 ~q in
      let f = Gf.create q in
      let msg () = Array.init 3 (fun _ -> Random.State.int rng q) in
      let a = msg () and b = msg () in
      let sum = Array.init 3 (fun i -> Gf.add f a.(i) b.(i)) in
      let ca = Reed_solomon.encode code a
      and cb = Reed_solomon.encode code b
      and cs = Reed_solomon.encode code sum in
      Array.for_all Fun.id (Array.init 7 (fun i -> Gf.add f ca.(i) cb.(i) = cs.(i))))

let test_rs_injection () =
  let code = Reed_solomon.create ~len:4 ~dim:2 ~q:5 in
  let words = Reed_solomon.injection code 25 in
  check_int "count" 25 (Array.length words);
  let distinct = List.sort_uniq compare (Array.to_list words) in
  check_int "distinct" 25 (List.length distinct);
  Alcotest.check_raises "too many"
    (Invalid_argument "Reed_solomon.injection: k too large") (fun () ->
      ignore (Reed_solomon.injection code 26))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "codes"
    [
      ( "gf",
        [
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "field ops" `Quick test_field_ops;
          qt prop_inverse;
          qt prop_fermat;
        ] );
      ( "reed-solomon",
        [
          Alcotest.test_case "parameters" `Quick test_rs_params;
          qt prop_rs_distance;
          qt prop_rs_linear;
          Alcotest.test_case "injection" `Quick test_rs_injection;
        ] );
    ]
