test/test_limits.ml: Aggregate Alcotest Approx_protocols Array Ch_cc Ch_graph Ch_lbgraphs Ch_limits Ch_pls Ch_solvers Domset Flow Fun Gen Graph List Maxcut Mis Nondet Random Split
