test/test_solvers.ml: Alcotest Array Ch_graph Ch_solvers Digraph Domset Ecss Flow Fun Gen Graph Hamilton List Matching Maxcut Mis Option Props QCheck QCheck_alcotest Random Spanner Steiner Union_find
