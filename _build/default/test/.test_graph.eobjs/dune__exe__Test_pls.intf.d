test/test_pls.mli:
