test/test_codes.ml: Alcotest Array Ch_codes Fun Gf List QCheck QCheck_alcotest Random Reed_solomon
