test/test_framework.ml: Alcotest Bits Ch_cc Ch_congest Ch_core Ch_graph Ch_lbgraphs Ch_solvers Commfn Framework Gen Graph List Protocol QCheck QCheck_alcotest Randomized String
