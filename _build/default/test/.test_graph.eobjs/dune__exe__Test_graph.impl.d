test/test_graph.ml: Alcotest Array Bitset Ch_graph Digraph Expander Gen Graph List Props QCheck QCheck_alcotest String
