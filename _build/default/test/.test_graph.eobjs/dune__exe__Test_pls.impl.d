test/test_pls.ml: Alcotest Array Ch_graph Ch_pls Gen Graph List Pls Printf Schemes Verif
