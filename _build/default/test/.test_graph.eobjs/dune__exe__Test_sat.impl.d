test/test_sat.ml: Alcotest Array Ch_graph Ch_sat Ch_solvers Cnf Gen Graph List Mis Printf QCheck QCheck_alcotest Random Sat_reductions
