(* The Theorem 1.1 reduction, end to end.

   A CONGEST algorithm that decides "γ(G) ≤ 4 log k + 2" is run on the
   Figure 1 graph G_{x,y} with Alice simulating V_A and Bob V_B.  The only
   information that crosses between the players is the messages on E_cut —
   which the harness counts bit by bit.  Because the predicate equals
   ¬DISJ(x,y), the two players end up solving set disjointness, so the
   number of crossing bits is at least CC(DISJ_{k²}) = Ω(k²); dividing by
   |E_cut|·log n gives the paper's Ω̃(n²) round bound.

   Run with: dune exec examples/alice_bob.exe *)

open Ch_cc
open Ch_core
open Ch_lbgraphs

let () =
  let k = 4 in
  let fam = Mds_lb.family ~k in
  let target = Mds_lb.target_size ~k in
  Printf.printf
    "Simulating the gather-and-solve CONGEST algorithm for exact MDS on\n\
     G_{x,y} (k = %d, n = %d, |E_cut| = %d), with Alice and Bob splitting\n\
     the graph.\n\n"
    k fam.Framework.nvertices (Framework.cut_size fam);
  Printf.printf "  %-18s %-18s %-8s %-10s %-8s %s\n" "x" "y" "DISJ?" "decided" "rounds"
    "cut bits";
  let run x y =
    let sim =
      Framework.simulate_alice_bob fam ~solver:Ch_solvers.Domset.min_size
        ~accept:(fun gamma -> gamma <= target)
        x y
    in
    Printf.printf "  %-18s %-18s %-8b %-10s %-8d %d\n" (Bits.to_string x)
      (Bits.to_string y)
      (Commfn.disj x y)
      (if sim.Framework.decision_correct then "correct" else "WRONG")
      sim.Framework.rounds sim.Framework.cut_bits
  in
  run (Bits.ones 16) (Bits.zeros 16);
  run (Bits.ones 16) (Bits.ones 16);
  for i = 0 to 5 do
    let x = Bits.random ~seed:i ~density:0.8 16 in
    let y = Bits.random ~seed:(50 + i) ~density:0.8 16 in
    run x y
  done;
  Printf.printf
    "\nEvery decision is correct, so the transcript solves DISJ_{k²}: the\n\
     crossing bits must total Ω(k²) over worst-case inputs, no matter how\n\
     clever the CONGEST algorithm is.  That is Theorem 1.1.\n"
