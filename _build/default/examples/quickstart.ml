(* Quickstart: build the paper's Figure 1 lower-bound family for minimum
   dominating set, check its defining property on a few inputs, and print
   the round lower bound it certifies.

   Run with: dune exec examples/quickstart.exe *)

open Ch_cc
open Ch_core
open Ch_lbgraphs

let () =
  let k = 4 in
  let fam = Mds_lb.family ~k in
  Printf.printf "Family %S with k = %d:\n" fam.Framework.name k;
  Printf.printf "  vertices      : %d\n" fam.Framework.nvertices;
  Printf.printf "  input bits K  : %d (per player)\n" fam.Framework.input_bits;
  Printf.printf "  |E_cut|       : %d\n" (Framework.cut_size fam);
  Printf.printf "  MDS target    : %d  (= 4 log k + 2)\n\n" (Mds_lb.target_size ~k);

  (* the defining iff: the graph has a dominating set of the target size
     exactly when the input strings intersect *)
  let show x y =
    let intersects = Commfn.intersecting x y in
    let holds = fam.Framework.predicate (fam.Framework.build x y) in
    Printf.printf "  x = %s  y = %s   intersecting = %-5b  P(G_xy) = %-5b  %s\n"
      (Bits.to_string x) (Bits.to_string y) intersects holds
      (if intersects = holds then "ok" else "MISMATCH")
  in
  Printf.printf "Checking the Lemma 2.1 property on sample inputs:\n";
  show (Bits.zeros 16) (Bits.zeros 16);
  show (Bits.ones 16) (Bits.ones 16);
  show (Bits.ones 16) (Bits.zeros 16);
  for i = 0 to 3 do
    show (Bits.random ~seed:i 16) (Bits.random ~seed:(100 + i) 16)
  done;

  (* randomized verification plus the Definition 1.1 side conditions *)
  let failures, total = Framework.verify_random ~seed:42 ~samples:30 fam in
  Printf.printf "\nRandomized verification: %d failures out of %d pairs\n" failures total;
  Printf.printf "Definition 1.1 side conditions hold: %b\n"
    (Framework.check_sidedness ~seed:7 ~samples:10 fam);

  (* what Theorem 1.1 gives: Ω(K / (|E_cut| log n)) rounds *)
  Printf.printf "\nTheorem 1.1 lower bounds certified by this family:\n";
  Printf.printf "  %6s %8s %6s %6s %14s\n" "k" "n" "K" "cut" "LB (rounds)";
  List.iter
    (fun k ->
      let fam = Mds_lb.family ~k in
      let lb =
        Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits
          ~cut:(Framework.cut_size fam) ~n:fam.Framework.nvertices
      in
      Printf.printf "  %6d %8d %6d %6d %14.1f\n" k fam.Framework.nvertices
        fam.Framework.input_bits (Framework.cut_size fam) lb)
    [ 4; 16; 64; 256; 1024 ]
