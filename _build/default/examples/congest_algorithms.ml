(* The paper's upper-bound side: CONGEST algorithms in the simulator.

   - the generic exact algorithm (BFS + pipelined gather + local solve +
     broadcast) that meets the Ω̃(n²) bounds at O(m + D) rounds;
   - Theorem 2.9's (1−ε)-approximate max cut by edge sampling;
   - the greedy O(log Δ)-approximation for MDS.

   Run with: dune exec examples/congest_algorithms.exe *)

open Ch_graph
open Ch_solvers
open Ch_congest

let () =
  let g = Gen.random_connected ~seed:12 24 0.25 in
  Printf.printf "Network: n = %d, m = %d, diameter = %d\n\n" (Graph.n g) (Graph.m g)
    (Props.diameter g);

  (* exact MDS by learning the whole graph *)
  let gamma, stats = Gather.solve g ~f:Domset.min_size in
  Printf.printf "Exact MDS via gather-and-solve:\n";
  Printf.printf "  γ(G) = %d,  rounds = %d,  messages = %d,  B = %d bits\n\n" gamma
    stats.Network.rounds stats.Network.messages stats.Network.bandwidth;

  (* Theorem 2.9 *)
  let exact_cut = fst (Maxcut.max_cut g) in
  Printf.printf "Theorem 2.9 (1-ε)-approximate max cut (exact optimum = %d):\n"
    exact_cut;
  List.iter
    (fun p ->
      let r = Maxcut_sample.run ~seed:7 ~p g in
      Printf.printf
        "  p = %.2f: sampled %3d/%d edges, estimate = %3d (%.2f of optimum), rounds = %d\n"
        p r.Maxcut_sample.sampled_edges (Graph.m g) r.Maxcut_sample.estimate
        (float_of_int r.Maxcut_sample.estimate /. float_of_int exact_cut)
        r.Maxcut_sample.stats.Network.rounds)
    [ 1.0; 0.8; 0.6; 0.4 ];

  (* greedy maximal independent set *)
  let mis_set, mis_stats = Mis_greedy.run g in
  Printf.printf "\nGreedy maximal IS ((Δ+1)-approximation baseline):\n";
  Printf.printf "  |I| = %d (α = %d), independent = %b, rounds = %d\n"
    (List.length mis_set) (Mis.alpha g)
    (Mis.is_independent g mis_set)
    mis_stats.Network.rounds;

  (* greedy MDS *)
  let set, greedy_stats = Mds_greedy.run g in
  Printf.printf "\nGreedy MDS (H(Δ+1)-approximation, global election per phase):\n";
  Printf.printf "  |D| = %d (optimum %d), dominating = %b, rounds = %d\n"
    (List.length set) gamma
    (Domset.is_dominating g set)
    greedy_stats.Network.rounds
