examples/congest_algorithms.mli:
