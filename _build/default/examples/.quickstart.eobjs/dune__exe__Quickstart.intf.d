examples/quickstart.mli:
