examples/hardness_tour.mli:
