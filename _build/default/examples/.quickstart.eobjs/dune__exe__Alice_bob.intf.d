examples/alice_bob.mli:
