examples/pls_demo.mli:
