examples/pls_demo.ml: Array Ch_graph Ch_pls Ch_solvers Fun Gen Graph List Pls Printf Props Schemes Verif
