examples/quickstart.ml: Bits Ch_cc Ch_core Ch_lbgraphs Commfn Framework List Mds_lb Printf
