examples/alice_bob.ml: Bits Ch_cc Ch_core Ch_lbgraphs Ch_solvers Commfn Framework Mds_lb Printf
