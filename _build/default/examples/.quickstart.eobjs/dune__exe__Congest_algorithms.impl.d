examples/congest_algorithms.ml: Ch_congest Ch_graph Ch_solvers Domset Gather Gen Graph List Maxcut Maxcut_sample Mds_greedy Mis Mis_greedy Network Printf Props
