(* Proof labeling schemes in action (Section 5.2): provers label, local
   verifiers accept or reject, and the label width bounds the
   nondeterministic two-party communication via Theorem 5.1.

   Run with: dune exec examples/pls_demo.exe *)

open Ch_graph
open Ch_pls

let show name scheme inst =
  let truth = scheme.Pls.predicate inst in
  match scheme.Pls.prover inst with
  | Some labeling when truth ->
      Printf.printf "  %-24s predicate=true   accepted=%b  max label = %d bits\n"
        name
        (Pls.accepts scheme inst labeling)
        (Pls.max_label_bits labeling)
  | None when not truth ->
      Printf.printf "  %-24s predicate=false  prover declines (as it must)\n" name
  | _ -> Printf.printf "  %-24s INCONSISTENT prover\n" name

let () =
  let g = Gen.random_connected ~seed:3 12 0.3 in
  Printf.printf "Instance: n = %d, m = %d\n" (Graph.n g) (Graph.m g);

  (* H = a BFS spanning tree of G *)
  let parent = Props.bfs_tree g 0 in
  let tree_edges =
    List.filter_map
      (fun v -> if parent.(v) >= 0 then Some (min v parent.(v), max v parent.(v)) else None)
      (List.init (Graph.n g) Fun.id)
  in
  let tree_inst = Verif.make ~s:0 ~t:11 g ~h:tree_edges in
  Printf.printf "\nH = a BFS spanning tree:\n";
  List.iter
    (fun (name, scheme) -> show name scheme tree_inst)
    [
      ("spanning-tree", Schemes.spanning_tree);
      ("not-spanning-tree", Schemes.not_spanning_tree);
      ("connected", Schemes.connected);
      ("acyclic", Schemes.acyclic);
      ("st-connected", Schemes.st_connected);
      ("bipartite", Schemes.bipartite);
    ];

  (* H = everything: matching and hamiltonicity views *)
  let full_inst =
    Verif.make ~s:0 ~t:11 g ~h:(List.map (fun (u, v, _) -> (u, v)) (Graph.edges g))
  in
  let nu = Ch_solvers.Matching.nu g in
  Printf.printf "\nH = G (ν(G) = %d):\n" nu;
  show "matching-ge-ν" (Schemes.matching_ge nu) full_inst;
  show "matching-ge-(ν+1)" (Schemes.matching_ge (nu + 1)) full_inst;
  show "matching-lt-(ν+1)" (Schemes.matching_lt (nu + 1)) full_inst;
  show "hamiltonian-cycle" Schemes.hamiltonian_cycle full_inst;
  show "not-hamiltonian-cycle" Schemes.not_hamiltonian_cycle full_inst;

  (* a cycle where the hamiltonian-cycle scheme accepts *)
  let c8 = Gen.cycle 8 in
  let cyc_inst =
    Verif.make c8 ~h:(List.map (fun (u, v, _) -> (u, v)) (Graph.edges c8))
  in
  Printf.printf "\nH = G = C₈:\n";
  show "hamiltonian-cycle" Schemes.hamiltonian_cycle cyc_inst;
  show "simple-path" Schemes.simple_path cyc_inst;
  show "has-cycle" Schemes.has_cycle cyc_inst;

  Printf.printf
    "\nEvery label above is O(log n) bits, so by Theorem 5.1 Alice and Bob can\n\
     verify these predicates nondeterministically with O(|E_cut| log n) bits —\n\
     which by Corollary 5.3 caps what Theorem 1.1 could ever prove about them.\n"
