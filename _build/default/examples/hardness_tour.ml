(* A tour of every lower-bound family in the library: construct it, verify
   its defining iff-property on random inputs, and print the structural
   quantities that feed Theorem 1.1.

   Run with: dune exec examples/hardness_tour.exe *)

open Ch_core
open Ch_lbgraphs

let tour fam ~samples =
  let failures, total = Framework.verify_random ~seed:9 ~samples fam in
  let cut = Framework.cut_size fam in
  let lb =
    Framework.lower_bound_rounds ~input_bits:fam.Framework.input_bits ~cut
      ~n:fam.Framework.nvertices
  in
  Printf.printf "%-44s n=%5d  K=%5d  cut=%4d  verified %d/%d  LB=%8.1f\n"
    fam.Framework.name fam.Framework.nvertices fam.Framework.input_bits cut
    (total - failures) total lb

let () =
  Printf.printf
    "family                                        n      K     cut   property        Ω(rounds)\n";
  Printf.printf "%s\n" (String.make 100 '-');
  tour (Mds_lb.family ~k:2) ~samples:20;
  tour (Mds_lb.family ~k:4) ~samples:10;
  tour (Maxis_lb.family ~k:4) ~samples:20;
  tour (Maxis_lb.mvc_family ~k:4) ~samples:20;
  tour (Hampath_lb.path_family ~k:2) ~samples:16;
  tour (Hampath_lb.cycle_family ~k:2) ~samples:10;
  tour (Hampath_lb.undirected_cycle_family ~k:2) ~samples:8;
  tour (Hampath_lb.undirected_path_family ~k:2) ~samples:8;
  tour (Hampath_lb.ecss_family ~k:2) ~samples:8;
  tour (Steiner_lb.family ~k:2) ~samples:6;
  tour (Maxcut_lb.family ~k:2) ~samples:6;
  tour (Spanner_lb.family ~k:2) ~samples:6;
  let p = Maxis_approx_lb.make_params ~ell:2 ~k:2 () in
  tour (Maxis_approx_lb.weighted_family p) ~samples:12;
  tour (Maxis_approx_lb.unweighted_family p) ~samples:8;
  tour (Maxis_approx_lb.linear_family p) ~samples:12;
  let kp = Kmds_lb.make_params ~seed:1 ~k:2 ~ell:6 ~t_count:6 ~r:2 () in
  tour (Kmds_lb.family kp) ~samples:20;
  let kp3 = Kmds_lb.make_params ~seed:1 ~k:3 ~ell:6 ~t_count:6 ~r:2 () in
  tour (Kmds_lb.family kp3) ~samples:10;
  let sp = Steiner_approx_lb.make_params ~seed:1 ~ell:6 ~t_count:5 ~r:2 () in
  tour (Steiner_approx_lb.node_weighted_family sp) ~samples:6;
  tour (Steiner_approx_lb.directed_family sp) ~samples:6;
  let rp = Mds_restricted_lb.make_params ~seed:1 ~ell:6 ~t_count:6 ~r:2 () in
  tour (Mds_restricted_lb.family rp) ~samples:20;
  Printf.printf "%s\n" (String.make 100 '-');
  Printf.printf
    "(LB = K / (|E_cut| · log₂ n), the Theorem 1.1 round bound at the test scale;\n\
    \ the bench sweeps larger k and reports the asymptotic shapes.)\n"
