type t = { graph : Graph.t; distinguished : int array; certified : bool }

(* Roots 0..d-1 are the distinguished vertices; root i owns the two leaves
   d+2i and d+2i+1, and the leaves carry a 3-regular expander (for d >= 3). *)
let skeleton ~seed d =
  match d with
  | 1 ->
      (* A single distinguished vertex: the cut property is vacuous (one
         side always misses D), but we keep degree 2 by a triangle. *)
      Some (Graph.of_edges 3 [ (0, 1); (0, 2); (1, 2) ])
  | 2 ->
      (* Two disjoint paths between the distinguished vertices: any cut
         separating them is crossed at least twice. *)
      Some (Graph.of_edges 4 [ (0, 2); (2, 1); (0, 3); (3, 1) ])
  | d ->
      let leaves = 2 * d in
      (match Gen.random_regular ~seed leaves 3 with
      | None -> None
      | Some expander ->
          let g = Graph.create (3 * d) in
          for i = 0 to d - 1 do
            Graph.add_edge g i (d + (2 * i));
            Graph.add_edge g i (d + (2 * i) + 1)
          done;
          Graph.iter_edges (fun u v _ -> Graph.add_edge g (d + u) (d + v)) expander;
          Some g)

let cut_property_holds_graph g distinguished =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Expander.cut_property_holds: graph too large";
  let edges = Array.of_list (List.map (fun (u, v, _) -> (u, v)) (Graph.edges g)) in
  let d_mask =
    Array.fold_left (fun acc v -> acc lor (1 lsl v)) 0 distinguished
  in
  let d_total = Array.length distinguished in
  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
    go 0 x
  in
  let ok = ref true in
  (* the property is complement-symmetric: fix vertex 0 outside S *)
  let mask_limit = 1 lsl (n - 1) in
  let mask = ref 1 in
  while !ok && !mask < mask_limit do
    let s = !mask lsl 1 in
    let inside = popcount (s land d_mask) in
    let need = min inside (d_total - inside) in
    if need > 0 then begin
      let crossing = ref 0 in
      Array.iter
        (fun (u, v) ->
          if (s lsr u) land 1 <> (s lsr v) land 1 then incr crossing)
        edges;
      if !crossing < need then ok := false
    end;
    incr mask
  done;
  !ok

let cut_property_holds t = cut_property_holds_graph t.graph t.distinguished

let cache : (int * int, t) Hashtbl.t = Hashtbl.create 64

let build ?(seed = 0) d =
  if d < 1 then invalid_arg "Expander.build: d >= 1 required";
  match Hashtbl.find_opt cache (d, seed) with
  | Some t -> t
  | None ->
  let distinguished = Array.init d Fun.id in
  let verifiable = 3 * d <= 21 in
  let rec go attempt =
    if attempt > 200 then
      failwith "Expander.build: could not generate a valid gadget"
    else
      match skeleton ~seed:(seed + (1000 * attempt)) d with
      | None -> go (attempt + 1)
      | Some g ->
          if not verifiable then { graph = g; distinguished; certified = false }
          else if cut_property_holds_graph g distinguished then
            { graph = g; distinguished; certified = true }
          else go (attempt + 1)
  in
  let t = go 0 in
  Hashtbl.replace cache (d, seed) t;
  t
