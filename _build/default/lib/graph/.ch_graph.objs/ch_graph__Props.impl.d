lib/graph/props.ml: Array Bitset Digraph Fun Graph Hashtbl List Option Queue Set Union_find
