lib/graph/expander.ml: Array Fun Gen Graph Hashtbl List
