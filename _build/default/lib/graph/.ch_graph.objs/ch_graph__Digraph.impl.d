lib/graph/digraph.ml: Array Bitset Buffer Format Graph Hashtbl List Printf
