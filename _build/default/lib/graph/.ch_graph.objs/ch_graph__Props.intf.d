lib/graph/props.mli: Bitset Digraph Graph
