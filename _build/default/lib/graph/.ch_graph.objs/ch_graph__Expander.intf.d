lib/graph/expander.mli: Graph
