lib/graph/graph.ml: Array Bitset Buffer Format Hashtbl List Printf String
