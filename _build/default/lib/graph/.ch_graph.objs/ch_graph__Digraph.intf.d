lib/graph/digraph.mli: Bitset Format Graph
