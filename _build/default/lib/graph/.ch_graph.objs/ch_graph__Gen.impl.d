lib/graph/gen.ml: Array Digraph Graph List Random
