let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  let g = path n in
  Graph.add_edge g (n - 1) 0;
  g

let clique n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let complete_bipartite a b =
  let g = Graph.create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      Graph.add_edge g u v
    done
  done;
  g

let star n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let grid rows cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  g

let gnp ~seed n p =
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.add_edge g u v
    done
  done;
  g

let gnm ~seed n m =
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Gen.gnm: too many edges";
  let rng = Random.State.make [| seed |] in
  let g = Graph.create n in
  let added = ref 0 in
  while !added < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let random_regular ~seed n d =
  if n * d mod 2 = 1 || d >= n then None
  else begin
    let rng = Random.State.make [| seed |] in
    let attempt () =
      let stubs = Array.make (n * d) 0 in
      for i = 0 to (n * d) - 1 do
        stubs.(i) <- i / d
      done;
      for i = Array.length stubs - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = stubs.(i) in
        stubs.(i) <- stubs.(j);
        stubs.(j) <- tmp
      done;
      let g = Graph.create n in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i < Array.length stubs do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        if u = v || Graph.mem_edge g u v then ok := false
        else Graph.add_edge g u v;
        i := !i + 2
      done;
      if !ok then Some g else None
    in
    let rec retry k = if k = 0 then None else
      match attempt () with Some g -> Some g | None -> retry (k - 1)
    in
    retry 500
  end

let random_connected ~seed n p =
  let rng = Random.State.make [| seed; 17 |] in
  let g = gnp ~seed n p in
  (* random spanning tree: attach each vertex to a random earlier one *)
  for v = 1 to n - 1 do
    let u = Random.State.int rng v in
    if not (Graph.mem_edge g u v) then Graph.add_edge g u v
  done;
  g

let random_digraph ~seed n p =
  let rng = Random.State.make [| seed |] in
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Random.State.float rng 1.0 < p then Digraph.add_arc g u v
    done
  done;
  g

let random_weights ~seed ?(lo = 1) ?(hi = 10) g =
  let rng = Random.State.make [| seed |] in
  let g' = Graph.copy g in
  List.iter
    (fun (u, v, _) ->
      Graph.set_edge_weight g' u v (lo + Random.State.int rng (hi - lo + 1)))
    (Graph.edges g');
  g'
