(** Classic union-find with path compression and union by rank. *)

type t

val create : int -> t

val find : t -> int -> int

val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]; returns [false] when
    they were already merged. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of classes. *)
