(** Deterministic (seeded) graph generators used by tests, examples and
    benchmarks. *)

val path : int -> Graph.t

val cycle : int -> Graph.t

val clique : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t

val star : int -> Graph.t
(** [star n]: vertex 0 joined to [1 .. n-1]. *)

val grid : int -> int -> Graph.t

val gnp : seed:int -> int -> float -> Graph.t
(** Erdős–Rényi G(n,p). *)

val gnm : seed:int -> int -> int -> Graph.t
(** Uniform graph with exactly [m] edges (requires [m] at most [n(n-1)/2]). *)

val random_regular : seed:int -> int -> int -> Graph.t option
(** [random_regular ~seed n d]: a simple [d]-regular graph via the pairing
    model with retries; [None] if [n*d] is odd or generation keeps
    failing. *)

val random_connected : seed:int -> int -> float -> Graph.t
(** G(n,p) plus a random spanning tree, so the result is connected. *)

val random_digraph : seed:int -> int -> float -> Digraph.t

val random_weights : seed:int -> ?lo:int -> ?hi:int -> Graph.t -> Graph.t
(** Fresh copy with uniform random edge weights in [[lo,hi]]
    (defaults 1..10). *)
