type t = { capacity : int; words : int array }

let bits_per_word = 63

let nwords capacity = (capacity + bits_per_word - 1) / bits_per_word

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { capacity; words = Array.make (max 1 (nwords capacity)) 0 }

let capacity t = t.capacity

let full capacity =
  let t = create capacity in
  let wn = Array.length t.words in
  for w = 0 to wn - 1 do
    let lo = w * bits_per_word in
    let hi = min t.capacity (lo + bits_per_word) in
    let count = hi - lo in
    if count > 0 then t.words.(w) <- (1 lsl count) - 1
  done;
  t

let copy t = { capacity = t.capacity; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let union_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into dst src =
  same_capacity dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let union a b =
  let t = copy a in
  union_into t b;
  t

let inter a b =
  let t = copy a in
  inter_into t b;
  t

let diff a b =
  let t = copy a in
  diff_into t b;
  t

let inter_cardinal a b =
  same_capacity a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let intersects a b =
  same_capacity a b;
  let hit = ref false in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land b.words.(w) <> 0 then hit := true
  done;
  !hit

let lowest_bit x = popcount ((x land -x) - 1)

let choose t =
  let rec go w =
    if w >= Array.length t.words then raise Not_found
    else if t.words.(w) <> 0 then (w * bits_per_word) + lowest_bit t.words.(w)
    else go (w + 1)
  in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let bit = !word land - !word in
      f ((w * bits_per_word) + lowest_bit !word);
      word := !word land lnot bit
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity items =
  let t = create capacity in
  List.iter (add t) items;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
