(** The gadget graphs G_d of Claim 3.2: max degree 4, O(log d) diameter,
    with [d] distinguished vertices of degree 2, such that every cut
    (S, S̄) is crossed by at least min(|D∩S|, |D∩S̄|) edges.

    The paper builds G_d from constant-size binary trees rooted at the
    distinguished vertices plus an explicit 3-regular expander on the
    leaves (Ajtai's construction).  Here the leaf expander is obtained by
    seeded random regular generation; for every size used in the test
    suite the required cut property is verified {e exhaustively} (and the
    construction retries with fresh seeds until it holds), which yields the
    same guarantee as the explicit construction.  See DESIGN.md,
    substitution 2. *)

type t = private {
  graph : Graph.t;
  distinguished : int array;  (** the [d] degree-2 vertices *)
  certified : bool;  (** cut property verified exhaustively by [build] *)
}

val build : ?seed:int -> int -> t
(** [build d] for [d >= 1].  For [d] small enough to check exhaustively
    (3d vertices, at most [2^21] cuts) the result is certified to satisfy
    the Claim 3.2 cut property. *)

val cut_property_holds : t -> bool
(** Exhaustive check of the Claim 3.2 property.
    @raise Invalid_argument when the graph has more than 22 vertices. *)
