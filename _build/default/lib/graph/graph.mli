(** Simple undirected graphs on vertices [0 .. n-1], with integer edge
    weights and integer vertex weights.

    Self loops and parallel edges are rejected: every lower-bound
    construction of the paper is a simple graph, and the exact solvers
    rely on it. *)

type t

val create : ?default_vweight:int -> int -> t
(** [create n] is the edgeless graph on [n] vertices.  Every vertex weight
    starts at [default_vweight] (default [1]). *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val add_edge : ?w:int -> t -> int -> int -> unit
(** [add_edge ~w g u v] inserts the edge [{u,v}] with weight [w]
    (default [1]).  @raise Invalid_argument on self loops or when the edge
    is already present. *)

val remove_edge : t -> int -> int -> unit
(** @raise Not_found when the edge is absent. *)

val set_edge_weight : t -> int -> int -> int -> unit
(** [set_edge_weight g u v w]. @raise Not_found when the edge is absent. *)

val mem_edge : t -> int -> int -> bool

val edge_weight : t -> int -> int -> int
(** @raise Not_found when the edge is absent. *)

val vweight : t -> int -> int

val set_vweight : t -> int -> int -> unit

val vweights : t -> int array
(** A fresh array of all vertex weights. *)

val neighbors : t -> int -> int list
(** Sorted list of neighbors. *)

val neighbors_w : t -> int -> (int * int) list
(** Sorted list of [(neighbor, edge weight)]. *)

val degree : t -> int -> int

val max_degree : t -> int

val edges : t -> (int * int * int) list
(** All edges [(u, v, w)] with [u < v], sorted. *)

val iter_edges : (int -> int -> int -> unit) -> t -> unit

val total_edge_weight : t -> int

val copy : t -> t

val adjacency : t -> Bitset.t array
(** [adjacency g] is the neighborhood of each vertex as a bitset; fresh
    arrays, safe to mutate. *)

val closed_adjacency : t -> Bitset.t array
(** Like {!adjacency} but each vertex is included in its own set. *)

val of_edges : ?default_vweight:int -> int -> (int * int) list -> t

val of_weighted_edges : ?default_vweight:int -> int -> (int * int * int) list -> t

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced on [vs] (vertex weights kept),
    together with the map from new indices to original vertices. *)

val union_disjoint : t -> t -> t
(** Disjoint union; vertices of the second graph are shifted by [n first]. *)

val equal_structure : t -> t -> bool
(** Same vertex count, weights and edge set. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> ?highlight:int list -> t -> string
(** GraphViz source.  Vertex weights other than 1 and edge weights other
    than 1 appear as labels; [highlight] vertices are filled. *)
