type t = {
  n : int;
  mutable m : int;
  adj : (int, int) Hashtbl.t array;
  vweight : int array;
}

let create ?(default_vweight = 1) n =
  if n < 0 then invalid_arg "Graph.create";
  {
    n;
    m = 0;
    adj = Array.init n (fun _ -> Hashtbl.create 4);
    vweight = Array.make n default_vweight;
  }

let n g = g.n

let m g = g.m

let check g v =
  if v < 0 || v >= g.n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of [0,%d)" v g.n)

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.adj.(u) v

let add_edge ?(w = 1) g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if Hashtbl.mem g.adj.(u) v then
    invalid_arg (Printf.sprintf "Graph.add_edge: duplicate edge (%d,%d)" u v);
  Hashtbl.replace g.adj.(u) v w;
  Hashtbl.replace g.adj.(v) u w;
  g.m <- g.m + 1

let remove_edge g u v =
  check g u;
  check g v;
  if not (Hashtbl.mem g.adj.(u) v) then raise Not_found;
  Hashtbl.remove g.adj.(u) v;
  Hashtbl.remove g.adj.(v) u;
  g.m <- g.m - 1

let set_edge_weight g u v w =
  check g u;
  check g v;
  if not (Hashtbl.mem g.adj.(u) v) then raise Not_found;
  Hashtbl.replace g.adj.(u) v w;
  Hashtbl.replace g.adj.(v) u w

let edge_weight g u v =
  check g u;
  check g v;
  match Hashtbl.find_opt g.adj.(u) v with
  | Some w -> w
  | None -> raise Not_found

let vweight g v =
  check g v;
  g.vweight.(v)

let set_vweight g v w =
  check g v;
  g.vweight.(v) <- w

let vweights g = Array.copy g.vweight

let neighbors g v =
  check g v;
  Hashtbl.fold (fun u _ acc -> u :: acc) g.adj.(v) [] |> List.sort compare

let neighbors_w g v =
  check g v;
  Hashtbl.fold (fun u w acc -> (u, w) :: acc) g.adj.(v) [] |> List.sort compare

let degree g v =
  check g v;
  Hashtbl.length g.adj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (Hashtbl.length g.adj.(v))
  done;
  !best

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Hashtbl.iter (fun v w -> if u < v then f u v w) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v w -> acc := (u, v, w) :: !acc) g;
  List.sort compare !acc

let total_edge_weight g =
  let acc = ref 0 in
  iter_edges (fun _ _ w -> acc := !acc + w) g;
  !acc

let copy g =
  {
    n = g.n;
    m = g.m;
    adj = Array.map Hashtbl.copy g.adj;
    vweight = Array.copy g.vweight;
  }

let adjacency g =
  Array.init g.n (fun v ->
      let set = Bitset.create g.n in
      Hashtbl.iter (fun u _ -> Bitset.add set u) g.adj.(v);
      set)

let closed_adjacency g =
  let sets = adjacency g in
  Array.iteri (fun v set -> Bitset.add set v) sets;
  sets

let of_edges ?default_vweight n edge_list =
  let g = create ?default_vweight n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let of_weighted_edges ?default_vweight n edge_list =
  let g = create ?default_vweight n in
  List.iter (fun (u, v, w) -> add_edge ~w g u v) edge_list;
  g

let induced g vs =
  let vs = List.sort_uniq compare vs in
  let map = Array.of_list vs in
  let inv = Hashtbl.create (Array.length map) in
  Array.iteri (fun i v -> Hashtbl.replace inv v i) map;
  let sub = create (Array.length map) in
  Array.iteri (fun i v -> sub.vweight.(i) <- g.vweight.(v)) map;
  iter_edges
    (fun u v w ->
      match (Hashtbl.find_opt inv u, Hashtbl.find_opt inv v) with
      | Some u', Some v' -> add_edge ~w sub u' v'
      | _ -> ())
    g;
  (sub, map)

let union_disjoint a b =
  let g = create (a.n + b.n) in
  for v = 0 to a.n - 1 do
    g.vweight.(v) <- a.vweight.(v)
  done;
  for v = 0 to b.n - 1 do
    g.vweight.(a.n + v) <- b.vweight.(v)
  done;
  iter_edges (fun u v w -> add_edge ~w g u v) a;
  iter_edges (fun u v w -> add_edge ~w g (a.n + u) (a.n + v)) b;
  g

let equal_structure a b =
  a.n = b.n && a.m = b.m && a.vweight = b.vweight && edges a = edges b

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges (fun u v w -> Format.fprintf ppf "%d -- %d (w=%d)@," u v w) g;
  Format.fprintf ppf "@]"

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to g.n - 1 do
    let attrs = ref [] in
    if g.vweight.(v) <> 1 then
      attrs := Printf.sprintf "label=\"%d (w=%d)\"" v g.vweight.(v) :: !attrs;
    if List.mem v highlight then
      attrs := "style=filled" :: "fillcolor=gray" :: !attrs;
    if !attrs <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  %d [%s];\n" v (String.concat "," !attrs))
  done;
  iter_edges
    (fun u v w ->
      if w = 1 then Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)
      else Buffer.add_string buf (Printf.sprintf "  %d -- %d [label=%d];\n" u v w))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
