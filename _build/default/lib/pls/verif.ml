open Ch_graph

type t = {
  graph : Graph.t;
  h : (int * int) list;
  s : int option;
  t : int option;
  e : (int * int) option;
}

let norm (u, v) = if u <= v then (u, v) else (v, u)

let make ?s ?t ?e graph ~h =
  let h = List.sort_uniq compare (List.map norm h) in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge graph u v) then invalid_arg "Verif.make: h edge not in G")
    h;
  let e = Option.map norm e in
  (match e with
  | Some (u, v) ->
      if not (Graph.mem_edge graph u v) then invalid_arg "Verif.make: e not in G"
  | None -> ());
  { graph; h; s; t; e }

let in_h t u v = List.mem (norm (u, v)) t.h

let subgraph graph edges =
  let g = Graph.create (Graph.n graph) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) edges;
  g

let h_graph t = subgraph t.graph t.h

let h_minus_e t =
  match t.e with
  | None -> invalid_arg "Verif.h_minus_e: no designated edge"
  | Some e -> subgraph t.graph (List.filter (fun edge -> edge <> e) t.h)

let g_minus_h t =
  let edges =
    List.filter_map
      (fun (u, v, _) -> if in_h t u v then None else Some (u, v))
      (Graph.edges t.graph)
  in
  subgraph t.graph edges

let h_degree t v =
  List.length (List.filter (fun (a, b) -> a = v || b = v) t.h)

let random_subinstance ~seed ?(density = 0.5) graph =
  let rng = Random.State.make [| seed |] in
  let h =
    List.filter_map
      (fun (u, v, _) ->
        if Random.State.float rng 1.0 < density then Some (u, v) else None)
      (Graph.edges graph)
  in
  make graph ~h
